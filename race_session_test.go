package eagleeye

import (
	"sync"
	"testing"
)

func TestSessionAggregateRace(t *testing.T) {
	sess, err := NewSession(Config{Satellites: 2, Targets: []Target{{Lat: 0, Lon: 0}}, DurationHours: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sess.Aggregate()
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := sess.Step(StepOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
