// Command benchlp benchmarks the two simplex engines against each other
// on generated solver-shaped instances (internal/lp's GenSchedLP and
// GenCoverLP) and writes machine-readable measurement points, so the
// sparse core's scale advantage is recorded alongside the code
// (BENCH_lp.json) and CI can smoke-run the differential on every change.
// Each instance is solved by both cores and the objectives are asserted
// equal to 1e-6 before a point is emitted -- the benchmark doubles as an
// at-scale differential test, where the unit fuzz covers only small
// instances.
//
// The default run includes a 20k+-variable sched-shaped instance whose
// dense solve takes minutes (the dense tableau is ~600MB and every pivot
// sweeps all of it); -quick restricts to sizes where the dense core
// finishes in seconds, which is what `make bench-scale-smoke` and CI use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"eagleeye/internal/lp"
)

// pointSchema versions the point layout for downstream consumers of the
// BENCH_lp.json series. Bump it whenever a field changes meaning.
const pointSchema = 1

// point is one instance measurement: both engines' times on the same
// problem plus the instance's shape.
type point struct {
	Schema    int    `json:"schema"`
	Name      string `json:"name"`
	Date      string `json:"date"`
	Commit    string `json:"commit,omitempty"`
	GoVersion string `json:"go"`

	Vars int `json:"vars"`
	Rows int `json:"rows"`
	NNZ  int `json:"nnz"`

	DenseNs     int64   `json:"dense_ns"`
	SparseNs    int64   `json:"sparse_ns"`
	Speedup     float64 `json:"speedup"`
	Objective   float64 `json:"objective"`
	DenseIters  int     `json:"dense_iters"`
	SparseIters int     `json:"sparse_iters"`

	Factorizations   int `json:"factorizations"`
	Refactorizations int `json:"refactorizations"`
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

type instance struct {
	name string
	gen  func() *lp.Problem
}

func main() {
	var (
		out   = flag.String("out", "", "append JSON points to this file ('' means stdout only)")
		quick = flag.Bool("quick", false, "skip the minutes-long large dense solves (CI smoke)")
	)
	flag.Parse()

	instances := []instance{
		{"lp/sched_2k", func() *lp.Problem { return lp.GenSchedLP(100, 4, 6, 4, 1) }},
		{"lp/cover_500", func() *lp.Problem { return lp.GenCoverLP(350, 500, 4, 1) }},
	}
	if !*quick {
		instances = append(instances,
			instance{"lp/sched_6k", func() *lp.Problem { return lp.GenSchedLP(200, 4, 8, 5, 1) }},
			instance{"lp/sched_21k", func() *lp.Problem { return lp.GenSchedLP(400, 3, 24, 6, 1) }},
		)
	}

	var f *os.File
	if *out != "" {
		var err error
		f, err = os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchlp:", err)
			os.Exit(1)
		}
		defer f.Close()
	}

	date := time.Now().UTC().Format(time.RFC3339)
	commit := gitCommit()
	for _, inst := range instances {
		p := inst.gen()
		if err := p.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "benchlp: %s: %v\n", inst.name, err)
			os.Exit(1)
		}

		sparseWS := &lp.Workspace{Core: lp.CoreSparse}
		start := time.Now()
		sparse := sparseWS.Solve(p)
		sparseNs := time.Since(start).Nanoseconds()
		if sparse.Status != lp.StatusOptimal {
			fmt.Fprintf(os.Stderr, "benchlp: %s: sparse status %v\n", inst.name, sparse.Status)
			os.Exit(1)
		}

		denseWS := &lp.Workspace{Core: lp.CoreDense}
		start = time.Now()
		dense := denseWS.Solve(p)
		denseNs := time.Since(start).Nanoseconds()
		if dense.Status != lp.StatusOptimal {
			fmt.Fprintf(os.Stderr, "benchlp: %s: dense status %v\n", inst.name, dense.Status)
			os.Exit(1)
		}

		// Differential gate: the two engines must land on one optimum.
		if d := dense.Objective - sparse.Objective; d > 1e-6*(1+abs(dense.Objective)) || -d > 1e-6*(1+abs(dense.Objective)) {
			fmt.Fprintf(os.Stderr, "benchlp: %s: objective mismatch dense=%v sparse=%v\n",
				inst.name, dense.Objective, sparse.Objective)
			os.Exit(1)
		}

		pt := point{
			Schema:           pointSchema,
			Name:             inst.name,
			Date:             date,
			Commit:           commit,
			GoVersion:        runtime.Version(),
			Vars:             len(p.C),
			Rows:             len(p.B),
			NNZ:              p.NNZ(),
			DenseNs:          denseNs,
			SparseNs:         sparseNs,
			Speedup:          float64(denseNs) / float64(sparseNs),
			Objective:        sparse.Objective,
			DenseIters:       dense.Iters,
			SparseIters:      sparse.Iters,
			Factorizations:   sparseWS.Factorizations,
			Refactorizations: sparseWS.Refactorizations,
		}
		enc, err := json.Marshal(pt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchlp:", err)
			os.Exit(1)
		}
		fmt.Println(string(enc))
		if f != nil {
			if _, err := fmt.Fprintln(f, string(enc)); err != nil {
				fmt.Fprintln(os.Stderr, "benchlp:", err)
				os.Exit(1)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
