// Command eeinspect is the offline flight-data analyzer: it ingests
// flight-recorder dumps (from eagleeye -flight-out, GET
// /v1/sessions/{id}/flight, or the GET /debug/flight aggregate) and
// NDJSON frame traces (from eagleeye -trace or ?trace=ndjson), and
// explains where the time went after the fact:
//
//   - per-stage latency percentiles (p50/p90/p99/max) across every
//     recorded frame,
//   - critical-path breakdowns of the slowest frames, span by span,
//   - anomaly summaries: what was pinned, why, and under which request.
//
// Usage:
//
//	eeinspect flight.json
//	eeinspect -top 10 flight.json trace.ndjson
//	eeinspect -require-anomaly flight.json   # exit 1 if nothing pinned
//
// File kinds are autodetected: a JSON object with "sessions" is a
// /debug/flight aggregate, one with "schema" and "recent" is a single
// dump, anything line-oriented is an NDJSON trace.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"eagleeye/internal/obs"
)

func main() {
	var (
		top     = flag.Int("top", 5, "critical-path breakdowns for the N slowest frames")
		require = flag.Bool("require-anomaly", false, "exit 1 unless at least one pinned anomaly is present")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: eeinspect [-top N] [-require-anomaly] <flight.json|trace.ndjson>...")
		os.Exit(2)
	}

	rep := &report{top: *top}
	for _, path := range flag.Args() {
		if err := rep.ingest(path); err != nil {
			fmt.Fprintf(os.Stderr, "eeinspect: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	rep.print(os.Stdout)

	if *require && rep.pinnedTotal == 0 {
		fmt.Fprintln(os.Stderr, "eeinspect: no pinned anomaly found")
		os.Exit(1)
	}
}

// traceLine is the subset of the simulator's NDJSON trace record that the
// analyzer uses.
type traceLine struct {
	Group    int     `json:"group"`
	Frame    int     `json:"frame"`
	SchedMS  float64 `json:"sched_ms"`
	Targets  int     `json:"targets"`
	Detected int     `json:"detected"`
	Captures int     `json:"captures"`
	Deadline bool    `json:"deadline_met"`
}

type report struct {
	top int

	dumps  []obs.FlightDump
	frames []obs.FlightFrame // deduplicated union of every dump's frames
	seen   map[string]bool   // session/seq dedup across recent|slowest|pinned

	pinnedTotal int

	traceLines  int
	traceMissed int
	schedMS     []float64
	targets     int
	detected    int
	captures    int
}

func (r *report) ingest(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trim := bytes.TrimSpace(data)
	if len(trim) == 0 {
		return fmt.Errorf("empty file")
	}
	if trim[0] == '{' {
		// A flight artifact is one JSON object; an NDJSON trace is one
		// object per line. Disambiguate by decoding the first value and
		// checking whether it consumed the whole file.
		dec := json.NewDecoder(bytes.NewReader(trim))
		var probe struct {
			Schema   int               `json:"schema"`
			Sessions []obs.FlightDump  `json:"sessions"`
			Recent   []json.RawMessage `json:"recent"`
		}
		if err := dec.Decode(&probe); err == nil && !dec.More() {
			if probe.Sessions != nil {
				for _, d := range probe.Sessions {
					r.addDump(d)
				}
				return nil
			}
			if probe.Schema != 0 {
				var d obs.FlightDump
				if err := json.Unmarshal(trim, &d); err != nil {
					return err
				}
				r.addDump(d)
				return nil
			}
		}
	}
	return r.ingestTrace(data)
}

func (r *report) addDump(d obs.FlightDump) {
	if d.Schema != obs.FlightSchema {
		fmt.Fprintf(os.Stderr, "eeinspect: warning: dump schema %d, tool speaks %d\n", d.Schema, obs.FlightSchema)
	}
	r.dumps = append(r.dumps, d)
	if r.seen == nil {
		r.seen = make(map[string]bool)
	}
	for _, set := range [][]obs.FlightFrame{d.Recent, d.Slowest, d.Pinned} {
		for _, f := range set {
			key := fmt.Sprintf("%s/%d", f.Session, f.Seq)
			if r.seen[key] {
				continue
			}
			r.seen[key] = true
			r.frames = append(r.frames, f)
		}
	}
	for _, f := range d.Pinned {
		if len(f.Anomalies) > 0 {
			r.pinnedTotal++
		}
	}
}

func (r *report) ingestTrace(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var t traceLine
		if err := json.Unmarshal(line, &t); err != nil {
			return fmt.Errorf("trace line %d: %w", r.traceLines+1, err)
		}
		r.traceLines++
		r.schedMS = append(r.schedMS, t.SchedMS)
		r.targets += t.Targets
		r.detected += t.Detected
		r.captures += t.Captures
		if !t.Deadline {
			r.traceMissed++
		}
	}
	return sc.Err()
}

// percentile returns the nearest-rank percentile of sorted (ascending).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func (r *report) print(w *os.File) {
	for _, d := range r.dumps {
		name := d.Session
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(w, "session %s: %d frames offered, %d retained", name, d.Frames, len(d.Recent)+len(d.Slowest)+len(d.Pinned))
		if d.PinnedDropped > 0 {
			fmt.Fprintf(w, ", %d pinned dropped", d.PinnedDropped)
		}
		fmt.Fprintln(w)
	}

	if len(r.frames) > 0 {
		r.printStages(w)
		r.printCriticalPaths(w)
		r.printAnomalies(w)
	}
	if r.traceLines > 0 {
		r.printTrace(w)
	}
}

// printStages aggregates span durations by stage/solve name across every
// retained frame and prints a percentile table.
func (r *report) printStages(w *os.File) {
	byName := make(map[string][]float64)
	var order []string
	var frameDur []float64
	for _, f := range r.frames {
		if f.Group < 0 {
			continue // synthetic event records carry no timing
		}
		frameDur = append(frameDur, ms(f.DurNS))
		for _, s := range f.Spans {
			if s.Kind == "frame" {
				continue
			}
			name := s.Kind + ":" + s.Name
			if _, ok := byName[name]; !ok {
				order = append(order, name)
			}
			byName[name] = append(byName[name], ms(s.DurNS))
		}
	}
	if len(frameDur) == 0 {
		return
	}
	sort.Float64s(frameDur)

	fmt.Fprintf(w, "\nstage latency over %d frames (ms):\n", len(frameDur))
	fmt.Fprintf(w, "  %-22s %8s %8s %8s %8s %8s\n", "stage", "n", "p50", "p90", "p99", "max")
	row := func(name string, v []float64) {
		sort.Float64s(v)
		fmt.Fprintf(w, "  %-22s %8d %8.3f %8.3f %8.3f %8.3f\n",
			name, len(v), percentile(v, 50), percentile(v, 90), percentile(v, 99), v[len(v)-1])
	}
	row("frame (total)", frameDur)
	for _, name := range order {
		row(name, byName[name])
	}
}

// printCriticalPaths prints a span-by-span breakdown of the slowest
// retained frames.
func (r *report) printCriticalPaths(w *os.File) {
	frames := make([]obs.FlightFrame, 0, len(r.frames))
	for _, f := range r.frames {
		if f.Group >= 0 {
			frames = append(frames, f)
		}
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i].DurNS > frames[j].DurNS })
	n := r.top
	if n > len(frames) {
		n = len(frames)
	}
	if n == 0 {
		return
	}

	fmt.Fprintf(w, "\ncritical paths, %d slowest frames:\n", n)
	for _, f := range frames[:n] {
		fmt.Fprintf(w, "  seq %d  group %d frame %d  t=%.1fs  %.3f ms", f.Seq, f.Group, f.Frame, f.TimeS, ms(f.DurNS))
		if f.Request != "" {
			fmt.Fprintf(w, "  request=%s", f.Request)
		}
		if len(f.Anomalies) > 0 {
			fmt.Fprintf(w, "  [%s]", strings.Join(f.Anomalies, ","))
		}
		fmt.Fprintln(w)
		for _, s := range f.Spans {
			if s.Kind == "frame" {
				continue
			}
			indent := "    "
			if s.Kind == "solve" {
				indent = "      " // solves are children of a stage span
			}
			pct := 0.0
			if f.DurNS > 0 {
				pct = 100 * float64(s.DurNS) / float64(f.DurNS)
			}
			fmt.Fprintf(w, "%s%-18s %9.3f ms  %5.1f%%", indent, s.Name, ms(s.DurNS), pct)
			if s.A != 0 || s.B != 0 {
				fmt.Fprintf(w, "  (a=%d b=%d)", s.A, s.B)
			}
			fmt.Fprintln(w)
		}
	}
}

func (r *report) printAnomalies(w *os.File) {
	totals := make(map[string]uint64)
	for _, d := range r.dumps {
		for k, v := range d.Anomalies {
			totals[k] += v
		}
	}
	if len(totals) == 0 {
		fmt.Fprintln(w, "\nno anomalies recorded")
		return
	}
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "\nanomalies:")
	for _, k := range keys {
		fmt.Fprintf(w, "  %-18s %d\n", k, totals[k])
	}

	fmt.Fprintf(w, "pinned records (%d):\n", r.pinnedTotal)
	for _, d := range r.dumps {
		for _, f := range d.Pinned {
			if len(f.Anomalies) == 0 {
				continue
			}
			what := fmt.Sprintf("group %d frame %d", f.Group, f.Frame)
			if f.Group < 0 && len(f.Spans) > 0 {
				what = "event: " + f.Spans[0].Name
			}
			fmt.Fprintf(w, "  seq %-6d %-28s [%s]", f.Seq, what, strings.Join(f.Anomalies, ","))
			if f.Request != "" {
				fmt.Fprintf(w, "  request=%s", f.Request)
			}
			fmt.Fprintln(w)
		}
	}
}

func (r *report) printTrace(w *os.File) {
	sort.Float64s(r.schedMS)
	fmt.Fprintf(w, "\ntrace: %d frames, %d deadline misses\n", r.traceLines, r.traceMissed)
	fmt.Fprintf(w, "  sched_ms p50 %.3f  p90 %.3f  p99 %.3f  max %.3f\n",
		percentile(r.schedMS, 50), percentile(r.schedMS, 90), percentile(r.schedMS, 99), r.schedMS[len(r.schedMS)-1])
	fmt.Fprintf(w, "  targets %d  detected %d  captures %d\n", r.targets, r.detected, r.captures)
}
