// Command datagen generates the synthetic evaluation datasets and writes
// them to JSON for inspection or for use by external tools.
//
// Usage:
//
//	datagen -dataset ships -out ships.json
//	datagen -dataset airplanes -limit 1000       # first 1000 targets to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"eagleeye/internal/dataset"
)

// jsonTarget is the serialized target record.
type jsonTarget struct {
	ID         int     `json:"id"`
	Lat        float64 `json:"lat"`
	Lon        float64 `json:"lon"`
	SpeedMS    float64 `json:"speed_ms,omitempty"`
	HeadingDeg float64 `json:"heading_deg,omitempty"`
	Value      float64 `json:"value"`
	AreaKM2    float64 `json:"area_km2,omitempty"`
	AppearS    float64 `json:"appear_s,omitempty"`
	VanishS    float64 `json:"vanish_s,omitempty"`
}

type jsonSet struct {
	Name    string       `json:"name"`
	Moving  bool         `json:"moving"`
	Count   int          `json:"count"`
	Targets []jsonTarget `json:"targets"`
}

func main() {
	var (
		name  = flag.String("dataset", "ships", "ships | airplanes | lakes-166k | lakes-1.4m | oiltanks")
		seed  = flag.Int64("seed", 1, "generator seed")
		limit = flag.Int("limit", 0, "emit at most this many targets (0 = all)")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	set, err := dataset.ByName(*name, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	targets := set.Targets
	if *limit > 0 && *limit < len(targets) {
		targets = targets[:*limit]
	}
	js := jsonSet{Name: set.Name, Moving: set.Moving, Count: len(set.Targets)}
	for _, t := range targets {
		js.Targets = append(js.Targets, jsonTarget{
			ID: t.ID, Lat: t.Pos.Lat, Lon: t.Pos.Lon,
			SpeedMS: t.SpeedMS, HeadingDeg: t.HeadingDeg,
			Value: t.Value, AreaKM2: t.AreaKM2,
			AppearS: t.AppearS, VanishS: t.VanishS,
		})
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(js); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
