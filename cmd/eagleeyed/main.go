// Command eagleeyed is the EagleEye scheduling daemon: a long-running
// multi-tenant HTTP/JSON server hosting concurrent scenario sessions on
// top of the eagleeye facade, with admission control (bounded session
// table, bounded work queue answering 429 + Retry-After), per-request
// deadlines, streamed NDJSON frame traces, the PR 4 observability
// endpoints on the same port, and graceful drain on SIGTERM.
//
// Usage:
//
//	eagleeyed -addr 127.0.0.1:8080
//	eagleeyed -addr :8080 -max-sessions 512 -queue 128 -workers 8
//
// API sketch (see DESIGN.md "Scheduling as a service"):
//
//	POST   /v1/sessions            create a session from a scenario JSON
//	GET    /v1/sessions            list sessions
//	GET    /v1/sessions/{id}       query state, aggregate and last result
//	POST   /v1/sessions/{id}/run   run the full configured duration
//	                               (?trace=ndjson streams the frame trace)
//	POST   /v1/sessions/{id}/step  advance one window ({"hours": h})
//	POST   /v1/sessions/{id}/checkpoint   download a binary checkpoint
//	POST   /v1/sessions/restore    create a session from a checkpoint body
//	DELETE /v1/sessions/{id}       delete
//	GET    /v1/sessions/{id}/flight  flight-recorder dump (recent / slowest / pinned frames)
//	GET    /debug/flight           flight dumps for every live session
//	GET    /metrics /summary /debug/pprof/...   observability
//
// Every response carries an X-Request-ID header (echoed from the request
// when present, generated otherwise); the same ID appears on the
// structured log line for the request and on every flight-recorder frame
// the run produced, so any request can be traced end to end after the
// fact. -flight-ring 0 disables recording; -log-level tunes verbosity.
//
// With -checkpoint-dir set, SIGTERM additionally spools every idle
// session to <dir>/<id>.ckpt after the drain, and the next eagleeyed
// started with the same directory resumes them under their original IDs.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eagleeye"
	"eagleeye/internal/obs"
	"eagleeye/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (\":0\" for an ephemeral port)")
		maxSessions = flag.Int("max-sessions", 256, "session table bound; creates beyond it are rejected 429")
		queueDepth  = flag.Int("queue", 64, "pending-run queue bound; runs beyond it are rejected 429 + Retry-After")
		workers     = flag.Int("workers", 2, "concurrent scenario runs")
		simWorkers  = flag.Int("sim-workers", 1, "simulator parallelism per run (sessions are the concurrency unit)")
		reqTimeout  = flag.Duration("request-timeout", 60*time.Second, "per-request deadline for run/step handlers")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight runs")
		ckptDir     = flag.String("checkpoint-dir", "", "spool dir for session durability: SIGTERM checkpoints idle sessions here, startup resumes them")
		logLevel    = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		readHdrTO   = flag.Duration("read-header-timeout", 10*time.Second, "HTTP header read deadline (slowloris guard)")
		idleTO      = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection deadline")
		flightRing  = flag.Int("flight-ring", 128, "flight-recorder recent-frame ring per session; 0 disables recording")
		flightTopK  = flag.Int("flight-topk", 16, "slowest-ever frames retained per session")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "eagleeyed: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	reg := eagleeye.NewMetricsRegistry()
	srv := server.New(server.Config{
		MaxSessions:    *maxSessions,
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		SimWorkers:     *simWorkers,
		RequestTimeout: *reqTimeout,
		Metrics:        reg,
		CheckpointDir:  *ckptDir,
		Log:            logger,
		Flight:         obs.FlightConfig{Ring: *flightRing, TopK: *flightTopK},
		DisableFlight:  *flightRing == 0,
	})
	if *ckptDir != "" {
		n, err := srv.LoadSpool()
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagleeyed: spool:", err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "eagleeyed: resumed %d session(s) from %s\n", n, *ckptDir)
		}
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eagleeyed:", err)
		os.Exit(1)
	}
	// No blanket ReadTimeout: checkpoint restores legitimately stream
	// large bodies. The header deadline alone closes idle half-open
	// connections; run/step handlers enforce their own deadlines.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHdrTO,
		IdleTimeout:       *idleTO,
	}
	fmt.Fprintf(os.Stderr, "eagleeyed: serving on http://%s (sessions<=%d queue<=%d workers=%d)\n",
		lis.Addr(), *maxSessions, *queueDepth, *workers)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(lis) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "eagleeyed: %v -- draining (up to %s)\n", sig, *drain)
		// Stop admitting new work and wait for in-flight runs, then stop
		// accepting connections. Queries keep answering during the drain.
		if derr := srv.Shutdown(*drain); derr != nil {
			fmt.Fprintln(os.Stderr, "eagleeyed:", derr)
		}
		_ = httpSrv.Close()
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "eagleeyed: sessions spooled to %s\n", *ckptDir)
		}
		fmt.Fprintln(os.Stderr, "eagleeyed: drained, bye")
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "eagleeyed:", err)
			os.Exit(1)
		}
	}
}
