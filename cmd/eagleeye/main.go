// Command eagleeye runs one EagleEye constellation simulation end to end
// and prints the coverage, runtime and energy summary.
//
// Usage:
//
//	eagleeye -dataset ships -org leader-follower -sats 8 -hours 6
//	eagleeye -dataset lakes-166k -org high-res-only -sats 8 -hours 6
//	eagleeye -dataset airplanes -scheduler greedy -sats 4 -followers 1
//	eagleeye -dataset ships -hours 6 -metrics-addr 127.0.0.1:9090 -metrics-out metrics.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"eagleeye"
)

func main() {
	var (
		org       = flag.String("org", eagleeye.LeaderFollower, "organization: low-res-only | high-res-only | leader-follower | mix-camera")
		dataset   = flag.String("dataset", eagleeye.DatasetShips, "workload: ships | airplanes | lakes-166k | lakes-1.4m")
		sats      = flag.Int("sats", 4, "total satellite count")
		followers = flag.Int("followers", 1, "followers per group (leader-follower)")
		scheduler = flag.String("scheduler", eagleeye.SchedulerILP, "scheduler: ilp | greedy | abb")
		detector  = flag.String("detector", "yolo_n", "detector: yolo_n | yolo_s | yolo_m | yolo_l | yolo_x")
		hours     = flag.Float64("hours", 24, "simulated duration in hours")
		slew      = flag.Float64("slew", 3, "ADACS slew rate in deg/s")
		recall    = flag.Float64("recall", 0, "override detector recall in (0,1]; 0 keeps the model's")
		seed      = flag.Int64("seed", 1, "random seed")
		nocluster = flag.Bool("no-clustering", false, "disable target clustering")
		warm      = flag.Bool("warm", true, "cross-frame warm-started solving (per-leader state, LP basis reuse); false for the cold A/B baseline")
		planes    = flag.Int("planes", 1, "orbital planes (§4.7 orbit-design extension)")
		recapture = flag.Bool("recapture-dedup", false, "deprioritize already-captured targets (§4.7)")
		traceFile = flag.String("trace", "", "write a per-frame JSON trace to this file (\"-\" for stdout)")
		workers   = flag.Int("workers", 0, "parallel simulation workers (0 = all CPUs, 1 = sequential; output is identical either way)")

		metricsAddr = flag.String("metrics-addr", "", "serve live metrics on this address (/metrics, /summary, /debug/pprof); e.g. 127.0.0.1:9090")
		metricsOut  = flag.String("metrics-out", "", "write an end-of-run metrics summary JSON to this file (\"-\" for stdout)")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the -metrics-addr endpoint up this long after the run finishes (for final scrapes)")
		flightOut   = flag.String("flight-out", "", "record frame span trees in flight and write the dump JSON to this file (\"-\" for stdout); analyze with eeinspect")
	)
	flag.Parse()

	var trace io.Writer
	if *traceFile == "-" {
		trace = os.Stdout
	} else if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagleeye:", err)
			os.Exit(1)
		}
		defer f.Close()
		trace = f
	}

	var metrics *eagleeye.MetricsRegistry
	if *metricsAddr != "" || *metricsOut != "" {
		metrics = eagleeye.NewMetricsRegistry()
	}
	var flight *eagleeye.FlightRecorder
	if *flightOut != "" {
		flight = eagleeye.NewFlightRecorder(eagleeye.FlightConfig{})
	}
	if *metricsAddr != "" {
		srv, err := eagleeye.ServeMetrics(*metricsAddr, metrics, flight)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eagleeye:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "eagleeye: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	r, err := eagleeye.Run(eagleeye.Config{
		Organization:      *org,
		Dataset:           *dataset,
		Satellites:        *sats,
		FollowersPerGroup: *followers,
		Scheduler:         *scheduler,
		Detector:          *detector,
		DurationHours:     *hours,
		SlewRateDegS:      *slew,
		RecallOverride:    *recall,
		Seed:              *seed,
		NoClustering:      *nocluster,
		DisableWarmStart:  !*warm,
		OrbitPlanes:       *planes,
		RecaptureDedup:    *recapture,
		Trace:             trace,
		Metrics:           metrics,
		Flight:            flight,
		Workers:           *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eagleeye:", err)
		os.Exit(1)
	}

	if *flightOut != "" {
		out := os.Stdout
		if *flightOut != "-" {
			f, ferr := os.Create(*flightOut)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "eagleeye:", ferr)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if werr := flight.WriteJSON(out); werr != nil {
			fmt.Fprintln(os.Stderr, "eagleeye:", werr)
			os.Exit(1)
		}
	}

	if *metricsOut != "" {
		out := os.Stdout
		if *metricsOut != "-" {
			f, ferr := os.Create(*metricsOut)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "eagleeye:", ferr)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if werr := metrics.WriteSummary(out); werr != nil {
			fmt.Fprintln(os.Stderr, "eagleeye:", werr)
			os.Exit(1)
		}
	}
	if *metricsAddr != "" && *metricsHold > 0 {
		fmt.Fprintf(os.Stderr, "eagleeye: holding metrics endpoint for %s\n", *metricsHold)
		time.Sleep(*metricsHold)
	}

	fmt.Printf("EagleEye simulation: %s on %q (%d satellites, %.1f h)\n",
		r.Organization, r.Dataset, r.Satellites, *hours)
	fmt.Printf("  coverage:           %.2f%% of %d targets captured\n", r.CoveragePct, r.TotalTargets)
	fmt.Printf("  low-res visibility: %.2f%%\n", r.LowResSeenPct)
	fmt.Printf("  frames:             %d (detections %d, captures %d)\n", r.Frames, r.Detections, r.Captures)
	if r.SchedulerMeanMS > 0 || r.Captures > 0 {
		fmt.Printf("  scheduler:          mean %.1f ms, max %.1f ms, %d missed deadlines\n",
			r.SchedulerMeanMS, r.SchedulerMaxMS, r.MissedDeadlines)
	}
	if r.SolverNodes > 0 {
		fmt.Printf("  ilp solver:         %d B&B nodes, %d simplex iters, %.1f ms pivoting\n",
			r.SolverNodes, r.SolverIters, r.SolverPivotMS)
	}
	fmt.Printf("  energy utilization: leader %.2f, follower %.2f (fraction of per-orbit harvest)\n",
		r.LeaderEnergyUtilization, r.FollowerEnergyUtilization)
}
