// Command benchsim benchmarks the simulator's frame loop and writes a
// machine-readable measurement point, so performance history can be
// committed alongside the code (BENCH_sim.json) and CI can smoke-run the
// benchmark on every change. The workload mirrors the sim package's
// BenchmarkRunWorkers benchmarks: a 2000-target static set clustered
// around five sites, an 8-satellite leader-follower constellation, a
// 2-hour pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eagleeye/internal/adacs"
	"eagleeye/internal/cluster"
	"eagleeye/internal/constellation"
	"eagleeye/internal/core"
	"eagleeye/internal/dataset"
	"eagleeye/internal/detect"
	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
	"eagleeye/internal/obs"
	"eagleeye/internal/sched"
	"eagleeye/internal/sim"
)

// pointSchema versions the point layout for downstream consumers of the
// BENCH_sim.json series. Bump it whenever a field changes meaning.
// Schema 3 added the warm-start fields (warm flag, solver-load counters,
// warm-start hit rate and savings). Schema 4 added the LP engine fields
// (lp_core, nnz, refactorizations) when the sparse revised simplex
// landed. Schema 5 added the flight-recorder overhead fields
// (flight_ns_per_op, flight_overhead_pct). Schema 6 added the
// spatial-sharding fields (shards, shard_imbalance, lp_pricing, the
// frame-sweep baseline comparison) when the sharded frame pipeline
// landed.
const pointSchema = 6

// point is one benchmark measurement, shaped for appending to a BENCH_*.json
// time series (one JSON object per run).
type point struct {
	Schema      int     `json:"schema"`
	Name        string  `json:"name"`
	Date        string  `json:"date"`
	Commit      string  `json:"commit,omitempty"`
	GoVersion   string  `json:"go"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Targets     int     `json:"targets"`
	Satellites  int     `json:"satellites"`
	DurationS   float64 `json:"duration_s"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// StageSeconds breaks one instrumented run's wall time down by
	// pipeline stage (detect, cluster, sched, execute, account,
	// ephemeris). The measured iterations above run uninstrumented so the
	// series stays comparable across commits; the breakdown comes from
	// one extra run with a live metrics registry.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`

	// Warm-start fields (schema 3), from the same instrumented run.
	// Warm reports whether the cross-frame warm-start pipeline was on.
	Warm bool `json:"warm"`
	// Solver load: B&B nodes and simplex iterations summed over all
	// scheduling / clustering solves -- the quantities the warm-start
	// pipeline reduces.
	SchedNodes   int `json:"sched_nodes"`
	SchedIters   int `json:"sched_iters"`
	ClusterNodes int `json:"cluster_nodes"`
	ClusterIters int `json:"cluster_iters"`
	// Warm-start accounting across both solvers: candidates offered and
	// verified, hit rate, nodes cut by the warm floor, solves ended early
	// by a bound matching the warm candidate, and LP solves that skipped
	// phase 1 by reusing the previous basis.
	WarmAttempts    int64   `json:"warm_attempts,omitempty"`
	WarmAccepted    int64   `json:"warm_accepted,omitempty"`
	WarmHitRate     float64 `json:"warm_hit_rate,omitempty"`
	WarmPrunedNodes int64   `json:"warm_pruned_nodes,omitempty"`
	WarmEarlyExits  int64   `json:"warm_early_exits,omitempty"`
	BasisReuses     int64   `json:"warm_basis_reuses,omitempty"`

	// LP engine fields (schema 4), from the same instrumented run.
	// LPCore reports which simplex engine the workload's LP solves used:
	// "dense", "sparse", or "mixed" (the CoreAuto crossover picks per
	// instance). NNZ is the largest structural nonzero count among solved
	// instances; Refactorizations counts sparse-core basis rebuilds
	// forced mid-solve.
	LPCore           string `json:"lp_core,omitempty"`
	NNZ              int64  `json:"nnz,omitempty"`
	Refactorizations int64  `json:"refactorizations,omitempty"`

	// Flight-recorder fields (schema 5): the same workload re-measured
	// with span tracing and a flight recorder attached, and the relative
	// overhead versus the uninstrumented NsPerOp. The acceptance budget
	// for the tracing layer is <=5%.
	FlightNsPerOp     int64   `json:"flight_ns_per_op,omitempty"`
	FlightOverheadPct float64 `json:"flight_overhead_pct"`

	// Spatial-sharding fields (schema 6). In frame-sweep points
	// (core/FrameShard) Shards is the measured frame's shard count and
	// BaselineNsPerOp/Speedup compare the sharded frame against the
	// unsharded single-shard run of the same pipeline; in sim points
	// Shards is the instrumented run's total per-shard solves. LPPricing
	// reports whether any sparse LP solve priced entering variables
	// through a partial window ("partial") or every solve swept the full
	// pricing index ("full").
	Shards               int64   `json:"shards,omitempty"`
	ShardImbalance       float64 `json:"shard_imbalance,omitempty"`
	LPPricing            string  `json:"lp_pricing,omitempty"`
	PartialPricingSolves int64   `json:"lp_partial_pricing_solves,omitempty"`
	BaselineNsPerOp      int64   `json:"baseline_ns_per_op,omitempty"`
	Speedup              float64 `json:"speedup,omitempty"`
}

// emit prints the point and appends it to the -out file when set.
func emit(p point, out string) {
	enc, err := json.Marshal(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsim:", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
	if out != "" {
		f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := fmt.Fprintln(f, string(enc)); err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "benchsim:", err)
	os.Exit(1)
}

// gitCommit stamps the point with `git rev-parse HEAD`, or "" outside a
// work tree (release tarballs, bare containers).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func benchWorld(n int, seed int64) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	s := &dataset.Set{Name: "benchsim"}
	centers := []geo.LatLon{
		{Lat: 0, Lon: 0}, {Lat: 20, Lon: 40}, {Lat: -30, Lon: 120},
		{Lat: 50, Lon: -80}, {Lat: -10, Lon: -60},
	}
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		s.Targets = append(s.Targets, dataset.Target{
			ID:    i,
			Pos:   geo.LatLon{Lat: c.Lat + rng.NormFloat64()*3, Lon: c.Lon + rng.NormFloat64()*3}.Normalize(),
			Value: 0.5 + 0.5*rng.Float64(),
		})
	}
	return s
}

// frameTruth scatters n targets uniformly over the 100 km frame, in
// frame-local meters.
func frameTruth(n int, seed int64) []geo.Point2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point2, n)
	for i := range pts {
		pts[i] = geo.Point2{X: (rng.Float64() - 0.5) * 100e3, Y: (rng.Float64() - 0.5) * 100e3}
	}
	return pts
}

// frameShardPipeline builds the paper-parameter sharded frame pipeline:
// YOLO-class detector over the paper tiling, grid-capped set cover, warm
// per-shard solver state. Solver budgets are set high enough that no
// sweep-scale solve is truncated by wall clock, keeping points comparable
// across machines. perShard <= 0 takes the pipeline's default crossover.
func frameShardPipeline(perShard, workers int, reg *obs.Registry) *core.ShardedPipeline {
	copts := mip.Options{TimeLimit: time.Minute, MaxNodes: 100000}
	sopts := copts
	if reg != nil {
		copts.Metrics = obs.NewSolverMetrics(reg, "cluster")
		sopts.Metrics = obs.NewSolverMetrics(reg, "sched")
	}
	sp := &core.ShardedPipeline{
		Template: core.Pipeline{
			Detector:      detect.YoloN(),
			Tiling:        detect.PaperTiling(),
			UseClustering: true,
			ClusterOpts:   cluster.Options{MaxCoverPoints: 256, MaxILPCandidates: 400, MIP: copts},
			HighResSwathM: 10e3,
		},
		NewScheduler:    func() sched.Scheduler { return sched.ILP{State: sched.NewSolverState(), MIP: sopts} },
		NewClusterState: cluster.NewSolverState,
		PerShardTargets: perShard,
	}
	if workers > 1 {
		sp.Parallel = func(n int, fn func(int)) {
			w := workers
			if w > n {
				w = n
			}
			var wg sync.WaitGroup
			next := int32(-1)
			for ; w > 0; w-- {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(atomic.AddInt32(&next, 1))
						if i >= n {
							return
						}
						fn(i)
					}
				}()
			}
			wg.Wait()
		}
	}
	return sp
}

// partialSolves sums the partial-pricing counter across both solver
// stacks of one registry.
func partialSolves(reg *obs.Registry) int64 {
	n := int64(0)
	for _, solver := range []string{"sched", "cluster"} {
		n += reg.CounterValue("eagleeye_lp_partial_pricing_solves_total", obs.Label{Key: "solver", Value: solver})
	}
	return n
}

// baselineCap is the largest frame the unsharded baseline is re-measured
// at during a frame sweep. Above it only the sharded number is recorded
// (the point's baseline fields stay zero) -- the skip is logged, never
// silent.
const baselineCap = 200000

// frameSweepPoint benchmarks one dense targets-count frame through the
// sharded pipeline (core/FrameShard points): sharded at the configured
// crossover versus the same pipeline forced to a single shard, both over
// the identical frame, followers, and seeds.
func frameSweepPoint(targets, sats, workers, perShard, iters int, out string) {
	f := core.Frame{
		Truth:  frameTruth(targets, 60),
		Bounds: geo.NewRectCentered(geo.Point2{}, 100e3, 100e3),
		GSDM:   30,
	}
	fols := make([]sched.Follower, sats)
	for i := range fols {
		p := geo.Point2{Y: -100e3 - 15e3*float64(i)}
		fols[i] = sched.Follower{SubPoint: p, Boresight: p}
	}
	env := sched.Env{AltitudeM: 475e3, GroundSpeedMS: 7300, MaxOffNadirDeg: 11, Slew: adacs.PaperSlew()}
	if iters <= 0 {
		iters = 3
		if targets > baselineCap {
			iters = 1
		}
	}

	measure := func(perShard int, reg *obs.Registry) (int64, core.ShardFrameStats) {
		sp := frameShardPipeline(perShard, workers, reg)
		defer sp.Close()
		// One warm-up frame populates the grow-only arenas and solver pools.
		if _, _, err := sp.ProcessFrame(f, fols, env, 1); err != nil {
			die(err)
		}
		var stats core.ShardFrameStats
		start := time.Now()
		for i := 0; i < iters; i++ {
			var err error
			if _, stats, err = sp.ProcessFrame(f, fols, env, int64(2+i)); err != nil {
				die(err)
			}
		}
		return time.Since(start).Nanoseconds() / int64(iters), stats
	}

	reg := obs.NewRegistry()
	shardNs, stats := measure(perShard, reg)
	p := point{
		Schema:               pointSchema,
		Name:                 "core/FrameShard",
		Date:                 time.Now().UTC().Format(time.RFC3339),
		Commit:               gitCommit(),
		GoVersion:            runtime.Version(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		Workers:              workers,
		Targets:              targets,
		Satellites:           sats,
		Iters:                iters,
		NsPerOp:              shardNs,
		Warm:                 true,
		Shards:               int64(stats.Shards),
		ShardImbalance:       stats.Imbalance(),
		PartialPricingSolves: partialSolves(reg),
	}
	if targets <= baselineCap {
		regBase := obs.NewRegistry()
		// 1<<30 targets per shard forces the single-shard identity plan:
		// the exact pre-sharding pipeline on the same frame.
		baseNs, _ := measure(1<<30, regBase)
		p.BaselineNsPerOp = baseNs
		if shardNs > 0 {
			p.Speedup = float64(baseNs) / float64(shardNs)
		}
		p.PartialPricingSolves += partialSolves(regBase)
	} else {
		fmt.Fprintf(os.Stderr, "benchsim: frame-sweep %d targets: unsharded baseline skipped (cap %d)\n",
			targets, baselineCap)
	}
	if p.PartialPricingSolves > 0 {
		p.LPPricing = "partial"
	} else {
		p.LPPricing = "full"
	}
	emit(p, out)
}

func main() {
	var (
		out          = flag.String("out", "", "append the JSON point to this file ('' means stdout only)")
		workers      = flag.Int("workers", 1, "simulation worker goroutines")
		iters        = flag.Int("iters", 0, "fixed iteration count (0 lets the benchmark framework decide)")
		targets      = flag.Int("targets", 2000, "workload size")
		sats         = flag.Int("sats", 8, "constellation size")
		hours        = flag.Float64("hours", 2, "simulated pass duration")
		warm         = flag.Bool("warm", true, "cross-frame warm-started solving; false records the cold A/B baseline")
		shardTargets = flag.Int("shard-targets", 0, "per-shard target crossover: 0 keeps sharding off in sim mode and auto in a frame sweep")
		frameSweep   = flag.String("frame-sweep", "", "comma-separated frame target counts; bench single dense frames through the sharded pipeline instead of full sim runs")
	)
	flag.Parse()

	if *frameSweep != "" {
		for _, field := range strings.Split(*frameSweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || n <= 0 {
				die(fmt.Errorf("bad -frame-sweep entry %q", field))
			}
			frameSweepPoint(n, *sats, *workers, *shardTargets, *iters, *out)
		}
		return
	}

	cfg := sim.Config{
		Constellation:    constellation.Config{Kind: constellation.LeaderFollower, Satellites: *sats},
		App:              benchWorld(*targets, 60),
		DurationS:        *hours * 3600,
		Seed:             1,
		Workers:          *workers,
		DisableWarmStart: !*warm,
		ShardTargets:     *shardTargets,
	}
	// Warm the grow-only arenas and pools so the point reflects steady state.
	if _, err := sim.Run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchsim:", err)
		os.Exit(1)
	}

	bench := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	var res testing.BenchmarkResult
	if *iters > 0 {
		// Fixed-iteration mode (CI smoke): run the loop body directly under
		// a single timed pass.
		start := time.Now()
		var mem0, mem1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&mem0)
		for i := 0; i < *iters; i++ {
			if _, err := sim.Run(cfg); err != nil {
				fmt.Fprintln(os.Stderr, "benchsim:", err)
				os.Exit(1)
			}
		}
		runtime.ReadMemStats(&mem1)
		res = testing.BenchmarkResult{
			N:         *iters,
			T:         time.Since(start),
			MemAllocs: mem1.Mallocs - mem0.Mallocs,
			MemBytes:  mem1.TotalAlloc - mem0.TotalAlloc,
		}
	} else {
		res = testing.Benchmark(bench)
	}

	// Re-measure the identical workload with a flight recorder attached
	// to price the span-tracing layer, over exactly the iteration count
	// the baseline used -- pairing the passes keeps the overhead delta
	// out of the benchmark framework's adaptive warm-up noise. One
	// recorder across iterations matches the long-session steady state
	// (its ring retention keeps memory bounded).
	fcfg := cfg
	fcfg.Flight = obs.NewFlightRecorder(obs.FlightConfig{})
	fstart := time.Now()
	for i := 0; i < res.N; i++ {
		if _, err := sim.Run(fcfg); err != nil {
			fmt.Fprintln(os.Stderr, "benchsim:", err)
			os.Exit(1)
		}
	}
	fres := testing.BenchmarkResult{N: res.N, T: time.Since(fstart)}

	// One instrumented run collects the per-stage wall-time breakdown; it
	// stays out of the measured loop so NsPerOp remains comparable with
	// points recorded before the observability layer existed.
	stageSeconds := make(map[string]float64)
	reg := obs.NewRegistry()
	warmCount := func(series string) int64 {
		n := int64(0)
		for _, solver := range []string{"sched", "cluster"} {
			n += reg.CounterValue("eagleeye_warmstart_"+series+"_total", obs.Label{Key: "solver", Value: solver})
		}
		return n
	}
	mcfg := cfg
	mcfg.Metrics = reg
	ires, err := sim.Run(mcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsim:", err)
		os.Exit(1)
	}
	for _, stage := range []string{"ephemeris", "detect", "cluster", "sched", "execute", "account"} {
		ns := reg.CounterValue("eagleeye_stage_nanoseconds_total", obs.Label{Key: "stage", Value: stage})
		stageSeconds[stage] = float64(ns) / 1e9
	}

	p := point{
		Schema:       pointSchema,
		Name:         "sim/RunWorkers",
		Date:         time.Now().UTC().Format(time.RFC3339),
		Commit:       gitCommit(),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      *workers,
		Targets:      *targets,
		Satellites:   *sats,
		DurationS:    *hours * 3600,
		Iters:        res.N,
		NsPerOp:      res.NsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		AllocsPerOp:  res.AllocsPerOp(),
		StageSeconds: stageSeconds,

		Warm:            *warm,
		SchedNodes:      ires.SchedNodes,
		SchedIters:      ires.SchedIters,
		ClusterNodes:    ires.ClusterNodes,
		ClusterIters:    ires.ClusterIters,
		WarmAttempts:    warmCount("attempts"),
		WarmAccepted:    warmCount("accepted"),
		WarmPrunedNodes: warmCount("pruned_nodes"),
		WarmEarlyExits:  warmCount("early_exits"),
		BasisReuses:     warmCount("basis_reuses"),
	}
	if p.WarmAttempts > 0 {
		p.WarmHitRate = float64(p.WarmAccepted) / float64(p.WarmAttempts)
	}
	p.FlightNsPerOp = fres.NsPerOp()
	if p.NsPerOp > 0 {
		p.FlightOverheadPct = 100 * (float64(p.FlightNsPerOp) - float64(p.NsPerOp)) / float64(p.NsPerOp)
	}
	var denseSolves, sparseSolves int64
	for _, solver := range []string{"sched", "cluster"} {
		lbl := obs.Label{Key: "solver", Value: solver}
		denseSolves += reg.CounterValue("eagleeye_lp_core_solves_total", lbl, obs.Label{Key: "core", Value: "dense"})
		sparseSolves += reg.CounterValue("eagleeye_lp_core_solves_total", lbl, obs.Label{Key: "core", Value: "sparse"})
		p.Refactorizations += reg.CounterValue("eagleeye_lp_refactorizations_total", lbl)
		if nnz := int64(reg.GaugeValue("eagleeye_lp_instance_nnz_max", lbl)); nnz > p.NNZ {
			p.NNZ = nnz
		}
	}
	switch {
	case denseSolves > 0 && sparseSolves > 0:
		p.LPCore = "mixed"
	case sparseSolves > 0:
		p.LPCore = "sparse"
	case denseSolves > 0:
		p.LPCore = "dense"
	}
	if *shardTargets > 0 {
		p.Shards = reg.CounterValue("eagleeye_shard_solves_total")
		p.ShardImbalance = reg.GaugeValue("eagleeye_shard_imbalance_max")
	}
	p.PartialPricingSolves = partialSolves(reg)
	if p.PartialPricingSolves > 0 {
		p.LPPricing = "partial"
	} else if denseSolves+sparseSolves > 0 {
		p.LPPricing = "full"
	}
	emit(p, *out)
}
