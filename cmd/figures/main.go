// Command figures regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text tables.
//
// Usage:
//
//	figures                 # laptop-sized default scale (minutes)
//	figures -full           # the paper's 24 h, 40-satellite sweeps (hours)
//	figures -only fig11a    # a single figure
//	figures -list           # list figure names
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"eagleeye/internal/experiments"
)

func main() {
	var (
		full   = flag.Bool("full", false, "run the paper-scale sweeps (24 h, large constellations)")
		only   = flag.String("only", "", "comma-separated figure names to run (see -list)")
		list   = flag.Bool("list", false, "list available figures and exit")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	if *full {
		sc = experiments.FullScale()
	}

	figs := map[string]func() []experiments.Table{
		"fig01b":          func() []experiments.Table { return []experiments.Table{experiments.Fig01b(sc)} },
		"fig03":           func() []experiments.Table { return []experiments.Table{experiments.Fig03()} },
		"fig04left":       func() []experiments.Table { return []experiments.Table{experiments.Fig04Left()} },
		"fig04right":      func() []experiments.Table { return []experiments.Table{experiments.Fig04Right(sc)} },
		"fig10":           func() []experiments.Table { return []experiments.Table{experiments.Fig10()} },
		"fig11a":          func() []experiments.Table { return experiments.Fig11a(sc) },
		"fig11b":          func() []experiments.Table { return experiments.Fig11b(sc) },
		"fig11c":          func() []experiments.Table { return experiments.Fig11c(sc) },
		"fig12a":          func() []experiments.Table { return []experiments.Table{experiments.Fig12a(sc)} },
		"fig12b":          func() []experiments.Table { return []experiments.Table{experiments.Fig12b(sc)} },
		"fig13":           func() []experiments.Table { return experiments.Fig13(sc) },
		"fig14a":          func() []experiments.Table { return []experiments.Table{experiments.Fig14a(sc)} },
		"fig14b":          func() []experiments.Table { return []experiments.Table{experiments.Fig14b()} },
		"fig14c":          func() []experiments.Table { return []experiments.Table{experiments.Fig14c(sc)} },
		"fig15":           func() []experiments.Table { return experiments.Fig15(sc) },
		"fig16":           func() []experiments.Table { return []experiments.Table{experiments.Fig16()} },
		"clustering500":   func() []experiments.Table { return []experiments.Table{experiments.ClusteringClaim(500, sc.Seed)} },
		"ablation-slots":  func() []experiments.Table { return []experiments.Table{experiments.AblationSlotCount(sc)} },
		"ablation-polish": func() []experiments.Table { return []experiments.Table{experiments.AblationPolish(sc)} },
		"ablation-cluster": func() []experiments.Table {
			return []experiments.Table{experiments.AblationClusterILPvsGreedy(sc)}
		},
		"ext-planes":    func() []experiments.Table { return []experiments.Table{experiments.ExtOrbitPlanes(sc)} },
		"ext-recapture": func() []experiments.Table { return []experiments.Table{experiments.ExtRecapture(sc)} },
	}
	names := make([]string, 0, len(figs))
	for n := range figs {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	selected := names
	if *only != "" {
		selected = nil
		for _, n := range strings.Split(*only, ",") {
			n = strings.TrimSpace(strings.ToLower(n))
			if _, ok := figs[n]; !ok {
				fmt.Fprintf(os.Stderr, "figures: unknown figure %q (try -list)\n", n)
				os.Exit(1)
			}
			selected = append(selected, n)
		}
	}

	scaleName := "default"
	if *full {
		scaleName = "full (paper-scale)"
	}
	fmt.Printf("EagleEye evaluation harness -- scale: %s, %d figure(s)\n\n", scaleName, len(selected))
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	for _, n := range selected {
		start := time.Now()
		tables := figs[n]()
		experiments.RenderAll(os.Stdout, tables)
		if *csvDir != "" {
			for i := range tables {
				if err := writeCSV(*csvDir, &tables[i]); err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("  [%s took %v]\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}

// writeCSV saves one table under its slug name.
func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.SlugTitle()+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.RenderCSV(f)
}
