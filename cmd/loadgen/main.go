// Command loadgen drives an eagleeyed daemon with many concurrent
// scenario sessions and reports throughput, latency percentiles and
// admission behavior -- the load harness for the scheduling service.
//
// Each session's life cycle is create -> run (xN) -> query -> delete.
// 429 responses are retried with the server's Retry-After backoff and
// counted, so saturation shows up as backpressure, not as dropped
// sessions; any session that cannot complete after retries counts as
// dropped and fails the harness.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -sessions 200 -concurrency 50 -hours 0.5
//	loadgen -addr 127.0.0.1:8080 -sessions 100 -verify   # results == library
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"eagleeye"
	"eagleeye/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "eagleeyed address")
		sessions    = flag.Int("sessions", 100, "total sessions to drive")
		concurrency = flag.Int("concurrency", 25, "concurrent session drivers")
		runs        = flag.Int("runs", 1, "runs per session")
		dataset     = flag.String("dataset", "ships", "scenario dataset")
		sats        = flag.Int("sats", 2, "satellites per scenario")
		followers   = flag.Int("followers", 1, "followers per group")
		hours       = flag.Float64("hours", 0.5, "scenario duration in hours")
		seed        = flag.Int64("seed", 1, "scenario seed (same for every session: tenants share a scenario)")
		retries     = flag.Int("retries", 50, "max 429 retries per request before the session counts as dropped")
		verify      = flag.Bool("verify", false, "run the scenario once through the library and require byte-identical deterministic fields from every session")
	)
	flag.Parse()

	scenario := server.ScenarioConfig{
		Dataset:           *dataset,
		Satellites:        *sats,
		FollowersPerGroup: *followers,
		DurationHours:     *hours,
		Seed:              *seed,
	}

	var want *eagleeye.Result
	if *verify {
		r, err := eagleeye.Run(eagleeye.Config{
			Dataset:           *dataset,
			Satellites:        *sats,
			FollowersPerGroup: *followers,
			DurationHours:     *hours,
			Seed:              *seed,
			Workers:           1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: verify baseline:", err)
			os.Exit(1)
		}
		want = r
	}

	st := &stats{statuses: make(map[int]int)}
	client := &http.Client{Timeout: 5 * time.Minute}
	base := "http://" + *addr

	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := driver{client: client, base: base, st: st, retries: *retries}
			for range next {
				d.driveSession(scenario, *runs, want)
			}
		}()
	}
	for i := 0; i < *sessions; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	st.mu.Lock()
	defer st.mu.Unlock()
	fmt.Printf("loadgen: %d sessions x %d runs against %s in %.2fs\n", *sessions, *runs, *addr, wall.Seconds())
	fmt.Printf("  completed: %d   dropped: %d   verify mismatches: %d\n", st.completed, st.dropped, st.mismatches)
	fmt.Printf("  throughput: %.1f runs/s\n", float64(st.runsDone)/wall.Seconds())
	if len(st.runLatency) > 0 {
		sort.Slice(st.runLatency, func(i, j int) bool { return st.runLatency[i] < st.runLatency[j] })
		fmt.Printf("  run latency: p50 %s  p90 %s  p99 %s  max %s\n",
			pct(st.runLatency, 50), pct(st.runLatency, 90), pct(st.runLatency, 99),
			st.runLatency[len(st.runLatency)-1].Round(time.Millisecond))
	}
	codes := make([]int, 0, len(st.statuses))
	for c := range st.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Printf("  http:")
	for _, c := range codes {
		fmt.Printf(" %d=%d", c, st.statuses[c])
	}
	fmt.Printf("   429-retries=%d\n", st.retried429)
	if st.dropped > 0 || st.mismatches > 0 {
		os.Exit(1)
	}
}

type stats struct {
	mu         sync.Mutex
	completed  int
	dropped    int
	mismatches int
	runsDone   int
	retried429 int
	statuses   map[int]int
	runLatency []time.Duration
}

type driver struct {
	client  *http.Client
	base    string
	st      *stats
	retries int
}

// driveSession runs one session end to end; any unrecoverable step marks
// the session dropped.
func (d *driver) driveSession(sc server.ScenarioConfig, runs int, want *eagleeye.Result) {
	var info server.SessionInfo
	if !d.call("POST", "/v1/sessions", sc, &info, http.StatusCreated) {
		d.drop("create failed")
		return
	}
	id := info.ID
	ok := true
	for r := 0; r < runs && ok; r++ {
		var rr server.RunResponse
		t0 := time.Now()
		if !d.call("POST", "/v1/sessions/"+id+"/run", nil, &rr, http.StatusOK) || rr.Error != "" {
			d.drop("run failed: " + rr.Error)
			ok = false
			break
		}
		lat := time.Since(t0)
		d.st.mu.Lock()
		d.st.runsDone++
		d.st.runLatency = append(d.st.runLatency, lat)
		d.st.mu.Unlock()
		if want != nil && !sameDeterministicResult(want, rr.Result) {
			d.st.mu.Lock()
			d.st.mismatches++
			d.st.mu.Unlock()
			fmt.Fprintf(os.Stderr, "loadgen: session %s run %d diverged from library result:\n  want %+v\n  got  %+v\n",
				id, r, want, rr.Result)
		}
	}
	var final server.SessionInfo
	if ok && !d.call("GET", "/v1/sessions/"+id, nil, &final, http.StatusOK) {
		d.drop("query failed")
		ok = false
	}
	if !d.call("DELETE", "/v1/sessions/"+id, nil, nil, http.StatusNoContent) {
		d.drop("delete failed")
		return
	}
	if ok {
		d.st.mu.Lock()
		d.st.completed++
		d.st.mu.Unlock()
	}
}

func (d *driver) drop(why string) {
	d.st.mu.Lock()
	d.st.dropped++
	d.st.mu.Unlock()
	fmt.Fprintln(os.Stderr, "loadgen: dropped session:", why)
}

// call performs one request, retrying 429s per Retry-After. It reports
// whether the wanted status was reached and decodes the body into out.
func (d *driver) call(method, path string, body, out any, wantStatus int) bool {
	var payload []byte
	if body != nil {
		payload, _ = json.Marshal(body)
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, d.base+path, bytes.NewReader(payload))
		if err != nil {
			return false
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := d.client.Do(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return false
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		d.st.mu.Lock()
		d.st.statuses[resp.StatusCode]++
		d.st.mu.Unlock()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < d.retries {
			d.st.mu.Lock()
			d.st.retried429++
			d.st.mu.Unlock()
			time.Sleep(retryAfter(resp))
			continue
		}
		if resp.StatusCode != wantStatus {
			fmt.Fprintf(os.Stderr, "loadgen: %s %s = %d (want %d): %s\n",
				method, path, resp.StatusCode, wantStatus, bytes.TrimSpace(data))
			return false
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: bad response body:", err)
				return false
			}
		}
		return true
	}
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return time.Second
}

// sameDeterministicResult compares the fields that are identical across
// processes at a fixed seed, skipping the timing-derived ones (scheduler
// wall clock, deadline misses, pivot milliseconds, solver node/iteration
// counts -- those can vary when a solve truncates on wall time).
func sameDeterministicResult(a, b *eagleeye.Result) bool {
	if b == nil {
		return false
	}
	feq := func(x, y float64) bool { return math.Abs(x-y) == 0 }
	return a.TotalTargets == b.TotalTargets &&
		a.Frames == b.Frames &&
		a.Detections == b.Detections &&
		a.Captures == b.Captures &&
		a.HighResCaptured == b.HighResCaptured &&
		feq(a.CoveragePct, b.CoveragePct) &&
		feq(a.LowResSeenPct, b.LowResSeenPct) &&
		feq(a.CrosslinkKB, b.CrosslinkKB) &&
		feq(a.DownlinkableFraction, b.DownlinkableFraction) &&
		feq(a.LeaderEnergyUtilization, b.LeaderEnergyUtilization) &&
		feq(a.FollowerEnergyUtilization, b.FollowerEnergyUtilization)
}

// pct reports the nearest-rank percentile of an ascending-sorted sample:
// the smallest element with at least p% of the sample at or below it,
// i.e. rank ceil(n*p/100) clamped to [1, n] (so p<=0 is the minimum and
// p>=100 the maximum, at any sample count). Exact order statistics, no
// interpolation: small samples report latencies that actually occurred.
func pct(sorted []time.Duration, p int) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := (n*p + 99) / 100 // ceil(n*p/100) for non-negative n*p
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1].Round(time.Millisecond)
}
