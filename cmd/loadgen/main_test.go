package main

import (
	"math"
	"testing"
	"time"
)

// TestPctNearestRank checks pct against an independently computed
// nearest-rank definition over every small sample size the loadgen
// realistically prints for (n=1..5) and the percentiles it reports,
// plus the out-of-range clamps.
func TestPctNearestRank(t *testing.T) {
	for n := 1; n <= 5; n++ {
		// Whole-millisecond ascending sample: 10ms, 20ms, ... so Round
		// inside pct is the identity and the comparison is exact.
		sorted := make([]time.Duration, n)
		for i := range sorted {
			sorted[i] = time.Duration(i+1) * 10 * time.Millisecond
		}
		for _, p := range []int{0, 1, 25, 50, 90, 99, 100} {
			rank := int(math.Ceil(float64(n*p) / 100))
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			if got, want := pct(sorted, p), sorted[rank-1]; got != want {
				t.Errorf("n=%d p=%d: pct = %s, want order statistic #%d = %s", n, p, got, rank, want)
			}
		}
		// The clamps: percentiles outside [0, 100] pin to min/max rather
		// than indexing out of range.
		if got := pct(sorted, -5); got != sorted[0] {
			t.Errorf("n=%d p=-5: pct = %s, want minimum %s", n, got, sorted[0])
		}
		if got := pct(sorted, 150); got != sorted[n-1] {
			t.Errorf("n=%d p=150: pct = %s, want maximum %s", n, got, sorted[n-1])
		}
	}
	if got := pct(nil, 50); got != 0 {
		t.Errorf("empty sample: pct = %s, want 0", got)
	}
}

// TestPctSingleSample pins the n=1 behavior the old rounding got wrong
// at the edges: every percentile of one observation is that observation.
func TestPctSingleSample(t *testing.T) {
	one := []time.Duration{42 * time.Millisecond}
	for p := 0; p <= 100; p++ {
		if got := pct(one, p); got != one[0] {
			t.Fatalf("p=%d of a single sample = %s, want %s", p, got, one[0])
		}
	}
}
