package eagleeye_test

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"eagleeye"
	"eagleeye/internal/server"
)

// TestMetricsDocumented is the docs drift gate: every metric family a
// live registry exports must appear in README.md's metrics documentation
// (the table uses unprefixed names like `frames_total`). Adding a series
// without documenting it fails here, not in a reviewer's head.
func TestMetricsDocumented(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)

	reg := eagleeye.NewMetricsRegistry()

	// Register the simulator families: an instrumented continuous session
	// with a fault event, stepped then checkpointed, touches the sim,
	// solver, warm-start, fault and checkpoint series.
	sess, err := eagleeye.NewSession(eagleeye.Config{
		Dataset:        eagleeye.DatasetShips,
		Satellites:     2,
		DurationHours:  1,
		Continuous:     true,
		RecaptureDedup: true,
		Events: []eagleeye.FaultEvent{
			{AtHours: 0.1, Kind: eagleeye.FaultFollowerFail, Group: 0, Follower: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(eagleeye.StepOptions{Hours: 0.3, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Checkpoint(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// Register the daemon families: a server on the same registry plus one
	// instrumented request.
	srv := server.New(server.Config{Metrics: reg})
	defer srv.Shutdown(0)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions", nil))

	var missing []string
	for _, fam := range reg.Names() {
		short := strings.TrimPrefix(strings.TrimPrefix(fam, "eagleeyed_"), "eagleeye_")
		if !strings.Contains(doc, fam) && !strings.Contains(doc, "`"+short+"`") &&
			!strings.Contains(doc, "`"+short+"{") && !strings.Contains(doc, short+"`") {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		t.Errorf("metric families not documented in README.md:\n  %s", strings.Join(missing, "\n  "))
	}
}
