package eagleeye

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestRunRequiresWorkload(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing dataset accepted")
	}
	if _, err := Run(Config{Dataset: "nope"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Run(Config{Dataset: DatasetShips, Organization: "weird"}); err == nil {
		t.Error("unknown organization accepted")
	}
	if _, err := Run(Config{Dataset: DatasetShips, Scheduler: "weird"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := Run(Config{Dataset: DatasetShips, Detector: "weird"}); err == nil {
		t.Error("unknown detector accepted")
	}
}

func TestRunCustomTargets(t *testing.T) {
	targets := []Target{
		{Lat: 0.1, Lon: 0.1}, {Lat: 0.2, Lon: 0.3}, {Lat: -0.4, Lon: 0.2},
		{Lat: 20.1, Lon: 40.0}, {Lat: 20.3, Lon: 40.2},
	}
	r, err := Run(Config{
		Targets:       targets,
		Satellites:    2,
		DurationHours: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Organization != LeaderFollower {
		t.Errorf("organization = %q", r.Organization)
	}
	if r.TotalTargets != len(targets) {
		t.Errorf("targets = %d", r.TotalTargets)
	}
	if r.Frames == 0 {
		t.Error("no frames simulated")
	}
	if r.CoveragePct < 0 || r.CoveragePct > 100 {
		t.Errorf("coverage = %v", r.CoveragePct)
	}
}

func TestRunWorkersMatchSequential(t *testing.T) {
	// The -workers fast path must not change any reported metric.
	targets := benchWorld(400, 17)
	base := Config{
		Satellites:    8,
		Targets:       targets,
		DurationHours: 1,
		Seed:          5,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 4
	a, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.HighResCaptured != b.HighResCaptured || a.Detections != b.Detections ||
		a.Captures != b.Captures || a.CoveragePct != b.CoveragePct ||
		a.CrosslinkKB != b.CrosslinkKB ||
		a.LeaderEnergyUtilization != b.LeaderEnergyUtilization ||
		a.FollowerEnergyUtilization != b.FollowerEnergyUtilization {
		t.Errorf("parallel run diverges from sequential:\n%+v\nvs\n%+v", a, b)
	}
}

func TestRunBuiltinDatasetShortSim(t *testing.T) {
	r, err := Run(Config{
		Dataset:       DatasetShips,
		Organization:  LowResOnly,
		Satellites:    2,
		DurationHours: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dataset != "ships" || r.Satellites != 2 {
		t.Errorf("metadata wrong: %+v", r)
	}
	if r.CoveragePct <= 0 {
		t.Error("two satellites over two hours should see some ships")
	}
}

func TestScheduleStandalone(t *testing.T) {
	req := ScheduleRequest{
		Targets: []SchedTarget{
			{X: -3e3, Y: 45e3}, {X: 2e3, Y: 60e3}, {X: -1e3, Y: 75e3},
		},
	}
	plan, err := Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan covers %d of 3", len(plan))
	}
	for i := 1; i < len(plan); i++ {
		if plan[i].Follower == plan[i-1].Follower && plan[i].TimeS < plan[i-1].TimeS {
			t.Error("plan not in execution order")
		}
	}
	// Greedy and ABB algorithms work too.
	for _, alg := range []string{SchedulerGreedy, SchedulerABB} {
		req.Algorithm = alg
		if _, err := Schedule(req); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
	req.Algorithm = "weird"
	if _, err := Schedule(req); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestClusterTargetsStandalone(t *testing.T) {
	xs := []float64{0, 1e3, 50e3}
	ys := []float64{0, 1e3, 50e3}
	boxes, err := ClusterTargets(xs, ys, 10e3)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 2 {
		t.Errorf("boxes = %d, want 2", len(boxes))
	}
	covered := 0
	for _, b := range boxes {
		covered += len(b.Members)
		if b.MaxX-b.MinX > 10e3+1 || b.MaxY-b.MinY > 10e3+1 {
			t.Error("box exceeds swath")
		}
	}
	if covered != 3 {
		t.Errorf("covered %d of 3", covered)
	}
	if _, err := ClusterTargets([]float64{1}, []float64{1, 2}, 10e3); err == nil {
		t.Error("mismatched slices accepted")
	}
}

func TestMaxLookaheadDefaults(t *testing.T) {
	ship := MaxLookaheadM(14, 0, 0, 0)
	if ship < 450e3 || ship > 600e3 {
		t.Errorf("ship lookahead = %v", ship)
	}
	if !math.IsInf(MaxLookaheadM(0, 0, 0, 0), 1) {
		t.Error("static lookahead should be unbounded")
	}
}

func TestCameraCatalogue(t *testing.T) {
	cat := CameraCatalogue()
	if len(cat) != 11 { // 9 real + leader + follower
		t.Fatalf("catalogue = %d entries", len(cat))
	}
	for _, c := range cat {
		if c.SwathM <= 0 || c.GSDM <= 0 || c.Name == "" {
			t.Errorf("bad camera %+v", c)
		}
	}
}

func TestRunMixCameraAndExtensions(t *testing.T) {
	targets := []Target{
		{Lat: 0.1, Lon: 0.1}, {Lat: 0.3, Lon: 0.2}, {Lat: 20.1, Lon: 40.1},
	}
	var trace bytes.Buffer
	r, err := Run(Config{
		Organization:     MixCamera,
		Targets:          targets,
		Satellites:       1,
		DurationHours:    2,
		MixComputeDelayS: 2.6,
		Trace:            &trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Organization != MixCamera {
		t.Errorf("organization = %q", r.Organization)
	}
	r2, err := Run(Config{
		Targets:        targets,
		Satellites:     4,
		OrbitPlanes:    2,
		RecaptureDedup: true,
		DurationHours:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.RecaptureSuppressed < 0 {
		t.Error("negative suppression count")
	}
}

func TestRunInvalidCustomTargets(t *testing.T) {
	if _, err := Run(Config{Targets: []Target{{Lat: 95, Lon: 0, Value: 2}}}); err == nil {
		t.Error("invalid custom target accepted")
	}
}

func TestRunDetectorSelection(t *testing.T) {
	r, err := Run(Config{
		Targets:       []Target{{Lat: 0.1, Lon: 0.1}},
		Detector:      "yolo_m",
		DurationHours: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames == 0 {
		t.Error("no frames")
	}
}

func TestEnergyBudgetErrors(t *testing.T) {
	if _, err := EnergyBudget("weird", 1, ""); err == nil {
		t.Error("unknown role accepted")
	}
	if _, err := EnergyBudget("leader", 1, "weird"); err == nil {
		t.Error("unknown detector accepted")
	}
	r, err := EnergyBudget("high-res-baseline", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.TileFactor != 1 {
		t.Errorf("zero tile factor should default to 1, got %v", r.TileFactor)
	}
	for _, role := range []string{"low-res-baseline", "high-res-baseline", "leader", "follower"} {
		rep, err := EnergyBudget(role, 2, "yolo_n")
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalJ <= 0 || rep.HarvestJ <= 0 {
			t.Errorf("%s: empty budget", role)
		}
	}
}

func TestRunSchedulerVariants(t *testing.T) {
	targets := []Target{{Lat: 0.1, Lon: 0.1}, {Lat: 0.2, Lon: 0.4}}
	for _, s := range []string{SchedulerGreedy, SchedulerABB} {
		r, err := Run(Config{Targets: targets, Scheduler: s, DurationHours: 1})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Frames == 0 {
			t.Errorf("%s: no frames", s)
		}
	}
}

func TestScheduleCustomEnvironment(t *testing.T) {
	plan, err := Schedule(ScheduleRequest{
		Targets:          []SchedTarget{{X: 0, Y: 50e3, Value: 2}},
		FollowerOffsetsM: []float64{50e3, 150e3},
		AltitudeM:        500e3,
		GroundSpeedMS:    7500,
		MaxOffNadirDeg:   15,
		SlewRateDegS:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("plan = %d captures", len(plan))
	}
}

func TestPlanTiling(t *testing.T) {
	px, ft, err := PlanTiling("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if px <= 0 || ft <= 0 || ft > 13.7 {
		t.Errorf("tile = %d, time = %v", px, ft)
	}
	// A big model under a tight deadline picks coarser tiles than a small
	// one.
	pxN, _, err := PlanTiling("yolo_n", 13.7, 0)
	if err != nil {
		t.Fatal(err)
	}
	pxX, _, err := PlanTiling("yolo_x", 13.7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pxX <= pxN {
		t.Errorf("yolo_x tile %d should be coarser than yolo_n %d", pxX, pxN)
	}
	if _, _, err := PlanTiling("weird", 0, 0); err == nil {
		t.Error("unknown detector accepted")
	}
	if _, _, err := PlanTiling("yolo_x", 0.1, 0); err == nil {
		t.Error("impossible deadline accepted")
	}
}

func TestGroundContactPerOrbit(t *testing.T) {
	s, err := GroundContactPerOrbitS()
	if err != nil {
		t.Fatal(err)
	}
	// Same order of magnitude as the paper's 360 s/orbit assumption.
	if s < 60 || s > 1800 {
		t.Errorf("contact = %v s/orbit", s)
	}
}

func TestRunWithMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r, err := Run(Config{
		Targets:       benchWorld(400, 17),
		Satellites:    2,
		DurationHours: 2,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("eagleeye_frames_total"); got != int64(r.Frames) {
		t.Errorf("eagleeye_frames_total = %d, Result says %d", got, r.Frames)
	}
	if got := reg.CounterValue("eagleeye_captures_total"); got != int64(r.Captures) {
		t.Errorf("eagleeye_captures_total = %d, Result says %d", got, r.Captures)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "eagleeye_frames_total") {
		t.Error("/metrics scrape missing eagleeye_frames_total")
	}
	var sb strings.Builder
	if err := reg.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"schema"`) {
		t.Error("summary JSON missing schema field")
	}
}
