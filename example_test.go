package eagleeye_test

import (
	"fmt"

	"eagleeye"
)

// ExampleClusterTargets covers three detections with minimum 10 km
// high-resolution footprints: the two nearby targets share one capture.
func ExampleClusterTargets() {
	xs := []float64{0, 2000, 40000}
	ys := []float64{0, 1000, 40000}
	boxes, err := eagleeye.ClusterTargets(xs, ys, 10e3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d detections -> %d captures\n", len(xs), len(boxes))
	// Output:
	// 3 detections -> 2 captures
}

// ExampleSchedule plans one follower's capture sequence over three targets
// ahead of it on the ground track.
func ExampleSchedule() {
	plan, err := eagleeye.Schedule(eagleeye.ScheduleRequest{
		Targets: []eagleeye.SchedTarget{
			{X: -3e3, Y: 45e3},
			{X: 2e3, Y: 60e3},
			{X: -1e3, Y: 75e3},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("captured %d of 3 targets with one follower\n", len(plan))
	// Output:
	// captured 3 of 3 targets with one follower
}

// ExampleMaxLookaheadM evaluates the paper's moving-target limit for a
// ship: at 14 m/s the 100 km leader-follower separation is comfortable.
func ExampleMaxLookaheadM() {
	d := eagleeye.MaxLookaheadM(14, 0, 0, 0)
	fmt.Printf("ship lookahead limit ~%d km\n", int(d/1e3/100)*100)
	// Output:
	// ship lookahead limit ~500 km
}

// ExampleEnergyBudget checks whether a leader can afford double tiling.
func ExampleEnergyBudget() {
	r, err := eagleeye.EnergyBudget("leader", 2, "yolo_m")
	if err != nil {
		panic(err)
	}
	fmt.Printf("2x tiling feasible: %v\n", r.Feasible)
	r4, _ := eagleeye.EnergyBudget("leader", 4, "yolo_m")
	fmt.Printf("4x tiling feasible: %v\n", r4.Feasible)
	// Output:
	// 2x tiling feasible: true
	// 4x tiling feasible: false
}
