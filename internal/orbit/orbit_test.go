package orbit

import (
	"math"
	"testing"
	"time"

	"eagleeye/internal/geo"
	"eagleeye/internal/tle"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func paperProp(t *testing.T) *Propagator {
	t.Helper()
	p, err := New(epoch, 475e3, 97.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(epoch, 50e3, 97, 0, 0); err == nil {
		t.Error("want error below LEO")
	}
	if _, err := New(epoch, 3000e3, 97, 0, 0); err == nil {
		t.Error("want error above LEO")
	}
}

func TestPeriodMatchesPaper(t *testing.T) {
	p := paperProp(t)
	// The paper quotes ~94 minutes at 475 km.
	if min := p.PeriodSeconds() / 60; min < 93 || min > 95 {
		t.Errorf("period = %.2f min, want ~94", min)
	}
}

func TestAltitudeConstant(t *testing.T) {
	p := paperProp(t)
	for _, dt := range []float64{0, 100, 1000, 5000, 86400} {
		s := p.StateAtElapsed(dt)
		if math.Abs(s.AltitudeM-475e3) > 1 {
			t.Errorf("altitude at %v s = %v", dt, s.AltitudeM)
		}
	}
}

func TestGroundSpeed(t *testing.T) {
	p := paperProp(t)
	// LEO ground speed should be ~7-7.5 km/s (paper: V=7.5 km/s at 500 km).
	v := p.GroundSpeedMS()
	if v < 6800 || v > 7800 {
		t.Errorf("ground speed = %v m/s", v)
	}
}

func TestInclinationBoundsLatitude(t *testing.T) {
	p := paperProp(t)
	maxLat := 0.0
	for dt := 0.0; dt < 2*p.PeriodSeconds(); dt += 10 {
		s := p.StateAtElapsed(dt)
		if a := math.Abs(s.SubPoint.Lat); a > maxLat {
			maxLat = a
		}
	}
	// For a retrograde orbit at inclination i, max |lat| = 180 - i = 82.8.
	if maxLat < 80 || maxLat > 83.5 {
		t.Errorf("max |lat| = %v, want ~82.8", maxLat)
	}
}

func TestSubPointStartsAtAscendingNode(t *testing.T) {
	p := paperProp(t)
	s := p.StateAtElapsed(0)
	if math.Abs(s.SubPoint.Lat) > 0.01 {
		t.Errorf("lat at u=0 should be ~0, got %v", s.SubPoint.Lat)
	}
}

func TestGroundTrackAdvancesWestward(t *testing.T) {
	p := paperProp(t)
	// Successive ascending-node crossings shift west because Earth rotates
	// under the orbit: one period at ~94 min shifts ~23.5 degrees.
	period := p.PeriodSeconds()
	lon0 := p.StateAtElapsed(0).SubPoint.Lon
	lon1 := p.StateAtElapsed(period).SubPoint.Lon
	shift := geo.WrapLonDeg(lon1 - lon0)
	if shift > -20 || shift < -28 {
		t.Errorf("nodal shift = %v deg, want ~-23.5", shift)
	}
}

func TestFrameCadence(t *testing.T) {
	p := paperProp(t)
	// 100 km swath at ~7.3 km/s ground speed: ~13-15 s cadence, the paper's
	// "15 s at 500 km with a 100 km swath" frame deadline.
	c := p.FrameCadenceS(100e3)
	if c < 12 || c > 16 {
		t.Errorf("frame cadence = %v s", c)
	}
}

func TestPhaseOffsetIsAlongTrackSeparation(t *testing.T) {
	// A follower trailing by the paper's 100 km should see the leader's
	// sub-satellite point ~100 km ahead at equal times.
	leader, err := New(epoch, 475e3, 97.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sepM := 100e3
	degPerM := 360 / (2 * math.Pi * geo.EarthMeanRadius) // ground arc -> phase angle
	follower, err := New(epoch, 475e3, 97.2, 0, -sepM*degPerM)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []float64{0, 500, 2000} {
		ls := leader.StateAtElapsed(dt)
		fs := follower.StateAtElapsed(dt)
		d := geo.GreatCircleDistance(ls.SubPoint, fs.SubPoint)
		if math.Abs(d-100e3) > 3e3 {
			t.Errorf("dt=%v: separation = %v m, want ~100 km", dt, d)
		}
	}
}

func TestFollowerArrivesWhereLeaderWas(t *testing.T) {
	leader, _ := New(epoch, 475e3, 97.2, 0, 0)
	degPerM := 360 / (2 * math.Pi * geo.EarthMeanRadius) // ground arc -> phase angle
	follower, _ := New(epoch, 475e3, 97.2, 0, -100e3*degPerM)
	// The follower reaches the leader's current sub-point after roughly
	// sep / orbital ground-rate seconds. (Earth rotation moves the point
	// slightly east meanwhile, so allow a few km.)
	lag := 100e3 / (leader.OrbitalSpeedMS() * geo.EarthMeanRadius / (geo.EarthMeanRadius + 475e3))
	ls := leader.StateAtElapsed(1000)
	fs := follower.StateAtElapsed(1000 + lag)
	if d := geo.GreatCircleDistance(ls.SubPoint, fs.SubPoint); d > 8e3 {
		t.Errorf("follower misses leader's point by %v m", d)
	}
}

func TestStateAtMatchesElapsed(t *testing.T) {
	p := paperProp(t)
	s1 := p.StateAt(epoch.Add(1234 * time.Second))
	s2 := p.StateAtElapsed(1234)
	if s1.SubPoint != s2.SubPoint {
		t.Errorf("StateAt and StateAtElapsed disagree: %v vs %v", s1.SubPoint, s2.SubPoint)
	}
}

func TestGroundTrack(t *testing.T) {
	p := paperProp(t)
	trk := p.GroundTrack(0, 100, 10)
	if len(trk) != 11 {
		t.Fatalf("len = %d, want 11", len(trk))
	}
	for i := 1; i < len(trk); i++ {
		d := geo.GreatCircleDistance(trk[i-1].SubPoint, trk[i].SubPoint)
		if d < 60e3 || d > 80e3 {
			t.Errorf("step %d distance = %v m", i, d)
		}
	}
	if p.GroundTrack(0, 100, 0) != nil {
		t.Error("want nil for zero step")
	}
	if p.GroundTrack(0, -5, 1) != nil {
		t.Error("want nil for negative duration")
	}
}

func TestHeadingMostlySouthOrNorth(t *testing.T) {
	// A near-polar orbit's heading should be mostly meridional away from
	// the poles.
	p := paperProp(t)
	s := p.StateAtElapsed(60) // just north of the equator heading north-ish
	// Retrograde (97.2 deg) orbits ascend slightly west of north.
	if !(s.HeadingDeg > 315 || s.HeadingDeg < 45) {
		t.Errorf("ascending heading = %v, want northward", s.HeadingDeg)
	}
	sHalf := p.StateAtElapsed(p.PeriodSeconds() / 2)
	if !(sHalf.HeadingDeg > 135 && sHalf.HeadingDeg < 225) {
		t.Errorf("descending heading = %v, want southward", sHalf.HeadingDeg)
	}
}

func TestFromTLE(t *testing.T) {
	spec := tle.PaperOrbit(epoch)
	el, err := spec.Generate(0, 1, 0, "EE")
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromTLE(el)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.AltitudeM()-475e3) > 2e3 {
		t.Errorf("altitude from TLE = %v", p.AltitudeM())
	}
	if min := p.PeriodSeconds() / 60; min < 93 || min > 95 {
		t.Errorf("period from TLE = %v min", min)
	}
	// Eccentric TLE is rejected.
	el.Eccentricity = 0.2
	if _, err := FromTLE(el); err == nil {
		t.Error("want error for eccentric TLE")
	}
	// Invalid TLE is rejected.
	el.Eccentricity = 0
	el.InclinationDeg = -5
	if _, err := FromTLE(el); err == nil {
		t.Error("want error for invalid TLE")
	}
}

func TestJ2RegressionSignByInclination(t *testing.T) {
	pro, _ := New(epoch, 475e3, 51.6, 0, 0)   // prograde: westward regression
	retro, _ := New(epoch, 475e3, 97.2, 0, 0) // retrograde: eastward precession
	if pro.raanDot >= 0 {
		t.Errorf("prograde raanDot = %v, want negative", pro.raanDot)
	}
	if retro.raanDot <= 0 {
		t.Errorf("retrograde raanDot = %v, want positive", retro.raanDot)
	}
	// Sun-synchronous drift is ~0.9856 deg/day; 97.2 at 475km should be close.
	degPerDay := geo.Rad2Deg(retro.raanDot) * 86400
	if degPerDay < 0.7 || degPerDay > 1.3 {
		t.Errorf("nodal precession = %v deg/day, want ~1", degPerDay)
	}
}

func BenchmarkStateAtElapsed(b *testing.B) {
	p, _ := New(epoch, 475e3, 97.2, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.StateAtElapsed(float64(i % 86400))
	}
}
