package orbit

import (
	"testing"

	"eagleeye/internal/geo"
)

func TestPassesOverSubPoint(t *testing.T) {
	p := paperProp(t)
	// A target exactly on the ground track shortly after epoch.
	target := p.StateAtElapsed(300).SubPoint
	passes := Passes(p, target, 50e3, 2000)
	if len(passes) == 0 {
		t.Fatal("no passes over an on-track target")
	}
	first := passes[0]
	// The pass must bracket t=300 and approach within a few km.
	if first.StartS > 300 || first.EndS < 300 {
		t.Errorf("pass [%v, %v] does not bracket 300", first.StartS, first.EndS)
	}
	if first.MinCrossTrackM > 10e3 {
		t.Errorf("min cross-track = %v for on-track target", first.MinCrossTrackM)
	}
	// Pass length ~ 2*halfswath / groundspeed = 13.7 s.
	if d := first.Duration(); d < 10 || d > 20 {
		t.Errorf("pass duration = %v s", d)
	}
}

func TestPassesNoneForFarTarget(t *testing.T) {
	p := paperProp(t)
	// The sub-point at t=300, displaced 500 km cross-track, is missed by a
	// 50 km half-swath within a single orbit fraction.
	s := p.StateAtElapsed(300)
	off := geo.Destination(s.SubPoint, s.HeadingDeg+90, 500e3)
	if got := Passes(p, off, 50e3, 600); len(got) != 0 {
		t.Errorf("unexpected passes: %+v", got)
	}
	if Passes(p, off, 0, 600) != nil {
		t.Error("zero swath should return nil")
	}
	if Passes(p, off, 50e3, 0) != nil {
		t.Error("zero duration should return nil")
	}
}

func TestPolarRevisit(t *testing.T) {
	p := paperProp(t)
	// Near-polar targets see far more frequent passes than equatorial
	// ones: successive orbits' apex points shift only ~330 km along the
	// maximum-latitude circle, so a target at the first orbit's apex is
	// revisited by the next orbits' tracks. Find the apex numerically.
	apexT, apexLat := 0.0, 0.0
	for ts := 0.0; ts < p.PeriodSeconds(); ts += 5 {
		if lat := p.StateAtElapsed(ts).SubPoint.Lat; lat > apexLat {
			apexLat, apexT = lat, ts
		}
	}
	target := p.StateAtElapsed(apexT).SubPoint
	st := Revisit(p, target, 400e3, 6*p.PeriodSeconds())
	if st.Passes < 2 {
		t.Fatalf("polar target passes = %d, want >= 2", st.Passes)
	}
	if st.MeanGap <= 0 || st.MaxGap < st.MeanGap {
		t.Errorf("gap stats inconsistent: %+v", st)
	}
	// The mean gap cannot be shorter than half a period (at most two
	// crossings per orbit, minus bisection slack).
	if st.MeanGap < p.PeriodSeconds()/2-120 {
		t.Errorf("mean gap %v below half a period", st.MeanGap)
	}
}

func TestEquatorialRevisitSparse(t *testing.T) {
	p := paperProp(t)
	// An equatorial target with a narrow swath sees at most a pass or two
	// per day: the motivation for larger constellations.
	st := Revisit(p, geo.LatLon{Lat: 0, Lon: 40}, 50e3, 86400)
	if st.Passes > 4 {
		t.Errorf("equatorial passes = %d, implausibly many", st.Passes)
	}
}
