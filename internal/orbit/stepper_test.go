package orbit

import (
	"math"
	"testing"

	"eagleeye/internal/geo"
)

func angleDiffDeg(a, b float64) float64 {
	d := math.Mod(a-b, 360)
	if d > 180 {
		d -= 360
	}
	if d < -180 {
		d += 360
	}
	return math.Abs(d)
}

// TestStepperMatchesStateAtElapsed checks the incremental recurrence against
// the direct trig propagation across more than a full orbit, with a nonzero
// RAAN so the J2 drift term participates, and a cadence chosen so the
// resync interval is crossed several times.
func TestStepperMatchesStateAtElapsed(t *testing.T) {
	p, err := New(epoch, 475e3, 97.2, 40, 15)
	if err != nil {
		t.Fatal(err)
	}
	const stepS = 7.3
	st := p.NewStepper(3.5, stepS)
	n := int(1.5*p.PeriodSeconds()/stepS) + 1
	for i := 0; i < n; i++ {
		dt := st.Elapsed()
		want := p.StateAtElapsed(dt)
		got := st.State()

		if d := got.ECEF.Sub(want.ECEF).Norm(); d > 1e-3 {
			t.Fatalf("step %d (dt=%.3f): ECEF off by %g m", i, dt, d)
		}
		if d := geo.GreatCircleDistance(got.SubPoint, want.SubPoint); d > 1e-3 {
			t.Fatalf("step %d (dt=%.3f): sub-point off by %g m", i, dt, d)
		}
		if d := math.Abs(got.AltitudeM - want.AltitudeM); d > 1e-3 {
			t.Fatalf("step %d (dt=%.3f): altitude off by %g m", i, dt, d)
		}
		if d := math.Abs(got.GroundSpeedMS - want.GroundSpeedMS); d > 1e-4 {
			t.Fatalf("step %d (dt=%.3f): ground speed off by %g m/s", i, dt, d)
		}
		if d := angleDiffDeg(got.HeadingDeg, want.HeadingDeg); d > 1e-5 {
			t.Fatalf("step %d (dt=%.3f): heading off by %g deg", i, dt, d)
		}
		if !got.Time.Equal(want.Time) {
			t.Fatalf("step %d (dt=%.3f): time %v != %v", i, dt, got.Time, want.Time)
		}
		if d := geo.GreatCircleDistance(st.SubPoint(), want.SubPoint); d > 1e-3 {
			t.Fatalf("step %d (dt=%.3f): SubPoint() off by %g m", i, dt, d)
		}
		st.Advance()
	}
	if n < 2*resyncSteps {
		t.Fatalf("test covered %d steps; want > %d to cross resync boundaries", n, 2*resyncSteps)
	}
}

// TestStepperRAANDrift confirms the stepper tracks the secular RAAN drift:
// after a full day the drifted node must move the ground track by a
// detectable amount, and the stepper must agree with direct propagation.
func TestStepperRAANDrift(t *testing.T) {
	p := paperProp(t)
	day := 86400.0
	st := p.NewStepper(day, 1)
	want := p.StateAtElapsed(day)
	if d := geo.GreatCircleDistance(st.SubPoint(), want.SubPoint); d > 1e-3 {
		t.Fatalf("after 1 day: stepper sub-point off by %g m", d)
	}
	// Sanity: drift is really present in the model (sun-synchronous design
	// precesses ~1 deg/day).
	driftDeg := geo.Rad2Deg(p.raanDot * day)
	if math.Abs(driftDeg) < 0.5 {
		t.Fatalf("RAAN drift %g deg/day; expected ~1", driftDeg)
	}
}

// TestGroundTrackUsesStepperConsistently: GroundTrack is now stepper-backed;
// it must still agree with direct StateAtElapsed sampling.
func TestGroundTrackMatchesDirect(t *testing.T) {
	p := paperProp(t)
	const startS, durS, stepS = 100.0, 3000.0, 13.0
	track := p.GroundTrack(startS, durS, stepS)
	dt := startS
	for i, s := range track {
		want := p.StateAtElapsed(dt)
		if d := geo.GreatCircleDistance(s.SubPoint, want.SubPoint); d > 1e-3 {
			t.Fatalf("sample %d: sub-point off by %g m", i, d)
		}
		dt += stepS
	}
}
