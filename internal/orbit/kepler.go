package orbit

import (
	"fmt"
	"math"
)

// Kepler's-equation machinery for eccentric orbits. The EagleEye
// constellation flies circular orbits, but real TLEs (and disposal or
// transfer phases) are elliptical; these helpers let FromTLE accept any
// bound orbit instead of rejecting eccentricity outright.

// SolveKepler returns the eccentric anomaly E satisfying Kepler's equation
// M = E - e*sin(E), using Newton iteration with a bisection-safe start.
// M is the mean anomaly in radians; e the eccentricity in [0, 1).
func SolveKepler(meanAnomaly, e float64) (float64, error) {
	if e < 0 || e >= 1 {
		return 0, fmt.Errorf("orbit: eccentricity %v out of [0,1)", e)
	}
	m := math.Mod(meanAnomaly, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	// Standard starter: E0 = M + e*sin(M) is within the Newton basin for
	// all e < 1 on [0, 2pi).
	ecc := m + e*math.Sin(m)
	for i := 0; i < 50; i++ {
		f := ecc - e*math.Sin(ecc) - m
		fp := 1 - e*math.Cos(ecc)
		step := f / fp
		ecc -= step
		if math.Abs(step) < 1e-14 {
			break
		}
	}
	return ecc, nil
}

// TrueAnomaly converts an eccentric anomaly to the true anomaly.
func TrueAnomaly(eccentricAnomaly, e float64) float64 {
	cosE := math.Cos(eccentricAnomaly)
	sinE := math.Sin(eccentricAnomaly)
	denom := 1 - e*cosE
	cosNu := (cosE - e) / denom
	sinNu := math.Sqrt(1-e*e) * sinE / denom
	return math.Atan2(sinNu, cosNu)
}

// RadiusAt returns the orbital radius at eccentric anomaly E for semi-major
// axis a and eccentricity e.
func RadiusAt(a, e, eccentricAnomaly float64) float64 {
	return a * (1 - e*math.Cos(eccentricAnomaly))
}

// EllipticalState computes the position angle (argument of latitude
// relative to perigee, i.e. the true anomaly) and radius at time t for a
// bound Keplerian orbit.
type EllipticalState struct {
	TrueAnomalyRad float64
	RadiusM        float64
}

// PropagateElliptical advances a bound orbit: given semi-major axis a (m),
// eccentricity e, and mean anomaly at epoch M0 (rad), it returns the state
// dt seconds later.
func PropagateElliptical(a, e, m0, dtS float64) (EllipticalState, error) {
	if a <= 0 {
		return EllipticalState{}, fmt.Errorf("orbit: semi-major axis %v must be positive", a)
	}
	const mu = 3.986004418e14
	n := math.Sqrt(mu / (a * a * a))
	m := m0 + n*dtS
	ecc, err := SolveKepler(m, e)
	if err != nil {
		return EllipticalState{}, err
	}
	return EllipticalState{
		TrueAnomalyRad: TrueAnomaly(ecc, e),
		RadiusM:        RadiusAt(a, e, ecc),
	}, nil
}
