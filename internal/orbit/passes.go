package orbit

import (
	"eagleeye/internal/geo"
)

// Pass prediction: when does a satellite's sensor swath sweep over a
// ground target? Constellation designers use this for revisit-rate
// analysis (§2.2 lists revisit rate as a first-class requirement), and
// the recapture extension's evaluation uses it to pick revisit-heavy
// target fields.

// Pass is one overflight of a ground target.
type Pass struct {
	// StartS/EndS bound the interval (seconds from epoch offset 0) during
	// which the target lies within the swath.
	StartS, EndS float64
	// MinCrossTrackM is the closest cross-track approach during the pass.
	MinCrossTrackM float64
}

// Duration returns the pass length in seconds.
func (p Pass) Duration() float64 { return p.EndS - p.StartS }

// Passes scans [0, durS] in coarse steps and returns every interval during
// which the target is within halfSwathM of the sub-satellite track. The
// scan step adapts to the swath so that no pass is skipped (a pass at
// 7.3 km/s across a 100 km swath lasts >13 s; the scanner samples at a
// quarter of that).
func Passes(p *Propagator, target geo.LatLon, halfSwathM, durS float64) []Pass {
	if halfSwathM <= 0 || durS <= 0 {
		return nil
	}
	minPassS := 2 * halfSwathM / p.GroundSpeedMS()
	step := minPassS / 4
	if step < 1 {
		step = 1
	}
	var out []Pass
	inPass := false
	var cur Pass
	for ts := 0.0; ts <= durS; ts += step {
		d := geo.GreatCircleDistance(p.StateAtElapsed(ts).SubPoint, target)
		inside := d <= halfSwathM
		switch {
		case inside && !inPass:
			inPass = true
			cur = Pass{StartS: refineEdge(p, target, halfSwathM, ts-step, ts), MinCrossTrackM: d}
		case inside && inPass:
			if d < cur.MinCrossTrackM {
				cur.MinCrossTrackM = d
			}
		case !inside && inPass:
			cur.EndS = refineEdge(p, target, halfSwathM, ts, ts-step)
			out = append(out, cur)
			inPass = false
		}
	}
	if inPass {
		cur.EndS = durS
		out = append(out, cur)
	}
	return out
}

// refineEdge bisects between an outside time and an inside time for the
// swath-crossing instant. The arguments are (outside, inside) so the same
// helper refines both entries and exits.
func refineEdge(p *Propagator, target geo.LatLon, halfSwathM, outside, inside float64) float64 {
	if outside < 0 {
		outside = 0
	}
	for i := 0; i < 24; i++ {
		mid := (outside + inside) / 2
		d := geo.GreatCircleDistance(p.StateAtElapsed(mid).SubPoint, target)
		if d <= halfSwathM {
			inside = mid
		} else {
			outside = mid
		}
	}
	return (outside + inside) / 2
}

// RevisitStats summarizes the gaps between consecutive passes.
type RevisitStats struct {
	Passes  int
	MeanGap float64 // seconds between pass starts; 0 if fewer than 2 passes
	MaxGap  float64
}

// Revisit computes revisit statistics for a target over the duration.
func Revisit(p *Propagator, target geo.LatLon, halfSwathM, durS float64) RevisitStats {
	passes := Passes(p, target, halfSwathM, durS)
	st := RevisitStats{Passes: len(passes)}
	if len(passes) < 2 {
		return st
	}
	var sum float64
	for i := 1; i < len(passes); i++ {
		gap := passes[i].StartS - passes[i-1].StartS
		sum += gap
		if gap > st.MaxGap {
			st.MaxGap = gap
		}
	}
	st.MeanGap = sum / float64(len(passes)-1)
	return st
}
