package orbit

import (
	"math"
	"time"

	"eagleeye/internal/geo"
)

// resyncSteps bounds the recurrence drift: after this many incremental
// advances the stepper recomputes its angles from math.Sincos. 256 steps of
// last-ulp rotation error accumulate to ~1e-14 on the unit circle (~1e-7 m
// at LEO radius), far below the simulator's 5 km geometric margins.
const resyncSteps = 256

// Stepper propagates a satellite along fixed-cadence sample times
// incrementally. The cadence-locked loops in the simulator (frame loop,
// strip coverage, ground tracks) advance three angles — argument of
// latitude, RAAN, and Earth rotation — by a constant increment per sample,
// so their sines and cosines follow from the angle-sum identities with six
// multiply-adds per angle instead of fresh math.Sin/math.Cos calls.
//
// A Stepper is single-goroutine; each loop owns its own.
type Stepper struct {
	p     *Propagator
	stepS float64
	dt    float64 // elapsed seconds past the epoch at the current sample
	steps int     // incremental advances since the last exact resync

	sinU, cosU float64 // argument of latitude at dt
	sinO, cosO float64 // RAAN at dt
	sinT, cosT float64 // Earth rotation angle at dt

	// Per-step rotation: sin/cos of each angle's per-sample increment.
	dSinU, dCosU float64
	dSinO, dCosO float64
	dSinT, dCosT float64

	// Finite-difference rotation: sin/cos of each angle's advance over
	// fdStepS seconds, for the speed/heading sample in State.
	hSinU, hCosU float64
	hSinO, hCosO float64
	hSinT, hCosT float64
}

// NewStepper returns a stepper positioned at startS seconds past the epoch
// that advances by stepS seconds per Advance call.
func (p *Propagator) NewStepper(startS, stepS float64) *Stepper {
	s := &Stepper{p: p, stepS: stepS, dt: startS}
	s.dSinU, s.dCosU = math.Sincos(p.n * stepS)
	s.dSinO, s.dCosO = math.Sincos(p.raanDot * stepS)
	s.dSinT, s.dCosT = math.Sincos(p.earthRate * stepS)
	s.hSinU, s.hCosU = math.Sincos(p.n * fdStepS)
	s.hSinO, s.hCosO = math.Sincos(p.raanDot * fdStepS)
	s.hSinT, s.hCosT = math.Sincos(p.earthRate * fdStepS)
	s.resync()
	return s
}

// Elapsed returns the current sample time in seconds past the epoch.
func (s *Stepper) Elapsed() float64 { return s.dt }

// Advance moves to the next sample time.
func (s *Stepper) Advance() {
	s.dt += s.stepS
	s.steps++
	if s.steps >= resyncSteps {
		s.resync()
		return
	}
	s.sinU, s.cosU = rotate(s.sinU, s.cosU, s.dSinU, s.dCosU)
	s.sinO, s.cosO = rotate(s.sinO, s.cosO, s.dSinO, s.dCosO)
	s.sinT, s.cosT = rotate(s.sinT, s.cosT, s.dSinT, s.dCosT)
}

func (s *Stepper) resync() {
	p := s.p
	s.sinU, s.cosU = math.Sincos(p.u0 + p.n*s.dt)
	s.sinO, s.cosO = math.Sincos(p.raan0 + p.raanDot*s.dt)
	s.sinT, s.cosT = math.Sincos(p.gst0 + p.earthRate*s.dt)
	s.steps = 0
}

// rotate advances (sin a, cos a) to (sin(a+d), cos(a+d)) given (sin d, cos d).
func rotate(sinA, cosA, sinD, cosD float64) (float64, float64) {
	return sinA*cosD + cosA*sinD, cosA*cosD - sinA*sinD
}

// ecefFrom assembles the Earth-fixed position from angle sines/cosines.
func (s *Stepper) ecefFrom(sinU, cosU, sinO, cosO, sinT, cosT float64) geo.Vec3 {
	p := s.p
	x := p.a * (cosO*cosU - sinO*sinU*p.cosI)
	y := p.a * (sinO*cosU + cosO*sinU*p.cosI)
	z := p.a * (sinU * p.sinI)
	return geo.Vec3{
		X: cosT*x + sinT*y,
		Y: -sinT*x + cosT*y,
		Z: z,
	}
}

// ECEF returns the Earth-fixed position at the current sample time.
func (s *Stepper) ECEF() geo.Vec3 {
	return s.ecefFrom(s.sinU, s.cosU, s.sinO, s.cosO, s.sinT, s.cosT)
}

// SubPoint returns the sub-satellite point at the current sample time. It is
// the cheap path for loops that only need a query position.
func (s *Stepper) SubPoint() geo.LatLon {
	return subPointFromECEF(s.ECEF())
}

// State returns the full kinematic state at the current sample time,
// equivalent to Propagator.StateAtElapsed(s.Elapsed()) up to recurrence
// rounding. The finite-difference companion point reuses the incremental
// angles rotated by the fixed fdStepS advance, so no trig is evaluated.
func (s *Stepper) State() State {
	e := s.ECEF()
	sp := subPointFromECEF(e)

	hSinU, hCosU := rotate(s.sinU, s.cosU, s.hSinU, s.hCosU)
	hSinO, hCosO := rotate(s.sinO, s.cosO, s.hSinO, s.hCosO)
	hSinT, hCosT := rotate(s.sinT, s.cosT, s.hSinT, s.hCosT)
	spNext := subPointFromECEF(s.ecefFrom(hSinU, hCosU, hSinO, hCosO, hSinT, hCosT))

	dist := geo.GreatCircleDistance(sp, spNext)
	p := s.p
	return State{
		Time:          p.epoch.Add(time.Duration(s.dt * float64(time.Second))),
		ECEF:          e,
		SubPoint:      sp,
		AltitudeM:     e.Norm() - geo.EarthMeanRadius,
		GroundSpeedMS: dist / fdStepS,
		HeadingDeg:    geo.InitialBearing(sp, spNext),
	}
}
