package orbit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveKeplerCircular(t *testing.T) {
	// e = 0: E = M exactly.
	for _, m := range []float64{0, 0.5, math.Pi, 5.0} {
		e, err := SolveKepler(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Mod(m, 2*math.Pi)
		if math.Abs(e-want) > 1e-12 {
			t.Errorf("E(%v, 0) = %v, want %v", m, e, want)
		}
	}
}

func TestSolveKeplerSatisfiesEquation(t *testing.T) {
	f := func(mSeed, eSeed uint32) bool {
		m := float64(mSeed%62832) / 1e4 // [0, 2pi)
		e := float64(eSeed%9500) / 1e4  // [0, 0.95)
		ecc, err := SolveKepler(m, e)
		if err != nil {
			return false
		}
		// Kepler's equation holds.
		back := ecc - e*math.Sin(ecc)
		return math.Abs(math.Mod(back-m+3*math.Pi, 2*math.Pi)-math.Pi) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSolveKeplerRejectsBadEccentricity(t *testing.T) {
	if _, err := SolveKepler(1, 1); err == nil {
		t.Error("e=1 accepted")
	}
	if _, err := SolveKepler(1, -0.1); err == nil {
		t.Error("negative e accepted")
	}
}

func TestTrueAnomalySymmetry(t *testing.T) {
	// At perigee (E=0) and apogee (E=pi) the true anomaly matches E.
	for _, e := range []float64{0, 0.3, 0.8} {
		if nu := TrueAnomaly(0, e); math.Abs(nu) > 1e-12 {
			t.Errorf("nu at perigee (e=%v) = %v", e, nu)
		}
		if nu := TrueAnomaly(math.Pi, e); math.Abs(nu-math.Pi) > 1e-9 {
			t.Errorf("nu at apogee (e=%v) = %v", e, nu)
		}
	}
	// For e > 0 the true anomaly leads the eccentric anomaly in the first
	// half of the orbit.
	if nu := TrueAnomaly(1.0, 0.3); nu <= 1.0 {
		t.Errorf("nu = %v should lead E = 1.0", nu)
	}
}

func TestRadiusBounds(t *testing.T) {
	a, e := 7000e3, 0.1
	rp := RadiusAt(a, e, 0)
	ra := RadiusAt(a, e, math.Pi)
	if math.Abs(rp-a*(1-e)) > 1e-6 {
		t.Errorf("perigee radius = %v", rp)
	}
	if math.Abs(ra-a*(1+e)) > 1e-6 {
		t.Errorf("apogee radius = %v", ra)
	}
}

func TestPropagateEllipticalPeriodicity(t *testing.T) {
	a, e, m0 := 6871e3, 0.05, 0.3
	const mu = 3.986004418e14
	period := 2 * math.Pi * math.Sqrt(a*a*a/mu)
	s0, err := PropagateElliptical(a, e, m0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := PropagateElliptical(a, e, m0, period)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s0.TrueAnomalyRad-s1.TrueAnomalyRad) > 1e-6 {
		t.Errorf("true anomaly not periodic: %v vs %v", s0.TrueAnomalyRad, s1.TrueAnomalyRad)
	}
	if math.Abs(s0.RadiusM-s1.RadiusM) > 1 {
		t.Errorf("radius not periodic: %v vs %v", s0.RadiusM, s1.RadiusM)
	}
}

func TestPropagateEllipticalSpeedsNearPerigee(t *testing.T) {
	// Kepler's second law: the true anomaly sweeps faster near perigee
	// than near apogee.
	a, e := 7000e3, 0.2
	const dt = 10.0
	s0, _ := PropagateElliptical(a, e, 0, 0) // perigee
	s1, _ := PropagateElliptical(a, e, 0, dt)
	perigeeRate := angDiff(s1.TrueAnomalyRad, s0.TrueAnomalyRad) / dt

	sA0, _ := PropagateElliptical(a, e, math.Pi, 0) // apogee
	sA1, _ := PropagateElliptical(a, e, math.Pi, dt)
	apogeeRate := angDiff(sA1.TrueAnomalyRad, sA0.TrueAnomalyRad) / dt

	if perigeeRate <= apogeeRate {
		t.Errorf("perigee rate %v not above apogee rate %v", perigeeRate, apogeeRate)
	}
}

func TestPropagateEllipticalErrors(t *testing.T) {
	if _, err := PropagateElliptical(0, 0.1, 0, 10); err == nil {
		t.Error("zero axis accepted")
	}
	if _, err := PropagateElliptical(7000e3, 1.2, 0, 10); err == nil {
		t.Error("hyperbolic eccentricity accepted")
	}
}

func angDiff(a, b float64) float64 {
	d := math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi
	return math.Abs(d)
}
