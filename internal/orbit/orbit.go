// Package orbit implements the orbital-dynamics substrate of the EagleEye
// simulator: Keplerian propagation of near-circular low-Earth orbits with
// secular J2 nodal regression, sub-satellite ground tracks, ground speed and
// heading, and swath-pass geometry.
//
// The paper's prototype uses the cote orbital edge computing simulator for
// these models; this package is the equivalent. The evaluation orbit is
// circular (475 km, 97.2°, ~94 min), so a circular Keplerian model with J2
// drift reproduces the relevant behaviour: ground track advance, ~13 s frame
// cadence at a 100 km swath, and leader-follower along-track separation.
package orbit

import (
	"fmt"
	"math"
	"time"

	"eagleeye/internal/geo"
	"eagleeye/internal/tle"
)

// State is the instantaneous kinematic state of a satellite.
type State struct {
	Time      time.Time
	ECEF      geo.Vec3   // position, meters, Earth-fixed frame
	SubPoint  geo.LatLon // sub-satellite point (spherical)
	AltitudeM float64    // height above the mean-radius sphere
	// GroundSpeedMS is the speed of the sub-satellite point over the
	// Earth's surface in m/s (Earth rotation included).
	GroundSpeedMS float64
	// HeadingDeg is the direction of ground-track motion in degrees
	// clockwise from north.
	HeadingDeg float64
}

// Propagator advances a satellite along a near-circular orbit. The zero
// value is not usable; construct with New or FromTLE.
type Propagator struct {
	epoch     time.Time
	a         float64 // semi-major axis, m
	inc       float64 // inclination, rad
	raan0     float64 // RAAN at epoch, rad
	u0        float64 // argument of latitude at epoch, rad
	n         float64 // mean motion, rad/s
	raanDot   float64 // J2 secular RAAN drift, rad/s
	gst0      float64 // Greenwich sidereal angle at epoch, rad
	earthRate float64 // rad/s
	sinI      float64 // sin/cos of the (fixed) inclination
	cosI      float64
	// groundSpeedMS memoizes the mean sub-point ground speed over one
	// orbit. It is fixed by the orbit geometry, computed once at
	// construction; the old per-call version propagated 16 states on every
	// invocation and sat on the simulator's per-group setup path.
	groundSpeedMS float64
}

// New constructs a propagator for a circular orbit.
//
// altitudeM is the orbit height above the mean-radius sphere; incDeg the
// inclination; raanDeg the right ascension of the ascending node; and
// argLatDeg the argument of latitude (angle from the ascending node along
// the orbit) at the epoch. Satellites phased within one plane differ only
// in argLatDeg.
func New(epoch time.Time, altitudeM, incDeg, raanDeg, argLatDeg float64) (*Propagator, error) {
	if altitudeM < 100e3 || altitudeM > 2000e3 {
		return nil, fmt.Errorf("orbit: altitude %.0f m outside LEO range", altitudeM)
	}
	a := geo.EarthMeanRadius + altitudeM
	n := math.Sqrt(geo.EarthMu / (a * a * a))
	inc := geo.Deg2Rad(incDeg)
	// Secular J2 nodal regression for a circular orbit:
	// dΩ/dt = -3/2 J2 (Re/a)^2 n cos i.
	re := geo.EarthEquatorialRadius
	raanDot := -1.5 * geo.EarthJ2 * (re / a) * (re / a) * n * math.Cos(inc)
	p := &Propagator{
		epoch:     epoch,
		a:         a,
		inc:       inc,
		raan0:     geo.Deg2Rad(raanDeg),
		u0:        geo.Deg2Rad(argLatDeg),
		n:         n,
		raanDot:   raanDot,
		gst0:      0, // epoch defines the Earth-fixed frame alignment
		earthRate: geo.EarthRotationRate,
	}
	p.sinI, p.cosI = math.Sincos(inc)
	p.groundSpeedMS = p.meanGroundSpeedMS()
	return p, nil
}

// FromTLE constructs a propagator from a parsed two-line element set,
// treating the orbit as circular at the TLE's semi-major axis (valid for the
// near-circular nanosatellite orbits this system targets).
func FromTLE(t tle.TLE) (*Propagator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Eccentricity > 0.01 {
		return nil, fmt.Errorf("orbit: eccentricity %v too large for circular model", t.Eccentricity)
	}
	alt := t.SemiMajorAxisM() - geo.EarthMeanRadius
	// For a circular orbit the argument of latitude is argp + mean anomaly.
	argLat := math.Mod(t.ArgPerigeeDeg+t.MeanAnomalyDeg, 360)
	return New(t.Epoch, alt, t.InclinationDeg, t.RAANDeg, argLat)
}

// Epoch returns the propagator's epoch.
func (p *Propagator) Epoch() time.Time { return p.epoch }

// PeriodSeconds returns the orbital period.
func (p *Propagator) PeriodSeconds() float64 { return 2 * math.Pi / p.n }

// AltitudeM returns the orbit altitude above the mean-radius sphere.
func (p *Propagator) AltitudeM() float64 { return p.a - geo.EarthMeanRadius }

// OrbitalSpeedMS returns the inertial orbital speed.
func (p *Propagator) OrbitalSpeedMS() float64 { return p.n * p.a }

// eciAt returns the inertial position at elapsed seconds dt.
func (p *Propagator) eciAt(dt float64) geo.Vec3 {
	u := p.u0 + p.n*dt
	raan := p.raan0 + p.raanDot*dt
	cosU, sinU := math.Cos(u), math.Sin(u)
	cosO, sinO := math.Cos(raan), math.Sin(raan)
	cosI, sinI := math.Cos(p.inc), math.Sin(p.inc)
	// Position in ECI from orbital elements of a circular orbit.
	return geo.Vec3{
		X: p.a * (cosO*cosU - sinO*sinU*cosI),
		Y: p.a * (sinO*cosU + cosO*sinU*cosI),
		Z: p.a * (sinU * sinI),
	}
}

// subPointFromECEF projects an Earth-fixed position onto the spherical
// sub-satellite point.
func subPointFromECEF(e geo.Vec3) geo.LatLon {
	r := e.Norm()
	lat := geo.Rad2Deg(math.Asin(e.Z / r))
	lon := geo.Rad2Deg(math.Atan2(e.Y, e.X))
	return geo.LatLon{Lat: lat, Lon: lon}.Normalize()
}

// ecefAt rotates the inertial position into the Earth-fixed frame.
func (p *Propagator) ecefAt(dt float64) geo.Vec3 {
	eci := p.eciAt(dt)
	theta := p.gst0 + p.earthRate*dt
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	return geo.Vec3{
		X: cosT*eci.X + sinT*eci.Y,
		Y: -sinT*eci.X + cosT*eci.Y,
		Z: eci.Z,
	}
}

// subPointAt returns the spherical sub-satellite point at elapsed seconds dt.
func (p *Propagator) subPointAt(dt float64) geo.LatLon {
	return subPointFromECEF(p.ecefAt(dt))
}

// StateAt returns the full kinematic state at time t.
func (p *Propagator) StateAt(t time.Time) State {
	dt := t.Sub(p.epoch).Seconds()
	return p.stateAtDT(dt, t)
}

// StateAtElapsed returns the state at dt seconds past the epoch. It avoids
// time.Time arithmetic in inner simulation loops.
func (p *Propagator) StateAtElapsed(dt float64) State {
	return p.stateAtDT(dt, p.epoch.Add(time.Duration(dt*float64(time.Second))))
}

// fdStepS is the finite-difference step used to derive ground speed and
// heading from two sub-point samples.
const fdStepS = 0.5

func (p *Propagator) stateAtDT(dt float64, t time.Time) State {
	// One ECEF evaluation per sample point: the sub-point is derived from
	// the position instead of re-propagating through subPointAt.
	e := p.ecefAt(dt)
	sp := subPointFromECEF(e)
	spNext := subPointFromECEF(p.ecefAt(dt + fdStepS))
	dist := geo.GreatCircleDistance(sp, spNext)
	return State{
		Time:          t,
		ECEF:          e,
		SubPoint:      sp,
		AltitudeM:     e.Norm() - geo.EarthMeanRadius,
		GroundSpeedMS: dist / fdStepS,
		HeadingDeg:    geo.InitialBearing(sp, spNext),
	}
}

// GroundTrack samples the sub-satellite track every stepS seconds for
// durS seconds starting at the epoch offset startS, returning one state per
// sample (durS/stepS + 1 samples).
func (p *Propagator) GroundTrack(startS, durS, stepS float64) []State {
	if stepS <= 0 || durS < 0 {
		return nil
	}
	n := int(durS/stepS) + 1
	out := make([]State, 0, n)
	st := p.NewStepper(startS, stepS)
	for i := 0; i < n; i++ {
		out = append(out, st.State())
		st.Advance()
	}
	return out
}

// GroundSpeedMS returns the mean ground speed over one orbit, memoized at
// construction. For the paper's 475 km orbit this is ~7.3 km/s.
func (p *Propagator) GroundSpeedMS() float64 { return p.groundSpeedMS }

func (p *Propagator) meanGroundSpeedMS() float64 {
	// Sub-satellite angular rate ~ orbital rate; Earth rotation modulates by
	// latitude, so sample a quarter orbit for the mean.
	period := p.PeriodSeconds()
	var sum float64
	const samples = 16
	for i := 0; i < samples; i++ {
		sum += p.StateAtElapsed(period * float64(i) / samples).GroundSpeedMS
	}
	return sum / samples
}

// FrameCadenceS returns the time between successive completely-new frames
// for a camera with the given along-track footprint (swath) in meters:
// the leader's hard deadline for detection plus scheduling (§3.2).
func (p *Propagator) FrameCadenceS(alongTrackM float64) float64 {
	v := p.GroundSpeedMS()
	if v <= 0 {
		return math.Inf(1)
	}
	return alongTrackM / v
}
