package cluster

import (
	"math/rand"
	"testing"

	"eagleeye/internal/geo"
)

// BenchmarkILPCover times the set-cover ILP alone (candidate enumeration
// excluded) on a frame-sized instance, the clustering hot path.
func BenchmarkILPCover(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geo.Point2, 40)
	for i := range pts {
		pts[i] = pt(rng.Float64()*60e3, rng.Float64()*60e3)
	}
	opts := Options{}.withDefaults()
	ar := new(coverArena)
	cands := candidates(ar, pts, 10e3, 10e3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ilpCover(ar, pts, cands, opts.MIP); !ok {
			b.Fatal("ilp cover failed")
		}
	}
}
