package cluster

import (
	"sync"

	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
)

// coverArena is the per-cover scratch of the clusterer: candidate
// enumeration working sets, the set-cover problem shell, and the MIP
// workspace. The simulator covers one frame's detections per leader frame
// for tens of thousands of frames, so this is what keeps the clustering
// step's steady state allocation-free. Arenas are pooled (CoverStats is a
// free function called from many worker goroutines); an arena is owned by
// exactly one cover at a time and nothing returned by Cover/CoverStats
// aliases it (clusters are freshly assembled by assign).
type coverArena struct {
	ws   mip.Workspace
	prob mip.Problem

	order []int
	span  []int
	cands []candidate
	keep  []bool

	// masks backs the candidate bitsets, carved sequentially; candidate
	// masks are dead once CoverStats returns, so the chunk is reused.
	masks   []uint64
	maskOff int

	// seen dedups candidates by a hash of their covered set, mapping to the
	// first candidate index with that hash (verified by mask equality, so a
	// hash collision merely keeps a harmless duplicate candidate).
	seen map[uint64]int

	covered []uint64
	gBoxes  []geo.Rect
	gIdx    []int // candidate index per greedy box; -1 for safety-net boxes
	iBoxes  []geo.Rect

	// gridKeys backs the grid-cover fast path's per-point cell keys.
	gridKeys []int64
}

var coverArenas = sync.Pool{New: func() any { return new(coverArena) }}

func getCoverArena() *coverArena  { return coverArenas.Get().(*coverArena) }
func putCoverArena(a *coverArena) { coverArenas.Put(a) }

// newMask carves the next zeroed words-long bitset from the mask chunk.
func (a *coverArena) newMask(words int) []uint64 {
	if len(a.masks)-a.maskOff < words {
		size := 256 * words
		if size < 4096 {
			size = 4096
		}
		a.masks = make([]uint64, size)
		a.maskOff = 0
	}
	m := a.masks[a.maskOff : a.maskOff+words : a.maskOff+words]
	a.maskOff += words
	clear(m)
	return m
}

// dropMask returns the most recent newMask carve to the chunk (used when a
// candidate turns out to be empty or a duplicate).
func (a *coverArena) dropMask(words int) { a.maskOff -= words }

// seenMap returns the arena's dedup map, emptied.
func (a *coverArena) seenMap() map[uint64]int {
	if a.seen == nil {
		a.seen = make(map[uint64]int)
	} else {
		clear(a.seen)
	}
	return a.seen
}

// maskHash is an FNV-1a style fold over the bitset words; it only needs to
// be deterministic and well mixed (collisions degrade dedup, not
// correctness).
func maskHash(mask []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, m := range mask {
		h ^= m
		h *= 1099511628211
	}
	return h
}

func masksEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growUints(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
