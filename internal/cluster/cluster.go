// Package cluster implements EagleEye's target clustering (§4.1): covering
// the targets detected in one low-resolution frame with the minimum number
// of high-resolution image footprints, so that nearby targets are captured
// together in a single follower image.
//
// The problem is a planar point cover by axis-aligned, fixed-size
// rectangles (the high-resolution footprint; the paper assumes the
// high-resolution image sides stay parallel to the low-resolution image
// sides). There is always an optimal cover in which every rectangle has its
// left edge and bottom edge touching target points, so the candidate set is
// the O(M^2) grid of (x from targets, y from targets) placements. The
// minimal cover over those candidates is found with a set-cover ILP solved
// by internal/mip, exactly as the paper uses OR-Tools. A greedy
// most-uncovered-first cover is used as the fallback for frames whose
// candidate count exceeds the ILP budget, and as the baseline for the
// clustering ablation.
package cluster

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"eagleeye/internal/geo"
	"eagleeye/internal/lp"
	"eagleeye/internal/mip"
)

// Cluster is one high-resolution capture covering a set of targets.
type Cluster struct {
	Box     geo.Rect // footprint on the ground (frame-local meters)
	Members []int    // indices into the input point slice
}

// Center returns the aim point for the capture.
func (c Cluster) Center() geo.Point2 { return c.Box.Center() }

// Method records how a cover was computed.
type Method int8

// Cover methods. MethodGrid is the dense-frame fast path: above
// Options.MaxCoverPoints the canonical candidate enumeration (quadratic
// in points, with per-candidate bitsets) is replaced by a linear
// fixed-grid bucketing of the points into w x h cells.
const (
	MethodILP Method = iota
	MethodGreedy
	MethodGrid
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodILP:
		return "ilp"
	case MethodGrid:
		return "grid"
	}
	return "greedy"
}

// Options tunes Cover. The zero value gives paper-faithful defaults.
type Options struct {
	// MaxILPCandidates caps the candidate-rectangle count sent to the ILP;
	// larger instances fall back to the greedy cover. 0 means 700.
	MaxILPCandidates int
	// MaxCoverPoints caps the point count for candidate enumeration;
	// denser frames take the linear grid-cover fast path (MethodGrid),
	// which buckets points into a fixed w x h grid instead of optimizing
	// placements. 0 means 4096 -- far above every seed-scale frame, so
	// historical covers are unchanged. Negative means no cap.
	MaxCoverPoints int
	// ForceGreedy skips the ILP entirely (the ablation baseline).
	ForceGreedy bool
	// MIP forwards search limits to the solver.
	MIP mip.Options
	// State, when non-nil, carries solver state across the frames of one
	// leader: a pinned arena whose LP workspace (and saved simplex basis)
	// survives between covers, plus the greedy cover re-offered to the
	// ILP as a warm-start candidate. Single-owner; call CoverStats from
	// one goroutine in frame order.
	State *SolverState
	// AggressiveWarm selects mip.Options.WarmAggressive for warm solves.
	AggressiveWarm bool
}

// SolverState is per-leader persistent clustering state (see Options.State).
// Construct with NewSolverState.
type SolverState struct {
	ar    *coverArena
	warmX []float64

	// GreedySeeds counts covers where the greedy solution was offered to
	// the ILP as a warm candidate.
	GreedySeeds int
}

// NewSolverState returns a fresh per-leader cover solver state with its
// own pinned arena.
func NewSolverState() *SolverState {
	return &SolverState{ar: new(coverArena)}
}

var statePool = sync.Pool{New: func() any { return NewSolverState() }}

// GetSolverState returns a logically fresh cover solver state from a pool,
// keeping the grown arena capacity of earlier uses (see Reset).
func GetSolverState() *SolverState {
	st := statePool.Get().(*SolverState)
	st.Reset()
	return st
}

// PutSolverState returns a state to the pool. The state must not be used
// after the call.
func PutSolverState(st *SolverState) { statePool.Put(st) }

// Reset clears all decision-relevant state (the saved LP basis and the
// counters) so a recycled state drives exactly the same covers as a fresh
// one; only scratch capacity survives pooling.
func (st *SolverState) Reset() {
	st.ar.ws.InvalidateBasis()
	st.GreedySeeds = 0
}

// warmFromGreedy turns the greedy cover just computed in the arena into a
// candidate-selection vector for the set-cover ILP. The greedy cover is
// feasible by construction, so verification in the MIP layer only fails if
// the safety-net path emitted a non-candidate box (index -1).
func (st *SolverState) warmFromGreedy(ar *coverArena, nc int) ([]float64, bool) {
	if len(ar.gIdx) == 0 {
		return nil, false
	}
	st.warmX = growFloats(st.warmX, nc)
	x := st.warmX[:nc]
	clear(x)
	for _, ci := range ar.gIdx {
		if ci < 0 || ci >= nc {
			return nil, false
		}
		x[ci] = 1
	}
	st.GreedySeeds++
	return x, true
}

func (o Options) withDefaults() Options {
	if o.MaxILPCandidates == 0 {
		// Beyond a few hundred candidate columns the dense-simplex set
		// cover stops paying for itself against greedy; dense frames fall
		// back (the paper's OR-Tools backend has the same structure with a
		// faster LP core, so its threshold is higher, not absent).
		o.MaxILPCandidates = 700
	}
	if o.MaxCoverPoints == 0 {
		o.MaxCoverPoints = 4096
	}
	if o.MIP.TimeLimit == 0 {
		o.MIP.TimeLimit = time.Second
	}
	if o.MIP.MaxNodes == 0 {
		o.MIP.MaxNodes = 300
	}
	return o
}

// SolveStats reports the ILP solver cost of a cover. All fields are zero
// when the greedy path ran (no candidates, ForceGreedy, or budget fallback).
type SolveStats struct {
	Nodes     int           // branch-and-bound nodes explored
	Iters     int           // simplex iterations across all nodes
	Gap       float64       // bound - incumbent when the solve stopped early
	PivotWall time.Duration // wall time spent inside LP solves
	// Warm-start and LP anomaly accounting (flight-recorder signals).
	WarmAttempted    bool // a warm candidate was offered to the solver
	WarmAccepted     bool // the candidate verified feasible
	Refactorizations int  // sparse-core mid-solve refactorizations
	RepairFails      int  // dual-repair attempts that went cold
	// Fallback reports that the optimizing cover was not attempted or not
	// used for a capacity reason: the candidate count exceeded
	// MaxILPCandidates, the ILP solve failed, or the frame exceeded
	// MaxCoverPoints and took the grid path. ForceGreedy is a deliberate
	// configuration, not a fallback.
	Fallback bool
}

// Cover returns a set of w x h rectangles covering every input point, the
// method that produced it, and an error for degenerate inputs. Every point
// appears in exactly one cluster's Members (assigned to the first covering
// rectangle in output order), while rectangles may spatially overlap.
func Cover(pts []geo.Point2, w, h float64, opt Options) ([]Cluster, Method, error) {
	cs, method, _, err := CoverStats(pts, w, h, opt)
	return cs, method, err
}

// CoverStats is Cover plus the ILP solver statistics, for callers that
// surface per-frame solver cost (the simulator trace).
func CoverStats(pts []geo.Point2, w, h float64, opt Options) ([]Cluster, Method, SolveStats, error) {
	if w <= 0 || h <= 0 {
		return nil, 0, SolveStats{}, fmt.Errorf("cluster: rectangle %v x %v must be positive", w, h)
	}
	if len(pts) == 0 {
		return nil, MethodILP, SolveStats{}, nil
	}
	opt = opt.withDefaults()

	var ar *coverArena
	if opt.State != nil {
		// Pinned arena: the MIP/LP workspaces persist across frames so the
		// saved simplex basis can warm the next cover's relaxations.
		ar = opt.State.ar
	} else {
		ar = getCoverArena()
		defer putCoverArena(ar)
	}

	if opt.MaxCoverPoints > 0 && len(pts) > opt.MaxCoverPoints {
		return assign(pts, gridCover(ar, pts, w, h)), MethodGrid, SolveStats{Fallback: true}, nil
	}

	cands := candidates(ar, pts, w, h)
	greedyBoxes := greedyCover(ar, pts, cands)
	method := MethodGreedy
	boxes := greedyBoxes
	var stats SolveStats
	if !opt.ForceGreedy {
		if len(cands) <= opt.MaxILPCandidates {
			mo := opt.MIP
			if st := opt.State; st != nil {
				mo.ReuseBasis = true
				if wx, ok := st.warmFromGreedy(ar, len(cands)); ok {
					mo.WarmStart = wx
					mo.WarmAggressive = opt.AggressiveWarm
				}
			}
			ilpBoxes, st, ok := ilpCover(ar, pts, cands, mo)
			stats = st
			if ok && len(ilpBoxes) <= len(greedyBoxes) {
				boxes = ilpBoxes
				method = MethodILP
			} else if !ok {
				stats.Fallback = true
			}
		} else {
			stats.Fallback = true
		}
	}
	return assign(pts, boxes), method, stats, nil
}

// gridCover buckets points into a fixed grid of w x h cells anchored at
// the origin and emits one rectangle per non-empty cell, in row-major
// (y, then x) cell order. Every point lands in exactly one cell and every
// cell rectangle covers its cell, so the cover is feasible by
// construction; assign then recenters each box on its members' bounding
// box (which fits, since members span at most one cell). Linear in the
// point count, no candidate bitsets -- the only cover path that is
// practical at 10^5..10^6 points per frame.
func gridCover(ar *coverArena, pts []geo.Point2, w, h float64) []geo.Rect {
	keys := growInt64s(ar.gridKeys, len(pts))
	ar.gridKeys = keys
	for i, p := range pts {
		cx := int64(math.Floor(p.X / w))
		cy := int64(math.Floor(p.Y / h))
		// Bias the x half so int64 ordering is (cy, cx) ascending.
		keys[i] = cy<<32 | ((cx + 1<<31) & 0xffffffff)
	}
	slices.Sort(keys)
	boxes := ar.gBoxes[:0]
	defer func() { ar.gBoxes = boxes }()
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue
		}
		cy := k >> 32
		cx := (k & 0xffffffff) - 1<<31
		x0, y0 := float64(cx)*w, float64(cy)*h
		boxes = append(boxes, geo.Rect{Min: geo.Point2{X: x0, Y: y0}, Max: geo.Point2{X: x0 + w, Y: y0 + h}})
	}
	return boxes
}

// candidate is a rectangle placement plus the bitset of points it covers.
type candidate struct {
	box  geo.Rect
	mask []uint64
}

func maskWords(n int) int { return (n + 63) / 64 }

func setBit(mask []uint64, i int)      { mask[i/64] |= 1 << (uint(i) % 64) }
func hasBit(mask []uint64, i int) bool { return mask[i/64]&(1<<(uint(i)%64)) != 0 }
func subsetOf(a, b []uint64) bool {
	for k := range a {
		if a[k]&^b[k] != 0 {
			return false
		}
	}
	return true
}

// candidates enumerates canonical rectangle placements: left edge at some
// point's x, bottom edge at some point's y (restricted to y-values of points
// within the x-span, which preserves optimality), deduplicated by covered
// set and pruned of dominated placements. All working sets, including the
// candidate masks, are carved from the arena; candidates are only valid
// until the arena is released.
func candidates(ar *coverArena, pts []geo.Point2, w, h float64) []candidate {
	n := len(pts)
	words := maskWords(n)
	order := growInts(ar.order, n)
	ar.order = order
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(pts[a].X, pts[b].X) })

	ar.maskOff = 0
	seen := ar.seenMap()
	out := ar.cands[:0]
	const eps = 1e-9
	for _, i := range order {
		x0 := pts[i].X
		// Points within the x-span [x0, x0+w].
		span := ar.span[:0]
		for _, j := range order {
			if pts[j].X >= x0-eps && pts[j].X <= x0+w+eps {
				span = append(span, j)
			}
		}
		ar.span = span
		for _, j := range span {
			y0 := pts[j].Y
			box := geo.Rect{Min: geo.Point2{X: x0, Y: y0}, Max: geo.Point2{X: x0 + w, Y: y0 + h}}
			mask := ar.newMask(words)
			any := false
			for _, k := range span {
				if pts[k].Y >= y0-eps && pts[k].Y <= y0+h+eps {
					setBit(mask, k)
					any = true
				}
			}
			if !any {
				ar.dropMask(words)
				continue
			}
			key := maskHash(mask)
			if fi, hit := seen[key]; hit {
				if masksEqual(out[fi].mask, mask) {
					ar.dropMask(words)
					continue
				}
				// Hash collision between distinct masks: keep the candidate
				// (dedup is only an optimization) and leave the map entry.
			} else {
				seen[key] = len(out)
			}
			out = append(out, candidate{box: box, mask: mask})
		}
	}
	// Dominance pruning: drop candidates whose covered set is a strict
	// subset of another's. Quadratic, so only for moderate counts.
	if len(out) <= 1500 {
		keep := growBools(ar.keep, len(out))
		ar.keep = keep
		for i := range keep {
			keep[i] = true
		}
		for i := range out {
			if !keep[i] {
				continue
			}
			for j := range out {
				if i == j || !keep[j] {
					continue
				}
				if subsetOf(out[j].mask, out[i].mask) && !subsetOf(out[i].mask, out[j].mask) {
					keep[j] = false
				}
			}
		}
		pruned := out[:0]
		for i, c := range out {
			if keep[i] {
				pruned = append(pruned, c)
			}
		}
		out = pruned
	}
	ar.cands = out
	return out
}

// greedyCover picks the candidate covering the most uncovered points until
// all are covered. Candidates always include a singleton for every point,
// so the loop terminates. The returned boxes live in arena scratch; the
// chosen candidate indices are recorded in ar.gIdx (-1 for safety-net
// boxes) so the greedy cover can seed the ILP's warm start.
func greedyCover(ar *coverArena, pts []geo.Point2, cands []candidate) []geo.Rect {
	n := len(pts)
	covered := growUints(ar.covered, maskWords(n))
	ar.covered = covered
	clear(covered)
	remaining := n
	boxes := ar.gBoxes[:0]
	idx := ar.gIdx[:0]
	defer func() { ar.gBoxes, ar.gIdx = boxes, idx }()
	for remaining > 0 {
		best, bestGain := -1, 0
		for ci, c := range cands {
			gain := 0
			for k := range c.mask {
				gain += popcount(c.mask[k] &^ covered[k])
			}
			if gain > bestGain {
				bestGain = gain
				best = ci
			}
		}
		if best < 0 {
			// Unreachable given canonical candidates; cover leftovers with
			// per-point rectangles as a safety net.
			for i := 0; i < n; i++ {
				if !hasBit(covered, i) {
					boxes = append(boxes, geo.NewRectCentered(pts[i], 1, 1))
					idx = append(idx, -1)
					setBit(covered, i)
					remaining--
				}
			}
			break
		}
		boxes = append(boxes, cands[best].box)
		idx = append(idx, best)
		for k := range covered {
			newBits := cands[best].mask[k] &^ covered[k]
			covered[k] |= newBits
			remaining -= popcount(newBits)
		}
	}
	return boxes
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// ilpCover solves the set-cover ILP: minimize the number of selected
// candidates subject to every point being covered at least once. The
// problem shell, constraint rows, and solver state all come from the arena;
// the returned boxes live in arena scratch.
func ilpCover(ar *coverArena, pts []geo.Point2, cands []candidate, opts mip.Options) ([]geo.Rect, SolveStats, bool) {
	n := len(pts)
	nc := len(cands)
	p := &ar.prob
	p.C = growFloats(p.C, nc)
	p.Lower = growFloats(p.Lower, nc)
	p.Upper = growFloats(p.Upper, nc)
	p.Integer = growBools(p.Integer, nc)
	for j := 0; j < nc; j++ {
		p.C[j] = -1 // maximize -count == minimize count
		p.Lower[j] = 0
		p.Upper[j] = 1
		p.Integer[j] = true
	}
	// Cover rows are emitted in CSR form: one >= row per point listing the
	// candidates that cover it. An uncoverable point aborts mid-build;
	// that is safe because the next use of the arena problem starts with
	// its own ResetSparseRows.
	p.ResetSparseRows()
	for i := 0; i < n; i++ {
		any := false
		for j, c := range cands {
			if hasBit(c.mask, i) {
				p.Coef(j, 1)
				any = true
			}
		}
		if !any {
			return nil, SolveStats{}, false
		}
		p.EndRow(lp.GE, 1)
	}
	sol, err := ar.ws.SolveOpts(p, opts)
	stats := SolveStats{Nodes: sol.Nodes, Iters: sol.Iters, Gap: sol.Gap, PivotWall: sol.PivotWall,
		WarmAttempted: sol.WarmAttempted, WarmAccepted: sol.WarmAccepted,
		Refactorizations: sol.Refactorizations, RepairFails: sol.RepairFails}
	if err != nil || (sol.Status != mip.StatusOptimal && sol.Status != mip.StatusFeasible) {
		return nil, stats, false
	}
	boxes := ar.iBoxes[:0]
	for j, v := range sol.X {
		if math.Round(v) >= 1 {
			boxes = append(boxes, cands[j].box)
		}
	}
	ar.iBoxes = boxes
	return boxes, stats, true
}

// assign maps each point to the first covering rectangle, producing the
// final clusters. Rectangles covering no points (possible after ILP ties)
// are dropped. Each kept rectangle is then recentered on its members'
// bounding-box midpoint: canonical cover candidates touch points with
// their lower-left corner, but the capture should aim at the middle of
// the clustered targets (Fig. 7) so edge targets get maximal margin
// against pointing error and target motion.
func assign(pts []geo.Point2, boxes []geo.Rect) []Cluster {
	clusters := make([]Cluster, len(boxes))
	for i := range boxes {
		clusters[i].Box = boxes[i]
	}
	for pi, p := range pts {
		for bi := range clusters {
			if clusters[bi].Box.Contains(p) {
				clusters[bi].Members = append(clusters[bi].Members, pi)
				break
			}
		}
	}
	out := clusters[:0]
	for _, c := range clusters {
		if len(c.Members) == 0 {
			continue
		}
		lo := pts[c.Members[0]]
		hi := lo
		for _, m := range c.Members[1:] {
			p := pts[m]
			lo.X, lo.Y = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y)
			hi.X, hi.Y = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y)
		}
		mid := geo.Point2{X: (lo.X + hi.X) / 2, Y: (lo.Y + hi.Y) / 2}
		c.Box = geo.NewRectCentered(mid, c.Box.Width(), c.Box.Height())
		out = append(out, c)
	}
	return out
}

// Validate checks that clusters jointly cover all points exactly once and
// that every member lies inside its cluster's box. It is used by tests and
// by the simulator's self-checks.
func Validate(pts []geo.Point2, clusters []Cluster) error {
	seen := make([]bool, len(pts))
	for ci, c := range clusters {
		for _, m := range c.Members {
			if m < 0 || m >= len(pts) {
				return fmt.Errorf("cluster %d: member %d out of range", ci, m)
			}
			if seen[m] {
				return fmt.Errorf("cluster %d: point %d assigned twice", ci, m)
			}
			seen[m] = true
			if !c.Box.Contains(pts[m]) {
				return fmt.Errorf("cluster %d: point %d (%v) outside box %v", ci, m, pts[m], c.Box)
			}
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("point %d uncovered", i)
		}
	}
	return nil
}
