package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eagleeye/internal/geo"
)

func pt(x, y float64) geo.Point2 { return geo.Point2{X: x, Y: y} }

func TestEmptyInput(t *testing.T) {
	cs, _, err := Cover(nil, 10, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Errorf("clusters = %d, want 0", len(cs))
	}
}

func TestBadRect(t *testing.T) {
	if _, _, err := Cover([]geo.Point2{pt(0, 0)}, 0, 5, Options{}); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := Cover([]geo.Point2{pt(0, 0)}, 5, -1, Options{}); err == nil {
		t.Error("negative height accepted")
	}
}

func TestSinglePoint(t *testing.T) {
	pts := []geo.Point2{pt(3, 4)}
	cs, method, err := Cover(pts, 10, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(cs))
	}
	if method != MethodILP {
		t.Errorf("method = %v", method)
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}
}

func TestTwoNearbyPointsOneRect(t *testing.T) {
	pts := []geo.Point2{pt(0, 0), pt(5, 5)}
	cs, _, err := Cover(pts, 10, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Errorf("clusters = %d, want 1 (both fit in one 10x10 box)", len(cs))
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}
}

func TestTwoFarPointsTwoRects(t *testing.T) {
	pts := []geo.Point2{pt(0, 0), pt(100, 100)}
	cs, _, err := Cover(pts, 10, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Errorf("clusters = %d, want 2", len(cs))
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}
}

func TestClusterChainNeedsTwo(t *testing.T) {
	// Three points in a row, 8 apart: (0,0), (8,0), (16,0) with a 10-wide
	// box. One box covers at most two adjacent points; optimal = 2.
	pts := []geo.Point2{pt(0, 0), pt(8, 0), pt(16, 0)}
	cs, method, err := Cover(pts, 10, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Errorf("clusters = %d, want 2", len(cs))
	}
	if method != MethodILP {
		t.Errorf("method = %v, want ILP", method)
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}
}

// TestILPBeatsGreedyCase is the classic set-cover instance where greedy is
// suboptimal: the ILP must find the smaller cover.
func TestILPAtMostGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(30)
		pts := make([]geo.Point2, n)
		for i := range pts {
			pts[i] = pt(rng.Float64()*100, rng.Float64()*100)
		}
		ilpCS, m1, err := Cover(pts, 25, 25, Options{})
		if err != nil {
			t.Fatal(err)
		}
		greedyCS, m2, err := Cover(pts, 25, 25, Options{ForceGreedy: true})
		if err != nil {
			t.Fatal(err)
		}
		if m2 != MethodGreedy {
			t.Fatalf("forced greedy reported %v", m2)
		}
		if m1 == MethodILP && len(ilpCS) > len(greedyCS) {
			t.Errorf("trial %d: ILP cover %d larger than greedy %d", trial, len(ilpCS), len(greedyCS))
		}
		if err := Validate(pts, ilpCS); err != nil {
			t.Errorf("trial %d ilp: %v", trial, err)
		}
		if err := Validate(pts, greedyCS); err != nil {
			t.Errorf("trial %d greedy: %v", trial, err)
		}
	}
}

// bruteForceMinCover finds the true minimum cover size by enumerating
// candidate subsets (exponential; tiny inputs only).
func bruteForceMinCover(t *testing.T, pts []geo.Point2, w, h float64) int {
	t.Helper()
	cands := candidates(new(coverArena), pts, w, h)
	n := len(pts)
	best := n + 1
	var rec func(i int, mask []uint64, used int)
	full := make([]uint64, maskWords(n))
	for i := 0; i < n; i++ {
		setBit(full, i)
	}
	isFull := func(m []uint64) bool {
		for k := range m {
			if m[k] != full[k] {
				return false
			}
		}
		return true
	}
	rec = func(i int, mask []uint64, used int) {
		if used >= best {
			return
		}
		if isFull(mask) {
			best = used
			return
		}
		if i >= len(cands) {
			return
		}
		// Include candidate i.
		nm := make([]uint64, len(mask))
		for k := range mask {
			nm[k] = mask[k] | cands[i].mask[k]
		}
		rec(i+1, nm, used+1)
		rec(i+1, mask, used)
	}
	rec(0, make([]uint64, maskWords(n)), 0)
	return best
}

func TestILPOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(5)
		pts := make([]geo.Point2, n)
		for i := range pts {
			pts[i] = pt(rng.Float64()*40, rng.Float64()*40)
		}
		want := bruteForceMinCover(t, pts, 15, 15)
		cs, method, err := Cover(pts, 15, 15, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if method != MethodILP {
			t.Fatalf("trial %d: method %v", trial, method)
		}
		if len(cs) != want {
			t.Errorf("trial %d: ILP cover %d, brute force %d (pts %v)", trial, len(cs), want, pts)
		}
	}
}

func TestCoverPropertyAlwaysValid(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed%40) + 1
		pts := make([]geo.Point2, n)
		for i := range pts {
			pts[i] = pt(rng.Float64()*90000-45000, rng.Float64()*90000-45000)
		}
		cs, _, err := Cover(pts, 10000, 10000, Options{})
		if err != nil {
			return false
		}
		return Validate(pts, cs) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLargeInputFallsBackToGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 120
	pts := make([]geo.Point2, n)
	for i := range pts {
		pts[i] = pt(rng.Float64()*100000, rng.Float64()*100000)
	}
	cs, method, err := Cover(pts, 10000, 10000, Options{MaxILPCandidates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodGreedy {
		t.Errorf("method = %v, want greedy fallback", method)
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geo.Point2{pt(1, 1), pt(1, 1), pt(1, 1)}
	cs, _, err := Cover(pts, 5, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Errorf("clusters = %d, want 1", len(cs))
	}
	if len(cs[0].Members) != 3 {
		t.Errorf("members = %d, want 3", len(cs[0].Members))
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	pts := []geo.Point2{pt(0, 0), pt(50, 50)}
	// Missing coverage.
	cs := []Cluster{{Box: geo.NewRectCentered(pt(0, 0), 10, 10), Members: []int{0}}}
	if err := Validate(pts, cs); err == nil {
		t.Error("uncovered point not detected")
	}
	// Member outside box.
	cs = []Cluster{
		{Box: geo.NewRectCentered(pt(0, 0), 10, 10), Members: []int{0, 1}},
	}
	if err := Validate(pts, cs); err == nil {
		t.Error("outside member not detected")
	}
	// Double assignment.
	cs = []Cluster{
		{Box: geo.NewRectCentered(pt(0, 0), 10, 10), Members: []int{0}},
		{Box: geo.NewRectCentered(pt(0, 0), 10, 10), Members: []int{0}},
	}
	if err := Validate(pts, cs); err == nil {
		t.Error("double assignment not detected")
	}
	// Out of range member.
	cs = []Cluster{{Box: geo.NewRectCentered(pt(0, 0), 10, 10), Members: []int{7}}}
	if err := Validate(pts, cs); err == nil {
		t.Error("out-of-range member not detected")
	}
}

func TestCenterAimPoint(t *testing.T) {
	c := Cluster{Box: geo.Rect{Min: pt(0, 0), Max: pt(10, 20)}}
	if c.Center() != pt(5, 10) {
		t.Errorf("center = %v", c.Center())
	}
}

func TestMethodString(t *testing.T) {
	if MethodILP.String() != "ilp" || MethodGreedy.String() != "greedy" || MethodGrid.String() != "grid" {
		t.Error("method strings wrong")
	}
}

// ilpBudgetWorld builds n pairwise-distant points, each needing its own
// box, so the candidate set is exactly n singleton placements and the
// MaxILPCandidates boundary can be pinned precisely.
func ilpBudgetWorld(n int) []geo.Point2 {
	pts := make([]geo.Point2, n)
	for i := range pts {
		pts[i] = pt(float64(i)*1e6, float64(i%3)*1e6)
	}
	return pts
}

func TestILPCandidateBudgetBoundary(t *testing.T) {
	const n = 12
	pts := ilpBudgetWorld(n)

	// Exactly at budget: the ILP runs and no fallback is recorded.
	cs, method, stats, err := CoverStats(pts, 10, 10, Options{MaxILPCandidates: n})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodILP {
		t.Errorf("at budget: method = %v, want ilp", method)
	}
	if stats.Fallback {
		t.Error("at budget: fallback recorded")
	}
	if stats.Nodes == 0 && stats.Iters == 0 {
		t.Error("at budget: no solver activity recorded")
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}

	// One over budget: greedy runs instead and the fallback is counted.
	cs, method, stats, err = CoverStats(pts, 10, 10, Options{MaxILPCandidates: n - 1})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodGreedy {
		t.Errorf("over budget: method = %v, want greedy", method)
	}
	if !stats.Fallback {
		t.Error("over budget: fallback not counted in SolveStats")
	}
	if stats.Nodes != 0 || stats.Iters != 0 {
		t.Errorf("over budget: solver ran anyway: %+v", stats)
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}

	// ForceGreedy is a deliberate configuration, not a fallback.
	_, method, stats, err = CoverStats(pts, 10, 10, Options{ForceGreedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodGreedy || stats.Fallback {
		t.Errorf("force-greedy: method=%v fallback=%v", method, stats.Fallback)
	}
}

func TestGridCoverDenseFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 5000
	pts := make([]geo.Point2, n)
	for i := range pts {
		pts[i] = pt(rng.Float64()*200000-100000, rng.Float64()*200000-100000)
	}
	cs, method, stats, err := CoverStats(pts, 400, 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodGrid {
		t.Fatalf("method = %v, want grid above MaxCoverPoints", method)
	}
	if !stats.Fallback {
		t.Error("grid path not counted as fallback")
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}

	// Deterministic: a second cover of the same frame is identical.
	cs2, _, _, err := CoverStats(pts, 400, 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(cs2) {
		t.Fatalf("grid cover not deterministic: %d vs %d clusters", len(cs), len(cs2))
	}
	for i := range cs {
		if cs[i].Box != cs2[i].Box || len(cs[i].Members) != len(cs2[i].Members) {
			t.Fatalf("grid cover not deterministic at cluster %d", i)
		}
	}

	// MaxCoverPoints < 0 disables the cap: the same frame goes down the
	// candidate path (greedy here, over any plausible ILP budget).
	_, method, _, err = CoverStats(pts[:64], 400, 400, Options{MaxCoverPoints: 32})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodGrid {
		t.Errorf("small frame above explicit cap: method = %v, want grid", method)
	}
	_, method, _, err = CoverStats(pts[:64], 400, 400, Options{MaxCoverPoints: -1})
	if err != nil {
		t.Fatal(err)
	}
	if method == MethodGrid {
		t.Error("negative cap still took the grid path")
	}
}

func TestGridCoverNegativeCoordinates(t *testing.T) {
	// Points straddling the origin: cell ownership must floor, not
	// truncate toward zero, or boxes on either side of an axis collide.
	pts := []geo.Point2{pt(-5, -5), pt(5, 5), pt(-5, 5), pt(5, -5)}
	cs, method, _, err := CoverStats(pts, 8, 8, Options{MaxCoverPoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodGrid {
		t.Fatalf("method = %v", method)
	}
	if len(cs) != 4 {
		t.Errorf("clusters = %d, want 4 (one per quadrant)", len(cs))
	}
	if err := Validate(pts, cs); err != nil {
		t.Error(err)
	}
}

func BenchmarkCover50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point2, 50)
	for i := range pts {
		pts[i] = pt(rng.Float64()*100000, rng.Float64()*100000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Cover(pts, 10000, 10000, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
