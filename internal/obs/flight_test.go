package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func offerFrame(b *FrameBuilder, frame int, durNS int64, anom Anomaly) {
	b.Start(0, frame, float64(frame))
	b.Add(0, SpanStage, "detect", 0, durNS/2, 10, 3)
	b.Add(0, SpanStage, "sched", durNS/2, durNS/2, 3, 1)
	if anom != 0 {
		b.Anomaly(anom)
	}
	b.Finish(durNS)
}

func TestFlightRingAndTopK(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Ring: 4, TopK: 2, Pinned: 4})
	fr.SetSession("s1")
	b := fr.Builder()
	// Frame i has duration 100*(i+1); frame 2 is artificially slowest.
	durs := []int64{100, 200, 900, 300, 400, 500}
	for i, d := range durs {
		offerFrame(b, i, d, 0)
	}
	d := fr.Snapshot()
	if d.Schema != FlightSchema {
		t.Fatalf("schema = %d, want %d", d.Schema, FlightSchema)
	}
	if d.Frames != 6 {
		t.Fatalf("frames = %d, want 6", d.Frames)
	}
	if len(d.Recent) != 4 {
		t.Fatalf("recent = %d frames, want ring size 4", len(d.Recent))
	}
	// Oldest-first: frames 2..5 survive in the ring of 4.
	for i, f := range d.Recent {
		if f.Frame != i+2 {
			t.Fatalf("recent[%d].Frame = %d, want %d", i, f.Frame, i+2)
		}
		if f.Session != "s1" {
			t.Fatalf("recent[%d].Session = %q, want s1", i, f.Session)
		}
	}
	if len(d.Slowest) != 2 || d.Slowest[0].DurNS != 900 || d.Slowest[1].DurNS != 500 {
		t.Fatalf("slowest = %+v, want durations [900 500]", d.Slowest)
	}
	if d.Slowest[0].Frame != 2 {
		t.Fatalf("slowest[0].Frame = %d, want 2", d.Slowest[0].Frame)
	}
	if len(d.Slowest[0].Spans) != 3 {
		t.Fatalf("slowest[0] has %d spans, want 3", len(d.Slowest[0].Spans))
	}
}

// The acceptance-criteria core: an anomaly pinned early must still be
// retrievable after 10k+ subsequent frames churn every bounded buffer.
func TestFlightAnomalySurvives10kFrames(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Ring: 64, TopK: 8, Pinned: 16})
	fr.SetSession("s1")
	b := fr.Builder()

	offerFrame(b, 0, 100, 0)
	b.Event(0, 1, 60*3600, AnomFault, "follower-fail")
	offerFrame(b, 2, 100, AnomFallback)

	// 10k+ later frames, some of them anomalous so the pinned FIFO also
	// churns past its capacity.
	for i := 3; i < 10500; i++ {
		a := Anomaly(0)
		if i%97 == 0 {
			a = AnomWarmReject
		}
		offerFrame(b, i, 100+int64(i%7), a)
	}

	d := fr.Snapshot()
	if d.PinnedDropped == 0 {
		t.Fatalf("pinned FIFO never overflowed; test is not exercising churn")
	}
	var gotFault, gotFallback bool
	for _, f := range d.Pinned {
		for _, k := range f.Anomalies {
			if k == "fault-event" && f.Spans[0].Name == "follower-fail" {
				gotFault = true
			}
			if k == "solver-fallback" && f.Frame == 2 {
				gotFallback = true
			}
		}
	}
	if !gotFault {
		t.Fatalf("hour-60 fault event lost after 10k frames; pinned = %d entries", len(d.Pinned))
	}
	if !gotFallback {
		t.Fatalf("first solver-fallback frame lost after 10k frames")
	}
	if d.Anomalies["fault-event"] != 1 {
		t.Fatalf("anomaly counts = %v, want fault-event:1", d.Anomalies)
	}
	if len(d.Pinned) > 16+numAnomalies {
		t.Fatalf("pinned grew to %d entries; retention is unbounded", len(d.Pinned))
	}
}

// Bounded memory: after warm-up, offering frames of the same shape must
// not allocate new span arrays in the recorder or the builder.
func TestFlightSteadyStateAllocs(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Ring: 32, TopK: 4, Pinned: 8})
	b := fr.Builder()
	for i := 0; i < 100; i++ { // warm-up: fill ring, top-K, grow arenas
		offerFrame(b, i, int64(1000-i), 0)
	}
	allocs := testing.AllocsPerRun(200, func() {
		offerFrame(b, 100, 10, 0)
	})
	if allocs > 0 {
		t.Fatalf("steady-state offer allocates %.1f allocs/frame, want 0", allocs)
	}
}

func TestFlightPinRequest(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Ring: 8, TopK: 2, Pinned: 8})
	fr.SetSession("s1")
	fr.SetRequest("req-1")
	b := fr.Builder()
	offerFrame(b, 0, 100, 0)

	// Deadline fires while the run is still in flight: retro-tag + arm.
	fr.PinRequest("req-1", AnomRequestDeadline, "deadline 504")
	offerFrame(b, 1, 100, 0) // offered after the pin, same request
	fr.ClearRequest()
	offerFrame(b, 2, 100, 0) // after clear: unpinned

	d := fr.Snapshot()
	if d.Recent[0].Anomalies == nil || d.Recent[0].Anomalies[0] != "request-deadline" {
		t.Fatalf("retro-tag missed frame 0: %+v", d.Recent[0])
	}
	if len(d.Recent[1].Anomalies) == 0 {
		t.Fatalf("armed pin missed frame 1: %+v", d.Recent[1])
	}
	if len(d.Recent[2].Anomalies) != 0 {
		t.Fatalf("frame 2 after ClearRequest still pinned: %+v", d.Recent[2])
	}
	var synthetic bool
	for _, f := range d.Pinned {
		if f.Group == -1 && f.Spans[0].Name == "deadline 504" && f.Request == "req-1" {
			synthetic = true
		}
	}
	if !synthetic {
		t.Fatalf("synthetic deadline event not pinned: %+v", d.Pinned)
	}
	if d.Anomalies["request-deadline"] == 0 {
		t.Fatalf("anomaly counter did not move: %v", d.Anomalies)
	}
}

func TestFlightWriteJSONRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	fr.SetSession("s9")
	b := fr.Builder()
	offerFrame(b, 0, 250, AnomDeadline)
	var buf bytes.Buffer
	if err := fr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Schema != FlightSchema || d.Session != "s9" || len(d.Pinned) != 1 {
		t.Fatalf("round-trip mismatch: %+v", d)
	}
	if d.Pinned[0].Anomalies[0] != "deadline-miss" {
		t.Fatalf("anomaly name = %v", d.Pinned[0].Anomalies)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z")
	r.Counter("aa_total", "a", Label{Key: "k", Value: "v1"})
	r.Counter("aa_total", "a", Label{Key: "k", Value: "v2"}) // same family
	r.Gauge("mm_gauge", "m")
	got := r.Names()
	want := []string{"aa_total", "mm_gauge", "zz_total"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}
