package obs

// Pre-bundled handle sets for the solver stack. internal/mip and
// internal/lp accept these via their options/workspace structs and feed
// them with a handful of atomic adds per solve -- never per pivot, so the
// instrumented simplex loop is byte-identical to the bare one. The solver
// label separates the scheduler's flow ILP from the clusterer's set cover.

// SolverMetrics is the counter set one MIP consumer (scheduling or
// clustering) feeds. A nil *SolverMetrics disables recording.
type SolverMetrics struct {
	Solves    *Counter // branch-and-bound searches run
	Nodes     *Counter // B&B nodes explored
	Iters     *Counter // simplex iterations across all nodes
	Truncated *Counter // searches stopped by a time/node/iteration limit
	PivotNS   *Counter // nanoseconds spent inside LP solves
	LP        *LPMetrics

	// Warm-start pipeline counters (eagleeye_warmstart_*). Attempts /
	// Accepted / Rejected track candidate verification in the MIP layer;
	// PrunedNodes and EarlyExits are the node savings attributable to the
	// warm candidate; Projections / ProjectionHits track the sched layer's
	// cross-frame schedule projection; BasisReuses counts LP solves that
	// skipped phase 1 by re-installing a previous basis.
	WarmAttempts   *Counter
	WarmAccepted   *Counter
	WarmRejected   *Counter
	WarmPruned     *Counter
	WarmEarlyExits *Counter
	Projections    *Counter
	ProjectionHits *Counter
	BasisReuses    *Counter
}

// LPMetrics counts the underlying simplex workspace's activity. The
// core/factorization fields may be nil (older consumers); the lp package
// nil-checks them individually.
type LPMetrics struct {
	Solves      *Counter // simplex solves (one per B&B node relaxation)
	Iters       *Counter // pivots performed
	IterLimited *Counter // solves abandoned at the iteration limit

	// Engine split and sparse-core factorization activity.
	DenseSolves      *Counter // solves run on the dense tableau core
	SparseSolves     *Counter // solves run on the sparse revised simplex
	Factorizations   *Counter // sparse basis factorizations (all causes)
	Refactorizations *Counter // factorizations forced mid-solve (eta budget / stability)
	FillIn           *Counter // eta-file entries beyond the basis's own nonzeros
	InstanceNNZ      *Gauge   // high-water structural nonzeros of one solved instance
	PartialPricing   *Counter // sparse solves that priced at least one pivot through a partial window
}

// NewSolverMetrics registers the eagleeye_mip_* and eagleeye_lp_* series
// for one solver consumer ("sched" or "cluster").
func NewSolverMetrics(r *Registry, solver string) *SolverMetrics {
	lbl := Label{Key: "solver", Value: solver}
	return &SolverMetrics{
		Solves:    r.Counter("eagleeye_mip_solves_total", "Branch-and-bound searches run.", lbl),
		Nodes:     r.Counter("eagleeye_mip_nodes_total", "Branch-and-bound nodes explored.", lbl),
		Iters:     r.Counter("eagleeye_mip_lp_iters_total", "Simplex iterations across all B&B nodes.", lbl),
		Truncated: r.Counter("eagleeye_mip_truncated_total", "Searches stopped early by a time, node or iteration limit.", lbl),
		PivotNS:   r.Counter("eagleeye_mip_pivot_nanoseconds_total", "Wall time inside LP solves, in nanoseconds.", lbl),
		LP: &LPMetrics{
			Solves:           r.Counter("eagleeye_lp_solves_total", "Simplex solves (node relaxations).", lbl),
			Iters:            r.Counter("eagleeye_lp_iters_total", "Simplex pivots performed.", lbl),
			IterLimited:      r.Counter("eagleeye_lp_iter_limited_total", "Simplex solves abandoned at the iteration limit.", lbl),
			DenseSolves:      r.Counter("eagleeye_lp_core_solves_total", "Simplex solves on the dense tableau core.", lbl, Label{Key: "core", Value: "dense"}),
			SparseSolves:     r.Counter("eagleeye_lp_core_solves_total", "Simplex solves on the sparse revised simplex core.", lbl, Label{Key: "core", Value: "sparse"}),
			Factorizations:   r.Counter("eagleeye_lp_factorizations_total", "Sparse-core basis factorizations.", lbl),
			Refactorizations: r.Counter("eagleeye_lp_refactorizations_total", "Sparse-core factorizations forced mid-solve by the eta budget or a stability alarm.", lbl),
			FillIn:           r.Counter("eagleeye_lp_factor_fill_in_total", "Eta-file entries created beyond the basis's own nonzeros.", lbl),
			InstanceNNZ:      r.Gauge("eagleeye_lp_instance_nnz_max", "Largest structural nonzero count among solved LP instances.", lbl),
			PartialPricing:   r.Counter("eagleeye_lp_partial_pricing_solves_total", "Sparse simplex solves that priced at least one pivot through a partial window.", lbl),
		},
		WarmAttempts:   r.Counter("eagleeye_warmstart_attempts_total", "Warm-start candidates offered to the MIP solver.", lbl),
		WarmAccepted:   r.Counter("eagleeye_warmstart_accepted_total", "Warm-start candidates that verified feasible.", lbl),
		WarmRejected:   r.Counter("eagleeye_warmstart_rejected_total", "Warm-start candidates that failed verification.", lbl),
		WarmPruned:     r.Counter("eagleeye_warmstart_pruned_nodes_total", "B&B nodes pruned by the warm-start bound before any incumbent was found.", lbl),
		WarmEarlyExits: r.Counter("eagleeye_warmstart_early_exits_total", "Solves finished at the root because its LP bound met the warm candidate.", lbl),
		Projections:    r.Counter("eagleeye_warmstart_projections_total", "Cross-frame solution projections attempted.", lbl),
		ProjectionHits: r.Counter("eagleeye_warmstart_projection_hits_total", "Cross-frame projections that produced the warm candidate.", lbl),
		BasisReuses:    r.Counter("eagleeye_warmstart_basis_reuses_total", "LP solves that skipped phase 1 via a re-installed basis.", lbl),
	}
}
