package obs

import (
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping: label values are data, not syntax --
// quotes, backslashes and newlines must arrive escaped per the text
// exposition format, and HELP text must escape backslash and newline.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("eagleeye_esc_total", "line one\nline two \\ end",
		Label{Key: "path", Value: `C:\tmp "quoted"` + "\nnext"}).Add(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	wantSeries := `eagleeye_esc_total{path="C:\\tmp \"quoted\"\nnext"} 1`
	if !strings.Contains(out, wantSeries) {
		t.Errorf("escaped series line missing:\nwant %s\ngot:\n%s", wantSeries, out)
	}
	wantHelp := `# HELP eagleeye_esc_total line one\nline two \\ end`
	if !strings.Contains(out, wantHelp) {
		t.Errorf("escaped HELP line missing:\nwant %s\ngot:\n%s", wantHelp, out)
	}
	// A raw (unescaped) newline inside a series line would split it in
	// two and corrupt the scrape: every line must parse standalone.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Errorf("blank line in exposition output:\n%s", out)
		}
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "eagleeye_esc_total") {
			t.Errorf("stray continuation line %q -- unescaped newline leaked", line)
		}
	}
}

// TestPrometheusHistogramEscaping: the synthesized le label composes with
// escaped user labels on bucket lines.
func TestPrometheusHistogramEscaping(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("eagleeye_esc_seconds", "h", []float64{1},
		Label{Key: "q", Value: `a"b`})
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `eagleeye_esc_seconds_bucket{q="a\"b",le="1"} 1`) {
		t.Errorf("bucket line escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `eagleeye_esc_seconds_bucket{q="a\"b",le="+Inf"} 1`) {
		t.Errorf("+Inf bucket escaping wrong:\n%s", out)
	}
}
