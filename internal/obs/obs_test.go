package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same series resolved to different handles")
	}
	c := r.Counter("x_total", "help", Label{Key: "k", Value: "v"})
	if c == a {
		t.Fatal("labelled series aliased the unlabelled one")
	}
	// Label order must not matter.
	d1 := r.Counter("y_total", "", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	d2 := r.Counter("y_total", "", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if d1 != d2 {
		t.Fatal("label order changed series identity")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name accepted")
		}
	}()
	r.Counter("bad name", "")
}

// TestCounterConcurrent hammers one counter from many goroutines through
// every shard; run under -race this is the data-race gate, and the total
// must be exact regardless of interleaving.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	const (
		workers = 16
		perG    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := c.Shard(w)
			for i := 0; i < perG; i++ {
				sh.Inc()
			}
			// Mix in unsharded adds too.
			c.Add(1)
		}(w)
	}
	wg.Wait()
	if got, want := c.Value(), int64(workers*(perG+1)); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hwm", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if g.Value() != 7999 {
		t.Fatalf("SetMax high-water mark = %v, want 7999", g.Value())
	}
}

func TestShardTotalsAreOrderIndependent(t *testing.T) {
	// The determinism argument the simulator relies on: integer adds
	// commute across shards, so any worker->shard assignment yields the
	// same total.
	r := NewRegistry()
	a := r.Counter("a_total", "")
	b := r.Counter("b_total", "")
	for i := 0; i < 100; i++ {
		a.Shard(i % 3).Add(int64(i))
		b.Shard(i % 7).Add(int64(i))
	}
	if a.Value() != b.Value() {
		t.Fatalf("shard layout changed the total: %d vs %d", a.Value(), b.Value())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", Label{Key: "code", Value: "200"}).Add(3)
	r.Counter("req_total", "requests", Label{Key: "code", Value: "500"}).Add(1)
	r.Gauge("temp", "with \"quotes\" and \\slash").Set(1.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{code="200"} 3`,
		`req_total{code="500"} 1`,
		"# TYPE temp gauge",
		"temp 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per family even with two series.
	if strings.Count(out, "# TYPE req_total counter") != 1 {
		t.Error("family header repeated")
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	h := r.Histogram("h_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	s := r.Summary()
	if s.Schema != SummarySchema {
		t.Fatalf("schema %d", s.Schema)
	}
	byName := map[string]SummaryMetric{}
	for _, m := range s.Metrics {
		byName[m.Name] = m
	}
	if byName["c_total"].Value != 7 {
		t.Errorf("counter summary value %v", byName["c_total"].Value)
	}
	hm := byName["h_seconds"]
	if hm.Count != 2 || hm.Sum != 2.5 {
		t.Errorf("histogram summary count=%d sum=%v", hm.Count, hm.Sum)
	}
	if len(hm.Buckets) != 2 || hm.Buckets[1].LE != "+Inf" || hm.Buckets[1].Count != 1 {
		t.Errorf("histogram buckets %+v", hm.Buckets)
	}
}

func TestCounterValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "", Label{Key: "s", Value: "x"}).Add(9)
	if v := r.CounterValue("n_total", Label{Key: "s", Value: "x"}); v != 9 {
		t.Fatalf("CounterValue = %d", v)
	}
	if v := r.CounterValue("absent_total"); v != 0 {
		t.Fatalf("missing series = %d, want 0", v)
	}
}
