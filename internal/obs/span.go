package obs

// Span tracing: the second observability layer. Where the metrics
// registry answers "how much, in aggregate", span trees answer "why was
// THIS frame slow". Each processed leader frame can be recorded as a
// small tree of spans -- frame -> stage -> solve -- carrying the
// propagated identity chain (session -> request -> step -> frame) so a
// recorded tree is correlatable with a server request log line and an
// NDJSON trace record.
//
// The design constraints mirror the metrics layer:
//
//   - Disabled is a true no-op: the frame loop holds no builder and pays
//     one nil check per frame. The TestFrameLoopAllocs gate and the
//     Workers 4==1 determinism contract are untouched.
//   - Enabled is allocation-bounded: each simulation job owns one
//     FrameBuilder arena whose span slice grows to the frame-shape
//     high-water mark and is then reused; offering a finished tree to
//     the FlightRecorder copies it into preallocated ring slots.
//   - Spans are assembled post-hoc at frame end from durations the
//     pipeline already measured (DetectWall, ClusterWall, SchedWall,
//     PivotWall), so tracing adds only the frame-boundary clock reads,
//     not per-stage ones.

// SpanKind classifies one node of a frame span tree.
type SpanKind uint8

const (
	// SpanFrame is the root span: one processed leader frame.
	SpanFrame SpanKind = iota
	// SpanStage is a pipeline stage (detect, cluster, sched, execute,
	// account) nested under the frame.
	SpanStage
	// SpanSolve is one ILP solve nested under its stage; DurNS is the LP
	// pivot wall time, A/B carry B&B nodes and simplex iterations.
	SpanSolve
	// SpanEvent marks a synthetic record (fault event, request deadline)
	// pinned outside the normal frame flow.
	SpanEvent
)

var spanKindNames = [...]string{"frame", "stage", "solve", "event"}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// Span is one timed node in a frame's span tree. StartNS is the offset
// from the frame span's start, so a tree is self-contained without
// absolute timestamps.
type Span struct {
	Kind    SpanKind
	Name    string
	Parent  int32 // index into the owning tree's Spans; -1 for the root
	StartNS int64
	DurNS   int64
	// A and B are kind-specific payloads: targets in / results out for
	// stages, B&B nodes / simplex iterations for solves.
	A, B int64
}

// Anomaly is a bitmask of per-frame anomaly signals. Any set bit makes
// the flight recorder pin the frame so it survives ring churn.
type Anomaly uint16

const (
	// AnomFallback: the scheduling ILP stopped without an incumbent and
	// the greedy fallback produced the schedule.
	AnomFallback Anomaly = 1 << iota
	// AnomWarmReject: a warm-start candidate was offered and failed
	// verification (sched or cluster solve).
	AnomWarmReject
	// AnomDualRepair: a reused LP basis violated bounds and the dual
	// repair pivots could not restore feasibility (cold-path fallback).
	AnomDualRepair
	// AnomRefactor: the sparse LP core was forced to refactorize its
	// basis mid-solve (eta budget or stability alarm).
	AnomRefactor
	// AnomDeadline: compute + scheduling exceeded the frame cadence.
	AnomDeadline
	// AnomFault: a scheduled fault event (follower/leader failure) fired.
	AnomFault
	// AnomRequestDeadline: the serving request hit its deadline (504)
	// while this session was running.
	AnomRequestDeadline
	// AnomServerError: the serving request answered a non-504 5xx.
	AnomServerError

	numAnomalies = 8
)

var anomalyNames = [numAnomalies]string{
	"solver-fallback", "warm-reject", "dual-repair-fail", "refactor-alarm",
	"deadline-miss", "fault-event", "request-deadline", "server-error",
}

// Kinds expands the bitmask into its human-readable names.
func (a Anomaly) Kinds() []string {
	if a == 0 {
		return nil
	}
	out := make([]string, 0, numAnomalies)
	for i := 0; i < numAnomalies; i++ {
		if a&(1<<i) != 0 {
			out = append(out, anomalyNames[i])
		}
	}
	return out
}

// FrameTree is one frame's recorded span tree plus its propagated
// identity chain. Spans[0] is always the root frame span; its DurNS is
// the frame's total recorded wall time.
type FrameTree struct {
	Seq     uint64 // recorder sequence number, assigned at offer time
	Session string
	Request string
	Step    int
	Group   int
	Frame   int
	TimeS   float64 // simulated time of the frame
	Anom    Anomaly
	Spans   []Span
}

// DurNS returns the root span's duration.
func (t *FrameTree) DurNS() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[0].DurNS
}

// copyInto replaces dst's identity and spans with t's, reusing dst's
// span backing array -- the recorder's bounded-memory primitive.
func (t *FrameTree) copyInto(dst *FrameTree) {
	spans := append(dst.Spans[:0], t.Spans...)
	*dst = *t
	dst.Spans = spans
}

// FrameBuilder stages one frame's span tree before offering it to the
// recorder. One builder per simulation job: Start/Add/Anomaly run on the
// job's goroutine with no synchronization; only Finish (and Event)
// touches the recorder, under its mutex. The builder's span slice is the
// per-worker arena -- it grows to the frame-shape high-water mark once
// and is reused for every later frame.
type FrameBuilder struct {
	rec  *FlightRecorder
	tree FrameTree
}

// Start begins a new frame tree, resetting the arena. The root frame
// span is Spans[0]; its duration is stamped by Finish.
func (b *FrameBuilder) Start(group, frame int, timeS float64) {
	b.tree.Group = group
	b.tree.Frame = frame
	b.tree.TimeS = timeS
	b.tree.Anom = 0
	b.tree.Spans = append(b.tree.Spans[:0], Span{Kind: SpanFrame, Name: "frame", Parent: -1})
}

// Add appends a child span under parent (an index returned by a previous
// Add, or 0 for the root) and returns its index.
func (b *FrameBuilder) Add(parent int32, kind SpanKind, name string, startNS, durNS, a, bb int64) int32 {
	b.tree.Spans = append(b.tree.Spans, Span{
		Kind: kind, Name: name, Parent: parent,
		StartNS: startNS, DurNS: durNS, A: a, B: bb,
	})
	return int32(len(b.tree.Spans) - 1)
}

// Anomaly flags the frame under construction.
func (b *FrameBuilder) Anomaly(a Anomaly) { b.tree.Anom |= a }

// Finish stamps the root span's duration and offers the tree to the
// recorder, which copies it; the builder's arena is immediately
// reusable.
func (b *FrameBuilder) Finish(totalNS int64) {
	if len(b.tree.Spans) == 0 {
		return
	}
	b.tree.Spans[0].DurNS = totalNS
	b.rec.offer(&b.tree)
}

// Event records and pins a synthetic single-span tree outside the
// normal frame flow -- fault events and request deadlines use it so the
// anomaly is retrievable even when no frame was in flight.
func (b *FrameBuilder) Event(group, frame int, timeS float64, a Anomaly, name string) {
	b.rec.PinEvent(FrameTree{
		Group: group, Frame: frame, TimeS: timeS, Anom: a,
		Spans: []Span{{Kind: SpanEvent, Name: name, Parent: -1}},
	})
}
