package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Live introspection endpoint for long simulations: a 24-hour,
// million-target run is opaque between launch and Result, so the CLI can
// bind a loopback (or LAN) listener that serves
//
//	/metrics      Prometheus text format (scrapeable)
//	/summary      the end-of-run summary JSON, live
//	/debug/vars   expvar (Go runtime memstats, cmdline)
//	/debug/pprof  CPU/heap/goroutine profiles for in-situ profiling
//
// The server shares no state with the frame loop beyond the registry's
// atomics, so scraping never perturbs determinism.

// Handler returns the /metrics HTTP handler for a registry.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Server is a running introspection endpoint.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:9090", or ":0" for an ephemeral port)
// and serves the registry until Close. An optional FlightRecorder adds a
// /debug/flight dump route.
func Serve(addr string, r *Registry, flight ...*FlightRecorder) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteSummary(w)
	})
	if len(flight) > 0 && flight[0] != nil {
		fr := flight[0]
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = fr.WriteJSON(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Network deadlines so an abandoned scrape connection cannot pin the
	// endpoint: headers within 5s, whole request within 30s, keep-alives
	// recycled at 2min. No WriteTimeout -- pprof profiles stream for the
	// duration the client asks (?seconds=N).
	s := &Server{lis: lis, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}}
	go func() { _ = s.srv.Serve(lis) }() // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (resolves ":0" to the real port).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
