package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text-format (version 0.0.4) exposition. Output is sorted by
// family and label set, so two scrapes of quiescent registries compare
// byte-for-byte -- handy for tests and for diffing end-of-run states.

// WritePrometheus writes every registered series in the Prometheus text
// format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range r.sorted() {
		if e.name != lastFamily {
			lastFamily = e.name
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", e.name, labelString(e.labels, "", ""), e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", e.name, labelString(e.labels, "", ""), formatFloat(e.g.Value()))
		case kindHistogram:
			snap := e.h.Snapshot()
			cum := int64(0)
			for i, b := range snap.Bounds {
				cum += snap.Counts[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", e.name, labelString(e.labels, "le", formatFloat(b)), cum)
			}
			cum += snap.Counts[len(snap.Bounds)]
			fmt.Fprintf(bw, "%s_bucket%s %d\n", e.name, labelString(e.labels, "le", "+Inf"), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", e.name, labelString(e.labels, "", ""), formatFloat(snap.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", e.name, labelString(e.labels, "", ""), cum)
		}
	}
	return bw.Flush()
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le label). An empty set renders as the empty string.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
