package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefTimeBuckets is the default upper-bound set for duration histograms,
// spanning 1 microsecond to 2.5 seconds: the simulator's stage spans run
// from sub-10 us ephemeris steps to near-deadline ILP solves.
var DefTimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// histShard is one worker's bucket counts plus the CAS-maintained sum of
// observations. Shards own separate allocations, so concurrent observers
// touch disjoint memory.
type histShard struct {
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
}

// Histogram is a sharded fixed-bucket histogram. Bucket upper bounds are
// inclusive (v <= bound), matching the Prometheus `le` convention; values
// above the last bound land in the implicit +Inf bucket. Bucket counts are
// integer atomics, so totals are independent of observer interleaving; the
// sum is a float accumulator and is therefore only reproducible up to
// addition order.
type Histogram struct {
	bounds []float64
	shards []histShard
}

func newHistogram(shards int, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, shards: make([]histShard, shards)}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Int64, len(bs)+1)
	}
	return h
}

// bucketIdx returns the first bucket whose upper bound admits v.
func (h *Histogram) bucketIdx(v float64) int {
	// sort.SearchFloat64s finds the first i with bounds[i] >= v, which is
	// exactly the inclusive-upper-bound bucket; NaN falls through to +Inf.
	return sort.SearchFloat64s(h.bounds, v)
}

// Observe records v on shard 0 (unsharded callers).
func (h *Histogram) Observe(v float64) { h.Shard(0).Observe(v) }

// Shard returns worker i's private observation handle. Indices wrap.
func (h *Histogram) Shard(i int) HistogramShard {
	return HistogramShard{h: h, s: &h.shards[i&(len(h.shards)-1)]}
}

// HistogramShard is a pre-resolved observation handle for one worker.
type HistogramShard struct {
	h *Histogram
	s *histShard
}

// Observe records one value: a single atomic bucket increment plus a CAS
// sum update on the worker's private shard.
func (hs HistogramShard) Observe(v float64) {
	hs.s.counts[hs.h.bucketIdx(v)].Add(1)
	for {
		old := hs.s.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if hs.s.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time read of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; the +Inf bucket is Counts[len(Bounds)]
	Counts []int64   // per-bucket (non-cumulative) counts, len(Bounds)+1
	Sum    float64
	Count  int64
}

// Snapshot merges the shards into one view. Under concurrent observation
// the snapshot is approximate (each slot read is atomic, the set is not),
// which is fine for scraping; quiescent reads are exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)+1),
	}
	for si := range h.shards {
		s := &h.shards[si]
		for bi := range s.counts {
			snap.Counts[bi] += s.counts[bi].Load()
		}
		snap.Sum += math.Float64frombits(s.sum.Load())
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	return snap
}
