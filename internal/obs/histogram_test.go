package obs

import (
	"math"
	"math/rand"
	"testing"
)

// bruteBuckets is the reference implementation: linear scan over the
// bounds with the same le-inclusive convention.
func bruteBuckets(bounds []float64, vals []float64) (counts []int64, sum float64) {
	counts = make([]int64, len(bounds)+1)
	for _, v := range vals {
		i := len(bounds) // +Inf unless a bound admits v
		for bi, b := range bounds {
			if v <= b {
				i = bi
				break
			}
		}
		counts[i]++
		sum += v
	}
	return counts, sum
}

func TestHistogramAgainstBruteForce(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	h := newHistogram(4, bounds)
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		var v float64
		switch i % 4 {
		case 0:
			v = rng.Float64() * 20 // spans all buckets incl. +Inf
		case 1:
			v = math.Pow(10, -4+rng.Float64()*6) // log-uniform
		case 2:
			v = bounds[rng.Intn(len(bounds))] // exactly on a bound: le-inclusive
		default:
			v = -rng.Float64() // below the first bound
		}
		vals = append(vals, v)
		h.Shard(i).Observe(v) // spray across shards; merge must not care
	}
	wantCounts, wantSum := bruteBuckets(bounds, vals)
	snap := h.Snapshot()
	if snap.Count != int64(len(vals)) {
		t.Fatalf("Count = %d, want %d", snap.Count, len(vals))
	}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d: got %d, want %d", i, snap.Counts[i], want)
		}
	}
	if math.Abs(snap.Sum-wantSum) > 1e-6*math.Abs(wantSum) {
		t.Errorf("Sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := newHistogram(1, []float64{1, 2})
	h.Observe(1) // le="1" bucket, not le="2"
	h.Observe(2)
	h.Observe(2.0000001)
	snap := h.Snapshot()
	if snap.Counts[0] != 1 || snap.Counts[1] != 1 || snap.Counts[2] != 1 {
		t.Fatalf("counts = %v, want [1 1 1]", snap.Counts)
	}
}

func TestHistogramShardMerge(t *testing.T) {
	// Observing the same value set through different shard layouts must
	// snapshot identically (bucket counts exactly, sum exactly here since
	// quarter multiples are binary-exact and the sums stay small).
	a := newHistogram(8, DefTimeBuckets)
	b := newHistogram(8, DefTimeBuckets)
	for i := 0; i < 1000; i++ {
		v := float64(i%13) * 0.25
		a.Shard(0).Observe(v)
		b.Shard(i).Observe(v)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count != sb.Count || sa.Sum != sb.Sum {
		t.Fatalf("count/sum differ: %d/%v vs %d/%v", sa.Count, sa.Sum, sb.Count, sb.Sum)
	}
	for i := range sa.Counts {
		if sa.Counts[i] != sb.Counts[i] {
			t.Fatalf("bucket %d differs: %d vs %d", i, sa.Counts[i], sb.Counts[i])
		}
	}
}

func TestDefTimeBucketsSorted(t *testing.T) {
	for i := 1; i < len(DefTimeBuckets); i++ {
		if DefTimeBuckets[i] <= DefTimeBuckets[i-1] {
			t.Fatalf("DefTimeBuckets not strictly ascending at %d", i)
		}
	}
}
