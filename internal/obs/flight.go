package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// FlightRecorder keeps the recent and the interesting frames of a
// session in bounded memory so any slow frame can be explained after
// the fact:
//
//   - a fixed-size ring of the most recent frame span trees,
//   - top-K retention by frame duration (the slowest frames ever seen),
//   - anomaly-triggered pinning: frames flagged with any Anomaly bit go
//     into a pinned FIFO ring, and the FIRST frame per anomaly kind is
//     retained forever -- that is what guarantees an hour-60 fault event
//     is still retrievable after 10k+ subsequent frames of a 168 h run.
//
// All retention classes copy span trees into slots whose backing arrays
// are reused on overwrite, so steady-state memory is
// O(Ring + TopK + Pinned + kinds) regardless of session length.

// FlightSchema versions the JSON dump format.
const FlightSchema = 1

// FlightConfig sizes a recorder. Zero values take the defaults.
type FlightConfig struct {
	// Ring is the number of most-recent frames retained (default 128).
	Ring int
	// TopK is the number of slowest-ever frames retained (default 16).
	TopK int
	// Pinned is the capacity of the anomaly FIFO (default 64). The
	// first frame per anomaly kind is retained separately and never
	// evicted.
	Pinned int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Ring <= 0 {
		c.Ring = 128
	}
	if c.TopK <= 0 {
		c.TopK = 16
	}
	if c.Pinned <= 0 {
		c.Pinned = 64
	}
	return c
}

// FlightRecorder is safe for concurrent use: simulation jobs offer
// finished trees under the mutex, and the server snapshots concurrently.
type FlightRecorder struct {
	mu  sync.Mutex
	cfg FlightConfig

	seq     uint64 // unique recording ID (frames and synthetic events)
	frames  uint64 // frames offered; also the ring write position
	session string
	request string // current in-flight request ID, "" if none
	step    int
	pinReq  string // request armed for pinning (deadline already hit)
	pinAnom Anomaly

	ring    []FrameTree // positional: ring[seq % len]
	ringLen uint64      // number of valid entries (min(seq, len))

	top []FrameTree // top-K by DurNS, unordered; min replaced on offer

	pinned     []FrameTree // FIFO of anomalous frames
	pinnedNext int
	pinnedLen  int
	pinDropped uint64
	first      [numAnomalies]FrameTree // first frame per anomaly kind
	firstSet   [numAnomalies]bool
	anomCounts [numAnomalies]uint64
}

// NewFlightRecorder allocates a recorder with the given retention sizes.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg:    cfg,
		ring:   make([]FrameTree, cfg.Ring),
		top:    make([]FrameTree, 0, cfg.TopK),
		pinned: make([]FrameTree, cfg.Pinned),
	}
}

// Builder returns a per-job FrameBuilder bound to this recorder. Each
// concurrent simulation job must use its own builder.
func (fr *FlightRecorder) Builder() *FrameBuilder {
	return &FrameBuilder{rec: fr}
}

// SetSession stamps the session ID onto all subsequently offered frames.
func (fr *FlightRecorder) SetSession(id string) {
	fr.mu.Lock()
	fr.session = id
	fr.mu.Unlock()
}

// SetRequest marks a serving request as in flight; offered frames carry
// its ID until ClearRequest.
func (fr *FlightRecorder) SetRequest(id string) {
	fr.mu.Lock()
	fr.request = id
	fr.mu.Unlock()
}

// ClearRequest ends the in-flight request and disarms any PinRequest.
func (fr *FlightRecorder) ClearRequest() {
	fr.mu.Lock()
	fr.request = ""
	fr.pinReq = ""
	fr.pinAnom = 0
	fr.mu.Unlock()
}

// SetStep stamps the session step index onto subsequent frames.
func (fr *FlightRecorder) SetStep(step int) {
	fr.mu.Lock()
	fr.step = step
	fr.mu.Unlock()
}

// PinRequest flags a request-level anomaly (deadline hit, 5xx). It
// retro-tags frames already in the ring that carry the request ID, arms
// pinning for frames the still-running session will offer under the same
// ID, and pins a synthetic event tree so the anomaly is retrievable even
// if no frame lands in the window.
func (fr *FlightRecorder) PinRequest(reqID string, anom Anomaly, note string) {
	fr.mu.Lock()
	for i := uint64(0); i < fr.ringLen; i++ {
		if fr.ring[i].Request == reqID && reqID != "" {
			fr.ring[i].Anom |= anom
		}
	}
	// Arm unconditionally: a deadline can fire while the job is still
	// queued, before SetRequest. Offered frames match on pinReq ==
	// request, so a later request's frames are never mistagged, and
	// ClearRequest disarms at run end either way.
	fr.pinReq = reqID
	fr.pinAnom |= anom
	ev := FrameTree{
		Seq: fr.seq, Session: fr.session, Request: reqID, Step: fr.step,
		Group: -1, Frame: -1, Anom: anom,
		Spans: []Span{{Kind: SpanEvent, Name: note, Parent: -1}},
	}
	fr.seq++
	fr.pinLocked(&ev)
	fr.mu.Unlock()
}

// PinEvent pins a synthetic tree (fault events). The current
// session/request/step identity is stamped on.
func (fr *FlightRecorder) PinEvent(t FrameTree) {
	fr.mu.Lock()
	t.Seq = fr.seq
	fr.seq++
	t.Session = fr.session
	t.Request = fr.request
	t.Step = fr.step
	fr.pinLocked(&t)
	fr.mu.Unlock()
}

// offer records one finished frame tree (called by FrameBuilder.Finish).
func (fr *FlightRecorder) offer(t *FrameTree) {
	fr.mu.Lock()
	t.Seq = fr.seq
	fr.seq++
	t.Session = fr.session
	t.Request = fr.request
	t.Step = fr.step
	if fr.pinReq != "" && fr.pinReq == fr.request {
		t.Anom |= fr.pinAnom
	}

	// Recent ring: positional overwrite, arena reuse via copyInto.
	slot := &fr.ring[fr.frames%uint64(len(fr.ring))]
	t.copyInto(slot)
	fr.frames++
	if fr.ringLen < uint64(len(fr.ring)) {
		fr.ringLen++
	}

	// Top-K by duration: replace the minimum when full.
	d := t.DurNS()
	if len(fr.top) < cap(fr.top) {
		fr.top = append(fr.top, FrameTree{})
		t.copyInto(&fr.top[len(fr.top)-1])
	} else if len(fr.top) > 0 {
		min := 0
		for i := 1; i < len(fr.top); i++ {
			if fr.top[i].DurNS() < fr.top[min].DurNS() {
				min = i
			}
		}
		if d > fr.top[min].DurNS() {
			t.copyInto(&fr.top[min])
		}
	}

	if t.Anom != 0 {
		fr.pinLocked(t)
	}
	fr.mu.Unlock()
}

// pinLocked files an anomalous tree into the pinned FIFO, the
// first-per-kind slots, and the anomaly counters. Caller holds fr.mu.
func (fr *FlightRecorder) pinLocked(t *FrameTree) {
	for i := 0; i < numAnomalies; i++ {
		if t.Anom&(1<<i) == 0 {
			continue
		}
		fr.anomCounts[i]++
		if !fr.firstSet[i] {
			t.copyInto(&fr.first[i])
			fr.firstSet[i] = true
		}
	}
	if fr.pinnedLen == len(fr.pinned) {
		fr.pinDropped++
	} else {
		fr.pinnedLen++
	}
	t.copyInto(&fr.pinned[fr.pinnedNext])
	fr.pinnedNext = (fr.pinnedNext + 1) % len(fr.pinned)
}

// --- JSON dump -------------------------------------------------------

// FlightSpan is the JSON form of one span.
type FlightSpan struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Parent  int32  `json:"parent"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	A       int64  `json:"a,omitempty"`
	B       int64  `json:"b,omitempty"`
}

// FlightFrame is the JSON form of one recorded frame tree.
type FlightFrame struct {
	Seq       uint64       `json:"seq"`
	Session   string       `json:"session,omitempty"`
	Request   string       `json:"request,omitempty"`
	Step      int          `json:"step"`
	Group     int          `json:"group"`
	Frame     int          `json:"frame"`
	TimeS     float64      `json:"time_s"`
	DurNS     int64        `json:"dur_ns"`
	Anomalies []string     `json:"anomalies,omitempty"`
	Spans     []FlightSpan `json:"spans"`
}

// FlightDump is the schema-versioned JSON dump of a recorder.
type FlightDump struct {
	Schema        int               `json:"schema"`
	Session       string            `json:"session,omitempty"`
	Frames        uint64            `json:"frames"` // total frames offered
	PinnedDropped uint64            `json:"pinned_dropped"`
	Anomalies     map[string]uint64 `json:"anomalies"`
	Recent        []FlightFrame     `json:"recent"`
	Slowest       []FlightFrame     `json:"slowest"`
	Pinned        []FlightFrame     `json:"pinned"`
}

func frameJSON(t *FrameTree) FlightFrame {
	f := FlightFrame{
		Seq: t.Seq, Session: t.Session, Request: t.Request,
		Step: t.Step, Group: t.Group, Frame: t.Frame, TimeS: t.TimeS,
		DurNS: t.DurNS(), Anomalies: t.Anom.Kinds(),
		Spans: make([]FlightSpan, len(t.Spans)),
	}
	for i := range t.Spans {
		s := &t.Spans[i]
		f.Spans[i] = FlightSpan{
			Kind: s.Kind.String(), Name: s.Name, Parent: s.Parent,
			StartNS: s.StartNS, DurNS: s.DurNS, A: s.A, B: s.B,
		}
	}
	return f
}

// Snapshot copies the recorder state into its JSON dump form. Recent is
// oldest-first; Slowest is sorted by descending duration; Pinned is
// oldest-first with the never-evicted first-per-kind frames prepended
// (deduplicated by sequence number).
func (fr *FlightRecorder) Snapshot() FlightDump {
	fr.mu.Lock()
	defer fr.mu.Unlock()

	d := FlightDump{
		Schema:        FlightSchema,
		Session:       fr.session,
		Frames:        fr.frames,
		PinnedDropped: fr.pinDropped,
		Anomalies:     make(map[string]uint64),
	}
	for i := 0; i < numAnomalies; i++ {
		if fr.anomCounts[i] > 0 {
			d.Anomalies[anomalyNames[i]] = fr.anomCounts[i]
		}
	}

	n := fr.ringLen
	for i := uint64(0); i < n; i++ {
		t := &fr.ring[(fr.frames-n+i)%uint64(len(fr.ring))]
		d.Recent = append(d.Recent, frameJSON(t))
	}

	for i := range fr.top {
		d.Slowest = append(d.Slowest, frameJSON(&fr.top[i]))
	}
	sort.Slice(d.Slowest, func(i, j int) bool { return d.Slowest[i].DurNS > d.Slowest[j].DurNS })

	seen := make(map[uint64]bool)
	for i := 0; i < numAnomalies; i++ {
		if fr.firstSet[i] && !seen[fr.first[i].Seq] {
			seen[fr.first[i].Seq] = true
			d.Pinned = append(d.Pinned, frameJSON(&fr.first[i]))
		}
	}
	start := fr.pinnedNext - fr.pinnedLen
	if start < 0 {
		start += len(fr.pinned)
	}
	for i := 0; i < fr.pinnedLen; i++ {
		t := &fr.pinned[(start+i)%len(fr.pinned)]
		if seen[t.Seq] {
			continue
		}
		seen[t.Seq] = true
		d.Pinned = append(d.Pinned, frameJSON(t))
	}
	return d
}

// WriteJSON writes the schema-versioned dump to w.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fr.Snapshot())
}
