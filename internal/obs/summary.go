package obs

import (
	"encoding/json"
	"io"
	"time"
)

// End-of-run summary: a machine-readable JSON snapshot of every registered
// series, complementing the per-frame trace -- the trace answers "what did
// frame N do", the summary answers "where did the run's wall clock and
// work go". cmd/eagleeye writes it behind -metrics-out; cmd/benchsim folds
// the stage-time breakdown into its BENCH_sim.json points.

// SummarySchema versions the summary layout for downstream consumers.
const SummarySchema = 1

// SummaryBucket is one histogram bucket in a summary (non-cumulative).
// LE is the formatted upper bound ("+Inf" for the overflow bucket),
// because JSON has no infinity literal.
type SummaryBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// SummaryMetric is one series in a summary.
type SummaryMetric struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Type    string            `json:"type"`
	Value   float64           `json:"value,omitempty"`   // counter, gauge
	Count   int64             `json:"count,omitempty"`   // histogram
	Sum     float64           `json:"sum,omitempty"`     // histogram
	Buckets []SummaryBucket   `json:"buckets,omitempty"` // histogram; +Inf last
}

// Summary is the full registry snapshot.
type Summary struct {
	Schema    int             `json:"schema"`
	WrittenAt string          `json:"written_at"`
	Metrics   []SummaryMetric `json:"metrics"`
}

// Summary snapshots the registry, ordered by (family, labels).
func (r *Registry) Summary() Summary {
	s := Summary{Schema: SummarySchema, WrittenAt: time.Now().UTC().Format(time.RFC3339)}
	for _, e := range r.sorted() {
		m := SummaryMetric{Name: e.name, Type: e.kind.String()}
		if len(e.labels) > 0 {
			m.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case kindCounter:
			m.Value = float64(e.c.Value())
		case kindGauge:
			m.Value = e.g.Value()
		case kindHistogram:
			snap := e.h.Snapshot()
			m.Count = snap.Count
			m.Sum = snap.Sum
			m.Buckets = make([]SummaryBucket, 0, len(snap.Counts))
			for i, b := range snap.Bounds {
				m.Buckets = append(m.Buckets, SummaryBucket{LE: formatFloat(b), Count: snap.Counts[i]})
			}
			m.Buckets = append(m.Buckets, SummaryBucket{LE: "+Inf", Count: snap.Counts[len(snap.Bounds)]})
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s
}

// WriteSummary writes the summary as indented JSON.
func (r *Registry) WriteSummary(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}
