// Package obs is the simulator's observability layer: a named registry of
// atomic counters, gauges and fixed-bucket histograms, Prometheus
// text-format exposition, an optional HTTP introspection endpoint
// (/metrics plus expvar and pprof), and an end-of-run summary JSON.
//
// The package is dependency-free (standard library only) so every other
// internal package -- including the LP/MIP solver stack -- can feed it
// without import cycles. Two properties matter for the simulator:
//
//   - The frame loop must not pay for metrics it does not emit. Handles
//     (*Counter etc.) are resolved from the registry once at simulation
//     start; the hot path performs a single atomic add per event with no
//     map lookups and no allocation. When metrics are disabled the
//     simulator holds no handles at all and the loop is byte-identical to
//     the uninstrumented one.
//
//   - Parallel workers must not serialize on shared cache lines. Counters
//     and histograms are sharded: each worker owns a cache-line-padded
//     slot (Counter.Shard / Histogram.Shard) and readers sum the shards.
//     Integer adds commute, so per-metric totals are identical for any
//     worker count -- the same determinism argument as the simulator's
//     per-job accumulators.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric. Metrics with the same
// name but different labels are distinct series of one family, exactly as
// in the Prometheus data model.
type Label struct {
	Key, Value string
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metricEntry is one registered series.
type metricEntry struct {
	name   string
	help   string
	labels []Label // sorted by key
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; registration is get-or-create, so independent components
// may ask for the same series and share it.
type Registry struct {
	shards int

	mu    sync.Mutex
	byKey map[string]*metricEntry
	order []*metricEntry
}

// NewRegistry returns an empty registry. The shard count is fixed at
// creation: the next power of two >= GOMAXPROCS, capped at 64.
func NewRegistry() *Registry {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	return &Registry{shards: s, byKey: make(map[string]*metricEntry)}
}

// NumShards returns the registry's fixed shard count.
func (r *Registry) NumShards() int { return r.shards }

// seriesKey builds the map key for a name + sorted label set.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register returns the entry for (name, labels), creating it with mk on
// first use. It panics on invalid names or on a kind conflict -- both are
// programmer errors, caught by the first test that touches the series.
func (r *Registry) register(name, help string, labels []Label, kind metricKind, mk func(*metricEntry)) *metricEntry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Key, name))
		}
	}
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, e.kind))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, labels: ls, kind: kind}
	mk(e)
	r.byKey[key] = e
	r.order = append(r.order, e)
	return e
}

// Counter returns (creating on first use) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.register(name, help, labels, kindCounter, func(e *metricEntry) {
		e.c = newCounter(r.shards)
	})
	return e.c
}

// Gauge returns (creating on first use) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.register(name, help, labels, kindGauge, func(e *metricEntry) {
		e.g = &Gauge{}
	})
	return e.g
}

// Histogram returns (creating on first use) the histogram series
// name{labels} with the given upper-bound buckets (ascending; an implicit
// +Inf bucket is appended). Buckets are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	e := r.register(name, help, labels, kindHistogram, func(e *metricEntry) {
		e.h = newHistogram(r.shards, buckets)
	})
	return e.h
}

// CounterValue reads the current total of a counter series, or 0 when the
// series does not exist. It is a convenience for tests and exporters; hot
// paths hold the *Counter handle instead.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if e := r.lookup(name, labels); e != nil && e.kind == kindCounter {
		return e.c.Value()
	}
	return 0
}

// GaugeValue reads the current value of a gauge series, or 0 when missing.
func (r *Registry) GaugeValue(name string, labels ...Label) float64 {
	if e := r.lookup(name, labels); e != nil && e.kind == kindGauge {
		return e.g.Value()
	}
	return 0
}

// Names returns the distinct metric family names registered so far,
// sorted. The docs drift gate uses it to require that every live series
// family is documented.
func (r *Registry) Names() []string {
	r.mu.Lock()
	seen := make(map[string]bool, len(r.order))
	out := make([]string, 0, len(r.order))
	for _, e := range r.order {
		if !seen[e.name] {
			seen[e.name] = true
			out = append(out, e.name)
		}
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

func (r *Registry) lookup(name string, labels []Label) *metricEntry {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byKey[seriesKey(name, ls)]
}

// sorted returns the entries ordered by (family, label key) so exposition
// and summaries are stable regardless of registration interleaving.
func (r *Registry) sorted() []*metricEntry {
	r.mu.Lock()
	out := append([]*metricEntry(nil), r.order...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey("", out[i].labels) < seriesKey("", out[j].labels)
	})
	return out
}

// ---- Counter ----

// counterShard is one cache-line-padded accumulation slot. The padding
// stops two workers' shards from sharing a line (false sharing), which is
// what keeps enabled-mode overhead flat as worker count grows.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a sharded monotonic counter. Add/Inc on the bare counter use
// shard 0 and suit unsharded callers (the solver stack, setup code);
// per-worker hot loops resolve a Shard once and add to their own slot.
type Counter struct {
	shards []counterShard
}

func newCounter(shards int) *Counter {
	return &Counter{shards: make([]counterShard, shards)}
}

// Add increments the counter by n (shard 0).
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// Inc increments the counter by 1 (shard 0).
func (c *Counter) Inc() { c.shards[0].v.Add(1) }

// Value returns the sum over all shards.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Shard returns worker i's private view of the counter. Indices wrap, so
// any job index is valid.
func (c *Counter) Shard(i int) CounterShard {
	return CounterShard{v: &c.shards[i&(len(c.shards)-1)].v}
}

// CounterShard is a pre-resolved, cache-line-private counter slot: the
// frame loop's handle. The zero value is unusable; obtain one via Shard.
type CounterShard struct {
	v *atomic.Int64
}

// Add increments the shard by n.
func (s CounterShard) Add(n int64) { s.v.Add(n) }

// Inc increments the shard by 1.
func (s CounterShard) Inc() { s.v.Add(1) }

// ---- Gauge ----

// Gauge is a float64 gauge. Unlike counters it is not sharded: gauges are
// set from setup/teardown paths or at coarse intervals, never per event.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger (monotone progress gauges).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
