package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("eagleeye_frames_total", "Frames simulated.").Add(41)
	r.Gauge("eagleeye_sim_progress", "Fraction complete.").Set(0.5)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "eagleeye_frames_total 41") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "eagleeye_sim_progress 0.5") {
		t.Errorf("/metrics missing gauge:\n%s", body)
	}

	body, ctype = get("/summary")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/summary content-type = %q", ctype)
	}
	var s Summary
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/summary not valid JSON: %v", err)
	}
	if s.Schema != SummarySchema || len(s.Metrics) != 2 {
		t.Errorf("/summary schema=%d metrics=%d", s.Schema, len(s.Metrics))
	}

	if body, _ = get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", NewRegistry()); err == nil {
		t.Fatal("expected listen error")
	}
}
