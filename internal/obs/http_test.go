package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("eagleeye_frames_total", "Frames simulated.").Add(41)
	r.Gauge("eagleeye_sim_progress", "Fraction complete.").Set(0.5)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "eagleeye_frames_total 41") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "eagleeye_sim_progress 0.5") {
		t.Errorf("/metrics missing gauge:\n%s", body)
	}

	body, ctype = get("/summary")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/summary content-type = %q", ctype)
	}
	var s Summary
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/summary not valid JSON: %v", err)
	}
	if s.Schema != SummarySchema || len(s.Metrics) != 2 {
		t.Errorf("/summary schema=%d metrics=%d", s.Schema, len(s.Metrics))
	}

	if body, _ = get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}

// TestServeDebugVarsShape: /debug/vars must be one JSON object whose
// memstats member carries the runtime numbers dashboards key on, and
// whose cmdline member is a string array -- the expvar contract external
// scrapers depend on.
func TestServeDebugVarsShape(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/debug/vars content-type = %q", ct)
	}
	var vars struct {
		Cmdline  []string `json:"cmdline"`
		Memstats struct {
			Alloc      *float64 `json:"Alloc"`
			HeapAlloc  *float64 `json:"HeapAlloc"`
			NumGC      *float64 `json:"NumGC"`
			TotalAlloc *float64 `json:"TotalAlloc"`
		} `json:"memstats"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not one JSON object: %v\n%s", err, body)
	}
	if len(vars.Cmdline) == 0 {
		t.Error("/debug/vars cmdline missing or empty")
	}
	for name, p := range map[string]*float64{
		"Alloc": vars.Memstats.Alloc, "HeapAlloc": vars.Memstats.HeapAlloc,
		"NumGC": vars.Memstats.NumGC, "TotalAlloc": vars.Memstats.TotalAlloc,
	} {
		if p == nil {
			t.Errorf("/debug/vars memstats.%s missing", name)
		}
	}
}

// TestServeTimeoutsAndFlight: the introspection server must carry
// network deadlines (an abandoned connection cannot pin it), and a
// recorder passed to Serve is dumpable on /debug/flight.
func TestServeTimeoutsAndFlight(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	fr.SetSession("cli")
	b := fr.Builder()
	b.Start(0, 1, 10)
	b.Finish(1000)

	srv, err := Serve("127.0.0.1:0", NewRegistry(), fr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if srv.srv.ReadHeaderTimeout <= 0 || srv.srv.ReadTimeout <= 0 || srv.srv.IdleTimeout <= 0 {
		t.Errorf("server missing deadlines: header=%v read=%v idle=%v",
			srv.srv.ReadHeaderTimeout, srv.srv.ReadTimeout, srv.srv.IdleTimeout)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d FlightDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("/debug/flight: %v", err)
	}
	if d.Schema != FlightSchema || d.Session != "cli" || d.Frames != 1 {
		t.Errorf("/debug/flight dump = schema %d session %q frames %d", d.Schema, d.Session, d.Frames)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", NewRegistry()); err == nil {
		t.Fatal("expected listen error")
	}
}
