// Package energy models the power subsystem of a 3U cubesat in the
// EagleEye constellation, following the cote parameters the paper cites
// (§5.3): solar harvest over the sunlit arc of each orbit and the loads of
// the camera, the ADACS, the onboard computer (Jetson Orin, 15 W mode) and
// the radio. It produces the per-orbit, per-role energy accounting of the
// paper's Fig. 16 and enforces the harvest budget that limits leader tiling
// to ~2x (§6.2).
package energy

import "fmt"

// Params describes the satellite power configuration. All powers in watts,
// energies in joules.
type Params struct {
	// SolarPanelW is the panel output while illuminated.
	SolarPanelW float64
	// SunlitFraction is the fraction of the orbit in sunlight.
	SunlitFraction float64
	// OrbitPeriodS is the orbital period.
	OrbitPeriodS float64
	// CameraW is the imager power during a capture.
	CameraW float64
	// CaptureS is the imaging duration per capture.
	CaptureS float64
	// ADACSIdleW is the attitude-control hold power (always on).
	ADACSIdleW float64
	// ADACSSlewW is the additional power while slewing.
	ADACSSlewW float64
	// SlewRateDegS converts commanded degrees into slew seconds.
	SlewRateDegS float64
	// ComputeW is the onboard computer's active power.
	ComputeW float64
	// TXW is the downlink radio power.
	TXW float64
	// CrosslinkW is the inter-satellite radio power.
	CrosslinkW float64
}

// Paper3U returns the 3U-cubesat parameters used throughout the
// evaluation: a ~22 W deployable panel, ~62% sunlit at the paper's orbit,
// 94-minute period, 15 W Jetson Orin compute, and S-band radios.
func Paper3U() Params {
	return Params{
		SolarPanelW:    22,
		SunlitFraction: 0.62,
		OrbitPeriodS:   94 * 60,
		CameraW:        5,
		CaptureS:       0.2,
		ADACSIdleW:     0.5,
		ADACSSlewW:     4,
		SlewRateDegS:   3,
		ComputeW:       15,
		TXW:            8,
		CrosslinkW:     2,
	}
}

// Validate reports whether the parameters are physically plausible.
func (p Params) Validate() error {
	switch {
	case p.SolarPanelW <= 0:
		return fmt.Errorf("energy: solar power %v must be positive", p.SolarPanelW)
	case p.SunlitFraction <= 0 || p.SunlitFraction > 1:
		return fmt.Errorf("energy: sunlit fraction %v out of (0,1]", p.SunlitFraction)
	case p.OrbitPeriodS <= 0:
		return fmt.Errorf("energy: period %v must be positive", p.OrbitPeriodS)
	case p.SlewRateDegS <= 0:
		return fmt.Errorf("energy: slew rate %v must be positive", p.SlewRateDegS)
	}
	return nil
}

// HarvestPerOrbitJ returns the total harvestable energy per orbit.
func (p Params) HarvestPerOrbitJ() float64 {
	return p.SolarPanelW * p.SunlitFraction * p.OrbitPeriodS
}

// Budget accumulates per-component consumption over an accounting window
// (typically one orbit). The zero value is an empty budget for Paper3U
// parameters; use NewBudget to bind other parameters.
type Budget struct {
	Params  Params
	CameraJ float64
	ADACSJ  float64
	// ComputeJ covers ML inference and scheduling.
	ComputeJ float64
	// TXJ covers ground downlink; CrosslinkJ the inter-satellite link.
	TXJ        float64
	CrosslinkJ float64
}

// NewBudget returns an empty budget under the given parameters.
func NewBudget(p Params) *Budget { return &Budget{Params: p} }

// Capture accounts n camera captures.
func (b *Budget) Capture(n int) { b.CameraJ += float64(n) * b.Params.CameraW * b.Params.CaptureS }

// Slew accounts a commanded rotation of deg degrees plus hold power for
// holdS seconds.
func (b *Budget) Slew(deg, holdS float64) {
	if deg > 0 {
		b.ADACSJ += deg / b.Params.SlewRateDegS * b.Params.ADACSSlewW
	}
	if holdS > 0 {
		b.ADACSJ += holdS * b.Params.ADACSIdleW
	}
}

// Compute accounts s seconds of onboard computation.
func (b *Budget) Compute(s float64) { b.ComputeJ += s * b.Params.ComputeW }

// Downlink accounts s seconds of ground transmission.
func (b *Budget) Downlink(s float64) { b.TXJ += s * b.Params.TXW }

// Crosslink accounts s seconds of inter-satellite transmission.
func (b *Budget) Crosslink(s float64) { b.CrosslinkJ += s * b.Params.CrosslinkW }

// Add accumulates o's consumption into b. The parallel simulator merges
// per-worker private budgets this way; parameters stay b's own.
func (b *Budget) Add(o *Budget) {
	b.CameraJ += o.CameraJ
	b.ADACSJ += o.ADACSJ
	b.ComputeJ += o.ComputeJ
	b.TXJ += o.TXJ
	b.CrosslinkJ += o.CrosslinkJ
}

// TotalJ returns the total consumption.
func (b *Budget) TotalJ() float64 {
	return b.CameraJ + b.ADACSJ + b.ComputeJ + b.TXJ + b.CrosslinkJ
}

// Feasible reports whether consumption fits within the orbit's harvest.
func (b *Budget) Feasible() bool { return b.TotalJ() <= b.Params.HarvestPerOrbitJ() }

// Utilization returns consumption as a fraction of harvest.
func (b *Budget) Utilization() float64 {
	h := b.Params.HarvestPerOrbitJ()
	if h <= 0 {
		return 0
	}
	return b.TotalJ() / h
}

// Role identifies the satellite type for the Fig. 16 accounting.
type Role int8

// Satellite roles in the energy analysis.
const (
	RoleLowResBaseline Role = iota
	RoleHighResBaseline
	RoleLeader
	RoleFollower
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleLowResBaseline:
		return "low-res-baseline"
	case RoleHighResBaseline:
		return "high-res-baseline"
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// OrbitProfile summarizes one orbit of activity for a role, produced by
// the simulator or by the analytic model in PerOrbitBudget.
type OrbitProfile struct {
	Frames          int     // frames captured along the ground track
	FrameComputeS   float64 // onboard inference time per frame
	ScheduleCount   int     // schedules computed (leader only)
	ScheduleS       float64 // compute time per schedule
	TargetCaptures  int     // pointed captures (followers)
	SlewDegPerOrbit float64 // total commanded rotation
	DownlinkS       float64 // ground-station contact used
	CrosslinkS      float64 // inter-satellite link time
}

// PerOrbitBudget builds the Fig. 16 budget for a role under the given
// activity profile.
func PerOrbitBudget(p Params, prof OrbitProfile) *Budget {
	b := NewBudget(p)
	b.Capture(prof.Frames + prof.TargetCaptures)
	b.Compute(float64(prof.Frames)*prof.FrameComputeS + float64(prof.ScheduleCount)*prof.ScheduleS)
	b.Slew(prof.SlewDegPerOrbit, p.OrbitPeriodS)
	b.Downlink(prof.DownlinkS)
	b.Crosslink(prof.CrosslinkS)
	return b
}

// PaperProfile returns the analytic per-orbit activity for a role at the
// given tile factor (1, 2, 4), matching §5.3: ~412 frames/orbit at the
// 13.7 s cadence, 6 min of downlink for image-producing satellites, and
// negligible crosslink for the leader.
func PaperProfile(role Role, tileFactor float64, frameComputeS float64) OrbitProfile {
	const framesPerOrbit = 412
	prof := OrbitProfile{}
	switch role {
	case RoleLowResBaseline, RoleHighResBaseline:
		prof.Frames = framesPerOrbit
		prof.FrameComputeS = frameComputeS * tileFactor
		prof.DownlinkS = 6 * 60
	case RoleLeader:
		prof.Frames = framesPerOrbit
		prof.FrameComputeS = frameComputeS * tileFactor
		prof.ScheduleCount = 400 // §5.3: ~400 schedule results per period
		prof.ScheduleS = 0.01    // ~10 ms scheduling (§6.1)
		prof.CrosslinkS = 2.5    // <1 MB/orbit at 0.4 MB/s (§5.3)
	case RoleFollower:
		prof.TargetCaptures = 400
		prof.SlewDegPerOrbit = 400 * 4 // ~4 deg average repoint per capture
		prof.DownlinkS = 6 * 60
		prof.CrosslinkS = 2.5
	}
	return prof
}
