package energy

import (
	"testing"

	"eagleeye/internal/detect"
)

func TestBatteryValidate(t *testing.T) {
	if err := Paper3UBattery().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NewBattery(0).Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	b := NewBattery(100)
	b.MinSoCJ = 200
	if err := b.Validate(); err == nil {
		t.Error("floor above capacity accepted")
	}
}

func TestBatteryChargeSaturates(t *testing.T) {
	b := NewBattery(1000)
	b.SoCJ = 900
	b.Step(100, 0, 10, true) // harvest 1000 J into 100 J of headroom
	if b.SoCJ != 1000 {
		t.Errorf("SoC = %v, want saturated at 1000", b.SoCJ)
	}
	if b.Depleted() {
		t.Error("charged battery marked depleted")
	}
}

func TestBatteryDepletes(t *testing.T) {
	b := NewBattery(1000)
	b.Step(1000, 10, 0, false) // 10 kJ draw in eclipse
	if !b.Depleted() {
		t.Error("drained battery not marked depleted")
	}
	if b.SoCJ != b.MinSoCJ {
		t.Errorf("SoC = %v, want clamped at floor %v", b.SoCJ, b.MinSoCJ)
	}
}

func TestBatteryZeroStep(t *testing.T) {
	b := NewBattery(1000)
	soc := b.SoCJ
	b.Step(0, 100, 0, false)
	b.Step(-5, 100, 0, false)
	if b.SoCJ != soc {
		t.Error("non-positive step changed SoC")
	}
}

func TestLeaderSurvivesEclipseAt2xTiling(t *testing.T) {
	// Time-resolved counterpart of Fig. 16: at 2x tiling the leader's
	// battery rides through eclipses; at 4x it depletes.
	p := Paper3U()
	frameS := detect.PaperTiling().FrameTimeS(detect.YoloM())

	ok := Paper3UBattery()
	load2 := AverageLoadW(PerOrbitBudget(p, PaperProfile(RoleLeader, 2, frameS)))
	min2 := ok.SimulateOrbits(p, load2, 5)
	if ok.Depleted() {
		t.Errorf("2x tiling depleted the battery (min SoC %.2f)", min2)
	}

	bad := Paper3UBattery()
	load4 := AverageLoadW(PerOrbitBudget(p, PaperProfile(RoleLeader, 4, frameS)))
	bad.SimulateOrbits(p, load4, 5)
	if !bad.Depleted() {
		t.Error("4x tiling should deplete the battery")
	}
}

func TestMinSoCInEclipse(t *testing.T) {
	// The minimum SoC occurs at eclipse exit; it must be strictly below
	// full charge for any nonzero load.
	p := Paper3U()
	b := Paper3UBattery()
	min := b.SimulateOrbits(p, 5, 2)
	if min >= 1 {
		t.Errorf("min SoC %v should dip below full", min)
	}
	if min < 0.2-1e-9 {
		t.Errorf("min SoC %v below the floor", min)
	}
}

func TestAverageLoad(t *testing.T) {
	b := NewBudget(Paper3U())
	b.Compute(b.Params.OrbitPeriodS) // 15 W for a whole orbit
	if got := AverageLoadW(b); got != 15 {
		t.Errorf("average load = %v, want 15", got)
	}
	zero := &Budget{}
	if AverageLoadW(zero) != 0 {
		t.Error("zero-period budget should give 0")
	}
}
