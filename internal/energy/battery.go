package energy

import "fmt"

// Battery simulates the state of charge of the satellite's battery over a
// timeline of load and illumination: the time-resolved counterpart of the
// per-orbit budget. The paper's per-orbit analysis (Fig. 16) says whether
// an orbit's books balance; the battery model says whether the satellite
// survives the eclipse portion while running its loads.
type Battery struct {
	// CapacityJ is the usable battery capacity. A 3U cubesat typically
	// carries ~40 Wh usable, i.e. ~144 kJ.
	CapacityJ float64
	// SoCJ is the current state of charge.
	SoCJ float64
	// MinSoCJ is the depth-of-discharge floor; draining below it marks
	// the battery as depleted.
	MinSoCJ float64

	depleted bool
}

// NewBattery returns a battery at full charge.
func NewBattery(capacityJ float64) *Battery {
	return &Battery{CapacityJ: capacityJ, SoCJ: capacityJ, MinSoCJ: 0.2 * capacityJ}
}

// Paper3UBattery returns a 40 Wh battery with a 20% discharge floor.
func Paper3UBattery() *Battery { return NewBattery(40 * 3600) }

// Validate reports whether the battery parameters are plausible.
func (b *Battery) Validate() error {
	if b.CapacityJ <= 0 {
		return fmt.Errorf("energy: battery capacity %v must be positive", b.CapacityJ)
	}
	if b.MinSoCJ < 0 || b.MinSoCJ >= b.CapacityJ {
		return fmt.Errorf("energy: discharge floor %v out of [0, capacity)", b.MinSoCJ)
	}
	return nil
}

// Step advances the battery by dtS seconds under loadW watts of draw,
// harvesting solarW watts if sunlit. Charge saturates at capacity; the
// battery is marked depleted if it hits the discharge floor.
func (b *Battery) Step(dtS, loadW, solarW float64, sunlit bool) {
	if dtS <= 0 {
		return
	}
	net := -loadW
	if sunlit {
		net += solarW
	}
	b.SoCJ += net * dtS
	if b.SoCJ > b.CapacityJ {
		b.SoCJ = b.CapacityJ
	}
	if b.SoCJ <= b.MinSoCJ {
		b.SoCJ = b.MinSoCJ
		b.depleted = true
	}
}

// Depleted reports whether the battery ever hit the discharge floor.
func (b *Battery) Depleted() bool { return b.depleted }

// SoCFraction returns the state of charge as a fraction of capacity.
func (b *Battery) SoCFraction() float64 {
	if b.CapacityJ <= 0 {
		return 0
	}
	return b.SoCJ / b.CapacityJ
}

// SimulateOrbits runs the battery over n orbits of the given parameters
// with a constant average load, returning the minimum state-of-charge
// fraction reached. The orbit alternates a sunlit arc (SunlitFraction of
// the period) and an eclipse arc.
func (b *Battery) SimulateOrbits(p Params, avgLoadW float64, orbits int) float64 {
	minSoC := b.SoCFraction()
	const stepS = 10.0
	sunlitS := p.SunlitFraction * p.OrbitPeriodS
	for o := 0; o < orbits; o++ {
		for t := 0.0; t < p.OrbitPeriodS; t += stepS {
			b.Step(stepS, avgLoadW, p.SolarPanelW, t < sunlitS)
			if f := b.SoCFraction(); f < minSoC {
				minSoC = f
			}
		}
	}
	return minSoC
}

// AverageLoadW converts a per-orbit budget into the equivalent constant
// load for battery simulation.
func AverageLoadW(b *Budget) float64 {
	if b.Params.OrbitPeriodS <= 0 {
		return 0
	}
	return b.TotalJ() / b.Params.OrbitPeriodS
}
