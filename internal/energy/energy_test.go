package energy

import (
	"testing"

	"eagleeye/internal/detect"
)

func TestParamsValidate(t *testing.T) {
	if err := Paper3U().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{},
		{SolarPanelW: 20, SunlitFraction: 1.5, OrbitPeriodS: 100, SlewRateDegS: 3},
		{SolarPanelW: 20, SunlitFraction: 0.6, OrbitPeriodS: 0, SlewRateDegS: 3},
		{SolarPanelW: 20, SunlitFraction: 0.6, OrbitPeriodS: 100, SlewRateDegS: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHarvestPerOrbit(t *testing.T) {
	p := Paper3U()
	// 22 W x 0.62 x 5640 s = ~77 kJ.
	h := p.HarvestPerOrbitJ()
	if h < 65e3 || h > 85e3 {
		t.Errorf("harvest = %v J", h)
	}
}

func TestBudgetAccumulation(t *testing.T) {
	b := NewBudget(Paper3U())
	b.Capture(10)
	b.Compute(100)
	b.Slew(30, 60)
	b.Downlink(60)
	b.Crosslink(5)
	if b.CameraJ != 10*5*0.2 {
		t.Errorf("camera = %v", b.CameraJ)
	}
	if b.ComputeJ != 1500 {
		t.Errorf("compute = %v", b.ComputeJ)
	}
	wantADACS := 30.0/3*4 + 60*0.5
	if b.ADACSJ != wantADACS {
		t.Errorf("adacs = %v, want %v", b.ADACSJ, wantADACS)
	}
	if b.TXJ != 480 {
		t.Errorf("tx = %v", b.TXJ)
	}
	if b.CrosslinkJ != 10 {
		t.Errorf("crosslink = %v", b.CrosslinkJ)
	}
	total := b.CameraJ + b.ADACSJ + b.ComputeJ + b.TXJ + b.CrosslinkJ
	if b.TotalJ() != total {
		t.Errorf("total = %v, want %v", b.TotalJ(), total)
	}
	if !b.Feasible() {
		t.Error("small budget should be feasible")
	}
}

func TestBudgetAdd(t *testing.T) {
	a := NewBudget(Paper3U())
	a.Capture(10)
	a.Compute(100)
	a.Slew(30, 60)
	a.Downlink(60)
	a.Crosslink(5)
	b := NewBudget(Paper3U())
	b.Capture(3)
	b.Compute(7)

	sum := NewBudget(Paper3U())
	sum.Add(a)
	sum.Add(b)
	if sum.CameraJ != a.CameraJ+b.CameraJ {
		t.Errorf("camera = %v, want %v", sum.CameraJ, a.CameraJ+b.CameraJ)
	}
	if sum.ComputeJ != a.ComputeJ+b.ComputeJ {
		t.Errorf("compute = %v, want %v", sum.ComputeJ, a.ComputeJ+b.ComputeJ)
	}
	if sum.ADACSJ != a.ADACSJ || sum.TXJ != a.TXJ || sum.CrosslinkJ != a.CrosslinkJ {
		t.Errorf("adacs/tx/crosslink not carried over: %+v", sum)
	}
	if sum.TotalJ() != a.TotalJ()+b.TotalJ() {
		t.Errorf("total = %v, want %v", sum.TotalJ(), a.TotalJ()+b.TotalJ())
	}
}

func TestFig16TilingFeasibility(t *testing.T) {
	// The paper: harvest supports ~2x tiling; 4x exceeds the budget.
	p := Paper3U()
	frameS := detect.PaperTiling().FrameTimeS(detect.YoloM())
	for _, tc := range []struct {
		factor   float64
		feasible bool
	}{
		{1, true},
		{2, true},
		{4, false},
	} {
		prof := PaperProfile(RoleLeader, tc.factor, frameS)
		b := PerOrbitBudget(p, prof)
		if got := b.Feasible(); got != tc.feasible {
			t.Errorf("tile factor %v: feasible = %v (util %.2f), want %v",
				tc.factor, got, b.Utilization(), tc.feasible)
		}
	}
}

func TestLeaderUsesLessThanBaseline(t *testing.T) {
	// The leader skips image downlink (offloaded to followers), so it uses
	// slightly less energy than the baselines (Fig. 16 discussion).
	p := Paper3U()
	frameS := detect.PaperTiling().FrameTimeS(detect.YoloM())
	leader := PerOrbitBudget(p, PaperProfile(RoleLeader, 1, frameS))
	baseline := PerOrbitBudget(p, PaperProfile(RoleLowResBaseline, 1, frameS))
	if leader.TotalJ() >= baseline.TotalJ() {
		t.Errorf("leader %v J not below baseline %v J", leader.TotalJ(), baseline.TotalJ())
	}
}

func TestFollowerNotEnergyBottleneck(t *testing.T) {
	// Fig. 16: for all tiling factors, energy is not a bottleneck for
	// followers (they do no systematic frame processing).
	p := Paper3U()
	b := PerOrbitBudget(p, PaperProfile(RoleFollower, 4, 0))
	if !b.Feasible() {
		t.Errorf("follower infeasible at util %.2f", b.Utilization())
	}
	if b.ComputeJ != 0 {
		t.Errorf("follower compute = %v, want 0", b.ComputeJ)
	}
}

func TestUtilizationMonotoneInTiling(t *testing.T) {
	p := Paper3U()
	frameS := detect.PaperTiling().FrameTimeS(detect.YoloM())
	prev := 0.0
	for _, f := range []float64{1, 2, 4} {
		u := PerOrbitBudget(p, PaperProfile(RoleLeader, f, frameS)).Utilization()
		if u <= prev {
			t.Errorf("utilization not increasing at factor %v", f)
		}
		prev = u
	}
}

func TestRoleString(t *testing.T) {
	for _, r := range []Role{RoleLowResBaseline, RoleHighResBaseline, RoleLeader, RoleFollower, Role(9)} {
		if r.String() == "" {
			t.Error("empty role string")
		}
	}
}

func TestZeroHarvestUtilization(t *testing.T) {
	b := NewBudget(Params{})
	if b.Utilization() != 0 {
		t.Error("zero-harvest utilization should be 0")
	}
}
