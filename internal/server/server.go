// Package server turns the eagleeye library into a long-running
// multi-tenant scheduling service: an HTTP/JSON daemon (cmd/eagleeyed)
// hosting many concurrent scenario *sessions*, each a validated
// eagleeye.Session advanced by run/step requests on a bounded worker
// pool.
//
// The serving stack is deliberately small and explicit:
//
//   - a bounded session table (create/query/delete) -- the tenant state;
//   - a bounded work queue feeding a fixed worker pool -- requests past
//     the queue bound are rejected with 429 + Retry-After instead of
//     piling up latency (admission control, not load shedding after the
//     fact);
//   - per-request deadlines -- a handler gives up with 504 while the run
//     itself completes in the background and lands on the session;
//   - graceful drain -- Shutdown stops admitting work, waits for
//     in-flight runs, then stops the workers, so SIGTERM never truncates
//     a paying tenant's run.
//
// Solver-state reuse across requests comes from the layers below: every
// run draws its sched/cluster SolverState and mip workspaces from the
// pools PR 3/5 introduced, so a busy server converges to a steady state
// with no per-request solver allocation -- the same warm arenas cycle
// from request to request.
package server

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"eagleeye"
	"eagleeye/internal/obs"
)

// Config tunes one Server. The zero value serves with the defaults noted
// on each field.
type Config struct {
	// MaxSessions bounds the session table; creates beyond it are
	// rejected 429. Default 256.
	MaxSessions int
	// QueueDepth bounds the pending-run queue; run/step requests beyond
	// it are rejected 429 with Retry-After. Default 64.
	QueueDepth int
	// Workers is the number of goroutines executing runs. Default 2.
	Workers int
	// SimWorkers is passed to each run as eagleeye.Config.Workers when
	// the scenario does not set its own; the default 1 keeps one run on
	// one core so concurrent sessions scale by session count.
	SimWorkers int
	// RequestTimeout caps how long a run/step handler waits before
	// answering 504 (the run continues and lands on the session).
	// Streamed-trace runs are exempt: they report progress as they go.
	// Default 60s.
	RequestTimeout time.Duration
	// Metrics, when non-nil, receives the server series (sessions,
	// queue depth, admission rejects, request latency) alongside any
	// simulator series the runs emit.
	Metrics *obs.Registry
	// CheckpointDir, when set, makes sessions durable across daemon
	// restarts: Shutdown spools every idle session to <dir>/<id>.ckpt
	// after the drain, and LoadSpool (called by the daemon before it
	// serves) resumes them under their original IDs.
	CheckpointDir string
	// Log receives one structured line per API request (route, method,
	// path, session, request ID, status, duration) and per completed
	// run. Nil discards: the server never writes unstructured output.
	Log *slog.Logger
	// Flight sizes the per-session flight recorders; the zero value
	// takes the obs defaults (128-frame ring, top 16, 64 pinned).
	Flight obs.FlightConfig
	// DisableFlight turns per-session flight recording off entirely
	// (sessions then answer 404 on their /flight endpoint).
	DisableFlight bool
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	return c
}

// Server is the multi-tenant scheduling service. Create with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config
	met *metrics
	log *slog.Logger

	mu       sync.Mutex
	sessions map[string]*entry
	nextID   int
	draining bool
	closed   bool

	queue chan *job
	// workers tracks the pool goroutines; inflight tracks queued and
	// running jobs so Shutdown can wait for work, not just workers.
	workers  sync.WaitGroup
	inflight sync.WaitGroup
}

// entry is one tenant session in the table.
type entry struct {
	id      string
	created time.Time
	sess    *eagleeye.Session
	// flight is the session's span recorder (nil with DisableFlight).
	// Its own mutex serializes run-side offers and dump-side snapshots;
	// like sess it lives until delete.
	flight *obs.FlightRecorder

	mu         sync.Mutex
	busy       bool // a run/step is queued or executing
	deleted    bool
	runs       int
	failures   int
	lastErr    string
	lastResult *eagleeye.Result
}

// job is one queued run/step.
type job struct {
	e     *entry
	hours float64
	// reqID is the admitting request's X-Request-ID: stamped onto every
	// frame the run records and onto the completion log line, so a 504'd
	// run that lands later is still attributable to its request.
	reqID string
	trace io.Writer
	// closeTrace, when non-nil, is called after the run so a streaming
	// pipe sees EOF exactly when the trace is complete.
	closeTrace func()
	// done is buffered: the worker never blocks on an abandoned handler
	// (deadline exceeded, client gone).
	done chan jobResult
}

type jobResult struct {
	res *eagleeye.Result
	err error
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sessions: make(map[string]*entry),
		queue:    make(chan *job, cfg.QueueDepth),
		log:      cfg.Log,
	}
	if s.log == nil {
		s.log = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	if cfg.Metrics != nil {
		s.met = newMetrics(cfg.Metrics)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if s.met != nil {
			s.met.queueDepth.Add(-1)
		}
		s.runJob(j)
		s.inflight.Done()
	}
}

// runJob advances the job's session and records the outcome on the
// entry. The session itself is single-goroutine; the busy flag set at
// admission time guarantees this worker is its only driver.
func (s *Server) runJob(j *job) {
	start := time.Now()
	if j.e.flight != nil {
		// Frames this run offers carry the admitting request's ID; a
		// PinRequest fired mid-run (deadline 504) tags them as it lands.
		j.e.flight.SetRequest(j.reqID)
	}
	res, err := j.e.sess.Step(eagleeye.StepOptions{
		Hours: j.hours,
		Trace: j.trace,
		// The shared registry: simulator series land next to the server's
		// own on the same /metrics scrape.
		Metrics: s.cfg.Metrics,
		Flight:  j.e.flight,
	})
	if j.e.flight != nil {
		j.e.flight.ClearRequest()
	}
	if j.closeTrace != nil {
		j.closeTrace()
	}
	j.e.mu.Lock()
	j.e.busy = false
	j.e.runs++
	if err != nil {
		j.e.failures++
		j.e.lastErr = err.Error()
	} else {
		j.e.lastErr = ""
		j.e.lastResult = res
	}
	if j.e.deleted {
		// The tenant deleted the session while this run was in flight;
		// release its pooled solver state now that the run is done.
		j.e.sess.Close()
	}
	j.e.mu.Unlock()
	if s.met != nil {
		s.met.runs.Inc()
		if err != nil {
			s.met.runErrors.Inc()
		}
		s.met.runSeconds.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		s.log.Error("run failed", "session", j.e.id, "request_id", j.reqID,
			"hours", j.hours, "dur_ms", time.Since(start).Milliseconds(), "error", err.Error())
	} else {
		s.log.Info("run complete", "session", j.e.id, "request_id", j.reqID,
			"hours", j.hours, "dur_ms", time.Since(start).Milliseconds())
	}
	j.done <- jobResult{res: res, err: err}
}

// admitError classifies an admission rejection.
type admitError struct {
	status int    // HTTP status to answer
	reason string // metrics label: sessions | queue | draining | busy
	msg    string
}

func (e *admitError) Error() string { return e.msg }

// createSession validates the scenario and claims a table slot.
func (s *Server) createSession(sc ScenarioConfig) (*entry, *admitError) {
	cfg := sc.toConfig()
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.SimWorkers
	}
	sess, err := eagleeye.NewSession(cfg)
	if err != nil {
		return nil, &admitError{status: 400, reason: "invalid", msg: err.Error()}
	}
	return s.insertSession(sess, "")
}

// insertSession claims a table slot for a validated session. An empty id
// assigns the next "s<N>"; a caller-provided id (spool resume) is kept
// and the counter advanced past it so later creates never collide.
func (s *Server) insertSession(sess *eagleeye.Session, id string) (*entry, *admitError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &admitError{status: 503, reason: "draining", msg: "server is draining"}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, &admitError{status: 429, reason: "sessions",
			msg: fmt.Sprintf("session table full (%d)", s.cfg.MaxSessions)}
	}
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("s%d", s.nextID)
	} else {
		if _, dup := s.sessions[id]; dup {
			return nil, &admitError{status: 409, reason: "busy",
				msg: fmt.Sprintf("session %s already exists", id)}
		}
		if n := sessionNum(id); n > s.nextID {
			s.nextID = n
		}
	}
	e := &entry{
		id:      id,
		created: time.Now(),
		sess:    sess,
	}
	if !s.cfg.DisableFlight {
		e.flight = obs.NewFlightRecorder(s.cfg.Flight)
		e.flight.SetSession(id)
	}
	s.sessions[e.id] = e
	if s.met != nil {
		s.met.sessionsCreated.Inc()
		s.met.sessionsActive.Set(float64(len(s.sessions)))
	}
	return e, nil
}

// lookup returns the live session with the given id.
func (s *Server) lookup(id string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// deleteSession removes id from the table. A running job keeps its
// private reference and finishes into the orphaned entry.
func (s *Server) deleteSession(id string) bool {
	s.mu.Lock()
	e, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	n := len(s.sessions)
	s.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock()
	e.deleted = true
	if !e.busy {
		// No run in flight that could still need it: release the session's
		// pooled solver state now. (A busy session is closed by its worker
		// when the run lands; see runJob.)
		e.sess.Close()
	}
	e.mu.Unlock()
	if s.met != nil {
		s.met.sessionsDeleted.Inc()
		s.met.sessionsActive.Set(float64(n))
	}
	return true
}

// enqueue admits one run/step for e. It claims the session's busy flag
// and a queue slot, or reports why not.
func (s *Server) enqueue(e *entry, hours float64, reqID string, trace io.Writer, closeTrace func()) (*job, *admitError) {
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return nil, &admitError{status: 404, reason: "deleted", msg: "session deleted"}
	}
	if e.busy {
		e.mu.Unlock()
		return nil, &admitError{status: 409, reason: "busy", msg: "session already has a run in flight"}
	}
	// Safe to read here: busy is false and we hold e.mu, so no worker is
	// stepping this session.
	if e.sess.Done() {
		e.mu.Unlock()
		return nil, &admitError{status: 409, reason: "busy",
			msg: "session already simulated its full duration (continuous sessions do not restart)"}
	}
	e.busy = true
	e.mu.Unlock()

	release := func() {
		e.mu.Lock()
		e.busy = false
		e.mu.Unlock()
	}

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		release()
		return nil, &admitError{status: 503, reason: "draining", msg: "server is draining"}
	}
	j := &job{e: e, hours: hours, reqID: reqID, trace: trace, closeTrace: closeTrace, done: make(chan jobResult, 1)}
	select {
	case s.queue <- j:
		s.inflight.Add(1)
		if s.met != nil {
			s.met.queueDepth.Add(1)
		}
		s.mu.Unlock()
		return j, nil
	default:
		s.mu.Unlock()
		release()
		return nil, &admitError{status: 429, reason: "queue",
			msg: fmt.Sprintf("work queue full (%d)", s.cfg.QueueDepth)}
	}
}

// checkpointSession serializes e's session to w with the same
// exclusivity a run gets: the busy flag is claimed for the duration, so
// a checkpoint never observes a session mid-step.
func (s *Server) checkpointSession(e *entry, w io.Writer) *admitError {
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return &admitError{status: 404, reason: "deleted", msg: "session deleted"}
	}
	if e.busy {
		e.mu.Unlock()
		return &admitError{status: 409, reason: "busy", msg: "session already has a run in flight"}
	}
	e.busy = true
	e.mu.Unlock()

	err := e.sess.Checkpoint(w)

	e.mu.Lock()
	e.busy = false
	if e.deleted {
		e.sess.Close()
	}
	e.mu.Unlock()
	if err != nil {
		return &admitError{status: 500, reason: "", msg: err.Error()}
	}
	if s.met != nil {
		s.met.checkpointsTaken.Inc()
	}
	return nil
}

// spoolSessions writes every idle session to CheckpointDir as
// <id>.ckpt (temp-file + rename, so a crash mid-write never leaves a
// truncated spool entry). Sessions still busy -- only possible when the
// drain deadline passed with work in flight -- are skipped. Called from
// Shutdown after the worker pool has stopped.
func (s *Server) spoolSessions() (int, error) {
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return 0, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	spooled := 0
	var firstErr error
	for _, e := range entries {
		e.mu.Lock()
		busy := e.busy
		e.mu.Unlock()
		if busy {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: session %s still running at spool time; not spooled", e.id)
			}
			continue
		}
		if err := writeCheckpointFile(filepath.Join(s.cfg.CheckpointDir, e.id+".ckpt"), e.sess); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		spooled++
		if s.met != nil {
			s.met.checkpointsSpooled.Inc()
		}
	}
	return spooled, firstErr
}

func writeCheckpointFile(path string, sess *eagleeye.Session) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := sess.Checkpoint(bw); err == nil {
		err = bw.Flush()
	} else {
		_ = bw.Flush()
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSpool resumes every session a previous process spooled into
// CheckpointDir, preserving session IDs, and removes the spool files it
// consumed (a file that fails to restore is left in place for forensics).
// Call it before serving; it returns how many sessions were resumed.
func (s *Server) LoadSpool() (int, error) {
	if s.cfg.CheckpointDir == "" {
		return 0, nil
	}
	des, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	resumed := 0
	var firstErr error
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		path := filepath.Join(s.cfg.CheckpointDir, name)
		f, err := os.Open(path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sess, err := eagleeye.RestoreSession(bufio.NewReader(f))
		_ = f.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: spool %s: %w", name, err)
			}
			continue
		}
		if _, aerr := s.insertSession(sess, strings.TrimSuffix(name, ".ckpt")); aerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: spool %s: %s", name, aerr.msg)
			}
			continue
		}
		_ = os.Remove(path)
		resumed++
		if s.met != nil {
			s.met.checkpointsResumed.Inc()
		}
	}
	return resumed, firstErr
}

// Shutdown drains the server: stop admitting sessions and runs, wait for
// queued and executing jobs (until the deadline), then stop the worker
// pool; with CheckpointDir set, idle sessions are then spooled to disk
// for the next process to resume. It is safe to call once; the handler
// keeps answering queries and deletes during the drain so orchestrators
// can observe it.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("server: drain deadline (%s) passed with work in flight", timeout)
	}

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.workers.Wait()
	if s.cfg.CheckpointDir != "" {
		if _, serr := s.spoolSessions(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ---- metrics ----

// metrics is the server's pre-resolved series set on the shared registry.
type metrics struct {
	sessionsActive  *obs.Gauge
	sessionsCreated *obs.Counter
	sessionsDeleted *obs.Counter
	queueDepth      *obs.Gauge
	runs            *obs.Counter
	runErrors       *obs.Counter
	runSeconds      *obs.Histogram
	rejects         map[string]*obs.Counter
	requests        *requestMetrics

	checkpointsTaken   *obs.Counter
	checkpointsSpooled *obs.Counter
	checkpointsResumed *obs.Counter
}

// rejectReasons enumerates the admission-reject label values so the
// series exist (at zero) from the first scrape.
var rejectReasons = []string{"sessions", "queue", "draining", "busy"}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{
		sessionsActive:  r.Gauge("eagleeyed_sessions_active", "Live sessions in the table."),
		sessionsCreated: r.Counter("eagleeyed_sessions_created_total", "Sessions ever created."),
		sessionsDeleted: r.Counter("eagleeyed_sessions_deleted_total", "Sessions deleted by tenants."),
		queueDepth:      r.Gauge("eagleeyed_queue_depth", "Run/step jobs waiting in the admission queue."),
		runs:            r.Counter("eagleeyed_runs_total", "Scenario runs/steps executed (including failures)."),
		runErrors:       r.Counter("eagleeyed_run_errors_total", "Scenario runs/steps that returned an error."),
		runSeconds: r.Histogram("eagleeyed_run_seconds",
			"Distribution of scenario run/step execution time, in seconds.", obs.DefTimeBuckets),
		rejects:  make(map[string]*obs.Counter, len(rejectReasons)),
		requests: newRequestMetrics(r),
		checkpointsTaken: r.Counter("eagleeyed_checkpoints_total",
			"Session checkpoints served over the API."),
		checkpointsSpooled: r.Counter("eagleeyed_checkpoints_spooled_total",
			"Sessions spooled to the checkpoint dir at shutdown."),
		checkpointsResumed: r.Counter("eagleeyed_checkpoints_resumed_total",
			"Sessions resumed from the checkpoint spool at startup."),
	}
	for _, reason := range rejectReasons {
		m.rejects[reason] = r.Counter("eagleeyed_admission_rejects_total",
			"Requests rejected by admission control, by reason.",
			obs.Label{Key: "reason", Value: reason})
	}
	return m
}

func (m *metrics) reject(reason string) {
	if m == nil {
		return
	}
	if c, ok := m.rejects[reason]; ok {
		c.Inc()
	}
}
