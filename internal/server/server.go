// Package server turns the eagleeye library into a long-running
// multi-tenant scheduling service: an HTTP/JSON daemon (cmd/eagleeyed)
// hosting many concurrent scenario *sessions*, each a validated
// eagleeye.Session advanced by run/step requests on a bounded worker
// pool.
//
// The serving stack is deliberately small and explicit:
//
//   - a bounded session table (create/query/delete) -- the tenant state;
//   - a bounded work queue feeding a fixed worker pool -- requests past
//     the queue bound are rejected with 429 + Retry-After instead of
//     piling up latency (admission control, not load shedding after the
//     fact);
//   - per-request deadlines -- a handler gives up with 504 while the run
//     itself completes in the background and lands on the session;
//   - graceful drain -- Shutdown stops admitting work, waits for
//     in-flight runs, then stops the workers, so SIGTERM never truncates
//     a paying tenant's run.
//
// Solver-state reuse across requests comes from the layers below: every
// run draws its sched/cluster SolverState and mip workspaces from the
// pools PR 3/5 introduced, so a busy server converges to a steady state
// with no per-request solver allocation -- the same warm arenas cycle
// from request to request.
package server

import (
	"fmt"
	"io"
	"sync"
	"time"

	"eagleeye"
	"eagleeye/internal/obs"
)

// Config tunes one Server. The zero value serves with the defaults noted
// on each field.
type Config struct {
	// MaxSessions bounds the session table; creates beyond it are
	// rejected 429. Default 256.
	MaxSessions int
	// QueueDepth bounds the pending-run queue; run/step requests beyond
	// it are rejected 429 with Retry-After. Default 64.
	QueueDepth int
	// Workers is the number of goroutines executing runs. Default 2.
	Workers int
	// SimWorkers is passed to each run as eagleeye.Config.Workers when
	// the scenario does not set its own; the default 1 keeps one run on
	// one core so concurrent sessions scale by session count.
	SimWorkers int
	// RequestTimeout caps how long a run/step handler waits before
	// answering 504 (the run continues and lands on the session).
	// Streamed-trace runs are exempt: they report progress as they go.
	// Default 60s.
	RequestTimeout time.Duration
	// Metrics, when non-nil, receives the server series (sessions,
	// queue depth, admission rejects, request latency) alongside any
	// simulator series the runs emit.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	return c
}

// Server is the multi-tenant scheduling service. Create with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config
	met *metrics

	mu       sync.Mutex
	sessions map[string]*entry
	nextID   int
	draining bool
	closed   bool

	queue chan *job
	// workers tracks the pool goroutines; inflight tracks queued and
	// running jobs so Shutdown can wait for work, not just workers.
	workers  sync.WaitGroup
	inflight sync.WaitGroup
}

// entry is one tenant session in the table.
type entry struct {
	id      string
	created time.Time
	sess    *eagleeye.Session

	mu         sync.Mutex
	busy       bool // a run/step is queued or executing
	deleted    bool
	runs       int
	failures   int
	lastErr    string
	lastResult *eagleeye.Result
}

// job is one queued run/step.
type job struct {
	e     *entry
	hours float64
	trace io.Writer
	// closeTrace, when non-nil, is called after the run so a streaming
	// pipe sees EOF exactly when the trace is complete.
	closeTrace func()
	// done is buffered: the worker never blocks on an abandoned handler
	// (deadline exceeded, client gone).
	done chan jobResult
}

type jobResult struct {
	res *eagleeye.Result
	err error
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sessions: make(map[string]*entry),
		queue:    make(chan *job, cfg.QueueDepth),
	}
	if cfg.Metrics != nil {
		s.met = newMetrics(cfg.Metrics)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if s.met != nil {
			s.met.queueDepth.Add(-1)
		}
		s.runJob(j)
		s.inflight.Done()
	}
}

// runJob advances the job's session and records the outcome on the
// entry. The session itself is single-goroutine; the busy flag set at
// admission time guarantees this worker is its only driver.
func (s *Server) runJob(j *job) {
	start := time.Now()
	res, err := j.e.sess.Step(eagleeye.StepOptions{
		Hours: j.hours,
		Trace: j.trace,
		// The shared registry: simulator series land next to the server's
		// own on the same /metrics scrape.
		Metrics: s.cfg.Metrics,
	})
	if j.closeTrace != nil {
		j.closeTrace()
	}
	j.e.mu.Lock()
	j.e.busy = false
	j.e.runs++
	if err != nil {
		j.e.failures++
		j.e.lastErr = err.Error()
	} else {
		j.e.lastErr = ""
		j.e.lastResult = res
	}
	j.e.mu.Unlock()
	if s.met != nil {
		s.met.runs.Inc()
		if err != nil {
			s.met.runErrors.Inc()
		}
		s.met.runSeconds.Observe(time.Since(start).Seconds())
	}
	j.done <- jobResult{res: res, err: err}
}

// admitError classifies an admission rejection.
type admitError struct {
	status int    // HTTP status to answer
	reason string // metrics label: sessions | queue | draining | busy
	msg    string
}

func (e *admitError) Error() string { return e.msg }

// createSession validates the scenario and claims a table slot.
func (s *Server) createSession(sc ScenarioConfig) (*entry, *admitError) {
	cfg := sc.toConfig()
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.SimWorkers
	}
	sess, err := eagleeye.NewSession(cfg)
	if err != nil {
		return nil, &admitError{status: 400, reason: "invalid", msg: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &admitError{status: 503, reason: "draining", msg: "server is draining"}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, &admitError{status: 429, reason: "sessions",
			msg: fmt.Sprintf("session table full (%d)", s.cfg.MaxSessions)}
	}
	s.nextID++
	e := &entry{
		id:      fmt.Sprintf("s%d", s.nextID),
		created: time.Now(),
		sess:    sess,
	}
	s.sessions[e.id] = e
	if s.met != nil {
		s.met.sessionsCreated.Inc()
		s.met.sessionsActive.Set(float64(len(s.sessions)))
	}
	return e, nil
}

// lookup returns the live session with the given id.
func (s *Server) lookup(id string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// deleteSession removes id from the table. A running job keeps its
// private reference and finishes into the orphaned entry.
func (s *Server) deleteSession(id string) bool {
	s.mu.Lock()
	e, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	n := len(s.sessions)
	s.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock()
	e.deleted = true
	e.mu.Unlock()
	if s.met != nil {
		s.met.sessionsDeleted.Inc()
		s.met.sessionsActive.Set(float64(n))
	}
	return true
}

// enqueue admits one run/step for e. It claims the session's busy flag
// and a queue slot, or reports why not.
func (s *Server) enqueue(e *entry, hours float64, trace io.Writer, closeTrace func()) (*job, *admitError) {
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return nil, &admitError{status: 404, reason: "deleted", msg: "session deleted"}
	}
	if e.busy {
		e.mu.Unlock()
		return nil, &admitError{status: 409, reason: "busy", msg: "session already has a run in flight"}
	}
	e.busy = true
	e.mu.Unlock()

	release := func() {
		e.mu.Lock()
		e.busy = false
		e.mu.Unlock()
	}

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		release()
		return nil, &admitError{status: 503, reason: "draining", msg: "server is draining"}
	}
	j := &job{e: e, hours: hours, trace: trace, closeTrace: closeTrace, done: make(chan jobResult, 1)}
	select {
	case s.queue <- j:
		s.inflight.Add(1)
		if s.met != nil {
			s.met.queueDepth.Add(1)
		}
		s.mu.Unlock()
		return j, nil
	default:
		s.mu.Unlock()
		release()
		return nil, &admitError{status: 429, reason: "queue",
			msg: fmt.Sprintf("work queue full (%d)", s.cfg.QueueDepth)}
	}
}

// Shutdown drains the server: stop admitting sessions and runs, wait for
// queued and executing jobs (until the deadline), then stop the worker
// pool. It is safe to call once; the handler keeps answering queries and
// deletes during the drain so orchestrators can observe it.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("server: drain deadline (%s) passed with work in flight", timeout)
	}

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.workers.Wait()
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ---- metrics ----

// metrics is the server's pre-resolved series set on the shared registry.
type metrics struct {
	sessionsActive  *obs.Gauge
	sessionsCreated *obs.Counter
	sessionsDeleted *obs.Counter
	queueDepth      *obs.Gauge
	runs            *obs.Counter
	runErrors       *obs.Counter
	runSeconds      *obs.Histogram
	rejects         map[string]*obs.Counter
	requests        *requestMetrics
}

// rejectReasons enumerates the admission-reject label values so the
// series exist (at zero) from the first scrape.
var rejectReasons = []string{"sessions", "queue", "draining", "busy"}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{
		sessionsActive:  r.Gauge("eagleeyed_sessions_active", "Live sessions in the table."),
		sessionsCreated: r.Counter("eagleeyed_sessions_created_total", "Sessions ever created."),
		sessionsDeleted: r.Counter("eagleeyed_sessions_deleted_total", "Sessions deleted by tenants."),
		queueDepth:      r.Gauge("eagleeyed_queue_depth", "Run/step jobs waiting in the admission queue."),
		runs:            r.Counter("eagleeyed_runs_total", "Scenario runs/steps executed (including failures)."),
		runErrors:       r.Counter("eagleeyed_run_errors_total", "Scenario runs/steps that returned an error."),
		runSeconds: r.Histogram("eagleeyed_run_seconds",
			"Distribution of scenario run/step execution time, in seconds.", obs.DefTimeBuckets),
		rejects:  make(map[string]*obs.Counter, len(rejectReasons)),
		requests: newRequestMetrics(r),
	}
	for _, reason := range rejectReasons {
		m.rejects[reason] = r.Counter("eagleeyed_admission_rejects_total",
			"Requests rejected by admission control, by reason.",
			obs.Label{Key: "reason", Value: reason})
	}
	return m
}

func (m *metrics) reject(reason string) {
	if m == nil {
		return
	}
	if c, ok := m.rejects[reason]; ok {
		c.Inc()
	}
}
