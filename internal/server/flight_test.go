package server

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"eagleeye/internal/obs"
)

// syncBuffer collects slog output from concurrent handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func getFlight(t *testing.T, url string) obs.FlightDump {
	t.Helper()
	resp, body := doJSON(t, "GET", url, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight = %d: %s", resp.StatusCode, body)
	}
	var d obs.FlightDump
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	return d
}

// TestFlightEndpoint: a completed run's frames are dumpable per session
// and in the /debug/flight aggregate, stamped with the session and the
// request ID the server assigned.
func TestFlightEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, gridScenario(0.2))

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+id+"/run", strings.NewReader(""))
	req.Header.Set("X-Request-ID", "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "test-req-42" {
		t.Fatalf("X-Request-ID echo = %q, want test-req-42", got)
	}

	d := getFlight(t, ts.URL+"/v1/sessions/"+id+"/flight")
	if d.Schema != obs.FlightSchema || d.Session != id {
		t.Fatalf("dump header = schema %d session %q", d.Schema, d.Session)
	}
	if d.Frames == 0 || len(d.Recent) == 0 {
		t.Fatalf("no frames recorded: frames=%d recent=%d", d.Frames, len(d.Recent))
	}
	f := d.Recent[len(d.Recent)-1]
	if f.Request != "test-req-42" {
		t.Fatalf("frame request = %q, want test-req-42", f.Request)
	}
	if len(f.Spans) == 0 || f.Spans[0].Kind != "frame" {
		t.Fatalf("frame spans malformed: %+v", f.Spans)
	}

	// Aggregate endpoint carries the same session.
	resp2, body := doJSON(t, "GET", ts.URL+"/debug/flight", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight = %d", resp2.StatusCode)
	}
	var all FlightAllResponse
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if all.Schema != obs.FlightSchema || len(all.Sessions) != 1 || all.Sessions[0].Session != id {
		t.Fatalf("aggregate = %+v", all)
	}
}

// TestFlightRequestIDSanitized: a hostile X-Request-ID is replaced, not
// echoed into logs and label values.
func TestFlightRequestIDSanitized(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/sessions", nil)
	req.Header.Set("X-Request-ID", "bad id\twith junk{}")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "" || strings.ContainsAny(got, " \t{}") {
		t.Fatalf("sanitized request ID = %q", got)
	}
}

// TestFlightDisabled: DisableFlight turns the endpoint into a 404.
func TestFlightDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableFlight: true})
	id := createSession(t, ts.URL, testScenario(0.1))
	resp, _ := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/flight", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("flight with recording disabled = %d, want 404", resp.StatusCode)
	}
}

// TestDeadline504Pin: a request that 504s leaves a pinned
// request-deadline anomaly in the session's flight dump, correlated to
// the request ID that appears in the structured log -- the full
// explain-any-request chain.
func TestDeadline504Pin(t *testing.T) {
	logBuf := &syncBuffer{}
	s, ts := newTestServer(t, Config{
		Workers:        1,
		RequestTimeout: 50 * time.Millisecond,
		Log:            slog.New(slog.NewJSONHandler(logBuf, nil)),
	})
	holder := createSession(t, ts.URL, gridScenario(1))
	b := createSession(t, ts.URL, testScenario(0.2))

	release, holdDone := holdRun(t, s, holder)
	t.Cleanup(release)
	pollUntil(t, "holder session running", 10*time.Second, func() bool {
		return sessionState(t, ts.URL, holder).State == "running"
	})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+b+"/run", strings.NewReader(""))
	req.Header.Set("X-Request-ID", "deadline-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("run past deadline = %d, want 504", resp.StatusCode)
	}

	// The pin lands synchronously with the 504 response.
	d := getFlight(t, ts.URL+"/v1/sessions/"+b+"/flight")
	var pinned bool
	for _, f := range d.Pinned {
		if f.Request == "deadline-req-1" {
			for _, k := range f.Anomalies {
				if k == "request-deadline" {
					pinned = true
				}
			}
		}
	}
	if !pinned {
		t.Fatalf("no pinned request-deadline anomaly for deadline-req-1: %+v", d.Pinned)
	}
	if d.Anomalies["request-deadline"] == 0 {
		t.Fatalf("anomaly counter did not move: %v", d.Anomalies)
	}

	// The structured log correlates the 504 to the same request ID.
	logs := logBuf.String()
	if !strings.Contains(logs, `"request_id":"deadline-req-1"`) || !strings.Contains(logs, `"status":504`) {
		t.Fatalf("slog output lacks the 504 correlation line:\n%s", logs)
	}

	// Free the worker; the abandoned run executes with the armed pin, so
	// its frames are tagged too and the completion line carries the ID.
	release()
	if rr := <-holdDone; rr.err != nil {
		t.Fatalf("held run: %v", rr.err)
	}
	pollUntil(t, "background run to land", 60*time.Second, func() bool {
		return sessionState(t, ts.URL, b).Runs == 1
	})
	if !strings.Contains(logBuf.String(), `"msg":"run complete","session":"`+b+`","request_id":"deadline-req-1"`) {
		t.Fatalf("run-complete log line missing request correlation:\n%s", logBuf.String())
	}
}
