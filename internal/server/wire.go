package server

import (
	"eagleeye"
	"eagleeye/internal/obs"
)

// Wire types: the JSON bodies the daemon speaks. They mirror the
// serializable subset of eagleeye.Config -- writers, registries and other
// process-local handles are the server's business, not the tenant's.

// ScenarioConfig is the request body for session creation.
type ScenarioConfig struct {
	Organization      string       `json:"organization,omitempty"`
	Satellites        int          `json:"satellites,omitempty"`
	FollowersPerGroup int          `json:"followers_per_group,omitempty"`
	Dataset           string       `json:"dataset,omitempty"`
	Targets           []TargetSpec `json:"targets,omitempty"`
	MovingTargets     bool         `json:"moving_targets,omitempty"`
	Scheduler         string       `json:"scheduler,omitempty"`
	Detector          string       `json:"detector,omitempty"`
	SlewRateDegS      float64      `json:"slew_rate_deg_s,omitempty"`
	DurationHours     float64      `json:"duration_hours,omitempty"`
	Seed              int64        `json:"seed,omitempty"`
	NoClustering      bool         `json:"no_clustering,omitempty"`
	GreedyClustering  bool         `json:"greedy_clustering,omitempty"`
	DisableWarmStart  bool         `json:"disable_warm_start,omitempty"`
	RecallOverride    float64      `json:"recall_override,omitempty"`
	OrbitPlanes       int          `json:"orbit_planes,omitempty"`
	RecaptureDedup    bool         `json:"recapture_dedup,omitempty"`
	// Workers is the per-run simulator parallelism; 0 inherits the
	// server's default (1: concurrency comes from sessions, not one run).
	Workers int `json:"workers,omitempty"`
	// Continuous makes steps advance one uninterrupted timeline instead of
	// independent reseeded windows; such sessions can be checkpointed
	// mid-run and survive a daemon restart.
	Continuous bool `json:"continuous,omitempty"`
	// Events schedules mid-run fault events on the scenario timeline.
	Events []EventSpec `json:"events,omitempty"`
}

// EventSpec is one scheduled mid-run fault event.
type EventSpec struct {
	AtHours float64 `json:"at_hours"`
	// Kind is eagleeye.FaultFollowerFail or eagleeye.FaultLeaderFail.
	Kind     string `json:"kind"`
	Group    int    `json:"group,omitempty"`
	Follower int    `json:"follower,omitempty"`
}

// TargetSpec is one custom-world target.
type TargetSpec struct {
	Lat        float64 `json:"lat"`
	Lon        float64 `json:"lon"`
	SpeedMS    float64 `json:"speed_ms,omitempty"`
	HeadingDeg float64 `json:"heading_deg,omitempty"`
	Value      float64 `json:"value,omitempty"`
}

func (sc ScenarioConfig) toConfig() eagleeye.Config {
	cfg := eagleeye.Config{
		Organization:      sc.Organization,
		Satellites:        sc.Satellites,
		FollowersPerGroup: sc.FollowersPerGroup,
		Dataset:           sc.Dataset,
		MovingTargets:     sc.MovingTargets,
		Scheduler:         sc.Scheduler,
		Detector:          sc.Detector,
		SlewRateDegS:      sc.SlewRateDegS,
		DurationHours:     sc.DurationHours,
		Seed:              sc.Seed,
		NoClustering:      sc.NoClustering,
		GreedyClustering:  sc.GreedyClustering,
		DisableWarmStart:  sc.DisableWarmStart,
		RecallOverride:    sc.RecallOverride,
		OrbitPlanes:       sc.OrbitPlanes,
		RecaptureDedup:    sc.RecaptureDedup,
		Workers:           sc.Workers,
		Continuous:        sc.Continuous,
	}
	for _, ev := range sc.Events {
		cfg.Events = append(cfg.Events, eagleeye.FaultEvent{
			AtHours: ev.AtHours, Kind: ev.Kind, Group: ev.Group, Follower: ev.Follower,
		})
	}
	for _, t := range sc.Targets {
		cfg.Targets = append(cfg.Targets, eagleeye.Target{
			Lat: t.Lat, Lon: t.Lon,
			SpeedMS: t.SpeedMS, HeadingDeg: t.HeadingDeg, Value: t.Value,
		})
	}
	return cfg
}

// StepRequest is the body for POST /v1/sessions/{id}/step.
type StepRequest struct {
	// Hours is the simulated span of this step; 0 means the session's
	// full configured duration.
	Hours float64 `json:"hours,omitempty"`
}

// SessionInfo is the query/list view of one session.
type SessionInfo struct {
	ID          string                    `json:"id"`
	CreatedUnix int64                     `json:"created_unix"`
	State       string                    `json:"state"` // idle | running
	Runs        int                       `json:"runs"`
	Failures    int                       `json:"failures,omitempty"`
	LastError   string                    `json:"last_error,omitempty"`
	Done        bool                      `json:"done,omitempty"`
	Aggregate   eagleeye.SessionAggregate `json:"aggregate"`
	LastResult  *eagleeye.Result          `json:"last_result,omitempty"`
}

func (e *entry) info(withResult bool) SessionInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := "idle"
	if e.busy {
		st = "running"
	}
	info := SessionInfo{
		ID:          e.id,
		CreatedUnix: e.created.Unix(),
		State:       st,
		Runs:        e.runs,
		Failures:    e.failures,
		LastError:   e.lastErr,
		Done:        e.sess.Done(),
		Aggregate:   e.sess.Aggregate(),
	}
	if withResult {
		info.LastResult = e.lastResult
	}
	return info
}

// RunResponse is the terminal payload of a run/step request (and the
// final NDJSON line of a streamed run).
type RunResponse struct {
	ID     string           `json:"id"`
	Result *eagleeye.Result `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ListResponse is the body of GET /v1/sessions.
type ListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
	Draining bool          `json:"draining,omitempty"`
}

// FlightAllResponse is the body of GET /debug/flight: every live
// session's flight dump, in session order. Schema mirrors the per-dump
// obs.FlightSchema so offline tooling can version-check the aggregate.
type FlightAllResponse struct {
	Schema   int              `json:"schema"`
	Sessions []obs.FlightDump `json:"sessions"`
}
