package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eagleeye"
	"eagleeye/internal/obs"
)

func contScenario(hours float64) ScenarioConfig {
	sc := testScenario(hours)
	sc.Continuous = true
	return sc
}

// doRaw issues a request with a verbatim (possibly binary) body.
func doRaw(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func stepSession(t *testing.T, base, id string, hours float64) *eagleeye.Result {
	t.Helper()
	resp, body := doJSON(t, "POST", base+"/v1/sessions/"+id+"/step", StepRequest{Hours: hours})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step %s = %d: %s", id, resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.Result == nil {
		t.Fatalf("step response %q: %v", body, err)
	}
	return rr.Result
}

// sameScenarioOutcome compares the deterministic projection of two
// results (wall-clock-derived solver/scheduler timings excluded).
func sameScenarioOutcome(a, b *eagleeye.Result) bool {
	return a.Frames == b.Frames && a.Detections == b.Detections &&
		a.Captures == b.Captures && a.HighResCaptured == b.HighResCaptured &&
		a.CrosslinkKB == b.CrosslinkKB && a.CoveragePct == b.CoveragePct &&
		a.EventsApplied == b.EventsApplied && a.SatsFailed == b.SatsFailed
}

// TestCheckpointRestoreEndpoints drives the API round trip: step a
// continuous session partway, download its checkpoint, create a second
// session from it, and finish both -- the restored tenant must land on
// the uninterrupted tenant's exact result.
func TestCheckpointRestoreEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	ref := createSession(t, base, contScenario(0.5))
	stepSession(t, base, ref, 0.2)
	want := stepSession(t, base, ref, 0)

	id := createSession(t, base, contScenario(0.5))
	stepSession(t, base, id, 0.2)
	resp, ckpt := doRaw(t, "POST", base+"/v1/sessions/"+id+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint = %d: %s", resp.StatusCode, ckpt)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("checkpoint content type = %q", ct)
	}

	resp, body := doRaw(t, "POST", base+"/v1/sessions/restore", ckpt)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore = %d: %s", resp.StatusCode, body)
	}
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == id {
		t.Fatalf("restored session reused live id %s", id)
	}
	if info.Aggregate.Steps != 1 {
		t.Errorf("restored aggregate %+v, want the checkpoint's 1-step cursor", info.Aggregate)
	}
	got := stepSession(t, base, info.ID, 0)
	if !sameScenarioOutcome(got, want) {
		t.Errorf("restored session diverges:\n%+v\nvs\n%+v", got, want)
	}

	// The timeline is complete on both: further runs are refused.
	if resp, _ := doJSON(t, "POST", base+"/v1/sessions/"+info.ID+"/run", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("run on a completed continuous session = %d, want 409", resp.StatusCode)
	}

	if resp, _ := doRaw(t, "POST", base+"/v1/sessions/restore", []byte("not a checkpoint")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("restore of junk = %d, want 400", resp.StatusCode)
	}
}

// TestCheckpointWhileRunningConflicts: a checkpoint needs the same
// exclusivity as a run, so a busy session answers 409.
func TestCheckpointWhileRunningConflicts(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	holder := createSession(t, ts.URL, gridScenario(1))
	release, holdDone := holdRun(t, s, holder)
	t.Cleanup(release)
	pollUntil(t, "holder session running", 10*time.Second, func() bool {
		return sessionState(t, ts.URL, holder).State == "running"
	})
	if resp, _ := doRaw(t, "POST", ts.URL+"/v1/sessions/"+holder+"/checkpoint", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("checkpoint of a running session = %d, want 409", resp.StatusCode)
	}
	release()
	if rr := <-holdDone; rr.err != nil {
		t.Fatalf("held run: %v", rr.err)
	}
}

// TestServerFaultEvents: the events wire surface reaches the simulator
// and its accounting comes back through the run response.
func TestServerFaultEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := testScenario(0.5)
	sc.Events = []EventSpec{{AtHours: 0.1, Kind: "follower-fail", Group: 0, Follower: 0}}
	id := createSession(t, ts.URL, sc)
	res := stepSession(t, ts.URL, id, 0)
	if res.EventsApplied != 1 || res.SatsFailed != 1 {
		t.Errorf("fault accounting: applied %d failed %d, want 1/1", res.EventsApplied, res.SatsFailed)
	}

	sc.Events = []EventSpec{{AtHours: 0.1, Kind: "meteor-strike"}}
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", sc); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown event kind = %d, want 400", resp.StatusCode)
	}
}

// TestShutdownSpoolsAndResumes is the daemon-restart acceptance path:
// shut a server down with CheckpointDir set, start a fresh one on the
// same directory, and the tenants are back under their original IDs with
// their timelines intact.
func TestShutdownSpoolsAndResumes(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference for the continuous tenant.
	refCfg := contScenario(0.5).toConfig()
	refCfg.Workers = 1
	refSess, err := eagleeye.NewSession(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer refSess.Close()
	if _, err := refSess.Step(eagleeye.StepOptions{Hours: 0.2}); err != nil {
		t.Fatal(err)
	}
	want, err := refSess.Step(eagleeye.StepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	reg1 := obs.NewRegistry()
	s1, ts1 := newTestServer(t, Config{CheckpointDir: dir, Metrics: reg1})
	cont := createSession(t, ts1.URL, contScenario(0.5))
	stepSession(t, ts1.URL, cont, 0.2)
	win := createSession(t, ts1.URL, testScenario(0.5))
	stepSession(t, ts1.URL, win, 0.25)

	ts1.Close()
	if err := s1.Shutdown(30 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range []string{cont, win} {
		if _, err := os.Stat(filepath.Join(dir, id+".ckpt")); err != nil {
			t.Fatalf("spool file for %s: %v", id, err)
		}
	}
	if got := reg1.CounterValue("eagleeyed_checkpoints_spooled_total"); got != 2 {
		t.Errorf("checkpoints_spooled = %d, want 2", got)
	}

	reg2 := obs.NewRegistry()
	s2, ts2 := newTestServer(t, Config{CheckpointDir: dir, Metrics: reg2})
	n, err := s2.LoadSpool()
	if err != nil {
		t.Fatalf("load spool: %v", err)
	}
	if n != 2 {
		t.Fatalf("resumed %d sessions, want 2", n)
	}
	if got := reg2.CounterValue("eagleeyed_checkpoints_resumed_total"); got != 2 {
		t.Errorf("checkpoints_resumed = %d, want 2", got)
	}
	if des, _ := os.ReadDir(dir); len(des) != 0 {
		t.Errorf("spool dir not emptied: %d entries left", len(des))
	}

	// The continuous tenant resumes its exact timeline under its old ID.
	info := sessionState(t, ts2.URL, cont)
	if info.Aggregate.Steps != 1 || info.Done {
		t.Fatalf("resumed session state %+v, want 1 step, not done", info)
	}
	got := stepSession(t, ts2.URL, cont, 0)
	if !sameScenarioOutcome(got, want) {
		t.Errorf("resumed session diverges:\n%+v\nvs\n%+v", got, want)
	}
	// The windowed tenant continues its derived-seed sequence.
	stepSession(t, ts2.URL, win, 0.25)
	if agg := sessionState(t, ts2.URL, win).Aggregate; agg.Steps != 2 {
		t.Errorf("windowed aggregate after resume %+v, want 2 steps", agg)
	}
	// New sessions never collide with resumed IDs.
	fresh := createSession(t, ts2.URL, testScenario(0.2))
	if fresh == cont || fresh == win {
		t.Errorf("fresh session reused a resumed id: %s", fresh)
	}
}

// TestRetryAfterDerived pins the 429 back-off hint: 1 with no latency
// history, scaled by the median run time once there is one, and clamped
// at 60.
func TestRetryAfterDerived(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(time.Second)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("no metrics: retry-after = %d, want 1", got)
	}

	s2 := New(Config{Metrics: obs.NewRegistry()})
	defer s2.Shutdown(time.Second)
	if got := s2.retryAfterSeconds(); got != 1 {
		t.Errorf("no history: retry-after = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		s2.met.runSeconds.Observe(4.5)
	}
	if got := s2.retryAfterSeconds(); got < 5 || got > 60 {
		t.Errorf("median 4.5s: retry-after = %d, want within [5, 60]", got)
	}
	for i := 0; i < 50; i++ {
		s2.met.runSeconds.Observe(300)
	}
	if got := s2.retryAfterSeconds(); got != 60 {
		t.Errorf("median 300s: retry-after = %d, want the 60s clamp", got)
	}
}

func TestHistP50(t *testing.T) {
	snap := obs.HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{1, 3, 1, 0},
		Sum:    9,
		Count:  5,
	}
	if got := histP50(snap); got != 2 {
		t.Errorf("histP50 = %v, want bucket bound 2", got)
	}
	// All mass in the +Inf bucket: the mean stands in.
	inf := obs.HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 4}, Sum: 40, Count: 4}
	if got := histP50(inf); got != 10 {
		t.Errorf("histP50 overflow = %v, want mean 10", got)
	}
}
