package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"eagleeye"
	"eagleeye/internal/obs"
)

// maxBodyBytes bounds request bodies; custom-target worlds are the only
// large payload and 16 MB holds ~10^5 targets.
const maxBodyBytes = 16 << 20

// Handler returns the daemon's HTTP surface: the /v1 session API plus,
// when metrics are configured, the observability endpoints the CLI
// already serves (/metrics, /summary, /debug/vars, /debug/pprof) on the
// same port -- one scrape target per daemon.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.instrument("create", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("get", s.handleGet))
	mux.HandleFunc("POST /v1/sessions/{id}/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.instrument("step", s.handleStep))
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.instrument("checkpoint", s.handleCheckpoint))
	mux.HandleFunc("POST /v1/sessions/restore", s.instrument("restore", s.handleRestore))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/sessions/{id}/flight", s.instrument("flight", s.handleFlight))
	mux.HandleFunc("GET /debug/flight", s.instrument("flight-all", s.handleFlightAll))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Metrics != nil {
		mux.Handle("GET /metrics", obs.Handler(s.cfg.Metrics))
		mux.HandleFunc("GET /summary", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = s.cfg.Metrics.WriteSummary(w)
		})
		mux.Handle("GET /debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var sc ScenarioConfig
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad scenario body: " + err.Error()})
		return
	}
	e, aerr := s.createSession(sc)
	if aerr != nil {
		s.rejectResponse(w, aerr)
		return
	}
	writeJSON(w, http.StatusCreated, e.info(false))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	draining := s.draining
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return sessionNum(entries[i].id) < sessionNum(entries[j].id) })
	resp := ListResponse{Sessions: make([]SessionInfo, 0, len(entries)), Draining: draining}
	for _, e := range entries {
		resp.Sessions = append(resp.Sessions, e.info(false))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such session"})
		return
	}
	writeJSON(w, http.StatusOK, e.info(true))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.deleteSession(r.PathValue("id")) {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such session"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such session"})
		return
	}
	if r.URL.Query().Get("trace") == "ndjson" {
		s.runStreaming(w, r, e)
		return
	}
	s.runBlocking(w, r, e, 0)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such session"})
		return
	}
	var req StepRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad step body: " + err.Error()})
		return
	}
	if req.Hours < 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "hours must be non-negative"})
		return
	}
	s.runBlocking(w, r, e, req.Hours)
}

// maxCheckpointBody bounds restore uploads; a checkpoint embeds the
// scenario (possibly a large custom world) plus the simulator snapshot.
const maxCheckpointBody = 256 << 20

// handleCheckpoint serializes the session as one binary download. The
// checkpoint is staged in memory first so a serialization failure turns
// into a clean error response instead of a truncated 200.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such session"})
		return
	}
	var buf bytes.Buffer
	if aerr := s.checkpointSession(e, &buf); aerr != nil {
		s.rejectResponse(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleRestore creates a session from an uploaded checkpoint, giving it
// a fresh ID (spool resume at startup is what preserves IDs; an uploaded
// duplicate must not collide with a live session).
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	sess, err := eagleeye.RestoreSession(io.LimitReader(r.Body, maxCheckpointBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad checkpoint: " + err.Error()})
		return
	}
	e, aerr := s.insertSession(sess, "")
	if aerr != nil {
		s.rejectResponse(w, aerr)
		return
	}
	writeJSON(w, http.StatusCreated, e.info(false))
}

// handleFlight dumps one session's flight recorder: the recent-frame
// ring, the slowest frames, and the pinned anomalies, as schema-versioned
// JSON.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such session"})
		return
	}
	if e.flight == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "flight recording disabled"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = e.flight.WriteJSON(w)
}

// handleFlightAll aggregates every live session's flight dump.
func (s *Server) handleFlightAll(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.sessions))
	for _, e := range s.sessions {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return sessionNum(entries[i].id) < sessionNum(entries[j].id) })
	resp := FlightAllResponse{Schema: obs.FlightSchema, Sessions: make([]obs.FlightDump, 0, len(entries))}
	for _, e := range entries {
		if e.flight != nil {
			resp.Sessions = append(resp.Sessions, e.flight.Snapshot())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// runBlocking admits one run/step and waits for it under the request
// deadline. A deadline miss answers 504 but does not cancel the run: it
// completes on the worker and lands on the session for later query.
func (s *Server) runBlocking(w http.ResponseWriter, r *http.Request, e *entry, hours float64) {
	j, aerr := s.enqueue(e, hours, requestID(r), nil, nil)
	if aerr != nil {
		s.rejectResponse(w, aerr)
		return
	}
	deadline := time.NewTimer(s.cfg.RequestTimeout)
	defer deadline.Stop()
	select {
	case rr := <-j.done:
		if rr.err != nil {
			writeJSON(w, http.StatusInternalServerError, RunResponse{ID: e.id, Error: rr.err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, RunResponse{ID: e.id, Result: rr.res})
	case <-deadline.C:
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{
			Error: fmt.Sprintf("deadline (%s) exceeded; the run continues -- query the session for its result", s.cfg.RequestTimeout)})
	case <-r.Context().Done():
		// Client gone; the worker finishes into the session regardless.
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "client cancelled"})
	}
}

// runStreaming admits a full run and streams its frame trace as NDJSON,
// terminated by one RunResponse line. Streaming runs are exempt from the
// request deadline -- they demonstrate liveness by emitting.
func (s *Server) runStreaming(w http.ResponseWriter, r *http.Request, e *entry) {
	pr, pw := io.Pipe()
	j, aerr := s.enqueue(e, 0, requestID(r), pw, func() { _ = pw.Close() })
	if aerr != nil {
		_ = pr.Close()
		s.rejectResponse(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Drain the pipe to EOF even if the client went away: the simulator's
	// trace writes must never block on a dead connection.
	buf := make([]byte, 32<<10)
	var werr error
	for {
		n, rerr := pr.Read(buf)
		if n > 0 && werr == nil {
			if _, werr = w.Write(buf[:n]); werr == nil && flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			break
		}
	}
	rr := <-j.done
	final := RunResponse{ID: e.id, Result: rr.res}
	if rr.err != nil {
		final = RunResponse{ID: e.id, Error: rr.err.Error()}
	}
	if werr == nil {
		enc := json.NewEncoder(w)
		_ = enc.Encode(final)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// rejectResponse answers an admission error, with Retry-After on 429 so
// well-behaved clients back off instead of hammering.
func (s *Server) rejectResponse(w http.ResponseWriter, aerr *admitError) {
	if s.met != nil && (aerr.status == http.StatusTooManyRequests || aerr.reason == "draining" || aerr.reason == "busy") {
		s.met.reject(aerr.reason)
	}
	if aerr.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, aerr.status, ErrorResponse{Error: aerr.msg})
}

// retryAfterSeconds derives the 429 back-off hint from live load instead
// of the old hardcoded 1s (which made every rejected client retry into
// the same full queue one second later): the median run time observed so
// far, scaled by how many runs stand between a retry and a free worker
// (the queue plus the run in flight), clamped to [1, 60]. With no
// metrics registry or no completed runs yet there is nothing to derive
// from and the floor of 1 stands.
func (s *Server) retryAfterSeconds() int {
	if s.met == nil {
		return 1
	}
	snap := s.met.runSeconds.Snapshot()
	if snap.Count == 0 {
		return 1
	}
	ahead := float64(len(s.queue))/float64(s.cfg.Workers) + 1
	sec := int(math.Ceil(histP50(snap) * ahead))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// histP50 reads the median out of a histogram snapshot by nearest rank,
// reporting the matching bucket's upper bound (a conservative estimate:
// real latency is at most that). Observations in the +Inf bucket have no
// bound, so the mean stands in.
func histP50(snap obs.HistogramSnapshot) float64 {
	rank := (snap.Count + 1) / 2
	var cum int64
	for i, c := range snap.Counts {
		cum += c
		if cum >= rank {
			if i < len(snap.Bounds) {
				return snap.Bounds[i]
			}
			break
		}
	}
	return snap.Sum / float64(snap.Count)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func sessionNum(id string) int {
	n, _ := strconv.Atoi(id[1:])
	return n
}

// ---- request instrumentation ----

// requestMetrics resolves per-route/per-code series lazily through the
// registry; request handling is not the frame loop, so the registry's
// get-or-create lock is fine here.
type requestMetrics struct {
	reg *obs.Registry
}

func newRequestMetrics(r *obs.Registry) *requestMetrics { return &requestMetrics{reg: r} }

func (rm *requestMetrics) observe(route string, code int, d time.Duration) {
	rm.reg.Counter("eagleeyed_requests_total", "API requests by route and status code.",
		obs.Label{Key: "route", Value: route},
		obs.Label{Key: "code", Value: strconv.Itoa(code)}).Inc()
	rm.reg.Histogram("eagleeyed_request_seconds",
		"Distribution of request handling time, in seconds.", obs.DefTimeBuckets,
		obs.Label{Key: "route", Value: route}).Observe(d.Seconds())
}

// statusRecorder captures the response code for instrumentation while
// passing Flush through for streamed responses.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ctxKey keys the request-ID context value.
type ctxKey int

const reqIDKey ctxKey = 0

// requestID returns the ID instrument assigned to this request.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey).(string)
	return id
}

// newRequestID generates a 16-hex-char random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; serve anyway.
		return "r-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID echoes a client-supplied X-Request-ID only when it is
// short and unambiguous in logs and label values.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// instrument is the request middleware: it assigns (or echoes) the
// X-Request-ID, emits one structured log line per request, feeds the
// route/status metrics, and pins a flight-recorder anomaly on 5xx
// responses so "why did this request fail" is answerable from the flight
// dump an hour later.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey, reqID))
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, r)
		d := time.Since(start)
		if s.met != nil {
			s.met.requests.observe(route, sr.code, d)
		}
		sid := r.PathValue("id")
		if sr.code >= 500 && sr.code != http.StatusServiceUnavailable {
			// 503 is the drain signal, not a per-session fault; everything
			// else 5xx is worth a pinned flight record on the session.
			if e := s.lookup(sid); e != nil && e.flight != nil {
				anom, note := obs.AnomServerError, "server error "+strconv.Itoa(sr.code)
				if sr.code == http.StatusGatewayTimeout {
					anom, note = obs.AnomRequestDeadline, "request deadline (504)"
				}
				e.flight.PinRequest(reqID, anom, note)
			}
		}
		level := slog.LevelInfo
		switch {
		case sr.code >= 500:
			level = slog.LevelError
		case sr.code >= 400:
			level = slog.LevelWarn
		}
		s.log.Log(r.Context(), level, "request",
			"route", route, "method", r.Method, "path", r.URL.Path,
			"session", sid, "request_id", reqID,
			"status", sr.code, "dur_ms", d.Milliseconds())
	}
}
