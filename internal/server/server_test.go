package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eagleeye"
	"eagleeye/internal/obs"
)

// testWorld builds a small deterministic custom-target scenario so
// server tests run in milliseconds, not dataset-scale seconds.
func testWorld(n int) []TargetSpec {
	centers := []TargetSpec{
		{Lat: 0, Lon: 0}, {Lat: 20, Lon: 40}, {Lat: -30, Lon: 120},
		{Lat: 50, Lon: -80}, {Lat: -10, Lon: -60},
	}
	out := make([]TargetSpec, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		out = append(out, TargetSpec{
			Lat: c.Lat + float64(i%17)*0.2 - 1.6,
			Lon: c.Lon + float64(i%13)*0.2 - 1.2,
		})
	}
	return out
}

// gridWorld covers the globe between +-60 degrees so satellites hit
// targets on every pass -- scenarios built on it deterministically emit
// trace records (the hook the admission tests use to pin a worker).
func gridWorld() []TargetSpec {
	var out []TargetSpec
	for lat := -60; lat <= 60; lat += 5 {
		for lon := -180; lon < 180; lon += 5 {
			out = append(out, TargetSpec{Lat: float64(lat), Lon: float64(lon)})
		}
	}
	return out
}

func gridScenario(hours float64) ScenarioConfig {
	return ScenarioConfig{Satellites: 2, Targets: gridWorld(), DurationHours: hours, Seed: 7}
}

func testScenario(hours float64) ScenarioConfig {
	return ScenarioConfig{
		Satellites:    2,
		Targets:       testWorld(300),
		DurationHours: hours,
		Seed:          7,
	}
}

// newTestServer starts a server + HTTP listener and tears both down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Shutdown(30 * time.Second)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(b))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteByte('\n')
	}
	return resp, []byte(buf.String())
}

func createSession(t *testing.T, base string, sc ScenarioConfig) string {
	t.Helper()
	resp, body := doJSON(t, "POST", base+"/v1/sessions", sc)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info.ID
}

// TestHandlerTable drives the API through its request-validation and
// lifecycle paths.
func TestHandlerTable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	valid := testScenario(0.2)
	id := createSession(t, base, valid)

	cases := []struct {
		name   string
		method string
		path   string
		body   string // raw JSON; empty means no body
		want   int
	}{
		{"create malformed json", "POST", "/v1/sessions", `{"satellites": "two"}`, 400},
		{"create unknown field", "POST", "/v1/sessions", `{"satelites": 2}`, 400},
		{"create unknown dataset", "POST", "/v1/sessions", `{"dataset":"nope"}`, 400},
		{"create empty scenario", "POST", "/v1/sessions", `{}`, 400},
		{"create bad organization", "POST", "/v1/sessions", `{"dataset":"ships","organization":"weird"}`, 400},
		{"get unknown", "GET", "/v1/sessions/s999", "", 404},
		{"run unknown", "POST", "/v1/sessions/s999/run", "", 404},
		{"step unknown", "POST", "/v1/sessions/s999/step", `{"hours":1}`, 404},
		{"delete unknown", "DELETE", "/v1/sessions/s999", "", 404},
		{"step malformed body", "POST", "/v1/sessions/" + id + "/step", `{"hours": "one"}`, 400},
		{"step unknown field", "POST", "/v1/sessions/" + id + "/step", `{"hrs": 1}`, 400},
		{"step negative hours", "POST", "/v1/sessions/" + id + "/step", `{"hours": -1}`, 400},
		{"list ok", "GET", "/v1/sessions", "", 200},
		{"get ok", "GET", "/v1/sessions/" + id, "", 200},
		{"healthz ok", "GET", "/healthz", "", 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}

	// Lifecycle: run, query, delete, then the id is gone.
	resp, body := doJSON(t, "POST", base+"/v1/sessions/"+id+"/run", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.Result == nil {
		t.Fatalf("run response %q: %v", body, err)
	}
	if rr.Result.Frames == 0 {
		t.Error("run simulated no frames")
	}
	resp, body = doJSON(t, "GET", base+"/v1/sessions/"+id, nil)
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Runs != 1 || info.State != "idle" || info.Aggregate.Steps != 1 || info.LastResult == nil {
		t.Errorf("after run: %+v", info)
	}
	if resp, _ := doJSON(t, "DELETE", base+"/v1/sessions/"+id, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", base+"/v1/sessions/"+id, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted session still queryable: %d", resp.StatusCode)
	}
}

// TestStepAccumulatesAggregate pins the windowed-session semantics.
func TestStepAccumulatesAggregate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, testScenario(1))
	for i := 0; i < 2; i++ {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Hours: 0.25})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	_, body := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil)
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Aggregate.Steps != 2 || info.Aggregate.SimulatedHours != 0.5 {
		t.Errorf("aggregate = %+v, want 2 steps / 0.5 h", info.Aggregate)
	}
	if info.Aggregate.Frames == 0 {
		t.Error("steps simulated no frames")
	}
}

// TestConcurrentSessionsMatchDirectRun is the serving-stack identity
// gate: many sessions running concurrently through the daemon must each
// produce exactly the result of a direct library run -- pooled solver
// state reused across requests must never leak between tenants. Run
// under -race by the tier-1 gate.
func TestConcurrentSessionsMatchDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, MaxSessions: 64})
	sc := testScenario(0.5)

	want, err := eagleeye.Run(eagleeye.Config{
		Satellites:    sc.Satellites,
		Targets:       toEagleTargets(sc.Targets),
		DurationHours: sc.DurationHours,
		Seed:          sc.Seed,
		Workers:       1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("session %d", i)
			cresp, cbody := doJSON(t, "POST", ts.URL+"/v1/sessions", sc)
			if cresp.StatusCode != http.StatusCreated {
				errs[i] = fmt.Errorf("%s: create = %d: %s", id, cresp.StatusCode, cbody)
				return
			}
			var info SessionInfo
			if err := json.Unmarshal(cbody, &info); err != nil {
				errs[i] = err
				return
			}
			for {
				rresp, rbody := doJSON(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/run", nil)
				if rresp.StatusCode == http.StatusTooManyRequests {
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if rresp.StatusCode != http.StatusOK {
					errs[i] = fmt.Errorf("%s: run = %d: %s", id, rresp.StatusCode, rbody)
					return
				}
				var rr RunResponse
				if err := json.Unmarshal(rbody, &rr); err != nil {
					errs[i] = err
					return
				}
				if rr.Result == nil ||
					rr.Result.HighResCaptured != want.HighResCaptured ||
					rr.Result.Detections != want.Detections ||
					rr.Result.Captures != want.Captures ||
					rr.Result.Frames != want.Frames ||
					rr.Result.CrosslinkKB != want.CrosslinkKB ||
					rr.Result.CoveragePct != want.CoveragePct ||
					rr.Result.LeaderEnergyUtilization != want.LeaderEnergyUtilization {
					errs[i] = fmt.Errorf("%s diverged:\nwant %+v\ngot  %+v", id, want, rr.Result)
				}
				return
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func toEagleTargets(specs []TargetSpec) []eagleeye.Target {
	out := make([]eagleeye.Target, len(specs))
	for i, s := range specs {
		out[i] = eagleeye.Target{Lat: s.Lat, Lon: s.Lon, SpeedMS: s.SpeedMS, HeadingDeg: s.HeadingDeg, Value: s.Value}
	}
	return out
}

// TestStreamedTrace asserts the NDJSON run endpoint: frame records, then
// one terminal result line.
func TestStreamedTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, testScenario(1))
	resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/run?trace=ndjson", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed run = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want trace + result", len(lines))
	}
	var final RunResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatalf("terminal line: %v (%q)", err, lines[len(lines)-1])
	}
	if final.Result == nil || final.Error != "" {
		t.Fatalf("terminal line missing result: %+v", final)
	}
	// Every preceding line is a frame record.
	for _, ln := range lines[:len(lines)-1] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("trace line %q: %v", ln, err)
		}
		if _, ok := rec["frame"]; !ok {
			t.Errorf("trace line without frame field: %q", ln)
		}
	}
}

// TestRequestDeadline: a run that cannot start before the request
// deadline answers 504 while the run itself completes in the background
// and lands on the session. The single worker is pinned inside another
// session's run, so the 504 is deterministic.
func TestRequestDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	holder := createSession(t, ts.URL, gridScenario(1))
	b := createSession(t, ts.URL, testScenario(0.2))

	release, holdDone := holdRun(t, s, holder)
	t.Cleanup(release)
	pollUntil(t, "holder session running", 10*time.Second, func() bool {
		return sessionState(t, ts.URL, holder).State == "running"
	})

	resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+b+"/run", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("run past deadline = %d, want 504", resp.StatusCode)
	}

	// Free the worker; the abandoned run executes and lands on the session.
	release()
	if rr := <-holdDone; rr.err != nil {
		t.Fatalf("held run: %v", rr.err)
	}
	pollUntil(t, "background run to land", 60*time.Second, func() bool {
		info := sessionState(t, ts.URL, b)
		return info.Runs == 1 && info.State == "idle" && info.LastResult != nil
	})
}

// TestMetricsWired asserts the server series move with the API.
func TestMetricsWired(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg})
	id := createSession(t, ts.URL, testScenario(0.2))
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/run", nil); resp.StatusCode != 200 {
		t.Fatalf("run = %d", resp.StatusCode)
	}
	if got := reg.CounterValue("eagleeyed_sessions_created_total"); got != 1 {
		t.Errorf("sessions_created = %d", got)
	}
	if got := reg.GaugeValue("eagleeyed_sessions_active"); got != 1 {
		t.Errorf("sessions_active = %v", got)
	}
	if got := reg.CounterValue("eagleeyed_runs_total"); got != 1 {
		t.Errorf("runs_total = %d", got)
	}
	if got := reg.CounterValue("eagleeyed_requests_total",
		obs.Label{Key: "route", Value: "run"}, obs.Label{Key: "code", Value: "200"}); got != 1 {
		t.Errorf("requests_total{run,200} = %d", got)
	}
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil)
	if got := reg.GaugeValue("eagleeyed_sessions_active"); got != 0 {
		t.Errorf("sessions_active after delete = %v", got)
	}
	// The simulator's own series flow into the same registry.
	if got := reg.CounterValue("eagleeye_frames_total"); got == 0 {
		t.Error("run emitted no simulator frame metrics")
	}
}
