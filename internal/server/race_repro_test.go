package server

import (
	"net/http"
	"testing"
)

// TestRaceGetDuringRun polls session info while a run executes, to see
// whether Session.Aggregate races with the worker's Session.Step.
func TestRaceGetDuringRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := createSession(t, ts.URL, gridScenario(0.3))

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/run", nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("run = %d: %s", resp.StatusCode, body)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		resp, _ := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get = %d", resp.StatusCode)
		}
	}
}
