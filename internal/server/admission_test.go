package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"eagleeye/internal/obs"
)

// pollUntil retries cond every few milliseconds until it holds or the
// deadline passes.
func pollUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sessionState(t *testing.T, base, id string) SessionInfo {
	t.Helper()
	_, body := doJSON(t, "GET", base+"/v1/sessions/"+id, nil)
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("session %s: %v", id, err)
	}
	return info
}

// gateWriter blocks every Write until the gate opens.
type gateWriter struct{ gate chan struct{} }

func (g gateWriter) Write(p []byte) (int, error) { <-g.gate; return len(p), nil }

// holdRun admits a full run on id whose trace writer blocks until the
// returned release is called. The worker executing it pins inside the
// run -- gridScenario deterministically emits trace records -- so tests
// can observe saturation without any timing assumptions. release is
// idempotent; register it with t.Cleanup so a failing test still drains.
func holdRun(t *testing.T, s *Server, id string) (release func(), done chan jobResult) {
	t.Helper()
	e := s.lookup(id)
	if e == nil {
		t.Fatalf("no session %s", id)
	}
	gate := make(chan struct{})
	j, aerr := s.enqueue(e, 0, "", gateWriter{gate}, nil)
	if aerr != nil {
		t.Fatalf("hold enqueue: %v", aerr)
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }, j.done
}

// TestSessionTableBound: creates past MaxSessions answer 429 and free a
// slot on delete.
func TestSessionTableBound(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{MaxSessions: 2, Metrics: reg})
	sc := testScenario(0.2)

	a := createSession(t, ts.URL, sc)
	createSession(t, ts.URL, sc)
	resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", sc)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third create = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q", got)
	}
	if got := reg.CounterValue("eagleeyed_admission_rejects_total",
		obs.Label{Key: "reason", Value: "sessions"}); got != 1 {
		t.Errorf("rejects{sessions} = %d", got)
	}
	// A delete frees the slot.
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+a, nil)
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", sc); resp.StatusCode != http.StatusCreated {
		t.Errorf("create after delete = %d, want 201", resp.StatusCode)
	}
}

// TestQueueSaturation drives the worker pool past its queue bound: with
// one (pinned) worker and a one-deep queue, a third concurrent run
// answers 429 + Retry-After, and a duplicate run on a busy session
// answers 409, without corrupting the session table -- every session
// remains usable afterward. This is the reduced-scale acceptance
// demonstration of the saturation behavior.
func TestQueueSaturation(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg, RequestTimeout: 5 * time.Minute})
	a := createSession(t, ts.URL, gridScenario(1))
	b := createSession(t, ts.URL, testScenario(0.2))
	c := createSession(t, ts.URL, testScenario(0.2))

	// Pin the single worker inside A's run...
	release, aDone := holdRun(t, s, a)
	t.Cleanup(release)
	pollUntil(t, "session A running", 10*time.Second, func() bool {
		return sessionState(t, ts.URL, a).State == "running"
	})

	// ...fill the one queue slot with B...
	bDone := make(chan int, 1)
	go func() {
		resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+b+"/run", nil)
		bDone <- resp.StatusCode
	}()
	pollUntil(t, "queue slot taken by B", 10*time.Second, func() bool {
		return reg.GaugeValue("eagleeyed_queue_depth") == 1
	})

	// ...and the next admission is refused with backpressure.
	resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+c+"/run", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated run = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q", got)
	}
	if got := reg.CounterValue("eagleeyed_admission_rejects_total",
		obs.Label{Key: "reason", Value: "queue"}); got < 1 {
		t.Errorf("rejects{queue} = %d", got)
	}
	// A second run on the already-running session is a conflict, not a
	// queue slot.
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+a+"/run", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("run on busy session = %d, want 409", resp.StatusCode)
	}

	// Saturation must not have corrupted the table: A and B complete,
	// C stayed clean and can run now that the worker frees up.
	release()
	if rr := <-aDone; rr.err != nil {
		t.Fatalf("session A run: %v", rr.err)
	}
	if code := <-bDone; code != http.StatusOK {
		t.Fatalf("session B run = %d", code)
	}
	for id, wantRuns := range map[string]int{a: 1, b: 1, c: 0} {
		info := sessionState(t, ts.URL, id)
		if info.State != "idle" || info.Runs != wantRuns {
			t.Errorf("session %s after saturation: state=%s runs=%d, want idle/%d",
				id, info.State, info.Runs, wantRuns)
		}
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+c+"/run", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("run on C after saturation cleared = %d, want 200", resp.StatusCode)
	}
}

// TestGracefulDrain: Shutdown stops admissions (503 on create/run,
// healthz unhealthy) while queries keep answering and the in-flight run
// completes untruncated.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: 5 * time.Minute})
	sc := testScenario(0.2)
	a := createSession(t, ts.URL, gridScenario(1))
	idle := createSession(t, ts.URL, sc)

	release, aDone := holdRun(t, s, a)
	t.Cleanup(release)
	pollUntil(t, "session A running", 10*time.Second, func() bool {
		return sessionState(t, ts.URL, a).State == "running"
	})

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(60 * time.Second) }()
	pollUntil(t, "drain to begin", 10*time.Second, s.Draining)

	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", sc); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("create while draining = %d, want 503", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+idle+"/run", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run while draining = %d, want 503", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	// Queries still answer during the drain so orchestrators can watch it.
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/sessions/"+a, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("query while draining = %d, want 200", resp.StatusCode)
	}

	release()
	if rr := <-aDone; rr.err != nil {
		t.Errorf("in-flight run during drain: %v (must never be truncated)", rr.err)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
}
