package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{-180, -90, -45, 0, 30, 90, 179.999} {
		if got := Rad2Deg(Deg2Rad(d)); !almostEq(got, d, 1e-12) {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

func TestWrapLonDeg(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, 180}, {-180, 180}, {181, -179}, {-181, 179},
		{360, 0}, {540, 180}, {-540, 180}, {720.5, 0.5},
	}
	for _, c := range cases {
		if got := WrapLonDeg(c.in); !almostEq(got, c.want, 1e-9) {
			t.Errorf("WrapLonDeg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampLatDeg(t *testing.T) {
	if ClampLatDeg(95) != 90 || ClampLatDeg(-95) != -90 || ClampLatDeg(45) != 45 {
		t.Fatal("ClampLatDeg misbehaved")
	}
}

func TestLatLonValid(t *testing.T) {
	if !(LatLon{45, 120}).Valid() {
		t.Error("valid point reported invalid")
	}
	if (LatLon{95, 0}).Valid() {
		t.Error("lat 95 reported valid")
	}
	if (LatLon{math.NaN(), 0}).Valid() {
		t.Error("NaN lat reported valid")
	}
}

func TestGeodeticECEFKnownPoints(t *testing.T) {
	// Equator / prime meridian at zero altitude: X = semi-major axis.
	v := GeodeticToECEF(LatLon{0, 0}, 0)
	if !almostEq(v.X, EarthEquatorialRadius, 1e-6) || !almostEq(v.Y, 0, 1e-6) || !almostEq(v.Z, 0, 1e-6) {
		t.Errorf("equator ECEF = %+v", v)
	}
	// North pole: Z = polar radius.
	v = GeodeticToECEF(LatLon{90, 0}, 0)
	if !almostEq(v.Z, EarthPolarRadius, 1e-6) {
		t.Errorf("north pole Z = %v, want %v", v.Z, EarthPolarRadius)
	}
	// 90E on the equator: Y = semi-major axis.
	v = GeodeticToECEF(LatLon{0, 90}, 0)
	if !almostEq(v.Y, EarthEquatorialRadius, 1e-6) {
		t.Errorf("90E Y = %v", v.Y)
	}
}

func TestECEFRoundTripProperty(t *testing.T) {
	f := func(latSeed, lonSeed, altSeed uint32) bool {
		lat := float64(latSeed%18000)/100 - 90  // [-90, 90)
		lon := float64(lonSeed%36000)/100 - 180 // [-180, 180)
		alt := float64(altSeed % 1000000)       // [0, 1000 km)
		p := LatLon{lat, lon}.Normalize()
		q, a := ECEFToGeodetic(GeodeticToECEF(p, alt))
		if !almostEq(a, alt, 1e-3) {
			return false
		}
		if !almostEq(q.Lat, p.Lat, 1e-7) {
			return false
		}
		// Longitude undefined at the poles.
		if math.Abs(p.Lat) < 89.999 && !almostEq(WrapLonDeg(q.Lon-p.Lon), 0, 1e-7) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGreatCircleDistanceKnown(t *testing.T) {
	// Quarter of the Earth's circumference: equator to pole.
	d := GreatCircleDistance(LatLon{0, 0}, LatLon{90, 0})
	want := math.Pi / 2 * EarthMeanRadius
	if !almostEq(d, want, 1) {
		t.Errorf("pole distance = %v, want %v", d, want)
	}
	// Symmetric.
	a, b := LatLon{48.85, 2.35}, LatLon{40.71, -74.0}
	if !almostEq(GreatCircleDistance(a, b), GreatCircleDistance(b, a), 1e-6) {
		t.Error("distance not symmetric")
	}
	// Paris-NYC is about 5837 km.
	if d := GreatCircleDistance(a, b); d < 5.7e6 || d > 6.0e6 {
		t.Errorf("Paris-NYC distance = %v", d)
	}
	if GreatCircleDistance(a, a) != 0 {
		t.Error("self distance not zero")
	}
}

func TestDestinationInverseOfBearingDistance(t *testing.T) {
	f := func(latSeed, lonSeed, brgSeed, distSeed uint32) bool {
		p := LatLon{float64(latSeed%16000)/100 - 80, float64(lonSeed%36000)/100 - 180}.Normalize()
		brg := float64(brgSeed % 360)
		dist := float64(distSeed%2000000) + 10 // up to 2000 km
		q := Destination(p, brg, dist)
		return almostEq(GreatCircleDistance(p, q), dist, 1) &&
			almostEq(math.Abs(WrapLonDeg(InitialBearing(p, q)-brg)), 0, 0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCrossAlongTrack(t *testing.T) {
	origin := LatLon{0, 0}
	// Track heading due north. A point due east is pure cross-track.
	east := Destination(origin, 90, 50000)
	xt := CrossTrackDistance(east, origin, 0)
	if !almostEq(xt, 50000, 50) {
		t.Errorf("cross-track = %v, want ~50000", xt)
	}
	at := AlongTrackDistance(east, origin, 0)
	if !almostEq(at, 0, 50) {
		t.Errorf("along-track = %v, want ~0", at)
	}
	// A point due north is pure along-track.
	north := Destination(origin, 0, 70000)
	if at := AlongTrackDistance(north, origin, 0); !almostEq(at, 70000, 50) {
		t.Errorf("along-track north = %v", at)
	}
	if xt := CrossTrackDistance(north, origin, 0); !almostEq(xt, 0, 50) {
		t.Errorf("cross-track north = %v", xt)
	}
	// A point behind has negative along-track.
	south := Destination(origin, 180, 30000)
	if at := AlongTrackDistance(south, origin, 0); at > -29000 {
		t.Errorf("along-track south = %v, want ~-30000", at)
	}
}

func TestVec3Algebra(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %+v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %+v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{0, 0, 2}).Unit(); got != (Vec3{0, 0, 1}) {
		t.Errorf("Unit = %+v", got)
	}
	if got := (Vec3{}).Unit(); got != (Vec3{}) {
		t.Errorf("Unit zero = %+v", got)
	}
	if got := (Vec3{1, 0, 0}).AngleBetween(Vec3{0, 1, 0}); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("AngleBetween = %v", got)
	}
	if got := (Vec3{1, 0, 0}).AngleBetween(Vec3{1, 0, 0}); !almostEq(got, 0, 1e-7) {
		t.Errorf("AngleBetween same = %v", got)
	}
}

func TestCrossProductOrthogonalProperty(t *testing.T) {
	f := func(a, b, c, d, e, g int16) bool {
		v := Vec3{float64(a), float64(b), float64(c)}
		w := Vec3{float64(d), float64(e), float64(g)}
		x := v.Cross(w)
		return almostEq(x.Dot(v), 0, 1e-6) && almostEq(x.Dot(w), 0, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRectCentered(Point2{0, 0}, 10, 4)
	if r.Width() != 10 || r.Height() != 4 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Center() != (Point2{0, 0}) {
		t.Errorf("center = %v", r.Center())
	}
	if r.Area() != 40 {
		t.Errorf("area = %v", r.Area())
	}
	if !r.Contains(Point2{5, 2}) { // corner inclusive
		t.Error("corner not contained")
	}
	if r.Contains(Point2{5.1, 0}) {
		t.Error("outside point contained")
	}
	if !r.Valid() {
		t.Error("valid rect reported invalid")
	}
	if (Rect{Min: Point2{1, 0}, Max: Point2{0, 1}}).Valid() {
		t.Error("invalid rect reported valid")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: Point2{0, 0}, Max: Point2{2, 2}}
	b := Rect{Min: Point2{1, 1}, Max: Point2{3, 3}}
	c := Rect{Min: Point2{2, 2}, Max: Point2{4, 4}} // touching corner
	d := Rect{Min: Point2{5, 5}, Max: Point2{6, 6}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects reported disjoint")
	}
	if !a.Intersects(c) {
		t.Error("touching rects reported disjoint")
	}
	if a.Intersects(d) {
		t.Error("disjoint rects reported intersecting")
	}
}

func TestTangentFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		f := TangentFrame{
			Origin:     LatLon{rng.Float64()*140 - 70, rng.Float64()*360 - 180}.Normalize(),
			BearingDeg: rng.Float64() * 360,
		}
		p := Point2{rng.Float64()*100000 - 50000, rng.Float64()*100000 - 50000}
		g := f.ToGeodetic(p)
		q := f.ToLocal(g)
		// Within a 100 km frame the flat approximation is good to ~100 m.
		if p.Dist(q) > 150 {
			t.Fatalf("frame round trip error %v for p=%v at origin %v", p.Dist(q), p, f.Origin)
		}
	}
}

func TestPoint2Algebra(t *testing.T) {
	p := Point2{3, 4}
	if p.Norm() != 5 {
		t.Errorf("Norm = %v", p.Norm())
	}
	if p.Add(Point2{1, 1}) != (Point2{4, 5}) {
		t.Error("Add wrong")
	}
	if p.Sub(Point2{1, 1}) != (Point2{2, 3}) {
		t.Error("Sub wrong")
	}
	if p.Scale(2) != (Point2{6, 8}) {
		t.Error("Scale wrong")
	}
	if p.Dist(Point2{0, 0}) != 5 {
		t.Error("Dist wrong")
	}
}

func TestEarthSurfaceArea(t *testing.T) {
	// The paper quotes ~510 million km^2.
	km2 := EarthSurfaceArea / 1e6
	if km2 < 505e6 || km2 > 515e6 {
		t.Errorf("surface area = %v km^2", km2)
	}
}

func TestStringers(t *testing.T) {
	if s := (LatLon{1, 2}).String(); s == "" {
		t.Error("empty LatLon string")
	}
	if s := (Point2{1, 2}).String(); s == "" {
		t.Error("empty Point2 string")
	}
	if s := (Rect{}).String(); s == "" {
		t.Error("empty Rect string")
	}
}
