// Package geo provides the geodesy substrate used throughout EagleEye:
// WGS-84 constants, coordinate conversions between geodetic and
// Earth-centered Earth-fixed (ECEF) frames, great-circle distances, local
// tangent (East-North-Up) frames, and simple planar footprint geometry.
//
// Conventions: latitudes and longitudes are degrees unless a name says
// otherwise; distances are meters; angles in the math helpers are radians.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// WGS-84 ellipsoid and derived constants.
const (
	// EarthEquatorialRadius is the WGS-84 semi-major axis in meters.
	EarthEquatorialRadius = 6378137.0
	// EarthFlattening is the WGS-84 flattening f = (a-b)/a.
	EarthFlattening = 1.0 / 298.257223563
	// EarthPolarRadius is the WGS-84 semi-minor axis in meters.
	EarthPolarRadius = EarthEquatorialRadius * (1 - EarthFlattening)
	// EarthMeanRadius is the mean Earth radius (IUGG R1) in meters. The
	// spherical approximations in the simulator use this value.
	EarthMeanRadius = 6371008.8
	// EarthMu is the WGS-84 gravitational parameter in m^3/s^2.
	EarthMu = 3.986004418e14
	// EarthJ2 is the second zonal harmonic of the geopotential.
	EarthJ2 = 1.08262668e-3
	// EarthRotationRate is the Earth's sidereal rotation rate in rad/s.
	EarthRotationRate = 7.2921150e-5
	// EarthSurfaceArea is the total Earth surface area in m^2 (spherical,
	// mean radius); the paper quotes ~510 million km^2.
	EarthSurfaceArea = 4 * math.Pi * EarthMeanRadius * EarthMeanRadius
)

// Deg2Rad converts degrees to radians.
func Deg2Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(rad float64) float64 { return rad * 180 / math.Pi }

// WrapLonDeg wraps a longitude in degrees into (-180, 180].
func WrapLonDeg(lon float64) float64 {
	lon = math.Mod(lon, 360)
	switch {
	case lon > 180:
		lon -= 360
	case lon <= -180:
		lon += 360
	}
	return lon
}

// ClampLatDeg clamps a latitude in degrees into [-90, 90].
func ClampLatDeg(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

// LatLon is a geodetic position on the Earth's surface in degrees.
type LatLon struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, (-180, 180]
}

// String implements fmt.Stringer.
func (p LatLon) String() string { return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon) }

// Valid reports whether the point is a plausible geodetic coordinate.
func (p LatLon) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon > -180-1e-9 && p.Lon <= 180+1e-9 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Normalize returns the point with longitude wrapped and latitude clamped.
func (p LatLon) Normalize() LatLon {
	return LatLon{Lat: ClampLatDeg(p.Lat), Lon: WrapLonDeg(p.Lon)}
}

// ErrInvalidLatLon reports an out-of-range geodetic coordinate.
var ErrInvalidLatLon = errors.New("geo: invalid lat/lon")

// Vec3 is a 3-vector in meters (ECEF) or dimensionless (directions).
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v/|v|; the zero vector is returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// AngleBetween returns the angle between v and w in radians, in [0, pi].
func (v Vec3) AngleBetween(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// GeodeticToECEF converts a geodetic coordinate plus altitude (meters above
// the WGS-84 ellipsoid) to an ECEF position in meters.
func GeodeticToECEF(p LatLon, altM float64) Vec3 {
	lat := Deg2Rad(p.Lat)
	lon := Deg2Rad(p.Lon)
	sinLat, cosLat := math.Sincos(lat)
	sinLon, cosLon := math.Sincos(lon)
	e2 := EarthFlattening * (2 - EarthFlattening)
	n := EarthEquatorialRadius / math.Sqrt(1-e2*sinLat*sinLat)
	return Vec3{
		X: (n + altM) * cosLat * cosLon,
		Y: (n + altM) * cosLat * sinLon,
		Z: (n*(1-e2) + altM) * sinLat,
	}
}

// ECEFToGeodetic converts an ECEF position in meters to geodetic latitude,
// longitude (degrees) and altitude above the ellipsoid (meters) using
// Bowring's iteration, accurate to well under a millimeter near the surface.
func ECEFToGeodetic(v Vec3) (LatLon, float64) {
	e2 := EarthFlattening * (2 - EarthFlattening)
	p := math.Hypot(v.X, v.Y)
	lon := math.Atan2(v.Y, v.X)
	if p < 1e-9 { // On the polar axis.
		lat := math.Pi / 2
		if v.Z < 0 {
			lat = -lat
		}
		return LatLon{Lat: Rad2Deg(lat), Lon: 0}, math.Abs(v.Z) - EarthPolarRadius
	}
	lat := math.Atan2(v.Z, p*(1-e2))
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n := EarthEquatorialRadius / math.Sqrt(1-e2*sinLat*sinLat)
		newLat := math.Atan2(v.Z+e2*n*sinLat, p)
		if math.Abs(newLat-lat) < 1e-13 {
			lat = newLat
			break
		}
		lat = newLat
	}
	sinLat := math.Sin(lat)
	n := EarthEquatorialRadius / math.Sqrt(1-e2*sinLat*sinLat)
	alt := p/math.Cos(lat) - n
	return LatLon{Lat: Rad2Deg(lat), Lon: Rad2Deg(lon)}.Normalize(), alt
}

// GreatCircleDistance returns the spherical (mean-radius) surface distance in
// meters between two geodetic points, using the haversine formula.
func GreatCircleDistance(a, b LatLon) float64 {
	la1, lo1 := Deg2Rad(a.Lat), Deg2Rad(a.Lon)
	la2, lo2 := Deg2Rad(b.Lat), Deg2Rad(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthMeanRadius * math.Asin(math.Sqrt(h))
}

// InitialBearing returns the initial great-circle bearing from a to b in
// degrees clockwise from north, in [0, 360).
func InitialBearing(a, b LatLon) float64 {
	la1 := Deg2Rad(a.Lat)
	la2 := Deg2Rad(b.Lat)
	dLon := Deg2Rad(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	brg := Rad2Deg(math.Atan2(y, x))
	if brg < 0 {
		brg += 360
	}
	return brg
}

// Destination returns the point reached by travelling distM meters from p
// along the given initial bearing (degrees clockwise from north) on the
// mean-radius sphere.
func Destination(p LatLon, bearingDeg, distM float64) LatLon {
	delta := distM / EarthMeanRadius
	theta := Deg2Rad(bearingDeg)
	la1 := Deg2Rad(p.Lat)
	lo1 := Deg2Rad(p.Lon)
	sinLa2 := math.Sin(la1)*math.Cos(delta) + math.Cos(la1)*math.Sin(delta)*math.Cos(theta)
	la2 := math.Asin(sinLa2)
	y := math.Sin(theta) * math.Sin(delta) * math.Cos(la1)
	x := math.Cos(delta) - math.Sin(la1)*sinLa2
	lo2 := lo1 + math.Atan2(y, x)
	return LatLon{Lat: Rad2Deg(la2), Lon: Rad2Deg(lo2)}.Normalize()
}

// CrossTrackDistance returns the signed cross-track distance in meters from
// point p to the great circle through a with initial bearing bearingDeg.
// Positive values are to the right of the track.
func CrossTrackDistance(p, a LatLon, bearingDeg float64) float64 {
	d13 := GreatCircleDistance(a, p) / EarthMeanRadius
	b13 := Deg2Rad(InitialBearing(a, p))
	b12 := Deg2Rad(bearingDeg)
	return math.Asin(math.Sin(d13)*math.Sin(b13-b12)) * EarthMeanRadius
}

// AlongTrackDistance returns the along-track distance in meters from a to the
// closest point on the track (through a at bearingDeg) to p.
func AlongTrackDistance(p, a LatLon, bearingDeg float64) float64 {
	d13 := GreatCircleDistance(a, p) / EarthMeanRadius
	xt := CrossTrackDistance(p, a, bearingDeg) / EarthMeanRadius
	cosD13 := math.Cos(d13)
	cosXT := math.Cos(xt)
	if cosXT == 0 {
		return 0
	}
	r := cosD13 / cosXT
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	at := math.Acos(r) * EarthMeanRadius
	// Sign: along-track is negative if p is behind a relative to the bearing.
	b13 := Deg2Rad(InitialBearing(a, p))
	b12 := Deg2Rad(bearingDeg)
	if math.Cos(b13-b12) < 0 {
		at = -at
	}
	return at
}
