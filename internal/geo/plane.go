package geo

import (
	"fmt"
	"math"
)

// Point2 is a point in a local tangent plane, in meters. The convention in
// frame-local geometry is X = cross-track (right of flight direction) and
// Y = along-track (direction of flight).
type Point2 struct{ X, Y float64 }

// Add returns p + q.
func (p Point2) Add(q Point2) Point2 { return Point2{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point2) Sub(q Point2) Point2 { return Point2{p.X - q.X, p.Y - q.Y} }

// Scale returns s*p.
func (p Point2) Scale(s float64) Point2 { return Point2{s * p.X, s * p.Y} }

// Norm returns |p|.
func (p Point2) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns |p - q|.
func (p Point2) Dist(q Point2) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// String implements fmt.Stringer.
func (p Point2) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle in a local tangent plane, in meters.
// Min is the lower-left corner, Max the upper-right.
type Rect struct {
	Min, Max Point2
}

// NewRectCentered returns a w × h rectangle centered on c.
func NewRectCentered(c Point2, w, h float64) Rect {
	return Rect{
		Min: Point2{c.X - w/2, c.Y - h/2},
		Max: Point2{c.X + w/2, c.Y + h/2},
	}
}

// Width returns the rectangle's extent in X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's extent in Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point2 {
	return Point2{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Area returns the rectangle's area; degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	w, h := r.Width(), r.Height()
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// Contains reports whether p lies inside r (inclusive of edges, with a small
// tolerance so that points generated exactly on rectangle edges count).
func (r Rect) Contains(p Point2) bool {
	const eps = 1e-9
	return p.X >= r.Min.X-eps && p.X <= r.Max.X+eps &&
		p.Y >= r.Min.Y-eps && p.Y <= r.Max.Y+eps
}

// Intersects reports whether r and s overlap (touching edges count).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Valid reports whether Min <= Max in both axes.
func (r Rect) Valid() bool { return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y }

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v - %v]", r.Min, r.Max) }

// TangentFrame is a local flat-Earth frame anchored at Origin with the
// Y axis pointing along bearing BearingDeg (the flight direction) and the
// X axis to its right. Within a ~100 km leader frame, the flat approximation
// has error below 0.1%, which is what the frame-local scheduling geometry in
// the paper's Eqs. 1-2 needs.
type TangentFrame struct {
	Origin     LatLon
	BearingDeg float64
}

// ToLocal projects a geodetic point into the frame.
func (f TangentFrame) ToLocal(p LatLon) Point2 {
	at := AlongTrackDistance(p, f.Origin, f.BearingDeg)
	xt := CrossTrackDistance(p, f.Origin, f.BearingDeg)
	return Point2{X: xt, Y: at}
}

// ToGeodetic maps a local point back to a geodetic coordinate.
func (f TangentFrame) ToGeodetic(p Point2) LatLon {
	along := Destination(f.Origin, f.BearingDeg, p.Y)
	// Bearing of the track at the along-track point: great-circle bearings
	// rotate with meridian convergence, so recompute the track direction at
	// the far point from the back-bearing to the origin.
	trackBrg := f.BearingDeg
	if math.Abs(p.Y) > 1 {
		back := InitialBearing(along, f.Origin)
		if p.Y > 0 {
			trackBrg = math.Mod(back+180, 360)
		} else {
			trackBrg = back
		}
	}
	return Destination(along, math.Mod(trackBrg+90, 360), p.X)
}
