// Package experiments regenerates every table and figure in the paper's
// evaluation (§6). Each FigXX function produces Tables with the same rows
// and series the paper reports; cmd/figures prints them and bench_test.go
// wraps each in a benchmark. The DESIGN.md per-experiment index maps
// figures to these functions.
//
// Two scales are provided. DefaultScale keeps runs laptop-sized (shorter
// simulated spans, fewer constellation sizes); FullScale reproduces the
// paper's 24-hour, up-to-40-satellite sweeps. Absolute numbers differ from
// the paper (synthetic worlds, different solver hardware); the shapes --
// who wins, by what factor, where the crossovers are -- are the
// reproduction targets, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"

	"eagleeye/internal/dataset"
	"eagleeye/internal/sim"
)

// Scale bounds experiment cost.
type Scale struct {
	// DurationS is the simulated span per run.
	DurationS float64
	// Sizes are the constellation sizes swept (even numbers so
	// leader-follower groups divide).
	Sizes []int
	// FollowerTotal is the constellation size for the follower-count
	// sweep (divisible by 2, 3 and 4).
	FollowerTotal int
	// MaxSchedTargets bounds the Fig. 12a/14a target sweeps.
	MaxSchedTargets int
	// Seed fixes all randomness.
	Seed int64
	// DenseApp toggles including the 1.4M-lake workload (the most
	// expensive) in multi-app sweeps.
	DenseApp bool
}

// DefaultScale is sized for the benchmark suite: a few minutes end to end.
func DefaultScale() Scale {
	return Scale{
		DurationS:       3 * 3600,
		Sizes:           []int{2, 4, 8},
		FollowerTotal:   12,
		MaxSchedTargets: 60,
		Seed:            1,
		DenseApp:        true,
	}
}

// FullScale reproduces the paper's sweeps (hours of compute).
func FullScale() Scale {
	return Scale{
		DurationS:       24 * 3600,
		Sizes:           []int{2, 4, 8, 12, 16, 20, 28, 40},
		FollowerTotal:   24,
		MaxSchedTargets: 100,
		Seed:            1,
		DenseApp:        true,
	}
}

// Series is one plotted line: y over x.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is a figure's data: columns and rows for printing plus the raw
// series for assertions.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
	Series  []Series
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// FindSeries returns the series with the label, or nil.
func (t *Table) FindSeries(label string) *Series {
	for i := range t.Series {
		if t.Series[i].Label == label {
			return &t.Series[i]
		}
	}
	return nil
}

// appCache shares generated datasets across experiments (the 1.4M-lake
// world takes seconds to build).
var appCache = struct {
	sync.Mutex
	m map[string]*dataset.Set
}{m: make(map[string]*dataset.Set)}

// app returns a cached standard dataset.
func app(name string, seed int64) *dataset.Set {
	appCache.Lock()
	defer appCache.Unlock()
	key := fmt.Sprintf("%s/%d", name, seed)
	if s, ok := appCache.m[key]; ok {
		return s
	}
	s, err := dataset.ByName(name, seed)
	if err != nil {
		panic(err) // names are package-internal constants
	}
	appCache.m[key] = s
	return s
}

// appNames returns the workloads for multi-app figures under the scale.
func appNames(sc Scale) []string {
	names := []string{"ships", "airplanes", "lakes-166k"}
	if sc.DenseApp {
		names = append(names, "lakes-1.4m")
	}
	return names
}

// simCache memoizes simulation results: the figures share many identical
// configurations (e.g. the 3 deg/s baseline rows).
var simCache = struct {
	sync.Mutex
	m map[string]*sim.Result
}{m: make(map[string]*sim.Result)}

func cacheKey(cfg sim.Config) string {
	schedName := "default"
	if cfg.Scheduler != nil {
		schedName = cfg.Scheduler.Name()
	}
	return fmt.Sprintf("%v|%d|%d|%d|%s|%v|%d|%s|%v|%v|%v|%v|%v|%s|%v|%d:%d",
		cfg.Constellation.Kind, cfg.Constellation.Satellites,
		cfg.Constellation.FollowersPerGroup, cfg.Constellation.Planes,
		cfg.App.Name, cfg.DurationS,
		cfg.Seed, schedName, cfg.SlewRateDegS, cfg.RecallOverride,
		cfg.NoClustering, cfg.ClusterGreedy, cfg.ComputeDelayS,
		cfg.Detector.Name, cfg.RecaptureDedup,
		cfg.Tiling.FramePx, cfg.Tiling.TilePx)
}

// runSim executes one simulation (memoized), panicking on configuration
// errors: the harness only builds valid configs.
func runSim(cfg sim.Config) *sim.Result {
	key := cacheKey(cfg)
	simCache.Lock()
	if r, ok := simCache.m[key]; ok {
		simCache.Unlock()
		return r
	}
	simCache.Unlock()
	r, err := sim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	simCache.Lock()
	simCache.m[key] = r
	simCache.Unlock()
	return r
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }
