package experiments

import (
	"fmt"
	"time"

	"eagleeye/internal/camera"
	"eagleeye/internal/cluster"
	"eagleeye/internal/core"
	"eagleeye/internal/detect"
	"eagleeye/internal/energy"
	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
)

// Fig03 reproduces the oil-tank characterization: stage-1 detection
// accuracy and stage-2 volume-estimation error (50th/90th percentile)
// versus GSD over the paper's 0.7-11.5 m/px range.
func Fig03() Table {
	t := Table{
		Title:   "Fig. 3: Oil tank volume estimation vs GSD",
		Columns: []string{"GSD(m/px)", "detect-acc(%)", "vol-err-50th(%)", "vol-err-90th(%)"},
	}
	var acc, e50, e90 Series
	acc.Label, e50.Label, e90.Label = "detect", "err50", "err90"
	for _, gsd := range []float64{0.7, 1.5, 3, 5, 7, 9, 11.5} {
		a := detect.OilTankDetectionAccuracy(gsd) * 100
		l := detect.OilTankVolumeErrorPct(gsd, 0.5)
		h := detect.OilTankVolumeErrorPct(gsd, 0.9)
		t.AddRow(f1(gsd), f1(a), f1(l), f1(h))
		acc.X, acc.Y = append(acc.X, gsd), append(acc.Y, a)
		e50.X, e50.Y = append(e50.X, gsd), append(e50.Y, l)
		e90.X, e90.Y = append(e90.X, gsd), append(e90.Y, h)
	}
	t.Series = []Series{acc, e50, e90}
	return t
}

// Fig04Left reproduces the camera swath/GSD tradeoff scatter over nine
// real cubesat imagers.
func Fig04Left() Table {
	t := Table{
		Title:   "Fig. 4 (left): GSD vs swath for real cubesat cameras",
		Columns: []string{"camera", "swath(km)", "GSD(m/px)"},
	}
	s := Series{Label: "cameras"}
	for _, m := range camera.Catalogue() {
		t.AddRow(m.Name, f1(m.SwathM/1e3), f2(m.GSDM))
		s.X = append(s.X, m.SwathM/1e3)
		s.Y = append(s.Y, m.GSDM)
	}
	t.Series = []Series{s}
	return t
}

// Fig10 reproduces the maximum lookahead distance versus target speed.
func Fig10() Table {
	t := Table{
		Title:   "Fig. 10: Max lookahead distance vs target speed",
		Columns: []string{"target-speed(m/s)", "max-lookahead(km)"},
	}
	sat, swath, gamma := core.PaperLookaheadParams()
	s := Series{Label: "lookahead"}
	for _, v := range []float64{5, 14, 25, 50, 100, 150, 200, 250, 300} {
		d := core.MaxLookaheadM(sat, v, swath, gamma) / 1e3
		t.AddRow(f1(v), f1(d))
		s.X = append(s.X, v)
		s.Y = append(s.Y, d)
	}
	t.Series = []Series{s}
	t.Note = "ship @14 m/s and plane @250 m/s are the paper's quoted points"
	return t
}

// Fig14b reproduces frame processing time versus tile size against the
// frame-capture deadline.
func Fig14b() Table {
	const deadlineS = 13.7
	t := Table{
		Title:   "Fig. 14b: Frame processing time vs tile size",
		Note:    fmt.Sprintf("frame capture deadline = %.1f s (100 km swath at 475 km)", deadlineS),
		Columns: []string{"tile(px)", "tiles", "time(s)", "meets-deadline"},
	}
	m := detect.YoloN()
	s := Series{Label: "yolo_n"}
	for _, px := range []int{100, 200, 300, 400, 500, 600, 800, 1000} {
		tl := detect.Tiling{FramePx: 3330, TilePx: px}
		ft := tl.FrameTimeS(m)
		t.AddRow(fi(px), fi(tl.Tiles()), f2(ft), fmt.Sprintf("%v", ft <= deadlineS))
		s.X = append(s.X, float64(px))
		s.Y = append(s.Y, ft)
	}
	t.Series = []Series{s}
	return t
}

// Fig16 reproduces the per-orbit energy budget by role and tile factor.
func Fig16() Table {
	t := Table{
		Title: "Fig. 16: Energy per orbit by component (normalized to harvest)",
		Columns: []string{"role", "tile-factor", "camera", "adacs", "compute", "tx",
			"total/harvest", "feasible"},
	}
	p := energy.Paper3U()
	frameS := detect.PaperTiling().FrameTimeS(detect.YoloM())
	roles := []energy.Role{
		energy.RoleLowResBaseline, energy.RoleHighResBaseline,
		energy.RoleLeader, energy.RoleFollower,
	}
	var util Series
	util.Label = "leader-utilization"
	for _, factor := range []float64{1, 2, 4} {
		for _, role := range roles {
			b := energy.PerOrbitBudget(p, energy.PaperProfile(role, factor, frameS))
			h := p.HarvestPerOrbitJ()
			t.AddRow(role.String(), f1(factor),
				f2(b.CameraJ/h), f2(b.ADACSJ/h), f2(b.ComputeJ/h),
				f2((b.TXJ+b.CrosslinkJ)/h), f2(b.Utilization()),
				fmt.Sprintf("%v", b.Feasible()))
			if role == energy.RoleLeader {
				util.X = append(util.X, factor)
				util.Y = append(util.Y, b.Utilization())
			}
		}
	}
	t.Series = []Series{util}
	return t
}

// ClusteringClaim reproduces the §4.1 claim: the rectangle-cover solver
// handles hundreds of targets per frame quickly and optimally on canonical
// candidates.
func ClusteringClaim(n int, seed int64) Table {
	t := Table{
		Title:   fmt.Sprintf("§4.1 claim: rectangle-cover runtime at %d targets", n),
		Columns: []string{"targets", "clusters", "method", "time(ms)"},
	}
	pts := randomFramePoints(n, seed)
	start := time.Now()
	cs, method, err := cluster.Cover(pts, 10e3, 10e3, cluster.Options{
		MaxILPCandidates: 4000,
		MIP:              mip.Options{TimeLimit: 5 * time.Second},
	})
	el := time.Since(start)
	if err != nil {
		panic(err)
	}
	t.AddRow(fi(n), fi(len(cs)), method.String(), f1(float64(el.Microseconds())/1000))
	t.Series = []Series{{Label: "ms", X: []float64{float64(n)}, Y: []float64{float64(el.Microseconds()) / 1000}}}
	return t
}

// randomFramePoints scatters n points over a 100x100 km frame.
func randomFramePoints(n int, seed int64) []geo.Point2 {
	rng := newRng(seed)
	pts := make([]geo.Point2, n)
	for i := range pts {
		pts[i] = geo.Point2{
			X: rng.Float64()*100e3 - 50e3,
			Y: rng.Float64()*100e3 - 50e3,
		}
	}
	return pts
}
