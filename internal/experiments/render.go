package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Render prints the table as aligned text, the format cmd/figures and the
// benchmark logs use.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	if len(t.Columns) == 0 {
		return
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, fmt.Sprintf("%-*s", widths[i], c))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderAll prints a set of tables.
func RenderAll(w io.Writer, tables []Table) {
	for i := range tables {
		tables[i].Render(w)
	}
}

// RenderCSV writes the table as CSV (header row then data rows), for
// external plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SlugTitle returns a filesystem-friendly name for the table.
func (t *Table) SlugTitle() string {
	slug := strings.ToLower(t.Title)
	var b strings.Builder
	dash := false
	for _, r := range slug {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}
