package experiments

import (
	"fmt"

	"eagleeye/internal/constellation"
	"eagleeye/internal/detect"
	"eagleeye/internal/sched"
	"eagleeye/internal/sim"
)

// coverageCfg builds a sim config for a coverage experiment.
func coverageCfg(sc Scale, appName string, kind constellation.Kind, sats int) sim.Config {
	return sim.Config{
		Constellation: constellation.Config{Kind: kind, Satellites: sats},
		App:           app(appName, sc.Seed),
		DurationS:     sc.DurationS,
		Seed:          sc.Seed,
	}
}

// Fig04Right reproduces the motivation experiment: fraction of (ship)
// targets captured versus constellation size for wide-swath low-res and
// narrow-swath high-res homogeneous constellations.
func Fig04Right(sc Scale) Table {
	t := Table{
		Title:   "Fig. 4 (right): Coverage vs satellites, Low-Res vs High-Res only",
		Columns: []string{"satellites", "low-res-cov(%)", "high-res-cov(%)"},
	}
	lo := Series{Label: "low-res-only"}
	hi := Series{Label: "high-res-only"}
	for _, n := range sc.Sizes {
		rl := runSim(coverageCfg(sc, "ships", constellation.LowResOnly, n))
		rh := runSim(coverageCfg(sc, "ships", constellation.HighResOnly, n))
		t.AddRow(fi(n), f2(rl.CoveragePct()), f2(rh.CoveragePct()))
		lo.X, lo.Y = append(lo.X, float64(n)), append(lo.Y, rl.CoveragePct())
		hi.X, hi.Y = append(hi.X, float64(n)), append(hi.Y, rh.CoveragePct())
	}
	t.Series = []Series{lo, hi}
	return t
}

// Fig11a reproduces the end-to-end coverage comparison: Low-Res-Only,
// High-Res-Only, EagleEye-ILP and EagleEye-Greedy across all workloads and
// constellation sizes.
func Fig11a(sc Scale) []Table {
	var tables []Table
	for _, name := range appNames(sc) {
		t := Table{
			Title: fmt.Sprintf("Fig. 11a [%s]: Coverage vs satellites", name),
			Columns: []string{"satellites", "low-res(%)", "high-res(%)",
				"eagleeye-ilp(%)", "eagleeye-greedy(%)"},
		}
		series := map[string]*Series{}
		for _, lbl := range []string{"low-res-only", "high-res-only", "eagleeye-ilp", "eagleeye-greedy"} {
			series[lbl] = &Series{Label: lbl}
		}
		for _, n := range sc.Sizes {
			rl := runSim(coverageCfg(sc, name, constellation.LowResOnly, n))
			rh := runSim(coverageCfg(sc, name, constellation.HighResOnly, n))
			ri := runSim(coverageCfg(sc, name, constellation.LeaderFollower, n))
			cfgG := coverageCfg(sc, name, constellation.LeaderFollower, n)
			cfgG.Scheduler = sched.Greedy{}
			rg := runSim(cfgG)
			t.AddRow(fi(n), f2(rl.CoveragePct()), f2(rh.CoveragePct()),
				f2(ri.CoveragePct()), f2(rg.CoveragePct()))
			for lbl, r := range map[string]*sim.Result{
				"low-res-only": rl, "high-res-only": rh,
				"eagleeye-ilp": ri, "eagleeye-greedy": rg,
			} {
				s := series[lbl]
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, r.CoveragePct())
			}
		}
		for _, lbl := range []string{"low-res-only", "high-res-only", "eagleeye-ilp", "eagleeye-greedy"} {
			t.Series = append(t.Series, *series[lbl])
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig01b derives the headline bar chart from the Fig. 11a sweeps: the
// satellites needed to reach a target coverage for each system. Systems
// that never reach it within the sweep report ">max".
func Fig01b(sc Scale) Table {
	// The paper's 90% threshold applies to 24 h sweeps up to 40
	// satellites; shorter spans and smaller sweeps see proportionally
	// less of the world, so the threshold adapts: half the best
	// low-res coverage observed in the sweep, capped at the paper's 90%.
	maxN := sc.Sizes[len(sc.Sizes)-1]
	best := 0.0
	for _, name := range appNames(sc) {
		r := runSim(coverageCfg(sc, name, constellation.LowResOnly, maxN))
		if c := r.CoveragePct(); c > best {
			best = c
		}
	}
	threshold := best / 2
	if threshold > 90 {
		threshold = 90
	}
	t := Table{
		Title: fmt.Sprintf("Fig. 1b: Satellites for %.2f%% coverage", threshold),
		Note:  "low-res-only does not deliver high-resolution data",
		Columns: []string{"application", "low-res-only", "high-res-only",
			"eagleeye"},
	}
	needed := func(appName string, kind constellation.Kind) string {
		for _, n := range sc.Sizes {
			r := runSim(coverageCfg(sc, appName, kind, n))
			if r.CoveragePct() >= threshold {
				return fi(n)
			}
		}
		return fmt.Sprintf(">%d", maxN)
	}
	for _, name := range appNames(sc) {
		t.AddRow(name,
			needed(name, constellation.LowResOnly),
			needed(name, constellation.HighResOnly),
			needed(name, constellation.LeaderFollower))
	}
	return t
}

// Fig11b reproduces the slew-rate sensitivity: coverage under 1, 3 and
// 10 deg/s ADACS across workloads (EagleEye-ILP, one follower).
func Fig11b(sc Scale) []Table {
	rates := []float64{1, 3, 10}
	var tables []Table
	for _, name := range appNames(sc) {
		t := Table{
			Title: fmt.Sprintf("Fig. 11b [%s]: Coverage vs slew rate", name),
			Columns: []string{"satellites", "slew-1(%)", "slew-3(%)", "slew-10(%)",
				"high-res-only(%)"},
		}
		series := make([]*Series, len(rates))
		for i, r := range rates {
			series[i] = &Series{Label: fmt.Sprintf("slew-%g", r)}
		}
		hiS := &Series{Label: "high-res-only"}
		for _, n := range sc.Sizes {
			row := []string{fi(n)}
			for i, rate := range rates {
				cfg := coverageCfg(sc, name, constellation.LeaderFollower, n)
				if rate != 3 {
					// 3 deg/s is the simulator default; leaving the field
					// zero shares the cache with the other figures.
					cfg.SlewRateDegS = rate
				}
				r := runSim(cfg)
				row = append(row, f2(r.CoveragePct()))
				series[i].X = append(series[i].X, float64(n))
				series[i].Y = append(series[i].Y, r.CoveragePct())
			}
			rh := runSim(coverageCfg(sc, name, constellation.HighResOnly, n))
			row = append(row, f2(rh.CoveragePct()))
			hiS.X = append(hiS.X, float64(n))
			hiS.Y = append(hiS.Y, rh.CoveragePct())
			t.AddRow(row...)
		}
		for _, s := range series {
			t.Series = append(t.Series, *s)
		}
		t.Series = append(t.Series, *hiS)
		tables = append(tables, t)
	}
	return tables
}

// Fig11c reproduces the follower-count sensitivity at a fixed total
// satellite count: more groups (fewer followers each) win at low target
// density; more followers per group win at high density.
func Fig11c(sc Scale) []Table {
	followerCounts := []int{1, 2, 3}
	var tables []Table
	for _, name := range appNames(sc) {
		t := Table{
			Title: fmt.Sprintf("Fig. 11c [%s]: Coverage vs followers per group (total %d sats)",
				name, sc.FollowerTotal),
			Columns: []string{"followers-per-group", "groups", "coverage(%)"},
		}
		s := Series{Label: "coverage"}
		for _, f := range followerCounts {
			if sc.FollowerTotal%(1+f) != 0 {
				continue
			}
			cfg := coverageCfg(sc, name, constellation.LeaderFollower, sc.FollowerTotal)
			cfg.Constellation.FollowersPerGroup = f
			r := runSim(cfg)
			t.AddRow(fi(f), fi(sc.FollowerTotal/(1+f)), f2(r.CoveragePct()))
			s.X = append(s.X, float64(f))
			s.Y = append(s.Y, r.CoveragePct())
		}
		t.Series = []Series{s}
		tables = append(tables, t)
	}
	return tables
}

// Fig12b reproduces the targets-per-low-res-image distribution (CDF) for
// each workload.
func Fig12b(sc Scale) Table {
	t := Table{
		Title:   "Fig. 12b: Targets per low-res image (CDF percentiles)",
		Columns: []string{"application", "p50", "p90", "p99", "max", ">19-targets(%)"},
	}
	for _, name := range appNames(sc) {
		r := runSim(coverageCfg(sc, name, constellation.LeaderFollower, 2))
		hist := &r.TargetsPerImage
		n := hist.Count()
		if n == 0 {
			t.AddRow(name, "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(name, fi(hist.Percentile(50)), fi(hist.Percentile(90)), fi(hist.Percentile(99)),
			fi(hist.Max),
			f1(100*float64(hist.CountOver(19))/float64(n)))
		t.Series = append(t.Series, Series{
			Label: name,
			X:     []float64{0.5, 0.9, 0.99},
			Y:     []float64{float64(hist.Percentile(50)), float64(hist.Percentile(90)), float64(hist.Percentile(99))},
		})
	}
	t.Note = "AB&B misses the frame deadline beyond 19 targets (§6.1)"
	return t
}

// Fig13 reproduces the mix-camera comparison: coverage of leader-follower
// versus a single dual-camera satellite under the Yolo variant compute
// latencies.
func Fig13(sc Scale) []Table {
	models := detect.Catalogue()
	var tables []Table
	for _, name := range appNames(sc) {
		t := Table{
			Title:   fmt.Sprintf("Fig. 13 [%s]: Mix-camera vs leader-follower", name),
			Note:    "per-group comparison: one leader+follower pair vs one dual-camera satellite",
			Columns: []string{"config", "compute(s)", "coverage(%)"},
		}
		lf := runSim(coverageCfg(sc, name, constellation.LeaderFollower, 2))
		t.AddRow("leader-follower", f1(detect.PaperTiling().FrameTimeS(detect.YoloN())), f2(lf.CoveragePct()))
		s := Series{Label: "mix-camera"}
		lfS := Series{Label: "leader-follower", X: []float64{0}, Y: []float64{lf.CoveragePct()}}
		for _, m := range models {
			delay := detect.PaperTiling().FrameTimeS(m)
			cfg := coverageCfg(sc, name, constellation.MixCamera, 1)
			cfg.ComputeDelayS = delay
			r := runSim(cfg)
			t.AddRow("mix-camera("+m.Name+")", f1(delay), f2(r.CoveragePct()))
			s.X = append(s.X, delay)
			s.Y = append(s.Y, r.CoveragePct())
		}
		t.Series = []Series{lfS, s}
		tables = append(tables, t)
	}
	return tables
}

// Fig14c reproduces the clustering ablation: coverage with and without
// target clustering per workload.
func Fig14c(sc Scale) Table {
	t := Table{
		Title: "Fig. 14c: Target clustering coverage gain",
		Note:  "clustering also cuts the captures (and follower actuation) spent per covered target",
		Columns: []string{"application", "w/o-clustering(%)", "w/-clustering(%)", "gain(%)",
			"captures-w/o", "captures-w/"},
	}
	with := Series{Label: "with"}
	without := Series{Label: "without"}
	for i, name := range appNames(sc) {
		cfg := coverageCfg(sc, name, constellation.LeaderFollower, 2)
		rw := runSim(cfg)
		cfg.NoClustering = true
		ro := runSim(cfg)
		gain := rw.CoveragePct() - ro.CoveragePct()
		t.AddRow(name, f2(ro.CoveragePct()), f2(rw.CoveragePct()), f2(gain),
			fi(ro.Captures), fi(rw.Captures))
		with.X, with.Y = append(with.X, float64(i)), append(with.Y, rw.CoveragePct())
		without.X, without.Y = append(without.X, float64(i)), append(without.Y, ro.CoveragePct())
	}
	t.Series = []Series{without, with}
	return t
}

// Fig15 reproduces the recall sensitivity: coverage degrades more slowly
// than recall because captured footprints include undetected neighbors.
func Fig15(sc Scale) []Table {
	recalls := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	var tables []Table
	for _, name := range appNames(sc) {
		t := Table{
			Title:   fmt.Sprintf("Fig. 15 [%s]: Coverage vs detector recall", name),
			Columns: []string{"recall", "coverage(%)", "normalized"},
		}
		s := Series{Label: "normalized"}
		base := -1.0
		var rows [][2]float64
		for _, rc := range recalls {
			cfg := coverageCfg(sc, name, constellation.LeaderFollower, 2)
			cfg.RecallOverride = rc
			r := runSim(cfg)
			rows = append(rows, [2]float64{rc, r.CoveragePct()})
			if rc == 1.0 {
				base = r.CoveragePct()
			}
		}
		for _, row := range rows {
			norm := 0.0
			if base > 0 {
				norm = row[1] / base
			}
			t.AddRow(f1(row[0]), f2(row[1]), f2(norm))
			s.X = append(s.X, row[0])
			s.Y = append(s.Y, norm)
		}
		t.Series = []Series{s}
		tables = append(tables, t)
	}
	return tables
}

// AblationClusterILPvsGreedy compares the ILP rectangle cover against the
// greedy cover inside full simulations (design decision 2 in DESIGN.md).
func AblationClusterILPvsGreedy(sc Scale) Table {
	t := Table{
		Title:   "Ablation: clustering ILP vs greedy cover",
		Columns: []string{"application", "ilp-cover(%)", "greedy-cover(%)"},
	}
	for _, name := range appNames(sc) {
		cfg := coverageCfg(sc, name, constellation.LeaderFollower, 2)
		ri := runSim(cfg)
		cfg.ClusterGreedy = true
		rg := runSim(cfg)
		t.AddRow(name, f2(ri.CoveragePct()), f2(rg.CoveragePct()))
		t.Series = append(t.Series, Series{
			Label: name,
			X:     []float64{0, 1},
			Y:     []float64{ri.CoveragePct(), rg.CoveragePct()},
		})
	}
	return t
}
