package experiments

import (
	"eagleeye/internal/constellation"
	"eagleeye/internal/dataset"
	"eagleeye/internal/geo"
	"eagleeye/internal/sim"
)

// The §4.7 future-work extensions implemented in this reproduction:
// multi-plane orbit design and recapture deprioritization.

// ExtOrbitPlanes sweeps the orbital-plane count at a fixed constellation
// size: as the constellation grows, spreading planes reduces ground-track
// overlap and improves coverage (§4.7 "Orbit Design").
func ExtOrbitPlanes(sc Scale) Table {
	t := Table{
		Title:   "Extension (§4.7): Coverage vs orbital planes",
		Note:    "fixed constellation size; planes spread ascending nodes",
		Columns: []string{"application", "planes", "coverage(%)"},
	}
	sats := sc.Sizes[len(sc.Sizes)-1]
	for _, name := range []string{"ships", "lakes-166k"} {
		s := Series{Label: name}
		for _, planes := range []int{1, 2, 4} {
			if planes > sats/2 {
				break
			}
			cfg := coverageCfg(sc, name, constellation.LeaderFollower, sats)
			cfg.Constellation.Planes = planes
			r := runSim(cfg)
			t.AddRow(name, fi(planes), f2(r.CoveragePct()))
			s.X = append(s.X, float64(planes))
			s.Y = append(s.Y, r.CoveragePct())
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// ExtRecapture measures the recapture extension on a revisit-heavy
// (near-polar) target field: with deduplication, followers stop wasting
// captures on targets already imaged.
func ExtRecapture(sc Scale) Table {
	t := Table{
		Title:   "Extension (§4.7): Recapture deprioritization",
		Note:    "near-polar targets are revisited every orbit",
		Columns: []string{"config", "coverage(%)", "captures", "suppressed-redetections"},
	}
	world := polarField(1500, sc.Seed)
	base := sim.Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           world,
		// The recapture registry is per leader group (no inter-group
		// crosslink exists to share it), so suppression needs each group
		// to re-overfly its *own* captures: a few full orbits.
		DurationS: sc.DurationS * 4,
		Seed:      sc.Seed,
	}
	off := runSim(base)
	on := base
	on.RecaptureDedup = true
	rOn := runSim(on)
	t.AddRow("without-dedup", f2(off.CoveragePct()), fi(off.Captures), fi(off.RecaptureSuppressed))
	t.AddRow("with-dedup", f2(rOn.CoveragePct()), fi(rOn.Captures), fi(rOn.RecaptureSuppressed))
	t.Series = []Series{
		{Label: "coverage", X: []float64{0, 1}, Y: []float64{off.CoveragePct(), rOn.CoveragePct()}},
		{Label: "captures", X: []float64{0, 1}, Y: []float64{float64(off.Captures), float64(rOn.Captures)}},
		{Label: "suppressed", X: []float64{0, 1}, Y: []float64{float64(off.RecaptureSuppressed), float64(rOn.RecaptureSuppressed)}},
	}
	return t
}

// polarField builds the revisit-heavy world used by ExtRecapture.
func polarField(n int, seed int64) *dataset.Set {
	rng := newRng(seed)
	s := &dataset.Set{Name: "polar-field"}
	for i := 0; i < n; i++ {
		s.Targets = append(s.Targets, dataset.Target{
			ID:    i,
			Pos:   geo.LatLon{Lat: 78 + rng.Float64()*4, Lon: rng.Float64()*360 - 180}.Normalize(),
			Value: 0.5 + 0.5*rng.Float64(),
		})
	}
	return s
}
