package experiments

import (
	"bytes"
	"strings"
	"testing"

	"eagleeye/internal/dataset"
	"eagleeye/internal/detect"
	"eagleeye/internal/sim"
)

// testScale keeps the unit tests fast; the benchmarks exercise
// DefaultScale and cmd/figures -full exercises FullScale.
func testScale() Scale {
	return Scale{
		DurationS:       5400, // 1.5 h
		Sizes:           []int{2, 4},
		FollowerTotal:   12,
		MaxSchedTargets: 30,
		Seed:            1,
		DenseApp:        false,
	}
}

func lastY(s *Series) float64 {
	if s == nil || len(s.Y) == 0 {
		return -1
	}
	return s.Y[len(s.Y)-1]
}

func TestFig03Shape(t *testing.T) {
	tbl := Fig03()
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	det := tbl.FindSeries("detect")
	e50 := tbl.FindSeries("err50")
	e90 := tbl.FindSeries("err90")
	if det == nil || e50 == nil || e90 == nil {
		t.Fatal("missing series")
	}
	// Detection stays high; volume error grows with GSD.
	for _, y := range det.Y {
		if y < 90 {
			t.Errorf("detection accuracy %v below 90%%", y)
		}
	}
	for i := 1; i < len(e50.Y); i++ {
		if e50.Y[i] <= e50.Y[i-1] {
			t.Error("50th error not increasing")
		}
		if e90.Y[i] <= e50.Y[i] {
			t.Error("90th percentile not above 50th")
		}
	}
}

func TestFig04LeftShape(t *testing.T) {
	tbl := Fig04Left()
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 cameras", len(tbl.Rows))
	}
}

func TestFig10Shape(t *testing.T) {
	tbl := Fig10()
	s := tbl.FindSeries("lookahead")
	if s == nil {
		t.Fatal("missing series")
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] >= s.Y[i-1] {
			t.Error("lookahead not decreasing with speed")
		}
	}
}

func TestFig14bShape(t *testing.T) {
	tbl := Fig14b()
	s := tbl.FindSeries("yolo_n")
	if s == nil {
		t.Fatal("missing series")
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] >= s.Y[i-1] {
			t.Error("frame time not decreasing with tile size")
		}
	}
	// A wide range of tile sizes meets the deadline.
	meets := 0
	for _, y := range s.Y {
		if y <= 13.7 {
			meets++
		}
	}
	if meets < len(s.Y)-2 {
		t.Errorf("only %d of %d tile sizes meet the deadline", meets, len(s.Y))
	}
}

func TestFig16Shape(t *testing.T) {
	tbl := Fig16()
	s := tbl.FindSeries("leader-utilization")
	if s == nil || len(s.Y) != 3 {
		t.Fatal("missing leader utilization series")
	}
	// Feasible at 1x and 2x, infeasible at 4x (the paper's claim).
	if s.Y[0] > 1 || s.Y[1] > 1 {
		t.Errorf("1x/2x should be feasible: %v", s.Y)
	}
	if s.Y[2] <= 1 {
		t.Errorf("4x should be infeasible: %v", s.Y)
	}
}

func TestClusteringClaim(t *testing.T) {
	tbl := ClusteringClaim(100, 1)
	if len(tbl.Rows) != 1 {
		t.Fatal("want one row")
	}
}

func TestFig12aShape(t *testing.T) {
	sc := testScale()
	tbl := Fig12a(sc)
	ilp := tbl.FindSeries("ilp")
	abb := tbl.FindSeries("abb")
	if ilp == nil || abb == nil || len(ilp.Y) == 0 || len(abb.Y) == 0 {
		t.Fatal("missing series")
	}
	// The AB&B baseline must blow up relative to the ILP at the largest
	// common target count.
	last := len(abb.Y) - 1
	if abb.Y[last] < 5*ilp.Y[last] && abb.Y[last] < 100 {
		t.Errorf("AB&B (%.1f ms) did not blow up vs ILP (%.1f ms) at %v targets",
			abb.Y[last], ilp.Y[last], abb.X[last])
	}
}

func TestFig14aShape(t *testing.T) {
	sc := testScale()
	tbl := Fig14a(sc)
	s := tbl.FindSeries("fraction")
	if s == nil || len(s.Y) < 4 {
		t.Fatal("missing series")
	}
	// Full coverage at small counts; miss ratio grows at large counts.
	if s.Y[0] < 0.99 {
		t.Errorf("single target not fully covered: %v", s.Y[0])
	}
	if lastY(s) >= s.Y[0] {
		t.Error("fraction did not fall with target count")
	}
}

func TestFig11aShapes(t *testing.T) {
	sc := testScale()
	tables := Fig11a(sc)
	if len(tables) != len(appNames(sc)) {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		lo := tbl.FindSeries("low-res-only")
		hi := tbl.FindSeries("high-res-only")
		ee := tbl.FindSeries("eagleeye-ilp")
		if lo == nil || hi == nil || ee == nil {
			t.Fatal("missing series")
		}
		// At the largest size: low-res >= eagleeye >= high-res.
		if lastY(ee) < lastY(hi) {
			t.Errorf("%s: EagleEye %.2f below high-res-only %.2f", tbl.Title, lastY(ee), lastY(hi))
		}
		if lastY(lo) < lastY(ee)-0.5 {
			t.Errorf("%s: EagleEye %.2f above its low-res ceiling %.2f", tbl.Title, lastY(ee), lastY(lo))
		}
	}
}

func TestFig12bShape(t *testing.T) {
	sc := testScale()
	tbl := Fig12b(sc)
	if len(tbl.Rows) != len(appNames(sc)) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig13Shape(t *testing.T) {
	sc := testScale()
	sc.Sizes = []int{2}
	tables := Fig13(sc)
	for _, tbl := range tables {
		mix := tbl.FindSeries("mix-camera")
		lf := tbl.FindSeries("leader-follower")
		if mix == nil || lf == nil {
			t.Fatal("missing series")
		}
		// Mix-camera coverage must not grow with compute time, and the
		// largest model should do no better than leader-follower.
		for i := 1; i < len(mix.Y); i++ {
			if mix.Y[i] > mix.Y[i-1]+0.5 {
				t.Errorf("%s: mix coverage grew with compute: %v", tbl.Title, mix.Y)
			}
		}
		if lastY(mix) > lf.Y[0]+0.5 {
			t.Errorf("%s: mix at 11.8 s (%v) above leader-follower (%v)", tbl.Title, lastY(mix), lf.Y[0])
		}
	}
}

func TestFig14cShape(t *testing.T) {
	sc := testScale()
	tbl := Fig14c(sc)
	with := tbl.FindSeries("with")
	without := tbl.FindSeries("without")
	if with == nil || without == nil {
		t.Fatal("missing series")
	}
	for i := range with.Y {
		if with.Y[i] < without.Y[i]-0.5 {
			t.Errorf("clustering hurt coverage: %v < %v", with.Y[i], without.Y[i])
		}
	}
}

func TestFig15Shape(t *testing.T) {
	sc := testScale()
	tables := Fig15(sc)
	for _, tbl := range tables {
		s := tbl.FindSeries("normalized")
		if s == nil || len(s.Y) == 0 {
			t.Fatal("missing series")
		}
		// Normalized coverage at recall r should sit at or above r (the
		// footprint-neighbor effect), within noise.
		for i, r := range s.X {
			if s.Y[i] < r-0.25 {
				t.Errorf("%s: normalized coverage %.2f at recall %.1f fell below recall", tbl.Title, s.Y[i], r)
			}
		}
	}
}

func TestAblationSlotCount(t *testing.T) {
	sc := testScale()
	tbl := AblationSlotCount(sc)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationPolish(t *testing.T) {
	sc := testScale()
	tbl := AblationPolish(sc)
	raw := tbl.FindSeries("raw")
	pol := tbl.FindSeries("polished")
	if raw == nil || pol == nil {
		t.Fatal("missing series")
	}
	for i := range raw.Y {
		if pol.Y[i] < raw.Y[i]-1e-9 {
			t.Errorf("polish reduced value at row %d: %v < %v", i, pol.Y[i], raw.Y[i])
		}
	}
}

func TestRender(t *testing.T) {
	tbl := Fig10()
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Fig. 10") || !strings.Contains(out, "max-lookahead") {
		t.Errorf("render output missing content:\n%s", out)
	}
	RenderAll(&buf, []Table{Fig03()})
	if !strings.Contains(buf.String(), "Fig. 3") {
		t.Error("RenderAll missing content")
	}
	empty := Table{Title: "empty"}
	empty.Render(&buf) // must not panic
}

func TestSimCacheHit(t *testing.T) {
	sc := testScale()
	cfg := coverageCfg(sc, "ships", 0, 2)
	a := runSim(cfg)
	b := runSim(cfg)
	if a != b {
		t.Error("identical configs not cached")
	}
}

func TestExtOrbitPlanes(t *testing.T) {
	sc := testScale()
	tbl := ExtOrbitPlanes(sc)
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, s := range tbl.Series {
		if len(s.Y) == 0 {
			t.Errorf("series %s empty", s.Label)
		}
	}
}

func TestExtRecapture(t *testing.T) {
	sc := testScale()
	tbl := ExtRecapture(sc)
	if len(tbl.Rows) != 2 {
		t.Fatal("want two rows")
	}
	sup := tbl.FindSeries("suppressed")
	if sup == nil || sup.Y[1] <= sup.Y[0] {
		t.Errorf("dedup did not suppress redetections: %+v", sup)
	}
	cov := tbl.FindSeries("coverage")
	if cov.Y[1] < cov.Y[0]-1 {
		t.Errorf("dedup lost coverage: %v", cov.Y)
	}
}

func TestRenderCSVAndSlug(t *testing.T) {
	tbl := Fig10()
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "target-speed(m/s),max-lookahead(km)") {
		t.Errorf("csv header wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != len(tbl.Rows)+1 {
		t.Errorf("csv rows = %d, want %d", strings.Count(out, "\n"), len(tbl.Rows)+1)
	}
	if slug := tbl.SlugTitle(); slug != "fig-10-max-lookahead-distance-vs-target-speed" {
		t.Errorf("slug = %q", slug)
	}
}

// TestCacheKeyDistinguishesTiling is a regression test for a cache-key
// collision: two configs differing only in the detector tiling used to map
// to the same memoized simulation result, so tiling sweeps could silently
// reuse the wrong run.
func TestCacheKeyDistinguishesTiling(t *testing.T) {
	cfg := sim.Config{App: &dataset.Set{Name: "ships"}}
	a := cacheKey(cfg)
	cfg.Tiling = detect.Tiling{FramePx: 4096, TilePx: 512}
	b := cacheKey(cfg)
	if a == b {
		t.Fatalf("cacheKey ignores tiling: %q", a)
	}
	cfg.Tiling = detect.Tiling{FramePx: 4096, TilePx: 1024}
	c := cacheKey(cfg)
	if b == c {
		t.Fatalf("cacheKey ignores tile size: %q", b)
	}
}
