package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"eagleeye/internal/adacs"
	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
	"eagleeye/internal/sched"
)

// prodILP returns the ILP scheduler with the same frame-rate bounds the
// simulator deploys (the leader must fit the frame deadline, §3.2).
func prodILP() sched.ILP {
	return sched.ILP{MIP: mip.Options{TimeLimit: 500 * time.Millisecond, MaxNodes: 200}}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// schedProblem builds a synthetic one-frame scheduling instance with m
// targets ahead of nFollowers trailing followers.
func schedProblem(m, nFollowers int, seed int64) *sched.Problem {
	rng := newRng(seed)
	p := &sched.Problem{
		Env: sched.Env{
			AltitudeM:      475e3,
			GroundSpeedMS:  7300,
			MaxOffNadirDeg: 11,
			Slew:           adacs.PaperSlew(),
		},
	}
	for i := 0; i < m; i++ {
		p.Targets = append(p.Targets, sched.Target{
			ID: i,
			Pos: geo.Point2{
				X: rng.Float64()*160e3 - 80e3,
				Y: 30e3 + rng.Float64()*100e3,
			},
			Value: 0.5 + 0.5*rng.Float64(),
		})
	}
	for i := 0; i < nFollowers; i++ {
		sub := geo.Point2{X: 0, Y: -float64(i+1) * 100e3}
		p.Followers = append(p.Followers, sched.Follower{SubPoint: sub, Boresight: sub})
	}
	return p
}

// Fig12a reproduces the scheduler-runtime comparison: the ILP scheduler
// stays fast and insensitive to the target count, while the AB&B baseline
// explodes and misses the frame deadline beyond ~19 targets.
func Fig12a(sc Scale) Table {
	t := Table{
		Title: "Fig. 12a: Scheduling runtime vs targets per low-res image",
		Note:  "AB&B capped at its 15 s anytime limit; '>' marks truncation",
		Columns: []string{"targets", "ilp(ms)", "greedy(ms)", "abb(ms)",
			"abb-optimal"},
	}
	ilpS := Series{Label: "ilp"}
	greedyS := Series{Label: "greedy"}
	abbS := Series{Label: "abb"}
	counts := []int{1, 3, 5, 8, 12, 16, 19, 25, 40, 60, 80, 100}
	abbLimit := 2 * time.Second
	for _, m := range counts {
		if m > sc.MaxSchedTargets {
			break
		}
		p := schedProblem(m, 1, sc.Seed+int64(m))

		tIlp := timeScheduler(prodILP(), p)
		tGreedy := timeScheduler(sched.Greedy{}, p)

		abbMS := "-"
		abbOpt := "-"
		if m <= 30 { // beyond this AB&B always truncates; skip the burn
			abb := sched.ABB{TimeLimit: abbLimit}
			start := time.Now()
			out, err := abb.Schedule(p)
			if err != nil {
				panic(err)
			}
			el := time.Since(start)
			if out.SolveStats.Optimal {
				abbMS = f1(ms(el))
			} else {
				abbMS = ">" + f1(ms(el))
			}
			abbOpt = fmt.Sprintf("%v", out.SolveStats.Optimal)
			abbS.X = append(abbS.X, float64(m))
			abbS.Y = append(abbS.Y, ms(el))
		}
		t.AddRow(fi(m), f1(ms(tIlp)), f1(ms(tGreedy)), abbMS, abbOpt)
		ilpS.X, ilpS.Y = append(ilpS.X, float64(m)), append(ilpS.Y, ms(tIlp))
		greedyS.X, greedyS.Y = append(greedyS.X, float64(m)), append(greedyS.Y, ms(tGreedy))
	}
	t.Series = []Series{ilpS, greedyS, abbS}
	return t
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func timeScheduler(s sched.Scheduler, p *sched.Problem) time.Duration {
	start := time.Now()
	if _, err := s.Schedule(p); err != nil {
		panic(err)
	}
	return time.Since(start)
}

// Fig14a reproduces the single-follower capture limit: below ~10 targets
// per image one follower covers everything; beyond, the miss ratio grows.
func Fig14a(sc Scale) Table {
	t := Table{
		Title:   "Fig. 14a: Fraction of targets one follower covers vs targets per image",
		Columns: []string{"targets", "captured", "fraction"},
	}
	s := Series{Label: "fraction"}
	for _, m := range []int{1, 3, 5, 8, 10, 15, 20, 30, 50, 75, 100} {
		if m > sc.MaxSchedTargets {
			break
		}
		// Average a few random frames for stability.
		const trials = 3
		captured := 0
		for k := 0; k < trials; k++ {
			p := schedProblem(m, 1, sc.Seed+int64(100*m+k))
			out, err := prodILP().Schedule(p)
			if err != nil {
				panic(err)
			}
			captured += len(out.CoveredIDs())
		}
		frac := float64(captured) / float64(trials*m)
		t.AddRow(fi(m), f1(float64(captured)/trials), f2(frac))
		s.X = append(s.X, float64(m))
		s.Y = append(s.Y, frac)
	}
	t.Series = []Series{s}
	return t
}

// AblationSlotCount sweeps the ILP's time-window discretization K
// (design decision 1 in DESIGN.md): value and runtime versus slot count.
func AblationSlotCount(sc Scale) Table {
	t := Table{
		Title:   "Ablation: ILP slot count (time-window discretization)",
		Columns: []string{"slots", "value", "time(ms)"},
	}
	p := schedProblem(24, 1, sc.Seed)
	s := Series{Label: "value"}
	for _, k := range []int{1, 2, 3, 4, 6} {
		solver := sched.ILP{SlotsPerTarget: k}
		start := time.Now()
		out, err := solver.Schedule(p)
		if err != nil {
			panic(err)
		}
		el := time.Since(start)
		t.AddRow(fi(k), f2(out.Value), f1(ms(el)))
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, out.Value)
	}
	t.Series = []Series{s}
	return t
}

// AblationPolish quantifies the post-ILP re-timing and insertion pass.
func AblationPolish(sc Scale) Table {
	t := Table{
		Title:   "Ablation: post-ILP polish (re-time + insert)",
		Columns: []string{"targets", "raw-ilp", "polished", "greedy"},
	}
	raw := Series{Label: "raw"}
	pol := Series{Label: "polished"}
	for _, m := range []int{8, 16, 24, 40} {
		if m > sc.MaxSchedTargets {
			break
		}
		p := schedProblem(m, 1, sc.Seed+int64(m))
		rawOut, err := sched.ILP{DisablePolish: true}.Schedule(p)
		if err != nil {
			panic(err)
		}
		polOut, err := sched.ILP{}.Schedule(p)
		if err != nil {
			panic(err)
		}
		gOut, err := sched.Greedy{}.Schedule(p)
		if err != nil {
			panic(err)
		}
		t.AddRow(fi(m), f2(rawOut.Value), f2(polOut.Value), f2(gOut.Value))
		raw.X, raw.Y = append(raw.X, float64(m)), append(raw.Y, rawOut.Value)
		pol.X, pol.Y = append(pol.X, float64(m)), append(pol.Y, polOut.Value)
	}
	t.Series = []Series{raw, pol}
	return t
}
