package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"time"

	"eagleeye/internal/cluster"
	"eagleeye/internal/detect"
	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
	"eagleeye/internal/sched"
)

// denseTruth scatters n targets uniformly over a w x h frame.
func denseTruth(n int, w, h float64, seed int64) []geo.Point2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point2, n)
	for i := range pts {
		pts[i] = pt((rng.Float64()-0.5)*w, (rng.Float64()-0.5)*h)
	}
	return pts
}

// slowSafe is a solver budget no test-scale solve ever exhausts, so
// wall-clock truncation cannot make results load-dependent (the identity
// test runs under -race, where everything is an order of magnitude
// slower).
var slowSafe = mip.Options{TimeLimit: time.Minute, MaxNodes: 100000}

func shardedPipeline(perShard int) *ShardedPipeline {
	tmpl := Pipeline{
		Detector:      detect.YoloN(),
		Tiling:        detect.PaperTiling(),
		UseClustering: true,
		// Dense shards must not enumerate cover candidates (quadratic):
		// force the grid fast path early.
		ClusterOpts:   cluster.Options{MaxCoverPoints: 256, MaxILPCandidates: 400, MIP: slowSafe},
		HighResSwathM: 10e3,
	}
	return &ShardedPipeline{
		Template:        tmpl,
		NewScheduler:    func() sched.Scheduler { return sched.ILP{State: sched.NewSolverState(), MIP: slowSafe} },
		NewClusterState: func() *cluster.SolverState { return cluster.NewSolverState() },
		PerShardTargets: perShard,
	}
}

// pool4 is a 4-worker intra-frame executor.
func pool4(n int, fn func(int)) {
	var wg sync.WaitGroup
	next := int32(-1)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func TestPlanShardsIdentityBelowCrossover(t *testing.T) {
	b := geo.NewRectCentered(geo.Point2{}, 100e3, 100e3)
	pl := PlanShards(b, 10e3, 4000, 4096, 0)
	if pl.Shards() != 1 {
		t.Fatalf("below crossover: %d shards, want 1", pl.Shards())
	}
	if pl.CellW != b.Width() || pl.CellH != b.Height() {
		t.Error("identity plan must keep the frame cell")
	}
}

func TestPlanShardsGeometry(t *testing.T) {
	b := geo.NewRectCentered(geo.Point2{}, 100e3, 100e3)
	const swath = 10e3
	pl := PlanShards(b, swath, 100000, 1000, 0)
	if pl.Shards() < 2 {
		t.Fatalf("dense frame not sharded: %+v", pl)
	}
	if pl.CellW < 2*swath || pl.CellH < 2*swath {
		t.Errorf("cell %v x %v below the 2x swath floor", pl.CellW, pl.CellH)
	}
	// The 100 km frame holds at most 5x5 cells of >= 20 km.
	if pl.NX > 5 || pl.NY > 5 {
		t.Errorf("grid %dx%d exceeds the geometric cap", pl.NX, pl.NY)
	}
	if got := PlanShards(b, swath, 100000, 1000, 6); got.Shards() > 6 {
		t.Errorf("MaxShards ignored: %d shards", got.Shards())
	}

	// Ownership partitions the frame: every point owned by exactly one
	// in-range shard whose cell contains it (modulo the boundary clamp).
	pts := denseTruth(5000, b.Width(), b.Height(), 3)
	for _, p := range pts {
		k := pl.Owner(p)
		if k < 0 || k >= pl.Shards() {
			t.Fatalf("owner %d out of range for %v", k, p)
		}
		c := pl.Cell(k)
		const eps = 1e-6
		if p.X < c.Min.X-eps || p.X > c.Max.X+eps || p.Y < c.Min.Y-eps || p.Y > c.Max.Y+eps {
			t.Fatalf("point %v owned by non-containing cell %v", p, c)
		}
	}
}

func TestShardedFrameEndToEnd(t *testing.T) {
	sp := shardedPipeline(500)
	defer sp.Close()
	truth := denseTruth(5000, 100e3, 100e3, 7)
	f, _ := frameAhead(truth)
	fols := []sched.Follower{
		{SubPoint: pt(0, -100e3), Boresight: pt(0, -100e3)},
		{SubPoint: pt(0, -120e3), Boresight: pt(0, -120e3)},
	}
	res, stats, err := sp.ProcessFrame(f, fols, env(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards < 2 {
		t.Fatalf("dense frame ran unsharded: %+v", stats)
	}
	if stats.Imbalance() < 1 {
		t.Errorf("imbalance %v < 1", stats.Imbalance())
	}
	if len(res.Detections) == 0 || len(res.Clusters) == 0 || res.Schedule.NumCaptures() == 0 {
		t.Fatalf("pipeline idle: %d det, %d clusters, %d captures",
			len(res.Detections), len(res.Clusters), res.Schedule.NumCaptures())
	}

	// Merged clusters cover the merged detections exactly once.
	pts := make([]geo.Point2, len(res.Detections))
	for i, d := range res.Detections {
		pts[i] = d.Pos
	}
	if err := cluster.Validate(pts, res.Clusters); err != nil {
		t.Errorf("merged clusters invalid: %v", err)
	}

	// TruthIndex survived the merge remap: a true positive sits within
	// one GSD (the detector's jitter) of its frame-truth position.
	for _, d := range res.Detections {
		if d.TruthIndex < 0 {
			continue
		}
		if d.TruthIndex >= len(truth) {
			t.Fatalf("truth index %d out of range", d.TruthIndex)
		}
		if d.Pos.Dist(truth[d.TruthIndex]) > 2*f.GSDM {
			t.Fatalf("detection %v too far from its truth %v", d.Pos, truth[d.TruthIndex])
		}
	}

	// The stitched schedule is executable for the merged problem: global
	// target ID == merged cluster index, exactly the simulator's
	// reconstruction.
	targets := make([]sched.Target, len(res.Clusters))
	for i, c := range res.Clusters {
		val := 0.0
		for _, m := range c.Members {
			val += res.Detections[m].Confidence
		}
		targets[i] = sched.Target{ID: i, Pos: c.Center(), Value: val}
	}
	prob := &sched.Problem{Env: env(), Targets: targets, Followers: fols}
	if err := sched.ValidateSchedule(prob, &res.Schedule); err != nil {
		t.Errorf("stitched schedule invalid: %v", err)
	}
	if res.CrosslinkBytes <= 0 {
		t.Error("crosslink traffic not accounted")
	}
}

// normalizeShard strips the timing fields that vary with machine load.
func normalizeShard(r Result) Result {
	r.SchedWall = 0
	r.DetectWall = 0
	r.ClusterWall = 0
	r.ClusterStats.PivotWall = 0
	r.Schedule.SolveStats.PivotWall = 0
	return r
}

// TestShardedFrameWorkersIdentity is the intra-frame determinism
// guarantee: for a fixed shard grid, a 4-worker intra-frame executor
// produces byte-identical results to the sequential one, on a 20k-target
// frame, across consecutive frames (exercising per-shard warm state).
// CI runs this under -race (make bench-shard-smoke).
func TestShardedFrameWorkersIdentity(t *testing.T) {
	seqP := shardedPipeline(1000)
	defer seqP.Close()
	parP := shardedPipeline(1000)
	parP.Parallel = pool4
	defer parP.Close()

	fols := []sched.Follower{
		{SubPoint: pt(0, -100e3), Boresight: pt(0, -100e3)},
		{SubPoint: pt(0, -115e3), Boresight: pt(0, -115e3)},
		{SubPoint: pt(0, -130e3), Boresight: pt(0, -130e3)},
	}
	for frame := 0; frame < 3; frame++ {
		truth := denseTruth(20000, 100e3, 100e3, int64(11+frame))
		f, _ := frameAhead(truth)
		seed := int64(1000 + frame)
		a, sa, err := seqP.ProcessFrame(f, fols, env(), seed)
		if err != nil {
			t.Fatal(err)
		}
		b, sb, err := parP.ProcessFrame(f, fols, env(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("frame %d: shard stats diverge: %+v vs %+v", frame, sa, sb)
		}
		if sa.Shards < 4 {
			t.Fatalf("frame %d: only %d shards; identity check needs real fan-out", frame, sa.Shards)
		}
		na, nb := normalizeShard(a), normalizeShard(b)
		if !reflect.DeepEqual(na, nb) {
			t.Fatalf("frame %d: sequential and 4-worker results diverge", frame)
		}
	}
}

// TestShardedSingleShardMatchesPlain pins the crossover contract: below
// the density threshold the sharded pipeline is the plain pipeline (one
// shard, full-frame bounds, same RNG stream), so enabling sharding in a
// config cannot change sparse-frame results.
func TestShardedSingleShardMatchesPlain(t *testing.T) {
	sp := shardedPipeline(1 << 20)
	defer sp.Close()
	truth := denseTruth(600, 100e3, 100e3, 21)
	f, fols := frameAhead(truth)
	const seed = 777
	got, stats, err := sp.ProcessFrame(f, fols, env(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 1 {
		t.Fatalf("sparse frame sharded: %+v", stats)
	}

	plain := Pipeline{
		Detector:      detect.YoloN(),
		Tiling:        detect.PaperTiling(),
		UseClustering: true,
		ClusterOpts:   cluster.Options{MaxCoverPoints: 256, MaxILPCandidates: 400, MIP: slowSafe, State: cluster.NewSolverState()},
		Scheduler:     sched.ILP{State: sched.NewSolverState(), MIP: slowSafe},
		HighResSwathM: 10e3,
		Rng:           rand.New(rand.NewSource(shardSeed(seed, 0))),
	}
	want, err := plain.ProcessFrame(f, fols, env())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Detections, want.Detections) {
		t.Error("detections diverge from the plain pipeline")
	}
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Error("clusters diverge from the plain pipeline")
	}
	if !reflect.DeepEqual(got.Schedule.Captures, want.Schedule.Captures) {
		t.Error("captures diverge from the plain pipeline")
	}
	// Value is re-accumulated in admission order by the stitch; only the
	// summation order differs.
	if math.Abs(got.Schedule.Value-want.Schedule.Value) > 1e-9*(1+math.Abs(want.Schedule.Value)) {
		t.Errorf("value %v != plain %v", got.Schedule.Value, want.Schedule.Value)
	}
	if got.CrosslinkBytes != want.CrosslinkBytes {
		t.Errorf("crosslink %v != plain %v", got.CrosslinkBytes, want.CrosslinkBytes)
	}
}
