// Package core implements the EagleEye operating model -- the paper's
// primary contribution (§3, §4). A LeaderPipeline is the software that runs
// on a leader satellite every frame: identify targets in the fresh
// low-resolution image with onboard ML (internal/detect), cluster nearby
// targets so one high-resolution capture covers several (internal/cluster),
// and compute an actuation-aware schedule for the trailing followers
// (internal/sched). The package also provides the moving-target lookahead
// analysis of §4.6 and the reliability fallbacks of §4.7.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"eagleeye/internal/cluster"
	"eagleeye/internal/comms"
	"eagleeye/internal/detect"
	"eagleeye/internal/geo"
	"eagleeye/internal/sched"
)

// Frame is one low-resolution image delivered to the pipeline, expressed
// in the leader's frame-local coordinates (X cross-track, Y along-track,
// origin at the frame center, which is the leader's nadir at capture time).
type Frame struct {
	// Truth holds the true target positions inside the footprint (the
	// simulator knows them; the detector only sees them statistically).
	Truth []geo.Point2
	// Bounds is the imaged footprint.
	Bounds geo.Rect
	// GSDM is the image ground sample distance.
	GSDM float64
}

// Pipeline is the leader's per-frame software stack.
type Pipeline struct {
	// Detector is the onboard ML model.
	Detector detect.Model
	// Tiling sets the frame decomposition (and hence compute latency).
	Tiling detect.Tiling
	// UseClustering enables the §4.1 target clustering step.
	UseClustering bool
	// ClusterOpts tunes the clusterer (greedy ablation, ILP budget).
	ClusterOpts cluster.Options
	// Scheduler computes follower actuation schedules.
	Scheduler sched.Scheduler
	// HighResSwathM is the follower footprint edge used for clustering.
	HighResSwathM float64
	// RecallOverride, when in (0,1], replaces the detector's recall
	// (the Fig. 15 sensitivity knob).
	RecallOverride float64
	// Timed enables per-stage wall measurement (DetectWall, ClusterWall).
	// SchedWall is always measured -- it is part of the paper's evaluation
	// -- but the cheaper stages only pay for clock reads when the caller
	// wants the observability breakdown.
	Timed bool
	// PriorityScale, when non-nil, rescales each detection's priority by
	// its ground position before clustering and scheduling. It is the
	// recapture/re-identification hook of §4.7: the caller returns a
	// value below 1 for positions already imaged (deprioritize) or above
	// 1 for targets known to have changed (prioritize). A scale of 0
	// removes the detection from scheduling entirely.
	PriorityScale func(geo.Point2) float64
	// Rng drives the statistical detector. Required.
	Rng *rand.Rand

	// Per-frame scratch reused across ProcessFrame calls (the simulator
	// calls one Pipeline per group for tens of thousands of frames).
	// Nothing in Result aliases these: detections copy positions, clusters
	// hold member indices and boxes, and schedules copy aim points. A
	// Pipeline is single-goroutine, as the Rng field already requires.
	scratchPts     []geo.Point2
	scratchTargets []sched.Target
	scratchWire    []byte
	// emptyCaps backs the no-detections Schedule; callers treat returned
	// schedules as read-only.
	emptyCaps [][]sched.Capture
}

// Result is everything one frame produced.
type Result struct {
	Detections []detect.Detection
	Clusters   []cluster.Cluster
	Schedule   sched.Schedule
	// ComputeS is the modeled onboard latency: ML inference over the
	// tiles. (Scheduling time is measured, not modeled: SchedWall.)
	ComputeS float64
	// SchedWall is the measured wall-clock scheduling latency (Fig. 12a).
	SchedWall time.Duration
	// DetectWall and ClusterWall are the measured stage latencies, populated
	// only when Pipeline.Timed is set.
	DetectWall  time.Duration
	ClusterWall time.Duration
	// ClusterMethod records whether the ILP or the greedy cover ran.
	ClusterMethod cluster.Method
	// ClusterStats carries the cover ILP's solver cost (zero when greedy).
	ClusterStats cluster.SolveStats
	// CrosslinkBytes is the schedule traffic to the followers.
	CrosslinkBytes float64
}

// ProcessFrame runs the full leader pipeline for one frame: detection,
// clustering, actuation-aware scheduling. followers are the group's
// follower states at schedule-start time (t = 0 of the returned schedule);
// env is the shared pass geometry.
func (p *Pipeline) ProcessFrame(f Frame, followers []sched.Follower, env sched.Env) (Result, error) {
	if p.Rng == nil {
		return Result{}, fmt.Errorf("core: pipeline needs an Rng")
	}
	if len(followers) == 0 {
		return Result{}, fmt.Errorf("core: no followers to schedule")
	}
	var res Result
	res.ComputeS = p.Tiling.FrameTimeS(p.Detector)

	model := p.Detector
	if p.RecallOverride > 0 && p.RecallOverride <= 1 {
		model.Recall = p.RecallOverride
	}
	var stageStart time.Time
	if p.Timed {
		stageStart = time.Now()
	}
	res.Detections = detect.Detect(p.Rng, model, f.Truth, f.Bounds, f.GSDM)
	if p.Timed {
		res.DetectWall = time.Since(stageStart)
	}
	if p.PriorityScale != nil {
		// Detection confidences double as scheduling priorities (§3.2), so
		// recapture deprioritization rescales them in place.
		for i := range res.Detections {
			res.Detections[i].Confidence *= p.PriorityScale(res.Detections[i].Pos)
		}
	}
	if len(res.Detections) == 0 {
		if len(p.emptyCaps) != len(followers) {
			p.emptyCaps = make([][]sched.Capture, len(followers))
		}
		res.Schedule = sched.Schedule{Captures: p.emptyCaps}
		return res, nil
	}

	// Build capture tasks: one per cluster (or one per detection when
	// clustering is off). Priorities are summed detection confidences
	// (§3.2, §4.1).
	targets := p.scratchTargets[:0]
	if p.UseClustering {
		pts := p.scratchPts[:0]
		for _, d := range res.Detections {
			pts = append(pts, d.Pos)
		}
		p.scratchPts = pts
		swath := p.HighResSwathM
		if swath <= 0 {
			swath = 10e3
		}
		// Shrink the cover box slightly so targets detected with jitter at
		// the box edge still land inside the true footprint.
		boxEdge := swath - 2*f.GSDM
		if boxEdge <= 0 {
			boxEdge = swath
		}
		if p.Timed {
			stageStart = time.Now()
		}
		cs, method, cstats, err := cluster.CoverStats(pts, boxEdge, boxEdge, p.ClusterOpts)
		if p.Timed {
			res.ClusterWall = time.Since(stageStart)
		}
		if err != nil {
			return Result{}, fmt.Errorf("core: clustering: %w", err)
		}
		res.Clusters = cs
		res.ClusterMethod = method
		res.ClusterStats = cstats
		for i, c := range cs {
			val := 0.0
			for _, m := range c.Members {
				val += res.Detections[m].Confidence
			}
			targets = append(targets, sched.Target{ID: i, Pos: c.Center(), Value: val})
		}
	} else {
		for i, d := range res.Detections {
			targets = append(targets, sched.Target{ID: i, Pos: d.Pos, Value: d.Confidence})
		}
	}

	p.scratchTargets = targets

	prob := &sched.Problem{Env: env, Targets: targets, Followers: followers}
	start := time.Now()
	schedule, err := p.Scheduler.Schedule(prob)
	res.SchedWall = time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("core: scheduling: %w", err)
	}
	res.Schedule = schedule
	p.scratchWire, res.CrosslinkBytes = scheduleWireBytes(p.scratchWire, schedule.Captures)
	return res, nil
}

// scheduleWireBytes accounts crosslink traffic with the actual wire
// encoding; the §5.3 2 KB bound is enforced by the encoder, so an
// oversized sequence is split into bound-sized messages for accounting.
// buf is reusable scratch, returned grown; falls back to the analytic
// message size when a chunk fails to encode.
func scheduleWireBytes(buf []byte, captures [][]sched.Capture) ([]byte, float64) {
	total := 0.0
	for fi, seq := range captures {
		for len(seq) > 0 {
			chunk := seq
			if max := sched.MaxCapturesPerMessage(); len(chunk) > max {
				chunk = seq[:max]
			}
			msg, err := sched.AppendSchedule(buf[:0], fi, chunk)
			buf = msg
			if err != nil {
				total += comms.ScheduleMessageBytes(len(chunk))
			} else {
				total += float64(len(msg))
			}
			seq = seq[len(chunk):]
		}
	}
	return buf, total
}

// CaptureFootprints maps the schedule's captures to ground footprints of
// the follower camera (edge swathM), in frame-local coordinates. The
// simulator intersects these with truth positions at capture time to score
// coverage -- including targets the detector missed but that happen to lie
// inside a captured image (the Fig. 15 effect).
func (r *Result) CaptureFootprints(swathM float64) []geo.Rect {
	var out []geo.Rect
	for _, seq := range r.Schedule.Captures {
		for _, c := range seq {
			out = append(out, geo.NewRectCentered(c.Aim, swathM, swathM))
		}
	}
	return out
}
