// Spatial sharding of the frame pipeline. At 10^5..10^6 targets per
// frame a single detect -> cluster -> sched solve dominates wall time; a
// ShardedPipeline tiles the frame footprint into along-track x
// cross-track cells, runs one full per-shard pipeline per cell, and
// merges results in fixed shard order -- the Workers 4==1 discipline
// (private accumulators, ordered merge) applied inside a frame. All
// shards share one frame-local tangent frame and see the same follower
// states, so per-shard captures already satisfy the off-nadir (C2) and
// aim==target (C3) constraints of the merged schedule; only slew
// transitions between captures from different shards (C1) are re-checked
// at stitch time, by greedy admission in time order.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"eagleeye/internal/cluster"
	"eagleeye/internal/detect"
	"eagleeye/internal/geo"
	"eagleeye/internal/sched"
)

// ShardPlan is the fixed spatial decomposition of one frame: an NX
// (cross-track) x NY (along-track) grid of equal cells over the frame
// bounds. The plan is a pure function of the frame bounds, the follower
// swath and the target count, so every worker -- and every worker count
// -- derives the identical grid.
type ShardPlan struct {
	Bounds geo.Rect
	NX, NY int
	CellW  float64
	CellH  float64
}

// Shards returns the cell count.
func (pl ShardPlan) Shards() int { return pl.NX * pl.NY }

// Owner returns the owning shard of a frame-local point: the row-major
// index of the cell whose half-open [min, min+cell) range contains it,
// clamped to the grid so boundary points (a target exactly on the frame's
// max edge, detection jitter marginally outside) are owned by the
// adjacent cell. The floor rule makes ownership unique and deterministic:
// a target in the halo band -- within one swath of a cell boundary, where
// a footprint could also be placed from the neighboring shard -- is still
// clustered and scheduled by exactly one shard, so covers stay feasible
// and no target is double-counted.
func (pl ShardPlan) Owner(p geo.Point2) int {
	cx := int(math.Floor((p.X - pl.Bounds.Min.X) / pl.CellW))
	if cx < 0 {
		cx = 0
	} else if cx >= pl.NX {
		cx = pl.NX - 1
	}
	cy := int(math.Floor((p.Y - pl.Bounds.Min.Y) / pl.CellH))
	if cy < 0 {
		cy = 0
	} else if cy >= pl.NY {
		cy = pl.NY - 1
	}
	return cy*pl.NX + cx
}

// Cell returns shard k's footprint rectangle.
func (pl ShardPlan) Cell(k int) geo.Rect {
	cx, cy := k%pl.NX, k/pl.NX
	min := geo.Point2{X: pl.Bounds.Min.X + float64(cx)*pl.CellW, Y: pl.Bounds.Min.Y + float64(cy)*pl.CellH}
	return geo.Rect{Min: min, Max: geo.Point2{X: min.X + pl.CellW, Y: min.Y + pl.CellH}}
}

// PlanShards tiles bounds into enough cells that each holds about
// perShard of the frame's targets, subject to a geometric floor: no cell
// edge shrinks below twice the follower swath, so a footprint candidate
// (edge <= swath) placed on a shard's own targets can reach at most the
// adjacent halo band, never span a whole cell. maxShards, when positive,
// additionally caps the cell count. Below the density crossover
// (targets <= perShard) the plan is the identity 1x1 grid.
func PlanShards(bounds geo.Rect, swathM float64, targets, perShard, maxShards int) ShardPlan {
	pl := ShardPlan{Bounds: bounds, NX: 1, NY: 1, CellW: bounds.Width(), CellH: bounds.Height()}
	if perShard <= 0 || targets <= perShard {
		return pl
	}
	minEdge := 2 * swathM
	if minEdge <= 0 {
		minEdge = 1
	}
	desired := (targets + perShard - 1) / perShard
	if maxShards > 0 && desired > maxShards {
		desired = maxShards
	}
	w, h := bounds.Width(), bounds.Height()
	for pl.NX*pl.NY < desired {
		growX := w/float64(pl.NX+1) >= minEdge
		growY := h/float64(pl.NY+1) >= minEdge
		if !growX && !growY {
			break
		}
		// Split the dimension with the larger current cell edge, keeping
		// cells near-square (ties go cross-track).
		if growX && (!growY || w/float64(pl.NX) >= h/float64(pl.NY)) {
			pl.NX++
		} else {
			pl.NY++
		}
	}
	pl.CellW = w / float64(pl.NX)
	pl.CellH = h / float64(pl.NY)
	return pl
}

// ShardFrameStats reports one sharded frame's decomposition.
type ShardFrameStats struct {
	Shards int
	// MaxTargets and MeanTargets describe the per-shard target load; their
	// ratio is the imbalance the shard metrics export.
	MaxTargets  int
	MeanTargets float64
	// ClusterFallbacks and SchedFallbacks count shards whose cover or
	// schedule came from a fallback path.
	ClusterFallbacks int
	SchedFallbacks   int
	// DroppedCaptures counts per-shard captures rejected by the stitch's
	// cross-shard slew-feasibility (C1) re-check.
	DroppedCaptures int
}

// Imbalance returns max/mean per-shard target load (1 = perfectly even,
// 0 = empty frame).
func (s ShardFrameStats) Imbalance() float64 {
	if s.MeanTargets <= 0 {
		return 0
	}
	return float64(s.MaxTargets) / s.MeanTargets
}

// shardUnit is one shard's private pipeline: its own scratch, RNG, warm
// cluster state and scheduler, so shards never share mutable state and
// the intra-frame parallel section stays race-free. Unit k always
// processes shard k, whichever worker runs it.
type shardUnit struct {
	pipe         Pipeline
	clusterState *cluster.SolverState
	src          rand.Source
	truth        []geo.Point2
	truthIdx     []int32 // shard-local detection truth index -> frame truth index
	res          Result
	err          error
}

// ShardedPipeline runs the leader pipeline sharded over a frame's
// footprint. Configure the exported fields before the first ProcessFrame
// call and do not change them afterwards; the struct itself is
// single-goroutine (parallelism happens only inside ProcessFrame, through
// the Parallel hook).
type ShardedPipeline struct {
	// Template is copied into every shard unit. Its Scheduler, Rng and
	// ClusterOpts.State fields are ignored: each unit gets its own from
	// NewScheduler / NewClusterState / the per-frame seed. PriorityScale
	// is re-read at every ProcessFrame call (the simulator's recapture
	// hook closes over the current frame), so it may change between
	// frames; it must then be safe for concurrent calls, since all shards
	// share it within a frame.
	Template Pipeline
	// NewScheduler builds one shard's scheduler. Required: schedulers
	// carry warm-start state and must not be shared across shards.
	NewScheduler func() sched.Scheduler
	// FreeScheduler, when non-nil, releases a unit scheduler on Close.
	FreeScheduler func(sched.Scheduler)
	// NewClusterState, when non-nil, builds one shard's persistent cover
	// solver state (warm LP basis across frames of the same shard index).
	NewClusterState  func() *cluster.SolverState
	FreeClusterState func(*cluster.SolverState)
	// PerShardTargets is the density crossover: frames with at most this
	// many targets stay on a single shard. 0 means 4096.
	PerShardTargets int
	// MaxShards, when positive, caps the grid size regardless of density.
	MaxShards int
	// Parallel runs fn(0..n-1), each exactly once, concurrently if it
	// wishes; nil runs them sequentially. The merge never depends on
	// completion order.
	Parallel func(n int, fn func(int))

	units   []*shardUnit
	owner   []int32
	visited []bool
	wire    []byte
}

func (sp *ShardedPipeline) perShard() int {
	if sp.PerShardTargets > 0 {
		return sp.PerShardTargets
	}
	return 4096
}

// shardSeed derives shard k's detector seed from the frame seed
// (splitmix-style, matching the simulator's frameSeed construction).
func shardSeed(frameSeed int64, k int) int64 {
	h := uint64(frameSeed)*0x9E3779B97F4A7C15 + uint64(k+1)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// ensureUnits grows the persistent unit list to n shards.
func (sp *ShardedPipeline) ensureUnits(n int) {
	for len(sp.units) < n {
		u := &shardUnit{pipe: sp.Template, src: rand.NewSource(1)}
		u.pipe.Scheduler = sp.NewScheduler()
		u.pipe.Rng = rand.New(u.src)
		u.pipe.ClusterOpts.State = nil
		if sp.NewClusterState != nil {
			u.clusterState = sp.NewClusterState()
			u.pipe.ClusterOpts.State = u.clusterState
		}
		sp.units = append(sp.units, u)
	}
}

// Close releases per-unit solver state through the Free hooks. The
// pipeline is unusable afterwards.
func (sp *ShardedPipeline) Close() {
	for _, u := range sp.units {
		if sp.FreeScheduler != nil && u.pipe.Scheduler != nil {
			sp.FreeScheduler(u.pipe.Scheduler)
		}
		if sp.FreeClusterState != nil && u.clusterState != nil {
			sp.FreeClusterState(u.clusterState)
		}
	}
	sp.units = nil
}

// ProcessFrame is the sharded twin of Pipeline.ProcessFrame: plan the
// grid, partition the truth by owner, run every shard's pipeline (in
// parallel when a Parallel hook is set), and merge in shard order. seed
// drives the per-shard detector RNGs; for a fixed configuration the
// result is a pure function of (frame, followers, env, seed), independent
// of the Parallel hook's concurrency.
func (sp *ShardedPipeline) ProcessFrame(f Frame, followers []sched.Follower, env sched.Env, seed int64) (Result, ShardFrameStats, error) {
	if sp.NewScheduler == nil {
		return Result{}, ShardFrameStats{}, fmt.Errorf("core: sharded pipeline needs a NewScheduler hook")
	}
	if len(followers) == 0 {
		return Result{}, ShardFrameStats{}, fmt.Errorf("core: no followers to schedule")
	}
	swath := sp.Template.HighResSwathM
	if swath <= 0 {
		swath = 10e3
	}
	pl := PlanShards(f.Bounds, swath, len(f.Truth), sp.perShard(), sp.MaxShards)
	n := pl.Shards()
	sp.ensureUnits(n)

	// Partition truth in input order: per-shard slices plus the local ->
	// frame index map that keeps Detection.TruthIndex meaningful after the
	// merge.
	if cap(sp.owner) < len(f.Truth) {
		sp.owner = make([]int32, len(f.Truth))
	}
	owner := sp.owner[:len(f.Truth)]
	stats := ShardFrameStats{Shards: n, MeanTargets: float64(len(f.Truth)) / float64(n)}
	for k := 0; k < n; k++ {
		u := sp.units[k]
		u.pipe.PriorityScale = sp.Template.PriorityScale
		u.truth = u.truth[:0]
		u.truthIdx = u.truthIdx[:0]
		u.res = Result{}
		u.err = nil
	}
	if n == 1 {
		sp.units[0].truth = append(sp.units[0].truth, f.Truth...)
	} else {
		for i, p := range f.Truth {
			owner[i] = int32(pl.Owner(p))
		}
		for i := range f.Truth {
			u := sp.units[owner[i]]
			u.truth = append(u.truth, f.Truth[i])
			u.truthIdx = append(u.truthIdx, int32(i))
		}
	}
	for k := 0; k < n; k++ {
		if l := len(sp.units[k].truth); l > stats.MaxTargets {
			stats.MaxTargets = l
		}
	}

	// Solve every shard on its private unit. Shard k images the cell
	// rectangle: detector false positives spread over the cell, not the
	// whole frame, so expected frame-level FP counts match the unsharded
	// pipeline.
	run := func(k int) {
		u := sp.units[k]
		u.src.Seed(shardSeed(seed, k))
		sub := Frame{Truth: u.truth, Bounds: pl.Cell(k), GSDM: f.GSDM}
		u.res, u.err = u.pipe.ProcessFrame(sub, followers, env)
	}
	if sp.Parallel != nil && n > 1 {
		sp.Parallel(n, run)
	} else {
		for k := 0; k < n; k++ {
			run(k)
		}
	}
	for k := 0; k < n; k++ {
		if err := sp.units[k].err; err != nil {
			return Result{}, stats, fmt.Errorf("core: shard %d: %w", k, err)
		}
	}

	// Ordered merge: concatenate detections and clusters in shard order,
	// remapping member/truth indices and target IDs into the merged
	// numbering (global target ID = merged cluster index, or merged
	// detection index without clustering -- exactly the reconstruction the
	// simulator's schedule validation performs).
	var res Result
	res.ComputeS = sp.Template.Tiling.FrameTimeS(sp.Template.Detector)
	nDet, nTgt := 0, 0
	for k := 0; k < n; k++ {
		r := &sp.units[k].res
		nDet += len(r.Detections)
		if sp.Template.UseClustering {
			nTgt += len(r.Clusters)
		} else {
			nTgt += len(r.Detections)
		}
	}
	res.Detections = make([]detect.Detection, 0, nDet)
	if sp.Template.UseClustering {
		res.Clusters = make([]cluster.Cluster, 0, nTgt)
	}
	vals := make([]float64, nTgt) // merged target ID -> value
	var caps []sched.Capture      // all shards' captures, merged IDs
	for k := 0; k < n; k++ {
		u := sp.units[k]
		r := &u.res
		detBase := len(res.Detections)
		tgtBase := len(res.Clusters)
		if !sp.Template.UseClustering {
			tgtBase = detBase
		}
		for _, d := range r.Detections {
			if n > 1 && d.TruthIndex >= 0 {
				d.TruthIndex = int(u.truthIdx[d.TruthIndex])
			}
			res.Detections = append(res.Detections, d)
			if !sp.Template.UseClustering {
				vals[len(res.Detections)-1] = d.Confidence
			}
		}
		if sp.Template.UseClustering {
			for ci, c := range r.Clusters {
				members := make([]int, len(c.Members))
				val := 0.0
				for mi, m := range c.Members {
					members[mi] = detBase + m
					val += r.Detections[m].Confidence
				}
				c.Members = members
				res.Clusters = append(res.Clusters, c)
				vals[tgtBase+ci] = val
			}
		}
		for fi, seq := range r.Schedule.Captures {
			for _, c := range seq {
				c.TargetID += tgtBase
				c.Follower = fi
				caps = append(caps, c)
			}
		}
		if r.ClusterMethod > res.ClusterMethod {
			res.ClusterMethod = r.ClusterMethod // most-degraded method wins
		}
		mergeClusterStats(&res.ClusterStats, r.ClusterStats)
		if r.ClusterStats.Fallback {
			stats.ClusterFallbacks++
		}
		if r.Schedule.SolveStats.Fallback {
			stats.SchedFallbacks++
		}
		mergeSchedStats(&res.Schedule.SolveStats, &r.Schedule.SolveStats, k == 0)
		res.DetectWall += r.DetectWall
		res.ClusterWall += r.ClusterWall
		if r.SchedWall > res.SchedWall {
			// Shards solve concurrently: the frame's scheduling latency is
			// the slowest shard, not the sum (wall fields are timing-only
			// and excluded from determinism comparisons).
			res.SchedWall = r.SchedWall
		}
	}

	// Stitch: captures sorted by (follower, time, shard order preserved by
	// stable sort), then greedily admitted under the cross-shard slew
	// constraint. C2/C3 already hold per shard -- all shards share the
	// frame's tangent coordinates and follower states.
	sort.SliceStable(caps, func(i, j int) bool {
		if caps[i].Follower != caps[j].Follower {
			return caps[i].Follower < caps[j].Follower
		}
		return caps[i].Time < caps[j].Time
	})
	prob := sched.Problem{Env: env, Followers: followers}
	res.Schedule.Captures = make([][]sched.Capture, len(followers))
	if cap(sp.visited) < nTgt {
		sp.visited = make([]bool, nTgt)
	}
	visited := sp.visited[:nTgt]
	for i := range visited {
		visited[i] = false
	}
	for i := 0; i < len(caps); {
		fi := caps[i].Follower
		j := i
		for j < len(caps) && caps[j].Follower == fi {
			j++
		}
		fol := followers[fi]
		prevAim, prevT := fol.Boresight, 0.0
		seq := res.Schedule.Captures[fi]
		for _, c := range caps[i:j] {
			if visited[c.TargetID] {
				stats.DroppedCaptures++
				continue
			}
			if c.Time < prevT || !prob.TransitionFeasible(fol, prevAim, prevT, c.Aim, c.Time) {
				stats.DroppedCaptures++
				continue
			}
			seq = append(seq, c)
			visited[c.TargetID] = true
			res.Schedule.Value += vals[c.TargetID]
			prevAim, prevT = c.Aim, c.Time
		}
		res.Schedule.Captures[fi] = seq
		i = j
	}

	// Re-account crosslink traffic on the stitched schedule.
	var bytes float64
	sp.wire, bytes = scheduleWireBytes(sp.wire, res.Schedule.Captures)
	res.CrosslinkBytes = bytes
	return res, stats, nil
}

// mergeClusterStats accumulates one shard's cover solver cost.
func mergeClusterStats(dst *cluster.SolveStats, s cluster.SolveStats) {
	dst.Nodes += s.Nodes
	dst.Iters += s.Iters
	dst.PivotWall += s.PivotWall
	if s.Gap > dst.Gap {
		dst.Gap = s.Gap
	}
	dst.WarmAttempted = dst.WarmAttempted || s.WarmAttempted
	dst.WarmAccepted = dst.WarmAccepted || s.WarmAccepted
	dst.Refactorizations += s.Refactorizations
	dst.RepairFails += s.RepairFails
	dst.Fallback = dst.Fallback || s.Fallback
}

// mergeSchedStats accumulates one shard's scheduling solver cost.
func mergeSchedStats(dst *sched.Stats, s *sched.Stats, first bool) {
	if first {
		dst.Algorithm = s.Algorithm
		dst.Optimal = s.Optimal
	} else {
		dst.Optimal = dst.Optimal && s.Optimal
	}
	dst.Nodes += s.Nodes
	dst.Iters += s.Iters
	dst.PivotWall += s.PivotWall
	if s.Gap > dst.Gap {
		dst.Gap = s.Gap
	}
	dst.Fallback = dst.Fallback || s.Fallback
	dst.WarmAttempted = dst.WarmAttempted || s.WarmAttempted
	dst.Warm = dst.Warm || s.Warm
	dst.WarmPruned += s.WarmPruned
	dst.WarmEarlyExit = dst.WarmEarlyExit || s.WarmEarlyExit
	dst.BasisReuses += s.BasisReuses
	dst.Refactorizations += s.Refactorizations
	dst.RepairFails += s.RepairFails
}
