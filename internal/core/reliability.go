package core

import (
	"fmt"

	"eagleeye/internal/geo"
	"eagleeye/internal/sched"
)

// Reliability fallbacks (§4.7): if a leader fails or the crosslink
// partitions, followers fall back to capturing nadir high-resolution
// images; if a follower fails, the leader simply schedules the survivors.

// NadirFallbackSchedule returns the schedule a follower group executes
// when no leader schedule arrives: each follower images its own nadir
// track at the frame cadence for the horizon. Captures carry synthetic
// negative target IDs (no detected targets are associated).
func NadirFallbackSchedule(followers []sched.Follower, env sched.Env, cadenceS, horizonS float64) sched.Schedule {
	out := sched.Schedule{Captures: make([][]sched.Capture, len(followers))}
	if cadenceS <= 0 || horizonS <= 0 {
		return out
	}
	id := -1
	for fi, f := range followers {
		for t := 0.0; t <= horizonS; t += cadenceS {
			aim := geo.Point2{X: f.SubPoint.X, Y: f.SubPoint.Y + env.GroundSpeedMS*t}
			out.Captures[fi] = append(out.Captures[fi], sched.Capture{
				TargetID: id,
				Time:     t,
				Follower: fi,
				Aim:      aim,
			})
			id--
		}
	}
	out.SolveStats = sched.Stats{Algorithm: "nadir-fallback", Optimal: false}
	return out
}

// DropFailedFollowers returns the subset of followers that are alive,
// preserving order, and an error if none survive.
func DropFailedFollowers(followers []sched.Follower, alive []bool) ([]sched.Follower, error) {
	if len(alive) != len(followers) {
		return nil, fmt.Errorf("core: alive mask length %d != followers %d", len(alive), len(followers))
	}
	var out []sched.Follower
	for i, f := range followers {
		if alive[i] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no operational followers")
	}
	return out, nil
}
