package core

import "math"

// Moving-target lookahead analysis (§4.6, Fig. 10). The lookahead distance
// D is the along-track gap between where the leader images a target and
// where a follower captures it. During the transit time D / Vsat the target
// moves Vtarget * D / Vsat; EagleEye requires that drift to stay within a
// slack fraction gamma of the high-resolution swath:
//
//	D / Vsat * Vtarget <= gamma * swath  =>  D <= gamma * swath * Vsat / Vtarget.

// MaxLookaheadM returns the maximum usable lookahead distance in meters
// for a target moving at targetSpeedMS, a satellite ground speed of
// satSpeedMS, a follower swath of swathM, and slack fraction gamma.
// A stationary target supports unbounded lookahead (+Inf).
func MaxLookaheadM(satSpeedMS, targetSpeedMS, swathM, gamma float64) float64 {
	if targetSpeedMS <= 0 {
		return math.Inf(1)
	}
	return gamma * swathM * satSpeedMS / targetSpeedMS
}

// LookaheadOK reports whether a lookahead distance D is usable for the
// given target speed under the paper's default slack.
func LookaheadOK(distM, satSpeedMS, targetSpeedMS, swathM, gamma float64) bool {
	return distM <= MaxLookaheadM(satSpeedMS, targetSpeedMS, swathM, gamma)
}

// PaperLookaheadParams returns the Fig. 10 parameters: a 500 km-altitude
// satellite at 7.5 km/s ground speed, a 10 km follower swath, gamma = 0.1.
func PaperLookaheadParams() (satSpeedMS, swathM, gamma float64) {
	return 7500, 10e3, 0.1
}
