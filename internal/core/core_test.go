package core

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/adacs"
	"eagleeye/internal/cluster"
	"eagleeye/internal/detect"
	"eagleeye/internal/geo"
	"eagleeye/internal/sched"
)

func pt(x, y float64) geo.Point2 { return geo.Point2{X: x, Y: y} }

func env() sched.Env {
	return sched.Env{
		AltitudeM:      475e3,
		GroundSpeedMS:  7300,
		MaxOffNadirDeg: 11,
		Slew:           adacs.PaperSlew(),
	}
}

func pipeline(rngSeed int64) *Pipeline {
	return &Pipeline{
		Detector:      detect.YoloN(),
		Tiling:        detect.PaperTiling(),
		UseClustering: true,
		Scheduler:     sched.ILP{},
		HighResSwathM: 10e3,
		Rng:           rand.New(rand.NewSource(rngSeed)),
	}
}

// frameAhead builds a frame whose center is 100 km ahead of the follower.
func frameAhead(truth []geo.Point2) (Frame, []sched.Follower) {
	// Frame-local coordinates are centered on the frame; the follower sits
	// 100 km behind the frame center.
	f := Frame{
		Truth:  truth,
		Bounds: geo.NewRectCentered(geo.Point2{}, 100e3, 100e3),
		GSDM:   30,
	}
	fol := []sched.Follower{{SubPoint: pt(0, -100e3), Boresight: pt(0, -100e3)}}
	return f, fol
}

func TestProcessFrameEmpty(t *testing.T) {
	p := pipeline(1)
	f, fol := frameAhead(nil)
	res, err := p.ProcessFrame(f, fol, env())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) != 0 || res.Schedule.NumCaptures() != 0 {
		t.Error("empty frame produced work")
	}
	if res.ComputeS <= 0 {
		t.Error("compute time not modeled")
	}
}

func TestProcessFrameEndToEnd(t *testing.T) {
	p := pipeline(2)
	truth := []geo.Point2{pt(-3e3, -20e3), pt(2e3, 0), pt(-1e3, 25e3), pt(35e3, 10e3)}
	f, fol := frameAhead(truth)
	res, err := p.ProcessFrame(f, fol, env())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) == 0 {
		t.Fatal("nothing detected")
	}
	if len(res.Clusters) == 0 {
		t.Fatal("nothing clustered")
	}
	if res.Schedule.NumCaptures() == 0 {
		t.Fatal("nothing scheduled")
	}
	// The schedule must be feasible for the real problem.
	var targets []sched.Target
	for i, c := range res.Clusters {
		val := 0.0
		for _, m := range c.Members {
			val += res.Detections[m].Confidence
		}
		targets = append(targets, sched.Target{ID: i, Pos: c.Center(), Value: val})
	}
	prob := &sched.Problem{Env: env(), Targets: targets, Followers: fol}
	if err := sched.ValidateSchedule(prob, &res.Schedule); err != nil {
		t.Fatalf("infeasible schedule: %v", err)
	}
	if res.CrosslinkBytes <= 0 || res.CrosslinkBytes > 2048*float64(len(fol)) {
		t.Errorf("crosslink bytes = %v", res.CrosslinkBytes)
	}
	if res.SchedWall <= 0 {
		t.Error("scheduling wall time not measured")
	}
}

func TestProcessFrameWithoutClustering(t *testing.T) {
	p := pipeline(3)
	p.UseClustering = false
	truth := []geo.Point2{pt(0, 0), pt(1e3, 1e3)}
	f, fol := frameAhead(truth)
	res, err := p.ProcessFrame(f, fol, env())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Error("clusters produced with clustering off")
	}
}

func TestClusteringReducesCaptures(t *testing.T) {
	// A tight knot of targets: clustering should need fewer captures than
	// one-per-detection.
	var truth []geo.Point2
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 12; i++ {
		truth = append(truth, pt(rng.Float64()*6e3-3e3, rng.Float64()*6e3-3e3))
	}
	withC := pipeline(5)
	res1, err := func() (Result, error) { f, fol := frameAhead(truth); return withC.ProcessFrame(f, fol, env()) }()
	if err != nil {
		t.Fatal(err)
	}
	withoutC := pipeline(5)
	withoutC.UseClustering = false
	res2, err := func() (Result, error) { f, fol := frameAhead(truth); return withoutC.ProcessFrame(f, fol, env()) }()
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Clusters) >= len(res2.Detections) {
		t.Errorf("clustering did not reduce: %d clusters vs %d detections",
			len(res1.Clusters), len(res2.Detections))
	}
}

func TestRecallOverride(t *testing.T) {
	truth := make([]geo.Point2, 400)
	rng := rand.New(rand.NewSource(6))
	for i := range truth {
		truth[i] = pt(rng.Float64()*90e3-45e3, rng.Float64()*90e3-45e3)
	}
	p := pipeline(7)
	p.RecallOverride = 0.2
	f, fol := frameAhead(truth)
	res, err := p.ProcessFrame(f, fol, env())
	if err != nil {
		t.Fatal(err)
	}
	tp := 0
	for _, d := range res.Detections {
		if d.TruthIndex >= 0 {
			tp++
		}
	}
	if frac := float64(tp) / float64(len(truth)); math.Abs(frac-0.2) > 0.07 {
		t.Errorf("recall override: detected %v, want ~0.2", frac)
	}
}

func TestPipelineValidation(t *testing.T) {
	p := pipeline(8)
	p.Rng = nil
	f, fol := frameAhead(nil)
	if _, err := p.ProcessFrame(f, fol, env()); err == nil {
		t.Error("nil rng accepted")
	}
	p = pipeline(9)
	if _, err := p.ProcessFrame(f, nil, env()); err == nil {
		t.Error("no followers accepted")
	}
}

func TestCaptureFootprints(t *testing.T) {
	res := Result{Schedule: sched.Schedule{Captures: [][]sched.Capture{
		{{Aim: pt(0, 0)}, {Aim: pt(5e3, 5e3)}},
		{{Aim: pt(-2e3, 1e3)}},
	}}}
	fps := res.CaptureFootprints(10e3)
	if len(fps) != 3 {
		t.Fatalf("footprints = %d", len(fps))
	}
	if !fps[0].Contains(pt(4.9e3, -4.9e3)) {
		t.Error("footprint extent wrong")
	}
}

func TestMaxLookaheadMatchesFig10(t *testing.T) {
	sat, swath, gamma := PaperLookaheadParams()
	// Ship at 14 m/s: ~500 km (paper's quoted value).
	ship := MaxLookaheadM(sat, 14, swath, gamma)
	if ship < 450e3 || ship > 600e3 {
		t.Errorf("ship lookahead = %v m, want ~500 km", ship)
	}
	// Plane at 250 m/s: ~28 km.
	plane := MaxLookaheadM(sat, 250, swath, gamma)
	if plane < 25e3 || plane > 35e3 {
		t.Errorf("plane lookahead = %v m, want ~30 km", plane)
	}
	// Static target: unbounded.
	if !math.IsInf(MaxLookaheadM(sat, 0, swath, gamma), 1) {
		t.Error("static target should be unbounded")
	}
	if !LookaheadOK(100e3, sat, 14, swath, gamma) {
		t.Error("100 km should be fine for ships")
	}
	if LookaheadOK(100e3, sat, 250, swath, gamma) {
		t.Error("100 km should be too far for planes")
	}
}

func TestNadirFallback(t *testing.T) {
	fol := []sched.Follower{
		{SubPoint: pt(0, 0), Boresight: pt(0, 0)},
		{SubPoint: pt(0, -100e3), Boresight: pt(0, -100e3)},
	}
	s := NadirFallbackSchedule(fol, env(), 13.7, 60)
	if len(s.Captures) != 2 {
		t.Fatalf("capture rows = %d", len(s.Captures))
	}
	for fi, seq := range s.Captures {
		if len(seq) < 4 {
			t.Errorf("follower %d got %d captures", fi, len(seq))
		}
		for _, c := range seq {
			// Nadir: aim equals the sub-point at capture time.
			want := pt(fol[fi].SubPoint.X, fol[fi].SubPoint.Y+7300*c.Time)
			if c.Aim.Dist(want) > 1 {
				t.Errorf("aim %v not nadir %v", c.Aim, want)
			}
			if c.TargetID >= 0 {
				t.Error("fallback capture with non-synthetic id")
			}
		}
	}
	empty := NadirFallbackSchedule(fol, env(), 0, 60)
	if empty.NumCaptures() != 0 {
		t.Error("zero cadence should produce no captures")
	}
}

func TestDropFailedFollowers(t *testing.T) {
	fol := []sched.Follower{{SubPoint: pt(0, 0)}, {SubPoint: pt(0, -1)}, {SubPoint: pt(0, -2)}}
	out, err := DropFailedFollowers(fol, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].SubPoint != pt(0, -2) {
		t.Errorf("wrong survivors: %+v", out)
	}
	if _, err := DropFailedFollowers(fol, []bool{false, false, false}); err == nil {
		t.Error("all-dead accepted")
	}
	if _, err := DropFailedFollowers(fol, []bool{true}); err == nil {
		t.Error("mismatched mask accepted")
	}
}

func TestClusterGreedyOption(t *testing.T) {
	p := pipeline(10)
	p.ClusterOpts = cluster.Options{ForceGreedy: true}
	truth := []geo.Point2{pt(0, 0), pt(1e3, 1e3), pt(30e3, 30e3)}
	f, fol := frameAhead(truth)
	res, err := p.ProcessFrame(f, fol, env())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) > 0 && res.ClusterMethod != cluster.MethodGreedy {
		t.Errorf("method = %v, want greedy", res.ClusterMethod)
	}
}
