package sched

import (
	"time"

	"eagleeye/internal/geo"
)

// ABB is the anytime branch-and-bound scheduler representing prior work
// (Chu et al. [27], discussed in §2.3): an exact depth-first search over
// capture sequences with an optimistic value bound. It matches or beats the
// ILP on small frames but its runtime grows exponentially with the target
// count -- the paper measures >15 s at just 19 targets -- which is the
// motivation for EagleEye's ILP formulation.
type ABB struct {
	// TimeLimit bounds the search; when it expires the best schedule found
	// so far is returned (the "anytime" property). 0 means 15 s.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored sequence nodes; 0 means 5e6.
	MaxNodes int
}

// Name implements Scheduler.
func (ABB) Name() string { return "abb" }

// abbSearch is the per-follower search state.
type abbSearch struct {
	p       *Problem
	f       Follower
	fi      int
	targets []Target
	windows [][2]float64

	deadline  time.Time
	maxNodes  int
	nodes     int
	truncated bool

	seq       []Capture // current partial sequence (DFS stack)
	bestSeq   []Capture
	bestValue float64
}

// Schedule implements Scheduler. Followers are scheduled sequentially, each
// over the targets the previous followers did not take (the bi-satellite
// system of [27] has a single follower, making this exact for N=1).
func (a ABB) Schedule(p *Problem) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, err
	}
	limit := a.TimeLimit
	if limit == 0 {
		limit = 15 * time.Second
	}
	maxNodes := a.MaxNodes
	if maxNodes == 0 {
		maxNodes = 5_000_000
	}
	deadline := time.Now().Add(limit)

	out := Schedule{Captures: make([][]Capture, len(p.Followers))}
	taken := make(map[int]bool)
	totalNodes := 0
	truncated := false
	for fi, f := range p.Followers {
		var avail []Target
		var windows [][2]float64
		for _, tgt := range p.Targets {
			if taken[tgt.ID] || tgt.Value <= 0 {
				continue
			}
			w0, w1, ok := p.Window(f, tgt)
			if !ok {
				continue
			}
			avail = append(avail, tgt)
			windows = append(windows, [2]float64{w0, w1})
		}
		s := &abbSearch{
			p: p, f: f, fi: fi,
			targets: avail, windows: windows,
			deadline: deadline, maxNodes: maxNodes,
		}
		captured := make([]bool, len(avail))
		s.dfs(0, f.Boresight, 0, captured, remainingValue(avail))
		out.Captures[fi] = s.bestSeq
		for _, c := range s.bestSeq {
			taken[c.TargetID] = true
		}
		totalNodes += s.nodes
		truncated = truncated || s.truncated
	}

	byID := targetByID(p)
	for _, id := range out.CoveredIDs() {
		out.Value += byID[id].Value
	}
	out.SolveStats = Stats{Algorithm: "abb", Nodes: totalNodes, Optimal: !truncated}
	return out, nil
}

func remainingValue(ts []Target) float64 {
	v := 0.0
	for _, t := range ts {
		v += t.Value
	}
	return v
}

// dfs explores extensions of the current sequence. t/aim are the follower's
// kinematic state; value the accumulated value; captured marks taken
// targets; optimism the total value of uncaptured targets (upper bound).
func (s *abbSearch) dfs(t float64, aim geo.Point2, value float64, captured []bool, optimism float64) {
	s.nodes++
	if value > s.bestValue {
		s.bestValue = value
		s.bestSeq = append([]Capture(nil), s.seq...)
	}
	if s.nodes >= s.maxNodes || (s.nodes%1024 == 0 && time.Now().After(s.deadline)) {
		s.truncated = true
		return
	}
	// Bound: even capturing every remaining target cannot beat the best.
	if value+optimism <= s.bestValue+1e-12 {
		return
	}
	for i, tgt := range s.targets {
		if captured[i] {
			continue
		}
		w := s.windows[i]
		if w[1] < t {
			continue
		}
		arr := s.p.EarliestArrival(s.f, aim, t, tgt.Pos)
		if arr < w[0] {
			arr = w[0]
		}
		if arr > w[1] {
			continue
		}
		captured[i] = true
		s.seq = append(s.seq, Capture{TargetID: tgt.ID, Time: arr, Follower: s.fi, Aim: tgt.Pos})
		s.dfs(arr, tgt.Pos, value+tgt.Value, captured, optimism-tgt.Value)
		s.seq = s.seq[:len(s.seq)-1]
		captured[i] = false
		if s.truncated {
			return
		}
	}
}
