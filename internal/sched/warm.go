package sched

import (
	"sync"

	"eagleeye/internal/geo"
)

// Temporal coherence: consecutive frames of one leader see nearly the same
// ground scene, so the previous frame's schedule is an excellent starting
// point for the current solve. A SolverState carries that coherence across
// Schedule calls: a pinned arena (so the MIP/LP workspaces -- including the
// simplex's saved basis -- survive between frames), a topology snapshot
// that lets buildModel skip constraint-row assembly when the time-expanded
// graph is unchanged, and the previous schedule's capture sequence, which
// is projected onto the current frame as the warm-start candidate. When
// projection fails (the scene changed too much, or there was no previous
// schedule), a greedy walk over the freshly built model graph produces the
// seed instead, so every nonempty frame still gets a warm candidate.
//
// A SolverState is single-owner state: it must only ever be used by one
// goroutine's Schedule calls, in frame order. The simulator keeps one per
// constellation group, which both matches the physical leader (one solver
// per leader, per the paper's §3.2 onboard design) and preserves the
// Workers 4≡1 determinism contract: group-private state means the solve
// sequence each state sees is independent of worker scheduling.

// SolverState is the per-leader persistent solver state. The zero value is
// not usable; construct with NewSolverState.
type SolverState struct {
	ar *ilpArena // pinned arena: model, rows, MIP + LP workspaces

	// Topology snapshot for frame-delta model construction. Constraint
	// rows depend only on the node list (follower, target-index pairs)
	// and the edge list, not on slot times or target values, so when
	// those match the previous build the rows (and adjacency lists) in
	// the arena are still exact and only the objective's cover values
	// need refreshing.
	snapNodes []slotNode
	snapEdges []ilpEdge
	snapNF    int
	snapNZ    int
	snapValid bool

	// Previous returned schedule (per-follower aim points, in order),
	// the projection source for the next frame's warm candidate.
	prevCaps [][]geo.Point2
	prevN    int

	// scratch for warm-candidate construction.
	warmX []float64
	taken []bool

	// Cumulative accounting, read by benches and tests.
	Projections    int // frames where projection of the previous schedule was attempted
	ProjectionHits int // projections that produced the warm candidate
	GreedySeeds    int // warm candidates built by the model-greedy walk
	RowReuses      int // builds that reused the previous frame's constraint rows
}

// NewSolverState returns a fresh per-leader solver state with its own
// pinned arena.
func NewSolverState() *SolverState {
	return &SolverState{ar: new(ilpArena)}
}

var statePool = sync.Pool{New: func() any { return NewSolverState() }}

// GetSolverState returns a logically fresh solver state from a pool,
// keeping the grown arena capacity of earlier uses. Callers that run many
// simulations (or one per group, per run) use the pool so per-run state
// construction stays out of the steady-state allocation budget.
func GetSolverState() *SolverState {
	st := statePool.Get().(*SolverState)
	st.Reset()
	return st
}

// PutSolverState returns a state to the pool. The state must not be used
// after the call.
func PutSolverState(st *SolverState) { statePool.Put(st) }

// Reset clears all decision-relevant state -- topology snapshot, previous
// schedule, saved LP basis, counters -- so a reused state behaves exactly
// like NewSolverState's (only the scratch capacity survives). This is what
// keeps pooled reuse deterministic: any state, fresh or recycled, drives
// identical solves.
func (st *SolverState) Reset() {
	st.snapValid = false
	st.prevN = 0
	st.prevCaps = st.prevCaps[:0]
	st.ar.mip.InvalidateBasis()
	st.Projections, st.ProjectionHits, st.GreedySeeds, st.RowReuses = 0, 0, 0, 0
}

// projRadiusM is how far (frame-local meters) a previous capture's aim
// point may sit from a current target and still be considered "the same"
// task during projection. Targets drift by the inter-frame ground-track
// advance; anything beyond footprint scale is a different scene.
const projRadiusM = 2500.0

// warmCandidate assembles the warm-start vector for the freshly built
// model: first by projecting the previous frame's schedule onto the
// current targets, then -- when projection misses -- by a greedy walk over
// the model graph. It returns nil/false when no capture could be seeded
// (the all-zero candidate prunes nothing and is not worth offering).
func (st *SolverState) warmCandidate(s *ILP, m *ilpModel, p *Problem) ([]float64, bool) {
	nz := len(m.targets)
	nv := m.ne + nz
	st.warmX = growFloats(st.warmX, nv)
	x := st.warmX[:nv]
	clear(x)
	st.taken = growBools(st.taken, nz)
	taken := st.taken
	clear(taken)

	met := s.MIP.Metrics
	projected := false
	if st.prevN > 0 {
		st.Projections++
		if met != nil {
			met.Projections.Inc()
		}
		if st.project(m, p, x, taken) {
			st.ProjectionHits++
			if met != nil {
				met.ProjectionHits.Inc()
			}
			projected = true
		} else {
			// A failed projection may have committed a partial route.
			clear(x)
			clear(taken)
		}
	}
	if !projected {
		st.GreedySeeds++
		st.greedySeed(m, p, x, taken)
	}
	for ti := 0; ti < nz; ti++ {
		if taken[ti] {
			return x, true
		}
	}
	return nil, false
}

// findEdgeTo returns the first edge in list whose destination node images
// target ti, or -1. Edge lists are in construction order, which is slot
// time order, so the first match is the earliest slot.
func findEdgeTo(m *ilpModel, list []int, ti int) int {
	for _, ei := range list {
		if m.nodes[m.edges[ei].to].ti == ti {
			return ei
		}
	}
	return -1
}

// project replays the previous schedule on the current model: each
// previous capture is matched to the nearest unused current target within
// projRadiusM, and the matched sequence is threaded through the model's
// edges. It is strict -- any unmatched capture or missing edge fails the
// whole projection -- because a half-projected route is usually worse than
// the greedy seed.
func (st *SolverState) project(m *ilpModel, p *Problem, x []float64, taken []bool) bool {
	for fi := 0; fi < len(p.Followers) && fi < len(st.prevCaps); fi++ {
		cur := -1
		for _, aim := range st.prevCaps[fi] {
			ti, best := -1, projRadiusM
			for j, tgt := range m.targets {
				if taken[j] {
					continue
				}
				if d := tgt.Pos.Dist(aim); d < best {
					ti, best = j, d
				}
			}
			if ti < 0 {
				return false
			}
			list := m.srcEdges[fi]
			if cur >= 0 {
				list = m.outEdges[cur]
			}
			ei := findEdgeTo(m, list, ti)
			if ei < 0 {
				return false
			}
			x[ei] = 1
			x[m.ne+ti] = 1
			taken[ti] = true
			cur = m.edges[ei].to
		}
	}
	return true
}

// greedySeed walks the model graph: each follower repeatedly takes the
// edge to the most valuable uncaptured target reachable from its current
// node (ties to the earliest slot, i.e. first in edge order). Unlike the
// standalone Greedy scheduler this stays inside the already-built model,
// so the seed is feasible by construction and allocation-free.
func (st *SolverState) greedySeed(m *ilpModel, p *Problem, x []float64, taken []bool) {
	for fi := range p.Followers {
		cur := -1
		for {
			list := m.srcEdges[fi]
			if cur >= 0 {
				list = m.outEdges[cur]
			}
			bestEdge, bestVal := -1, 0.0
			for _, ei := range list {
				ti := m.nodes[m.edges[ei].to].ti
				if taken[ti] {
					continue
				}
				if v := m.targets[ti].Value; v > bestVal {
					bestEdge, bestVal = ei, v
				}
			}
			if bestEdge < 0 {
				break
			}
			to := m.edges[bestEdge].to
			ti := m.nodes[to].ti
			x[bestEdge] = 1
			x[m.ne+ti] = 1
			taken[ti] = true
			cur = to
		}
	}
}

// remember snapshots the schedule just returned so the next frame can
// project it. Called with the post-polish schedule, so the remembered aim
// sequence is exactly what the followers will fly.
func (st *SolverState) remember(p *Problem, sc *Schedule) {
	nf := len(p.Followers)
	if cap(st.prevCaps) < nf {
		st.prevCaps = make([][]geo.Point2, nf)
	}
	st.prevCaps = st.prevCaps[:nf]
	st.prevN = 0
	for fi := 0; fi < nf; fi++ {
		buf := st.prevCaps[fi][:0]
		if fi < len(sc.Captures) {
			for _, c := range sc.Captures[fi] {
				buf = append(buf, c.Aim)
			}
		}
		st.prevCaps[fi] = buf
		st.prevN += len(buf)
	}
}

// topologyMatches reports whether the freshly computed node and edge lists
// are structurally identical to the snapshot, meaning the constraint rows
// in the arena are still exact.
func (st *SolverState) topologyMatches(m *ilpModel, nf int) bool {
	if !st.snapValid || st.snapNF != nf || st.snapNZ != len(m.targets) ||
		len(st.snapNodes) != len(m.nodes) || len(st.snapEdges) != len(m.edges) {
		return false
	}
	for i, n := range m.nodes {
		if sn := st.snapNodes[i]; sn.fi != n.fi || sn.ti != n.ti {
			return false
		}
	}
	for i, e := range m.edges {
		if st.snapEdges[i] != e {
			return false
		}
	}
	return true
}

// snapshotTopology records the node and edge lists of a full build.
func (st *SolverState) snapshotTopology(m *ilpModel, nf int) {
	st.snapNodes = append(st.snapNodes[:0], m.nodes...)
	st.snapEdges = append(st.snapEdges[:0], m.edges...)
	st.snapNF, st.snapNZ = nf, len(m.targets)
	st.snapValid = true
}
