package sched

import (
	"sync"

	"eagleeye/internal/mip"
)

// ilpArena is the per-solve scratch of the ILP scheduler: the model slices,
// the constraint-row arena, the MIP workspace, and the polish/extract
// working sets. The simulator runs one Schedule call per frame for tens of
// thousands of frames, so this is what keeps the scheduler's steady state
// allocation-free. Arenas are pooled (ILP is a value type shared across
// worker goroutines); an arena is owned by exactly one solve at a time and
// nothing in a returned Schedule aliases it.
type ilpArena struct {
	mip   mip.Workspace
	prob  mip.Problem
	model ilpModel

	targets []Target
	nodes   []slotNode
	edges   []ilpEdge

	// Flat adjacency storage: srcEdges/inEdges/outEdges inner slices are
	// carved from adj; the outer slices are reused.
	adj      []int
	deg      []int
	srcEdges [][]int
	inEdges  [][]int
	outEdges [][]int

	// seenTgt/seenGen implement the per-node successor-target dedup without
	// a map per node: seenTgt[ti] == seenGen means "already linked for the
	// node being expanded".
	seenTgt []int
	seenGen int

	// extract and polish scratch.
	nodeSeen  []bool
	ids       []int
	byID      map[int]Target
	covered   map[int]bool
	uncovered []Target
	times     []float64
	trial     []Capture
	rem       []Target
	taken     map[int]bool
}

// growSeen sizes the successor-dedup stamps for nz targets. New entries are
// zero, which never matches a generation (generations start at 1).
func (a *ilpArena) growSeen(nz int) {
	if cap(a.seenTgt) < nz {
		a.seenTgt = make([]int, nz)
		return
	}
	a.seenTgt = a.seenTgt[:nz]
}

// nextGen returns a fresh stamp generation.
func (a *ilpArena) nextGen() int {
	a.seenGen++
	return a.seenGen
}

// takenSet returns the arena's taken-ID set, emptied.
func (a *ilpArena) takenSet() map[int]bool {
	if a.taken == nil {
		a.taken = make(map[int]bool)
	} else {
		clear(a.taken)
	}
	return a.taken
}

// appendCapturedIDs appends every captured target ID (with repeats) to ids.
func appendCapturedIDs(ids []int, s *Schedule) []int {
	for _, seq := range s.Captures {
		for _, c := range seq {
			ids = append(ids, c.TargetID)
		}
	}
	return ids
}

var ilpArenas = sync.Pool{New: func() any { return new(ilpArena) }}

func getILPArena() *ilpArena  { return ilpArenas.Get().(*ilpArena) }
func putILPArena(a *ilpArena) { ilpArenas.Put(a) }

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growIntSlices(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}

// byIDMap returns the arena's id -> Target map rebuilt for p.
func (a *ilpArena) byIDMap(p *Problem) map[int]Target {
	if a.byID == nil {
		a.byID = make(map[int]Target, len(p.Targets))
	} else {
		clear(a.byID)
	}
	for _, t := range p.Targets {
		a.byID[t.ID] = t
	}
	return a.byID
}

// coveredSet returns the arena's covered-ID set, emptied.
func (a *ilpArena) coveredSet() map[int]bool {
	if a.covered == nil {
		a.covered = make(map[int]bool)
	} else {
		clear(a.covered)
	}
	return a.covered
}

// sumValues adds up byID values over the distinct IDs of ids (which it
// sorts in place), in ascending-ID order -- the same summation order as
// Schedule.CoveredIDs-based accounting, so float results are bit-identical.
func sumValues(ids []int, byID map[int]Target) float64 {
	insertionSortInts(ids)
	total := 0.0
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		total += byID[id].Value
	}
	return total
}

// insertionSortInts sorts small ID lists without the sort.Sort interface
// boxing; capture lists are at most a few dozen entries.
func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
