package sched

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"eagleeye/internal/geo"
)

// Wire format for crosslinked schedules (§5.3): the leader sends each
// follower its capture sequence as a compact binary message -- a magic
// header, the follower index, and one (time, aim) tuple per capture. The
// paper bounds each schedule result at 2 KB; EncodeSchedule enforces the
// bound so oversized schedules fail loudly instead of silently saturating
// the S-band link.

const (
	wireMagic   = 0x45594531 // "EYE1"
	wireHeader  = 4 + 2 + 2  // magic + follower + count
	wireCapture = 4 + 8 + 8 + 8
	// MaxScheduleBytes is the §5.3 per-schedule crosslink bound.
	MaxScheduleBytes = 2048
)

// EncodeSchedule serializes one follower's capture sequence.
func EncodeSchedule(followerIdx int, captures []Capture) ([]byte, error) {
	return AppendSchedule(nil, followerIdx, captures)
}

// AppendSchedule is EncodeSchedule appending to a caller-owned buffer
// (usually sliced to length zero), so per-frame encoders reuse one scratch
// buffer instead of allocating per message. On error dst is returned
// unchanged.
func AppendSchedule(dst []byte, followerIdx int, captures []Capture) ([]byte, error) {
	if followerIdx < 0 || followerIdx > math.MaxUint16 {
		return dst, fmt.Errorf("sched: follower index %d out of range", followerIdx)
	}
	if len(captures) > math.MaxUint16 {
		return dst, fmt.Errorf("sched: %d captures exceed format limit", len(captures))
	}
	size := wireHeader + wireCapture*len(captures)
	if size > MaxScheduleBytes {
		return dst, fmt.Errorf("sched: schedule of %d captures is %d bytes, above the %d-byte crosslink bound",
			len(captures), size, MaxScheduleBytes)
	}
	for _, c := range captures {
		if c.TargetID < math.MinInt32 || c.TargetID > math.MaxInt32 {
			return dst, fmt.Errorf("sched: target id %d out of wire range", c.TargetID)
		}
	}
	out := dst
	out = binary.BigEndian.AppendUint32(out, wireMagic)
	out = binary.BigEndian.AppendUint16(out, uint16(followerIdx))
	out = binary.BigEndian.AppendUint16(out, uint16(len(captures)))
	for _, c := range captures {
		out = binary.BigEndian.AppendUint32(out, uint32(int32(c.TargetID)))
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(c.Time))
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(c.Aim.X))
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(c.Aim.Y))
	}
	return out, nil
}

// DecodeSchedule parses a wire message back into the follower index and
// capture sequence.
func DecodeSchedule(msg []byte) (followerIdx int, captures []Capture, err error) {
	if len(msg) < wireHeader {
		return 0, nil, fmt.Errorf("sched: message of %d bytes too short", len(msg))
	}
	r := bytes.NewReader(msg)
	var magic uint32
	if err := binary.Read(r, binary.BigEndian, &magic); err != nil {
		return 0, nil, err
	}
	if magic != wireMagic {
		return 0, nil, fmt.Errorf("sched: bad magic %#x", magic)
	}
	var fi, count uint16
	if err := binary.Read(r, binary.BigEndian, &fi); err != nil {
		return 0, nil, err
	}
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return 0, nil, err
	}
	want := wireHeader + wireCapture*int(count)
	if len(msg) != want {
		return 0, nil, fmt.Errorf("sched: message is %d bytes, want %d for %d captures",
			len(msg), want, count)
	}
	captures = make([]Capture, 0, count)
	for k := 0; k < int(count); k++ {
		var id int32
		var tm, x, y float64
		if err := binary.Read(r, binary.BigEndian, &id); err != nil {
			return 0, nil, err
		}
		if err := binary.Read(r, binary.BigEndian, &tm); err != nil {
			return 0, nil, err
		}
		if err := binary.Read(r, binary.BigEndian, &x); err != nil {
			return 0, nil, err
		}
		if err := binary.Read(r, binary.BigEndian, &y); err != nil {
			return 0, nil, err
		}
		captures = append(captures, Capture{
			TargetID: int(id),
			Time:     tm,
			Follower: int(fi),
			Aim:      geo.Point2{X: x, Y: y},
		})
	}
	return int(fi), captures, nil
}

// EncodeAll serializes a whole schedule: one message per follower.
func EncodeAll(s *Schedule) ([][]byte, error) {
	out := make([][]byte, 0, len(s.Captures))
	for fi, seq := range s.Captures {
		msg, err := EncodeSchedule(fi, seq)
		if err != nil {
			return nil, err
		}
		out = append(out, msg)
	}
	return out, nil
}

// MaxCapturesPerMessage returns the largest capture sequence that fits the
// crosslink bound.
func MaxCapturesPerMessage() int {
	return (MaxScheduleBytes - wireHeader) / wireCapture
}
