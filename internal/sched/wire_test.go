package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eagleeye/internal/geo"
)

func TestWireRoundTrip(t *testing.T) {
	captures := []Capture{
		{TargetID: 3, Time: 1.25, Follower: 1, Aim: pt(-3e3, 45e3)},
		{TargetID: 7, Time: 4.5, Follower: 1, Aim: pt(2e3, 60e3)},
		{TargetID: -2, Time: 9.75, Follower: 1, Aim: pt(0, 75e3)},
	}
	msg, err := EncodeSchedule(1, captures)
	if err != nil {
		t.Fatal(err)
	}
	fi, got, err := DecodeSchedule(msg)
	if err != nil {
		t.Fatal(err)
	}
	if fi != 1 {
		t.Errorf("follower = %d", fi)
	}
	if len(got) != len(captures) {
		t.Fatalf("captures = %d", len(got))
	}
	for i := range got {
		if got[i] != captures[i] {
			t.Errorf("capture %d: %+v != %+v", i, got[i], captures[i])
		}
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed) % (MaxCapturesPerMessage() + 1)
		captures := make([]Capture, n)
		for i := range captures {
			captures[i] = Capture{
				TargetID: rng.Intn(1000) - 100,
				Time:     rng.Float64() * 30,
				Follower: 2,
				Aim:      pt(rng.Float64()*100e3-50e3, rng.Float64()*100e3),
			}
		}
		msg, err := EncodeSchedule(2, captures)
		if err != nil {
			return false
		}
		if len(msg) > MaxScheduleBytes {
			return false
		}
		fi, got, err := DecodeSchedule(msg)
		if err != nil || fi != 2 || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != captures[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWireSizeBound(t *testing.T) {
	// The paper's 2 KB bound admits ~72 captures -- comfortably above the
	// ~100-cluster worst case split across followers.
	max := MaxCapturesPerMessage()
	if max < 50 {
		t.Errorf("max captures per message = %d, unexpectedly small", max)
	}
	big := make([]Capture, max+1)
	for i := range big {
		big[i] = Capture{TargetID: i, Aim: pt(0, 0)}
	}
	if _, err := EncodeSchedule(0, big); err == nil {
		t.Error("oversized schedule accepted")
	}
	fits := make([]Capture, max)
	for i := range fits {
		fits[i] = Capture{TargetID: i, Aim: pt(0, 0)}
	}
	msg, err := EncodeSchedule(0, fits)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg) > MaxScheduleBytes {
		t.Errorf("message %d bytes exceeds bound", len(msg))
	}
}

func TestWireDecodeErrors(t *testing.T) {
	if _, _, err := DecodeSchedule([]byte{1, 2}); err == nil {
		t.Error("short message accepted")
	}
	msg, _ := EncodeSchedule(0, []Capture{{TargetID: 1, Aim: pt(0, 0)}})
	// Corrupt magic.
	bad := append([]byte(nil), msg...)
	bad[0] ^= 0xFF
	if _, _, err := DecodeSchedule(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body.
	if _, _, err := DecodeSchedule(msg[:len(msg)-4]); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestWireEncodeErrors(t *testing.T) {
	if _, err := EncodeSchedule(-1, nil); err == nil {
		t.Error("negative follower accepted")
	}
	if _, err := EncodeSchedule(1<<17, nil); err == nil {
		t.Error("huge follower accepted")
	}
	if _, err := EncodeSchedule(0, []Capture{{TargetID: 1 << 40}}); err == nil {
		t.Error("out-of-range target id accepted")
	}
}

func TestEncodeAll(t *testing.T) {
	// End to end: schedule a real frame, encode per-follower messages,
	// decode them, and recover identical sequences.
	targets := mkTargets([]geo.Point2{pt(-3e3, 45e3), pt(2e3, 60e3), pt(-1e3, 75e3)}, 1)
	p := frameProblem(targets, 2)
	out, err := ILP{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := EncodeAll(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("messages = %d, want one per follower", len(msgs))
	}
	for fi, msg := range msgs {
		gotFi, got, err := DecodeSchedule(msg)
		if err != nil {
			t.Fatal(err)
		}
		if gotFi != fi {
			t.Errorf("follower %d decoded as %d", fi, gotFi)
		}
		if len(got) != len(out.Captures[fi]) {
			t.Errorf("follower %d: %d captures decoded, want %d", fi, len(got), len(out.Captures[fi]))
		}
		for i := range got {
			if got[i] != out.Captures[fi][i] {
				t.Errorf("follower %d capture %d mismatch", fi, i)
			}
		}
	}
}
