package sched

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"

	"eagleeye/internal/lp"
	"eagleeye/internal/mip"
)

// ILP is EagleEye's actuation-aware scheduler (§4.3): the generalized
// traveling-salesman formulation solved as an integer linear program.
//
// The continuous-time problem is discretized into a time-expanded graph:
// each (follower, target) imaging window contributes a small number of
// candidate capture slots; an edge connects two slots of one follower when
// the Eq. 1 actuation constraint admits pointing from the first target to
// the second in the elapsed time. Binary edge variables then describe one
// pointing route per follower (a path from its virtual source), and a
// covered variable per target collects the value of distinct captures --
// exactly the paper's objective with its Hit-set union. The LP relaxation
// of this flow-like model is near-integral, which is what makes millisecond
// solves possible where the AB&B baseline needs seconds (§6.1).
//
// Two practical reductions keep frame-rate solves cheap and are ablated in
// the benchmarks: the slot count per window adapts to the target count, and
// very dense frames are pre-trimmed to the most valuable MaxTargets targets
// (one follower can physically capture only ~15-17 targets during a pass,
// so the trim does not bind the optimum in practice).
type ILP struct {
	// SlotsPerTarget fixes the discretization; 0 adapts to problem size.
	SlotsPerTarget int
	// MaxSuccessors caps outgoing edges per slot node; 0 adapts.
	MaxSuccessors int
	// MaxTargets pre-trims dense frames to the top-valued targets;
	// 0 means 30 (scaled by the follower count).
	MaxTargets int
	// MIP forwards solver limits.
	MIP mip.Options
	// DisablePolish skips the post-solve re-timing and insertion pass
	// (see polish.go); used by the ablation benchmarks.
	DisablePolish bool
	// State, when non-nil, carries solver state across frames of one
	// leader (see warm.go): a pinned arena whose LP basis survives
	// between solves, frame-delta model construction, and warm-start
	// candidates projected from the previous schedule. The holder must
	// call Schedule from a single goroutine, in frame order.
	State *SolverState
	// AggressiveWarm selects mip.Options.WarmAggressive for warm solves:
	// the candidate is installed as the root incumbent and the search
	// exits as soon as a bound proves it optimal. Fastest, but may return
	// a different optimum among exact ties than a cold solve.
	AggressiveWarm bool
	// fallback is used if the MIP fails to produce any solution.
	fallback Greedy
}

// Name implements Scheduler.
func (ILP) Name() string { return "ilp" }

// slotNode is one candidate capture: follower fi images target (index ti in
// the trimmed slice) at time t.
type slotNode struct {
	fi, ti int
	t      float64
}

// ilpEdge connects a source (from == -1-fi) or slot node to a later slot
// node of the same follower.
type ilpEdge struct{ from, to int }

// ilpModel is the assembled time-expanded flow ILP, kept for extraction and
// for white-box tests.
type ilpModel struct {
	targets  []Target
	nodes    []slotNode
	edges    []ilpEdge
	srcEdges [][]int // per follower: edge indices out of its source
	outEdges [][]int // per node: edge indices out
	prob     *mip.Problem
	ne       int // edge-variable count; cover variables follow
}

// Schedule implements Scheduler. Multi-follower instances whose joint
// time-expanded model would be large are decomposed sequentially: follower
// i is scheduled over the targets followers 0..i-1 did not take. Followers
// trail one another along the track, so the decomposition mirrors their
// physical precedence; the joint model is kept for small instances where
// coordinated splits matter most.
func (s ILP) Schedule(p *Problem) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, err
	}
	if len(p.Followers) > 1 && s.estimateNodes(p) > 90 {
		return s.scheduleSequential(p)
	}
	return s.scheduleJoint(p)
}

// estimateNodes predicts the joint model's slot-node count.
func (s ILP) estimateNodes(p *Problem) int {
	k := s.SlotsPerTarget
	if k <= 0 {
		k = 3
	}
	n := 0
	for _, f := range p.Followers {
		for _, tgt := range p.Targets {
			if tgt.Value <= 0 {
				continue
			}
			if _, _, ok := p.Window(f, tgt); ok {
				n += k
			}
		}
	}
	return n
}

// scheduleSequential runs the single-follower ILP per follower in trail
// order, removing captured targets between solves.
func (s ILP) scheduleSequential(p *Problem) (Schedule, error) {
	ar := getILPArena()
	defer putILPArena(ar)
	out := Schedule{Captures: make([][]Capture, len(p.Followers))}
	taken := ar.takenSet()
	stats := Stats{Algorithm: "ilp", Optimal: true}
	// Sub-solves run cold: they share neither shape nor scene with the
	// cross-frame state, so threading it through would only churn the
	// snapshot. The warm pipeline applies to the joint path.
	sj := s
	sj.State = nil
	for fi, f := range p.Followers {
		rem := ar.rem[:0]
		for _, t := range p.Targets {
			if !taken[t.ID] {
				rem = append(rem, t)
			}
		}
		ar.rem = rem
		sub := &Problem{Env: p.Env, Targets: rem, Followers: []Follower{f}}
		subOut, err := sj.scheduleJoint(sub)
		if err != nil {
			return Schedule{}, err
		}
		for _, c := range subOut.Captures[0] {
			c.Follower = fi
			out.Captures[fi] = append(out.Captures[fi], c)
			taken[c.TargetID] = true
		}
		stats.Nodes += subOut.SolveStats.Nodes
		stats.Iters += subOut.SolveStats.Iters
		stats.Gap += subOut.SolveStats.Gap
		stats.PivotWall += subOut.SolveStats.PivotWall
		stats.Fallback = stats.Fallback || subOut.SolveStats.Fallback
		stats.WarmAttempted = stats.WarmAttempted || subOut.SolveStats.WarmAttempted
		stats.Refactorizations += subOut.SolveStats.Refactorizations
		stats.RepairFails += subOut.SolveStats.RepairFails
		// Sequential decomposition is itself a heuristic, so the joint
		// optimum is not certified even if each sub-solve is.
		stats.Optimal = false
	}
	if !s.DisablePolish {
		polish(ar, p, &out)
	}
	ar.ids = appendCapturedIDs(ar.ids[:0], &out)
	out.Value = sumValues(ar.ids, ar.byIDMap(p))
	out.SolveStats = stats
	return out, nil
}

// scheduleJoint builds and solves the full time-expanded model.
func (s ILP) scheduleJoint(p *Problem) (Schedule, error) {
	st := s.State
	var ar *ilpArena
	if st != nil {
		// Cross-frame state pins its own arena so the MIP and LP
		// workspaces (including the saved simplex basis) persist between
		// frames instead of being shuffled through the pool.
		ar = st.ar
	} else {
		ar = getILPArena()
		defer putILPArena(ar)
	}
	m := s.buildModel(ar, p)
	if len(m.nodes) == 0 {
		if st != nil {
			st.prevN = 0 // nothing to project onto the next frame
		}
		return Schedule{
			Captures:   make([][]Capture, len(p.Followers)),
			SolveStats: Stats{Algorithm: "ilp", Optimal: true},
		}, nil
	}
	opts := s.MIP
	if opts.TimeLimit == 0 {
		// The leader must finish scheduling well inside the frame cadence
		// (§3.2); bound each solve and fall back to the incumbent or to
		// greedy beyond it.
		opts.TimeLimit = 2 * time.Second
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 4000
	}
	if st != nil {
		opts.ReuseBasis = true
		if wx, ok := st.warmCandidate(&s, m, p); ok {
			opts.WarmStart = wx
			opts.WarmAggressive = s.AggressiveWarm
		}
	}
	sol, err := ar.mip.SolveOpts(m.prob, opts)
	if err != nil {
		return Schedule{}, fmt.Errorf("sched: ilp solve: %w", err)
	}
	if sol.Status != mip.StatusOptimal && sol.Status != mip.StatusFeasible {
		// The empty schedule is always feasible, so this indicates solver
		// distress (limits with no incumbent); fall back to greedy.
		out, ferr := s.fallback.Schedule(p)
		if ferr != nil {
			return Schedule{}, ferr
		}
		out.SolveStats.Algorithm = "ilp(greedy-fallback)"
		out.SolveStats.Fallback = true
		if st != nil {
			st.remember(p, &out)
		}
		return out, nil
	}
	out := m.extract(ar, p, sol.X)
	if !s.DisablePolish {
		polish(ar, p, &out)
	}
	out.SolveStats = Stats{
		Algorithm:        "ilp",
		Nodes:            sol.Nodes,
		Optimal:          sol.Status == mip.StatusOptimal,
		Iters:            sol.Iters,
		Gap:              sol.Gap,
		PivotWall:        sol.PivotWall,
		WarmAttempted:    sol.WarmAttempted,
		Warm:             sol.WarmAccepted,
		WarmPruned:       sol.WarmPruned,
		WarmEarlyExit:    sol.WarmEarlyExit,
		BasisReuses:      sol.BasisReuses,
		Refactorizations: sol.Refactorizations,
		RepairFails:      sol.RepairFails,
	}
	if st != nil {
		st.remember(p, &out)
	}
	return out, nil
}

// edgeCost is the objective coefficient of one routing edge: a small
// constant penalty that discourages valueless motion, plus a much smaller
// earlier-slot preference that makes tie-optima generically unique.
// Without the time term, routes that capture the same targets through
// different discrete slots are exactly tied, and which one the
// branch-and-bound returns depends on the simplex pivot path -- so a
// warm-started solve (which starts phase 2 from a crashed or saved basis
// instead of the all-slack corner) could return a different, equally
// optimal schedule than a cold one. The weights are layered: one slot
// granule (a few hundred ms) moves the objective by ~3e-9, above the
// solver's 1e-9 comparison tolerances, while a single edge's slot
// preference across a 60 s window (6e-7) stays below the flat motion
// penalty, which in turn sits orders of magnitude below target values.
//
// The uniqueness is generic, not absolute: two route ORDERS over the same
// slots whose slot-time sums happen to agree within the solver tolerances
// remain an unresolvable tie, and warm and cold solves may then return
// different equal-objective schedules. Raising the weights far enough to
// separate such collisions would push the penalties into the range of
// real value differences, so the residual is accepted: the warm-start
// contract is equal objective and feasibility everywhere (see
// FuzzWarmStartDifferential), with byte-identical simulation results
// verified on the fixed benchmark workloads (TestWarmStartResultIdentity).
func edgeCost(slotT float64) float64 {
	const tie = 1e-6  // per-edge: discourage valueless motion
	const tieT = 1e-8 // per-second: prefer the earlier of tied slots
	return -tie - tieT*slotT
}

// buildModel assembles the time-expanded flow ILP for the problem inside
// the arena. The returned model (and the problem it points to) borrow the
// arena's storage and are valid only until the arena's next solve.
func (s ILP) buildModel(ar *ilpArena, p *Problem) *ilpModel {
	m := &ar.model
	*m = ilpModel{targets: s.trimTargets(ar, p)}
	if len(m.targets) == 0 {
		return m
	}
	k := s.SlotsPerTarget
	if k <= 0 {
		switch {
		case len(m.targets) <= 8:
			k = 4
		case len(m.targets) <= 30:
			k = 3
		default:
			k = 2
		}
	}
	nodes := ar.nodes[:0]
	for fi, f := range p.Followers {
		for ti, tgt := range m.targets {
			w0, w1, ok := p.Window(f, tgt)
			if !ok {
				continue
			}
			for q := 0; q < k; q++ {
				t := w0 + (w1-w0)*(float64(q)+0.5)/float64(k)
				nodes = append(nodes, slotNode{fi: fi, ti: ti, t: t})
			}
		}
	}
	ar.nodes, m.nodes = nodes, nodes
	if len(m.nodes) == 0 {
		return m
	}
	slices.SortFunc(m.nodes, func(a, b slotNode) int {
		if a.t != b.t {
			return cmp.Compare(a.t, b.t)
		}
		if a.ti != b.ti {
			return cmp.Compare(a.ti, b.ti)
		}
		return cmp.Compare(a.fi, b.fi)
	})

	maxSucc := s.MaxSuccessors
	if maxSucc <= 0 {
		if len(m.nodes) <= 60 {
			maxSucc = len(m.nodes)
		} else {
			maxSucc = 10
		}
	}

	edges := ar.edges[:0]
	for vi, v := range m.nodes {
		f := p.Followers[v.fi]
		if p.TransitionFeasible(f, f.Boresight, 0, m.targets[v.ti].Pos, v.t) {
			edges = append(edges, ilpEdge{from: -1 - v.fi, to: vi})
		}
	}
	nz := len(m.targets)
	ar.growSeen(nz)
	for ui, u := range m.nodes {
		// For each successor target, keep only the earliest feasible slot:
		// arriving sooner never forecloses later transitions (the polish
		// pass re-times to earliest anyway), and this keeps the edge count
		// linear in the node count. Fan-out is capped at maxSucc distinct
		// successor targets. The stamp array replaces a per-node map.
		gen := ar.nextGen()
		linked := 0
		for vi := ui + 1; vi < len(m.nodes) && linked < maxSucc; vi++ {
			v := m.nodes[vi]
			if v.fi != u.fi || v.ti == u.ti || v.t <= u.t || ar.seenTgt[v.ti] == gen {
				continue
			}
			f := p.Followers[u.fi]
			if p.TransitionFeasible(f, m.targets[u.ti].Pos, u.t, m.targets[v.ti].Pos, v.t) {
				edges = append(edges, ilpEdge{from: ui, to: vi})
				ar.seenTgt[v.ti] = gen
				linked++
			}
		}
	}
	ar.edges, m.edges = edges, edges
	m.ne = len(m.edges)
	nv := m.ne + nz
	prob := &ar.prob

	if st := s.State; st != nil && st.topologyMatches(m, len(p.Followers)) {
		// Frame-delta fast path: the time-expanded graph is structurally
		// identical to the previous build in this arena, so the constraint
		// rows, variable bounds, integrality markers and adjacency lists
		// are all still exact -- only slot times (already refreshed in
		// m.nodes) and target values changed. Refresh the objective (edge
		// costs depend on slot times) and reuse everything else.
		st.RowReuses++
		for e := 0; e < m.ne; e++ {
			prob.C[e] = edgeCost(m.nodes[m.edges[e].to].t)
		}
		for j := 0; j < nz; j++ {
			prob.C[m.ne+j] = m.targets[j].Value
		}
		m.srcEdges = ar.srcEdges
		m.outEdges = ar.outEdges
		m.prob = prob
		return m
	}

	// Variables: one binary per edge, then one continuous cover variable
	// per target (integral at any optimum with binary edges).
	prob.C = growFloats(prob.C, nv)
	prob.Lower = growFloats(prob.Lower, nv)
	prob.Upper = growFloats(prob.Upper, nv)
	prob.Integer = growBools(prob.Integer, nv)
	for e := 0; e < m.ne; e++ {
		prob.C[e] = edgeCost(m.nodes[m.edges[e].to].t)
		prob.Lower[e] = 0
		// No explicit upper bound: every edge enters some node, and that
		// node's in(v) <= 1 row already caps the edge at 1. The
		// bounded-variable simplex makes the explicit [0,1] bound free
		// (no tableau row), but benchmarks show the open bound still
		// pivots faster here -- the row cap prices whole slot groups at
		// once where per-edge bound flips walk them one at a time.
		prob.Upper[e] = math.Inf(1)
		prob.Integer[e] = true
	}
	for j := 0; j < nz; j++ {
		prob.C[m.ne+j] = m.targets[j].Value
		prob.Lower[m.ne+j] = 0
		prob.Upper[m.ne+j] = 1
		prob.Integer[m.ne+j] = false
	}

	// Adjacency lists carved from one flat arena: count degrees, carve
	// zero-length blocks with exact capacity, then append in edge order
	// (identical list order to the old per-list append build).
	nn := len(m.nodes)
	nf := len(p.Followers)
	deg := growInts(ar.deg, nf+2*nn)
	clear(deg)
	ar.deg = deg
	for _, e := range m.edges {
		if e.from < 0 {
			deg[-1-e.from]++
		} else {
			deg[nf+nn+e.from]++
		}
		deg[nf+e.to]++
	}
	ar.adj = growInts(ar.adj, 2*len(m.edges))
	ar.srcEdges = growIntSlices(ar.srcEdges, nf)
	ar.inEdges = growIntSlices(ar.inEdges, nn)
	ar.outEdges = growIntSlices(ar.outEdges, nn)
	off := 0
	carve := func(n int) []int {
		blk := ar.adj[off : off : off+n]
		off += n
		return blk
	}
	for fi := 0; fi < nf; fi++ {
		ar.srcEdges[fi] = carve(deg[fi])
	}
	for vi := 0; vi < nn; vi++ {
		ar.inEdges[vi] = carve(deg[nf+vi])
		ar.outEdges[vi] = carve(deg[nf+nn+vi])
	}
	inEdges := ar.inEdges
	m.srcEdges = ar.srcEdges
	m.outEdges = ar.outEdges
	for ei, e := range m.edges {
		if e.from < 0 {
			m.srcEdges[-1-e.from] = append(m.srcEdges[-1-e.from], ei)
		} else {
			m.outEdges[e.from] = append(m.outEdges[e.from], ei)
		}
		inEdges[e.to] = append(inEdges[e.to], ei)
	}

	// Constraint rows are emitted directly in CSR form -- each row appends
	// its few nonzeros and closes with EndRow, so no dense row of width nv
	// is ever materialized and the same builder scales from tens to tens
	// of thousands of variables. The within-row coefficient sets are
	// identical to the dense rows this replaced, and neither engine is
	// sensitive to within-row emission order, so solves are unchanged.
	prob.ResetSparseRows()
	// in(v) <= 1 and out(v) - in(v) <= 0. The conservation row is emitted
	// even for nodes with no inbound edges: otherwise their outbound edges
	// would be unconstrained and flow could spontaneously start mid-graph,
	// covering targets through chains no follower actually flies.
	for vi := range m.nodes {
		if len(inEdges[vi]) > 0 {
			for _, ei := range inEdges[vi] {
				prob.Coef(ei, 1)
			}
			prob.EndRow(lp.LE, 1)
		}
		if len(m.outEdges[vi]) > 0 {
			for _, ei := range m.outEdges[vi] {
				prob.Coef(ei, 1)
			}
			for _, ei := range inEdges[vi] {
				prob.Coef(ei, -1)
			}
			prob.EndRow(lp.LE, 0)
		}
	}
	// One route per follower.
	for fi := range p.Followers {
		if len(m.srcEdges[fi]) > 0 {
			for _, ei := range m.srcEdges[fi] {
				prob.Coef(ei, 1)
			}
			prob.EndRow(lp.LE, 1)
		}
	}
	// z_j <= total inflow into any slot of target j.
	for j := 0; j < nz; j++ {
		prob.Coef(m.ne+j, 1)
		for vi, v := range m.nodes {
			if v.ti != j {
				continue
			}
			for _, ei := range inEdges[vi] {
				prob.Coef(ei, -1)
			}
		}
		prob.EndRow(lp.LE, 0)
	}
	m.prob = prob
	if st := s.State; st != nil {
		st.snapshotTopology(m, len(p.Followers))
	}
	return m
}

// extract walks the selected edges into per-follower capture sequences.
func (m *ilpModel) extract(ar *ilpArena, p *Problem, x []float64) Schedule {
	out := Schedule{Captures: make([][]Capture, len(p.Followers))}
	used := func(ei int) bool { return x[ei] > 0.5 }
	seen := growBools(ar.nodeSeen, len(m.nodes))
	ar.nodeSeen = seen
	clear(seen)
	for fi := range p.Followers {
		cur := -1
		for _, ei := range m.srcEdges[fi] {
			if used(ei) {
				cur = m.edges[ei].to
				break
			}
		}
		for cur >= 0 && !seen[cur] {
			seen[cur] = true
			v := m.nodes[cur]
			out.Captures[fi] = append(out.Captures[fi], Capture{
				TargetID: m.targets[v.ti].ID,
				Time:     v.t,
				Follower: fi,
				Aim:      m.targets[v.ti].Pos,
			})
			next := -1
			for _, ei := range m.outEdges[cur] {
				if used(ei) {
					next = m.edges[ei].to
					break
				}
			}
			cur = next
		}
	}
	ar.ids = appendCapturedIDs(ar.ids[:0], &out)
	out.Value = sumValues(ar.ids, ar.byIDMap(p))
	return out
}

// trimTargets drops targets with no window for any follower and, for very
// dense frames, keeps only the MaxTargets most valuable ones. The returned
// slice borrows arena storage.
func (s ILP) trimTargets(ar *ilpArena, p *Problem) []Target {
	out := ar.targets[:0]
	for _, tgt := range p.Targets {
		if tgt.Value <= 0 {
			continue
		}
		for _, f := range p.Followers {
			if _, _, ok := p.Window(f, tgt); ok {
				out = append(out, tgt)
				break
			}
		}
	}
	ar.targets = out
	limit := s.MaxTargets
	if limit <= 0 {
		limit = 30
	}
	// Allow proportionally more targets when there are more followers.
	limit *= len(p.Followers)
	if len(out) > limit {
		slices.SortFunc(out, func(a, b Target) int {
			if a.Value != b.Value {
				return cmp.Compare(b.Value, a.Value)
			}
			return cmp.Compare(a.ID, b.ID)
		})
		out = out[:limit]
	}
	// Restore a deterministic spatial order (by along-track position).
	slices.SortFunc(out, func(a, b Target) int {
		if a.Pos.Y != b.Pos.Y {
			return cmp.Compare(a.Pos.Y, b.Pos.Y)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}
