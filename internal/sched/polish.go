package sched

import (
	"cmp"
	"slices"
)

// polish improves a feasible schedule without changing the scheduling
// algorithm's structural decisions:
//
//  1. re-time: each follower's capture sequence is shifted to its earliest
//     feasible times (optimal for a fixed order by an exchange argument),
//     recovering slack that the ILP's slot discretization leaves behind; and
//  2. insert: uncovered targets are greedily inserted into sequence
//     positions where the suffix can still be re-timed feasibly.
//
// The result is always feasible and never worth less than the input. This
// is how the implementation bridges the gap between the paper's
// continuous-time ILP formulation (OR-Tools) and our discretized one; the
// ablation bench BenchmarkAblationPolish quantifies the step. All working
// sets come from the arena so the per-frame polish pass stays off the heap.
func polish(ar *ilpArena, p *Problem, s *Schedule) {
	byID := ar.byIDMap(p)
	covered := ar.coveredSet()
	for _, seq := range s.Captures {
		for _, c := range seq {
			covered[c.TargetID] = true
		}
	}

	// Pass 1: earliest re-timing per follower.
	for fi := range s.Captures {
		retime(ar, p, p.Followers[fi], s.Captures[fi], byID)
	}

	// Pass 2: greedy insertion of uncovered targets, most valuable first.
	uncovered := ar.uncovered[:0]
	for _, t := range p.Targets {
		if !covered[t.ID] && t.Value > 0 {
			uncovered = append(uncovered, t)
		}
	}
	ar.uncovered = uncovered
	slices.SortFunc(uncovered, func(a, b Target) int {
		if a.Value != b.Value {
			return cmp.Compare(b.Value, a.Value)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	for _, tgt := range uncovered {
		for fi := range s.Captures {
			if tryInsert(ar, p, p.Followers[fi], &s.Captures[fi], fi, tgt, byID) {
				covered[tgt.ID] = true
				break
			}
		}
	}

	// Recompute value over distinct targets.
	ar.ids = appendCapturedIDs(ar.ids[:0], s)
	s.Value = sumValues(ar.ids, byID)
}

// retime rewrites capture times to the earliest feasible schedule for the
// given order. It returns false (leaving seq untouched) if the order is
// infeasible, which polish treats as "keep the original times".
func retime(ar *ilpArena, p *Problem, f Follower, seq []Capture, byID map[int]Target) bool {
	times := growFloats(ar.times, len(seq))
	ar.times = times
	t := 0.0
	aim := f.Boresight
	for i, c := range seq {
		tgt, ok := byID[c.TargetID]
		if !ok {
			return false
		}
		w0, w1, ok := p.Window(f, tgt)
		if !ok {
			return false
		}
		arr := p.EarliestArrival(f, aim, t, tgt.Pos)
		if arr < w0 {
			arr = w0
		}
		if arr > w1 {
			return false
		}
		times[i] = arr
		t, aim = arr, tgt.Pos
	}
	for i := range seq {
		seq[i].Time = times[i]
	}
	return true
}

// tryInsert attempts to insert tgt into every position of seq, keeping the
// first position where the whole sequence remains feasible after earliest
// re-timing. Trials are staged in arena scratch; only a successful insert
// copies out to a fresh slice. Returns true on success.
func tryInsert(ar *ilpArena, p *Problem, f Follower, seq *[]Capture, fi int, tgt Target, byID map[int]Target) bool {
	cur := *seq
	for pos := 0; pos <= len(cur); pos++ {
		trial := ar.trial[:0]
		trial = append(trial, cur[:pos]...)
		trial = append(trial, Capture{TargetID: tgt.ID, Follower: fi, Aim: tgt.Pos})
		trial = append(trial, cur[pos:]...)
		ar.trial = trial
		if retime(ar, p, f, trial, byID) {
			out := make([]Capture, len(trial))
			copy(out, trial)
			*seq = out
			return true
		}
	}
	return false
}
