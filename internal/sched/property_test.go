package sched

import (
	"math/rand"
	"testing"
	"time"
)

// randomFrame builds a random single-follower frame instance.
func randomFrame(rng *rand.Rand, m int) *Problem {
	targets := make([]Target, m)
	for i := range targets {
		targets[i] = Target{
			ID:    i + 1,
			Pos:   pt(rng.Float64()*160e3-80e3, 20e3+rng.Float64()*110e3),
			Value: 0.5 + rng.Float64(),
		}
	}
	return frameProblem(targets, 1)
}

// TestABBDominatesILPOnSmallInstances: AB&B is exact on a single follower,
// so its value upper-bounds the (discretized, polished) ILP; both must be
// feasible.
func TestABBDominatesILPOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 15; trial++ {
		p := randomFrame(rng, 2+rng.Intn(5))
		abbOut, err := ABB{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if !abbOut.SolveStats.Optimal {
			continue // truncated search proves nothing
		}
		ilpOut, err := ILP{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if ilpOut.Value > abbOut.Value+1e-9 {
			t.Fatalf("trial %d: ILP %v exceeds exact AB&B %v", trial, ilpOut.Value, abbOut.Value)
		}
		if err := ValidateSchedule(p, &abbOut); err != nil {
			t.Fatalf("trial %d abb: %v", trial, err)
		}
		if err := ValidateSchedule(p, &ilpOut); err != nil {
			t.Fatalf("trial %d ilp: %v", trial, err)
		}
	}
}

// TestAllSchedulersAlwaysFeasible: every scheduler's output passes the
// constraint validator across random instances and follower counts.
func TestAllSchedulersAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 12; trial++ {
		m := 1 + rng.Intn(20)
		nf := 1 + rng.Intn(3)
		targets := make([]Target, m)
		for i := range targets {
			targets[i] = Target{
				ID:    i + 1,
				Pos:   pt(rng.Float64()*180e3-90e3, -20e3+rng.Float64()*160e3),
				Value: 0.5 + rng.Float64(),
			}
		}
		p := frameProblem(targets, nf)
		// Cap the AB&B search: feasibility is what is under test here, and
		// its exponential exact search is exercised elsewhere.
		schedulers := []Scheduler{ILP{}, Greedy{}, ABB{TimeLimit: 200 * time.Millisecond, MaxNodes: 100000}}
		for _, s := range schedulers {
			out, err := s.Schedule(p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
			if err := ValidateSchedule(p, &out); err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
		}
	}
}

// TestValueMonotoneInTargetValues: doubling every target value doubles the
// schedule's value for the same covered set or better (the optimizer can
// only do at least as well).
func TestValueMonotoneInTargetValues(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 8; trial++ {
		p := randomFrame(rng, 3+rng.Intn(8))
		base, err := ILP{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		doubled := &Problem{Env: p.Env, Followers: p.Followers}
		for _, tgt := range p.Targets {
			tgt.Value *= 2
			doubled.Targets = append(doubled.Targets, tgt)
		}
		out, err := ILP{}.Schedule(doubled)
		if err != nil {
			t.Fatal(err)
		}
		if out.Value < 2*base.Value-1e-6 {
			t.Fatalf("trial %d: doubled-value schedule %v below 2x base %v", trial, out.Value, base.Value)
		}
	}
}

// TestMoreFollowersNeverWorse: adding a follower can only increase the
// achievable value on the same frame.
func TestMoreFollowersNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	for trial := 0; trial < 6; trial++ {
		m := 8 + rng.Intn(16)
		targets := make([]Target, m)
		for i := range targets {
			targets[i] = Target{
				ID:    i + 1,
				Pos:   pt(rng.Float64()*160e3-80e3, 20e3+rng.Float64()*60e3),
				Value: 1,
			}
		}
		one := frameProblem(targets, 1)
		two := frameProblem(targets, 2)
		out1, err := ILP{}.Schedule(one)
		if err != nil {
			t.Fatal(err)
		}
		out2, err := ILP{}.Schedule(two)
		if err != nil {
			t.Fatal(err)
		}
		// Allow a small tolerance: the sequential decomposition of the
		// two-follower case is heuristic.
		if out2.Value < out1.Value-0.5 {
			t.Fatalf("trial %d: 2 followers (%v) clearly below 1 (%v)", trial, out2.Value, out1.Value)
		}
	}
}

// TestGreedyNeverCapturesOutsideWindows is implied by ValidateSchedule but
// asserted separately over many random instances for the greedy path,
// whose window clamping is hand-rolled.
func TestGreedyNeverCapturesOutsideWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	for trial := 0; trial < 20; trial++ {
		p := randomFrame(rng, 1+rng.Intn(25))
		out, err := Greedy{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		byID := targetByID(p)
		for _, seq := range out.Captures {
			for _, c := range seq {
				w0, w1, ok := p.Window(p.Followers[c.Follower], byID[c.TargetID])
				if !ok || c.Time < w0-1e-9 || c.Time > w1+1e-9 {
					t.Fatalf("trial %d: capture at %v outside window [%v,%v]", trial, c.Time, w0, w1)
				}
			}
		}
	}
}
