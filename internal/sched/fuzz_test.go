package sched

import "testing"

// FuzzDecodeSchedule ensures arbitrary crosslink bytes never panic the
// decoder, and that accepted messages re-encode identically.
func FuzzDecodeSchedule(f *testing.F) {
	good, _ := EncodeSchedule(1, []Capture{{TargetID: 3, Time: 1.5, Follower: 1, Aim: pt(1, 2)}})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x45, 0x59, 0x45, 0x31, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, msg []byte) {
		fi, captures, err := DecodeSchedule(msg)
		if err != nil {
			return
		}
		re, err := EncodeSchedule(fi, captures)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		if string(re) != string(msg) {
			t.Fatalf("round trip mismatch: %x vs %x", re, msg)
		}
	})
}
