package sched

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/geo"
)

// driftFrames builds a sequence of related problems: a cluster of targets
// drifts toward the followers by stepM per frame, the way a ground scene
// advances under a leader between scheduling cadences.
func driftFrames(rng *rand.Rand, nTargets, nFollowers, frames int, stepM float64) []*Problem {
	base := make([]geo.Point2, nTargets)
	vals := make([]float64, nTargets)
	for i := range base {
		base[i] = pt(rng.Float64()*60e3-30e3, 60e3+rng.Float64()*60e3)
		vals[i] = 0.5 + rng.Float64()
	}
	out := make([]*Problem, frames)
	for f := 0; f < frames; f++ {
		tgts := make([]Target, nTargets)
		for i := range tgts {
			tgts[i] = Target{
				ID:    i + 1,
				Pos:   pt(base[i].X, base[i].Y-float64(f)*stepM),
				Value: vals[i],
			}
		}
		out[f] = frameProblem(tgts, nFollowers)
	}
	return out
}

// TestILPEdgeVarsUnbounded pins the bounded-simplex pitfall: the sched ILP
// must keep edge variables at Upper = +inf and let the in(v) <= 1 rows cap
// them, because explicit [0,1] edge bounds are a measured ~1.6x slowdown
// on the 40x2 benchmark (per-edge bound flips walk slot groups one at a
// time where the row cap prices them at once). Warm-start or model
// refactors must not quietly reintroduce the explicit bounds.
func TestILPEdgeVarsUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := driftFrames(rng, 8, 2, 1, 0)[0]
	var s ILP
	ar := getILPArena()
	defer putILPArena(ar)
	m := s.buildModel(ar, p)
	if m.ne == 0 {
		t.Fatal("model has no edges; workload too sparse for the regression check")
	}
	for e := 0; e < m.ne; e++ {
		if !math.IsInf(m.prob.Upper[e], 1) {
			t.Fatalf("edge var %d has Upper = %v, want +inf (explicit [0,1] edge bounds are a known slowdown)", e, m.prob.Upper[e])
		}
		if m.prob.Lower[e] != 0 {
			t.Fatalf("edge var %d has Lower = %v, want 0", e, m.prob.Lower[e])
		}
		if !m.prob.Integer[e] {
			t.Fatalf("edge var %d not marked integer", e)
		}
	}
}

// TestEdgeCostTieBreak pins the objective's two-level structure: every
// edge costs at least the flat motion penalty, earlier slots cost strictly
// less than later ones, and the slot preference across a whole frame span
// stays smaller than one motion penalty, so it can break ties but never
// reorder routes with different capture counts.
func TestEdgeCostTieBreak(t *testing.T) {
	if edgeCost(0) != -1e-6 {
		t.Fatalf("edgeCost(0) = %v, want -1e-6", edgeCost(0))
	}
	if !(edgeCost(5) < edgeCost(2)) {
		t.Fatal("later slot not penalized more than earlier slot")
	}
	// One slot granule (300 ms) must clear the solver's 1e-9 tolerances...
	if d := edgeCost(0) - edgeCost(0.3); d < 2e-9 {
		t.Fatalf("slot granule preference %v too small for solver tolerances", d)
	}
	// ...while one edge's slot preference across a 60 s window stays below
	// the flat motion penalty, keeping the layering value >> motion >>
	// slot time intact per edge.
	if d := edgeCost(0) - edgeCost(60); d >= 1e-6 {
		t.Fatalf("per-edge slot preference %v overwhelms the motion penalty", d)
	}
}

// assertEquivalentSchedule pins the scheduler-level warm-start contract:
// a warm schedule must carry exactly the cold objective value and be a
// feasible schedule in its own right. Capture-by-capture identity is NOT
// required here -- two route orders whose slot-time sums collide within
// the solver tolerances are an unresolvable tie (see edgeCost), and warm
// and cold solves may legitimately return different members of such a
// tie. Byte-level identity is asserted one layer up, on the fixed
// simulation workloads (sim.TestWarmStartResultIdentity).
func assertEquivalentSchedule(t *testing.T, tag string, p *Problem, cold, warm Schedule) {
	t.Helper()
	if math.Abs(cold.Value-warm.Value) > 1e-9 {
		t.Fatalf("%s: value cold %v warm %v", tag, cold.Value, warm.Value)
	}
	if err := ValidateSchedule(p, &warm); err != nil {
		t.Fatalf("%s: warm schedule infeasible: %v", tag, err)
	}
	if err := ValidateSchedule(p, &cold); err != nil {
		t.Fatalf("%s: cold schedule infeasible: %v", tag, err)
	}
	if len(cold.Captures) != len(warm.Captures) {
		t.Fatalf("%s: follower counts differ", tag)
	}
}

// TestWarmColdEquivalentSchedules drives a warm ILP (cross-frame state)
// and a cold one over the same drifting frame sequences and requires an
// equal-objective, feasible schedule frame by frame.
func TestWarmColdEquivalentSchedules(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		frames := driftFrames(rng, 4+rng.Intn(5), 1+rng.Intn(3), 6, 800)
		st := NewSolverState()
		warm := ILP{State: st}
		cold := ILP{}
		for fi, p := range frames {
			ws, err := warm.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := cold.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if !ws.SolveStats.Optimal || !cs.SolveStats.Optimal {
				continue // truncated solves carry no identity guarantee
			}
			assertEquivalentSchedule(t, "seed/frame", p, cs, ws)
			_ = fi
		}
		if st.GreedySeeds+st.ProjectionHits == 0 {
			t.Fatalf("seed %d: warm pipeline never produced a candidate", seed)
		}
	}
}

// TestSolverStateMachinery exercises the cross-frame mechanisms directly:
// repeated same-scene frames must hit the frame-delta row reuse and the
// previous-schedule projection, and the LP basis must be reused.
func TestSolverStateMachinery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	frames := driftFrames(rng, 6, 1, 5, 200) // gentle drift: topology stable
	st := NewSolverState()
	s := ILP{State: st}
	reuses := 0
	for _, p := range frames {
		out, err := s.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		reuses += out.SolveStats.BasisReuses
		if !out.SolveStats.Warm {
			t.Fatal("stateful solve not marked warm")
		}
	}
	if st.Projections == 0 || st.ProjectionHits == 0 {
		t.Errorf("projection never fired: attempts %d hits %d", st.Projections, st.ProjectionHits)
	}
	if st.RowReuses == 0 {
		t.Error("frame-delta row reuse never fired on a stable topology")
	}
	if reuses == 0 {
		t.Error("LP basis/crash install never fired")
	}

	// Reset must clear the decision-relevant state so a pooled state
	// behaves like a fresh one.
	st.Reset()
	if st.Projections != 0 || st.RowReuses != 0 || st.prevN != 0 || st.snapValid {
		t.Error("Reset left decision-relevant state behind")
	}
}

// FuzzWarmStartDifferential cross-checks warm and cold scheduling on
// randomized drifting frame sequences: for every frame where both solves
// certify optimality, the warm schedule must match the cold objective and
// be feasible (the warm-start differential contract).
func FuzzWarmStartDifferential(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-3))
	f.Add(int64(987654321))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		frames := driftFrames(rng, 2+rng.Intn(6), 1+rng.Intn(3), 4, 300+rng.Float64()*1500)
		st := NewSolverState()
		warm := ILP{State: st}
		cold := ILP{}
		for _, p := range frames {
			ws, err := warm.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := cold.Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if !ws.SolveStats.Optimal || !cs.SolveStats.Optimal {
				continue
			}
			assertEquivalentSchedule(t, "fuzz", p, cs, ws)
		}
	})
}
