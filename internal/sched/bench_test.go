package sched

import (
	"math/rand"
	"testing"
)

// benchProblem builds a dense single-frame instance sized like a busy
// leader frame: nTargets scattered across the reachable band 40-140 km
// ahead of the followers.
func benchProblem(nTargets, nFollowers int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	targets := make([]Target, nTargets)
	for i := range targets {
		targets[i] = Target{
			ID:    i + 1,
			Pos:   pt(rng.Float64()*30e3-15e3, 40e3+rng.Float64()*100e3),
			Value: 0.5 + rng.Float64()*0.5,
		}
	}
	return frameProblem(targets, nFollowers)
}

func benchmarkILPSchedule(b *testing.B, nTargets, nFollowers int) {
	p := benchProblem(nTargets, nFollowers, 7)
	s := ILP{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Schedule(p)
		if err != nil {
			b.Fatal(err)
		}
		if out.NumCaptures() == 0 {
			b.Fatal("empty schedule on a dense frame")
		}
	}
}

// BenchmarkILPSchedule times the joint time-expanded ILP on a single
// follower (the paper's per-frame hot path).
func BenchmarkILPSchedule(b *testing.B) { benchmarkILPSchedule(b, 20, 1) }

// BenchmarkILPSchedule40x2 exercises the sequential multi-follower
// decomposition over a dense frame.
func BenchmarkILPSchedule40x2(b *testing.B) { benchmarkILPSchedule(b, 40, 2) }
