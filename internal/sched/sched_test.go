package sched

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/adacs"
	"eagleeye/internal/geo"
)

func pt(x, y float64) geo.Point2 { return geo.Point2{X: x, Y: y} }

// paperEnv returns the §5.3 environment: 475 km, 7.3 km/s, 11 deg, 3 deg/s.
func paperEnv() Env {
	return Env{
		AltitudeM:      475e3,
		GroundSpeedMS:  7300,
		MaxOffNadirDeg: 11,
		Slew:           adacs.PaperSlew(),
	}
}

// frameProblem builds a problem with one follower approaching a frame of
// targets located 40-140 km ahead.
func frameProblem(targets []Target, nFollowers int) *Problem {
	p := &Problem{Env: paperEnv(), Targets: targets}
	for i := 0; i < nFollowers; i++ {
		// Followers trail at 100 km spacing; all south of the frame.
		sub := pt(0, -float64(i)*100e3)
		p.Followers = append(p.Followers, Follower{SubPoint: sub, Boresight: sub})
	}
	return p
}

func mkTargets(ps []geo.Point2, val float64) []Target {
	out := make([]Target, len(ps))
	for i, q := range ps {
		out[i] = Target{ID: i + 1, Pos: q, Value: val}
	}
	return out
}

func TestValidateProblem(t *testing.T) {
	p := frameProblem(mkTargets([]geo.Point2{pt(0, 50e3)}, 1), 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p2 := frameProblem(nil, 0)
	if err := p2.Validate(); err == nil {
		t.Error("no followers accepted")
	}
	p3 := frameProblem([]Target{{ID: 1}, {ID: 1}}, 1)
	if err := p3.Validate(); err == nil {
		t.Error("duplicate ids accepted")
	}
	p4 := frameProblem([]Target{{ID: 1, Value: -2}}, 1)
	if err := p4.Validate(); err == nil {
		t.Error("negative value accepted")
	}
	p5 := frameProblem(nil, 1)
	p5.Env.GroundSpeedMS = 0
	if err := p5.Validate(); err == nil {
		t.Error("zero ground speed accepted")
	}
}

func TestWindowClampsPast(t *testing.T) {
	// 150 km behind: beyond the 92 km reach cone looking backward, and the
	// whole geometric window lies in the past.
	p := frameProblem(mkTargets([]geo.Point2{pt(0, -150e3)}, 1), 1)
	// Target behind the follower: window entirely in the past.
	if _, _, ok := p.Window(p.Followers[0], p.Targets[0]); ok {
		t.Error("past target got a window")
	}
	// Target ahead: window starts at >= 0.
	p2 := frameProblem(mkTargets([]geo.Point2{pt(0, 50e3)}, 1), 1)
	w0, w1, ok := p2.Window(p2.Followers[0], p2.Targets[0])
	if !ok || w0 < 0 || w1 <= w0 {
		t.Errorf("window = [%v, %v] ok=%v", w0, w1, ok)
	}
}

func TestWindowHorizon(t *testing.T) {
	p := frameProblem(mkTargets([]geo.Point2{pt(0, 50e3)}, 1), 1)
	p.Env.HorizonS = 5
	_, w1, ok := p.Window(p.Followers[0], p.Targets[0])
	if !ok {
		t.Fatal("window vanished")
	}
	if w1 > 5 {
		t.Errorf("horizon not applied: w1 = %v", w1)
	}
	// A target 150 km ahead only enters the reach cone after ~8 s; a 1 s
	// horizon leaves no feasible time.
	p2 := frameProblem(mkTargets([]geo.Point2{pt(0, 150e3)}, 1), 1)
	p2.Env.HorizonS = 1
	if _, _, ok := p2.Window(p2.Followers[0], p2.Targets[0]); ok {
		t.Error("window should be empty under tight horizon")
	}
}

func allSchedulers() []Scheduler {
	return []Scheduler{ILP{}, Greedy{}, ABB{}}
}

func TestEmptyProblemAllSchedulers(t *testing.T) {
	for _, s := range allSchedulers() {
		p := frameProblem(nil, 1)
		out, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if out.NumCaptures() != 0 || out.Value != 0 {
			t.Errorf("%s: nonempty schedule for empty problem", s.Name())
		}
		if err := ValidateSchedule(p, &out); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestSingleTargetAllSchedulers(t *testing.T) {
	for _, s := range allSchedulers() {
		p := frameProblem(mkTargets([]geo.Point2{pt(3e3, 60e3)}, 2), 1)
		out, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(out.CoveredIDs()) != 1 {
			t.Errorf("%s: covered %v, want the single target", s.Name(), out.CoveredIDs())
		}
		if math.Abs(out.Value-2) > 1e-9 {
			t.Errorf("%s: value = %v, want 2", s.Name(), out.Value)
		}
		if err := ValidateSchedule(p, &out); err != nil {
			t.Errorf("%s: invalid schedule: %v", s.Name(), err)
		}
	}
}

func TestFewTargetsAllCaptured(t *testing.T) {
	// Well-separated targets along track: everything is capturable (the
	// paper's Fig. 14a: one follower covers all of <10 targets).
	pts := []geo.Point2{
		pt(-3e3, 45e3), pt(2e3, 60e3), pt(-1e3, 75e3), pt(4e3, 90e3), pt(0, 105e3),
	}
	for _, s := range allSchedulers() {
		p := frameProblem(mkTargets(pts, 1), 1)
		out, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := len(out.CoveredIDs()); got != len(pts) {
			t.Errorf("%s: covered %d of %d", s.Name(), got, len(pts))
		}
		if err := ValidateSchedule(p, &out); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestUnreachableTargetIgnored(t *testing.T) {
	pts := []geo.Point2{pt(0, 50e3), pt(200e3, 50e3)} // second far off-track
	for _, s := range allSchedulers() {
		p := frameProblem(mkTargets(pts, 1), 1)
		out, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, id := range out.CoveredIDs() {
			if id == 2 {
				t.Errorf("%s: captured unreachable target", s.Name())
			}
		}
		if err := ValidateSchedule(p, &out); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestZeroValueTargetSkipped(t *testing.T) {
	targets := []Target{
		{ID: 1, Pos: pt(0, 50e3), Value: 0},
		{ID: 2, Pos: pt(0, 70e3), Value: 1},
	}
	for _, s := range allSchedulers() {
		p := frameProblem(targets, 1)
		out, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, id := range out.CoveredIDs() {
			if id == 1 {
				t.Errorf("%s: captured zero-value target", s.Name())
			}
		}
	}
}

// seqValue evaluates the best achievable value for a fixed capture order by
// scheduling each capture at its earliest feasible time (optimal for a
// fixed order by an exchange argument). Returns -1 if infeasible.
func seqValue(p *Problem, f Follower, order []int) float64 {
	t := 0.0
	aim := f.Boresight
	val := 0.0
	for _, ti := range order {
		tgt := p.Targets[ti]
		w0, w1, ok := p.Window(f, tgt)
		if !ok {
			return -1
		}
		arr := p.EarliestArrival(f, aim, t, tgt.Pos)
		if arr < w0 {
			arr = w0
		}
		if arr > w1 {
			return -1
		}
		val += tgt.Value
		t, aim = arr, tgt.Pos
	}
	return val
}

// bruteBest enumerates all subsets and orders for a single follower.
func bruteBest(p *Problem) float64 {
	n := len(p.Targets)
	best := 0.0
	idx := make([]int, 0, n)
	var rec func(used uint32, order []int)
	rec = func(used uint32, order []int) {
		if v := seqValue(p, p.Followers[0], order); v > best {
			best = v
		}
		for i := 0; i < n; i++ {
			if used&(1<<i) != 0 {
				continue
			}
			rec(used|1<<i, append(order, i))
		}
	}
	rec(0, idx)
	return best
}

func TestABBMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		pts := make([]geo.Point2, n)
		for i := range pts {
			pts[i] = pt(rng.Float64()*100e3-50e3, 40e3+rng.Float64()*80e3)
		}
		targets := make([]Target, n)
		for i := range targets {
			targets[i] = Target{ID: i + 1, Pos: pts[i], Value: 1 + float64(rng.Intn(5))}
		}
		p := frameProblem(targets, 1)
		want := bruteBest(p)
		out, err := ABB{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.Value-want) > 1e-9 {
			t.Errorf("trial %d: ABB value %v, brute force %v", trial, out.Value, want)
		}
		if !out.SolveStats.Optimal {
			t.Errorf("trial %d: ABB not optimal on tiny instance", trial)
		}
	}
}

func TestILPNearBruteForce(t *testing.T) {
	// The ILP discretizes capture times, so it may be slightly below the
	// continuous-time optimum, but must reach at least 90% of it on small
	// instances and must never exceed it.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(4)
		targets := make([]Target, n)
		for i := range targets {
			targets[i] = Target{
				ID:    i + 1,
				Pos:   pt(rng.Float64()*80e3-40e3, 40e3+rng.Float64()*80e3),
				Value: 1 + float64(rng.Intn(5)),
			}
		}
		p := frameProblem(targets, 1)
		want := bruteBest(p)
		out, err := ILP{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if out.Value > want+1e-6 {
			t.Errorf("trial %d: ILP %v exceeds continuous optimum %v", trial, out.Value, want)
		}
		if out.Value < 0.9*want-1e-9 {
			t.Errorf("trial %d: ILP %v below 90%% of optimum %v", trial, out.Value, want)
		}
		if err := ValidateSchedule(p, &out); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestILPAtLeastGreedyTypically(t *testing.T) {
	// Across random instances the ILP must win or tie on average (the
	// paper: ILP is 4.3-14.4% better); individual ties are fine.
	rng := rand.New(rand.NewSource(31))
	var ilpSum, greedySum float64
	for trial := 0; trial < 12; trial++ {
		n := 6 + rng.Intn(10)
		targets := make([]Target, n)
		for i := range targets {
			targets[i] = Target{
				ID:    i + 1,
				Pos:   pt(rng.Float64()*120e3-60e3, 30e3+rng.Float64()*100e3),
				Value: 1 + rng.Float64()*4,
			}
		}
		p := frameProblem(targets, 1)
		ilpOut, err := ILP{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		gOut, err := Greedy{}.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateSchedule(p, &ilpOut); err != nil {
			t.Fatalf("trial %d ilp: %v", trial, err)
		}
		if err := ValidateSchedule(p, &gOut); err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		ilpSum += ilpOut.Value
		greedySum += gOut.Value
	}
	if ilpSum < greedySum*0.98 {
		t.Errorf("ILP total %v well below greedy total %v", ilpSum, greedySum)
	}
}

func TestMultiFollowerCoversMoreWhenDense(t *testing.T) {
	// A dense cross-track line of targets: one follower cannot sweep them
	// all, three followers capture strictly more.
	rng := rand.New(rand.NewSource(41))
	var targets []Target
	for i := 0; i < 24; i++ {
		targets = append(targets, Target{
			ID:    i + 1,
			Pos:   pt(rng.Float64()*160e3-80e3, 40e3+rng.Float64()*30e3),
			Value: 1,
		})
	}
	p1 := frameProblem(targets, 1)
	p3 := frameProblem(targets, 3)
	out1, err := ILP{}.Schedule(p1)
	if err != nil {
		t.Fatal(err)
	}
	out3, err := ILP{}.Schedule(p3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(p3, &out3); err != nil {
		t.Fatal(err)
	}
	if out3.Value <= out1.Value {
		t.Errorf("3 followers (%v) not better than 1 (%v) on dense frame", out3.Value, out1.Value)
	}
}

func TestFasterSlewCoversMore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var targets []Target
	for i := 0; i < 20; i++ {
		targets = append(targets, Target{
			ID:    i + 1,
			Pos:   pt(rng.Float64()*160e3-80e3, 35e3+rng.Float64()*60e3),
			Value: 1,
		})
	}
	slow := frameProblem(targets, 1)
	slow.Env.Slew = adacs.SlewModel{RateDegS: 1, OverheadS: 0.67}
	fast := frameProblem(targets, 1)
	fast.Env.Slew = adacs.SlewModel{RateDegS: 10, OverheadS: 1.11}
	outSlow, err := ILP{}.Schedule(slow)
	if err != nil {
		t.Fatal(err)
	}
	outFast, err := ILP{}.Schedule(fast)
	if err != nil {
		t.Fatal(err)
	}
	if outFast.Value < outSlow.Value {
		t.Errorf("fast slew (%v) worse than slow slew (%v)", outFast.Value, outSlow.Value)
	}
}

func TestValueDedupAcrossFollowers(t *testing.T) {
	// Two followers, one high-value target: value counted once.
	targets := []Target{{ID: 7, Pos: pt(0, 60e3), Value: 10}}
	p := frameProblem(targets, 2)
	out, err := ILP{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 10 {
		t.Errorf("value = %v, want 10 (dedup)", out.Value)
	}
}

func TestValidateScheduleCatchesViolations(t *testing.T) {
	p := frameProblem(mkTargets([]geo.Point2{pt(0, 60e3), pt(80e3, 60e3)}, 1), 1)
	// Unknown target.
	bad := Schedule{Captures: [][]Capture{{{TargetID: 99, Time: 5, Aim: pt(0, 60e3)}}}}
	if err := ValidateSchedule(p, &bad); err == nil {
		t.Error("unknown target accepted")
	}
	// Off-nadir violation: capture target 1 immediately (still 60 km ahead).
	bad = Schedule{Captures: [][]Capture{{{TargetID: 1, Time: 0, Aim: pt(0, 60e3)}}}, Value: 1}
	if err := ValidateSchedule(p, &bad); err == nil {
		t.Error("off-nadir violation accepted")
	}
	// Actuation violation: jump between far-apart targets instantly.
	t1 := 60e3 / 7300.0
	bad = Schedule{Captures: [][]Capture{{
		{TargetID: 1, Time: t1, Aim: pt(0, 60e3)},
		{TargetID: 2, Time: t1 + 0.01, Aim: pt(80e3, 60e3)},
	}}, Value: 2}
	if err := ValidateSchedule(p, &bad); err == nil {
		t.Error("actuation violation accepted")
	}
	// Wrong value accounting.
	good, err := ILP{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	good.Value += 5
	if err := ValidateSchedule(p, &good); err == nil {
		t.Error("wrong value accepted")
	}
	// Time going backwards.
	bad = Schedule{Captures: [][]Capture{{
		{TargetID: 1, Time: 10, Aim: pt(0, 60e3)},
		{TargetID: 2, Time: 5, Aim: pt(80e3, 60e3)},
	}}, Value: 2}
	if err := ValidateSchedule(p, &bad); err == nil {
		t.Error("backwards time accepted")
	}
	// Wrong aim point.
	bad = Schedule{Captures: [][]Capture{{{TargetID: 1, Time: t1, Aim: pt(5e3, 60e3)}}}, Value: 1}
	if err := ValidateSchedule(p, &bad); err == nil {
		t.Error("wrong aim accepted")
	}
}

func TestTrimTargetsDense(t *testing.T) {
	// 200 targets, cap at default 30 per follower: the ILP must still
	// produce a valid schedule quickly.
	rng := rand.New(rand.NewSource(51))
	var targets []Target
	for i := 0; i < 200; i++ {
		targets = append(targets, Target{
			ID:    i + 1,
			Pos:   pt(rng.Float64()*160e3-80e3, 30e3+rng.Float64()*80e3),
			Value: 1 + rng.Float64(),
		})
	}
	p := frameProblem(targets, 1)
	out, err := ILP{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(p, &out); err != nil {
		t.Fatal(err)
	}
	if out.NumCaptures() == 0 {
		t.Error("dense frame: no captures at all")
	}
}

func TestScheduleAccessors(t *testing.T) {
	p := frameProblem(mkTargets([]geo.Point2{pt(0, 50e3), pt(5e3, 70e3)}, 1), 1)
	out, err := ILP{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCaptures() != len(out.Captures[0]) {
		t.Error("NumCaptures mismatch")
	}
	if deg := out.TotalSlewDeg(p); deg <= 0 {
		t.Errorf("TotalSlewDeg = %v, want positive", deg)
	}
	ids := out.CoveredIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("CoveredIDs not sorted ascending")
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var targets []Target
	for i := 0; i < 15; i++ {
		targets = append(targets, Target{
			ID:    i + 1,
			Pos:   pt(rng.Float64()*100e3-50e3, 30e3+rng.Float64()*60e3),
			Value: 1,
		})
	}
	p := frameProblem(targets, 2)
	a, err := Greedy{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy{}.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.NumCaptures() != b.NumCaptures() {
		t.Error("greedy not deterministic")
	}
}
