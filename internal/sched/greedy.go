package sched

import (
	"math"
	"sort"
)

// Greedy is the baseline scheduler of §4.3: each follower repeatedly points
// at the nearest (earliest reachable) unimaged target until nothing more is
// feasible. The paper reports it achieves 4.3-14.4% less coverage than the
// ILP scheduler.
type Greedy struct{}

// Name implements Scheduler.
func (Greedy) Name() string { return "greedy" }

// Schedule implements Scheduler.
func (Greedy) Schedule(p *Problem) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, err
	}
	imaged := make(map[int]bool, len(p.Targets))
	out := Schedule{Captures: make([][]Capture, len(p.Followers))}
	nodes := 0

	// Followers run in input order; within a group they trail the leader at
	// increasing distances, so earlier indices see targets first.
	for fi, f := range p.Followers {
		t := 0.0
		aim := f.Boresight
		for {
			bestID := -1
			bestTime := math.Inf(1)
			var bestTarget Target
			for _, tgt := range p.Targets {
				if imaged[tgt.ID] || tgt.Value <= 0 {
					continue
				}
				w0, w1, ok := p.Window(f, tgt)
				if !ok || w1 < t {
					continue
				}
				nodes++
				arr := p.EarliestArrival(f, aim, t, tgt.Pos)
				if arr < w0 {
					arr = w0
				}
				if arr > w1 {
					continue
				}
				// "Nearest" = reachable soonest; ties broken by ID for
				// determinism.
				if arr < bestTime-1e-12 || (math.Abs(arr-bestTime) <= 1e-12 && tgt.ID < bestID) {
					bestTime = arr
					bestID = tgt.ID
					bestTarget = tgt
				}
			}
			if bestID < 0 {
				break
			}
			imaged[bestID] = true
			out.Captures[fi] = append(out.Captures[fi], Capture{
				TargetID: bestID,
				Time:     bestTime,
				Follower: fi,
				Aim:      bestTarget.Pos,
			})
			t = bestTime
			aim = bestTarget.Pos
		}
	}

	byID := targetByID(p)
	ids := out.CoveredIDs()
	sort.Ints(ids)
	for _, id := range ids {
		out.Value += byID[id].Value
	}
	out.SolveStats = Stats{Algorithm: "greedy", Nodes: nodes, Optimal: false}
	return out, nil
}
