// Package sched implements EagleEye's actuation-aware follower scheduling
// (§3.3, §4.2, §4.3): given the targets a leader identified in one
// low-resolution frame and the states of its follower satellites, produce a
// per-follower sequence of pointing and capture actions that maximizes the
// total value of captured targets, subject to
//
//	C1 (actuation):   consecutive captures are separated by enough time for
//	                  the ADACS to slew between them (MaxAng),
//	C2 (off-nadir):   every capture happens inside the target's imaging
//	                  time window (maximum off-nadir angle), and
//	C3 (containment): the aim point puts the target inside the image.
//
// Three schedulers are provided:
//
//   - ILP (the paper's contribution): a time-expanded flow ILP solved with
//     internal/mip; see ilp.go.
//   - Greedy (baseline, §4.3): each follower repeatedly captures the
//     nearest feasible unimaged target.
//   - AB&B (prior-work baseline, §2.3/[27]): anytime branch-and-bound over
//     capture sequences; optimal but exponential in the target count.
//
// All geometry is frame-local (meters; X cross-track, Y along-track), with
// t = 0 the moment the schedule starts executing.
package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"eagleeye/internal/adacs"
	"eagleeye/internal/geo"
)

// Target is a capture task: a clustered aim point with a priority score.
type Target struct {
	ID    int        // caller-assigned identifier, unique within a Problem
	Pos   geo.Point2 // aim point, frame-local meters
	Value float64    // priority score (sum of detection confidences, §3.2)
}

// Follower is the initial condition of one follower satellite at t = 0.
type Follower struct {
	SubPoint  geo.Point2 // current sub-satellite point, frame-local meters
	Boresight geo.Point2 // current boresight ground intercept
}

// Env is the shared pass geometry for all followers in the group.
type Env struct {
	AltitudeM      float64         // orbit altitude
	GroundSpeedMS  float64         // sub-satellite ground speed
	MaxOffNadirDeg float64         // usable off-nadir limit (Theta_max)
	Slew           adacs.SlewModel // ADACS actuation model
	// HorizonS optionally bounds how far into the future captures may be
	// scheduled; 0 means unbounded (windows bound the schedule anyway).
	HorizonS float64
}

// Validate reports whether the environment is physically plausible.
func (e Env) Validate() error {
	if e.AltitudeM <= 0 {
		return fmt.Errorf("sched: altitude %v must be positive", e.AltitudeM)
	}
	if e.GroundSpeedMS <= 0 {
		return fmt.Errorf("sched: ground speed %v must be positive", e.GroundSpeedMS)
	}
	if e.MaxOffNadirDeg <= 0 || e.MaxOffNadirDeg >= 90 {
		return fmt.Errorf("sched: max off-nadir %v out of (0,90)", e.MaxOffNadirDeg)
	}
	return e.Slew.Validate()
}

// Problem is one scheduling instance: M targets, N followers (Table 1).
type Problem struct {
	Env       Env
	Targets   []Target
	Followers []Follower
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if err := p.Env.Validate(); err != nil {
		return err
	}
	if len(p.Followers) == 0 {
		return fmt.Errorf("sched: no followers")
	}
	seen := make(map[int]bool, len(p.Targets))
	for _, t := range p.Targets {
		if seen[t.ID] {
			return fmt.Errorf("sched: duplicate target id %d", t.ID)
		}
		seen[t.ID] = true
		if t.Value < 0 {
			return fmt.Errorf("sched: target %d has negative value", t.ID)
		}
	}
	return nil
}

// subPointAt returns follower f's sub-point at time t.
func (p *Problem) subPointAt(f Follower, t float64) geo.Point2 {
	return geo.Point2{X: f.SubPoint.X, Y: f.SubPoint.Y + p.Env.GroundSpeedMS*t}
}

// Window returns the imaging time window [t0, t1] (clamped to t >= 0 and
// the horizon) for target tgt as seen by follower f, and whether any
// feasible time exists. This is the paper's Eq. 2 with "not in the past"
// and horizon clamps applied.
func (p *Problem) Window(f Follower, tgt Target) (t0, t1 float64, ok bool) {
	t0, t1, ok = adacs.TimeWindow(f.SubPoint, tgt.Pos, p.Env.GroundSpeedMS, p.Env.AltitudeM, p.Env.MaxOffNadirDeg)
	if !ok {
		return 0, 0, false
	}
	if t0 < 0 {
		t0 = 0
	}
	if p.Env.HorizonS > 0 && t1 > p.Env.HorizonS {
		t1 = p.Env.HorizonS
	}
	if t1 < t0 {
		return 0, 0, false
	}
	return t0, t1, true
}

// TransitionFeasible reports whether follower f, aiming at ground point
// from at time tFrom, can aim at ground point to at time tTo (Eq. 1 /
// constraint C1). A zero-angle transition is always feasible.
func (p *Problem) TransitionFeasible(f Follower, from geo.Point2, tFrom float64, to geo.Point2, tTo float64) bool {
	if tTo < tFrom {
		return false
	}
	a := adacs.PointingAngleDeg(p.subPointAt(f, tFrom), from, p.subPointAt(f, tTo), to, p.Env.AltitudeM)
	if a < 1e-9 {
		return true
	}
	return a <= p.Env.Slew.MaxAngDeg(tTo-tFrom)+1e-9
}

// EarliestArrival returns the earliest time >= tFrom at which follower f,
// aiming at from at tFrom, can be aiming at to: the Eq. 1 solve.
func (p *Problem) EarliestArrival(f Follower, from geo.Point2, tFrom float64, to geo.Point2) float64 {
	dt := adacs.ActuationTimeS(p.Env.Slew, p.subPointAt(f, tFrom), from, to, p.Env.GroundSpeedMS, p.Env.AltitudeM)
	return tFrom + dt
}

// Capture is one scheduled image: which target, when, by which follower.
type Capture struct {
	TargetID int
	Time     float64 // seconds from schedule start
	Follower int     // index into Problem.Followers
	Aim      geo.Point2
}

// Schedule is the solver output: an ordered capture sequence per follower.
type Schedule struct {
	Captures [][]Capture // indexed by follower
	// Value is the sum of values of distinct captured targets (the paper's
	// optimization goal, with the Hit-set union removing duplicates).
	Value float64
	// SolveStats carries solver diagnostics for the runtime evaluation.
	SolveStats Stats
}

// Stats reports how a schedule was computed. The solver-cost fields
// (Iters, PivotWall, Gap) are populated by the ILP scheduler and zero for
// the search/greedy baselines, where they have no meaning.
type Stats struct {
	Algorithm string
	Nodes     int // search nodes / B&B nodes, when meaningful
	Optimal   bool
	Iters     int           // simplex iterations across all B&B nodes
	Gap       float64       // bound - incumbent when the solve stopped early
	PivotWall time.Duration // wall time spent inside LP solves
	// Fallback marks a schedule (or, for the sequential decomposition, at
	// least one sub-schedule) produced by the greedy fallback after the ILP
	// stopped without an incumbent.
	Fallback bool
	// Warm-start accounting (ILP scheduler with cross-frame State only).
	WarmAttempted bool // a warm candidate was offered to the solver
	Warm          bool // a warm candidate verified and was used
	WarmPruned    int  // B&B nodes cut by the warm floor
	WarmEarlyExit bool // a bound proved the warm candidate optimal
	BasisReuses   int  // LP solves that skipped phase 1 via basis reuse
	// LP anomaly deltas for this solve (flight-recorder signals).
	Refactorizations int // sparse-core mid-solve refactorizations
	RepairFails      int // dual-repair attempts that went cold
}

// CoveredIDs returns the distinct captured target IDs in ascending order.
func (s *Schedule) CoveredIDs() []int {
	set := make(map[int]bool)
	for _, seq := range s.Captures {
		for _, c := range seq {
			set[c.TargetID] = true
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// NumCaptures returns the total capture count across followers.
func (s *Schedule) NumCaptures() int {
	n := 0
	for _, seq := range s.Captures {
		n += len(seq)
	}
	return n
}

// TotalSlewDeg returns the total body rotation commanded by the schedule,
// used by the energy model to account ADACS consumption.
func (s *Schedule) TotalSlewDeg(p *Problem) float64 {
	total := 0.0
	for fi, seq := range s.Captures {
		if fi >= len(p.Followers) {
			continue
		}
		f := p.Followers[fi]
		prevAim := f.Boresight
		prevT := 0.0
		for _, c := range seq {
			total += adacs.PointingAngleDeg(
				p.subPointAt(f, prevT), prevAim,
				p.subPointAt(f, c.Time), c.Aim, p.Env.AltitudeM)
			prevAim, prevT = c.Aim, c.Time
		}
	}
	return total
}

// Scheduler is the interface shared by the ILP, greedy and AB&B solvers.
type Scheduler interface {
	// Name identifies the algorithm in results and figures.
	Name() string
	// Schedule solves one instance. Implementations must return schedules
	// that pass ValidateSchedule.
	Schedule(p *Problem) (Schedule, error)
}

// ValidateSchedule checks constraints C1-C3 for every capture and computes
// nothing else; a nil return means the schedule is executable.
func ValidateSchedule(p *Problem, s *Schedule) error {
	if len(s.Captures) > len(p.Followers) {
		return fmt.Errorf("sched: %d capture sequences for %d followers", len(s.Captures), len(p.Followers))
	}
	byID := make(map[int]Target, len(p.Targets))
	for _, t := range p.Targets {
		byID[t.ID] = t
	}
	for fi, seq := range s.Captures {
		f := p.Followers[fi]
		prevAim := f.Boresight
		prevT := 0.0
		for ci, c := range seq {
			tgt, known := byID[c.TargetID]
			if !known {
				return fmt.Errorf("sched: follower %d capture %d: unknown target %d", fi, ci, c.TargetID)
			}
			if c.Time < prevT-1e-9 {
				return fmt.Errorf("sched: follower %d capture %d: time %v before previous %v", fi, ci, c.Time, prevT)
			}
			// C1: actuation feasibility from the previous pointing.
			if !p.TransitionFeasible(f, prevAim, prevT, c.Aim, c.Time) {
				return fmt.Errorf("sched: follower %d capture %d (target %d): actuation constraint violated", fi, ci, c.TargetID)
			}
			// C2: off-nadir limit at capture time.
			sub := p.subPointAt(f, c.Time)
			if on := adacs.OffNadirDeg(sub, c.Aim, p.Env.AltitudeM); on > p.Env.MaxOffNadirDeg+1e-6 {
				return fmt.Errorf("sched: follower %d capture %d (target %d): off-nadir %v > %v", fi, ci, c.TargetID, on, p.Env.MaxOffNadirDeg)
			}
			// C3: the target lies at the aim point (the aim point is the
			// cluster box center; containment within the footprint is the
			// clusterer's invariant, checked here as aim proximity).
			if c.Aim.Dist(tgt.Pos) > 1e-6 {
				return fmt.Errorf("sched: follower %d capture %d: aim %v differs from target %d pos %v", fi, ci, c.Aim, c.TargetID, tgt.Pos)
			}
			prevAim, prevT = c.Aim, c.Time
		}
	}
	// Value accounting: distinct targets only.
	var want float64
	for _, id := range s.CoveredIDs() {
		want += byID[id].Value
	}
	if math.Abs(want-s.Value) > 1e-6*(1+math.Abs(want)) {
		return fmt.Errorf("sched: declared value %v != recomputed %v", s.Value, want)
	}
	return nil
}

// targetByID builds the id -> Target index shared by the solvers.
func targetByID(p *Problem) map[int]Target {
	m := make(map[int]Target, len(p.Targets))
	for _, t := range p.Targets {
		m[t.ID] = t
	}
	return m
}
