// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It is the linear-algebra substrate beneath internal/mip, which
// together replace the Google OR-Tools dependency of the paper's prototype
// (§5.1): EagleEye's target-clustering and follower-scheduling ILPs both
// reduce to models this solver handles exactly.
//
// Problems are stated as
//
//	maximize   c · x
//	subject to A x (<=|=|>=) b
//	           lower <= x <= upper   (default 0 <= x < +inf)
//
// The implementation is a textbook tableau simplex with Dantzig pricing and
// a Bland-rule fallback for cycling, adequate for the dense, mid-sized
// models EagleEye produces (hundreds of rows and columns per frame).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relational operator of a constraint row.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // ==
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Status describes the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem is a linear program in the form documented at the package level.
// Lower and Upper may be nil, meaning all-zero lower bounds and all-+inf
// upper bounds. Rows of A must all have len == len(C).
type Problem struct {
	C      []float64   // objective coefficients (maximize)
	A      [][]float64 // constraint matrix rows
	B      []float64   // right-hand sides
	Senses []Sense     // one per row
	Lower  []float64   // optional per-variable lower bounds
	Upper  []float64   // optional per-variable upper bounds
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: no variables")
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.Senses) {
		return fmt.Errorf("lp: inconsistent row counts: A=%d B=%d senses=%d",
			len(p.A), len(p.B), len(p.Senses))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	if p.Lower != nil && len(p.Lower) != n {
		return fmt.Errorf("lp: lower bounds length %d, want %d", len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("lp: upper bounds length %d, want %d", len(p.Upper), n)
	}
	for j := 0; j < n; j++ {
		if p.lower(j) > p.upper(j)+1e-12 {
			return fmt.Errorf("lp: variable %d has lower %v > upper %v", j, p.lower(j), p.upper(j))
		}
	}
	return nil
}

func (p *Problem) lower(j int) float64 {
	if p.Lower == nil {
		return 0
	}
	return p.Lower[j]
}

func (p *Problem) upper(j int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[j]
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (original problem space)
	Objective float64   // c · X
	Iters     int       // simplex iterations used
}

const (
	eps        = 1e-9 // pivot / reduced-cost tolerance
	feasTol    = 1e-7 // feasibility tolerance
	defaultMax = 200000
)

// Solve optimizes the problem. The returned error is non-nil only for
// structurally invalid problems; infeasible/unbounded outcomes are reported
// through Solution.Status.
func Solve(p *Problem) (Solution, error) {
	return SolveMaxIters(p, defaultMax)
}

// SolveMaxIters is Solve with an explicit simplex iteration limit.
func SolveMaxIters(p *Problem, maxIters int) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t, err := newTableau(p)
	if err != nil {
		// Bound-shift detected an empty box (lower > upper): infeasible.
		return Solution{Status: StatusInfeasible}, nil
	}
	st := t.solve(maxIters)
	sol := Solution{Status: st, Iters: t.iters}
	if st != StatusOptimal {
		return sol, nil
	}
	sol.X = t.extract(p)
	sol.Objective = 0
	for j, c := range p.C {
		sol.Objective += c * sol.X[j]
	}
	return sol, nil
}

// tableau is the working state of the two-phase simplex.
type tableau struct {
	m, n    int         // constraint rows, structural columns (shifted vars)
	a       [][]float64 // m x total columns
	rhs     []float64   // m
	basis   []int       // basic column per row
	inBasis []bool      // per-column basis membership (mirror of basis)
	total   int         // total columns incl. slacks/artificials
	nslack  int
	nartif  int
	obj     []float64 // phase-2 objective over all columns
	shift   []float64 // lower-bound shift per structural var
	ncols   int       // structural columns (== n)
	iters   int
	artbase int // first artificial column index
}

// newTableau builds the standard-form tableau: shift lower bounds to zero,
// turn finite upper bounds into extra <= rows, normalize negative RHS, add
// slack/surplus/artificial columns.
func newTableau(p *Problem) (*tableau, error) {
	n := len(p.C)
	shift := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := p.lower(j)
		if math.IsInf(lo, -1) {
			// Free-below variables are rare in our models; represent by a
			// large negative shift so x' = x - lo stays non-negative over
			// the practical range.
			lo = -1e9
		}
		shift[j] = lo
		if p.upper(j) < lo-1e-12 {
			return nil, errors.New("lp: empty variable box")
		}
	}

	type row struct {
		coef  []float64
		b     float64
		sense Sense
	}
	rows := make([]row, 0, len(p.A)+n)
	for i, r := range p.A {
		b := p.B[i]
		// Apply lower-bound shift to RHS: sum a_ij (x'_j + lo_j) ~ b.
		for j := 0; j < n; j++ {
			b -= r[j] * shift[j]
		}
		coef := make([]float64, n)
		copy(coef, r)
		rows = append(rows, row{coef: coef, b: b, sense: p.Senses[i]})
	}
	// Upper bounds become x'_j <= ub_j - lo_j.
	for j := 0; j < n; j++ {
		ub := p.upper(j)
		if math.IsInf(ub, 1) {
			continue
		}
		coef := make([]float64, n)
		coef[j] = 1
		rows = append(rows, row{coef: coef, b: ub - shift[j], sense: LE})
	}

	m := len(rows)
	// Normalize negative RHS.
	for i := range rows {
		if rows[i].b < 0 {
			for j := range rows[i].coef {
				rows[i].coef[j] = -rows[i].coef[j]
			}
			rows[i].b = -rows[i].b
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	// Count slack and artificial columns.
	nslack, nartif := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nslack++
		case GE:
			nslack++
			nartif++
		case EQ:
			nartif++
		}
	}
	total := n + nslack + nartif
	t := &tableau{
		m: m, n: n, total: total, ncols: n,
		nslack: nslack, nartif: nartif,
		shift:   shift,
		rhs:     make([]float64, m),
		basis:   make([]int, m),
		artbase: n + nslack,
	}
	t.a = make([][]float64, m)
	buf := make([]float64, m*total)
	for i := range t.a {
		t.a[i] = buf[i*total : (i+1)*total]
	}
	t.inBasis = make([]bool, total)
	slackCol := n
	artCol := n + nslack
	for i, r := range rows {
		copy(t.a[i][:n], r.coef)
		t.rhs[i] = r.b
		switch r.sense {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.inBasis[t.basis[i]] = true
	}
	// Phase-2 objective over all columns (shifted space).
	t.obj = make([]float64, total)
	copy(t.obj[:n], p.C)
	return t, nil
}

// solve runs phase 1 (if artificials exist) then phase 2.
func (t *tableau) solve(maxIters int) Status {
	if t.nartif > 0 {
		// Phase 1: maximize -(sum of artificials).
		ph1 := make([]float64, t.total)
		for j := t.artbase; j < t.total; j++ {
			ph1[j] = -1
		}
		st, objVal := t.optimize(ph1, maxIters, true)
		if st == StatusUnbounded {
			// Phase-1 objective is bounded above by 0; treat as numeric
			// failure.
			return StatusIterLimit
		}
		if st != StatusOptimal {
			return st
		}
		if objVal < -feasTol {
			return StatusInfeasible
		}
		// Pivot remaining artificials out of the basis where possible.
		t.evictArtificials()
	}
	st, _ := t.optimize(t.obj, maxIters, false)
	return st
}

// optimize runs simplex iterations for the given objective, returning the
// status and the achieved objective value (in shifted space). Columns at or
// beyond artbase are never allowed to enter during phase 2 (banArt).
func (t *tableau) optimize(obj []float64, maxIters int, phase1 bool) (Status, float64) {
	limit := t.total
	if !phase1 {
		limit = t.artbase // artificials may not re-enter
	}
	// Reduced costs are computed against the current basis each iteration:
	// z_j - c_j = cB · B^-1 A_j - c_j. With an explicitly updated tableau,
	// the tableau columns already hold B^-1 A, so price directly.
	cb := make([]float64, t.m)
	for iter := 0; ; iter++ {
		if t.iters >= maxIters {
			return StatusIterLimit, 0
		}
		t.iters++
		for i := 0; i < t.m; i++ {
			cb[i] = obj[t.basis[i]]
		}
		// Pricing: pick the entering column. Dantzig normally; Bland when
		// the iteration count in this phase grows large (anti-cycling).
		bland := iter > 4*(t.m+t.total)
		enter := -1
		best := eps
		for j := 0; j < limit; j++ {
			// Skip basic columns.
			if t.isBasic(j) {
				continue
			}
			red := obj[j]
			for i := 0; i < t.m; i++ {
				if cb[i] != 0 {
					red -= cb[i] * t.a[i][j]
				}
			}
			if red > best {
				enter = j
				if bland {
					break
				}
				best = red
			}
		}
		if enter < 0 {
			// Optimal: compute objective value.
			val := 0.0
			for i := 0; i < t.m; i++ {
				val += obj[t.basis[i]] * t.rhs[i]
			}
			return StatusOptimal, val
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				r := t.rhs[i] / aij
				if r < bestRatio-eps || (r < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return StatusUnbounded, 0
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) isBasic(j int) bool { return t.inBasis[j] }

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j < t.total; j++ {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j < t.total; j++ {
			ri[j] -= f * pr[j]
		}
		t.rhs[i] -= f * t.rhs[row]
	}
	t.inBasis[t.basis[row]] = false
	t.basis[row] = col
	t.inBasis[col] = true
}

// evictArtificials pivots basic artificial variables (at value ~0 after a
// feasible phase 1) out of the basis when a non-artificial pivot exists.
func (t *tableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artbase {
			continue
		}
		for j := 0; j < t.artbase; j++ {
			if math.Abs(t.a[i][j]) > eps && !t.isBasic(j) {
				t.pivot(i, j)
				break
			}
		}
	}
}

// extract recovers the original-space variable values.
func (t *tableau) extract(p *Problem) []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			x[b] = t.rhs[i]
		}
	}
	for j := range x {
		x[j] += t.shift[j]
		// Snap to bounds within tolerance to suppress simplex noise.
		if lo := p.lower(j); x[j] < lo {
			x[j] = lo
		}
		if ub := p.upper(j); x[j] > ub {
			x[j] = ub
		}
	}
	return x
}
