// Package lp implements a two-phase primal simplex solver for linear
// programs, with two interchangeable engines behind one API: a dense
// tableau core for small instances and a sparse revised simplex (CSC
// columns, eta-file basis factorization, sparse BTRAN/FTRAN pricing) for
// large ones. It is the linear-algebra substrate beneath internal/mip,
// which together replace the Google OR-Tools dependency of the paper's
// prototype (§5.1): EagleEye's target-clustering and follower-scheduling
// ILPs both reduce to models this solver handles exactly.
//
// Problems are stated as
//
//	maximize   c · x
//	subject to A x (<=|=|>=) b
//	           lower <= x <= upper   (default 0 <= x < +inf)
//
// The implementation is a bounded-variable tableau simplex with Dantzig
// pricing and a Bland-rule fallback for cycling: variable bounds are
// handled implicitly (nonbasic variables sit at either bound and may flip
// between them without a pivot), so finite upper bounds cost no tableau
// rows. For the all-binary MIPs EagleEye builds this halves the row count
// relative to the textbook "upper bound = extra <= row" encoding. Free
// variables are handled natively: a free-below variable with a finite
// upper bound is mirrored (x = upper - x'), and a fully free variable is
// split into x⁺ - x⁻.
//
// A Workspace reuses the tableau arena across solves of same-shaped
// problems, which is what makes per-node re-solves in branch and bound
// allocation-free.
package lp

import (
	"errors"
	"fmt"
	"math"

	"eagleeye/internal/obs"
)

// Sense is the relational operator of a constraint row.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // ==
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Status describes the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem is a linear program in the form documented at the package level.
// Lower and Upper may be nil, meaning all-zero lower bounds and all-+inf
// upper bounds. Rows of A must all have len == len(C).
//
// Rows may alternatively be stored sparse (CSR) via RowPtr/ColIdx/Vals;
// exactly one of A and RowPtr may be set. Model builders that emit
// thousands of mostly-zero rows (sched, cluster) use the sparse form,
// which both cores consume directly without densifying rows.
type Problem struct {
	C      []float64   // objective coefficients (maximize)
	A      [][]float64 // constraint matrix rows (dense form)
	B      []float64   // right-hand sides
	Senses []Sense     // one per row
	Lower  []float64   // optional per-variable lower bounds
	Upper  []float64   // optional per-variable upper bounds

	// Sparse row storage (CSR). When RowPtr is non-nil it replaces A:
	// row i's coefficients are Vals[RowPtr[i]:RowPtr[i+1]] at columns
	// ColIdx[RowPtr[i]:RowPtr[i+1]]. Column indices must not repeat
	// within a row. Assemble with ResetSparseRows/Coef/EndRow.
	RowPtr []int
	ColIdx []int32
	Vals   []float64
}

// ResetSparseRows switches p to CSR row storage and clears all rows,
// keeping capacity. Rows are then appended with Coef and closed with
// EndRow.
func (p *Problem) ResetSparseRows() {
	p.A = nil
	if p.RowPtr == nil {
		p.RowPtr = make([]int, 1, 64)
	}
	p.RowPtr = p.RowPtr[:1]
	p.RowPtr[0] = 0
	p.ColIdx = p.ColIdx[:0]
	p.Vals = p.Vals[:0]
	p.B = p.B[:0]
	p.Senses = p.Senses[:0]
}

// Coef appends one coefficient to the CSR row under construction (opened
// implicitly by ResetSparseRows or the previous EndRow). Columns may
// arrive in any order but must not repeat within a row.
func (p *Problem) Coef(j int, v float64) {
	p.ColIdx = append(p.ColIdx, int32(j))
	p.Vals = append(p.Vals, v)
}

// EndRow closes the CSR row under construction with its sense and RHS.
func (p *Problem) EndRow(s Sense, b float64) {
	p.RowPtr = append(p.RowPtr, len(p.ColIdx))
	p.Senses = append(p.Senses, s)
	p.B = append(p.B, b)
}

// NNZ reports the stored coefficient count: structural nonzeros for CSR
// rows, m*n for dense rows (the dense form stores every entry).
func (p *Problem) NNZ() int {
	if p.RowPtr != nil {
		return len(p.Vals)
	}
	return len(p.B) * len(p.C)
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: no variables")
	}
	rows := len(p.B)
	if p.RowPtr != nil {
		if len(p.A) != 0 {
			return errors.New("lp: both dense A and CSR rows set")
		}
		if len(p.RowPtr) != rows+1 || len(p.Senses) != rows {
			return fmt.Errorf("lp: inconsistent CSR row counts: rowptr=%d B=%d senses=%d",
				len(p.RowPtr), rows, len(p.Senses))
		}
		if len(p.ColIdx) != len(p.Vals) || p.RowPtr[rows] != len(p.ColIdx) {
			return fmt.Errorf("lp: inconsistent CSR storage: colidx=%d vals=%d rowptr[last]=%d",
				len(p.ColIdx), len(p.Vals), p.RowPtr[rows])
		}
		for i := 0; i < rows; i++ {
			if p.RowPtr[i] > p.RowPtr[i+1] {
				return fmt.Errorf("lp: CSR row %d has negative length", i)
			}
		}
		for k, j := range p.ColIdx {
			if j < 0 || int(j) >= n {
				return fmt.Errorf("lp: CSR entry %d references column %d, want [0,%d)", k, j, n)
			}
		}
	} else {
		if len(p.A) != rows || rows != len(p.Senses) {
			return fmt.Errorf("lp: inconsistent row counts: A=%d B=%d senses=%d",
				len(p.A), len(p.B), len(p.Senses))
		}
		for i, row := range p.A {
			if len(row) != n {
				return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
			}
		}
	}
	if p.Lower != nil && len(p.Lower) != n {
		return fmt.Errorf("lp: lower bounds length %d, want %d", len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("lp: upper bounds length %d, want %d", len(p.Upper), n)
	}
	for j := 0; j < n; j++ {
		if p.lower(j) > p.upper(j)+1e-12 {
			return fmt.Errorf("lp: variable %d has lower %v > upper %v", j, p.lower(j), p.upper(j))
		}
	}
	return nil
}

func (p *Problem) lower(j int) float64 {
	if p.Lower == nil {
		return 0
	}
	return p.Lower[j]
}

func (p *Problem) upper(j int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[j]
}

// Core selects the simplex engine a Workspace uses.
type Core int8

// Engine choices. CoreAuto picks per problem: the dense tableau below
// sparseCrossover variables+rows (tiny per-node LPs should not pay basis
// factorization overhead, and the seed-scale sim stays byte-identical),
// the sparse revised simplex at or above it. CoreDense and CoreSparse
// force one engine; the dense core doubles as a differential oracle for
// the sparse one.
const (
	CoreAuto Core = iota
	CoreDense
	CoreSparse
)

// sparseCrossover is the variables+rows threshold at which CoreAuto
// switches engines. Below it the dense tableau fits comfortably in cache
// and its branch-free pivot loop wins; above it the O(m*n) tableau memory
// and O(m*n) work per pivot lose to O(nnz) pricing. The value is
// deliberately conservative so every seed-scale scheduling model keeps
// its historical dense pivot sequence.
const sparseCrossover = 4096

// Partial-pricing policy for the sparse core. Dantzig pricing is O(priced
// columns) per pivot; on shard-scale models that sweep dominates. Above
// partialPricingMinCols priced columns the sparse optimizer prices a
// rotating window of partialPricingWindow columns instead, extending the
// window until it finds an eligible column (a full empty rotation is the
// usual optimality certificate), with a full Dantzig sweep every
// partialFullSweepPeriod iterations to keep steepest progress. The
// threshold sits far above every seed-scale model so historical pivot
// sequences -- and BENCH_lp.json seed points -- are unaffected.
const (
	partialPricingMinCols  = 8192
	partialPricingWindow   = 1024
	partialFullSweepPeriod = 32
)

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (original problem space)
	Objective float64   // c · X
	Iters     int       // simplex iterations used
}

const (
	eps        = 1e-9 // pivot / reduced-cost tolerance
	feasTol    = 1e-7 // feasibility tolerance
	defaultMax = 200000
)

// Solve optimizes the problem. The returned error is non-nil only for
// structurally invalid problems; infeasible/unbounded outcomes are reported
// through Solution.Status.
func Solve(p *Problem) (Solution, error) {
	return SolveMaxIters(p, defaultMax)
}

// SolveMaxIters is Solve with an explicit simplex iteration limit.
func SolveMaxIters(p *Problem, maxIters int) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	var ws Workspace
	return ws.SolveMaxIters(p, maxIters), nil
}

// Workspace owns the solver's working arrays so repeated solves of
// same-shaped problems -- branch-and-bound nodes differing only in bounds
// -- reuse one arena instead of allocating a fresh m x total tableau per
// solve. The zero value is ready to use. A Workspace is not safe for
// concurrent use, and the X slice of a returned Solution aliases an
// internal buffer: it is valid only until the next solve on the same
// workspace (copy it to keep it).
//
// Workspace solves skip Problem.Validate for speed; callers must pass
// structurally valid problems (package-level Solve validates).
type Workspace struct {
	t tableau

	// Obs, when non-nil, receives per-solve counter updates (solves,
	// pivot iterations, iteration-limit hits). It is fed once per solve
	// after the pivot loop finishes -- never inside it -- so enabling
	// metrics does not touch the simplex hot path.
	Obs *obs.LPMetrics

	// ReuseBasis enables starting-basis reuse across same-shaped solves
	// (warm.go): after an optimal solve the basis is saved, and the next
	// solve of a same-shaped problem re-installs it instead of running
	// phase 1, falling back to the cold two-phase path when the basis is
	// stale. Off by default. Reuse makes a solve's pivot sequence depend
	// on the previous solve, so it must stay off on workspaces whose
	// solve order is nondeterministic (e.g. sync.Pool-shared arenas).
	ReuseBasis bool
	// BasisReuses counts solves that started from an installed basis.
	BasisReuses int

	// Core selects the simplex engine (CoreAuto by default). Saved bases
	// are portable between engines: both reference the same column
	// numbering, so a warm basis saved by one installs on the other.
	Core Core
	// RefactorEvery, when > 0, forces the sparse core to refactorize the
	// basis after that many eta updates; 0 selects the adaptive default.
	// Tests use 1 to exercise the refactorization path on every pivot.
	RefactorEvery int
	// Factorizations and Refactorizations count sparse-core basis
	// factorizations: total, and the subset triggered mid-solve by the
	// eta-file budget or a stability alarm (rather than by a warm
	// install or crash start).
	Factorizations   int
	Refactorizations int
	// RepairFails counts dual-repair attempts (either core) that could
	// not restore feasibility of an installed basis, forcing the cold
	// path. A nonzero delta on a solve is an anomaly signal: the reused
	// basis was stale beyond the pivot budget.
	RepairFails int

	// PricingWindow tunes the sparse core's partial pricing. 0 (the
	// default) applies the automatic policy: window pricing only when the
	// priced column count reaches partialPricingMinCols. A positive value
	// forces that window size whenever the priced prefix exceeds it (test
	// and benchmark hook); a negative value disables partial pricing
	// entirely. The dense core always prices fully. Bland's rule, when
	// triggered, always scans the full ascending prefix: anti-cycling
	// needs the first-eligible-by-index guarantee.
	PricingWindow int
	// PartialPricingSolves counts solves in which at least one pivot was
	// priced through a partial window.
	PartialPricingSolves int

	// grow-only arenas backing the tableau.
	abuf  []float64 // m x total matrix storage
	cols  []varCol  // per-variable column mapping
	brow  []float64 // adjusted RHS per row
	esens []Sense   // effective sense per row (after sign normalization)
	flip  []bool    // row was sign-normalized
	ph1   []float64 // phase-1 objective
	red   []float64 // reduced costs
	vals  []float64 // structural column values during extraction
	xbuf  []float64 // extracted solution

	// saved basis snapshot for ReuseBasis (warm.go).
	savedBasis                     []int
	savedAtUpper                   []bool
	savedM, savedTotal, savedNcols int
	savedOK                        bool

	// seed is a one-shot crash-basis candidate for the next solve
	// (warm.go, SeedPoint).
	seed []float64

	// shape analysis shared by both cores (set by analyze).
	shp      shape
	fixedCol []bool  // structural column is fixed by its bounds (rng == 0)
	price    []int32 // pricing index: enterable columns, ascending

	// sp holds the sparse revised simplex engine, allocated on first use
	// so dense-only workspaces (the seed-scale sim) never pay for it.
	sp *sparseCore

	// blandOverride, when > 0, switches pricing to Bland's rule after
	// that many iterations of a phase (test hook; 0 keeps the default
	// 4*(m+total) threshold).
	blandOverride int
}

// shape is the tableau geometry both cores share. Saved bases reference
// these column indices, which is what makes them portable across engines
// and across solves of same-shaped problems.
type shape struct {
	m, ncols, nslack, nartif, total, artbase int
}

// Solve optimizes with the default iteration limit, reusing the arena.
func (ws *Workspace) Solve(p *Problem) Solution {
	return ws.SolveMaxIters(p, defaultMax)
}

// SolveMaxIters optimizes with an explicit simplex iteration limit,
// reusing the arena. See the Workspace doc for aliasing and validation
// caveats.
func (ws *Workspace) SolveMaxIters(p *Problem, maxIters int) Solution {
	if ws.useSparse(p) {
		return ws.solveSparse(p, maxIters)
	}
	return ws.solveDense(p, maxIters)
}

// useSparse applies the engine selection policy (Core field, crossover
// heuristic) to one problem.
func (ws *Workspace) useSparse(p *Problem) bool {
	switch ws.Core {
	case CoreDense:
		return false
	case CoreSparse:
		return true
	}
	return len(p.C)+len(p.B) >= sparseCrossover
}

// pricingWindowFor resolves the partial-pricing window for a priced
// prefix of the given length; 0 means price the whole prefix.
func (ws *Workspace) pricingWindowFor(priced int) int {
	switch {
	case ws.PricingWindow < 0:
		return 0
	case ws.PricingWindow > 0:
		if priced > ws.PricingWindow {
			return ws.PricingWindow
		}
		return 0
	default:
		if priced >= partialPricingMinCols {
			return partialPricingWindow
		}
		return 0
	}
}

func (ws *Workspace) solveDense(p *Problem, maxIters int) Solution {
	// With a saved basis on hand, build shape-stably (negative LE
	// right-hand sides stay unflipped) so branch-tightened bounds cannot
	// change the tableau shape out from under the install.
	warmTry := ws.ReuseBasis && ws.savedOK
	seed := ws.seed
	ws.seed = nil
	if !ws.build(p, warmTry) {
		// Bound analysis found an empty variable box: infeasible.
		if ws.Obs != nil {
			ws.Obs.Solves.Inc()
		}
		return Solution{Status: StatusInfeasible}
	}
	t := &ws.t
	reused := false
	if warmTry {
		if ws.basisShapeMatches() && ws.installBasis() && (t.primalFeasible() || ws.dualRepair(2*t.m+16)) {
			reused = true
		} else {
			// A failed reuse (shape drift, singular basis, or infeasibility
			// the dual repair could not fix) leaves the tableau unusable for
			// the cold path -- partially eliminated, possibly with negative
			// right-hand sides -- so rebuild normalized, keeping any repair
			// pivots in the iteration count. Stale bases rarely recover, so
			// drop the snapshot rather than retry it every solve.
			spent := t.iters
			ws.savedOK = false
			ws.build(p, false)
			t.iters = spent
		}
	}
	if !reused && seed != nil && t.nartif == 0 {
		// No previous basis applies, but the caller supplied a feasible
		// point: crash a basis at its vertex and go straight to phase 2.
		if ws.crashBasis(p, seed) && (t.primalFeasible() || ws.dualRepair(2*t.m+16)) {
			reused = true
		} else {
			spent := t.iters
			ws.build(p, false)
			t.iters = spent
		}
	}
	var st Status
	if reused {
		// Warm start: the previous optimal basis is still primal-feasible,
		// so phase 2 runs directly from it and phase 1 is skipped.
		ws.BasisReuses++
		st, _ = t.optimize(ws, t.obj, maxIters, false)
	} else {
		st = t.solve(ws, maxIters)
	}
	if ws.ReuseBasis && st == StatusOptimal {
		ws.saveBasis()
	}
	sol := Solution{Status: st, Iters: t.iters}
	if ws.Obs != nil {
		ws.Obs.Solves.Inc()
		ws.Obs.Iters.Add(int64(t.iters))
		if st == StatusIterLimit {
			ws.Obs.IterLimited.Inc()
		}
		if ws.Obs.DenseSolves != nil {
			ws.Obs.DenseSolves.Inc()
		}
		if ws.Obs.InstanceNNZ != nil {
			ws.Obs.InstanceNNZ.SetMax(float64(p.NNZ()))
		}
	}
	if st != StatusOptimal {
		return sol
	}
	ws.xbuf = growFloats(ws.xbuf, len(p.C))
	sol.X = ws.xbuf[:len(p.C)]
	ws.vals = growFloats(ws.vals, t.ncols)
	t.extract(p, ws.cols, ws.vals[:t.ncols], sol.X)
	for j, c := range p.C {
		sol.Objective += c * sol.X[j]
	}
	return sol
}

// varCol maps one original variable onto structural tableau columns.
type varCol struct {
	col    int     // primary column index
	neg    int     // second column of a split free variable; -1 if none
	shift  float64 // lower bound (normal) or upper bound (mirror)
	mirror bool    // x = shift - x': free-below with finite upper
}

// tableau is the working state of the bounded-variable two-phase simplex.
// Invariants: a holds B^-1 A (updated by pivots), rhs holds the CURRENT
// basic-variable values (not B^-1 b: nonbasic variables at their upper
// bound contribute), and every nonbasic column sits at 0 or at rng[j]
// per atUpper[j] in the shifted space.
type tableau struct {
	m       int         // constraint rows
	total   int         // total columns incl. slacks/artificials
	ncols   int         // structural columns
	a       [][]float64 // m x total
	rhs     []float64   // m: basic-variable values
	rng     []float64   // per-column range upper-lower (shifted); +inf ok
	obj     []float64   // phase-2 objective per column
	basis   []int       // basic column per row
	inBasis []bool      // per-column basis membership
	atUpper []bool      // nonbasic column sits at its upper bound
	cb      []float64   // scratch: objective of basic columns
	nartif  int
	artbase int // first artificial column index
	iters   int
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// analyze computes the variable/column mapping, row normalization, and
// tableau shape shared by both cores, plus the pricing index (enterable
// columns; variables fixed by their bounds are excluded once here instead
// of being skipped by every pricing sweep). It returns false when some
// variable box is empty (lower > upper), which the caller reports as
// infeasible.
//
// allowNegRHS keeps LE rows whose (shift-adjusted) right-hand side is
// negative unflipped: the slack stays basic at a negative value instead of
// the row gaining an artificial. That start is primal infeasible, so it is
// only valid on the basis-reuse path, where the basis install overwrites
// the basis anyway and dualRepair settles feasibility -- but it makes the
// tableau SHAPE depend only on senses and variable freeness, not on bound
// values, which is what lets a branch-and-bound child (whose tightened
// bound drives an RHS negative) reuse its parent's basis. The cold path
// always builds with allowNegRHS=false, preserving the b >= 0 invariant
// the two-phase simplex relies on.
func (ws *Workspace) analyze(p *Problem, allowNegRHS bool) bool {
	n := len(p.C)
	if cap(ws.cols) < n {
		ws.cols = make([]varCol, n)
	}
	ws.cols = ws.cols[:n]
	ncols := 0
	for j := 0; j < n; j++ {
		lo, up := p.lower(j), p.upper(j)
		if up < lo-1e-12 {
			return false
		}
		vc := varCol{col: ncols, neg: -1}
		switch {
		case !math.IsInf(lo, -1):
			vc.shift = lo
			ncols++
		case !math.IsInf(up, 1):
			// Free below, capped above: mirror so x' = up - x >= 0.
			vc.mirror = true
			vc.shift = up
			ncols++
		default:
			// Fully free: split into x⁺ - x⁻.
			vc.neg = ncols + 1
			ncols += 2
		}
		ws.cols[j] = vc
	}

	m := len(p.B)
	ws.brow = growFloats(ws.brow, m)
	ws.flip = growBools(ws.flip, m)
	if cap(ws.esens) < m {
		ws.esens = make([]Sense, m)
	}
	ws.esens = ws.esens[:m]
	nslack, nartif := 0, 0
	for i := 0; i < m; i++ {
		b := p.B[i]
		// Shift contributions: x = shift + x' (normal) or shift - x'
		// (mirror) both subtract a_ij * shift from the RHS.
		if p.RowPtr != nil {
			for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
				if vc := &ws.cols[p.ColIdx[k]]; vc.neg < 0 {
					b -= p.Vals[k] * vc.shift
				}
			}
		} else {
			row := p.A[i]
			for j := 0; j < n; j++ {
				if ws.cols[j].neg < 0 {
					b -= row[j] * ws.cols[j].shift
				}
			}
		}
		s := p.Senses[i]
		// Normalize negative RHS by negating the row (except LE rows on the
		// reuse path; see the allowNegRHS doc).
		fl := b < 0 && !(allowNegRHS && s == LE)
		if fl {
			b = -b
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		ws.brow[i], ws.esens[i], ws.flip[i] = b, s, fl
		switch s {
		case LE:
			nslack++
		case GE:
			nslack++
			nartif++
		case EQ:
			nartif++
		}
	}

	total := ncols + nslack + nartif
	ws.shp = shape{m: m, ncols: ncols, nslack: nslack, nartif: nartif,
		total: total, artbase: ncols + nslack}

	// Fixed structural columns (upper == lower in shifted space, i.e.
	// rng 0) can never enter the basis; mark them so pricing skips them
	// without a per-iteration range check. Branch-and-bound bound
	// tightening fixes many variables, so at depth this prunes a large
	// slice of every Dantzig sweep.
	ws.fixedCol = growBools(ws.fixedCol, ncols)
	for c := range ws.fixedCol[:ncols] {
		ws.fixedCol[c] = false
	}
	for j := 0; j < n; j++ {
		vc := ws.cols[j]
		if vc.neg < 0 && !vc.mirror {
			if up := p.upper(j); !math.IsInf(up, 1) && up-vc.shift <= 0 {
				ws.fixedCol[vc.col] = true
			}
		}
	}
	if cap(ws.price) < total {
		ws.price = make([]int32, 0, total)
	}
	ws.price = ws.price[:0]
	for c := 0; c < total; c++ {
		if c < ncols && ws.fixedCol[c] {
			continue
		}
		ws.price = append(ws.price, int32(c))
	}
	return true
}

// build assembles the dense tableau for p inside the workspace arena:
// shape analysis followed by dense materialization. Returns false when
// some variable box is empty.
func (ws *Workspace) build(p *Problem, allowNegRHS bool) bool {
	if !ws.analyze(p, allowNegRHS) {
		return false
	}
	ws.materializeDense(p)
	return true
}

// materializeDense fills the dense tableau from the analysis in ws.shp,
// ws.cols, ws.brow, ws.esens and ws.flip.
func (ws *Workspace) materializeDense(p *Problem) {
	n := len(p.C)
	m, ncols, total := ws.shp.m, ws.shp.ncols, ws.shp.total
	t := &ws.t
	t.m, t.total, t.ncols = m, total, ncols
	t.nartif, t.artbase = ws.shp.nartif, ws.shp.artbase
	t.iters = 0

	ws.abuf = growFloats(ws.abuf, m*total)
	for i := range ws.abuf[:m*total] {
		ws.abuf[i] = 0
	}
	if cap(t.a) < m {
		t.a = make([][]float64, m)
	}
	t.a = t.a[:m]
	for i := 0; i < m; i++ {
		t.a[i] = ws.abuf[i*total : (i+1)*total]
	}
	t.rhs = growFloats(t.rhs, m)
	t.basis = growInts(t.basis, m)
	t.cb = growFloats(t.cb, m)
	t.inBasis = growBools(t.inBasis, total)
	t.atUpper = growBools(t.atUpper, total)
	t.rng = growFloats(t.rng, total)
	t.obj = growFloats(t.obj, total)
	for j := 0; j < total; j++ {
		t.inBasis[j] = false
		t.atUpper[j] = false
		t.rng[j] = math.Inf(1)
		t.obj[j] = 0
	}
	for j := 0; j < n; j++ {
		vc := ws.cols[j]
		switch {
		case vc.neg >= 0:
			t.obj[vc.col], t.obj[vc.neg] = p.C[j], -p.C[j]
		case vc.mirror:
			t.obj[vc.col] = -p.C[j]
		default:
			t.obj[vc.col] = p.C[j]
			if up := p.upper(j); !math.IsInf(up, 1) {
				r := up - vc.shift
				if r < 0 {
					r = 0 // lower ~ upper within tolerance: fixed variable
				}
				t.rng[vc.col] = r
			}
		}
	}

	slackCol, artCol := ncols, t.artbase
	for i := 0; i < m; i++ {
		sgn := 1.0
		if ws.flip[i] {
			sgn = -1
		}
		ri := t.a[i]
		if p.RowPtr != nil {
			for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
				vc := ws.cols[p.ColIdx[k]]
				c := p.Vals[k] * sgn
				if vc.neg >= 0 {
					ri[vc.col] = c
					ri[vc.neg] = -c
				} else if vc.mirror {
					ri[vc.col] = -c
				} else {
					ri[vc.col] = c
				}
			}
		} else {
			row := p.A[i]
			for j := 0; j < n; j++ {
				vc := ws.cols[j]
				c := row[j] * sgn
				if vc.neg >= 0 {
					ri[vc.col] = c
					ri[vc.neg] = -c
				} else if vc.mirror {
					ri[vc.col] = -c
				} else {
					ri[vc.col] = c
				}
			}
		}
		t.rhs[i] = ws.brow[i]
		switch ws.esens[i] {
		case LE:
			ri[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			ri[slackCol] = -1
			slackCol++
			ri[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			ri[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.inBasis[t.basis[i]] = true
	}
	ws.red = growFloats(ws.red, total)
}

// solve runs phase 1 (if artificials exist) then phase 2.
func (t *tableau) solve(ws *Workspace, maxIters int) Status {
	if t.nartif > 0 {
		// Phase 1: maximize -(sum of artificials).
		ws.ph1 = growFloats(ws.ph1, t.total)
		ph1 := ws.ph1[:t.total]
		for j := range ph1 {
			ph1[j] = 0
		}
		for j := t.artbase; j < t.total; j++ {
			ph1[j] = -1
		}
		st, objVal := t.optimize(ws, ph1, maxIters, true)
		if st == StatusUnbounded {
			// Phase-1 objective is bounded above by 0; treat as numeric
			// failure.
			return StatusIterLimit
		}
		if st != StatusOptimal {
			return st
		}
		if objVal < -feasTol {
			return StatusInfeasible
		}
		// Pivot remaining artificials out of the basis where possible.
		t.evictArtificials()
	}
	st, _ := t.optimize(ws, t.obj, maxIters, false)
	return st
}

// optimize runs simplex iterations for the given objective, returning the
// status and the achieved objective value (in shifted space). Columns at or
// beyond artbase are never allowed to enter during phase 2.
func (t *tableau) optimize(ws *Workspace, obj []float64, maxIters int, phase1 bool) (Status, float64) {
	limit := t.total
	if !phase1 {
		limit = t.artbase // artificials may not re-enter
	}
	cb := t.cb
	red := ws.red
	for iter := 0; ; iter++ {
		if t.iters >= maxIters {
			return StatusIterLimit, 0
		}
		t.iters++
		for i := 0; i < t.m; i++ {
			cb[i] = obj[t.basis[i]]
		}
		// Price every column in one row-major sweep: red = c - A^T cB
		// (the tableau columns hold B^-1 A, so this is the reduced cost).
		copy(red[:limit], obj[:limit])
		for i := 0; i < t.m; i++ {
			c := cb[i]
			if c == 0 {
				continue
			}
			ri := t.a[i][:limit]
			rd := red[:len(ri)]
			for j, v := range ri {
				rd[j] -= c * v
			}
		}
		// Entering column: a nonbasic at its lower bound improves by
		// increasing (red > 0); one at its upper bound by decreasing
		// (red < 0). Dantzig normally; Bland (first eligible) when the
		// iteration count in this phase grows large (anti-cycling). The
		// sweep walks ws.price, which already excludes bound-fixed
		// columns; it is ascending, so the first eligible under Bland is
		// the same column the full scan would pick.
		blandAfter := 4 * (t.m + t.total)
		if ws.blandOverride > 0 {
			blandAfter = ws.blandOverride
		}
		bland := iter > blandAfter
		enter := -1
		dir := 1.0
		best := eps
		for _, j32 := range ws.price {
			j := int(j32)
			if j >= limit {
				break
			}
			if t.inBasis[j] {
				continue
			}
			r := red[j]
			if t.atUpper[j] {
				r = -r
			}
			if r > best {
				enter = j
				dir = 1
				if t.atUpper[j] {
					dir = -1
				}
				if bland {
					break
				}
				best = r
			}
		}
		if enter < 0 {
			return StatusOptimal, t.objValue(obj)
		}
		// Ratio test along direction dir: the entering variable moves by
		// step >= 0 until (a) a basic variable hits its lower bound,
		// (b) a basic variable hits its upper bound, or (c) the entering
		// variable reaches its own opposite bound (a bound flip: no
		// pivot, just reanchor the column).
		step := t.rng[enter]
		fl := !math.IsInf(step, 1)
		leave, leaveAtUpper := -1, false
		for i := 0; i < t.m; i++ {
			w := dir * t.a[i][enter]
			var r float64
			var hitUpper bool
			if w > eps {
				r = t.rhs[i] / w
			} else if w < -eps {
				ub := t.rng[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				r = (ub - t.rhs[i]) / -w
				hitUpper = true
			} else {
				continue
			}
			if r < step-eps || (r < step+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				step = r
				leave = i
				leaveAtUpper = hitUpper
				fl = false
			}
		}
		if leave < 0 && !fl {
			return StatusUnbounded, 0
		}
		if step < 0 {
			step = 0 // degenerate: clamp numerical noise
		}
		if fl {
			// Bound flip: the entering variable swings to its other
			// bound; basic values shift, the basis is unchanged.
			for i := 0; i < t.m; i++ {
				t.rhs[i] -= step * dir * t.a[i][enter]
			}
			t.atUpper[enter] = !t.atUpper[enter]
			continue
		}
		t.pivot(leave, enter, dir, step, leaveAtUpper)
	}
}

// objValue computes the current objective in shifted space: basic values
// plus nonbasic-at-upper contributions.
func (t *tableau) objValue(obj []float64) float64 {
	val := 0.0
	for i := 0; i < t.m; i++ {
		val += obj[t.basis[i]] * t.rhs[i]
	}
	for j := 0; j < t.total; j++ {
		if t.atUpper[j] && !t.inBasis[j] {
			val += obj[j] * t.rng[j]
		}
	}
	return val
}

// pivot moves the entering column into the basis at row `row`, with the
// entering variable having travelled `step` from its current bound in
// direction `dir`. The leaving variable exits at its lower bound, or at
// its upper bound when leaveAtUpper is set. rhs is updated to the new
// basic values directly (it holds values, not B^-1 b), then the matrix
// gets the usual Gauss-Jordan elimination.
func (t *tableau) pivot(row, col int, dir, step float64, leaveAtUpper bool) {
	for i := 0; i < t.m; i++ {
		if i != row {
			t.rhs[i] -= step * dir * t.a[i][col]
		}
	}
	if dir > 0 {
		t.rhs[row] = step // entered rising from its lower bound
	} else {
		t.rhs[row] = t.rng[col] - step // entered falling from its upper bound
	}
	lv := t.basis[row]
	t.atUpper[lv] = leaveAtUpper

	pr := t.a[row][:t.total]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i][:len(pr)]
		for j, v := range pr {
			ri[j] -= f * v
		}
	}
	t.inBasis[lv] = false
	t.basis[row] = col
	t.inBasis[col] = true
	t.atUpper[col] = false
}

// evictArtificials pivots basic artificial variables (at value ~0 after a
// feasible phase 1) out of the basis when a non-artificial pivot exists.
// A zero-step pivot swaps the basis without moving the point.
func (t *tableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artbase {
			continue
		}
		for j := 0; j < t.artbase; j++ {
			if !t.inBasis[j] && math.Abs(t.a[i][j]) > eps {
				dir := 1.0
				if t.atUpper[j] {
					dir = -1
				}
				t.pivot(i, j, dir, 0, false)
				break
			}
		}
	}
}

// extract recovers the original-space variable values into x, using vals
// (len ncols) as scratch for per-column values in shifted space.
func (t *tableau) extract(p *Problem, cols []varCol, vals, x []float64) {
	// Structural column values: basic from rhs, nonbasic at one bound.
	for c := range vals {
		if t.atUpper[c] {
			vals[c] = t.rng[c]
		} else {
			vals[c] = 0
		}
	}
	for i, b := range t.basis {
		if b < t.ncols {
			vals[b] = t.rhs[i]
		}
	}
	for j := range x {
		vc := cols[j]
		switch {
		case vc.neg >= 0:
			x[j] = vals[vc.col] - vals[vc.neg]
		case vc.mirror:
			x[j] = vc.shift - vals[vc.col]
		default:
			x[j] = vc.shift + vals[vc.col]
		}
		// Snap to bounds within tolerance to suppress simplex noise.
		if lo := p.lower(j); x[j] < lo {
			x[j] = lo
		}
		if ub := p.upper(j); x[j] > ub {
			x[j] = ub
		}
	}
}
