package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestFreeVariableFarOptimum pins the free-variable regression: the old
// tableau shifted free-below variables by a hardcoded -1e9, so any model
// whose optimum sat far from that anchor was numerically poisoned. The
// bounded rework splits fully-free variables into x⁺ - x⁻, which must
// recover an optimum millions away from zero exactly.
func TestFreeVariableFarOptimum(t *testing.T) {
	inf := math.Inf(1)
	p := &Problem{
		C:      []float64{-1},
		A:      [][]float64{{1}},
		B:      []float64{-2e6},
		Senses: []Sense{GE},
		Lower:  []float64{math.Inf(-1)},
		Upper:  []float64{inf},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-(-2e6)) > 1e-3 || math.Abs(sol.Objective-2e6) > 1e-3 {
		t.Errorf("free-variable optimum: x = %v obj = %v, want x = -2e6 obj = 2e6", sol.X[0], sol.Objective)
	}
}

// TestFreeVariableInEquality exercises the split representation inside an
// equality row, where both halves of x⁺ - x⁻ carry coefficients.
func TestFreeVariableInEquality(t *testing.T) {
	p := &Problem{
		C:      []float64{1, -1},
		A:      [][]float64{{1, 1}},
		B:      []float64{-5e5},
		Senses: []Sense{EQ},
		Lower:  []float64{math.Inf(-1), 0},
		Upper:  []float64{math.Inf(1), math.Inf(1)},
	}
	sol := solveOK(t, p)
	// x = -5e5 - y, objective = -5e5 - 2y, maximized at y = 0.
	if math.Abs(sol.X[0]-(-5e5)) > 1e-3 || math.Abs(sol.X[1]) > 1e-6 {
		t.Errorf("equality free variable: x = %v, want (-5e5, 0)", sol.X)
	}
}

// TestFreeBelowMirrored covers the free-below, finite-above case, which the
// solver handles by mirroring (x = upper - x').
func TestFreeBelowMirrored(t *testing.T) {
	p := &Problem{
		C:      []float64{1},
		A:      [][]float64{{1}},
		B:      []float64{4e6},
		Senses: []Sense{LE},
		Lower:  []float64{math.Inf(-1)},
		Upper:  []float64{7e6},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-4e6) > 1e-3 {
		t.Errorf("mirrored free-below: x = %v, want 4e6", sol.X[0])
	}
	// Without the row, the variable bound itself decides.
	p2 := &Problem{C: []float64{1}, Lower: []float64{math.Inf(-1)}, Upper: []float64{7e6}}
	sol2 := solveOK(t, p2)
	if math.Abs(sol2.X[0]-7e6) > 1e-3 {
		t.Errorf("mirrored bound optimum: x = %v, want 7e6", sol2.X[0])
	}
}

// TestBoundFlipsWithoutRows solves a rowless box problem: the optimum is
// reached purely by flipping variables to their profitable bound, with no
// pivots available at all.
func TestBoundFlipsWithoutRows(t *testing.T) {
	p := &Problem{
		C:     []float64{2, -1, 3},
		Lower: []float64{0, 0, 0},
		Upper: []float64{1, 1, 2},
	}
	sol := solveOK(t, p)
	want := []float64{1, 0, 2}
	for j, w := range want {
		if math.Abs(sol.X[j]-w) > 1e-9 {
			t.Fatalf("box optimum: x = %v, want %v", sol.X, want)
		}
	}
	if math.Abs(sol.Objective-8) > 1e-9 {
		t.Errorf("box objective = %v, want 8", sol.Objective)
	}
}

// TestBasicLeavesAtUpperBound forces the ratio-test branch where a basic
// variable exits the basis at its upper bound rather than at zero.
func TestBasicLeavesAtUpperBound(t *testing.T) {
	// max x subject to x - y <= 0: x chases y, and y is capped at 3.
	p := &Problem{
		C:      []float64{1, 0},
		A:      [][]float64{{1, -1}},
		B:      []float64{0},
		Senses: []Sense{LE},
		Lower:  []float64{0, 0},
		Upper:  []float64{5, 3},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-3) > 1e-9 {
		t.Errorf("objective = %v, want 3 (x capped through y's upper bound)", sol.Objective)
	}
}

// TestWorkspaceMatchesSolve checks that a reused Workspace returns the same
// status and objective as the validating one-shot path across random
// bounded LPs, including re-solves with mutated bounds (the branch-and-bound
// access pattern).
func TestWorkspaceMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ws Workspace
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		p, _ := randomBoundedLP(rng, n, m)
		want := mustSolve(t, p)
		got := ws.Solve(p)
		if got.Status != want.Status {
			t.Fatalf("trial %d: workspace status %v, solve status %v", trial, got.Status, want.Status)
		}
		if want.Status == StatusOptimal && math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
			t.Fatalf("trial %d: workspace objective %v, solve objective %v", trial, got.Objective, want.Objective)
		}
		// Re-solve the same shape with one variable clamped, as branch and
		// bound does; the workspace must agree with a fresh solve again.
		j := rng.Intn(n)
		p.Upper[j] = math.Floor(p.Upper[j] * rng.Float64()) // 0 or the old bound

		want, err := SolveMaxIters(p, 200000) // clamping may be infeasible; compare statuses too
		if err != nil {
			t.Fatalf("trial %d (clamped): %v", trial, err)
		}
		got = ws.Solve(p)
		if got.Status != want.Status {
			t.Fatalf("trial %d (clamped): workspace status %v, solve status %v", trial, got.Status, want.Status)
		}
		if want.Status == StatusOptimal && math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
			t.Fatalf("trial %d (clamped): workspace objective %v, solve objective %v", trial, got.Objective, want.Objective)
		}
	}
}

// TestWorkspaceResolveAllocsNothing is the tentpole's allocation guarantee:
// after the first solve sizes the arena, re-solving a same-shaped problem
// performs zero heap allocations.
func TestWorkspaceResolveAllocsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, _ := randomBoundedLP(rng, 8, 6)
	var ws Workspace
	ws.Solve(p) // size the arena
	allocs := testing.AllocsPerRun(50, func() {
		if sol := ws.Solve(p); sol.Status != StatusOptimal {
			t.Fatalf("re-solve status %v", sol.Status)
		}
	})
	if allocs != 0 {
		t.Errorf("re-solve allocates %v times per run, want 0", allocs)
	}
}

// TestUpperBoundsNoExtraRows verifies upper bounds are honored on a problem
// whose every variable finishes at a bound, mixing finite ranges and a
// constraint that binds one variable below its cap.
func TestUpperBoundsNoExtraRows(t *testing.T) {
	p := &Problem{
		C:      []float64{3, 2, 1},
		A:      [][]float64{{1, 1, 1}},
		B:      []float64{2.5},
		Senses: []Sense{LE},
		Lower:  []float64{0, 0, 0},
		Upper:  []float64{1, 1, 1},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-5.5) > 1e-9 {
		t.Errorf("objective = %v, want 5.5 (x=(1,1,0.5))", sol.Objective)
	}
}
