package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomBoundedLP builds a random LP over the unit box with LE rows
// anchored to a known feasible point, so it is always feasible and bounded.
func randomBoundedLP(rng *rand.Rand, n, m int) (*Problem, []float64) {
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = rng.Float64()
	}
	p := &Problem{
		C:     make([]float64, n),
		Upper: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.C[j] = rng.Float64()*4 - 2
		p.Upper[j] = 1
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		lhs := 0.0
		for j := range row {
			row[j] = rng.Float64()*2 - 1
			lhs += row[j] * x0[j]
		}
		p.A = append(p.A, row)
		p.B = append(p.B, lhs+rng.Float64()*0.5)
		p.Senses = append(p.Senses, LE)
	}
	return p, x0
}

// TestAddingConstraintNeverImproves: appending a row can only shrink the
// feasible region, so the optimum can only decrease (maximization).
func TestAddingConstraintNeverImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		p, x0 := randomBoundedLP(rng, n, 1+rng.Intn(4))
		base := mustSolve(t, p)

		// Add a constraint that keeps x0 feasible.
		row := make([]float64, n)
		lhs := 0.0
		for j := range row {
			row[j] = rng.Float64()*2 - 1
			lhs += row[j] * x0[j]
		}
		p.A = append(p.A, row)
		p.B = append(p.B, lhs+rng.Float64()*0.2)
		p.Senses = append(p.Senses, LE)
		tightened := mustSolve(t, p)

		if tightened.Objective > base.Objective+1e-6 {
			t.Fatalf("trial %d: tightening improved objective: %v > %v",
				trial, tightened.Objective, base.Objective)
		}
	}
}

// TestScalingObjectiveScalesOptimum: multiplying c by k > 0 multiplies the
// optimal value by k (same argmax set).
func TestScalingObjectiveScalesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 30; trial++ {
		p, _ := randomBoundedLP(rng, 2+rng.Intn(5), 1+rng.Intn(4))
		base := mustSolve(t, p)
		k := 0.5 + rng.Float64()*3
		for j := range p.C {
			p.C[j] *= k
		}
		scaled := mustSolve(t, p)
		if math.Abs(scaled.Objective-k*base.Objective) > 1e-6*(1+math.Abs(k*base.Objective)) {
			t.Fatalf("trial %d: scaled optimum %v != %v * %v",
				trial, scaled.Objective, k, base.Objective)
		}
	}
}

// TestRelaxingBoundNeverHurts: raising an upper bound can only improve a
// maximization problem.
func TestRelaxingBoundNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		p, _ := randomBoundedLP(rng, 2+rng.Intn(5), 1+rng.Intn(3))
		base := mustSolve(t, p)
		j := rng.Intn(len(p.C))
		p.Upper[j] = 2
		relaxed := mustSolve(t, p)
		if relaxed.Objective < base.Objective-1e-6 {
			t.Fatalf("trial %d: relaxing bound hurt: %v < %v",
				trial, relaxed.Objective, base.Objective)
		}
	}
}

// TestSolutionSatisfiesKKTStationaritySign spot-checks optimality: no
// single-coordinate move within the box and slack constraints improves the
// objective (first-order optimality for LPs over polytopes).
func TestSolutionSatisfiesKKTStationaritySign(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 30; trial++ {
		p, _ := randomBoundedLP(rng, 2+rng.Intn(4), 1+rng.Intn(3))
		sol := mustSolve(t, p)
		const step = 1e-5
		for j := range p.C {
			for _, dir := range []float64{step, -step} {
				cand := append([]float64(nil), sol.X...)
				cand[j] += dir
				if cand[j] < -1e-12 || cand[j] > p.Upper[j]+1e-12 {
					continue
				}
				feasible := true
				for i, row := range p.A {
					lhs := 0.0
					for k2, a := range row {
						lhs += a * cand[k2]
					}
					if lhs > p.B[i]+1e-12 {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				val := 0.0
				for k2, c := range p.C {
					val += c * cand[k2]
				}
				if val > sol.Objective+1e-7 {
					t.Fatalf("trial %d: local move on x[%d] improves: %v > %v",
						trial, j, val, sol.Objective)
				}
			}
		}
	}
}

func mustSolve(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	return sol
}
