package lp

import "math"

// Basis factorization for the sparse revised simplex (sparse.go). The
// basis inverse is held in product form as a sequence of eta
// transformations (an "eta file"): B^-1 = E_K ... E_1, where each eta
// differs from the identity in one column. A fresh factorization appends
// one eta per basis column in a fill-reducing order -- row-singleton
// triangularization first (provably zero fill), then the residual "bump"
// by ascending active-column count with largest-magnitude pivot rows, a
// Markowitz-style selection specialized to the near-triangular bases the
// flow-shaped scheduling models produce. Each simplex pivot afterwards
// appends a single update eta; when the update budget runs out the file
// is rebuilt from scratch (refactorization, sparse.go).

// etaFile is the product-form representation of B^-1. Eta k pivots on
// row piv[k] with pivot value pval[k]; its off-pivot nonzeros sit at rows
// row[ptr[k]:ptr[k+1]] with values val[ptr[k]:ptr[k+1]].
//
// FTRAN (v <- B^-1 v) applies etas in build order:
//
//	t := v[r] / w_r;  v[r] = t;  v[i] -= w_i * t
//
// BTRAN (y <- B^-T y) applies transposed etas in reverse order:
//
//	y[r] = (y[r] - sum_i w_i * y[i]) / w_r
//
// Both skip an eta entirely when its pivot coordinate is zero, which is
// what makes FTRAN of a sparse column cost O(nonzeros touched) instead of
// O(m * etas).
type etaFile struct {
	ptr  []int32
	row  []int32
	val  []float64
	piv  []int32
	pval []float64
}

func (e *etaFile) reset() {
	if e.ptr == nil {
		e.ptr = make([]int32, 1, 64)
	}
	e.ptr = e.ptr[:1]
	e.ptr[0] = 0
	e.row = e.row[:0]
	e.val = e.val[:0]
	e.piv = e.piv[:0]
	e.pval = e.pval[:0]
}

// count reports the number of etas in the file.
func (e *etaFile) count() int { return len(e.piv) }

// nnz reports the total stored entries (pivots plus off-pivot values).
func (e *etaFile) nnz() int { return len(e.row) + len(e.piv) }

// appendEta records the eta that maps the (already FTRANed) column w to
// the unit vector e_r. idx must list w's nonzero positions without
// duplicates; w is not modified.
func (e *etaFile) appendEta(w []float64, idx []int32, r int32) {
	for _, i := range idx {
		if i == r || w[i] == 0 {
			continue
		}
		e.row = append(e.row, i)
		e.val = append(e.val, w[i])
	}
	e.ptr = append(e.ptr, int32(len(e.row)))
	e.piv = append(e.piv, r)
	e.pval = append(e.pval, w[r])
}

// ftran applies B^-1 to a dense vector in place.
func (e *etaFile) ftran(v []float64) {
	for k := 0; k < len(e.piv); k++ {
		r := e.piv[k]
		t := v[r]
		if t == 0 {
			continue
		}
		t /= e.pval[k]
		v[r] = t
		for q := e.ptr[k]; q < e.ptr[k+1]; q++ {
			v[e.row[q]] -= e.val[q] * t
		}
	}
}

// btran applies B^-T to a dense vector in place.
func (e *etaFile) btran(y []float64) {
	for k := len(e.piv) - 1; k >= 0; k-- {
		r := e.piv[k]
		t := y[r]
		for q := e.ptr[k]; q < e.ptr[k+1]; q++ {
			t -= e.val[q] * y[e.row[q]]
		}
		y[r] = t / e.pval[k]
	}
}

// ftranTracked applies B^-1 to the scattered vector in sp.w, maintaining
// the invariant that every nonzero position is marked and listed in idx
// (no duplicates), so callers can run the ratio test and clear the vector
// in O(touched) instead of O(m). Returns the extended index list.
func (sp *sparseCore) ftranTracked(idx []int32) []int32 {
	e := &sp.eta
	v := sp.w
	for k := 0; k < len(e.piv); k++ {
		r := e.piv[k]
		t := v[r]
		if t == 0 {
			continue
		}
		t /= e.pval[k]
		v[r] = t
		for q := e.ptr[k]; q < e.ptr[k+1]; q++ {
			i := e.row[q]
			if !sp.mark[i] {
				sp.mark[i] = true
				idx = append(idx, i)
			}
			v[i] -= e.val[q] * t
		}
	}
	return idx
}

// scatterColumn loads CSC column j into the tracked work vector sp.w.
func (sp *sparseCore) scatterColumn(j int) []int32 {
	idx := sp.wIdx[:0]
	for q := sp.colPtr[j]; q < sp.colPtr[j+1]; q++ {
		i := sp.rowIdx[q]
		sp.w[i] = sp.vals[q]
		sp.mark[i] = true
		idx = append(idx, i)
	}
	return idx
}

// clearW re-zeroes the tracked work vector after use, restoring the
// all-zero/all-unmarked invariant scatterColumn relies on.
func (sp *sparseCore) clearW(idx []int32) {
	for _, i := range idx {
		sp.w[i] = 0
		sp.mark[i] = false
	}
	sp.wIdx = idx[:0]
}

// factorizeBasis rebuilds the eta file for sp.basis. On success sp.basis
// is re-indexed so sp.basis[r] is the column pivoted at row r -- the
// dense tableau's basis-by-row convention, which the ratio test, xB
// bookkeeping and saved-basis snapshots all share. Returns false when the
// basis is numerically singular at the given pivot tolerance, leaving the
// core for the caller to rebuild.
func (sp *sparseCore) factorizeBasis(tol float64) bool {
	m := sp.m
	e := &sp.eta
	e.reset()
	sp.etasAtFact = 0
	sp.factorizations++

	// Pattern of the basis submatrix by row: rowCols[rcp[r]:rcp[r+1]]
	// lists the basis positions whose column touches row r; act[r] is
	// that count, maintained as columns are placed.
	sp.act = growInt32s(sp.act, m)
	act := sp.act[:m]
	for i := range act {
		act[i] = 0
	}
	nnzB := 0
	for k := 0; k < m; k++ {
		c := sp.basis[k]
		for q := sp.colPtr[c]; q < sp.colPtr[c+1]; q++ {
			act[sp.rowIdx[q]]++
		}
		nnzB += int(sp.colPtr[c+1] - sp.colPtr[c])
	}
	sp.rowColsPtr = growInt32s(sp.rowColsPtr, m+1)
	rcp := sp.rowColsPtr[:m+1]
	rcp[0] = 0
	for i := 0; i < m; i++ {
		rcp[i+1] = rcp[i] + act[i]
	}
	sp.rowCols = growInt32s(sp.rowCols, nnzB)
	sp.colCnt = growInt32s(sp.colCnt, m)
	cur := sp.colCnt[:m]
	copy(cur, rcp[:m])
	for k := 0; k < m; k++ {
		c := sp.basis[k]
		for q := sp.colPtr[c]; q < sp.colPtr[c+1]; q++ {
			i := sp.rowIdx[q]
			sp.rowCols[cur[i]] = int32(k)
			cur[i]++
		}
	}

	sp.claimed = growBools(sp.claimed, m)
	sp.placedF = growBools(sp.placedF, m)
	claimed, placed := sp.claimed[:m], sp.placedF[:m]
	for i := 0; i < m; i++ {
		claimed[i] = false
		placed[i] = false
	}
	sp.order = growInt32s(sp.order, m)
	sp.pivRowOf = growInt32s(sp.pivRowOf, m)
	order, pivRow := sp.order[:m], sp.pivRowOf[:m]
	norder := 0

	// Row-singleton triangularization: a row touched by exactly one
	// unplaced column pins that column's pivot. No other column -- and
	// no eta fill, which only lands in rows a column touches -- can ever
	// produce a nonzero in such a row, so these etas trigger on no later
	// column: the triangular prefix factors with zero fill.
	queue := sp.queue[:0]
	for i := 0; i < m; i++ {
		if act[i] == 1 {
			queue = append(queue, int32(i))
		}
	}
	for head := 0; head < len(queue); head++ {
		r := queue[head]
		if claimed[r] || act[r] != 1 {
			continue
		}
		kk := int32(-1)
		for q := rcp[r]; q < rcp[r+1]; q++ {
			if !placed[sp.rowCols[q]] {
				kk = sp.rowCols[q]
				break
			}
		}
		if kk < 0 {
			continue
		}
		order[norder] = kk
		pivRow[norder] = r
		norder++
		placed[kk] = true
		claimed[r] = true
		c := sp.basis[kk]
		for q := sp.colPtr[c]; q < sp.colPtr[c+1]; q++ {
			i := sp.rowIdx[q]
			if !claimed[i] {
				act[i]--
				if act[i] == 1 {
					queue = append(queue, int32(i))
				}
			}
		}
	}
	sp.queue = queue[:0]

	// Bump: order the remaining columns by ascending active-row count
	// (stable counting sort, so equal counts keep basis-position order
	// and the factorization stays deterministic); rows are chosen
	// numerically below.
	if norder < m {
		maxc := 0
		for k := 0; k < m; k++ {
			if placed[k] {
				continue
			}
			c := sp.basis[k]
			cc := int32(0)
			for q := sp.colPtr[c]; q < sp.colPtr[c+1]; q++ {
				if !claimed[sp.rowIdx[q]] {
					cc++
				}
			}
			cur[k] = cc
			if int(cc) > maxc {
				maxc = int(cc)
			}
		}
		sp.bucket = growInt32s(sp.bucket, maxc+2)
		bucket := sp.bucket[:maxc+2]
		for i := range bucket {
			bucket[i] = 0
		}
		for k := 0; k < m; k++ {
			if !placed[k] {
				bucket[cur[k]+1]++
			}
		}
		for i := 0; i < maxc+1; i++ {
			bucket[i+1] += bucket[i]
		}
		base := norder
		for k := 0; k < m; k++ {
			if placed[k] {
				continue
			}
			pos := base + int(bucket[cur[k]])
			bucket[cur[k]]++
			order[pos] = int32(k)
			pivRow[pos] = -1
		}
		norder = m
	}

	// Numeric pass: FTRAN each column through the etas built so far,
	// pivot on its preassigned row when still sound, else on the
	// largest-magnitude entry in an unclaimed row.
	for t := 0; t < m; t++ {
		k := order[t]
		idx := sp.scatterColumn(sp.basis[k])
		idx = sp.ftranTracked(idx)
		r := int(pivRow[t])
		if r >= 0 && math.Abs(sp.w[r]) <= tol {
			claimed[r] = false // triangular pivot went numerically bad
			r = -1
		}
		if r < 0 {
			best := tol
			for _, i := range idx {
				if !claimed[i] && math.Abs(sp.w[i]) > best {
					best = math.Abs(sp.w[i])
					r = int(i)
				}
			}
			if r < 0 {
				sp.clearW(idx)
				return false // singular
			}
			claimed[r] = true
			pivRow[t] = int32(r)
		}
		e.appendEta(sp.w, idx, int32(r))
		sp.clearW(idx)
	}
	if f := e.nnz() - nnzB; f > 0 {
		sp.fillIn += f
	}

	// Re-index the basis by pivot row so position == row everywhere
	// downstream.
	sp.basisTmp = growInts(sp.basisTmp, m)
	for t := 0; t < m; t++ {
		sp.basisTmp[pivRow[t]] = sp.basis[order[t]]
	}
	copy(sp.basis[:m], sp.basisTmp[:m])
	sp.etasAtFact = e.count()
	return true
}
