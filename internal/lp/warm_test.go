package lp

import (
	"math"
	"math/rand"
	"testing"
)

// prodProblem is a small production-planning LP with a unique optimum.
func prodProblem() *Problem {
	return &Problem{
		C: []float64{3, 2, 4},
		A: [][]float64{
			{2, 1, 3},
			{1, 2, 1},
			{1, 0, 2},
		},
		B:      []float64{30, 20, 16},
		Senses: []Sense{LE, LE, LE},
	}
}

func solutionsEqual(a, b Solution, tol float64) bool {
	if a.Status != b.Status {
		return false
	}
	if a.Status != StatusOptimal {
		return true
	}
	if math.Abs(a.Objective-b.Objective) > tol {
		return false
	}
	for j := range a.X {
		if math.Abs(a.X[j]-b.X[j]) > tol {
			return false
		}
	}
	return true
}

// TestBasisReuseSameShapedResolve solves the same problem twice on one
// reusing workspace: the second solve must install the saved basis, skip
// phase 1, and return the identical solution.
func TestBasisReuseSameShapedResolve(t *testing.T) {
	p := prodProblem()
	var ws Workspace
	ws.ReuseBasis = true
	first := ws.Solve(p)
	if first.Status != StatusOptimal {
		t.Fatalf("first solve: %v", first.Status)
	}
	obj1, x1 := first.Objective, append([]float64(nil), first.X...)
	second := ws.Solve(p)
	if second.Status != StatusOptimal {
		t.Fatalf("second solve: %v", second.Status)
	}
	if ws.BasisReuses != 1 {
		t.Fatalf("BasisReuses = %d, want 1", ws.BasisReuses)
	}
	if math.Abs(second.Objective-obj1) > 1e-9 {
		t.Fatalf("objective drifted: %v vs %v", second.Objective, obj1)
	}
	for j := range x1 {
		if math.Abs(second.X[j]-x1[j]) > 1e-9 {
			t.Fatalf("solution drifted at %d: %v vs %v", j, second.X[j], x1[j])
		}
	}
	if second.Iters >= first.Iters {
		t.Errorf("reused solve took %d iters, cold %d; expected fewer", second.Iters, first.Iters)
	}
}

// TestBasisReuseDualRepair tightens a bound so the saved basis becomes
// primal infeasible: the dual repair must restore feasibility (or the
// fallback must engage) and the result must match a cold workspace.
func TestBasisReuseDualRepair(t *testing.T) {
	p := prodProblem()
	var ws Workspace
	ws.ReuseBasis = true
	if st := ws.Solve(p).Status; st != StatusOptimal {
		t.Fatalf("first solve: %v", st)
	}
	// Cap the most-used variable below its optimal value.
	p.Upper = []float64{math.Inf(1), math.Inf(1), 2}
	warm := ws.Solve(p)
	var cold Workspace
	want := cold.Solve(p)
	if !solutionsEqual(warm, want, 1e-8) {
		t.Fatalf("after bound change: warm %+v cold %+v", warm, want)
	}
}

// TestBasisReuseShapeMismatchFallsBack re-solves with a different row
// count: reuse must cleanly fall back to the cold path and still be right.
func TestBasisReuseShapeMismatchFallsBack(t *testing.T) {
	var ws Workspace
	ws.ReuseBasis = true
	if st := ws.Solve(prodProblem()).Status; st != StatusOptimal {
		t.Fatalf("first solve: %v", st)
	}
	p2 := &Problem{
		C:      []float64{1, 1},
		A:      [][]float64{{1, 2}, {3, 1}, {1, 0}},
		B:      []float64{4, 6, 1.5},
		Senses: []Sense{LE, LE, LE},
	}
	warm := ws.Solve(p2)
	var cold Workspace
	want := cold.Solve(p2)
	if !solutionsEqual(warm, want, 1e-8) {
		t.Fatalf("shape change: warm %+v cold %+v", warm, want)
	}
	if ws.BasisReuses != 0 {
		t.Fatalf("shape-mismatched basis claimed as reused")
	}
}

// TestSeedPointCrashBasis verifies the one-shot crash basis: seeding the
// optimum must produce the same solution in fewer iterations; seeding an
// infeasible or ill-shaped point must fall back to the cold path without
// changing the answer.
func TestSeedPointCrashBasis(t *testing.T) {
	p := prodProblem()
	var cold Workspace
	want := cold.Solve(p)
	if want.Status != StatusOptimal {
		t.Fatalf("cold: %v", want.Status)
	}
	opt := append([]float64(nil), want.X...)

	var ws Workspace
	ws.ReuseBasis = true
	ws.SeedPoint(opt)
	seeded := ws.Solve(p)
	if !solutionsEqual(seeded, want, 1e-8) {
		t.Fatalf("seeded: %+v want %+v", seeded, want)
	}
	if ws.BasisReuses != 1 {
		t.Fatalf("seed install not counted: BasisReuses = %d", ws.BasisReuses)
	}
	if seeded.Iters >= want.Iters {
		t.Errorf("seeded solve took %d iters, cold %d; expected fewer", seeded.Iters, want.Iters)
	}

	for _, bad := range [][]float64{
		{100, 100, 100}, // infeasible
		{1, 1},          // wrong length
		nil,             // no-op
	} {
		var w2 Workspace
		w2.ReuseBasis = true
		w2.SeedPoint(bad)
		got := w2.Solve(p)
		if !solutionsEqual(got, want, 1e-8) {
			t.Fatalf("bad seed %v changed the answer: %+v want %+v", bad, got, want)
		}
	}
}

// TestSeedPointIsOneShot ensures the seed applies to exactly one solve.
func TestSeedPointIsOneShot(t *testing.T) {
	p := prodProblem()
	var ws Workspace // ReuseBasis off: no saved basis either
	var cold Workspace
	want := cold.Solve(p)
	ws.SeedPoint(append([]float64(nil), want.X...))
	ws.ReuseBasis = true
	first := ws.Solve(p)
	if !solutionsEqual(first, want, 1e-8) {
		t.Fatalf("first: %+v want %+v", first, want)
	}
	// The second solve reuses the saved basis (not the consumed seed);
	// InvalidateBasis must clear both.
	ws.SeedPoint(want.X)
	ws.InvalidateBasis()
	got := ws.Solve(p)
	if !solutionsEqual(got, want, 1e-8) {
		t.Fatalf("after invalidate: %+v want %+v", got, want)
	}
	if got.Iters != want.Iters {
		t.Errorf("invalidated workspace did not run cold: %d iters vs %d", got.Iters, want.Iters)
	}
}

// TestBasisReuseRandomizedStream cross-checks a reusing workspace against
// cold solves over streams of perturbed problems: same shape, randomly
// drifting b, c, and bounds -- the frame-to-frame pattern the scheduler
// produces.
func TestBasisReuseRandomizedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		base := &Problem{
			C:      make([]float64, n),
			A:      make([][]float64, m),
			B:      make([]float64, m),
			Senses: make([]Sense, m),
			Upper:  make([]float64, n),
		}
		for j := 0; j < n; j++ {
			base.C[j] = rng.Float64()*4 - 1
			base.Upper[j] = 1 + rng.Float64()*3
		}
		for i := 0; i < m; i++ {
			base.A[i] = make([]float64, n)
			for j := range base.A[i] {
				base.A[i][j] = rng.Float64()*4 - 1
			}
			base.B[i] = rng.Float64() * 6
			base.Senses[i] = []Sense{LE, GE}[rng.Intn(2)]
		}
		var warm Workspace
		warm.ReuseBasis = true
		for step := 0; step < 5; step++ {
			p := *base
			p.B = append([]float64(nil), base.B...)
			for i := range p.B {
				p.B[i] += rng.Float64()*0.4 - 0.2
			}
			got := warm.SolveMaxIters(&p, 10000)
			var cold Workspace
			want := cold.SolveMaxIters(&p, 10000)
			if !solutionsEqual(got, want, 1e-7) {
				t.Fatalf("trial %d step %d: warm %+v cold %+v", trial, step, got, want)
			}
		}
	}
}
