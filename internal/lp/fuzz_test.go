package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSparseDenseDifferential cross-checks the two simplex engines on
// random bounded LPs: mixed row senses, free and mirrored variables,
// finite upper bounds, occasional duplicated (degenerate) rows. Statuses
// must agree, optimal objectives must match to 1e-6, and the sparse
// core's point must satisfy the model. The byte seed drives a PRNG so
// every fuzz input maps to one deterministic instance.
func FuzzSparseDenseDifferential(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(987654321))
	f.Add(int64(20260808))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(8)
		p := &Problem{
			C:      make([]float64, n),
			B:      make([]float64, m),
			Senses: make([]Sense, m),
			Lower:  make([]float64, n),
			Upper:  make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*10 - 5)
			switch rng.Intn(5) {
			case 0:
				p.Lower[j] = math.Inf(-1) // free below
			case 1:
				p.Lower[j] = -math.Round(rng.Float64() * 3)
			default:
				p.Lower[j] = 0
			}
			if rng.Intn(2) == 0 {
				lo := p.Lower[j]
				if math.IsInf(lo, -1) {
					lo = -3
				}
				p.Upper[j] = lo + math.Round(rng.Float64()*5)
			} else {
				p.Upper[j] = math.Inf(1)
			}
		}
		rows := make([][]float64, m)
		for i := 0; i < m; i++ {
			if i > 0 && rng.Intn(6) == 0 {
				// Duplicated row: a degenerate, rank-deficient block.
				rows[i] = rows[rng.Intn(i)]
				p.B[i] = p.B[rng.Intn(i)]
				p.Senses[i] = p.Senses[rng.Intn(i)]
				continue
			}
			row := make([]float64, n)
			for j := range row {
				if rng.Float64() < 0.45 {
					continue // keep rows sparse
				}
				row[j] = math.Round(rng.Float64()*8 - 4)
			}
			rows[i] = row
			p.Senses[i] = []Sense{LE, LE, GE, EQ}[rng.Intn(4)]
			p.B[i] = math.Round(rng.Float64()*12 - 4)
		}
		p.A = rows

		dense := solveCore(t, p, CoreDense)
		sparse := solveCore(t, p, CoreSparse)
		if dense.Status == StatusIterLimit || sparse.Status == StatusIterLimit {
			t.Skip("iteration limit") // no ground truth to compare
		}
		if dense.Status != sparse.Status {
			t.Fatalf("seed %d: dense=%v sparse=%v", seed, dense.Status, sparse.Status)
		}
		if dense.Status != StatusOptimal {
			return
		}
		tol := 1e-6 * (1 + math.Abs(dense.Objective))
		if math.Abs(dense.Objective-sparse.Objective) > tol {
			t.Fatalf("seed %d: objective dense=%v sparse=%v", seed, dense.Objective, sparse.Objective)
		}
		checkFeasible(t, p, sparse.X, seed)
	})
}

// checkFeasible verifies x against p's rows and bounds with tolerance.
func checkFeasible(t *testing.T, p *Problem, x []float64, seed int64) {
	t.Helper()
	const tol = 1e-6
	for j := range x {
		if x[j] < p.lower(j)-tol || x[j] > p.upper(j)+tol {
			t.Fatalf("seed %d: x[%d]=%v outside [%v,%v]", seed, j, x[j], p.lower(j), p.upper(j))
		}
	}
	for i, row := range p.A {
		lhs := 0.0
		for j, v := range row {
			lhs += v * x[j]
		}
		scale := 1 + math.Abs(p.B[i])
		switch p.Senses[i] {
		case LE:
			if lhs > p.B[i]+tol*scale {
				t.Fatalf("seed %d: row %d: %v <= %v violated", seed, i, lhs, p.B[i])
			}
		case GE:
			if lhs < p.B[i]-tol*scale {
				t.Fatalf("seed %d: row %d: %v >= %v violated", seed, i, lhs, p.B[i])
			}
		case EQ:
			if math.Abs(lhs-p.B[i]) > tol*scale {
				t.Fatalf("seed %d: row %d: %v == %v violated", seed, i, lhs, p.B[i])
			}
		}
	}
}
