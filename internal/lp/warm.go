package lp

import "math"

// Starting-basis reuse: a Workspace that solves a stream of same-shaped
// problems (branch-and-bound node relaxations, or one scheduling model per
// simulation frame) can skip simplex phase 1 by re-installing the previous
// solve's optimal basis, provided that basis is still primal-feasible under
// the new bounds and right-hand sides. The install is one Gauss-Jordan
// refactorization -- about the cost of m pivots -- after which phase 2
// starts from a (usually near-optimal) feasible vertex instead of the
// all-slack corner phase 1 leaves behind. When the saved basis is stale
// (shape changed, numerically singular, or infeasible under the new
// bounds), the workspace falls back to the ordinary two-phase path by
// rebuilding the tableau; reuse is strictly an accelerator and never
// changes the set of solutions the simplex can reach.

const installTol = 1e-7 // pivot magnitude / primal feasibility tolerance

// InvalidateBasis discards any saved starting basis and any pending seed
// point. Callers that pool or hand off workspaces use it to make a reused
// workspace behave exactly like a fresh one (capacity aside).
func (ws *Workspace) InvalidateBasis() {
	ws.savedOK = false
	ws.seed = nil
}

// SeedPoint offers x (a feasible point of the NEXT problem solved on this
// workspace, in original variable space) as a one-shot crash-basis
// candidate. When the next solve has no applicable saved basis -- the
// first solve of a new tableau shape, typically the root relaxation of a
// fresh branch-and-bound tree -- the workspace pivots x's interior
// variables into the basis directly and starts phase 2 from x's vertex,
// skipping phase 1. A point that turns out infeasible or rank-deficient
// costs one rebuild and falls back to the cold path. The slice is not
// retained past the next solve.
func (ws *Workspace) SeedPoint(x []float64) { ws.seed = x }

// crashBasis turns the freshly built identity tableau into a basis at the
// vertex of the seed point: every variable strictly inside its bounds is
// pivoted into the basis (evicting a slack), and every variable at its
// finite upper bound is anchored there. The caller must have built with
// nartif == 0 (all-LE after normalization); rows keep their slack when no
// seed variable claims them. Returns false when the seed requires a
// configuration the elimination cannot reach (split free variables, or a
// near-singular pivot), leaving the tableau for the caller to rebuild.
func (ws *Workspace) crashBasis(p *Problem, x []float64) bool {
	t := &ws.t
	n := len(p.C)
	if len(x) != n {
		return false
	}
	for j := 0; j < n; j++ {
		vc := ws.cols[j]
		if vc.neg >= 0 {
			return false // split free variable: no single column to seed
		}
		v := x[j] - vc.shift
		if vc.mirror {
			v = vc.shift - x[j]
		}
		rng := t.rng[vc.col]
		switch {
		case v <= installTol:
			// at lower bound: nonbasic, nothing to do
		case !math.IsInf(rng, 1) && v >= rng-installTol:
			// At the upper bound: anchor and shift the basic values.
			t.atUpper[vc.col] = true
			for i := 0; i < t.m; i++ {
				t.rhs[i] -= rng * t.a[i][vc.col]
			}
		default:
			// Strictly interior: must be basic. Claim the available row
			// with the largest pivot; rows already claimed by an earlier
			// seed variable hold a non-slack basis column.
			c := vc.col
			pr, pv := -1, installTol
			for i := 0; i < t.m; i++ {
				if t.basis[i] < t.ncols {
					continue // claimed by an earlier seed variable
				}
				if a := math.Abs(t.a[i][c]); a > pv {
					pr, pv = i, a
				}
			}
			if pr < 0 {
				return false
			}
			ri := t.a[pr][:t.total]
			inv := 1 / ri[c]
			for k := range ri {
				ri[k] *= inv
			}
			t.rhs[pr] *= inv
			for r := 0; r < t.m; r++ {
				if r == pr {
					continue
				}
				f := t.a[r][c]
				if f == 0 {
					continue
				}
				rr := t.a[r][:len(ri)]
				for k, v := range ri {
					rr[k] -= f * v
				}
				t.rhs[r] -= f * t.rhs[pr]
			}
			t.inBasis[t.basis[pr]] = false
			t.basis[pr] = c
			t.inBasis[c] = true
			t.atUpper[c] = false
		}
	}
	return true
}

// saveBasis snapshots the tableau's basis and bound-anchoring after an
// optimal solve. Bases containing artificial columns (possible when
// evictArtificials finds no structural pivot on a degenerate row) are not
// saved: re-installing one would resurrect a column phase 2 must not use.
func (ws *Workspace) saveBasis() {
	t := &ws.t
	ws.saveBasisFrom(t.basis, t.atUpper)
}

// saveBasisFrom records a basis snapshot in the engine-independent saved
// format (column indices against the shape in ws.shp). Both cores save
// through here, which is what lets a basis saved by one engine install on
// the other.
func (ws *Workspace) saveBasisFrom(basis []int, atUpper []bool) {
	s := &ws.shp
	for i := 0; i < s.m; i++ {
		if basis[i] >= s.artbase {
			ws.savedOK = false
			return
		}
	}
	ws.savedBasis = growInts(ws.savedBasis, s.m)
	copy(ws.savedBasis, basis[:s.m])
	ws.savedAtUpper = growBools(ws.savedAtUpper, s.total)
	copy(ws.savedAtUpper, atUpper[:s.total])
	ws.savedM, ws.savedTotal, ws.savedNcols = s.m, s.total, s.ncols
	ws.savedOK = true
}

// basisShapeMatches reports whether the freshly analyzed problem has the
// same shape as the saved basis. Same shape is necessary (column indices
// keep their meaning) but not sufficient (bounds may have moved); the
// install performs the feasibility check.
func (ws *Workspace) basisShapeMatches() bool {
	s := &ws.shp
	return ws.savedOK && s.m == ws.savedM && s.total == ws.savedTotal && s.ncols == ws.savedNcols
}

// installBasis transforms the freshly built tableau (identity basis of
// slacks and artificials) into the saved basis by Gauss-Jordan elimination
// and re-anchors the saved nonbasic-at-upper columns. It returns false --
// leaving the tableau in an undefined state the caller must rebuild --
// when the saved basis is singular for the new matrix. The resulting basic
// values may violate their bounds; the caller checks primalFeasible and
// either repairs (dualRepair) or falls back to the cold path.
func (ws *Workspace) installBasis() bool {
	t := &ws.t
	m := t.m
	// Eliminate to the saved basis. Row order within the basis is free (the
	// simplex never consults original constraint identity), so partial
	// pivoting by row swap is safe.
	for i := 0; i < m; i++ {
		c := ws.savedBasis[i]
		pr, pv := -1, installTol
		for r := i; r < m; r++ {
			if a := math.Abs(t.a[r][c]); a > pv {
				pr, pv = r, a
			}
		}
		if pr < 0 {
			return false // singular for the new matrix
		}
		if pr != i {
			t.a[i], t.a[pr] = t.a[pr], t.a[i]
			t.rhs[i], t.rhs[pr] = t.rhs[pr], t.rhs[i]
		}
		ri := t.a[i][:t.total]
		inv := 1 / ri[c]
		for j := range ri {
			ri[j] *= inv
		}
		t.rhs[i] *= inv
		for r := 0; r < m; r++ {
			if r == i {
				continue
			}
			f := t.a[r][c]
			if f == 0 {
				continue
			}
			rr := t.a[r][:len(ri)]
			for j, v := range ri {
				rr[j] -= f * v
			}
			t.rhs[r] -= f * t.rhs[i]
		}
	}
	for j := 0; j < t.total; j++ {
		t.inBasis[j] = false
		t.atUpper[j] = false
	}
	for i := 0; i < m; i++ {
		t.basis[i] = ws.savedBasis[i]
		t.inBasis[t.basis[i]] = true
	}
	// Re-anchor nonbasic columns that sat at their upper bound. A column
	// whose range has since become infinite (or collapsed to a fixed zero)
	// stays at its lower bound; the feasibility check below decides whether
	// the basis survives the change.
	for j := 0; j < t.total; j++ {
		if !ws.savedAtUpper[j] || t.inBasis[j] {
			continue
		}
		r := t.rng[j]
		if math.IsInf(r, 1) || r <= 0 {
			continue
		}
		t.atUpper[j] = true
		for i := 0; i < m; i++ {
			t.rhs[i] -= r * t.a[i][j]
		}
	}
	return true
}

// primalFeasible reports whether every basic value lies inside its
// column's range.
func (t *tableau) primalFeasible() bool {
	for i := 0; i < t.m; i++ {
		v := t.rhs[i]
		if v < -installTol {
			return false
		}
		if rb := t.rng[t.basis[i]]; v > rb+installTol {
			return false
		}
	}
	return true
}

// dualRepair restores primal feasibility of an installed basis with
// bounded-variable dual-simplex pivots. An installed basis that was
// optimal for a neighboring problem (the parent branch-and-bound node, or
// the previous simulation frame) is dual feasible -- the reduced costs
// depend only on the matrix and objective, which did not change -- and
// primal infeasible in at most a few rows, so a handful of dual pivots
// reaches a feasible (usually optimal) vertex where a cold phase 2 would
// start over from the all-slack corner. Correctness does not ride on the
// pivot choices: the caller always runs the primal phase 2 afterwards,
// which verifies optimality from whatever vertex this reaches, so a wrong
// entering choice costs pivots, never answers. Returns false -- tableau
// still a valid basis, but infeasible -- when a violated row has no
// eligible entering column or the pivot budget runs out; the caller then
// rebuilds and takes the cold path, which settles feasibility exactly.
func (ws *Workspace) dualRepair(maxPivots int) bool {
	if !ws.dualRepairRun(maxPivots) {
		ws.RepairFails++
		return false
	}
	return true
}

func (ws *Workspace) dualRepairRun(maxPivots int) bool {
	t := &ws.t
	obj := t.obj
	limit := t.artbase // phase-2 discipline: artificials may not enter
	cb := t.cb
	red := ws.red
	for pivots := 0; pivots < maxPivots; pivots++ {
		// Most-violated basic variable: below zero or above its range.
		r, atUp, viol := -1, false, installTol
		for i := 0; i < t.m; i++ {
			v := t.rhs[i]
			if d := -v; d > viol {
				r, atUp, viol = i, false, d
			}
			if ub := t.rng[t.basis[i]]; !math.IsInf(ub, 1) {
				if d := v - ub; d > viol {
					r, atUp, viol = i, true, d
				}
			}
		}
		if r < 0 {
			return true
		}
		// Reduced costs: same pricing sweep as optimize.
		for i := 0; i < t.m; i++ {
			cb[i] = obj[t.basis[i]]
		}
		copy(red[:limit], obj[:limit])
		for i := 0; i < t.m; i++ {
			c := cb[i]
			if c == 0 {
				continue
			}
			ri := t.a[i][:limit]
			rd := red[:len(ri)]
			for j, v := range ri {
				rd[j] -= c * v
			}
		}
		// Entering column: movement along its free direction must push the
		// leaving basic toward the violated bound (sign test), and among
		// the eligible the dual ratio |reduced cost| / |pivot| is minimized
		// so dual feasibility survives the pivot; ties prefer the larger
		// pivot magnitude for numerical stability.
		enter, bestRatio, bestW := -1, math.Inf(1), 0.0
		for _, j32 := range ws.price {
			j := int(j32)
			if j >= limit {
				break
			}
			if t.inBasis[j] {
				continue
			}
			dirj := 1.0
			if t.atUpper[j] {
				dirj = -1
			}
			w := dirj * t.a[r][j]
			if atUp {
				if w < eps {
					continue // must pull rhs[r] down
				}
			} else if w > -eps {
				continue // must push rhs[r] up
			}
			rr := red[j]
			if t.atUpper[j] {
				rr = -rr
			}
			ratio := -rr / math.Abs(w) // rr <= eps at a dual-feasible basis
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && math.Abs(w) > math.Abs(bestW)) {
				enter, bestRatio, bestW = j, ratio, w
			}
		}
		if enter < 0 {
			return false // unrepairable row: let the cold path decide
		}
		dir := 1.0
		if t.atUpper[enter] {
			dir = -1
		}
		// Step that lands the leaving basic exactly on its violated bound.
		var step float64
		if atUp {
			step = (t.rhs[r] - t.rng[t.basis[r]]) / (dir * t.a[r][enter])
		} else {
			step = t.rhs[r] / (dir * t.a[r][enter])
		}
		if step < 0 {
			step = 0
		}
		if rj := t.rng[enter]; step > rj {
			// The entering column hits its own opposite bound first: bound
			// flip, keep the basis, re-select on the next round.
			for i := 0; i < t.m; i++ {
				t.rhs[i] -= rj * dir * t.a[i][enter]
			}
			t.atUpper[enter] = !t.atUpper[enter]
			t.iters++
			continue
		}
		t.pivot(r, enter, dir, step, atUp)
		t.iters++
	}
	return t.primalFeasible()
}
