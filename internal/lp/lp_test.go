package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	return sol
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 2y st x + y <= 4, x + 3y <= 6  -> x=4, y=0, obj 12.
	p := &Problem{
		C:      []float64{3, 2},
		A:      [][]float64{{1, 1}, {1, 3}},
		B:      []float64{4, 6},
		Senses: []Sense{LE, LE},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > 1e-6 || math.Abs(sol.X[1]) > 1e-6 {
		t.Errorf("x = %v", sol.X)
	}
}

func TestDegenerateVertex(t *testing.T) {
	// max x + y st x <= 2, y <= 2, x + y <= 4 (redundant at the optimum).
	p := &Problem{
		C:      []float64{1, 1},
		A:      [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B:      []float64{2, 2, 4},
		Senses: []Sense{LE, LE, LE},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestGEAndEQConstraints(t *testing.T) {
	// max x + 2y st x + y == 3, y >= 1, x >= 0 -> x=0,y=3? y>=1 ok, obj 6.
	p := &Problem{
		C:      []float64{1, 2},
		A:      [][]float64{{1, 1}, {0, 1}},
		B:      []float64{3, 1},
		Senses: []Sense{EQ, GE},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-6) > 1e-6 {
		t.Errorf("objective = %v, want 6", sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-3) > 1e-6 {
		t.Errorf("equality violated: %v", sol.X)
	}
}

func TestMinimizationViaNegation(t *testing.T) {
	// min x + y st x + 2y >= 4, 3x + y >= 6 -> vertex x=1.6, y=1.2, obj 2.8.
	p := &Problem{
		C:      []float64{-1, -1},
		A:      [][]float64{{1, 2}, {3, 1}},
		B:      []float64{4, 6},
		Senses: []Sense{GE, GE},
	}
	sol := solveOK(t, p)
	if math.Abs(-sol.Objective-2.8) > 1e-6 {
		t.Errorf("min objective = %v, want 2.8", -sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := &Problem{
		C:      []float64{1},
		A:      [][]float64{{1}, {1}},
		B:      []float64{1, 2},
		Senses: []Sense{LE, GE},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only x >= 0.
	p := &Problem{
		C:      []float64{1},
		A:      [][]float64{{1}},
		B:      []float64{1},
		Senses: []Sense{GE},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestUpperBounds(t *testing.T) {
	// max x + y, x,y in [0,1], x + y <= 1.5 -> 1.5.
	p := &Problem{
		C:      []float64{1, 1},
		A:      [][]float64{{1, 1}},
		B:      []float64{1.5},
		Senses: []Sense{LE},
		Upper:  []float64{1, 1},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-1.5) > 1e-6 {
		t.Errorf("objective = %v", sol.Objective)
	}
	for j, v := range sol.X {
		if v < -1e-9 || v > 1+1e-9 {
			t.Errorf("x[%d] = %v out of [0,1]", j, v)
		}
	}
}

func TestLowerBounds(t *testing.T) {
	// max -x - y with x >= 2, y >= 3 (via bounds), x + y <= 10.
	p := &Problem{
		C:      []float64{-1, -1},
		A:      [][]float64{{1, 1}},
		B:      []float64{10},
		Senses: []Sense{LE},
		Lower:  []float64{2, 3},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-3) > 1e-6 {
		t.Errorf("x = %v, want [2 3]", sol.X)
	}
}

func TestEmptyBoxInfeasible(t *testing.T) {
	p := &Problem{
		C:      []float64{1},
		A:      [][]float64{{1}},
		B:      []float64{5},
		Senses: []Sense{LE},
		Lower:  []float64{3},
		Upper:  []float64{2},
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted empty box")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Problem{
		{},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Senses: []Sense{LE}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}, Senses: []Sense{LE}, Lower: []float64{1, 2}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}, Senses: []Sense{LE}, Upper: []float64{1, 2}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNegativeRHS(t *testing.T) {
	// max -x st -x <= -2  (i.e. x >= 2), x <= 5 -> x = 2.
	p := &Problem{
		C:      []float64{-1},
		A:      [][]float64{{-1}, {1}},
		B:      []float64{-2, 5},
		Senses: []Sense{LE, LE},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-2) > 1e-6 {
		t.Errorf("x = %v, want 2", sol.X[0])
	}
}

func TestTransportationProblem(t *testing.T) {
	// Classic balanced transportation (min cost): 2 sources (10, 20),
	// 2 sinks (15, 15), costs [[1 3],[2 1]].
	// Optimal: s0->d0:10, s1->d0:5, s1->d1:15 -> cost 10+10+15 = 35.
	p := &Problem{
		C: []float64{-1, -3, -2, -1},
		A: [][]float64{
			{1, 1, 0, 0},
			{0, 0, 1, 1},
			{1, 0, 1, 0},
			{0, 1, 0, 1},
		},
		B:      []float64{10, 20, 15, 15},
		Senses: []Sense{EQ, EQ, EQ, EQ},
	}
	sol := solveOK(t, p)
	if math.Abs(-sol.Objective-35) > 1e-6 {
		t.Errorf("cost = %v, want 35", -sol.Objective)
	}
}

// TestRandomLPsFeasibleBounded cross-checks the solver on random LPs with a
// guaranteed interior point against feasibility and weak-duality style
// sanity bounds.
func TestRandomLPsFeasibleBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		x0 := make([]float64, n) // known feasible point
		for j := range x0 {
			x0[j] = rng.Float64() * 5
		}
		p := &Problem{
			C:      make([]float64, n),
			Upper:  make([]float64, n),
			Senses: make([]Sense, m),
			B:      make([]float64, m),
			A:      make([][]float64, m),
		}
		for j := 0; j < n; j++ {
			p.C[j] = rng.Float64()*4 - 2
			p.Upper[j] = 10
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				p.A[i][j] = rng.Float64()*2 - 1
				lhs += p.A[i][j] * x0[j]
			}
			p.B[i] = lhs + rng.Float64() // slack: x0 strictly feasible
			p.Senses[i] = LE
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v (should be feasible and bounded)", trial, sol.Status)
		}
		// Solution must satisfy all constraints and bounds.
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += p.A[i][j] * sol.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				t.Fatalf("trial %d: row %d violated: %v > %v", trial, i, lhs, p.B[i])
			}
		}
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-6 || sol.X[j] > 10+1e-6 {
				t.Fatalf("trial %d: x[%d] = %v out of box", trial, j, sol.X[j])
			}
		}
		// Optimal must be at least as good as the known feasible point.
		v0 := 0.0
		for j := 0; j < n; j++ {
			v0 += p.C[j] * x0[j]
		}
		if sol.Objective < v0-1e-6 {
			t.Fatalf("trial %d: objective %v below feasible %v", trial, sol.Objective, v0)
		}
	}
}

func TestIterationLimit(t *testing.T) {
	p := &Problem{
		C:      []float64{3, 2},
		A:      [][]float64{{1, 1}, {1, 3}},
		B:      []float64{4, 6},
		Senses: []Sense{LE, LE},
	}
	sol, err := SolveMaxIters(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Errorf("status = %v", sol.Status)
	}
}

func TestSenseAndStatusStrings(t *testing.T) {
	for _, s := range []Sense{LE, GE, EQ, Sense(9)} {
		if s.String() == "" {
			t.Error("empty sense string")
		}
	}
	for _, s := range []Status{StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit, Status(9)} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	// 40 vars, 30 constraints dense LP.
	rng := rand.New(rand.NewSource(7))
	n, m := 40, 30
	p := &Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m), Senses: make([]Sense, m)}
	for j := range p.C {
		p.C[j] = rng.Float64()
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		for j := range p.A[i] {
			p.A[i][j] = rng.Float64()
		}
		p.B[i] = float64(n) / 2
		p.Senses[i] = LE
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
