package lp

import (
	"math"
	"math/rand"
)

// Scale-harness instance generators. These build LPs with the exact row
// shapes the EagleEye pipeline emits -- the scheduler's time-expanded
// flow (GenSchedLP) and the clusterer's set cover (GenCoverLP) -- at
// sizes the real pipeline only reaches at 100k-target constellation
// scale. The scale benchmarks (cmd/benchlp, BenchmarkSparseSchedShaped)
// and the sparse/dense differential tests use them; nothing in the
// production path does.

// GenSchedLP builds a sched-shaped LP: a time-expanded flow network of
// `slots` layers with `perSlot` target nodes each, every node reaching
// `succ` random successors in the next layer, and `followers` units of
// flow injected at a super-source. Variables are the flow edges
// (unbounded above, tiny negative slot-indexed cost -- the PR 5 tie-break
// encoding) followed by one cover variable per node (bounds [0,1],
// positive value), and every row is <=:
//
//	in(v) <= 1                  node capacity
//	out(v) - in(v) <= 0         flow conservation
//	sum(source edges) <= F      fleet size
//	z_v - in(v) <= 0            cover only visited nodes
//
// Rows are emitted in CSR form; a perSlot*slots ~ 1000-node instance with
// succ=20 has ~20k variables and ~3k rows at ~0.2% density.
func GenSchedLP(perSlot, slots, succ, followers int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	nodes := perSlot * slots
	type edge struct{ from, to int32 } // from < 0 marks the super-source
	edges := make([]edge, 0, perSlot+nodes*succ)
	in := make([][]int32, nodes)  // node -> incoming edge vars
	out := make([][]int32, nodes) // node -> outgoing edge vars
	addEdge := func(from, to int) {
		id := int32(len(edges))
		edges = append(edges, edge{int32(from), int32(to)})
		in[to] = append(in[to], id)
		if from >= 0 {
			out[from] = append(out[from], id)
		}
	}
	for i := 0; i < perSlot; i++ {
		addEdge(-1, i)
	}
	for t := 0; t < slots-1; t++ {
		for i := 0; i < perSlot; i++ {
			v := t*perSlot + i
			for s := 0; s < succ; s++ {
				addEdge(v, (t+1)*perSlot+rng.Intn(perSlot))
			}
		}
	}
	ne := len(edges)
	n := ne + nodes // edge vars then cover vars
	p := &Problem{
		C:     make([]float64, n),
		Upper: make([]float64, n),
	}
	for id, e := range edges {
		slot := int(e.to) / perSlot
		p.C[id] = -1e-6 - 1e-8*float64(slot)
		p.Upper[id] = math.Inf(1) // flow edges stay unbounded (PR 5 invariant)
	}
	for v := 0; v < nodes; v++ {
		p.C[ne+v] = 0.5 + rng.Float64()
		p.Upper[ne+v] = 1
	}
	p.ResetSparseRows()
	for v := 0; v < nodes; v++ {
		for _, id := range in[v] {
			p.Coef(int(id), 1)
		}
		p.EndRow(LE, 1)
		if len(out[v]) > 0 {
			for _, id := range out[v] {
				p.Coef(int(id), 1)
			}
			for _, id := range in[v] {
				p.Coef(int(id), -1)
			}
			p.EndRow(LE, 0)
		}
		p.Coef(ne+v, 1)
		for _, id := range in[v] {
			p.Coef(int(id), -1)
		}
		p.EndRow(LE, 0)
	}
	for id := 0; id < perSlot; id++ {
		p.Coef(id, 1)
	}
	p.EndRow(LE, float64(followers))
	return p
}

// GenCoverLP builds the LP relaxation of a cluster-shaped set cover:
// `sets` candidate clusters in [0,1], each covering ~`density` random
// points, and one >= row per point -- so phase 1 and artificial eviction
// run at scale. Every point is covered by at least one set. The objective
// minimizes total cost (stated as maximization of its negation).
func GenCoverLP(points, sets, density int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	covers := make([][]int32, points)
	for s := 0; s < sets; s++ {
		k := 1 + rng.Intn(2*density)
		for c := 0; c < k; c++ {
			pt := rng.Intn(points)
			covers[pt] = append(covers[pt], int32(s))
		}
	}
	p := &Problem{
		C:     make([]float64, sets),
		Upper: make([]float64, sets),
	}
	for s := 0; s < sets; s++ {
		p.C[s] = -(1 + rng.Float64())
		p.Upper[s] = 1
	}
	p.ResetSparseRows()
	for pt := 0; pt < points; pt++ {
		if len(covers[pt]) == 0 {
			covers[pt] = append(covers[pt], int32(rng.Intn(sets)))
		}
		seen := make(map[int32]bool, len(covers[pt]))
		for _, s := range covers[pt] {
			if seen[s] {
				continue
			}
			seen[s] = true
			p.Coef(int(s), 1)
		}
		p.EndRow(GE, 1)
	}
	return p
}
