package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solvePriced runs one problem on a fresh sparse-core workspace with the
// given pricing window, returning the workspace for counter inspection.
func solvePriced(t *testing.T, p *Problem, window int) (*Workspace, Solution) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ws := &Workspace{Core: CoreSparse, PricingWindow: window}
	return ws, ws.Solve(p)
}

func TestPartialPricingMatchesFullSchedShaped(t *testing.T) {
	// A sched-shaped instance large enough that a forced small window
	// rotates many times per solve. Full pricing (window < 0) is the
	// oracle; statuses and objectives must agree.
	p := GenSchedLP(40, 8, 6, 5, 11)
	wsFull, full := solvePriced(t, p, -1)
	wsWin, win := solvePriced(t, p, 64)
	if full.Status != win.Status {
		t.Fatalf("status: full=%v windowed=%v", full.Status, win.Status)
	}
	if full.Status != StatusOptimal {
		t.Fatalf("oracle not optimal: %v", full.Status)
	}
	tol := 1e-6 * (1 + math.Abs(full.Objective))
	if math.Abs(full.Objective-win.Objective) > tol {
		t.Fatalf("objective: full=%v windowed=%v", full.Objective, win.Objective)
	}
	checkFeasible(t, p, win.X, 11)
	if wsFull.PartialPricingSolves != 0 {
		t.Errorf("full pricing counted %d partial solves", wsFull.PartialPricingSolves)
	}
	if wsWin.PartialPricingSolves == 0 {
		t.Error("windowed solve not counted as partial")
	}
}

func TestPartialPricingAutoThresholdKeepsSmallModelsFull(t *testing.T) {
	// The automatic policy (PricingWindow == 0) must leave every model
	// below partialPricingMinCols priced columns on the historical full
	// Dantzig sweep, so seed-scale pivot sequences are unchanged.
	p := GenSchedLP(20, 6, 4, 3, 7)
	ws, sol := solvePriced(t, p, 0)
	if sol.Status != StatusOptimal {
		t.Fatalf("status: %v", sol.Status)
	}
	if ws.PartialPricingSolves != 0 {
		t.Errorf("auto policy engaged partial pricing on a small model (%d solves)", ws.PartialPricingSolves)
	}
}

func TestPartialPricingUnderBland(t *testing.T) {
	// Forcing Bland's rule from the first iteration must still terminate
	// and agree with the dense oracle: the partial path defers to a full
	// ascending first-eligible scan whenever Bland is active.
	p := GenSchedLP(25, 6, 5, 4, 13)
	dense := solveCore(t, p, CoreDense)
	ws := &Workspace{Core: CoreSparse, PricingWindow: 32, blandOverride: 1}
	sol := ws.Solve(p)
	if dense.Status == StatusIterLimit || sol.Status == StatusIterLimit {
		t.Skip("iteration limit")
	}
	if dense.Status != sol.Status {
		t.Fatalf("status: dense=%v bland-windowed=%v", dense.Status, sol.Status)
	}
	if dense.Status == StatusOptimal {
		tol := 1e-6 * (1 + math.Abs(dense.Objective))
		if math.Abs(dense.Objective-sol.Objective) > tol {
			t.Fatalf("objective: dense=%v bland-windowed=%v", dense.Objective, sol.Objective)
		}
	}
}

// FuzzPartialPricingDifferential is the partial-pricing sibling of
// FuzzSparseDenseDifferential: the same random bounded LPs, solved by the
// dense full-pricing oracle and by the sparse core with a deliberately
// tiny rotating window so even 10-column instances exercise rotation,
// extension and the empty-rotation optimality certificate.
func FuzzPartialPricingDifferential(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(987654321))
	f.Add(int64(20260808))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(8)
		p := &Problem{
			C:      make([]float64, n),
			B:      make([]float64, m),
			Senses: make([]Sense, m),
			Lower:  make([]float64, n),
			Upper:  make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*10 - 5)
			switch rng.Intn(5) {
			case 0:
				p.Lower[j] = math.Inf(-1)
			case 1:
				p.Lower[j] = -math.Round(rng.Float64() * 3)
			default:
				p.Lower[j] = 0
			}
			if rng.Intn(2) == 0 {
				lo := p.Lower[j]
				if math.IsInf(lo, -1) {
					lo = -3
				}
				p.Upper[j] = lo + math.Round(rng.Float64()*5)
			} else {
				p.Upper[j] = math.Inf(1)
			}
		}
		rows := make([][]float64, m)
		for i := 0; i < m; i++ {
			if i > 0 && rng.Intn(6) == 0 {
				rows[i] = rows[rng.Intn(i)]
				p.B[i] = p.B[rng.Intn(i)]
				p.Senses[i] = p.Senses[rng.Intn(i)]
				continue
			}
			row := make([]float64, n)
			for j := range row {
				if rng.Float64() < 0.45 {
					continue
				}
				row[j] = math.Round(rng.Float64()*8 - 4)
			}
			rows[i] = row
			p.Senses[i] = []Sense{LE, LE, GE, EQ}[rng.Intn(4)]
			p.B[i] = math.Round(rng.Float64()*12 - 4)
		}
		p.A = rows

		dense := solveCore(t, p, CoreDense)
		_, win := solvePriced(t, p, 2)
		if dense.Status == StatusIterLimit || win.Status == StatusIterLimit {
			t.Skip("iteration limit")
		}
		if dense.Status != win.Status {
			t.Fatalf("seed %d: dense=%v windowed=%v", seed, dense.Status, win.Status)
		}
		if dense.Status != StatusOptimal {
			return
		}
		tol := 1e-6 * (1 + math.Abs(dense.Objective))
		if math.Abs(dense.Objective-win.Objective) > tol {
			t.Fatalf("seed %d: objective dense=%v windowed=%v", seed, dense.Objective, win.Objective)
		}
		checkFeasible(t, p, win.X, seed)
	})
}
