package lp

import "math"

// Sparse revised simplex engine. It implements exactly the pivot rules of
// the dense tableau core -- Dantzig pricing with the Bland fallback,
// implicit bounded variables with pivot-free bound flips, native free
// variables, two phases with artificial eviction, and the warm-start
// contract (install saved basis, dual repair, seed crash) -- but holds
// the constraint matrix as immutable CSC columns and the basis inverse as
// an eta file (factor.go) instead of a dense B^-1 A tableau. Per
// iteration it does one BTRAN for the pricing multipliers, one O(nnz)
// reduced-cost sweep over sparse columns, and one sparse FTRAN of the
// entering column, so work scales with the nonzero count rather than
// m*n. The eta file grows by one eta per pivot and is rebuilt
// (refactorized) when the update budget runs out or a pivot value looks
// numerically degraded.

// sparseCore is the engine state, lazily allocated on a Workspace so
// dense-only workspaces never pay for it. All slices are grow-only
// arenas: steady-state re-solves (branch-and-bound nodes, per-frame
// models) allocate nothing.
type sparseCore struct {
	m, total, ncols, artbase, nartif int

	// CSC of the full shifted column space: structural columns (sign-
	// adjusted for row flips and mirror/split variables), then slacks,
	// then artificials -- the same column numbering the dense tableau
	// uses, which is what makes saved bases portable between engines.
	colPtr []int32
	rowIdx []int32
	vals   []float64

	obj []float64 // phase-2 objective per column
	rng []float64 // per-column range upper-lower (shifted); +inf ok
	ph1 []float64 // phase-1 objective

	basis   []int  // basic column per row
	inBasis []bool // per-column basis membership
	atUpper []bool // nonbasic column sits at its upper bound
	xB      []float64

	eta        etaFile
	etasAtFact int // eta count right after the last factorization

	// tracked sparse work vector (FTRAN target) and dense BTRAN/scratch
	// vectors.
	w    []float64
	mark []bool
	wIdx []int32
	y    []float64
	rhs  []float64

	// factorization scratch (factor.go).
	claimed, placedF                                         []bool
	rowColsPtr, rowCols, act, queue, order, pivRowOf, colCnt []int32
	bucket, cnt                                              []int32
	basisTmp                                                 []int

	iters int

	// partial-pricing state: rotating cursor into the priced prefix of
	// ws.price, and whether any pivot of the current solve was priced
	// through a window (feeds Workspace.PartialPricingSolves).
	priceCursor int
	usedPartial bool

	// per-solve stats, accumulated into the Workspace counters.
	factorizations, refactorizations, fillIn int
}

// sparse returns the lazily allocated engine.
func (ws *Workspace) sparse() *sparseCore {
	if ws.sp == nil {
		ws.sp = &sparseCore{}
	}
	return ws.sp
}

// solveSparse is the sparse-core twin of solveDense: same warm-start
// orchestration, same statuses, same extraction.
func (ws *Workspace) solveSparse(p *Problem, maxIters int) Solution {
	warmTry := ws.ReuseBasis && ws.savedOK
	seed := ws.seed
	ws.seed = nil
	if !ws.analyze(p, warmTry) {
		if ws.Obs != nil {
			ws.Obs.Solves.Inc()
		}
		return Solution{Status: StatusInfeasible}
	}
	sp := ws.sparse()
	sp.factorizations, sp.refactorizations, sp.fillIn = 0, 0, 0
	sp.materialize(ws, p)
	reused := false
	if warmTry {
		if ws.basisShapeMatches() && sp.installSaved(ws) && (sp.primalFeasible() || sp.dualRepair(ws, 2*sp.m+16)) {
			reused = true
		} else {
			// Same fallback contract as the dense core: a failed reuse
			// leaves the engine unusable (partially installed basis,
			// possibly negative right-hand sides), so re-analyze
			// normalized and rebuild, keeping repair pivots in the count.
			spent := sp.iters
			ws.savedOK = false
			ws.analyze(p, false)
			sp.materialize(ws, p)
			sp.iters = spent
		}
	}
	if !reused && seed != nil && ws.shp.nartif == 0 {
		if sp.crashSeed(ws, p, seed) && (sp.primalFeasible() || sp.dualRepair(ws, 2*sp.m+16)) {
			reused = true
		} else {
			spent := sp.iters
			ws.analyze(p, false)
			sp.materialize(ws, p)
			sp.iters = spent
		}
	}
	var st Status
	if reused {
		ws.BasisReuses++
		st, _ = sp.optimize(ws, sp.obj, maxIters, false)
	} else {
		st = sp.twoPhase(ws, maxIters)
	}
	if ws.ReuseBasis && st == StatusOptimal {
		ws.saveBasisFrom(sp.basis, sp.atUpper)
	}
	ws.Factorizations += sp.factorizations
	ws.Refactorizations += sp.refactorizations
	if sp.usedPartial {
		ws.PartialPricingSolves++
	}
	sol := Solution{Status: st, Iters: sp.iters}
	if ws.Obs != nil {
		ws.Obs.Solves.Inc()
		ws.Obs.Iters.Add(int64(sp.iters))
		if st == StatusIterLimit {
			ws.Obs.IterLimited.Inc()
		}
		if ws.Obs.SparseSolves != nil {
			ws.Obs.SparseSolves.Inc()
		}
		if ws.Obs.Factorizations != nil {
			ws.Obs.Factorizations.Add(int64(sp.factorizations))
		}
		if ws.Obs.Refactorizations != nil {
			ws.Obs.Refactorizations.Add(int64(sp.refactorizations))
		}
		if ws.Obs.FillIn != nil {
			ws.Obs.FillIn.Add(int64(sp.fillIn))
		}
		if ws.Obs.InstanceNNZ != nil {
			ws.Obs.InstanceNNZ.SetMax(float64(p.NNZ()))
		}
		if sp.usedPartial && ws.Obs.PartialPricing != nil {
			ws.Obs.PartialPricing.Inc()
		}
	}
	if st != StatusOptimal {
		return sol
	}
	ws.xbuf = growFloats(ws.xbuf, len(p.C))
	sol.X = ws.xbuf[:len(p.C)]
	ws.vals = growFloats(ws.vals, sp.ncols)
	sp.extract(p, ws.cols, ws.vals[:sp.ncols], sol.X)
	for j, c := range p.C {
		sol.Objective += c * sol.X[j]
	}
	return sol
}

// materialize assembles the CSC matrix, bounds, objective and initial
// identity basis (slack/artificial per row) from the shared analysis in
// the workspace. The column numbering matches materializeDense exactly.
func (sp *sparseCore) materialize(ws *Workspace, p *Problem) {
	s := &ws.shp
	n := len(p.C)
	m, ncols, total := s.m, s.ncols, s.total
	sp.m, sp.total, sp.ncols = m, total, ncols
	sp.artbase, sp.nartif = s.artbase, s.nartif
	sp.iters = 0
	sp.priceCursor = 0
	sp.usedPartial = false

	// Count entries per CSC column, then prefix-sum and fill. Zero
	// coefficients are dropped (the dense form stores every entry).
	sp.cnt = growInt32s(sp.cnt, total)
	cnt := sp.cnt[:total]
	for c := range cnt {
		cnt[c] = 0
	}
	if p.RowPtr != nil {
		for k, j := range p.ColIdx {
			if p.Vals[k] == 0 {
				continue
			}
			vc := ws.cols[j]
			cnt[vc.col]++
			if vc.neg >= 0 {
				cnt[vc.neg]++
			}
		}
	} else {
		for i := 0; i < m; i++ {
			for j, v := range p.A[i] {
				if v == 0 {
					continue
				}
				vc := ws.cols[j]
				cnt[vc.col]++
				if vc.neg >= 0 {
					cnt[vc.neg]++
				}
			}
		}
	}
	for c := ncols; c < total; c++ {
		cnt[c]++ // slacks and artificials: one entry each
	}
	sp.colPtr = growInt32s(sp.colPtr, total+1)
	colPtr := sp.colPtr[:total+1]
	colPtr[0] = 0
	for c := 0; c < total; c++ {
		colPtr[c+1] = colPtr[c] + cnt[c]
	}
	nnz := int(colPtr[total])
	sp.rowIdx = growInt32s(sp.rowIdx, nnz)
	sp.vals = growFloats(sp.vals, nnz)
	copy(cnt, colPtr[:total]) // reuse as per-column write cursor

	sp.basis = growInts(sp.basis, m)
	sp.inBasis = growBools(sp.inBasis, total)
	sp.atUpper = growBools(sp.atUpper, total)
	for j := 0; j < total; j++ {
		sp.inBasis[j] = false
		sp.atUpper[j] = false
	}
	sp.xB = growFloats(sp.xB, m)

	slackCol, artCol := ncols, s.artbase
	for i := 0; i < m; i++ {
		sgn := 1.0
		if ws.flip[i] {
			sgn = -1
		}
		if p.RowPtr != nil {
			for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
				if p.Vals[k] == 0 {
					continue
				}
				sp.emit(ws.cols[p.ColIdx[k]], int32(i), p.Vals[k]*sgn, cnt)
			}
		} else {
			for j, v := range p.A[i] {
				if v == 0 {
					continue
				}
				sp.emit(ws.cols[j], int32(i), v*sgn, cnt)
			}
		}
		switch ws.esens[i] {
		case LE:
			sp.emitAt(slackCol, int32(i), 1, cnt)
			sp.basis[i] = slackCol
			slackCol++
		case GE:
			sp.emitAt(slackCol, int32(i), -1, cnt)
			slackCol++
			sp.emitAt(artCol, int32(i), 1, cnt)
			sp.basis[i] = artCol
			artCol++
		case EQ:
			sp.emitAt(artCol, int32(i), 1, cnt)
			sp.basis[i] = artCol
			artCol++
		}
		sp.inBasis[sp.basis[i]] = true
		sp.xB[i] = ws.brow[i]
	}

	sp.obj = growFloats(sp.obj, total)
	sp.rng = growFloats(sp.rng, total)
	for j := 0; j < total; j++ {
		sp.obj[j] = 0
		sp.rng[j] = math.Inf(1)
	}
	for j := 0; j < n; j++ {
		vc := ws.cols[j]
		switch {
		case vc.neg >= 0:
			sp.obj[vc.col], sp.obj[vc.neg] = p.C[j], -p.C[j]
		case vc.mirror:
			sp.obj[vc.col] = -p.C[j]
		default:
			sp.obj[vc.col] = p.C[j]
			if up := p.upper(j); !math.IsInf(up, 1) {
				r := up - vc.shift
				if r < 0 {
					r = 0
				}
				sp.rng[vc.col] = r
			}
		}
	}

	sp.w = growFloats(sp.w, m)
	sp.mark = growBools(sp.mark, m)
	for i := 0; i < m; i++ {
		sp.w[i] = 0
		sp.mark[i] = false
	}
	sp.y = growFloats(sp.y, m)
	sp.rhs = growFloats(sp.rhs, m)
	if cap(sp.wIdx) < m {
		sp.wIdx = make([]int32, 0, m)
	}
	sp.eta.reset()
	sp.etasAtFact = 0
}

// emit scatters one structural coefficient through the variable mapping.
func (sp *sparseCore) emit(vc varCol, i int32, c float64, cur []int32) {
	if vc.neg >= 0 {
		sp.emitAt(vc.col, i, c, cur)
		sp.emitAt(vc.neg, i, -c, cur)
	} else if vc.mirror {
		sp.emitAt(vc.col, i, -c, cur)
	} else {
		sp.emitAt(vc.col, i, c, cur)
	}
}

func (sp *sparseCore) emitAt(col int, i int32, v float64, cur []int32) {
	q := cur[col]
	cur[col]++
	sp.rowIdx[q] = i
	sp.vals[q] = v
}

// twoPhase mirrors tableau.solve: phase 1 when artificials exist, then
// phase 2.
func (sp *sparseCore) twoPhase(ws *Workspace, maxIters int) Status {
	if sp.nartif > 0 {
		sp.ph1 = growFloats(sp.ph1, sp.total)
		ph1 := sp.ph1[:sp.total]
		for j := range ph1 {
			ph1[j] = 0
		}
		for j := sp.artbase; j < sp.total; j++ {
			ph1[j] = -1
		}
		st, objVal := sp.optimize(ws, ph1, maxIters, true)
		if st == StatusUnbounded {
			return StatusIterLimit // phase 1 is bounded above by 0: numeric failure
		}
		if st != StatusOptimal {
			return st
		}
		if objVal < -feasTol {
			return StatusInfeasible
		}
		sp.evictArtificials()
	}
	st, _ := sp.optimize(ws, sp.obj, maxIters, false)
	return st
}

// optimize runs revised-simplex iterations for the given objective. The
// selection rules (Dantzig with Bland fallback, ratio-test tie-breaks,
// bound flips) are those of tableau.optimize; only the linear algebra
// differs.
func (sp *sparseCore) optimize(ws *Workspace, obj []float64, maxIters int, phase1 bool) (Status, float64) {
	limit := sp.total
	if !phase1 {
		limit = sp.artbase // artificials may not re-enter
	}
	// Priced prefix of ws.price: the index is ascending, so the phase's
	// column limit is a binary-searched cut, not a per-entry check.
	lo, hi := 0, len(ws.price)
	for lo < hi {
		mid := (lo + hi) >> 1
		if int(ws.price[mid]) < limit {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	priced := lo
	window := ws.pricingWindowFor(priced)
	m := sp.m
	y := sp.y[:m]
	justRefactored := false
	for iter := 0; ; iter++ {
		if sp.iters >= maxIters {
			return StatusIterLimit, 0
		}
		sp.iters++
		// Pricing multipliers y = B^-T c_B, then reduced costs per
		// column d_j = c_j - y . a_j over the sparse columns.
		for i := 0; i < m; i++ {
			y[i] = obj[sp.basis[i]]
		}
		sp.eta.btran(y)
		blandAfter := 4 * (m + sp.total)
		if ws.blandOverride > 0 {
			blandAfter = ws.blandOverride
		}
		bland := iter > blandAfter
		enter := -1
		dir := 1.0
		best := eps
		if bland || window <= 0 || priced <= window || iter%partialFullSweepPeriod == 0 {
			// Full Dantzig sweep (and always under Bland: anti-cycling
			// requires first-eligible in ascending column order).
			for _, j32 := range ws.price[:priced] {
				j := int(j32)
				if sp.inBasis[j] {
					continue
				}
				d := obj[j]
				for q := sp.colPtr[j]; q < sp.colPtr[j+1]; q++ {
					d -= sp.vals[q] * y[sp.rowIdx[q]]
				}
				r := d
				if sp.atUpper[j] {
					r = -d
				}
				if r > best {
					enter = j
					dir = 1
					if sp.atUpper[j] {
						dir = -1
					}
					if bland {
						break
					}
					best = r
				}
			}
		} else {
			// Partial pricing: Dantzig-best within a window-sized chunk
			// of the rotating cursor, extending chunk by chunk while
			// nothing is eligible. A full empty rotation prices every
			// column, so enter < 0 remains a valid optimality
			// certificate.
			sp.usedPartial = true
			start := sp.priceCursor
			if start >= priced {
				start = 0
			}
			scanned := 0
			for scanned < priced {
				chunk := window
				if rem := priced - scanned; chunk > rem {
					chunk = rem
				}
				for k := 0; k < chunk; k++ {
					pos := start + scanned + k
					if pos >= priced {
						pos -= priced
					}
					j := int(ws.price[pos])
					if sp.inBasis[j] {
						continue
					}
					d := obj[j]
					for q := sp.colPtr[j]; q < sp.colPtr[j+1]; q++ {
						d -= sp.vals[q] * y[sp.rowIdx[q]]
					}
					r := d
					if sp.atUpper[j] {
						r = -d
					}
					if r > best {
						enter = j
						dir = 1
						if sp.atUpper[j] {
							dir = -1
						}
						best = r
					}
				}
				scanned += chunk
				if enter >= 0 {
					cur := start + scanned
					if cur >= priced {
						cur -= priced
					}
					sp.priceCursor = cur
					break
				}
			}
		}
		if enter < 0 {
			return StatusOptimal, sp.objValue(obj)
		}
		// w = B^-1 a_enter, tracked for the sparse ratio test.
		idx := sp.scatterColumn(enter)
		idx = sp.ftranTracked(idx)
		step := sp.rng[enter]
		fl := !math.IsInf(step, 1)
		leave, leaveAtUpper := -1, false
		for _, i32 := range idx {
			i := int(i32)
			w := dir * sp.w[i]
			var r float64
			var hitUpper bool
			if w > eps {
				r = sp.xB[i] / w
			} else if w < -eps {
				ub := sp.rng[sp.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				r = (ub - sp.xB[i]) / -w
				hitUpper = true
			} else {
				continue
			}
			if r < step-eps || (r < step+eps && (leave < 0 || sp.basis[i] < sp.basis[leave])) {
				step = r
				leave = i
				leaveAtUpper = hitUpper
				fl = false
			}
		}
		if leave < 0 && !fl {
			sp.clearW(idx)
			return StatusUnbounded, 0
		}
		if step < 0 {
			step = 0 // degenerate: clamp numerical noise
		}
		if fl {
			// Bound flip: basis unchanged, basic values shift.
			for _, i32 := range idx {
				i := int(i32)
				sp.xB[i] -= step * dir * sp.w[i]
			}
			sp.atUpper[enter] = !sp.atUpper[enter]
			sp.clearW(idx)
			continue
		}
		// A tiny pivot through a long eta file is usually accumulated
		// error, not geometry: refactorize once and re-price before
		// trusting it.
		if !justRefactored && math.Abs(sp.w[leave]) < installTol && sp.eta.count() > sp.etasAtFact {
			sp.clearW(idx)
			if !sp.refactorize(ws, eps) {
				return StatusIterLimit, 0
			}
			justRefactored = true
			continue
		}
		justRefactored = false
		sp.pivot(leave, enter, dir, step, leaveAtUpper, idx)
		if sp.eta.count()-sp.etasAtFact >= sp.refactorBudget(ws) {
			if !sp.refactorize(ws, eps) {
				return StatusIterLimit, 0
			}
		}
	}
}

// pivot applies the basis change at `row` for entering column `col`:
// update basic values along w, append one update eta, swap the
// bookkeeping. Semantics match tableau.pivot.
func (sp *sparseCore) pivot(row, col int, dir, step float64, leaveAtUpper bool, idx []int32) {
	for _, i32 := range idx {
		i := int(i32)
		if i != row {
			sp.xB[i] -= step * dir * sp.w[i]
		}
	}
	if dir > 0 {
		sp.xB[row] = step // entered rising from its lower bound
	} else {
		sp.xB[row] = sp.rng[col] - step // entered falling from its upper bound
	}
	lv := sp.basis[row]
	sp.atUpper[lv] = leaveAtUpper
	sp.eta.appendEta(sp.w, idx, int32(row))
	sp.inBasis[lv] = false
	sp.basis[row] = col
	sp.inBasis[col] = true
	sp.atUpper[col] = false
	sp.clearW(idx)
}

// refactorBudget is the eta-update count that triggers a rebuild. The
// default scales with m: long enough to amortize the factorization, short
// enough that FTRAN/BTRAN stay cheap and error stays bounded.
func (sp *sparseCore) refactorBudget(ws *Workspace) int {
	if ws.RefactorEvery > 0 {
		return ws.RefactorEvery
	}
	b := sp.m / 2
	if b < 16 {
		b = 16
	} else if b > 128 {
		b = 128
	}
	return b
}

// refactorize rebuilds the eta file from the current basis and recomputes
// the basic values from scratch (dropping accumulated update error).
func (sp *sparseCore) refactorize(ws *Workspace, tol float64) bool {
	sp.refactorizations++
	if !sp.factorizeBasis(tol) {
		return false
	}
	sp.computeXB(ws)
	return true
}

// computeXB recomputes basic values from first principles:
// xB = B^-1 (b - sum over nonbasic-at-upper columns of rng_j * a_j).
func (sp *sparseCore) computeXB(ws *Workspace) {
	m := sp.m
	rhs := sp.rhs[:m]
	copy(rhs, ws.brow[:m])
	for j := 0; j < sp.total; j++ {
		if !sp.atUpper[j] || sp.inBasis[j] {
			continue
		}
		r := sp.rng[j]
		if r == 0 || math.IsInf(r, 1) {
			continue
		}
		for q := sp.colPtr[j]; q < sp.colPtr[j+1]; q++ {
			rhs[sp.rowIdx[q]] -= r * sp.vals[q]
		}
	}
	sp.eta.ftran(rhs)
	copy(sp.xB[:m], rhs)
}

// objValue mirrors tableau.objValue: basic values plus nonbasic-at-upper
// contributions, in shifted space.
func (sp *sparseCore) objValue(obj []float64) float64 {
	val := 0.0
	for i := 0; i < sp.m; i++ {
		val += obj[sp.basis[i]] * sp.xB[i]
	}
	for j := 0; j < sp.total; j++ {
		if sp.atUpper[j] && !sp.inBasis[j] {
			val += obj[j] * sp.rng[j]
		}
	}
	return val
}

// evictArtificials pivots leftover basic artificials (value ~0 after a
// feasible phase 1) out of the basis when any non-artificial pivot
// exists: row i of B^-1 (one BTRAN of a unit vector) prices the
// candidate pivots, and the first eligible column by index -- the dense
// core's rule -- is pivoted in with a zero step.
func (sp *sparseCore) evictArtificials() {
	m := sp.m
	rho := sp.rhs[:m]
	for i := 0; i < m; i++ {
		if sp.basis[i] < sp.artbase {
			continue
		}
		for r := range rho {
			rho[r] = 0
		}
		rho[i] = 1
		sp.eta.btran(rho)
		for j := 0; j < sp.artbase; j++ {
			if sp.inBasis[j] {
				continue
			}
			alpha := 0.0
			for q := sp.colPtr[j]; q < sp.colPtr[j+1]; q++ {
				alpha += sp.vals[q] * rho[sp.rowIdx[q]]
			}
			if math.Abs(alpha) > eps {
				dir := 1.0
				if sp.atUpper[j] {
					dir = -1
				}
				idx := sp.scatterColumn(j)
				idx = sp.ftranTracked(idx)
				sp.pivot(i, j, dir, 0, false, idx)
				break
			}
		}
	}
}

// extract mirrors tableau.extract on the sparse state.
func (sp *sparseCore) extract(p *Problem, cols []varCol, vals, x []float64) {
	for c := range vals {
		if sp.atUpper[c] {
			vals[c] = sp.rng[c]
		} else {
			vals[c] = 0
		}
	}
	for i, b := range sp.basis[:sp.m] {
		if b < sp.ncols {
			vals[b] = sp.xB[i]
		}
	}
	for j := range x {
		vc := cols[j]
		switch {
		case vc.neg >= 0:
			x[j] = vals[vc.col] - vals[vc.neg]
		case vc.mirror:
			x[j] = vc.shift - vals[vc.col]
		default:
			x[j] = vc.shift + vals[vc.col]
		}
		if lo := p.lower(j); x[j] < lo {
			x[j] = lo
		}
		if ub := p.upper(j); x[j] > ub {
			x[j] = ub
		}
	}
}

// primalFeasible reports whether every basic value lies inside its
// column's range.
func (sp *sparseCore) primalFeasible() bool {
	for i := 0; i < sp.m; i++ {
		v := sp.xB[i]
		if v < -installTol {
			return false
		}
		if rb := sp.rng[sp.basis[i]]; v > rb+installTol {
			return false
		}
	}
	return true
}

// installSaved realizes a saved basis on the sparse core: set membership,
// one basis factorization, re-anchor the saved nonbasic-at-upper columns,
// recompute basic values. Returns false when the saved basis is singular
// for the new matrix; the caller rebuilds and goes cold.
func (sp *sparseCore) installSaved(ws *Workspace) bool {
	m := sp.m
	copy(sp.basis[:m], ws.savedBasis[:m])
	for j := 0; j < sp.total; j++ {
		sp.inBasis[j] = false
		sp.atUpper[j] = false
	}
	for i := 0; i < m; i++ {
		sp.inBasis[sp.basis[i]] = true
	}
	if !sp.factorizeBasis(installTol) {
		return false
	}
	// Re-anchor nonbasic columns that sat at their upper bound; a column
	// whose range became infinite or collapsed stays at its lower bound
	// (the caller's feasibility check decides whether the basis
	// survives).
	for j := 0; j < sp.total; j++ {
		if !ws.savedAtUpper[j] || sp.inBasis[j] {
			continue
		}
		r := sp.rng[j]
		if math.IsInf(r, 1) || r <= 0 {
			continue
		}
		sp.atUpper[j] = true
	}
	sp.computeXB(ws)
	return true
}

// crashSeed builds a basis at the vertex of a caller-supplied feasible
// point, the sparse twin of crashBasis: variables strictly inside their
// bounds become basic (pivoted in by one factorization pass, fill-ordered
// arrival), variables at a finite upper bound are anchored there, and
// every unclaimed row keeps its slack. Requires nartif == 0 (checked by
// the caller). Returns false on a rank-deficient or ill-shaped seed.
func (sp *sparseCore) crashSeed(ws *Workspace, p *Problem, x []float64) bool {
	n := len(p.C)
	if len(x) != n {
		return false
	}
	m := sp.m
	for j := 0; j < sp.total; j++ {
		sp.inBasis[j] = false
		sp.atUpper[j] = false
	}
	sp.claimed = growBools(sp.claimed, m)
	claimed := sp.claimed[:m]
	for i := range claimed {
		claimed[i] = false
	}
	sp.eta.reset()
	sp.factorizations++
	for j := 0; j < n; j++ {
		vc := ws.cols[j]
		if vc.neg >= 0 {
			return false // split free variable: no single column to seed
		}
		v := x[j] - vc.shift
		if vc.mirror {
			v = vc.shift - x[j]
		}
		rng := sp.rng[vc.col]
		switch {
		case v <= installTol:
			// at lower bound: nonbasic, nothing to do
		case !math.IsInf(rng, 1) && v >= rng-installTol:
			sp.atUpper[vc.col] = true
		default:
			// Strictly interior: pivot into the basis on the largest
			// unclaimed row.
			idx := sp.scatterColumn(vc.col)
			idx = sp.ftranTracked(idx)
			r, best := -1, installTol
			for _, i := range idx {
				if !claimed[i] && math.Abs(sp.w[i]) > best {
					best = math.Abs(sp.w[i])
					r = int(i)
				}
			}
			if r < 0 {
				sp.clearW(idx)
				return false
			}
			sp.eta.appendEta(sp.w, idx, int32(r))
			sp.clearW(idx)
			claimed[r] = true
			sp.basis[r] = vc.col
			sp.inBasis[vc.col] = true
		}
	}
	// Unclaimed rows keep their slack (nartif == 0 means every row is LE
	// after normalization, so row i's slack is column ncols+i).
	for r := 0; r < m; r++ {
		if claimed[r] {
			continue
		}
		c := sp.ncols + r
		idx := sp.scatterColumn(c)
		idx = sp.ftranTracked(idx)
		rr, best := -1, eps
		if !claimed[r] && math.Abs(sp.w[r]) > best {
			rr, best = r, math.Abs(sp.w[r])
		}
		if rr < 0 {
			for _, i := range idx {
				if !claimed[i] && math.Abs(sp.w[i]) > best {
					best = math.Abs(sp.w[i])
					rr = int(i)
				}
			}
		}
		if rr < 0 {
			sp.clearW(idx)
			return false
		}
		sp.eta.appendEta(sp.w, idx, int32(rr))
		sp.clearW(idx)
		claimed[rr] = true
		sp.basis[rr] = c
		sp.inBasis[c] = true
	}
	sp.etasAtFact = sp.eta.count()
	sp.computeXB(ws)
	return true
}

// dualRepair is the sparse twin of Workspace.dualRepair: bounded-variable
// dual-simplex pivots that restore primal feasibility of an installed
// basis. Per pivot it prices with two BTRANs (multipliers and the
// violated row of B^-1) and one sweep over the sparse columns. Returns
// false when a violated row has no eligible entering column or the budget
// runs out; the caller then rebuilds and goes cold.
func (sp *sparseCore) dualRepair(ws *Workspace, maxPivots int) bool {
	if !sp.dualRepairRun(ws, maxPivots) {
		ws.RepairFails++
		return false
	}
	return true
}

func (sp *sparseCore) dualRepairRun(ws *Workspace, maxPivots int) bool {
	m := sp.m
	limit := sp.artbase // phase-2 discipline: artificials may not enter
	obj := sp.obj
	for pivots := 0; pivots < maxPivots; pivots++ {
		// Most-violated basic variable: below zero or above its range.
		r, atUp, viol := -1, false, installTol
		for i := 0; i < m; i++ {
			v := sp.xB[i]
			if d := -v; d > viol {
				r, atUp, viol = i, false, d
			}
			if ub := sp.rng[sp.basis[i]]; !math.IsInf(ub, 1) {
				if d := v - ub; d > viol {
					r, atUp, viol = i, true, d
				}
			}
		}
		if r < 0 {
			return true
		}
		// y = B^-T c_B for reduced costs; rho = B^-T e_r is row r of
		// B^-1, whose dot with each column gives the pivot-row entries
		// the dense code read straight off the tableau.
		y := sp.y[:m]
		for i := 0; i < m; i++ {
			y[i] = obj[sp.basis[i]]
		}
		sp.eta.btran(y)
		rho := sp.rhs[:m]
		for i := range rho {
			rho[i] = 0
		}
		rho[r] = 1
		sp.eta.btran(rho)
		enter, bestRatio, bestW := -1, math.Inf(1), 0.0
		for _, j32 := range ws.price {
			j := int(j32)
			if j >= limit {
				break
			}
			if sp.inBasis[j] {
				continue
			}
			arj, dj := 0.0, obj[j]
			for q := sp.colPtr[j]; q < sp.colPtr[j+1]; q++ {
				v := sp.vals[q]
				i := sp.rowIdx[q]
				arj += v * rho[i]
				dj -= v * y[i]
			}
			dirj := 1.0
			if sp.atUpper[j] {
				dirj = -1
			}
			w := dirj * arj
			if atUp {
				if w < eps {
					continue // must pull xB[r] down
				}
			} else if w > -eps {
				continue // must push xB[r] up
			}
			rr := dj
			if sp.atUpper[j] {
				rr = -rr
			}
			ratio := -rr / math.Abs(w)
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && math.Abs(w) > math.Abs(bestW)) {
				enter, bestRatio, bestW = j, ratio, w
			}
		}
		if enter < 0 {
			return false // unrepairable row: let the cold path decide
		}
		dir := 1.0
		if sp.atUpper[enter] {
			dir = -1
		}
		idx := sp.scatterColumn(enter)
		idx = sp.ftranTracked(idx)
		var step float64
		if atUp {
			step = (sp.xB[r] - sp.rng[sp.basis[r]]) / (dir * sp.w[r])
		} else {
			step = sp.xB[r] / (dir * sp.w[r])
		}
		if step < 0 {
			step = 0
		}
		if rj := sp.rng[enter]; step > rj {
			// Entering column hits its own opposite bound first: bound
			// flip, keep the basis, re-select next round.
			for _, i32 := range idx {
				i := int(i32)
				sp.xB[i] -= rj * dir * sp.w[i]
			}
			sp.atUpper[enter] = !sp.atUpper[enter]
			sp.clearW(idx)
			sp.iters++
			continue
		}
		sp.pivot(r, enter, dir, step, atUp, idx)
		sp.iters++
		if sp.eta.count()-sp.etasAtFact >= sp.refactorBudget(ws) {
			if !sp.refactorize(ws, eps) {
				return false
			}
		}
	}
	return sp.primalFeasible()
}
