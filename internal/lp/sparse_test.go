package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solveCore runs one problem on a fresh workspace pinned to the given
// engine.
func solveCore(t *testing.T, p *Problem, core Core) Solution {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ws := &Workspace{Core: core}
	return ws.Solve(p)
}

// requireAgree solves p on both cores and fails unless statuses match and
// optimal objectives agree to 1e-6. Returns the sparse solution.
func requireAgree(t *testing.T, p *Problem) Solution {
	t.Helper()
	d := solveCore(t, p, CoreDense)
	s := solveCore(t, p, CoreSparse)
	if d.Status != s.Status {
		t.Fatalf("status: dense=%v sparse=%v", d.Status, s.Status)
	}
	if d.Status == StatusOptimal {
		tol := 1e-6 * (1 + math.Abs(d.Objective))
		if math.Abs(d.Objective-s.Objective) > tol {
			t.Fatalf("objective: dense=%v sparse=%v", d.Objective, s.Objective)
		}
	}
	return s
}

func TestSparseMatchesDenseSmall(t *testing.T) {
	probs := []*Problem{
		{ // LE-only vertex
			C:      []float64{3, 2},
			A:      [][]float64{{1, 1}, {1, 3}},
			B:      []float64{4, 6},
			Senses: []Sense{LE, LE},
		},
		{ // GE + EQ: phase 1 and artificial eviction
			C:      []float64{1, 2},
			A:      [][]float64{{1, 1}, {0, 1}},
			B:      []float64{3, 1},
			Senses: []Sense{EQ, GE},
		},
		{ // finite upper bounds: bound flips
			C:      []float64{1, 1, 1},
			A:      [][]float64{{1, 1, 1}},
			B:      []float64{10},
			Senses: []Sense{LE},
			Upper:  []float64{2, 3, math.Inf(1)},
		},
		{ // mirrored variable: free below, finite above
			C:      []float64{-1, 2},
			A:      [][]float64{{1, 1}, {-1, 1}},
			B:      []float64{4, 2},
			Senses: []Sense{LE, LE},
			Lower:  []float64{math.Inf(-1), 0},
			Upper:  []float64{3, math.Inf(1)},
		},
		{ // split free variable
			C:      []float64{1, -2},
			A:      [][]float64{{1, 1}, {1, -1}},
			B:      []float64{5, 1},
			Senses: []Sense{EQ, GE},
			Lower:  []float64{math.Inf(-1), 0},
		},
		{ // infeasible
			C:      []float64{1},
			A:      [][]float64{{1}, {1}},
			B:      []float64{1, 3},
			Senses: []Sense{LE, GE},
		},
		{ // unbounded
			C:      []float64{1, 0},
			A:      [][]float64{{0, 1}},
			B:      []float64{1},
			Senses: []Sense{LE},
		},
		{ // negative RHS on an LE row (row sign normalization)
			C:      []float64{-1, -1},
			A:      [][]float64{{-1, -1}, {1, 0}},
			B:      []float64{-2, 5},
			Senses: []Sense{LE, LE},
		},
	}
	for i, p := range probs {
		s := requireAgree(t, p)
		_ = s
		_ = i
	}
}

// TestSparseCSREquivalence feeds the same model in dense-row and CSR form
// to both engines; all four runs must land on one objective.
func TestSparseCSREquivalence(t *testing.T) {
	dense := &Problem{
		C:      []float64{2, 3, 1, 0.5},
		A:      [][]float64{{1, 2, 0, 1}, {0, 1, 1, 0}, {3, 0, 0, 1}},
		B:      []float64{8, 5, 9},
		Senses: []Sense{LE, LE, LE},
		Upper:  []float64{4, 4, 4, 4},
	}
	csr := &Problem{C: dense.C, Upper: dense.Upper}
	csr.ResetSparseRows()
	csr.Coef(0, 1)
	csr.Coef(1, 2)
	csr.Coef(3, 1)
	csr.EndRow(LE, 8)
	csr.Coef(1, 1)
	csr.Coef(2, 1)
	csr.EndRow(LE, 5)
	csr.Coef(0, 3)
	csr.Coef(3, 1)
	csr.EndRow(LE, 9)

	want := solveCore(t, dense, CoreDense)
	for _, p := range []*Problem{dense, csr} {
		for _, core := range []Core{CoreDense, CoreSparse} {
			got := solveCore(t, p, core)
			if got.Status != StatusOptimal {
				t.Fatalf("core %d status %v", core, got.Status)
			}
			if math.Abs(got.Objective-want.Objective) > 1e-9 {
				t.Fatalf("core %d objective %v, want %v", core, got.Objective, want.Objective)
			}
		}
	}
}

// bealeProblem is Beale's classical cycling example (stated as a max).
// Dantzig pricing with textbook tie-breaking cycles forever on it; the
// optimum is 1/20 at x = (1/25, 0, 1, 0).
func bealeProblem() *Problem {
	return &Problem{
		C: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B:      []float64{0, 0, 1},
		Senses: []Sense{LE, LE, LE},
	}
}

// TestSparseCycling solves the cycling-prone LP on the sparse core, both
// with default pricing (the Bland fallback must engage if Dantzig stalls)
// and with Bland's rule forced from the first iteration.
func TestSparseCycling(t *testing.T) {
	for _, override := range []int{0, 1} {
		ws := &Workspace{Core: CoreSparse}
		ws.blandOverride = override
		sol := ws.Solve(bealeProblem())
		if sol.Status != StatusOptimal {
			t.Fatalf("blandOverride=%d: status %v", override, sol.Status)
		}
		if math.Abs(sol.Objective-0.05) > 1e-9 {
			t.Fatalf("blandOverride=%d: objective %v, want 0.05", override, sol.Objective)
		}
	}
}

// TestSparseRefactorEveryPivot forces a full basis refactorization after
// every single pivot and checks the answer still matches the dense core
// on a nontrivial random instance -- the strongest exercise of
// factorizeBasis' pivot ordering and of computeXB.
func TestSparseRefactorEveryPivot(t *testing.T) {
	p := GenSchedLP(12, 4, 3, 3, 7)
	want := solveCore(t, p, CoreDense)
	if want.Status != StatusOptimal {
		t.Fatalf("dense status %v", want.Status)
	}
	ws := &Workspace{Core: CoreSparse, RefactorEvery: 1}
	got := ws.Solve(p)
	if got.Status != StatusOptimal {
		t.Fatalf("sparse status %v", got.Status)
	}
	if math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
		t.Fatalf("objective %v, want %v", got.Objective, want.Objective)
	}
	if ws.Refactorizations == 0 {
		t.Fatal("RefactorEvery=1 produced no refactorizations")
	}
}

// TestSparseGenAgreement cross-checks the two engines on mid-sized
// instances of both generator shapes (all-LE flow, GE set cover).
func TestSparseGenAgreement(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		requireAgree(t, GenSchedLP(25, 5, 4, 3, seed))
		requireAgree(t, GenCoverLP(60, 90, 4, seed))
	}
}

// TestFixedColumnPricing checks that variables fixed by their bounds are
// excluded from the pricing index on both engines and still extract at
// their fixed value.
func TestFixedColumnPricing(t *testing.T) {
	p := &Problem{
		C:      []float64{5, 1, 1},
		A:      [][]float64{{1, 1, 0}, {1, 0, 1}},
		B:      []float64{6, 7},
		Senses: []Sense{LE, LE},
		Lower:  []float64{2, 0, 0},
		Upper:  []float64{2, math.Inf(1), math.Inf(1)}, // x0 fixed at 2
	}
	for _, core := range []Core{CoreDense, CoreSparse} {
		ws := &Workspace{Core: core}
		sol := ws.Solve(p)
		if sol.Status != StatusOptimal {
			t.Fatalf("core %d: status %v", core, sol.Status)
		}
		if math.Abs(sol.X[0]-2) > 1e-9 {
			t.Fatalf("core %d: fixed variable moved: %v", core, sol.X)
		}
		// max 5*2 + x1 + x2 st x1 <= 4, x2 <= 5.
		if math.Abs(sol.Objective-19) > 1e-9 {
			t.Fatalf("core %d: objective %v, want 19", core, sol.Objective)
		}
		fixed := ws.cols[0].col
		if !ws.fixedCol[fixed] {
			t.Fatalf("core %d: fixedCol not set for column %d", core, fixed)
		}
		for _, j := range ws.price {
			if int(j) == fixed {
				t.Fatalf("core %d: fixed column %d still in pricing index", core, fixed)
			}
		}
	}
}

// TestWarmColdSparseResolve checks basis reuse on the sparse core: a
// same-shaped re-solve must skip phase 1 (BasisReuses == 1), reproduce
// the cold solution exactly, and a perturbed-RHS warm solve must match a
// cold solve of the perturbed problem.
func TestWarmColdSparseResolve(t *testing.T) {
	p := GenSchedLP(10, 4, 3, 2, 11)
	ws := &Workspace{Core: CoreSparse, ReuseBasis: true}
	cold := ws.Solve(p)
	if cold.Status != StatusOptimal {
		t.Fatalf("cold status %v", cold.Status)
	}
	coldObj := cold.Objective
	warm := ws.Solve(p)
	if ws.BasisReuses != 1 {
		t.Fatalf("BasisReuses = %d, want 1", ws.BasisReuses)
	}
	if warm.Status != StatusOptimal || math.Abs(warm.Objective-coldObj) > 1e-9 {
		t.Fatalf("warm re-solve: status %v objective %v, want %v", warm.Status, warm.Objective, coldObj)
	}
	if warm.Iters >= cold.Iters {
		t.Fatalf("warm iters %d not below cold %d", warm.Iters, cold.Iters)
	}

	// Perturb the right-hand sides and compare warm against cold.
	rng := rand.New(rand.NewSource(99))
	for i := range p.B {
		if p.B[i] >= 1 {
			p.B[i] += 0.1 * rng.Float64()
		}
	}
	warm2 := ws.Solve(p)
	coldWS := &Workspace{Core: CoreSparse}
	cold2 := coldWS.Solve(p)
	if warm2.Status != cold2.Status {
		t.Fatalf("perturbed: warm %v cold %v", warm2.Status, cold2.Status)
	}
	if math.Abs(warm2.Objective-cold2.Objective) > 1e-6*(1+math.Abs(cold2.Objective)) {
		t.Fatalf("perturbed objective: warm %v cold %v", warm2.Objective, cold2.Objective)
	}
}

// TestWarmColdSparseCrossCore checks saved-basis portability: a basis
// saved by one engine must install on the other (same column numbering)
// and skip phase 1.
func TestWarmColdSparseCrossCore(t *testing.T) {
	p := GenSchedLP(8, 3, 3, 2, 5)
	ws := &Workspace{Core: CoreDense, ReuseBasis: true}
	d := ws.Solve(p)
	if d.Status != StatusOptimal {
		t.Fatalf("dense status %v", d.Status)
	}
	ws.Core = CoreSparse
	s := ws.Solve(p)
	if ws.BasisReuses != 1 {
		t.Fatalf("dense->sparse BasisReuses = %d, want 1", ws.BasisReuses)
	}
	if s.Status != StatusOptimal || math.Abs(s.Objective-d.Objective) > 1e-9 {
		t.Fatalf("dense->sparse: %v %v, want %v", s.Status, s.Objective, d.Objective)
	}
	ws.Core = CoreDense
	d2 := ws.Solve(p)
	if ws.BasisReuses != 2 {
		t.Fatalf("sparse->dense BasisReuses = %d, want 2", ws.BasisReuses)
	}
	if d2.Status != StatusOptimal || math.Abs(d2.Objective-d.Objective) > 1e-9 {
		t.Fatalf("sparse->dense: %v %v, want %v", d2.Status, d2.Objective, d.Objective)
	}
}

// TestSparseSeedPoint checks the sparse crash start: seeding the known
// optimum of an all-LE model must be accepted (BasisReuses == 1) and
// reproduce the cold objective.
func TestSparseSeedPoint(t *testing.T) {
	p := GenSchedLP(10, 3, 3, 2, 21)
	cold := solveCore(t, p, CoreSparse)
	if cold.Status != StatusOptimal {
		t.Fatalf("cold status %v", cold.Status)
	}
	seed := append([]float64(nil), cold.X...)
	ws := &Workspace{Core: CoreSparse, ReuseBasis: true}
	ws.SeedPoint(seed)
	sol := ws.Solve(p)
	if sol.Status != StatusOptimal {
		t.Fatalf("seeded status %v", sol.Status)
	}
	if ws.BasisReuses != 1 {
		t.Fatalf("seeded BasisReuses = %d, want 1", ws.BasisReuses)
	}
	if math.Abs(sol.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Fatalf("seeded objective %v, cold %v", sol.Objective, cold.Objective)
	}
}

// TestSparseCountersAndAuto checks the factorization counters tick and
// the CoreAuto crossover picks the dense engine at seed scale.
func TestSparseCountersAndAuto(t *testing.T) {
	p := GenSchedLP(10, 4, 3, 2, 31)
	ws := &Workspace{Core: CoreSparse}
	if sol := ws.Solve(p); sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if ws.Factorizations == 0 {
		t.Fatal("no factorizations recorded")
	}
	auto := &Workspace{}
	if auto.useSparse(p) {
		t.Fatalf("CoreAuto chose sparse for n+m=%d < %d", len(p.C)+len(p.B), sparseCrossover)
	}
	big := &Problem{C: make([]float64, sparseCrossover)}
	if !auto.useSparse(big) {
		t.Fatal("CoreAuto chose dense above the crossover")
	}
}

// BenchmarkSparseSchedShaped times the sparse core on a large
// sched-shaped instance (~8.4k vars); the dense tableau at this size
// would allocate a ~700MB tableau, so only the sparse engine runs here
// (cmd/benchlp measures the dense/sparse ratio at sizes the dense core
// can still stomach).
func BenchmarkSparseSchedShaped(b *testing.B) {
	p := GenSchedLP(400, 6, 3, 8, 1)
	ws := &Workspace{Core: CoreSparse}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol := ws.Solve(p); sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
