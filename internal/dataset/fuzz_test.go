package dataset

import (
	"strings"
	"testing"
)

// FuzzReadJSON ensures arbitrary JSON never panics the dataset importer.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"targets":[{"lat":10,"lon":20}]}`)
	f.Add(`{"name":"x","targets":[]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted set fails validation: %v", err)
		}
	})
}
