package dataset

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"eagleeye/internal/geo"
)

// FuzzReadJSON ensures arbitrary JSON never panics the dataset importer.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"targets":[{"lat":10,"lon":20}]}`)
	f.Add(`{"name":"x","targets":[]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted set fails validation: %v", err)
		}
	})
}

// FuzzShardTileNearDifferential mirrors the sharded frame pipeline's
// candidate query: a shard tile (cell of the frame grid) plus its halo
// band is covered by one NearInto call of the tile's circumradius plus
// the halo margin. At fine cell sizes the index must return a
// duplicate-free superset whose precise re-filter (the one
// sim.filterInFrame applies) is exactly the brute-force scan: no target
// inside the tile+halo disk missed, none reported twice, none invented.
func FuzzShardTileNearDifferential(f *testing.F) {
	f.Add(int64(1), 0.0, 0.0, 25.0, 10.0, 0.05)
	f.Add(int64(2), 49.7, -80.2, 50.0, 10.0, 0.1)
	f.Add(int64(3), -30.0, 120.0, 12.5, 5.0, 0.5)
	f.Add(int64(4), 80.0, 179.5, 100.0, 20.0, 0.05) // polar + antimeridian tile
	f.Fuzz(func(t *testing.T, seed int64, lat, lon, tileKM, haloKM, cellDeg float64) {
		if !(lat >= -90 && lat <= 90) || !(lon >= -360 && lon <= 360) {
			t.Skip()
		}
		if !(tileKM >= 1 && tileKM <= 500) || !(haloKM >= 0 && haloKM <= 100) {
			t.Skip()
		}
		if !(cellDeg >= 0.02 && cellDeg <= 2) {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		center := geo.LatLon{Lat: lat, Lon: lon}.Normalize()
		s := &Set{Name: "tile-fuzz"}
		// Cluster most targets within a few tile widths of the center so
		// the query boundary is actually contested, plus a scattered
		// background that must stay excluded.
		spreadDeg := 3 * tileKM / 111
		for i := 0; i < 220; i++ {
			s.Targets = append(s.Targets, Target{
				ID: i,
				Pos: geo.LatLon{
					Lat: center.Lat + (rng.Float64()*2-1)*spreadDeg,
					Lon: center.Lon + (rng.Float64()*2-1)*spreadDeg,
				}.Normalize(),
				Value: 1,
			})
		}
		for i := 220; i < 260; i++ {
			s.Targets = append(s.Targets, Target{
				ID:    i,
				Pos:   geo.LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}.Normalize(),
				Value: 1,
			})
		}
		// Square tile of edge tileKM: circumradius + halo covers every
		// point a shard owning the tile may touch.
		half := tileKM * 1e3 / 2
		radius := math.Hypot(half, half) + haloKM*1e3
		ix := NewIndex(s, cellDeg, 0)
		got := ix.NearInto(center, radius, 0, make([]int32, 0, 16))
		seen := make(map[int32]bool, len(got))
		hits := 0
		for _, ci := range got {
			if seen[ci] {
				t.Fatalf("duplicate candidate %d", ci)
			}
			seen[ci] = true
			if geo.GreatCircleDistance(s.Targets[ci].Pos, center) <= radius {
				hits++
			}
		}
		brute := 0
		for i, tgt := range s.Targets {
			if geo.GreatCircleDistance(tgt.Pos, center) > radius {
				continue
			}
			brute++
			if !seen[int32(i)] {
				t.Fatalf("missed in-halo target %d (radius %.0f m, distance %.0f m)",
					i, radius, geo.GreatCircleDistance(tgt.Pos, center))
			}
		}
		if hits != brute {
			t.Fatalf("filtered candidates %d != brute-force %d", hits, brute)
		}
	})
}

// FuzzNearConsistency drives the grid index with arbitrary query points,
// radii, and cell sizes, checking the three-way invariant NearInto ≡ Near
// ≡ brute force: both query paths agree element-for-element, no candidate
// is reported twice, and no in-radius target is missed.
func FuzzNearConsistency(f *testing.F) {
	f.Add(int64(1), 12.0, 34.0, 80e3, 2.0)
	f.Add(int64(2), 79.5, -179.0, 900e3, 3.0)
	f.Add(int64(3), -85.0, 10.0, 2.2e6, 0.5)
	f.Add(int64(4), 59.0, 0.0, 2.446e6, 2.0) // old lon-wrap duplicate window
	f.Fuzz(func(t *testing.T, seed int64, lat, lon, radiusM, cellDeg float64) {
		if !(lat >= -90 && lat <= 90) || !(lon >= -360 && lon <= 360) {
			t.Skip()
		}
		if !(radiusM >= 0 && radiusM <= 2.5e7) || !(cellDeg >= 0.05 && cellDeg <= 10) {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		s := &Set{Name: "fuzz"}
		for i := 0; i < 200; i++ {
			s.Targets = append(s.Targets, Target{
				ID:    i,
				Pos:   geo.LatLon{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}.Normalize(),
				Value: 1,
			})
		}
		ix := NewIndex(s, cellDeg, 0)
		q := geo.LatLon{Lat: lat, Lon: lon}.Normalize()
		got := ix.Near(q, radiusM, 0)
		into := ix.NearInto(q, radiusM, 0, make([]int32, 0, 8))
		if len(got) != len(into) {
			t.Fatalf("Near %d results, NearInto %d", len(got), len(into))
		}
		seen := make(map[int32]bool, len(got))
		for i := range got {
			if got[i] != into[i] {
				t.Fatalf("result %d differs: %d vs %d", i, got[i], into[i])
			}
			if seen[got[i]] {
				t.Fatalf("duplicate candidate %d", got[i])
			}
			seen[got[i]] = true
		}
		for i, tgt := range s.Targets {
			if geo.GreatCircleDistance(tgt.Pos, q) <= radiusM && !seen[int32(i)] {
				t.Fatalf("missed target %d (radius %.0f, distance %.0f)",
					i, radiusM, geo.GreatCircleDistance(tgt.Pos, q))
			}
		}
	})
}
