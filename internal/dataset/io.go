package dataset

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON interchange format for target sets: the same schema cmd/datagen
// emits, so synthetic worlds can be exported, edited, and re-imported --
// or replaced wholesale with real data (e.g. a Global Fishing Watch
// export converted to this schema).

// jsonTarget mirrors Target for serialization.
type jsonTarget struct {
	ID         int     `json:"id"`
	Lat        float64 `json:"lat"`
	Lon        float64 `json:"lon"`
	SpeedMS    float64 `json:"speed_ms,omitempty"`
	HeadingDeg float64 `json:"heading_deg,omitempty"`
	Value      float64 `json:"value"`
	AreaKM2    float64 `json:"area_km2,omitempty"`
	AppearS    float64 `json:"appear_s,omitempty"`
	VanishS    float64 `json:"vanish_s,omitempty"`
}

type jsonSet struct {
	Name    string       `json:"name"`
	Moving  bool         `json:"moving"`
	Count   int          `json:"count"`
	Targets []jsonTarget `json:"targets"`
}

// WriteJSON serializes the set (optionally truncated to limit targets;
// limit <= 0 writes all) in the interchange schema.
func (s *Set) WriteJSON(w io.Writer, limit int) error {
	targets := s.Targets
	if limit > 0 && limit < len(targets) {
		targets = targets[:limit]
	}
	js := jsonSet{Name: s.Name, Moving: s.Moving, Count: len(s.Targets)}
	js.Targets = make([]jsonTarget, 0, len(targets))
	for _, t := range targets {
		js.Targets = append(js.Targets, jsonTarget{
			ID: t.ID, Lat: t.Pos.Lat, Lon: t.Pos.Lon,
			SpeedMS: t.SpeedMS, HeadingDeg: t.HeadingDeg,
			Value: t.Value, AreaKM2: t.AreaKM2,
			AppearS: t.AppearS, VanishS: t.VanishS,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadJSON parses a set from the interchange schema and validates it.
// Values default to 1 when omitted (real exports rarely carry priorities).
func ReadJSON(r io.Reader) (*Set, error) {
	var js jsonSet
	dec := json.NewDecoder(r)
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	s := &Set{Name: js.Name, Moving: js.Moving}
	if s.Name == "" {
		s.Name = "imported"
	}
	for i, jt := range js.Targets {
		v := jt.Value
		if v == 0 {
			v = 1
		}
		id := jt.ID
		if id == 0 && i > 0 && js.Targets[0].ID == 0 {
			// Exports without IDs: assign positions.
			id = i
		}
		s.Targets = append(s.Targets, Target{
			ID: id, Pos: normalizePos(jt.Lat, jt.Lon),
			SpeedMS: jt.SpeedMS, HeadingDeg: jt.HeadingDeg,
			Value: v, AreaKM2: jt.AreaKM2,
			AppearS: jt.AppearS, VanishS: jt.VanishS,
		})
		if jt.SpeedMS > 0 {
			s.Moving = true
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
