package dataset

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"eagleeye/internal/geo"
)

// TestIndexFineCellNoAliasing pins the cell-key stride to the column
// count. The old fixed stride of 4096 aliased columns into neighboring
// rows for cellDeg below ~0.088 (360/cellDeg columns): the two targets
// below land in cells (row 1800, col 1000) and (row 1799, col 5096),
// which collide under a 4096 stride (1800*4096+1000 == 1799*4096+5096),
// so a tight query around the first target dragged in a target half a
// world away.
func TestIndexFineCellNoAliasing(t *testing.T) {
	s := &Set{Name: "alias"}
	near := geo.LatLon{Lat: 0.025, Lon: -129.975}
	far := geo.LatLon{Lat: -0.025, Lon: 74.825}
	s.Targets = append(s.Targets,
		Target{ID: 0, Pos: near, Value: 1},
		Target{ID: 1, Pos: far, Value: 1},
	)
	ix := NewIndex(s, 0.05, 0)
	got := ix.Near(near, 1e3, 0)
	foundNear := false
	for _, ci := range got {
		switch ci {
		case 0:
			foundNear = true
		case 1:
			t.Errorf("candidate set contains a target %.0f km away",
				geo.GreatCircleDistance(near, far)/1e3)
		}
	}
	if !foundNear {
		t.Error("query missed the target in its own cell")
	}
}

// TestIndexCoarseCellsStillFind guards the stride change at the default
// coarse resolution: nearby targets keep being found.
func TestIndexCoarseCellsStillFind(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := &Set{Name: "coarse"}
	for i := 0; i < 200; i++ {
		s.Targets = append(s.Targets, Target{
			ID:    i,
			Pos:   geo.LatLon{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}.Normalize(),
			Value: 1,
		})
	}
	ix := NewIndex(s, 2, 0)
	for i, tgt := range s.Targets {
		found := false
		for _, ci := range ix.Near(tgt.Pos, 10e3, 0) {
			if ci == int32(i) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("target %d at %+v not in its own neighborhood", i, tgt.Pos)
		}
	}
}

// TestTimedIndexConcurrentNear hammers one TimedIndex from several
// goroutines so that bucket construction races with lookups -- the access
// pattern of the parallel simulator. Before bucket builds were
// mutex-guarded this failed under -race.
func TestTimedIndexConcurrentNear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := &Set{Name: "conc", Moving: true}
	for i := 0; i < 400; i++ {
		s.Targets = append(s.Targets, Target{
			ID:         i,
			Pos:        geo.LatLon{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*360 - 180}.Normalize(),
			SpeedMS:    50 + rng.Float64()*150,
			HeadingDeg: rng.Float64() * 360,
			Value:      1,
		})
	}
	tx := NewTimedIndex(s, 2, 60)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Interleave bucket times across goroutines so the same
				// bucket is requested concurrently before it exists.
				ts := float64(((i*7 + w*3) % 40) * 60)
				p := geo.LatLon{Lat: float64(i%120 - 60), Lon: float64((w*45+i)%360 - 180)}
				tx.Near(p, 2e5, ts)
			}
		}(w)
	}
	wg.Wait()
	if tx.Set() != s {
		t.Error("Set accessor lost the underlying set")
	}
}

// TestNearNoDuplicateCandidates pins the longitude-span clamp. With
// cellDeg=2 and a query at (59, 0), a radius near 2446 km makes the row at
// lat ~81 scan a padded span of just under 360 degrees plus slack cells:
// the walk wrapped past its own starting cell and reported that cell's
// targets twice, inflating TargetsPerImage/Detections downstream.
func TestNearNoDuplicateCandidates(t *testing.T) {
	s := &Set{Name: "dup"}
	id := 0
	for _, lat := range []float64{59, 75, 81} {
		for lon := -180.0; lon < 180; lon += 2 {
			s.Targets = append(s.Targets, Target{
				ID:    id,
				Pos:   geo.LatLon{Lat: lat, Lon: lon + 0.5},
				Value: 1,
			})
			id++
		}
	}
	ix := NewIndex(s, 2, 0)
	q := geo.LatLon{Lat: 59, Lon: 0}
	seen := make(map[int32]int)
	for radiusM := 2.40e6; radiusM <= 2.50e6; radiusM *= 1.0005 {
		got := ix.Near(q, radiusM, 0)
		for k := range seen {
			delete(seen, k)
		}
		for _, ci := range got {
			seen[ci]++
			if seen[ci] > 1 {
				t.Fatalf("radius %.0f: candidate %d reported %d times", radiusM, ci, seen[ci])
			}
		}
	}
}

// TestNearIntoDifferential checks NearInto ≡ Near ≡ brute force on a
// random world: identical slices from both query paths, no duplicates,
// and every target whose indexed position lies within the radius present.
func TestNearIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := &Set{Name: "diff"}
	for i := 0; i < 500; i++ {
		s.Targets = append(s.Targets, Target{
			ID:    i,
			Pos:   geo.LatLon{Lat: rng.Float64()*178 - 89, Lon: rng.Float64()*360 - 180}.Normalize(),
			Value: 1,
		})
	}
	for _, cellDeg := range []float64{0.5, 2, 7} {
		ix := NewIndex(s, cellDeg, 0)
		scratch := make([]int32, 0, 64)
		for qi := 0; qi < 50; qi++ {
			q := geo.LatLon{Lat: rng.Float64()*178 - 89, Lon: rng.Float64()*360 - 180}.Normalize()
			radiusM := math.Exp(rng.Float64()*8) * 1e3 // 1e3 .. ~3e6 m
			got := ix.Near(q, radiusM, 0)
			scratch = ix.NearInto(q, radiusM, 0, scratch[:0])
			if len(got) != len(scratch) {
				t.Fatalf("cell %.1f query %d: Near %d results, NearInto %d", cellDeg, qi, len(got), len(scratch))
			}
			seen := make(map[int32]bool, len(got))
			for i := range got {
				if got[i] != scratch[i] {
					t.Fatalf("cell %.1f query %d: result %d differs: %d vs %d", cellDeg, qi, i, got[i], scratch[i])
				}
				if seen[got[i]] {
					t.Fatalf("cell %.1f query %d: duplicate candidate %d", cellDeg, qi, got[i])
				}
				seen[got[i]] = true
			}
			for i, tgt := range s.Targets {
				if geo.GreatCircleDistance(tgt.Pos, q) <= radiusM && !seen[int32(i)] {
					t.Fatalf("cell %.1f query %d (radius %.0f): missed target %d at distance %.0f",
						cellDeg, qi, radiusM, i, geo.GreatCircleDistance(tgt.Pos, q))
				}
			}
		}
	}
}
