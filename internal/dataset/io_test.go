package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Airplanes(3)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf, 500); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name = %q", got.Name)
	}
	if !got.Moving {
		t.Error("moving flag lost")
	}
	if len(got.Targets) != 500 {
		t.Fatalf("targets = %d, want 500 (limited)", len(got.Targets))
	}
	for i := range got.Targets {
		a, b := got.Targets[i], orig.Targets[i]
		if a.ID != b.ID || a.SpeedMS != b.SpeedMS || a.HeadingDeg != b.HeadingDeg {
			t.Fatalf("target %d mismatch: %+v vs %+v", i, a, b)
		}
		if a.Pos.Lat != b.Pos.Lat || a.Pos.Lon != b.Pos.Lon {
			t.Fatalf("target %d position drift", i)
		}
	}
}

func TestJSONWriteAllWhenNoLimit(t *testing.T) {
	s := OilTanks(1)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Targets) != len(s.Targets) {
		t.Errorf("targets = %d, want %d", len(got.Targets), len(s.Targets))
	}
}

func TestReadJSONDefaults(t *testing.T) {
	// Minimal external export: no values, no name, no ids.
	raw := `{"targets":[{"lat":10,"lon":20},{"lat":-5,"lon":190,"speed_ms":100}]}`
	got, err := ReadJSON(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "imported" {
		t.Errorf("name = %q", got.Name)
	}
	if got.Targets[0].Value != 1 {
		t.Errorf("default value = %v", got.Targets[0].Value)
	}
	if got.Targets[1].ID != 1 {
		t.Errorf("assigned id = %d", got.Targets[1].ID)
	}
	// Longitude 190 wrapped into range.
	if got.Targets[1].Pos.Lon > 180 || got.Targets[1].Pos.Lon <= -180 {
		t.Errorf("lon not wrapped: %v", got.Targets[1].Pos.Lon)
	}
	// A moving target flips the Moving flag.
	if !got.Moving {
		t.Error("moving not inferred from speeds")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Invalid latitude survives normalization as a clamp, so construct an
	// invalid value instead.
	raw := `{"targets":[{"lat":10,"lon":20,"value":-3}]}`
	if _, err := ReadJSON(strings.NewReader(raw)); err == nil {
		t.Error("negative value accepted")
	}
}
