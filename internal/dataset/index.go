package dataset

import (
	"math"
	"sync"

	"eagleeye/internal/geo"
)

// Index is a uniform lat/lon grid over a target set, answering "which
// targets could lie within R meters of this point" queries. The simulator
// issues one query per leader frame, so the index is what makes 24-hour
// million-target runs tractable.
type Index struct {
	set     *Set
	cellDeg float64
	atTime  float64
	cells   map[int64][]int32
	// stride is the cell-key row stride: one more than the column count,
	// so any longitude cell (including lon = +180 after wrapping) fits a
	// row without aliasing into its neighbor.
	stride int64
	// maxSpeed widens queries when positions were indexed at a different
	// time than the query.
	maxSpeed float64
}

// NewIndex builds a grid index of the set's positions at elapsed time
// atTime (targets inactive at that time are still indexed; callers filter
// with ActiveAt). cellDeg 0 defaults to 2 degrees.
func NewIndex(s *Set, cellDeg float64, atTime float64) *Index {
	if cellDeg <= 0 {
		cellDeg = 2
	}
	ix := &Index{
		set:     s,
		cellDeg: cellDeg,
		atTime:  atTime,
		cells:   make(map[int64][]int32),
		stride:  int64(math.Ceil(360/cellDeg)) + 1,
	}
	for i, t := range s.Targets {
		if t.SpeedMS > ix.maxSpeed {
			ix.maxSpeed = t.SpeedMS
		}
		p := t.PosAt(atTime)
		k := ix.key(p.Lat, p.Lon)
		ix.cells[k] = append(ix.cells[k], int32(i))
	}
	return ix
}

func (ix *Index) key(lat, lon float64) int64 {
	r := int64(math.Floor((lat + 90) / ix.cellDeg))
	c := int64(math.Floor((geo.WrapLonDeg(lon) + 180) / ix.cellDeg))
	return r*ix.stride + c
}

// Near returns indices of targets whose indexed position lies within
// roughly radiusM of p (a superset: callers must re-filter precisely).
// queryTime widens the radius by the distance moving targets may have
// travelled since indexing.
func (ix *Index) Near(p geo.LatLon, radiusM float64, queryTime float64) []int32 {
	pad := ix.maxSpeed * math.Abs(queryTime-ix.atTime)
	radDeg := (radiusM + pad) / 111e3 // meters per degree latitude
	latLo := p.Lat - radDeg
	latHi := p.Lat + radDeg
	var out []int32
	for lat := latLo; lat <= latHi+ix.cellDeg; lat += ix.cellDeg {
		if lat < -90-ix.cellDeg || lat > 90+ix.cellDeg {
			continue
		}
		// Longitude span must be computed at the row's most poleward
		// latitude, where meridians converge fastest.
		poleward := math.Max(math.Abs(lat), math.Abs(lat+ix.cellDeg))
		if poleward >= 88 {
			// Near the poles: scan the whole latitude row.
			for lon := -180.0; lon < 180; lon += ix.cellDeg {
				out = append(out, ix.cells[ix.key(lat, lon)]...)
			}
			continue
		}
		lonRad := radDeg / math.Cos(geo.Deg2Rad(poleward))
		if lonRad >= 180 {
			for lon := -180.0; lon < 180; lon += ix.cellDeg {
				out = append(out, ix.cells[ix.key(lat, lon)]...)
			}
			continue
		}
		for lon := p.Lon - lonRad; lon <= p.Lon+lonRad+ix.cellDeg; lon += ix.cellDeg {
			out = append(out, ix.cells[ix.key(lat, geo.WrapLonDeg(lon))]...)
		}
	}
	return out
}

// TimedIndex maintains per-time-bucket indices for moving target sets,
// rebuilding lazily as the simulation advances. It is safe for concurrent
// use: the parallel simulator shares one TimedIndex across worker
// goroutines, so bucket construction is mutex-guarded (a completed Index
// is immutable and read without locking).
type TimedIndex struct {
	set     *Set
	cellDeg float64
	bucketS float64

	mu      sync.RWMutex
	buckets map[int64]*Index
}

// NewTimedIndex creates a lazily-populated timed index. bucketS 0 defaults
// to 600 s (moving-target positions are re-indexed every ten minutes).
func NewTimedIndex(s *Set, cellDeg, bucketS float64) *TimedIndex {
	if bucketS <= 0 {
		bucketS = 600
	}
	return &TimedIndex{set: s, cellDeg: cellDeg, bucketS: bucketS, buckets: make(map[int64]*Index)}
}

// Near returns candidate indices near p at elapsed time ts.
func (tx *TimedIndex) Near(p geo.LatLon, radiusM float64, ts float64) []int32 {
	if !tx.set.Moving {
		// Static sets need a single bucket.
		ts = 0
	}
	b := int64(math.Floor(ts / tx.bucketS))
	tx.mu.RLock()
	ix := tx.buckets[b]
	tx.mu.RUnlock()
	if ix == nil {
		// Double-checked build: another worker may have populated the
		// bucket while we waited for the write lock.
		tx.mu.Lock()
		if ix = tx.buckets[b]; ix == nil {
			ix = NewIndex(tx.set, tx.cellDeg, float64(b)*tx.bucketS)
			tx.buckets[b] = ix
		}
		tx.mu.Unlock()
	}
	return ix.Near(p, radiusM, ts)
}

// Set returns the underlying target set.
func (tx *TimedIndex) Set() *Set { return tx.set }
