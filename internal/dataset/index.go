package dataset

import (
	"math"
	"sync"

	"eagleeye/internal/geo"
)

// Index is a uniform lat/lon grid over a target set, answering "which
// targets could lie within R meters of this point" queries. The simulator
// issues one query per leader frame, so the index is what makes 24-hour
// million-target runs tractable.
type Index struct {
	set     *Set
	cellDeg float64
	atTime  float64
	// Cell storage is CSR over the dense row*stride+col key space: cell k
	// holds arena[offsets[k]:offsets[k+1]], members in input order. A flat
	// offsets array replaces the old map of cells: the query loop touches
	// every cell in a window, and the per-cell map hashing dominated the
	// lookup cost on large static sets.
	offsets []int32
	arena   []int32
	// stride is the cell-key row stride: one more than the column count,
	// so any longitude cell (including lon = +180 after wrapping) fits a
	// row without aliasing into its neighbor.
	stride int64
	// nrows bounds the latitude rows; queries clamp to [0, nrows).
	nrows int64
	// maxSpeed widens queries when positions were indexed at a different
	// time than the query.
	maxSpeed float64
}

// NewIndex builds a grid index of the set's positions at elapsed time
// atTime (targets inactive at that time are still indexed; callers filter
// with ActiveAt). cellDeg 0 defaults to 2 degrees.
func NewIndex(s *Set, cellDeg float64, atTime float64) *Index {
	if cellDeg <= 0 {
		cellDeg = 2
	}
	ix := &Index{
		set:     s,
		cellDeg: cellDeg,
		atTime:  atTime,
		stride:  int64(math.Ceil(360/cellDeg)) + 1,
		nrows:   int64(math.Ceil(180/cellDeg)) + 1,
	}
	// Counting-sort build: count members per cell, prefix-sum into the CSR
	// offsets, then scatter indices in input order (so cell membership
	// order matches the old per-cell appends exactly).
	ncells := ix.nrows * ix.stride
	keys := make([]int64, len(s.Targets))
	offsets := make([]int32, ncells+1)
	for i := range s.Targets {
		t := &s.Targets[i]
		if t.SpeedMS > ix.maxSpeed {
			ix.maxSpeed = t.SpeedMS
		}
		p := t.PosAt(atTime)
		k := ix.key(p.Lat, p.Lon)
		keys[i] = k
		offsets[k+1]++
	}
	for c := int64(1); c <= ncells; c++ {
		offsets[c] += offsets[c-1]
	}
	arena := make([]int32, len(s.Targets))
	cur := make([]int32, ncells)
	copy(cur, offsets[:ncells])
	for i, k := range keys {
		arena[cur[k]] = int32(i)
		cur[k]++
	}
	ix.offsets = offsets
	ix.arena = arena
	return ix
}

// cell returns cell k's member block. k must be in [0, nrows*stride).
func (ix *Index) cell(k int64) []int32 {
	return ix.arena[ix.offsets[k]:ix.offsets[k+1]]
}

// Set returns the underlying target set.
func (ix *Index) Set() *Set { return ix.set }

func (ix *Index) key(lat, lon float64) int64 {
	r := int64(math.Floor((lat + 90) / ix.cellDeg))
	if r < 0 {
		r = 0
	} else if r >= ix.nrows {
		r = ix.nrows - 1
	}
	c := int64(math.Floor((geo.WrapLonDeg(lon) + 180) / ix.cellDeg))
	if c < 0 {
		c = 0
	} else if c >= ix.stride {
		c = ix.stride - 1
	}
	return r*ix.stride + c
}

// Near returns indices of targets whose indexed position lies within
// roughly radiusM of p (a superset: callers must re-filter precisely).
// queryTime widens the radius by the distance moving targets may have
// travelled since indexing.
func (ix *Index) Near(p geo.LatLon, radiusM float64, queryTime float64) []int32 {
	return ix.NearInto(p, radiusM, queryTime, nil)
}

// NearInto is Near appending into a caller-owned slice (usually sliced to
// length zero), returning the extended slice. The simulator's frame loop
// reuses one scratch slice per worker instead of allocating per query.
func (ix *Index) NearInto(p geo.LatLon, radiusM float64, queryTime float64, out []int32) []int32 {
	pad := ix.maxSpeed * math.Abs(queryTime-ix.atTime)
	radDeg := (radiusM + pad) / 111e3 // meters per degree latitude (conservative)
	if radDeg > 180 {
		radDeg = 180
	}
	latLo := p.Lat - radDeg
	latHi := p.Lat + radDeg
	// Longitude half-window in degrees, valid for every row of the query.
	// For a circle clear of the poles the extreme longitude offset is
	// asin(sin r / cos lat), attained at the tangent parallel rather than
	// the query latitude; the old per-row radDeg/cos(poleward) window
	// under-covered trans-polar reach and, near its 360-degree overflow,
	// wrapped past its own starting cell and reported candidates twice. A
	// circle containing a pole reaches every longitude, so those queries
	// scan full rows.
	poleIn := math.Abs(p.Lat)+radDeg >= 90
	var lonWin float64
	if !poleIn {
		sinR := math.Sin(geo.Deg2Rad(radDeg))
		cosLat := math.Cos(geo.Deg2Rad(p.Lat))
		lonWin = geo.Rad2Deg(math.Asin(math.Min(1, sinR/cosLat)))
	}
	lonQ := geo.WrapLonDeg(p.Lon)
	for lat := latLo; lat <= latHi+ix.cellDeg; lat += ix.cellDeg {
		if lat < -90-ix.cellDeg || lat > 90+ix.cellDeg {
			continue
		}
		row := int64(math.Floor((lat + 90) / ix.cellDeg))
		if row < 0 || row >= ix.nrows {
			continue
		}
		// Clamp a padded span approaching one full row to a single
		// full-row pass so the walk never revisits its starting cell
		// (the 2-cell slack absorbs column-flooring at both ends).
		if poleIn || 2*lonWin+3*ix.cellDeg >= 360 {
			out = ix.appendRow(out, row)
			continue
		}
		// Column span [lo, hi] with one cell of slack, split at the
		// antimeridian. A split range always touches lon = ±180, whose
		// targets live in the extra seam column (WrapLonDeg maps -180 to
		// +180, past the last regular column) — the old lon-walk keyed its
		// -180 step into that seam column and skipped the first regular
		// cell of the row.
		lo := lonQ - lonWin
		hi := lonQ + lonWin + ix.cellDeg
		switch {
		case lo < -180:
			out = ix.appendCols(out, row, ix.col(lo+360), ix.stride-2)
			out = append(out, ix.cell(row*ix.stride+ix.stride-1)...)
			out = ix.appendCols(out, row, 0, ix.col(hi))
		case hi >= 180:
			out = ix.appendCols(out, row, ix.col(lo), ix.stride-2)
			out = append(out, ix.cell(row*ix.stride+ix.stride-1)...)
			out = ix.appendCols(out, row, 0, ix.col(hi-360))
		default:
			out = ix.appendCols(out, row, ix.col(lo), ix.col(hi))
		}
	}
	return out
}

// col maps an unwrapped longitude to its column index (no range clamping).
func (ix *Index) col(lon float64) int64 {
	return int64(math.Floor((lon + 180) / ix.cellDeg))
}

// appendCols appends the cells of columns [cLo, cHi] of a row, clamped to
// the regular-column range.
func (ix *Index) appendCols(out []int32, row, cLo, cHi int64) []int32 {
	if cLo < 0 {
		cLo = 0
	}
	if cHi > ix.stride-2 {
		cHi = ix.stride - 2
	}
	if cHi < cLo {
		return out
	}
	// One contiguous CSR range covers the whole column span.
	base := row * ix.stride
	return append(out, ix.arena[ix.offsets[base+cLo]:ix.offsets[base+cHi+1]]...)
}

// appendRow appends every cell of a latitude row to out, including the
// extra seam column holding lon = +180.
func (ix *Index) appendRow(out []int32, row int64) []int32 {
	base := row * ix.stride
	return append(out, ix.arena[ix.offsets[base]:ix.offsets[base+ix.stride]]...)
}

// TimedIndex maintains per-time-bucket indices for moving target sets,
// rebuilding lazily as the simulation advances. It is safe for concurrent
// use: the parallel simulator shares one TimedIndex across worker
// goroutines, so bucket construction is mutex-guarded (a completed Index
// is immutable and read without locking).
type TimedIndex struct {
	set     *Set
	cellDeg float64
	bucketS float64

	mu      sync.RWMutex
	buckets map[int64]*Index
}

// NewTimedIndex creates a lazily-populated timed index. bucketS 0 defaults
// to 600 s (moving-target positions are re-indexed every ten minutes).
func NewTimedIndex(s *Set, cellDeg, bucketS float64) *TimedIndex {
	if bucketS <= 0 {
		bucketS = 600
	}
	return &TimedIndex{set: s, cellDeg: cellDeg, bucketS: bucketS, buckets: make(map[int64]*Index)}
}

// Near returns candidate indices near p at elapsed time ts.
func (tx *TimedIndex) Near(p geo.LatLon, radiusM float64, ts float64) []int32 {
	return tx.NearInto(p, radiusM, ts, nil)
}

// NearInto is Near appending into a caller-owned slice. The scratch slice
// stays private to the calling goroutine; only the bucket lookup/build is
// synchronized.
func (tx *TimedIndex) NearInto(p geo.LatLon, radiusM float64, ts float64, out []int32) []int32 {
	if !tx.set.Moving {
		// Static sets need a single bucket.
		ts = 0
	}
	b := int64(math.Floor(ts / tx.bucketS))
	tx.mu.RLock()
	ix := tx.buckets[b]
	tx.mu.RUnlock()
	if ix == nil {
		// Double-checked build: another worker may have populated the
		// bucket while we waited for the write lock.
		tx.mu.Lock()
		if ix = tx.buckets[b]; ix == nil {
			ix = NewIndex(tx.set, tx.cellDeg, float64(b)*tx.bucketS)
			tx.buckets[b] = ix
		}
		tx.mu.Unlock()
	}
	return ix.NearInto(p, radiusM, ts, out)
}

// Set returns the underlying target set.
func (tx *TimedIndex) Set() *Set { return tx.set }
