// Package dataset provides deterministic synthetic equivalents of the four
// evaluation workloads in §5.2. The originals (Global Fishing Watch ship
// positions, Spire aircraft tracks, the HydroLAKES inventory, and the
// Kaggle oil-storage-tank imagery) cannot be redistributed, so each
// generator reproduces the statistics the experiments depend on: target
// count, spatial clustering (targets concentrate along shipping lanes,
// flight corridors and lake districts, which is what creates the dense
// frames that stress the scheduler), and motion (aircraft move at airliner
// speeds; ships are evaluated as a snapshot, as in the paper).
//
// Every generator takes a seed; the same seed always produces the same
// world, making every experiment reproducible bit-for-bit.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"eagleeye/internal/geo"
)

// Target is one ground target. Moving targets expose their trajectory
// through PosAt; static targets return Pos for every time.
type Target struct {
	ID         int
	Pos        geo.LatLon // position at t = 0
	SpeedMS    float64    // ground speed (0 for static targets)
	HeadingDeg float64    // course over ground
	Value      float64    // application priority in (0, 1]
	AreaKM2    float64    // footprint area (lakes); 0 for point targets
	// AppearS/VanishS bound the interval the target exists (aircraft enter
	// and leave the air picture); Vanish 0 means "forever".
	AppearS, VanishS float64
}

// PosAt returns the target's position at elapsed time t seconds.
func (t Target) PosAt(ts float64) geo.LatLon {
	if t.SpeedMS == 0 || ts == 0 {
		return t.Pos
	}
	return geo.Destination(t.Pos, t.HeadingDeg, t.SpeedMS*ts)
}

// ActiveAt reports whether the target exists at elapsed time t.
func (t Target) ActiveAt(ts float64) bool {
	if ts < t.AppearS {
		return false
	}
	return t.VanishS == 0 || ts <= t.VanishS
}

// Set is a named collection of targets.
type Set struct {
	Name    string
	Targets []Target
	Moving  bool
}

// Validate checks every target's coordinates and parameters.
func (s *Set) Validate() error {
	for i, t := range s.Targets {
		if !t.Pos.Valid() {
			return fmt.Errorf("dataset %s: target %d invalid position %v", s.Name, i, t.Pos)
		}
		if t.Value <= 0 || t.Value > 1 {
			return fmt.Errorf("dataset %s: target %d value %v out of (0,1]", s.Name, i, t.Value)
		}
		if t.SpeedMS < 0 {
			return fmt.Errorf("dataset %s: target %d negative speed", s.Name, i)
		}
	}
	return nil
}

// region is a geographic cluster seed: targets scatter around these with
// the given spread (degrees) and relative weight.
type region struct {
	lat, lon  float64
	spreadDeg float64
	weight    float64
}

// sampleClustered draws n positions from a mixture of the regions plus a
// uniform background fraction.
func sampleClustered(rng *rand.Rand, n int, regions []region, backgroundFrac float64, maxAbsLat float64) []geo.LatLon {
	totalW := 0.0
	for _, r := range regions {
		totalW += r.weight
	}
	out := make([]geo.LatLon, 0, n)
	for len(out) < n {
		if rng.Float64() < backgroundFrac {
			// Uniform-over-sphere background, clamped in latitude.
			lat := geo.Rad2Deg(math.Asin(2*rng.Float64() - 1))
			if math.Abs(lat) > maxAbsLat {
				continue
			}
			out = append(out, geo.LatLon{Lat: lat, Lon: rng.Float64()*360 - 180}.Normalize())
			continue
		}
		// Pick a region by weight.
		w := rng.Float64() * totalW
		var reg region
		for _, r := range regions {
			if w < r.weight {
				reg = r
				break
			}
			w -= r.weight
		}
		if reg.weight == 0 {
			reg = regions[len(regions)-1]
		}
		lat := reg.lat + rng.NormFloat64()*reg.spreadDeg
		lon := reg.lon + rng.NormFloat64()*reg.spreadDeg/math.Max(0.2, math.Cos(geo.Deg2Rad(reg.lat)))
		if math.Abs(lat) > maxAbsLat {
			continue
		}
		out = append(out, geo.LatLon{Lat: lat, Lon: lon}.Normalize())
	}
	return out
}

// value draws a detection-confidence-like priority in (0.5, 1].
func value(rng *rand.Rand) float64 { return 0.5 + 0.5*rng.Float64() }

// ShipCount matches the Global Fishing Watch snapshot used in the paper.
const ShipCount = 19119

// Ships generates the ship-detection workload: ShipCount static vessels
// clustered along major shipping lanes and fishing grounds. The paper
// evaluates ships as a snapshot (the source data has no motion), so
// SpeedMS is zero.
func Ships(seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	lanes := []region{
		{lat: 35, lon: 128, spreadDeg: 4, weight: 3},    // East China Sea / Korea
		{lat: 22, lon: 114, spreadDeg: 3, weight: 3},    // South China Sea
		{lat: 1.3, lon: 104, spreadDeg: 2.5, weight: 3}, // Malacca / Singapore
		{lat: 36, lon: 14, spreadDeg: 4, weight: 2},     // Mediterranean
		{lat: 51, lon: 2, spreadDeg: 2.5, weight: 2},    // North Sea / Channel
		{lat: 29, lon: 49, spreadDeg: 2, weight: 1.5},   // Persian Gulf
		{lat: 30, lon: -90, spreadDeg: 3, weight: 1.5},  // Gulf of Mexico
		{lat: 34, lon: -120, spreadDeg: 3, weight: 1},   // US West Coast
		{lat: -34, lon: 18, spreadDeg: 3, weight: 1},    // Cape of Good Hope
		{lat: -5, lon: -35, spreadDeg: 4, weight: 1},    // Brazilian coast
		{lat: 57, lon: -3, spreadDeg: 3, weight: 1},     // North Atlantic
		{lat: 12, lon: 45, spreadDeg: 2, weight: 1},     // Gulf of Aden
	}
	pts := sampleClustered(rng, ShipCount, lanes, 0.15, 70)
	s := &Set{Name: "ships"}
	for i, p := range pts {
		s.Targets = append(s.Targets, Target{ID: i, Pos: p, Value: value(rng)})
	}
	return s
}

// AirplaneCount matches the Spire 24-hour air picture used in the paper.
const AirplaneCount = 55196

// Airplanes generates the airplane-tracking workload: AirplaneCount
// aircraft on great-circle courses at airliner speeds, clustered around
// the busiest corridors. Flights appear and vanish through the day (the
// paper notes some targets only appear late in the simulation, bounding
// Low-Res-Only coverage at ~80%).
func Airplanes(seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	corridors := []region{
		{lat: 40, lon: -95, spreadDeg: 8, weight: 3},  // North America
		{lat: 48, lon: 8, spreadDeg: 6, weight: 3},    // Europe
		{lat: 32, lon: 110, spreadDeg: 8, weight: 3},  // East Asia
		{lat: 45, lon: -40, spreadDeg: 6, weight: 2},  // North Atlantic track
		{lat: 25, lon: 55, spreadDeg: 5, weight: 1.5}, // Middle East hub
		{lat: 20, lon: 78, spreadDeg: 5, weight: 1},   // India
		{lat: -25, lon: 135, spreadDeg: 6, weight: 1}, // Australia
		{lat: -15, lon: -55, spreadDeg: 6, weight: 1}, // South America
	}
	pts := sampleClustered(rng, AirplaneCount, corridors, 0.1, 72)
	s := &Set{Name: "airplanes", Moving: true}
	const day = 86400.0
	for i, p := range pts {
		appear := 0.0
		vanish := 0.0
		// Two thirds of flights are airborne part of the day only.
		if rng.Float64() < 0.67 {
			appear = rng.Float64() * day * 0.8
			vanish = appear + 1800 + rng.Float64()*6*3600 // 0.5-6.5 h legs
			if vanish > day {
				vanish = day
			}
		}
		s.Targets = append(s.Targets, Target{
			ID:         i,
			Pos:        p,
			SpeedMS:    180 + rng.Float64()*120, // 180-300 m/s ground speed
			HeadingDeg: rng.Float64() * 360,
			Value:      value(rng),
			AppearS:    appear,
			VanishS:    vanish,
		})
	}
	return s
}

// Lake counts for the two scenarios of §5.2.
const (
	LakeCountSmall = 166588  // lakes of 1-10 km^2
	LakeCountLarge = 1410999 // lakes of 0.1-10 km^2
)

// Lakes generates a lake-monitoring workload with count lakes of areas in
// [minKM2, maxKM2], clustered in the world's lake districts (the Canadian
// shield, Scandinavia and Siberia dominate real lake inventories).
func Lakes(seed int64, count int, minKM2, maxKM2 float64) *Set {
	rng := rand.New(rand.NewSource(seed))
	districts := []region{
		{lat: 58, lon: -95, spreadDeg: 9, weight: 4},   // Canadian shield
		{lat: 62, lon: 25, spreadDeg: 6, weight: 2.5},  // Fennoscandia
		{lat: 62, lon: 75, spreadDeg: 10, weight: 2.5}, // West Siberian plain
		{lat: 66, lon: 120, spreadDeg: 9, weight: 2},   // East Siberia
		{lat: 47, lon: -90, spreadDeg: 5, weight: 1.5}, // Great Lakes region
		{lat: 54, lon: 28, spreadDeg: 5, weight: 1},    // Baltic lakelands
		{lat: -2, lon: 30, spreadDeg: 4, weight: 0.7},  // African rift
		{lat: 30, lon: 90, spreadDeg: 5, weight: 0.7},  // Tibetan plateau
		{lat: -40, lon: -72, spreadDeg: 4, weight: 0.5},
	}
	pts := sampleClustered(rng, count, districts, 0.08, 72)
	name := fmt.Sprintf("lakes-%dk", count/1000)
	s := &Set{Name: name}
	// Lake areas follow a power law (many small, few large).
	alpha := 1.9
	for i, p := range pts {
		u := rng.Float64()
		area := minKM2 * math.Pow(math.Pow(maxKM2/minKM2, 1-alpha)*u+(1-u), 1/(1-alpha))
		if area < minKM2 {
			area = minKM2
		}
		if area > maxKM2 {
			area = maxKM2
		}
		s.Targets = append(s.Targets, Target{ID: i, Pos: p, Value: value(rng), AreaKM2: area})
	}
	return s
}

// LakesSmallScenario returns the 166,588-lake scenario (1-10 km^2).
func LakesSmallScenario(seed int64) *Set { return Lakes(seed, LakeCountSmall, 1, 10) }

// LakesLargeScenario returns the 1,410,999-lake scenario (0.1-10 km^2).
func LakesLargeScenario(seed int64) *Set { return Lakes(seed, LakeCountLarge, 0.1, 10) }

// OilTankFarmCount approximates the tank-farm sites represented in the
// Kaggle imagery dataset (10,000 images around industrial clusters).
const OilTankFarmCount = 1200

// OilTanks generates oil-storage tank farms near refining hubs. The paper
// uses the tank dataset only for ML accuracy (no geographic schedule
// evaluation), but the generator provides positions so the full pipeline
// can exercise the use case end to end.
func OilTanks(seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	hubs := []region{
		{lat: 29.7, lon: -95.0, spreadDeg: 1.5, weight: 3}, // US Gulf Coast
		{lat: 26.5, lon: 50.1, spreadDeg: 1.5, weight: 2},  // Persian Gulf
		{lat: 51.9, lon: 4.4, spreadDeg: 1, weight: 1.5},   // Rotterdam
		{lat: 1.3, lon: 103.7, spreadDeg: 1, weight: 1.5},  // Singapore
		{lat: 35.5, lon: 139.8, spreadDeg: 1, weight: 1},   // Tokyo Bay
		{lat: 23, lon: 113.5, spreadDeg: 1.5, weight: 1},   // Pearl River
	}
	pts := sampleClustered(rng, OilTankFarmCount, hubs, 0.05, 60)
	s := &Set{Name: "oiltanks"}
	for i, p := range pts {
		s.Targets = append(s.Targets, Target{ID: i, Pos: p, Value: value(rng)})
	}
	return s
}

// ByName returns the named standard dataset ("ships", "airplanes",
// "lakes-166k", "lakes-1.4m", "oiltanks").
func ByName(name string, seed int64) (*Set, error) {
	switch name {
	case "ships":
		return Ships(seed), nil
	case "airplanes":
		return Airplanes(seed), nil
	case "lakes-166k":
		return LakesSmallScenario(seed), nil
	case "lakes-1.4m":
		return LakesLargeScenario(seed), nil
	case "oiltanks":
		return OilTanks(seed), nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q", name)
}

// StandardNames lists the four schedulable evaluation datasets in the
// order the paper's figures use.
func StandardNames() []string {
	return []string{"ships", "airplanes", "lakes-166k", "lakes-1.4m"}
}

// normalizePos wraps a raw lat/lon pair into a valid coordinate.
func normalizePos(lat, lon float64) geo.LatLon {
	return geo.LatLon{Lat: lat, Lon: lon}.Normalize()
}
