package dataset

import (
	"math"
	"testing"

	"eagleeye/internal/geo"
)

func TestShipsCountAndValidity(t *testing.T) {
	s := Ships(1)
	if len(s.Targets) != ShipCount {
		t.Fatalf("ships = %d, want %d", len(s.Targets), ShipCount)
	}
	if s.Moving {
		t.Error("ships should be a static snapshot")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range s.Targets[:100] {
		if tgt.SpeedMS != 0 {
			t.Error("ship with nonzero speed")
		}
	}
}

func TestAirplanesCountAndMotion(t *testing.T) {
	s := Airplanes(1)
	if len(s.Targets) != AirplaneCount {
		t.Fatalf("planes = %d, want %d", len(s.Targets), AirplaneCount)
	}
	if !s.Moving {
		t.Error("airplanes should be moving")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Speeds at airliner scale.
	for _, tgt := range s.Targets[:200] {
		if tgt.SpeedMS < 180 || tgt.SpeedMS > 300 {
			t.Errorf("plane speed %v out of range", tgt.SpeedMS)
		}
	}
	// Motion: position changes with time at roughly speed x time.
	tgt := s.Targets[0]
	d := geo.GreatCircleDistance(tgt.PosAt(0), tgt.PosAt(100))
	if math.Abs(d-tgt.SpeedMS*100) > 5 {
		t.Errorf("plane moved %v m in 100 s at %v m/s", d, tgt.SpeedMS)
	}
	// Some planes appear late (the paper's ~80% Low-Res ceiling).
	late := 0
	for _, tgt := range s.Targets {
		if tgt.AppearS > 0 {
			late++
		}
	}
	if frac := float64(late) / float64(len(s.Targets)); frac < 0.5 || frac > 0.8 {
		t.Errorf("late-appearing fraction = %v, want ~0.67", frac)
	}
}

func TestActiveAt(t *testing.T) {
	tgt := Target{AppearS: 100, VanishS: 200}
	if tgt.ActiveAt(50) || !tgt.ActiveAt(150) || tgt.ActiveAt(250) {
		t.Error("ActiveAt window wrong")
	}
	forever := Target{}
	if !forever.ActiveAt(0) || !forever.ActiveAt(1e9) {
		t.Error("default target should always be active")
	}
}

func TestLakesScenarios(t *testing.T) {
	small := Lakes(1, 5000, 1, 10)
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range small.Targets {
		if tgt.AreaKM2 < 1 || tgt.AreaKM2 > 10 {
			t.Fatalf("lake area %v out of [1,10]", tgt.AreaKM2)
		}
	}
	// Power-law: small lakes dominate.
	smallCount := 0
	for _, tgt := range small.Targets {
		if tgt.AreaKM2 < 3 {
			smallCount++
		}
	}
	if frac := float64(smallCount) / float64(len(small.Targets)); frac < 0.5 {
		t.Errorf("small-lake fraction = %v, want > 0.5 (power law)", frac)
	}
}

func TestLakeScenarioCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full lake inventories are large")
	}
	if n := len(LakesSmallScenario(1).Targets); n != LakeCountSmall {
		t.Errorf("small scenario = %d", n)
	}
	if n := len(LakesLargeScenario(1).Targets); n != LakeCountLarge {
		t.Errorf("large scenario = %d", n)
	}
}

func TestDeterminism(t *testing.T) {
	a := Ships(7)
	b := Ships(7)
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d differs between same-seed generations", i)
		}
	}
	c := Ships(8)
	same := true
	for i := range a.Targets {
		if a.Targets[i].Pos != c.Targets[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical worlds")
	}
}

func TestClusteringIsRealistic(t *testing.T) {
	// Targets must be clustered, not uniform: the densest 5% of 5-degree
	// cells should hold a large share of all targets.
	s := Ships(3)
	counts := make(map[[2]int]int)
	for _, tgt := range s.Targets {
		counts[[2]int{int(tgt.Pos.Lat / 5), int(tgt.Pos.Lon / 5)}]++
	}
	var all []int
	total := 0
	for _, c := range counts {
		all = append(all, c)
		total += c
	}
	// Top-5%-of-cells share.
	top := 0
	threshold := percentileInt(all, 0.95)
	for _, c := range all {
		if c >= threshold {
			top += c
		}
	}
	if frac := float64(top) / float64(total); frac < 0.3 {
		t.Errorf("top-cell share = %v, want clustered (> 0.3)", frac)
	}
}

func percentileInt(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(p * float64(len(cp)-1))
	return cp[idx]
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ships", "oiltanks"} {
		s, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Errorf("name = %q, want %q", s.Name, name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
	if len(StandardNames()) != 4 {
		t.Error("want 4 standard datasets")
	}
}

func TestOilTanks(t *testing.T) {
	s := OilTanks(1)
	if len(s.Targets) != OilTankFarmCount {
		t.Errorf("oil tanks = %d", len(s.Targets))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexFindsNearbyTargets(t *testing.T) {
	s := Ships(5)
	ix := NewIndex(s, 2, 0)
	// For each of a few targets, a query at its position must return it.
	for _, ti := range []int{0, 100, 5000, 19000} {
		tgt := s.Targets[ti]
		got := ix.Near(tgt.Pos, 50e3, 0)
		found := false
		for _, gi := range got {
			if int(gi) == ti {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("target %d not found near its own position", ti)
		}
	}
}

func TestIndexSupersetProperty(t *testing.T) {
	// Every target within the radius must be in the candidate list.
	s := Ships(6)
	ix := NewIndex(s, 2, 0)
	q := geo.LatLon{Lat: 35, Lon: 128} // dense region
	radius := 100e3
	cand := make(map[int32]bool)
	for _, gi := range ix.Near(q, radius, 0) {
		cand[gi] = true
	}
	for i, tgt := range s.Targets {
		if geo.GreatCircleDistance(q, tgt.Pos) <= radius {
			if !cand[int32(i)] {
				t.Fatalf("target %d within radius but not in candidates", i)
			}
		}
	}
	if len(cand) == 0 {
		t.Error("no candidates in a dense region")
	}
}

func TestIndexPolarQuery(t *testing.T) {
	s := &Set{Name: "polar"}
	s.Targets = append(s.Targets, Target{ID: 0, Pos: geo.LatLon{Lat: 89.5, Lon: 10}, Value: 1})
	s.Targets = append(s.Targets, Target{ID: 1, Pos: geo.LatLon{Lat: 89.5, Lon: -170}, Value: 1})
	ix := NewIndex(s, 2, 0)
	got := ix.Near(geo.LatLon{Lat: 89.9, Lon: 100}, 100e3, 0)
	if len(got) != 2 {
		t.Errorf("polar query found %d of 2", len(got))
	}
}

func TestTimedIndexMovingTargets(t *testing.T) {
	s := Airplanes(2)
	tx := NewTimedIndex(s, 2, 600)
	// A plane queried at a later time should still be found near its
	// propagated position.
	tgt := s.Targets[42]
	ts := 3000.0
	pos := tgt.PosAt(ts)
	got := tx.Near(pos, 100e3, ts)
	found := false
	for _, gi := range got {
		if int(gi) == 42 {
			found = true
			break
		}
	}
	if !found {
		t.Error("moving target not found at propagated position")
	}
	if tx.Set() != s {
		t.Error("Set accessor wrong")
	}
}

func TestTimedIndexStaticUsesOneBucket(t *testing.T) {
	s := Ships(9)
	tx := NewTimedIndex(s, 2, 600)
	_ = tx.Near(geo.LatLon{Lat: 0, Lon: 0}, 50e3, 0)
	_ = tx.Near(geo.LatLon{Lat: 0, Lon: 0}, 50e3, 80000)
	if len(tx.buckets) != 1 {
		t.Errorf("static set used %d buckets, want 1", len(tx.buckets))
	}
}

func TestValidateCatchesBadTargets(t *testing.T) {
	s := &Set{Name: "bad", Targets: []Target{{Pos: geo.LatLon{Lat: 95}, Value: 1}}}
	if err := s.Validate(); err == nil {
		t.Error("invalid position accepted")
	}
	s = &Set{Name: "bad", Targets: []Target{{Pos: geo.LatLon{}, Value: 0}}}
	if err := s.Validate(); err == nil {
		t.Error("zero value accepted")
	}
	s = &Set{Name: "bad", Targets: []Target{{Pos: geo.LatLon{}, Value: 1, SpeedMS: -1}}}
	if err := s.Validate(); err == nil {
		t.Error("negative speed accepted")
	}
}

func BenchmarkIndexQuery(b *testing.B) {
	s := Ships(1)
	ix := NewIndex(s, 2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Near(geo.LatLon{Lat: 35, Lon: 128}, 71e3, 0)
	}
}
