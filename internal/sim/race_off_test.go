//go:build !race

package sim

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation gates skip under -race.
const raceEnabled = false
