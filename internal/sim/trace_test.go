package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"eagleeye/internal/constellation"
	"eagleeye/internal/sched"
)

// abortScheduler schedules normally for failAfter solves, then errors --
// a stand-in for a run abandoned mid-way (crash, cancellation, solver
// blow-up). Single-goroutine: tests using it run Workers 1.
type abortScheduler struct {
	inner     sched.Scheduler
	calls     int
	failAfter int
}

func (a *abortScheduler) Name() string { return "abort-" + a.inner.Name() }

func (a *abortScheduler) Schedule(p *sched.Problem) (sched.Schedule, error) {
	if a.calls >= a.failAfter {
		return sched.Schedule{}, errors.New("abort: simulated mid-run failure")
	}
	a.calls++
	return a.inner.Schedule(p)
}

// TestTracePartialSurvivalOnAbort pins the durability fix: a run that
// dies mid-way must still deliver the trace records staged before the
// failure, not lose the whole trace because nothing was ever flushed.
func TestTracePartialSurvivalOnAbort(t *testing.T) {
	w := smallWorld(1500, 7)
	var buf bytes.Buffer
	_, err := Run(Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           w, DurationS: 3 * 3600, Seed: 1,
		Scheduler: &abortScheduler{inner: sched.Greedy{}, failAfter: 2},
		Trace:     &buf,
		Workers:   1,
	})
	if err == nil {
		t.Fatal("abortScheduler never fired; widen failAfter or the scenario")
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if buf.Len() == 0 || len(lines) == 0 || lines[0] == "" {
		t.Fatal("aborted run lost its entire trace")
	}
	for i, ln := range lines {
		var rec TraceRecord
		if uerr := json.Unmarshal([]byte(ln), &rec); uerr != nil {
			t.Fatalf("trace line %d is not a complete record: %v (%q)", i, uerr, ln)
		}
	}
	// The failing group's prefix must be present: the scheduler ran twice
	// before dying, so at least one scheduled frame was staged.
	if len(lines) < 1 {
		t.Errorf("survived trace has %d records, want the pre-abort prefix", len(lines))
	}
}

// slowSink counts Write calls and bytes without retaining data, so the
// test can observe when the tracer actually reaches the underlying
// writer (i.e. flushes) rather than parking records in its buffer.
type slowSink struct {
	writes int
	bytes  int
}

func (s *slowSink) Write(p []byte) (int, error) {
	s.writes++
	s.bytes += len(p)
	return len(p), nil
}

func TestTraceWriterPeriodicFlush(t *testing.T) {
	var sink slowSink
	tw := newTraceWriter(&sink)
	// One interval of records must reach the sink without Err being
	// called -- that is what bounds the loss window on abnormal exit.
	for i := 0; i < traceFlushEvery; i++ {
		tw.emit(TraceRecord{Group: 1, Frame: i})
	}
	if sink.bytes == 0 {
		t.Fatalf("no bytes reached the writer after %d records; periodic flush missing", traceFlushEvery)
	}
	// Batching preserved: far fewer syscalls than records.
	if sink.writes >= traceFlushEvery {
		t.Errorf("%d writes for %d records; large-write batching lost", sink.writes, traceFlushEvery)
	}
	before := sink.bytes
	tw.emit(TraceRecord{Group: 1, Frame: traceFlushEvery})
	tw.flush()
	if sink.bytes <= before {
		t.Error("explicit flush did not drain the buffer")
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
}
