package sim

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"eagleeye/internal/constellation"
)

func eventCfg(seed int64, events ...Event) Config {
	return Config{
		// One group of a leader plus three followers, so partial
		// follower loss and re-election chains are both expressible.
		Constellation: constellation.Config{
			Kind: constellation.LeaderFollower, Satellites: 4, FollowersPerGroup: 3,
		},
		App:       smallWorld(1500, 90),
		DurationS: 3 * 3600,
		Seed:      seed,
		Events:    events,
	}
}

func TestEventValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nan-time", eventCfg(1, Event{AtS: math.NaN(), Kind: EventFollowerFail})},
		{"negative-time", eventCfg(1, Event{AtS: -1, Kind: EventFollowerFail})},
		{"unknown-kind", eventCfg(1, Event{AtS: 10, Kind: EventKind(99)})},
		{"group-out-of-range", eventCfg(1, Event{AtS: 10, Kind: EventLeaderFail, Group: 5})},
		{"follower-out-of-range", eventCfg(1, Event{AtS: 10, Kind: EventFollowerFail, Follower: 7})},
		{"mix-follower-fail", Config{
			Constellation: constellation.Config{Kind: constellation.MixCamera, Satellites: 2},
			App:           smallWorld(100, 91),
			Events:        []Event{{AtS: 10, Kind: EventFollowerFail}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRunner(tc.cfg); err == nil {
				t.Error("invalid event accepted")
			}
		})
	}
}

// TestAllFollowersFailDegradesToSeenOnly: once every capture payload in a
// group is gone, the leader keeps imaging (seen statistics stay honest)
// but the detect/schedule pipeline stops -- no captures, no solves after
// the last failure.
func TestAllFollowersFailDegradesToSeenOnly(t *testing.T) {
	base := run(t, eventCfg(2))
	r := run(t, eventCfg(2,
		Event{AtS: 0, Kind: EventFollowerFail, Follower: 0},
		Event{AtS: 0, Kind: EventFollowerFail, Follower: 1},
		Event{AtS: 0, Kind: EventFollowerFail, Follower: 2},
	))
	if r.EventsApplied != 3 || r.SatsFailed != 3 {
		t.Errorf("applied %d failed %d, want 3/3", r.EventsApplied, r.SatsFailed)
	}
	if r.Captures != 0 || r.Detections != 0 || r.SchedSolves != 0 {
		t.Errorf("dead group still ran the pipeline: %+v", r)
	}
	if r.LowResSeen == 0 || r.FramesWithTargets == 0 {
		t.Error("leader stopped seeing after follower failures")
	}
	if r.Frames != base.Frames {
		t.Errorf("leader frames %d != baseline %d", r.Frames, base.Frames)
	}
	if base.Captures == 0 {
		t.Fatal("baseline captured nothing; scenario too small")
	}
}

// TestFollowerFailReducesCapacity: losing one of three followers mid-run
// can only shrink the capture count, never the seen count.
func TestFollowerFailReducesCapacity(t *testing.T) {
	base := run(t, eventCfg(3))
	r := run(t, eventCfg(3, Event{AtS: 30 * 60, Kind: EventFollowerFail, Follower: 1}))
	if r.SatsFailed != 1 || r.EventsApplied != 1 {
		t.Errorf("failed %d applied %d, want 1/1", r.SatsFailed, r.EventsApplied)
	}
	if r.Captures > base.Captures {
		t.Errorf("captures grew after a failure: %d > %d", r.Captures, base.Captures)
	}
	if r.LowResSeen != base.LowResSeen {
		t.Errorf("seen changed with a follower failure: %d vs %d", r.LowResSeen, base.LowResSeen)
	}
	// A duplicate failure of the same follower is idempotent.
	rr := run(t, eventCfg(3,
		Event{AtS: 30 * 60, Kind: EventFollowerFail, Follower: 1},
		Event{AtS: 40 * 60, Kind: EventFollowerFail, Follower: 1},
	))
	if rr.SatsFailed != 1 {
		t.Errorf("duplicate failure double-counted: SatsFailed=%d", rr.SatsFailed)
	}
	if rr.EventsApplied != 2 {
		t.Errorf("events applied %d, want 2", rr.EventsApplied)
	}
}

// TestLeaderFailReelects: the first surviving follower takes over the
// leader role at the boundary; the group keeps operating with one fewer
// payload and the re-election is counted once.
func TestLeaderFailReelects(t *testing.T) {
	r := run(t, eventCfg(4, Event{AtS: 45 * 60, Kind: EventLeaderFail}))
	if r.LeaderReelections != 1 || r.SatsFailed != 1 || r.EventsApplied != 1 {
		t.Errorf("reelections %d failed %d applied %d, want 1/1/1",
			r.LeaderReelections, r.SatsFailed, r.EventsApplied)
	}
	// The group must survive the handover: frames keep accumulating well
	// past the event, and the pipeline still schedules and captures.
	shortCfg := eventCfg(4)
	shortCfg.DurationS = 45 * 60
	short := run(t, shortCfg)
	if r.Frames <= short.Frames {
		t.Errorf("group went dark after re-election: %d frames vs %d at the event", r.Frames, short.Frames)
	}
	if r.Captures == 0 || r.SchedSolves == 0 {
		t.Errorf("re-elected group never scheduled: %+v", r)
	}
}

// TestLeaderFailCascadeGoesDark: enough leader failures exhaust the
// group (each re-election consumes a follower); the group then freezes at
// the boundary of the final failure.
func TestLeaderFailCascadeGoesDark(t *testing.T) {
	events := []Event{
		{AtS: 600, Kind: EventLeaderFail},
		{AtS: 601, Kind: EventLeaderFail},
		{AtS: 602, Kind: EventLeaderFail},
		{AtS: 603, Kind: EventLeaderFail},
	}
	r := run(t, eventCfg(5, events...))
	if r.SatsFailed != 4 || r.LeaderReelections != 3 {
		t.Errorf("failed %d reelections %d, want 4/3", r.SatsFailed, r.LeaderReelections)
	}
	full := run(t, eventCfg(5))
	if r.Frames >= full.Frames {
		t.Errorf("dark group kept producing frames: %d vs full %d", r.Frames, full.Frames)
	}
}

// TestMixLeaderFailGoesDark: a mix-camera satellite has no spare bus, so
// a leader failure retires it outright.
func TestMixLeaderFailGoesDark(t *testing.T) {
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.MixCamera, Satellites: 2},
		App:           smallWorld(1200, 92),
		DurationS:     2 * 3600,
		Seed:          6,
	}
	full := run(t, cfg)
	withEv := cfg
	withEv.Events = []Event{{AtS: 1800, Kind: EventLeaderFail, Group: 0}}
	r := run(t, withEv)
	if r.SatsFailed != 1 || r.LeaderReelections != 0 {
		t.Errorf("failed %d reelections %d, want 1/0", r.SatsFailed, r.LeaderReelections)
	}
	if r.Frames >= full.Frames {
		t.Errorf("dark mix satellite kept producing frames: %d vs %d", r.Frames, full.Frames)
	}
}

// TestStripFailRetires: the baselines have no group structure -- a fault
// of either kind retires the satellite and freezes its analytic energy
// accounting at the boundary.
func TestStripFailRetires(t *testing.T) {
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LowResOnly, Satellites: 2},
		App:           smallWorld(1200, 93),
		DurationS:     2 * 3600,
		Seed:          7,
	}
	full := run(t, cfg)
	withEv := cfg
	withEv.Events = []Event{{AtS: 1800, Kind: EventFollowerFail, Group: 1}}
	r := run(t, withEv)
	if r.SatsFailed != 1 || r.EventsApplied != 1 {
		t.Errorf("failed %d applied %d, want 1/1", r.SatsFailed, r.EventsApplied)
	}
	if r.Frames >= full.Frames {
		t.Errorf("retired strip satellite kept producing frames: %d vs %d", r.Frames, full.Frames)
	}
	if full.LeaderBudget != nil && r.LeaderBudget != nil &&
		r.LeaderBudget.CameraJ >= full.LeaderBudget.CameraJ {
		t.Errorf("retired satellite kept booking imaging energy: %.1fJ vs %.1fJ",
			r.LeaderBudget.CameraJ, full.LeaderBudget.CameraJ)
	}
}

// TestEventsDeterministicAcrossWorkers: the fault schedule is part of the
// scenario, so Workers=N stays byte-identical with events in play.
func TestEventsDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int, tr *bytes.Buffer) Config {
		cfg := Config{
			Constellation: constellation.Config{
				Kind: constellation.LeaderFollower, Satellites: 8, FollowersPerGroup: 3,
			},
			App:       smallWorld(1500, 94),
			DurationS: 2 * 3600,
			Seed:      8,
			Workers:   workers,
			Trace:     tr,
			Events: []Event{
				{AtS: 1200, Kind: EventFollowerFail, Group: 0, Follower: 2},
				{AtS: 2400, Kind: EventLeaderFail, Group: 1},
			},
		}
		return cfg
	}
	var tr1, trN bytes.Buffer
	a := run(t, mk(1, &tr1))
	b := run(t, mk(4, &trN))
	if na, nb := normalized(a), normalized(b); !reflect.DeepEqual(na, nb) {
		t.Errorf("events break worker determinism:\n%+v\nvs\n%+v", na, nb)
	}
	if ta, tb := decodeTrace(t, &tr1), decodeTrace(t, &trN); !reflect.DeepEqual(ta, tb) {
		t.Errorf("traces diverge with events: %d vs %d records", len(ta), len(tb))
	}
}

// TestSnapshotAcrossEventBoundary: checkpointing after an event fired
// must not re-count it on restore (structure replays, accounting does
// not), and checkpointing before it must still fire it exactly once.
func TestSnapshotAcrossEventBoundary(t *testing.T) {
	cfg := eventCfg(9,
		Event{AtS: 1200, Kind: EventFollowerFail, Follower: 0},
		Event{AtS: 7200, Kind: EventLeaderFail},
	)
	cfg.Workers = 4
	ref := run(t, cfg)

	for _, cutS := range []float64{600, 1800, 7300} { // before, between, after
		r := mustRunner(t, cfg)
		advance(t, r, cutS)
		var snap bytes.Buffer
		if err := r.Snapshot(&snap); err != nil {
			t.Fatalf("cut %v: %v", cutS, err)
		}
		r.Close()
		rr, err := RestoreRunner(cfg, bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatalf("cut %v: restore: %v", cutS, err)
		}
		advance(t, rr, cfg.DurationS)
		res := result(t, rr)
		rr.Close()
		if res.EventsApplied != ref.EventsApplied || res.SatsFailed != ref.SatsFailed ||
			res.LeaderReelections != ref.LeaderReelections {
			t.Errorf("cut %v: event accounting drifted: applied %d/%d failed %d/%d reelected %d/%d",
				cutS, res.EventsApplied, ref.EventsApplied, res.SatsFailed, ref.SatsFailed,
				res.LeaderReelections, ref.LeaderReelections)
		}
		if na, nb := normalized(ref), normalized(res); !reflect.DeepEqual(na, nb) {
			t.Errorf("cut %v: restored result diverges:\n%+v\nvs\n%+v", cutS, na, nb)
		}
	}
}
