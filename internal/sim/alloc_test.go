package sim

import (
	"testing"

	"eagleeye/internal/constellation"
)

// TestFrameLoopAllocs gates the frame loop's steady-state allocation count.
// The zero-allocation frame loop work (incremental ephemeris stepping,
// index query scratch, scheduler/cluster arenas, wire-encode scratch)
// brought a 2-hour 8-satellite run from ~4400 heap allocations to a few
// hundred, all of it per-run setup (constellation build, index build,
// run-state construction) rather than per-frame work. The limit asserts
// the >= 10x reduction with headroom for map-growth jitter; a regression
// back to per-frame allocation blows through it by an order of magnitude.
func TestFrameLoopAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full runs")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	w := smallWorld(2000, 60)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
		App:           w, DurationS: 2 * 3600, Seed: 1, Workers: 1,
	}
	// Warm the arenas and pools: first-run allocations (grow-only scratch,
	// sync.Pool fills) are excluded from the steady-state gate.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	const limit = 430 // baseline before the arena work: ~4400
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > limit {
		t.Fatalf("frame loop allocates %.0f times per run, want <= %d", allocs, limit)
	}
}
