package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"eagleeye/internal/adacs"
	"eagleeye/internal/cluster"
	"eagleeye/internal/comms"
	"eagleeye/internal/constellation"
	"eagleeye/internal/core"
	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
	"eagleeye/internal/obs"
	"eagleeye/internal/orbit"
	"eagleeye/internal/sched"
)

// groupJob runs one group of the EagleEye operating model (or the
// mix-camera variant, where the "follower" is the leader itself after its
// compute delay). Groups are independent by construction -- each leader
// has its own followers and ground track -- so a job only touches its
// private runState and the concurrency-safe shared index.
//
// The job is persistent: run(untilS) advances the frame loop to a window
// boundary and returns, keeping steppers, solver warm-start state and the
// event cursor live between windows. That is what makes the simulation
// checkpointable -- a snapshot stores the accumulators plus the frame
// count, and restore replays the already-processed frames (advancing
// steppers and re-applying fault events, skipping all accounting) to
// rebuild the exact floating-point phase without serializing it.
type groupJob struct {
	st  *runState
	gi  int
	grp constellation.Group
	mix bool

	cadence  float64
	computeS float64
	env      sched.Env
	pipe     *core.Pipeline
	// sharded, when non-nil (cfg.ShardTargets > 0), replaces pipe for
	// frame processing: the footprint is tiled spatially and the
	// detect/cluster/sched pipeline runs per shard with an ordered merge
	// (see core.ShardedPipeline).
	sharded  *core.ShardedPipeline
	w, h, qr float64
	swath    float64 // executing camera's high-res swath

	lead *orbit.Stepper
	// leadFresh marks a re-election frame: the replacement stepper is
	// anchored at the current boundary and must not be advanced into it.
	leadFresh     bool
	schedSteppers []*orbit.Stepper
	alive         []bool
	aliveCount    int
	leader        *constellation.Satellite
	activeSlots   []int // schedule slot -> follower index, rebuilt per frame

	ss *sched.SolverState
	cs *cluster.SolverState

	events     []Event
	evCursor   int
	evReplayTo int // events below this cursor were counted pre-snapshot

	dark     bool
	frameIdx int
	ts       float64
	skipTo   int // frames below this index replay without accounting
}

func newGroupJob(st *runState, gi int, grp constellation.Group, events []Event) *groupJob {
	cfg := st.cfg
	leader := grp.Leader
	cadence := leader.Prop.FrameCadenceS(leader.LowRes.FootprintAlongM())
	computeS := cfg.ComputeDelayS
	if computeS == 0 {
		computeS = cfg.Tiling.FrameTimeS(cfg.Detector)
	}

	followers := grp.Followers
	mix := len(followers) == 0 // mix-camera: self-follower
	env := sched.Env{
		AltitudeM:     leader.Prop.AltitudeM(),
		GroundSpeedMS: leader.Prop.GroundSpeedMS(),
		Slew:          st.slewModel(),
	}
	// The off-nadir limit belongs to whichever camera executes the
	// schedule: the leader's own high-res camera in the mix variant,
	// the followers' otherwise.
	if mix {
		env.MaxOffNadirDeg = leader.HighRes.MaxOffNadirDeg
		// The satellite must be back at nadir for the next frame.
		env.HorizonS = math.Max(0, cadence-computeS-1)
	} else {
		env.MaxOffNadirDeg = followers[0].HighRes.MaxOffNadirDeg
	}

	pipe := &core.Pipeline{
		Detector:      cfg.Detector,
		Tiling:        cfg.Tiling,
		UseClustering: !cfg.NoClustering,
		// Frame-rate clustering: bound the set-cover ILP per frame;
		// dense frames fall back to the greedy cover, as the energy
		// and deadline budgets require.
		ClusterOpts: cluster.Options{
			ForceGreedy:      cfg.ClusterGreedy,
			MaxILPCandidates: 400,
			MIP:              mip.Options{TimeLimit: 150 * time.Millisecond, MaxNodes: 40},
		},
		Scheduler:      cfg.Scheduler,
		HighResSwathM:  highResSwath(grp, leader),
		RecallOverride: cfg.RecallOverride,
	}
	j := &groupJob{
		st: st, gi: gi, grp: grp, mix: mix,
		cadence: cadence, computeS: computeS, env: env, pipe: pipe,
		leader: leader,
		swath:  highResSwath(grp, leader),
	}
	jm := st.met
	if jm != nil || st.fb != nil {
		// Both the metrics layer and the flight recorder consume the
		// per-stage wall measurements.
		pipe.Timed = true
	}
	if jm != nil {
		pipe.ClusterOpts.MIP.Metrics = jm.m.solverCluster
	}
	if cfg.ShardTargets > 0 {
		// Spatial sharding: pipe stays the unit template, frames run
		// through the sharded twin. Per-shard scheduler and cover state
		// come from the hooks inside newShardedPipeline, so j.ss/j.cs stay
		// nil and Close releases the per-unit states instead.
		j.sharded = newShardedPipeline(j, jm)
	} else {
		if pipe.Scheduler == nil {
			// Frame-rate solves: bound the MIP search tightly; the polish pass
			// and the greedy fallback keep truncated solves near-optimal. The
			// default scheduler is built here, per group, so each leader owns a
			// private temporal-coherence state (warm candidates, basis reuse,
			// incremental model construction -- see sched.SolverState). Group-
			// private state keeps the Result identical for any Workers value.
			opts := mip.Options{TimeLimit: 500 * time.Millisecond, MaxNodes: 200}
			if jm != nil {
				opts.Metrics = jm.m.solverSched
			}
			ilp := sched.ILP{MIP: opts}
			if !cfg.DisableWarmStart {
				// Pooled so per-run state construction stays out of the
				// steady-state allocation budget; Reset makes a recycled state
				// behave exactly like a fresh one. The state is returned to the
				// pool in close (Runner.Close), not per window.
				j.ss = sched.GetSolverState()
				ilp.State = j.ss
				ilp.AggressiveWarm = warmAggressive
			}
			pipe.Scheduler = ilp
		}
		if !cfg.DisableWarmStart {
			// Same temporal coherence for the per-frame set cover: the pinned
			// per-group arena carries the LP basis and the previous greedy
			// cover seeds the ILP.
			j.cs = cluster.GetSolverState()
			pipe.ClusterOpts.State = j.cs
			pipe.ClusterOpts.AggressiveWarm = warmAggressive
		}
	}

	j.w = leader.LowRes.SwathM
	j.h = leader.LowRes.FootprintAlongM()
	// Incremental propagation: one stepper tracks the leader at frame
	// cadence; schedule-time steppers track the leader (mix) or each
	// follower offset by the compute delay, advancing in lockstep.
	j.lead = leader.Prop.NewStepper(0, cadence)
	j.schedSteppers = make([]*orbit.Stepper, 0, len(followers)+1)
	if mix {
		j.schedSteppers = append(j.schedSteppers, leader.Prop.NewStepper(computeS, cadence))
	} else {
		for _, f := range followers {
			j.schedSteppers = append(j.schedSteppers, f.Prop.NewStepper(computeS, cadence))
		}
	}
	j.alive = make([]bool, len(j.schedSteppers))
	for i := range j.alive {
		j.alive[i] = true
	}
	j.aliveCount = len(j.alive)
	j.activeSlots = make([]int, 0, len(j.alive))
	// The candidate probe runs around the raw sub-point (before the h/2
	// frame-center offset), so its radius is inflated by that offset:
	// every target inside the frame disk is inside the probe disk, making
	// the empty-frame fast path a pure superset check.
	j.qr = frameRadius(j.w, j.h) + j.h/2
	j.events = events
	return j
}

// newShardedPipeline builds the sharded twin of the plain pipeline for
// groups running under cfg.ShardTargets > 0. Every shard unit owns a
// private scheduler and cover solver state (pooled, honoring
// DisableWarmStart), so the intra-frame parallel section shares no
// mutable solver state; the executor is the same bounded worker policy
// the group jobs use, so a run never exceeds Workers goroutines per
// sharded frame.
func newShardedPipeline(j *groupJob, jm *jobMetrics) *core.ShardedPipeline {
	cfg := &j.st.cfg
	sp := &core.ShardedPipeline{
		Template:        *j.pipe,
		PerShardTargets: cfg.ShardTargets,
	}
	// Dense shards must not enumerate cover candidates pairwise (the
	// candidate step is quadratic in points); the grid fast path keeps
	// per-shard clustering linear well before a shard fills its target
	// budget.
	if sp.Template.ClusterOpts.MaxCoverPoints == 0 {
		sp.Template.ClusterOpts.MaxCoverPoints = 256
	}
	if !cfg.DisableWarmStart {
		sp.Template.ClusterOpts.AggressiveWarm = warmAggressive
		sp.NewClusterState = cluster.GetSolverState
		sp.FreeClusterState = cluster.PutSolverState
	}
	if custom := j.pipe.Scheduler; custom != nil {
		// A custom scheduler is shared by every shard; Config.Workers'
		// contract already requires it to be safe for concurrent use.
		sp.NewScheduler = func() sched.Scheduler { return custom }
	} else {
		opts := mip.Options{TimeLimit: 500 * time.Millisecond, MaxNodes: 200}
		if jm != nil {
			opts.Metrics = jm.m.solverSched
		}
		sp.NewScheduler = func() sched.Scheduler {
			ilp := sched.ILP{MIP: opts}
			if !cfg.DisableWarmStart {
				ilp.State = sched.GetSolverState()
				ilp.AggressiveWarm = warmAggressive
			}
			return ilp
		}
		sp.FreeScheduler = func(s sched.Scheduler) {
			if ilp, ok := s.(sched.ILP); ok && ilp.State != nil {
				sched.PutSolverState(ilp.State)
			}
		}
	}
	if cfg.Workers != 1 {
		workers := cfg.Workers
		sp.Parallel = func(n int, fn func(int)) {
			runParallel(poolWorkers(workers, n), n, fn)
		}
	}
	return sp
}

func (j *groupJob) state() *runState { return j.st }

func (j *groupJob) close() {
	if j.sharded != nil {
		j.sharded.Close()
		j.sharded = nil
	}
	if j.ss != nil {
		sched.PutSolverState(j.ss)
		j.ss = nil
	}
	if j.cs != nil {
		cluster.PutSolverState(j.cs)
		j.cs = nil
	}
}

// finalize: group jobs book all energy and comms per frame; nothing is
// duration-derived.
func (j *groupJob) finalize(agg *runState, elapsedS float64) {}

// advanceSteppers moves every stepper to the current frame boundary. A
// freshly re-elected leader stepper is already anchored there and is
// skipped once.
func (j *groupJob) advanceSteppers() {
	if j.leadFresh {
		j.leadFresh = false
	} else {
		j.lead.Advance()
	}
	for _, s := range j.schedSteppers {
		s.Advance()
	}
}

// applyEvent performs one fault's structural changes. Counters (Result
// fields, metrics) are suppressed while the event cursor is below the
// snapshot's watermark: a restore replays structure, not accounting.
func (j *groupJob) applyEvent(ev Event) {
	if j.dark {
		// Several events can land on the same boundary; once the group is
		// dark there is nothing left to fail, so later ones are consumed
		// without inflating the failure counters.
		j.evCursor++
		return
	}
	st := j.st
	count := j.evCursor >= j.evReplayTo
	jm := st.met
	switch ev.Kind {
	case EventFollowerFail:
		if j.alive[ev.Follower] {
			j.alive[ev.Follower] = false
			j.aliveCount--
			if count {
				st.res.SatsFailed++
			}
		}
	case EventLeaderFail:
		if count {
			st.res.SatsFailed++
		}
		slot := -1
		if !j.mix {
			for si, a := range j.alive {
				if a {
					slot = si
					break
				}
			}
		}
		if slot < 0 {
			// Mix-camera bus, or no surviving follower: the group goes
			// dark at this boundary.
			j.dark = true
		} else {
			// Re-election: the survivor leaves the follower set and
			// restarts the leader ground track from its own ephemeris at
			// this boundary (the bus carries a spare low-res payload with
			// the group's standard camera parameters).
			nl := j.grp.Followers[slot]
			j.alive[slot] = false
			j.aliveCount--
			j.leader = nl
			j.lead = nl.Prop.NewStepper(j.ts, j.cadence)
			j.leadFresh = true
			j.env.AltitudeM = nl.Prop.AltitudeM()
			j.env.GroundSpeedMS = nl.Prop.GroundSpeedMS()
			if count {
				st.res.LeaderReelections++
				if jm != nil {
					jm.leaderReelections.Inc()
				}
			}
		}
	}
	if count {
		st.res.EventsApplied++
		if jm != nil {
			switch ev.Kind {
			case EventFollowerFail:
				jm.eventsFollowerFail.Inc()
			case EventLeaderFail:
				jm.eventsLeaderFail.Inc()
			}
		}
		if st.fb != nil {
			// Pin a synthetic record: fault events must be retrievable
			// from the flight dump long after the ring has churned, and
			// independently of whether a frame was in flight. Replayed
			// events (count == false) were pinned before the snapshot.
			st.fb.Event(j.gi, j.frameIdx, ev.AtS, obs.AnomFault, ev.Kind.String())
		}
	}
	j.evCursor++
}

// run advances the frame loop until the first frame boundary at or past
// untilS (frames strictly before untilS are produced). Frames below the
// restore watermark replay -- steppers advance and events apply, but no
// accounting, scheduling or RNG draws happen; the snapshot already holds
// their effects.
func (j *groupJob) run(untilS float64) error {
	st := j.st
	cfg := &st.cfg
	jm := st.met
	fb := st.fb
	for !j.dark && j.ts < untilS {
		ts := j.ts
		// Fault events fire at frame boundaries, before the frame exists.
		for j.evCursor < len(j.events) && j.events[j.evCursor].AtS <= ts {
			j.applyEvent(j.events[j.evCursor])
		}
		if j.dark {
			return nil
		}
		replay := j.frameIdx < j.skipTo
		if j.frameIdx > 0 {
			if jm != nil && !replay && j.frameIdx&ephSampleMask == 0 {
				// Sampled ephemeris span: the advance costs about as much
				// as the clock read, so 1-in-64 frames are timed and the
				// ns total is scaled back up (histogram gets raw samples).
				t0 := time.Now()
				j.advanceSteppers()
				d := int64(time.Since(t0))
				jm.stageNS[stageEphemeris].Add(d << ephSampleShift)
				jm.stageHist[stageEphemeris].Observe(float64(d) / 1e9)
			} else {
				j.advanceSteppers()
			}
		}
		j.frameIdx++
		frameIdx := j.frameIdx
		j.ts = ts + j.cadence
		if replay {
			continue
		}
		st.res.Frames++
		if jm != nil {
			jm.frames.Inc()
			if frameIdx&255 == 0 {
				jm.m.progress.SetMax(ts / cfg.DurationS)
			}
		}
		st.leaderB.Capture(1)
		st.leaderB.Compute(j.computeS)
		cands := st.candidatesNear(j.lead.SubPoint(), j.qr, ts)
		if len(cands) == 0 {
			continue
		}
		ls := j.lead.State()
		// A frame captured at ts covers the swath ahead of the
		// leader's nadir (Fig. 9): the leader overflies the imaged
		// area during the ~13.7 s it spends computing, which is why
		// the separation equals the swath width -- a follower 100 km
		// back is still behind the frame area when the schedule
		// arrives, whatever the compute latency, while a mix-camera
		// satellite has flown into its own frame and must look
		// backward at targets whose windows are closing.
		center := geo.Destination(ls.SubPoint, ls.HeadingDeg, j.h/2)
		frame := geo.TangentFrame{Origin: center, BearingDeg: ls.HeadingDeg}
		idx, pts := st.filterInFrame(cands, frame, j.w, j.h, ts)
		if len(idx) == 0 {
			continue
		}
		st.res.FramesWithTargets++
		if jm != nil {
			jm.framesWithTargets.Inc()
		}
		st.res.TargetsPerImage.Observe(len(idx))
		for _, ci := range idx {
			st.seen[ci] = true
		}
		if j.aliveCount == 0 {
			// Every capture payload has failed: the leader keeps imaging
			// (seen accounting above stays honest) but there is nothing to
			// task, so the detect/schedule pipeline is skipped.
			continue
		}

		// Schedule starts when the leader finishes computing.
		tSched := ts + j.computeS
		fols := st.scFols[:0]
		slots := j.activeSlots[:0]
		for si, s := range j.schedSteppers {
			if !j.alive[si] {
				continue
			}
			sub := frame.ToLocal(s.SubPoint())
			fols = append(fols, sched.Follower{SubPoint: sub, Boresight: sub})
			slots = append(slots, si)
		}
		st.scFols = fols
		j.activeSlots = slots

		recapBefore := st.res.RecaptureSuppressed
		var fstart time.Time
		if fb != nil {
			fstart = time.Now()
		}
		cframe := core.Frame{
			Truth:  pts,
			Bounds: geo.NewRectCentered(geo.Point2{}, j.w, j.h),
			GSDM:   j.leader.LowRes.GSDM,
		}
		var fres core.Result
		var sstats core.ShardFrameStats
		var err error
		if j.sharded != nil {
			var recap int64
			if cfg.RecaptureDedup {
				// Shards call the hook concurrently. capCells is read-only
				// until executeSchedule runs (after the frame solve), so
				// only the suppression counter needs an atomic; its total
				// is the same set of detections for any worker count.
				j.sharded.Template.PriorityScale = func(lp geo.Point2) float64 {
					if st.capCells[capCellKey(frame.ToGeodetic(lp))] {
						atomic.AddInt64(&recap, 1)
						return 0.1
					}
					return 1
				}
			}
			fres, sstats, err = j.sharded.ProcessFrame(cframe, fols, j.env,
				frameSeed(cfg.Seed, j.gi, frameIdx))
			st.res.RecaptureSuppressed += int(atomic.LoadInt64(&recap))
		} else {
			st.rngSrc.Seed(frameSeed(cfg.Seed, j.gi, frameIdx))
			j.pipe.Rng = st.rng
			if cfg.RecaptureDedup {
				// §4.7 recapture: detections at already-captured ground
				// cells are deprioritized to a tenth of their score.
				j.pipe.PriorityScale = func(lp geo.Point2) float64 {
					if st.capCells[capCellKey(frame.ToGeodetic(lp))] {
						st.res.RecaptureSuppressed++
						return 0.1
					}
					return 1
				}
			}
			fres, err = j.pipe.ProcessFrame(cframe, fols, j.env)
		}
		if err != nil {
			return fmt.Errorf("sim: group %d frame %d: %w", j.gi, frameIdx, err)
		}
		if jm != nil && j.sharded != nil {
			jm.shardSolves.Add(int64(sstats.Shards))
			if sstats.Shards > 1 {
				jm.shardFrames.Inc()
			}
			jm.shardFallbacks.Add(int64(sstats.ClusterFallbacks + sstats.SchedFallbacks))
			jm.shardDropped.Add(int64(sstats.DroppedCaptures))
			jm.m.shardImbalanceMax.SetMax(sstats.Imbalance())
		}
		if jm != nil {
			jm.detections.Add(int64(len(fres.Detections)))
			jm.clusters.Add(int64(len(fres.Clusters)))
			jm.schedSolves.Inc()
			jm.span(stageDetect, int64(fres.DetectWall))
			jm.span(stageCluster, int64(fres.ClusterWall))
			jm.span(stageSched, int64(fres.SchedWall))
			if fres.Schedule.SolveStats.Fallback {
				jm.schedFallbacks.Inc()
			}
			if d := st.res.RecaptureSuppressed - recapBefore; d > 0 {
				jm.recaptureSuppressed.Add(int64(d))
			}
		}
		st.res.Detections += len(fres.Detections)
		st.res.Clusters += len(fres.Clusters)
		st.res.SchedSolves++
		st.res.SchedWallTotal += fres.SchedWall
		if fres.SchedWall > st.res.SchedWallMax {
			st.res.SchedWallMax = fres.SchedWall
		}
		st.res.SchedNodes += fres.Schedule.SolveStats.Nodes
		st.res.SchedIters += fres.Schedule.SolveStats.Iters
		st.res.SchedPivotWall += fres.Schedule.SolveStats.PivotWall
		st.res.ClusterNodes += fres.ClusterStats.Nodes
		st.res.ClusterIters += fres.ClusterStats.Iters
		st.res.ClusterPivotWall += fres.ClusterStats.PivotWall
		if j.computeS+fres.SchedWall.Seconds() > j.cadence {
			st.res.MissedDeadline++
			if jm != nil {
				jm.missedDeadlines.Inc()
			}
		}
		if cfg.ValidateSchedules {
			if err := validateAgainstPipeline(&fres, fols, j.env); err != nil {
				return fmt.Errorf("sim: group %d frame %d: %w", j.gi, frameIdx, err)
			}
		}
		var spanStart time.Time
		capsBefore := st.res.Captures
		if jm != nil || fb != nil {
			spanStart = time.Now()
		}
		j.executeSchedule(frame, tSched, &fres)
		var execNS int64
		if jm != nil || fb != nil {
			execNS = int64(time.Since(spanStart))
			spanStart = time.Now()
		}
		if jm != nil {
			jm.span(stageExecute, execNS)
			jm.captures.Add(int64(st.res.Captures - capsBefore))
		}
		st.res.CrosslinkBytes += fres.CrosslinkBytes
		st.leaderB.Crosslink(fres.CrosslinkBytes / comms.PaperCrosslink().RateBps)
		if jm != nil {
			// Wire bytes are integral by construction; the int64 counter
			// keeps the total deterministic across worker counts.
			jm.crosslinkBytes.Add(int64(fres.CrosslinkBytes))
		}
		if st.traceOn {
			st.trace = append(st.trace, TraceRecord{
				Group:        j.gi,
				Frame:        frameIdx,
				TimeS:        ts,
				Lat:          frame.Origin.Lat,
				Lon:          frame.Origin.Lon,
				Targets:      len(idx),
				Detected:     len(fres.Detections),
				Clusters:     len(fres.Clusters),
				Captures:     fres.Schedule.NumCaptures(),
				Covered:      len(fres.Schedule.CoveredIDs()),
				SchedMS:      float64(fres.SchedWall.Microseconds()) / 1000,
				Deadline:     j.computeS+fres.SchedWall.Seconds() <= j.cadence,
				SchedNodes:   fres.Schedule.SolveStats.Nodes,
				SchedIters:   fres.Schedule.SolveStats.Iters,
				SchedGap:     fres.Schedule.SolveStats.Gap,
				ClusterNodes: fres.ClusterStats.Nodes,
				ClusterIters: fres.ClusterStats.Iters,
			})
		}
		if jm != nil {
			jm.span(stageAccount, int64(time.Since(spanStart)))
		}
		if fb != nil {
			j.recordFlight(fb, frameIdx, ts, &fres, len(idx), execNS,
				int64(time.Since(spanStart)), int64(time.Since(fstart)))
		}
	}
	return nil
}

// recordFlight assembles the frame's span tree from the stage durations
// the pipeline already measured (pipe.Timed is on whenever a recorder is
// attached) and offers it to the flight recorder. Stages are laid out at
// sequential offsets; each solver stage nests a solve span carrying the
// LP pivot wall and the B&B node / simplex iteration counts. Anomaly
// bits come from the per-solve stats deltas, so a slow or degraded frame
// is pinned with the evidence attached.
func (j *groupJob) recordFlight(fb *obs.FrameBuilder, frameIdx int, ts float64, fres *core.Result, targets int, execNS, acctNS, totalNS int64) {
	fb.Start(j.gi, frameIdx, ts)
	off := int64(0)
	d := int64(fres.DetectWall)
	fb.Add(0, obs.SpanStage, "detect", off, d, int64(targets), int64(len(fres.Detections)))
	off += d
	d = int64(fres.ClusterWall)
	cl := fb.Add(0, obs.SpanStage, "cluster", off, d, int64(len(fres.Detections)), int64(len(fres.Clusters)))
	cstats := &fres.ClusterStats
	if cstats.Nodes > 0 || cstats.Iters > 0 {
		fb.Add(cl, obs.SpanSolve, "cover-ilp", off, int64(cstats.PivotWall), int64(cstats.Nodes), int64(cstats.Iters))
	}
	off += d
	d = int64(fres.SchedWall)
	sstats := &fres.Schedule.SolveStats
	name := sstats.Algorithm
	if name == "" {
		name = "sched"
	}
	sc := fb.Add(0, obs.SpanStage, "sched", off, d, int64(len(fres.Clusters)), int64(fres.Schedule.NumCaptures()))
	fb.Add(sc, obs.SpanSolve, name, off, int64(sstats.PivotWall), int64(sstats.Nodes), int64(sstats.Iters))
	off += d
	fb.Add(0, obs.SpanStage, "execute", off, execNS, 0, 0)
	off += execNS
	fb.Add(0, obs.SpanStage, "account", off, acctNS, 0, 0)

	if sstats.Fallback {
		fb.Anomaly(obs.AnomFallback)
	}
	if (sstats.WarmAttempted && !sstats.Warm) || (cstats.WarmAttempted && !cstats.WarmAccepted) {
		fb.Anomaly(obs.AnomWarmReject)
	}
	if sstats.RepairFails+cstats.RepairFails > 0 {
		fb.Anomaly(obs.AnomDualRepair)
	}
	if sstats.Refactorizations+cstats.Refactorizations > 0 {
		fb.Anomaly(obs.AnomRefactor)
	}
	if j.computeS+fres.SchedWall.Seconds() > j.cadence {
		fb.Anomaly(obs.AnomDeadline)
	}
	fb.Finish(totalNS)
}

// executeSchedule scores captures: a truth target counts as captured when
// its true position at the capture time lies inside the captured
// footprint. Moving targets may drift out between detection and capture --
// exactly the §4.6 lookahead effect.
func (j *groupJob) executeSchedule(frame geo.TangentFrame, tSched float64, fres *core.Result) {
	st := j.st
	swath := j.swath
	for fi, seq := range fres.Schedule.Captures {
		// Slew energy depends on the executing satellite's own altitude:
		// the leader itself in the mix variant, the follower behind
		// schedule slot fi otherwise (groups may mix altitudes; failed
		// followers hold no slot).
		exec := j.leader
		if !j.mix && fi < len(j.activeSlots) {
			exec = j.grp.Followers[j.activeSlots[fi]]
		}
		altM := exec.Prop.AltitudeM()
		var prevAim geo.Point2
		prevT := 0.0
		first := true
		for _, c := range seq {
			absT := tSched + c.Time
			fp := geo.NewRectCentered(c.Aim, swath, swath)
			// Re-query around the aim point at capture time: targets may
			// have moved into or out of the footprint. The candidate
			// scratch is free here: the frame's filtered idx/pts live in
			// their own buffers.
			cands := st.candidatesNear(frame.ToGeodetic(c.Aim), frameRadius(swath, swath), absT)
			for _, ci := range cands {
				tgt := &st.index.Set().Targets[ci]
				if !tgt.ActiveAt(absT) {
					continue
				}
				if fp.Contains(frame.ToLocal(tgt.PosAt(absT))) {
					st.captured[ci] = true
					if st.cfg.RecaptureDedup {
						st.capCells[capCellKey(tgt.PosAt(absT))] = true
					}
				}
			}
			st.res.Captures++
			st.folB.Capture(1)
			if !first {
				// Approximate the commanded rotation by the aim-point
				// angular separation at capture times.
				ang := adacs.PointingAngleDeg(
					geo.Point2{X: prevAim.X, Y: prevAim.Y - 50e3}, prevAim,
					geo.Point2{X: c.Aim.X, Y: c.Aim.Y - 50e3}, c.Aim,
					altM)
				st.folB.Slew(ang, c.Time-prevT)
			}
			first = false
			prevAim, prevT = c.Aim, c.Time
		}
	}
}
