package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"time"

	"eagleeye/internal/constellation"
)

// Snapshot format (version 1). A snapshot is deliberately small: it
// stores only what replay cannot rebuild -- the per-job accumulators
// (counters, bitmaps, energy budgets, the recapture registry, the trace
// cursor) plus two cursors per job (frames processed, events applied).
// Everything with floating-point phase -- ephemeris steppers, solver
// warm-start state, the per-frame RNG -- is restored by replaying the
// already-processed frame boundaries with accounting suppressed:
//
//   - orbit.Stepper advances are pure float recurrences, so replaying
//     the same number of Advance calls reproduces the phase bit-exactly
//     (the 256-step resync makes the cost of drift moot as well);
//   - the warm-start solver state is a pure accelerator: PR 5 pins that
//     warm results are byte-identical to cold, so a restored runner may
//     legally resume cold and re-warm on the next frames;
//   - the RNG is reseeded per processed frame from frameSeed, so there
//     is no stream position beyond the frame index.
//
// The header carries a digest of the scenario (constellation, dataset
// content, detector, tiling, duration, seed, events -- everything that
// shapes the deterministic result, excluding execution knobs like
// Workers or DisableWarmStart); restoring against a different scenario
// is refused instead of silently diverging.
const (
	snapMagic   = "EESIMSNP"
	snapVersion = 1
)

// binWriter is a little sticky-error big-endian encoder.
type binWriter struct {
	w   io.Writer
	n   int64
	buf [8]byte
	err error
}

func (b *binWriter) raw(p []byte) {
	if b.err != nil {
		return
	}
	n, err := b.w.Write(p)
	b.n += int64(n)
	b.err = err
}

func (b *binWriter) u64(v uint64) {
	binary.BigEndian.PutUint64(b.buf[:], v)
	b.raw(b.buf[:8])
}

func (b *binWriter) u32(v uint32) {
	binary.BigEndian.PutUint32(b.buf[:4], v)
	b.raw(b.buf[:4])
}

func (b *binWriter) u16(v uint16) {
	binary.BigEndian.PutUint16(b.buf[:2], v)
	b.raw(b.buf[:2])
}

func (b *binWriter) u8(v uint8) {
	b.buf[0] = v
	b.raw(b.buf[:1])
}

func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	b.raw([]byte(s))
}

func (b *binWriter) bools(v []bool) {
	b.u32(uint32(len(v)))
	var acc uint8
	bit := 0
	for _, x := range v {
		if x {
			acc |= 1 << bit
		}
		bit++
		if bit == 8 {
			b.u8(acc)
			acc, bit = 0, 0
		}
	}
	if bit > 0 {
		b.u8(acc)
	}
}

// binReader mirrors binWriter.
type binReader struct {
	r   io.Reader
	buf [8]byte
	err error
}

func (b *binReader) raw(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = io.ReadFull(b.r, p)
}

func (b *binReader) u64() uint64 {
	b.raw(b.buf[:8])
	if b.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b.buf[:8])
}

func (b *binReader) u32() uint32 {
	b.raw(b.buf[:4])
	if b.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b.buf[:4])
}

func (b *binReader) u16() uint16 {
	b.raw(b.buf[:2])
	if b.err != nil {
		return 0
	}
	return binary.BigEndian.Uint16(b.buf[:2])
}

func (b *binReader) u8() uint8 {
	b.raw(b.buf[:1])
	if b.err != nil {
		return 0
	}
	return b.buf[0]
}

func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

// bools reads a packed bool slice into dst, requiring the stored length
// to match (the target count is part of the scenario digest, so a
// mismatch means corruption).
func (b *binReader) bools(dst []bool) {
	n := int(b.u32())
	if b.err != nil {
		return
	}
	if n != len(dst) {
		b.err = fmt.Errorf("sim: snapshot bitmap length %d, want %d", n, len(dst))
		return
	}
	nb := (n + 7) / 8
	for i := 0; i < nb; i++ {
		acc := b.u8()
		for bit := 0; bit < 8; bit++ {
			idx := i*8 + bit
			if idx >= n {
				break
			}
			dst[idx] = acc&(1<<bit) != 0
		}
	}
}

// configDigest hashes the scenario identity a snapshot must match:
// everything that shapes the deterministic result. Execution knobs that
// are pinned byte-identical (Workers, DisableWarmStart) and I/O wiring
// (Trace, Metrics) are excluded on purpose -- a snapshot taken on a
// 4-worker warm run restores into a sequential cold one.
func configDigest(cfg Config, cons *constellation.Constellation) uint64 {
	h := fnv.New64a()
	bw := &binWriter{w: h}
	cc := cons.Config
	bw.str("eagleeye-scenario-v1")
	bw.i64(int64(cc.Kind))
	bw.i64(int64(cc.Satellites))
	bw.i64(int64(cc.FollowersPerGroup))
	bw.f64(cc.SeparationM)
	bw.f64(cc.Orbit.AltitudeM)
	bw.f64(cc.Orbit.InclinationDeg)
	bw.f64(cc.Orbit.RAANDeg)
	bw.i64(cc.Orbit.Epoch.UnixNano())
	bw.i64(int64(cc.Planes))
	for _, cam := range []struct{ sw, al, gsd, off float64 }{
		{cc.LowRes.SwathM, cc.LowRes.AlongTrackM, cc.LowRes.GSDM, cc.LowRes.MaxOffNadirDeg},
		{cc.HighRes.SwathM, cc.HighRes.AlongTrackM, cc.HighRes.GSDM, cc.HighRes.MaxOffNadirDeg},
	} {
		bw.f64(cam.sw)
		bw.f64(cam.al)
		bw.f64(cam.gsd)
		bw.f64(cam.off)
	}
	bw.str(cfg.App.Name)
	if cfg.App.Moving {
		bw.u8(1)
	} else {
		bw.u8(0)
	}
	bw.u32(uint32(len(cfg.App.Targets)))
	for i := range cfg.App.Targets {
		t := &cfg.App.Targets[i]
		bw.i64(int64(t.ID))
		bw.f64(t.Pos.Lat)
		bw.f64(t.Pos.Lon)
		bw.f64(t.SpeedMS)
		bw.f64(t.HeadingDeg)
		bw.f64(t.Value)
		bw.f64(t.AreaKM2)
		bw.f64(t.AppearS)
		bw.f64(t.VanishS)
	}
	name := "default"
	if cfg.Scheduler != nil {
		name = cfg.Scheduler.Name()
	}
	bw.str(name)
	bw.str(cfg.Detector.Name)
	bw.f64(cfg.Detector.PerTileS)
	bw.f64(cfg.Detector.Recall)
	bw.f64(cfg.Detector.Precision)
	bw.i64(int64(cfg.Tiling.FramePx))
	bw.i64(int64(cfg.Tiling.TilePx))
	flags := uint8(0)
	if cfg.NoClustering {
		flags |= 1
	}
	if cfg.ClusterGreedy {
		flags |= 2
	}
	if cfg.RecaptureDedup {
		flags |= 4
	}
	bw.u8(flags)
	bw.f64(cfg.RecallOverride)
	bw.f64(cfg.DurationS)
	bw.i64(cfg.Seed)
	bw.f64(cfg.SlewRateDegS)
	bw.f64(cfg.ComputeDelayS)
	bw.u32(uint32(len(cfg.Events)))
	for _, ev := range cfg.Events {
		bw.f64(ev.AtS)
		bw.u8(uint8(ev.Kind))
		bw.i64(int64(ev.Group))
		bw.i64(int64(ev.Follower))
	}
	if cfg.ShardTargets != 0 {
		// Spatial sharding shapes results (per-shard RNG streams, stitched
		// schedules), so it is scenario identity -- but it is hashed only
		// when set, so digests of unsharded configs keep matching snapshots
		// taken before the knob existed.
		bw.str("shard-v1")
		bw.i64(int64(cfg.ShardTargets))
	}
	return h.Sum64()
}

// snapshot serializes the job's accumulators.
func (st *runState) snapshot(bw *binWriter) {
	r := st.res
	bw.i64(int64(r.Frames))
	bw.i64(int64(r.FramesWithTargets))
	bw.i64(int64(r.Detections))
	bw.i64(int64(r.Clusters))
	bw.i64(int64(r.Captures))
	for _, c := range r.TargetsPerImage.Buckets {
		bw.i64(c)
	}
	bw.i64(int64(r.TargetsPerImage.Max))
	bw.i64(int64(r.SchedSolves))
	bw.i64(int64(r.SchedWallTotal))
	bw.i64(int64(r.SchedWallMax))
	bw.i64(int64(r.MissedDeadline))
	bw.i64(int64(r.SchedNodes))
	bw.i64(int64(r.SchedIters))
	bw.i64(int64(r.SchedPivotWall))
	bw.i64(int64(r.ClusterNodes))
	bw.i64(int64(r.ClusterIters))
	bw.i64(int64(r.ClusterPivotWall))
	bw.i64(int64(r.RecaptureSuppressed))
	bw.i64(int64(r.EventsApplied))
	bw.i64(int64(r.SatsFailed))
	bw.i64(int64(r.LeaderReelections))
	bw.f64(r.CrosslinkBytes)
	for _, b := range []float64{
		st.leaderB.CameraJ, st.leaderB.ADACSJ, st.leaderB.ComputeJ, st.leaderB.TXJ, st.leaderB.CrosslinkJ,
		st.folB.CameraJ, st.folB.ADACSJ, st.folB.ComputeJ, st.folB.TXJ, st.folB.CrosslinkJ,
	} {
		bw.f64(b)
	}
	bw.bools(st.captured)
	bw.bools(st.seen)
	// The recapture registry is a set; keys are written sorted so the
	// snapshot bytes are deterministic.
	keys := make([]int64, 0, len(st.capCells))
	for k := range st.capCells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	bw.u32(uint32(len(keys)))
	for _, k := range keys {
		bw.i64(k)
	}
	bw.i64(st.traceEmitted)
}

// restore loads the accumulators written by snapshot.
func (st *runState) restore(br *binReader) {
	r := st.res
	r.Frames = int(br.i64())
	r.FramesWithTargets = int(br.i64())
	r.Detections = int(br.i64())
	r.Clusters = int(br.i64())
	r.Captures = int(br.i64())
	for i := range r.TargetsPerImage.Buckets {
		r.TargetsPerImage.Buckets[i] = br.i64()
	}
	r.TargetsPerImage.Max = int(br.i64())
	r.SchedSolves = int(br.i64())
	r.SchedWallTotal = time.Duration(br.i64())
	r.SchedWallMax = time.Duration(br.i64())
	r.MissedDeadline = int(br.i64())
	r.SchedNodes = int(br.i64())
	r.SchedIters = int(br.i64())
	r.SchedPivotWall = time.Duration(br.i64())
	r.ClusterNodes = int(br.i64())
	r.ClusterIters = int(br.i64())
	r.ClusterPivotWall = time.Duration(br.i64())
	r.RecaptureSuppressed = int(br.i64())
	r.EventsApplied = int(br.i64())
	r.SatsFailed = int(br.i64())
	r.LeaderReelections = int(br.i64())
	r.CrosslinkBytes = br.f64()
	st.leaderB.CameraJ = br.f64()
	st.leaderB.ADACSJ = br.f64()
	st.leaderB.ComputeJ = br.f64()
	st.leaderB.TXJ = br.f64()
	st.leaderB.CrosslinkJ = br.f64()
	st.folB.CameraJ = br.f64()
	st.folB.ADACSJ = br.f64()
	st.folB.ComputeJ = br.f64()
	st.folB.TXJ = br.f64()
	st.folB.CrosslinkJ = br.f64()
	br.bools(st.captured)
	br.bools(st.seen)
	n := int(br.u32())
	for i := 0; i < n && br.err == nil; i++ {
		st.capCells[br.i64()] = true
	}
	st.traceEmitted = br.i64()
}

const (
	jobTagGroup = 1
	jobTagStrip = 2
)

func (j *groupJob) snapExtra(bw *binWriter) {
	bw.u8(jobTagGroup)
	bw.u32(uint32(j.gi))
	bw.i64(int64(j.frameIdx))
	bw.u32(uint32(j.evCursor))
}

func (j *groupJob) restoreExtra(br *binReader) error {
	if tag := br.u8(); br.err == nil && tag != jobTagGroup {
		return fmt.Errorf("sim: snapshot job tag %d, want group", tag)
	}
	if gi := int(br.u32()); br.err == nil && gi != j.gi {
		return fmt.Errorf("sim: snapshot group %d out of order (want %d)", gi, j.gi)
	}
	j.skipTo = int(br.i64())
	j.evReplayTo = int(br.u32())
	return br.err
}

func (j *groupJob) verifyReplay() error {
	if j.frameIdx != j.skipTo {
		return fmt.Errorf("sim: group %d replay produced %d frames, snapshot had %d", j.gi, j.frameIdx, j.skipTo)
	}
	if j.evCursor < j.evReplayTo {
		return fmt.Errorf("sim: group %d replay applied %d events, snapshot had %d", j.gi, j.evCursor, j.evReplayTo)
	}
	return nil
}

func (j *stripJob) snapExtra(bw *binWriter) {
	bw.u8(jobTagStrip)
	bw.u32(uint32(j.si))
	bw.i64(int64(j.frameIdx))
	bw.u32(uint32(j.evCursor))
}

func (j *stripJob) restoreExtra(br *binReader) error {
	if tag := br.u8(); br.err == nil && tag != jobTagStrip {
		return fmt.Errorf("sim: snapshot job tag %d, want strip", tag)
	}
	if si := int(br.u32()); br.err == nil && si != j.si {
		return fmt.Errorf("sim: snapshot satellite %d out of order (want %d)", si, j.si)
	}
	j.skipTo = int(br.i64())
	j.evReplayTo = int(br.u32())
	return br.err
}

func (j *stripJob) verifyReplay() error {
	if j.frameIdx != j.skipTo {
		return fmt.Errorf("sim: satellite %d replay produced %d frames, snapshot had %d", j.si, j.frameIdx, j.skipTo)
	}
	if j.evCursor < j.evReplayTo {
		return fmt.Errorf("sim: satellite %d replay applied %d events, snapshot had %d", j.si, j.evCursor, j.evReplayTo)
	}
	return nil
}

// Snapshot writes a versioned binary snapshot of the full run state at
// the current window boundary. Restoring it (RestoreRunner) and
// continuing produces byte-identical Results and trace bytes to never
// having stopped.
func (r *Runner) Snapshot(w io.Writer) error {
	if r.failed != nil {
		return fmt.Errorf("sim: snapshot of failed runner: %w", r.failed)
	}
	if r.closed {
		return fmt.Errorf("sim: runner is closed")
	}
	bw := &binWriter{w: w}
	bw.raw([]byte(snapMagic))
	bw.u16(snapVersion)
	bw.u16(0) // flags, reserved
	bw.u64(r.digest)
	bw.f64(r.nowS)
	bw.u32(uint32(len(r.jobs)))
	for _, j := range r.jobs {
		j.snapExtra(bw)
		j.state().snapshot(bw)
	}
	if bw.err != nil {
		return fmt.Errorf("sim: snapshot: %w", bw.err)
	}
	if r.sm != nil {
		r.sm.checkpointWrites.Inc()
		r.sm.checkpointBytes.Add(bw.n)
	}
	return nil
}

// RestoreRunner rebuilds a Runner from cfg and a snapshot produced by
// Snapshot under the same scenario. The snapshot's accumulators are
// loaded, then the already-processed frame boundaries are replayed with
// accounting suppressed to rebuild ephemeris phase and event topology
// bit-exactly; the restored runner then continues as if it had never
// stopped. cfg may differ from the snapshotting run in execution knobs
// only (Workers, warm-start, Trace, Metrics); any scenario difference is
// refused via the header digest.
func RestoreRunner(cfg Config, src io.Reader) (*Runner, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			r.Close()
		}
	}()

	br := &binReader{r: src}
	var magic [8]byte
	br.raw(magic[:])
	if br.err == nil && string(magic[:]) != snapMagic {
		return nil, fmt.Errorf("sim: not a snapshot (bad magic)")
	}
	if v := br.u16(); br.err == nil && v != snapVersion {
		return nil, fmt.Errorf("sim: snapshot version %d, this build reads %d", v, snapVersion)
	}
	br.u16() // flags
	if d := br.u64(); br.err == nil && d != r.digest {
		return nil, fmt.Errorf("sim: snapshot was taken under a different scenario (digest %016x, want %016x)", d, r.digest)
	}
	nowS := br.f64()
	if br.err == nil && (math.IsNaN(nowS) || nowS < 0 || nowS > r.cfg.DurationS) {
		return nil, fmt.Errorf("sim: snapshot position %v outside [0,%v]", nowS, r.cfg.DurationS)
	}
	if n := int(br.u32()); br.err == nil && n != len(r.jobs) {
		return nil, fmt.Errorf("sim: snapshot has %d jobs, scenario builds %d", n, len(r.jobs))
	}
	for _, j := range r.jobs {
		if err := j.restoreExtra(br); err != nil {
			return nil, err
		}
		j.state().restore(br)
	}
	if br.err != nil {
		return nil, fmt.Errorf("sim: snapshot: %w", br.err)
	}

	// Replay: advance every job to the snapshot boundary. Frames below
	// the watermark move steppers and apply events but touch no
	// accumulators (the snapshot holds their effects).
	errs := make([]error, len(r.jobs))
	runParallel(r.workerCount(), len(r.jobs), func(i int) {
		errs[i] = r.jobs[i].run(nowS)
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: snapshot replay: %w", err)
		}
	}
	for _, j := range r.jobs {
		if err := j.verifyReplay(); err != nil {
			return nil, err
		}
	}
	r.nowS = nowS
	if r.sm != nil {
		r.sm.checkpointRestores.Inc()
	}
	ok = true
	return r, nil
}
