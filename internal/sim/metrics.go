package sim

import (
	"eagleeye/internal/obs"
)

// Observability wiring. When Config.Metrics is nil the simulator holds no
// handles and every instrumentation site reduces to one nil check -- the
// frame loop stays byte-identical to the uninstrumented one (the
// TestFrameLoopAllocs gate). When set, handles are resolved from the
// registry ONCE here, before any job starts; the hot path then performs
// only pre-resolved sharded atomic adds: no map lookups, no allocation,
// no locks.
//
// Determinism: integer event counters (frames, detections, captures, ...)
// are fed from the same per-job accumulators that make the simulation
// itself worker-count-independent, so their totals are identical for any
// Workers value. Timing series (stage seconds) and solver-limit series
// (missed deadlines, B&B nodes, truncations, fallbacks) depend on wall
// clock and machine load and are excluded from that guarantee.

// stageID indexes the frame-pipeline stages instrumented with spans.
type stageID int

const (
	stageEphemeris stageID = iota // orbit stepper advance (sampled)
	stageDetect                   // ML detection
	stageCluster                  // target clustering (set cover)
	stageSched                    // follower scheduling (flow ILP)
	stageExecute                  // schedule execution + capture scoring
	stageAccount                  // comms/energy accounting + trace staging
	numStages
)

var stageNames = [numStages]string{
	"ephemeris", "detect", "cluster", "sched", "execute", "account",
}

// The ephemeris advance costs about as much as reading the clock, so
// timing every frame would perturb the measurement and blow the <5%
// enabled-mode overhead budget on empty frames. Every 64th frame is
// timed instead, and the nanosecond total is scaled back up; the
// histogram receives the raw sampled durations.
const (
	ephSampleMask  = 63
	ephSampleShift = 6 // log2(ephSampleMask+1)
)

// simMetrics is the run-wide handle set, resolved once at Run start.
type simMetrics struct {
	reg *obs.Registry

	// Deterministic event counters (identical totals for any Workers).
	frames              *obs.Counter
	framesWithTargets   *obs.Counter
	detections          *obs.Counter
	clusters            *obs.Counter
	captures            *obs.Counter
	schedSolves         *obs.Counter
	recaptureSuppressed *obs.Counter
	crosslinkBytes      *obs.Counter

	// Fault-event counters (deterministic; Config.Events is part of the
	// scenario).
	eventsFollowerFail *obs.Counter
	eventsLeaderFail   *obs.Counter
	leaderReelections  *obs.Counter

	// Checkpoint lifecycle counters, bumped by Runner.Snapshot and
	// RestoreRunner (process-local: a restored process starts at zero).
	checkpointWrites   *obs.Counter
	checkpointRestores *obs.Counter
	checkpointBytes    *obs.Counter

	// Timing- and limit-dependent counters (machine-dependent).
	missedDeadlines *obs.Counter
	schedFallbacks  *obs.Counter

	// Spatial-sharding series (Config.ShardTargets > 0; deterministic --
	// the shard grid and per-shard loads are pure functions of the
	// scenario). shardImbalanceMax is the largest per-frame max/mean
	// shard target load seen so far.
	shardFrames       *obs.Counter
	shardSolves       *obs.Counter
	shardFallbacks    *obs.Counter
	shardDropped      *obs.Counter
	shardImbalanceMax *obs.Gauge

	// Per-stage wall time: a scaled nanosecond total for cheap rate
	// queries plus a histogram of span durations.
	stageNS   [numStages]*obs.Counter
	stageHist [numStages]*obs.Histogram

	// Run-level gauges.
	progress        *obs.Gauge
	targetsTotal    *obs.Gauge
	targetsSeen     *obs.Gauge
	targetsCaptured *obs.Gauge

	// Solver stacks, labelled by consumer.
	solverSched   *obs.SolverMetrics
	solverCluster *obs.SolverMetrics
}

func newSimMetrics(r *obs.Registry) *simMetrics {
	m := &simMetrics{
		reg:                 r,
		frames:              r.Counter("eagleeye_frames_total", "Low-resolution frames simulated (leader frames plus strip-baseline steps)."),
		framesWithTargets:   r.Counter("eagleeye_frames_with_targets_total", "Frames whose footprint contained at least one active target."),
		detections:          r.Counter("eagleeye_detections_total", "Detections produced by the onboard ML model."),
		clusters:            r.Counter("eagleeye_clusters_total", "Capture clusters produced by the set-cover step."),
		captures:            r.Counter("eagleeye_captures_total", "High-resolution captures executed by followers."),
		schedSolves:         r.Counter("eagleeye_sched_solves_total", "Scheduling problems solved (one per non-empty leader frame)."),
		recaptureSuppressed: r.Counter("eagleeye_recapture_suppressed_total", "Detections deprioritized by the recapture registry."),
		crosslinkBytes:      r.Counter("eagleeye_crosslink_bytes_total", "Schedule bytes sent leader-to-follower (wire encoding)."),
		eventsFollowerFail:  r.Counter("eagleeye_fault_events_total", "Mid-run fault events applied, by kind.", obs.Label{Key: "kind", Value: "follower-fail"}),
		eventsLeaderFail:    r.Counter("eagleeye_fault_events_total", "Mid-run fault events applied, by kind.", obs.Label{Key: "kind", Value: "leader-fail"}),
		leaderReelections:   r.Counter("eagleeye_leader_reelections_total", "Leader failures absorbed by re-electing a surviving follower."),
		checkpointWrites:    r.Counter("eagleeye_checkpoint_writes_total", "Simulation snapshots written."),
		checkpointRestores:  r.Counter("eagleeye_checkpoint_restores_total", "Simulation snapshots restored."),
		checkpointBytes:     r.Counter("eagleeye_checkpoint_bytes_total", "Bytes of simulation snapshots written."),
		missedDeadlines:     r.Counter("eagleeye_missed_deadlines_total", "Frames whose compute plus scheduling exceeded the frame cadence (wall-clock dependent)."),
		schedFallbacks:      r.Counter("eagleeye_sched_fallbacks_total", "Schedules produced by the greedy fallback after the ILP stopped without an incumbent."),
		shardFrames:         r.Counter("eagleeye_shard_frames_total", "Frames processed by the sharded pipeline with at least two spatial shards."),
		shardSolves:         r.Counter("eagleeye_shard_solves_total", "Per-shard pipeline solves executed by frames on the sharded path."),
		shardFallbacks:      r.Counter("eagleeye_shard_fallbacks_total", "Shards whose cover or schedule came from a fallback path inside a sharded frame."),
		shardDropped:        r.Counter("eagleeye_shard_dropped_captures_total", "Per-shard captures rejected by the cross-shard slew-feasibility re-check at stitch time."),
		shardImbalanceMax:   r.Gauge("eagleeye_shard_imbalance_max", "Largest per-frame shard target imbalance (max/mean per-shard load) observed so far."),
		progress:            r.Gauge("eagleeye_sim_progress", "Simulated-time fraction completed by the furthest-ahead job, 0 to 1."),
		targetsTotal:        r.Gauge("eagleeye_targets_total", "Targets in the workload."),
		targetsSeen:         r.Gauge("eagleeye_targets_seen", "Distinct targets seen in low-resolution frames (set at end of run)."),
		targetsCaptured:     r.Gauge("eagleeye_targets_captured", "Distinct targets captured at high resolution (set at end of run)."),
		solverSched:         obs.NewSolverMetrics(r, "sched"),
		solverCluster:       obs.NewSolverMetrics(r, "cluster"),
	}
	for s := stageID(0); s < numStages; s++ {
		lbl := obs.Label{Key: "stage", Value: stageNames[s]}
		m.stageNS[s] = r.Counter("eagleeye_stage_nanoseconds_total",
			"Wall time inside one pipeline stage, in nanoseconds (ephemeris is sampled 1-in-64 and scaled).", lbl)
		m.stageHist[s] = r.Histogram("eagleeye_stage_seconds",
			"Distribution of per-frame stage wall times, in seconds.", obs.DefTimeBuckets, lbl)
	}
	return m
}

// jobMetrics is one job's pre-resolved shard view: every field is a
// direct pointer into a cache-line-private slot, so a frame-loop update
// is a single uncontended atomic add.
type jobMetrics struct {
	m *simMetrics

	frames              obs.CounterShard
	framesWithTargets   obs.CounterShard
	detections          obs.CounterShard
	clusters            obs.CounterShard
	captures            obs.CounterShard
	schedSolves         obs.CounterShard
	recaptureSuppressed obs.CounterShard
	crosslinkBytes      obs.CounterShard
	eventsFollowerFail  obs.CounterShard
	eventsLeaderFail    obs.CounterShard
	leaderReelections   obs.CounterShard
	missedDeadlines     obs.CounterShard
	schedFallbacks      obs.CounterShard
	shardFrames         obs.CounterShard
	shardSolves         obs.CounterShard
	shardFallbacks      obs.CounterShard
	shardDropped        obs.CounterShard

	stageNS   [numStages]obs.CounterShard
	stageHist [numStages]obs.HistogramShard
}

// job builds the shard view for job index i. Shard indices wrap inside
// obs, so any job count works against the fixed shard pool.
func (m *simMetrics) job(i int) *jobMetrics {
	jm := &jobMetrics{
		m:                   m,
		frames:              m.frames.Shard(i),
		framesWithTargets:   m.framesWithTargets.Shard(i),
		detections:          m.detections.Shard(i),
		clusters:            m.clusters.Shard(i),
		captures:            m.captures.Shard(i),
		schedSolves:         m.schedSolves.Shard(i),
		recaptureSuppressed: m.recaptureSuppressed.Shard(i),
		crosslinkBytes:      m.crosslinkBytes.Shard(i),
		eventsFollowerFail:  m.eventsFollowerFail.Shard(i),
		eventsLeaderFail:    m.eventsLeaderFail.Shard(i),
		leaderReelections:   m.leaderReelections.Shard(i),
		missedDeadlines:     m.missedDeadlines.Shard(i),
		schedFallbacks:      m.schedFallbacks.Shard(i),
		shardFrames:         m.shardFrames.Shard(i),
		shardSolves:         m.shardSolves.Shard(i),
		shardFallbacks:      m.shardFallbacks.Shard(i),
		shardDropped:        m.shardDropped.Shard(i),
	}
	for s := stageID(0); s < numStages; s++ {
		jm.stageNS[s] = m.stageNS[s].Shard(i)
		jm.stageHist[s] = m.stageHist[s].Shard(i)
	}
	return jm
}

// span records one measured stage duration: scaled ns total plus the
// raw histogram sample. d is in nanoseconds (time.Duration's unit).
func (jm *jobMetrics) span(s stageID, ns int64) {
	jm.stageNS[s].Add(ns)
	jm.stageHist[s].Observe(float64(ns) / 1e9)
}
