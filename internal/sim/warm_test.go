package sim

import (
	"bytes"
	"reflect"
	"testing"

	"eagleeye/internal/constellation"
)

// TestWarmStartResultIdentity is the simulator half of the warm-start
// contract: for the same configuration, a warm run (cross-frame solver
// state, projection, crash-basis seeding, LP basis reuse) must produce a
// byte-identical Result and trace stream to a cold run -- only the
// solver-load and timing fields may differ -- while doing measurably less
// solver work. The scheduler objective's slot-time tie-break (see
// sched.edgeCost) is what makes this hold: each frame's optimum is unique,
// so the warm pivot path cannot land on a different tie-optimal schedule.
func TestWarmStartResultIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation in -short mode")
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"benchmark-shape", Config{
			Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
			App:           smallWorld(2000, 60), DurationS: 2 * 3600, Seed: 1,
		}},
		{"mix-camera", Config{
			Constellation: constellation.Config{Kind: constellation.MixCamera, Satellites: 4},
			App:           smallWorld(1200, 61), DurationS: 2 * 3600, Seed: 9,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var coldTr, warmTr bytes.Buffer
			cold := tc.cfg
			cold.Workers = 1
			cold.DisableWarmStart = true
			cold.Trace = &coldTr
			warm := tc.cfg
			warm.Workers = 1
			warm.Trace = &warmTr
			cr := run(t, cold)
			wr := run(t, warm)
			if nc, nw := normalized(cr), normalized(wr); !reflect.DeepEqual(nc, nw) {
				t.Errorf("warm result diverges from cold:\n%+v\nvs\n%+v", nc, nw)
			}
			ct := decodeTrace(t, &coldTr)
			wt := decodeTrace(t, &warmTr)
			if !reflect.DeepEqual(ct, wt) {
				t.Errorf("warm trace diverges from cold: %d vs %d records", len(ct), len(wt))
			}
			// The warm run must also do less scheduling work. Node and
			// iteration counts are deterministic for a fixed seed at
			// Workers=1 (no wall-clock truncation on these small solves),
			// so a modest floor makes regressions visible without riding
			// the exact measured margin.
			coldWork := cr.SchedNodes + cr.SchedIters
			warmWork := wr.SchedNodes + wr.SchedIters
			if warmWork >= coldWork {
				t.Errorf("warm did no less sched work: %d vs cold %d", warmWork, coldWork)
			}
		})
	}
}

// TestWarmStartSolverSavings pins the acceptance-level savings on the
// benchmark workload shape: total sched B&B nodes + LP iterations must
// drop by at least 30%% warm versus cold. The counts are exact integers
// from deterministic solves, so this is stable across machines.
func TestWarmStartSolverSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation in -short mode")
	}
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
		App:           smallWorld(2000, 60), DurationS: 2 * 3600, Seed: 1,
		Workers: 1,
	}
	cold := cfg
	cold.DisableWarmStart = true
	cr := run(t, cold)
	wr := run(t, cfg)
	coldWork := cr.SchedNodes + cr.SchedIters
	warmWork := wr.SchedNodes + wr.SchedIters
	if coldWork == 0 {
		t.Fatal("benchmark workload scheduled nothing")
	}
	saved := 1 - float64(warmWork)/float64(coldWork)
	t.Logf("sched nodes+iters: cold %d warm %d (%.1f%% saved)", coldWork, warmWork, 100*saved)
	if saved < 0.30 {
		t.Errorf("warm start saved %.1f%% of sched nodes+iters, want >= 30%%", 100*saved)
	}
}
