package sim

import (
	"testing"

	"eagleeye/internal/constellation"
)

// benchmarkRun measures a full multi-group leader-follower run at the
// given worker count; compare BenchmarkRunWorkers1 against
// BenchmarkRunWorkers4 for the parallel-runner speedup (the groups are
// independent, so scaling should be near-linear until the pool runs out
// of groups or cores).
func benchmarkRun(b *testing.B, workers int) {
	w := smallWorld(2000, 60)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
		App:           w, DurationS: 2 * 3600, Seed: 1, Workers: workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunWorkers1(b *testing.B) { benchmarkRun(b, 1) }
func BenchmarkRunWorkers2(b *testing.B) { benchmarkRun(b, 2) }
func BenchmarkRunWorkers4(b *testing.B) { benchmarkRun(b, 4) }
