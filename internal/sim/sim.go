// Package sim is the orbital-edge-computing simulator that drives the
// evaluation: the equivalent of the cote simulator the paper's prototype
// uses (§5.1). It propagates a constellation over a target world for a
// configurable duration, runs the EagleEye leader pipeline on every
// low-resolution frame (detection, clustering, actuation-aware
// scheduling), executes follower schedules with full actuation and
// off-nadir constraints, and accounts coverage, runtime, communication and
// energy -- everything the paper's figures report.
//
// Baselines share the same machinery: Low-Res-Only and High-Res-Only
// constellations reduce to nadir strip coverage; the mix-camera variant
// reuses the leader pipeline with the satellite scheduling itself after
// its own compute delay (Fig. 9/13).
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"eagleeye/internal/adacs"
	"eagleeye/internal/camera"
	"eagleeye/internal/cluster"
	"eagleeye/internal/comms"
	"eagleeye/internal/constellation"
	"eagleeye/internal/core"
	"eagleeye/internal/dataset"
	"eagleeye/internal/detect"
	"eagleeye/internal/energy"
	"eagleeye/internal/geo"
	"eagleeye/internal/mip"
	"eagleeye/internal/obs"
	"eagleeye/internal/orbit"
	"eagleeye/internal/sched"
)

// DefaultEpoch anchors all simulations; fixing it keeps every experiment
// reproducible.
var DefaultEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// warmAggressive selects the aggressive warm-start mode (install the warm
// candidate as the root incumbent and stop as soon as a bound proves it
// optimal) for the default schedulers. It is off: the early exit accepts
// the candidate within the solver's feasibility tolerance, which is wider
// than the scheduler objective's slot-time tie-break (see sched.edgeCost),
// so an aggressive run can return a candidate that an exhaustive search
// would re-time -- breaking the warm == cold result identity that
// TestWarmStartResultIdentity pins. The conservative mode (pruning floor,
// crash-basis seeding, cross-frame basis reuse) gets the measured solver
// savings without that risk, because every mechanism it uses still runs
// phase-2 simplex to the unique optimum.
const warmAggressive = false

// Config describes one simulation run.
type Config struct {
	// Constellation is the organization under test.
	Constellation constellation.Config
	// App is the target workload.
	App *dataset.Set
	// Scheduler schedules followers; nil means the ILP scheduler with
	// per-group temporal-coherence state (see DisableWarmStart).
	Scheduler sched.Scheduler
	// DisableWarmStart turns off the cross-frame warm-start pipeline of
	// the default schedulers: per-leader solver state, previous-schedule
	// projection, LP basis reuse, and incremental model construction. The
	// escape hatch exists for A/B measurement and as a safety valve; it
	// only applies when Scheduler is nil.
	DisableWarmStart bool
	// Detector is the leader's ML model; zero means YoloN.
	Detector detect.Model
	// Tiling is the frame decomposition; zero means PaperTiling.
	Tiling detect.Tiling
	// NoClustering disables target clustering (Fig. 14c ablation).
	NoClustering bool
	// ClusterGreedy forces the greedy cover (clustering ablation).
	ClusterGreedy bool
	// RecallOverride in (0,1] overrides detector recall (Fig. 15).
	RecallOverride float64
	// DurationS is the simulated span; 0 means 24 h.
	DurationS float64
	// Seed drives all stochastic components.
	Seed int64
	// SlewRateDegS overrides the ADACS rate; 0 means the paper's 3 deg/s.
	SlewRateDegS float64
	// ComputeDelayS overrides the modeled leader compute latency
	// (mix-camera sensitivity, Fig. 13); 0 means model the tiling latency.
	ComputeDelayS float64
	// ValidateSchedules re-checks every schedule against C1-C3 (slower;
	// used by tests).
	ValidateSchedules bool
	// RecaptureDedup enables the §4.7 recapture extension: each leader
	// deprioritizes detections at ground positions its own group has
	// already captured at high resolution, freeing follower time for new
	// targets. The registry is per group -- sharing it across groups would
	// require inter-group communication the constellation does not have.
	RecaptureDedup bool
	// Trace, when non-nil, receives one JSON line per processed leader
	// frame (see TraceRecord). Records are emitted in group order, frames
	// in time order within each group, regardless of Workers.
	Trace io.Writer
	// Metrics, when non-nil, receives run metrics: event counters,
	// per-stage wall-time breakdowns, solver activity, and progress
	// gauges (see internal/obs and the README metrics table). Handles
	// are resolved once before the first frame; a nil registry leaves
	// the frame loop byte-identical to the uninstrumented simulator.
	// Integer event counters are deterministic across Workers; timing
	// and solver-limit series are machine-dependent. The registry feeds
	// the default ILP scheduler's solver counters; a custom Scheduler
	// must accept its own mip.Options.Metrics to be counted.
	Metrics *obs.Registry
	// Workers bounds the concurrent goroutines executing per-group
	// (leader-follower, mix-camera) or per-satellite (strip-coverage)
	// jobs. 0 means runtime.GOMAXPROCS(0); 1 runs sequentially. Every
	// job works against private accumulators and a deterministic merge
	// folds them in group order, so the Result and trace are identical
	// for any worker count at a fixed seed (timing-derived fields --
	// scheduler wall clock and deadline misses -- excepted). A custom
	// Scheduler must be safe for concurrent use when Workers != 1.
	Workers int
}

// Result aggregates one run.
type Result struct {
	Kind string // constellation organization
	App  string

	TotalTargets    int
	HighResCaptured int // distinct targets inside captured high-res images
	LowResSeen      int // distinct targets inside leader low-res frames

	Frames            int
	FramesWithTargets int
	Detections        int
	Clusters          int
	Captures          int

	// TargetsPerImage holds the per-nonempty-frame truth target count
	// (Fig. 12b's CDF).
	TargetsPerImage []int

	SchedSolves    int
	SchedWallTotal time.Duration
	SchedWallMax   time.Duration
	MissedDeadline int // frames whose compute+scheduling exceeded the cadence

	// Solver cost aggregates: branch-and-bound nodes and simplex
	// iterations summed over all scheduling and clustering ILP solves,
	// and the wall time spent inside the LP pivot loop. They make solver
	// load visible without a profiler; per-frame values are in the trace.
	SchedNodes       int
	SchedIters       int
	SchedPivotWall   time.Duration
	ClusterNodes     int
	ClusterIters     int
	ClusterPivotWall time.Duration

	// RecaptureSuppressed counts detections deprioritized by the §4.7
	// recapture extension.
	RecaptureSuppressed int

	// CrosslinkBytes is the total schedule traffic leaders sent (wire
	// encoding, §5.3 bound enforced per message).
	CrosslinkBytes float64
	// DownlinkableFraction is the share of captured images the followers'
	// per-orbit ground contact can actually return to Earth.
	DownlinkableFraction float64

	LeaderBudget   *energy.Budget // per-orbit average, leader/mono role
	FollowerBudget *energy.Budget // per-orbit average across followers
}

// CoveragePct returns the headline metric: the percentage of targets
// captured at high resolution (for Low-Res-Only, the percentage seen at
// low resolution -- the paper plots it as the physical upper bound, noting
// it does not deliver high-resolution data).
func (r *Result) CoveragePct() float64 {
	if r.TotalTargets == 0 {
		return 0
	}
	n := r.HighResCaptured
	if r.Kind == constellation.LowResOnly.String() {
		n = r.LowResSeen
	}
	return 100 * float64(n) / float64(r.TotalTargets)
}

// LowResSeenPct returns the fraction of targets seen in low-resolution.
func (r *Result) LowResSeenPct() float64 {
	if r.TotalTargets == 0 {
		return 0
	}
	return 100 * float64(r.LowResSeen) / float64(r.TotalTargets)
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("sim: no app workload")
	}
	if cfg.DurationS == 0 {
		cfg.DurationS = 86400
	}
	var sm *simMetrics
	if cfg.Metrics != nil {
		sm = newSimMetrics(cfg.Metrics)
	}
	// A nil Scheduler is materialized per group inside runGroup, so each
	// leader gets its own cross-frame warm-start state.
	if cfg.Detector.PerTileS == 0 {
		cfg.Detector = detect.YoloN()
	}
	if cfg.Tiling.FramePx == 0 {
		cfg.Tiling = detect.PaperTiling()
	}
	cons, err := constellation.Build(cfg.Constellation, DefaultEpoch)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Kind:         cons.Config.Kind.String(),
		App:          cfg.App.Name,
		TotalTargets: len(cfg.App.Targets),
	}
	// The timed index is the only state shared between jobs; it is safe
	// for concurrent readers.
	index := dataset.NewTimedIndex(cfg.App, 2, 600)

	// Independent jobs: one per satellite for the strip baselines, one
	// per leader group otherwise (groups share no state by construction).
	var jobs []func(*runState) error
	switch cons.Config.Kind {
	case constellation.LowResOnly, constellation.HighResOnly:
		for _, sat := range cons.Sats {
			sat := sat
			jobs = append(jobs, func(st *runState) error {
				st.runStripSat(sat)
				return nil
			})
		}
	case constellation.LeaderFollower, constellation.MixCamera:
		for gi := range cons.Groups {
			gi := gi
			jobs = append(jobs, func(st *runState) error {
				return st.runGroup(gi, cons.Groups[gi])
			})
		}
	default:
		return nil, fmt.Errorf("sim: unsupported kind %v", cons.Config.Kind)
	}

	if sm != nil {
		sm.targetsTotal.Set(float64(res.TotalTargets))
	}
	states, err := runJobs(cfg, cons, index, sm, jobs)
	if err != nil {
		// Trace durability on the error path: jobs that completed (and the
		// failing job's prefix) already staged their records; write them
		// out before surfacing the error so an aborted long run keeps its
		// trace instead of losing everything after the last full run.
		emitTraces(cfg.Trace, states)
		return nil, err
	}

	// Deterministic merge: fold private accumulators in job order, so a
	// parallel run reduces exactly like the sequential one.
	agg := newRunState(cfg, cons, index)
	agg.res = res
	for _, s := range states {
		s.mergeInto(agg)
	}

	for _, c := range agg.captured {
		if c {
			res.HighResCaptured++
		}
	}
	for _, s := range agg.seen {
		if s {
			res.LowResSeen++
		}
	}
	agg.finalizeEnergy()
	agg.finalizeComms()
	if sm != nil {
		sm.progress.Set(1)
		sm.targetsSeen.Set(float64(res.LowResSeen))
		sm.targetsCaptured.Set(float64(res.HighResCaptured))
	}

	if err := emitTraces(cfg.Trace, states); err != nil {
		return nil, fmt.Errorf("sim: trace: %w", err)
	}
	return res, nil
}

// emitTraces writes the jobs' staged trace records in job order, flushing
// at every frame-group boundary so a consumer (or a crash) mid-emission
// observes whole groups rather than a truncated 64 KiB tail.
func emitTraces(w io.Writer, states []*runState) error {
	tw := newTraceWriter(w)
	for _, s := range states {
		if s == nil {
			continue
		}
		for _, rec := range s.trace {
			tw.emit(rec)
		}
		tw.flush()
	}
	return tw.Err()
}

// finalizeComms computes how much of the captured imagery the downlink can
// return: followers see a ground station ~6 min/orbit (§5.3), and each
// high-resolution image is ~33 MB.
func (st *runState) finalizeComms() {
	if st.res.Captures == 0 {
		st.res.DownlinkableFraction = 1
		return
	}
	nFollowers := 0
	for _, g := range st.cons.Groups {
		nFollowers += len(g.Followers)
		if len(g.Followers) == 0 {
			nFollowers++ // mix-camera: the satellite downlinks its own captures
		}
	}
	link := comms.PaperDownlink()
	orbits := st.cfg.DurationS / (94 * 60)
	if orbits < 1 {
		orbits = 1
	}
	hr := camera.PaperHighRes()
	imgBytes := comms.ImageBytes(hr.FramePixels(), 3)
	capacityImages := link.CapacityPerOrbitBytes() / imgBytes * orbits * float64(nFollowers)
	frac := capacityImages / float64(st.res.Captures)
	if frac > 1 {
		frac = 1
	}
	st.res.DownlinkableFraction = frac
}

// runState carries one job's private simulation state. Every group (or
// strip satellite) gets its own instance, so jobs run concurrently
// without synchronization; mergeInto folds them back deterministically.
type runState struct {
	cfg      Config
	cons     *constellation.Constellation
	res      *Result
	index    *dataset.TimedIndex // shared; safe for concurrent readers
	captured []bool
	seen     []bool
	leaderB  *energy.Budget
	folB     *energy.Budget
	// capCells is the recapture registry: ~2 km ground cells this group
	// already captured at high resolution (used when cfg.RecaptureDedup
	// is set).
	capCells map[int64]bool
	// trace buffers this job's frame records; they are emitted in group
	// order after all jobs complete. traceOn gates the staging entirely:
	// most runs pass no Trace writer and should not pay for record
	// assembly (CoveredIDs in particular allocates).
	trace   []TraceRecord
	traceOn bool
	// met is this job's pre-resolved metric shard view; nil (the common
	// case) disables instrumentation at the cost of one branch per site.
	met *jobMetrics

	// Frame-loop scratch, private to the job's goroutine and dead between
	// frames. The buffers grow to the run's high-water mark and are then
	// reused, which is what keeps the steady-state loop allocation-free;
	// nothing downstream retains them (detect copies positions, schedules
	// copy aim points).
	scCands []int32
	scIdx   []int32
	scPts   []geo.Point2
	scFols  []sched.Follower
	// rng is re-seeded per frame (frameSeed) instead of re-allocated; a
	// Seed on the shared source yields the same stream as a fresh
	// rand.New(rand.NewSource(seed)).
	rngSrc rand.Source
	rng    *rand.Rand
}

// newRunState allocates a private accumulator set for one job.
func newRunState(cfg Config, cons *constellation.Constellation, index *dataset.TimedIndex) *runState {
	src := rand.NewSource(0)
	return &runState{
		cfg:      cfg,
		cons:     cons,
		res:      &Result{},
		index:    index,
		captured: make([]bool, len(cfg.App.Targets)),
		seen:     make([]bool, len(cfg.App.Targets)),
		leaderB:  energy.NewBudget(energyParams(cfg)),
		folB:     energy.NewBudget(energyParams(cfg)),
		capCells: make(map[int64]bool),
		traceOn:  cfg.Trace != nil,
		rngSrc:   src,
		rng:      rand.New(src),
	}
}

// mergeInto folds this job's private accumulators into dst. Callers
// invoke it in job order; every reduction below is either
// order-insensitive (counters, bitmap unions, maxima) or explicitly
// ordered by that call sequence (per-image counts), which is what makes
// parallel runs byte-identical to sequential ones.
func (st *runState) mergeInto(dst *runState) {
	r, p := dst.res, st.res
	r.Frames += p.Frames
	r.FramesWithTargets += p.FramesWithTargets
	r.Detections += p.Detections
	r.Clusters += p.Clusters
	r.Captures += p.Captures
	r.TargetsPerImage = append(r.TargetsPerImage, p.TargetsPerImage...)
	r.SchedSolves += p.SchedSolves
	r.SchedWallTotal += p.SchedWallTotal
	if p.SchedWallMax > r.SchedWallMax {
		r.SchedWallMax = p.SchedWallMax
	}
	r.MissedDeadline += p.MissedDeadline
	r.SchedNodes += p.SchedNodes
	r.SchedIters += p.SchedIters
	r.SchedPivotWall += p.SchedPivotWall
	r.ClusterNodes += p.ClusterNodes
	r.ClusterIters += p.ClusterIters
	r.ClusterPivotWall += p.ClusterPivotWall
	r.RecaptureSuppressed += p.RecaptureSuppressed
	r.CrosslinkBytes += p.CrosslinkBytes
	for i, c := range st.captured {
		if c {
			dst.captured[i] = true
		}
	}
	for i, s := range st.seen {
		if s {
			dst.seen[i] = true
		}
	}
	dst.leaderB.Add(st.leaderB)
	dst.folB.Add(st.folB)
}

// capCellKey quantizes a geodetic position into the recapture registry.
func capCellKey(p geo.LatLon) int64 {
	const cellDeg = 0.02 // ~2 km
	r := int64(math.Floor((p.Lat + 90) / cellDeg))
	c := int64(math.Floor((geo.WrapLonDeg(p.Lon) + 180) / cellDeg))
	return r*1000000 + c
}

func energyParams(cfg Config) energy.Params {
	p := energy.Paper3U()
	if cfg.SlewRateDegS > 0 {
		p.SlewRateDegS = cfg.SlewRateDegS
	}
	return p
}

func (st *runState) slewModel() adacs.SlewModel {
	m := adacs.PaperSlew()
	if st.cfg.SlewRateDegS > 0 {
		m.RateDegS = st.cfg.SlewRateDegS
	}
	return m
}

// frameRadius returns the candidate-query radius covering a w x h frame
// plus detection jitter and target-motion margin.
func frameRadius(w, h float64) float64 {
	return math.Hypot(w, h)/2 + 5e3
}

// candidatesNear refills the candidate scratch with index entries near p.
// An empty result lets the frame loop skip tangent-frame setup entirely.
func (st *runState) candidatesNear(p geo.LatLon, radiusM, ts float64) []int32 {
	st.scCands = st.index.NearInto(p, radiusM, ts, st.scCands[:0])
	return st.scCands
}

// filterInFrame reduces candidate indices to (targetIndex, local position)
// pairs for active targets inside the w x h footprint of f, refilling the
// idx/pts scratch. Candidates farther than frameRadius from the frame
// origin are rejected on great-circle distance before the tangent-frame
// projection: any point inside the rectangle lies within hypot(w,h)/2 of
// the center up to curvature error (~1e-4 relative at frame scale), far
// inside the 5 km margin, and ToLocal costs several times a distance.
func (st *runState) filterInFrame(cands []int32, f geo.TangentFrame, w, h float64, ts float64) ([]int32, []geo.Point2) {
	idx := st.scIdx[:0]
	pts := st.scPts[:0]
	maxD := frameRadius(w, h)
	targets := st.index.Set().Targets
	for _, ci := range cands {
		tgt := &targets[ci]
		if !tgt.ActiveAt(ts) {
			continue
		}
		pos := tgt.PosAt(ts)
		if geo.GreatCircleDistance(pos, f.Origin) > maxD {
			continue
		}
		lp := f.ToLocal(pos)
		if math.Abs(lp.X) <= w/2 && math.Abs(lp.Y) <= h/2 {
			idx = append(idx, ci)
			pts = append(pts, lp)
		}
	}
	st.scIdx, st.scPts = idx, pts
	return idx, pts
}

// runStripSat handles one satellite of the homogeneous baselines: it
// continuously images its nadir strip; a target is covered when it falls
// inside the swath. Consecutive frames tile the ground track, so the loop
// walks the track in long steps with a swath-wide, step-long footprint.
func (st *runState) runStripSat(sat *constellation.Satellite) {
	swath := sat.LowRes.SwathM
	highRes := false
	if !sat.HasLowRes() {
		swath = sat.HighRes.SwathM
		highRes = true
	}
	stepS := 50e3 / sat.Prop.GroundSpeedMS() // 50 km along-track steps
	stepLen := sat.Prop.GroundSpeedMS() * stepS
	qr := frameRadius(swath, stepLen)
	jm := st.met
	stp := sat.Prop.NewStepper(0, stepS)
	for ts := 0.0; ts < st.cfg.DurationS; ts += stepS {
		if ts > 0 {
			stp.Advance()
		}
		st.res.Frames++
		if jm != nil {
			jm.frames.Inc()
		}
		// Empty-frame fast path: most ocean/desert steps see no
		// candidates, so probe the index around the cheap sub-point
		// before computing the full state and tangent frame.
		cands := st.candidatesNear(stp.SubPoint(), qr, ts)
		if len(cands) == 0 {
			continue
		}
		s := stp.State()
		f := geo.TangentFrame{Origin: s.SubPoint, BearingDeg: s.HeadingDeg}
		idx, _ := st.filterInFrame(cands, f, swath, stepLen, ts)
		if len(idx) == 0 {
			continue
		}
		st.res.FramesWithTargets++
		if jm != nil {
			jm.framesWithTargets.Inc()
		}
		for _, ci := range idx {
			st.seen[ci] = true
			if highRes {
				st.captured[ci] = true
			}
		}
	}
	// Energy: continuous imaging along the track. High-res strip
	// satellites capture only -- they run no ML detection -- and book to
	// the follower-role budget; low-res satellites detect on every frame
	// and book to the leader/mono budget.
	framesPerDay := st.cfg.DurationS / (swath / sat.Prop.GroundSpeedMS())
	if highRes {
		st.folB.Capture(int(framesPerDay))
	} else {
		st.leaderB.Capture(int(framesPerDay))
		st.leaderB.Compute(framesPerDay * st.cfg.Tiling.FrameTimeS(st.cfg.Detector))
	}
}

// runGroup runs one group of the EagleEye operating model (or the
// mix-camera variant, where the "follower" is the leader itself after its
// compute delay). Groups are independent by construction -- each leader
// has its own followers and ground track -- so runGroup only touches the
// job's private runState and the concurrency-safe shared index.
func (st *runState) runGroup(gi int, grp constellation.Group) error {
	cfg := st.cfg
	leader := grp.Leader
	cadence := leader.Prop.FrameCadenceS(leader.LowRes.FootprintAlongM())
	computeS := cfg.ComputeDelayS
	if computeS == 0 {
		computeS = cfg.Tiling.FrameTimeS(cfg.Detector)
	}

	followers := grp.Followers
	mix := len(followers) == 0 // mix-camera: self-follower
	env := sched.Env{
		AltitudeM:     leader.Prop.AltitudeM(),
		GroundSpeedMS: leader.Prop.GroundSpeedMS(),
		Slew:          st.slewModel(),
	}
	// The off-nadir limit belongs to whichever camera executes the
	// schedule: the leader's own high-res camera in the mix variant,
	// the followers' otherwise.
	if mix {
		env.MaxOffNadirDeg = leader.HighRes.MaxOffNadirDeg
		// The satellite must be back at nadir for the next frame.
		env.HorizonS = math.Max(0, cadence-computeS-1)
	} else {
		env.MaxOffNadirDeg = followers[0].HighRes.MaxOffNadirDeg
	}

	pipe := &core.Pipeline{
		Detector:      cfg.Detector,
		Tiling:        cfg.Tiling,
		UseClustering: !cfg.NoClustering,
		// Frame-rate clustering: bound the set-cover ILP per frame;
		// dense frames fall back to the greedy cover, as the energy
		// and deadline budgets require.
		ClusterOpts: cluster.Options{
			ForceGreedy:      cfg.ClusterGreedy,
			MaxILPCandidates: 400,
			MIP:              mip.Options{TimeLimit: 150 * time.Millisecond, MaxNodes: 40},
		},
		Scheduler:      cfg.Scheduler,
		HighResSwathM:  highResSwath(grp, leader),
		RecallOverride: cfg.RecallOverride,
	}
	jm := st.met
	if jm != nil {
		pipe.Timed = true
		pipe.ClusterOpts.MIP.Metrics = jm.m.solverCluster
	}
	if pipe.Scheduler == nil {
		// Frame-rate solves: bound the MIP search tightly; the polish pass
		// and the greedy fallback keep truncated solves near-optimal. The
		// default scheduler is built here, per group, so each leader owns a
		// private temporal-coherence state (warm candidates, basis reuse,
		// incremental model construction -- see sched.SolverState). Group-
		// private state keeps the Result identical for any Workers value.
		opts := mip.Options{TimeLimit: 500 * time.Millisecond, MaxNodes: 200}
		if jm != nil {
			opts.Metrics = jm.m.solverSched
		}
		ilp := sched.ILP{MIP: opts}
		if !cfg.DisableWarmStart {
			// Pooled so per-run state construction stays out of the
			// steady-state allocation budget; Reset makes a recycled state
			// behave exactly like a fresh one.
			ss := sched.GetSolverState()
			defer sched.PutSolverState(ss)
			ilp.State = ss
			ilp.AggressiveWarm = warmAggressive
		}
		pipe.Scheduler = ilp
	}
	if !cfg.DisableWarmStart {
		// Same temporal coherence for the per-frame set cover: the pinned
		// per-group arena carries the LP basis and the previous greedy
		// cover seeds the ILP.
		cs := cluster.GetSolverState()
		defer cluster.PutSolverState(cs)
		pipe.ClusterOpts.State = cs
		pipe.ClusterOpts.AggressiveWarm = warmAggressive
	}

	w := leader.LowRes.SwathM
	h := leader.LowRes.FootprintAlongM()
	// Incremental propagation: one stepper tracks the leader at frame
	// cadence; schedule-time steppers track the leader (mix) or each
	// follower offset by the compute delay, advancing in lockstep.
	lead := leader.Prop.NewStepper(0, cadence)
	schedSteppers := make([]*orbit.Stepper, 0, len(followers)+1)
	if mix {
		schedSteppers = append(schedSteppers, leader.Prop.NewStepper(computeS, cadence))
	} else {
		for _, f := range followers {
			schedSteppers = append(schedSteppers, f.Prop.NewStepper(computeS, cadence))
		}
	}
	// The candidate probe runs around the raw sub-point (before the h/2
	// frame-center offset), so its radius is inflated by that offset:
	// every target inside the frame disk is inside the probe disk, making
	// the empty-frame fast path a pure superset check.
	qr := frameRadius(w, h) + h/2

	frameIdx := 0
	for ts := 0.0; ts < cfg.DurationS; ts += cadence {
		if frameIdx > 0 {
			if jm != nil && frameIdx&ephSampleMask == 0 {
				// Sampled ephemeris span: the advance costs about as much
				// as the clock read, so 1-in-64 frames are timed and the
				// ns total is scaled back up (histogram gets raw samples).
				t0 := time.Now()
				lead.Advance()
				for _, s := range schedSteppers {
					s.Advance()
				}
				d := int64(time.Since(t0))
				jm.stageNS[stageEphemeris].Add(d << ephSampleShift)
				jm.stageHist[stageEphemeris].Observe(float64(d) / 1e9)
			} else {
				lead.Advance()
				for _, s := range schedSteppers {
					s.Advance()
				}
			}
		}
		frameIdx++
		st.res.Frames++
		if jm != nil {
			jm.frames.Inc()
			if frameIdx&255 == 0 {
				jm.m.progress.SetMax(ts / cfg.DurationS)
			}
		}
		st.leaderB.Capture(1)
		st.leaderB.Compute(computeS)
		cands := st.candidatesNear(lead.SubPoint(), qr, ts)
		if len(cands) == 0 {
			continue
		}
		ls := lead.State()
		// A frame captured at ts covers the swath ahead of the
		// leader's nadir (Fig. 9): the leader overflies the imaged
		// area during the ~13.7 s it spends computing, which is why
		// the separation equals the swath width -- a follower 100 km
		// back is still behind the frame area when the schedule
		// arrives, whatever the compute latency, while a mix-camera
		// satellite has flown into its own frame and must look
		// backward at targets whose windows are closing.
		center := geo.Destination(ls.SubPoint, ls.HeadingDeg, h/2)
		frame := geo.TangentFrame{Origin: center, BearingDeg: ls.HeadingDeg}
		idx, pts := st.filterInFrame(cands, frame, w, h, ts)
		if len(idx) == 0 {
			continue
		}
		st.res.FramesWithTargets++
		if jm != nil {
			jm.framesWithTargets.Inc()
		}
		st.res.TargetsPerImage = append(st.res.TargetsPerImage, len(idx))
		for _, ci := range idx {
			st.seen[ci] = true
		}

		// Schedule starts when the leader finishes computing.
		tSched := ts + computeS
		fols := st.scFols[:0]
		for _, s := range schedSteppers {
			sub := frame.ToLocal(s.SubPoint())
			fols = append(fols, sched.Follower{SubPoint: sub, Boresight: sub})
		}
		st.scFols = fols

		st.rngSrc.Seed(frameSeed(cfg.Seed, gi, frameIdx))
		pipe.Rng = st.rng
		if cfg.RecaptureDedup {
			// §4.7 recapture: detections at already-captured ground
			// cells are deprioritized to a tenth of their score.
			pipe.PriorityScale = func(lp geo.Point2) float64 {
				if st.capCells[capCellKey(frame.ToGeodetic(lp))] {
					st.res.RecaptureSuppressed++
					return 0.1
				}
				return 1
			}
		}
		recapBefore := st.res.RecaptureSuppressed
		fres, err := pipe.ProcessFrame(core.Frame{
			Truth:  pts,
			Bounds: geo.NewRectCentered(geo.Point2{}, w, h),
			GSDM:   leader.LowRes.GSDM,
		}, fols, env)
		if err != nil {
			return fmt.Errorf("sim: group %d frame %d: %w", gi, frameIdx, err)
		}
		if jm != nil {
			jm.detections.Add(int64(len(fres.Detections)))
			jm.clusters.Add(int64(len(fres.Clusters)))
			jm.schedSolves.Inc()
			jm.span(stageDetect, int64(fres.DetectWall))
			jm.span(stageCluster, int64(fres.ClusterWall))
			jm.span(stageSched, int64(fres.SchedWall))
			if fres.Schedule.SolveStats.Fallback {
				jm.schedFallbacks.Inc()
			}
			if d := st.res.RecaptureSuppressed - recapBefore; d > 0 {
				jm.recaptureSuppressed.Add(int64(d))
			}
		}
		st.res.Detections += len(fres.Detections)
		st.res.Clusters += len(fres.Clusters)
		st.res.SchedSolves++
		st.res.SchedWallTotal += fres.SchedWall
		if fres.SchedWall > st.res.SchedWallMax {
			st.res.SchedWallMax = fres.SchedWall
		}
		st.res.SchedNodes += fres.Schedule.SolveStats.Nodes
		st.res.SchedIters += fres.Schedule.SolveStats.Iters
		st.res.SchedPivotWall += fres.Schedule.SolveStats.PivotWall
		st.res.ClusterNodes += fres.ClusterStats.Nodes
		st.res.ClusterIters += fres.ClusterStats.Iters
		st.res.ClusterPivotWall += fres.ClusterStats.PivotWall
		if computeS+fres.SchedWall.Seconds() > cadence {
			st.res.MissedDeadline++
			if jm != nil {
				jm.missedDeadlines.Inc()
			}
		}
		if cfg.ValidateSchedules {
			if err := validateAgainstPipeline(&fres, fols, env); err != nil {
				return fmt.Errorf("sim: group %d frame %d: %w", gi, frameIdx, err)
			}
		}
		var spanStart time.Time
		capsBefore := st.res.Captures
		if jm != nil {
			spanStart = time.Now()
		}
		st.executeSchedule(frame, tSched, &fres, grp, leader, mix)
		if jm != nil {
			jm.span(stageExecute, int64(time.Since(spanStart)))
			jm.captures.Add(int64(st.res.Captures - capsBefore))
			spanStart = time.Now()
		}
		st.res.CrosslinkBytes += fres.CrosslinkBytes
		st.leaderB.Crosslink(fres.CrosslinkBytes / comms.PaperCrosslink().RateBps)
		if jm != nil {
			// Wire bytes are integral by construction; the int64 counter
			// keeps the total deterministic across worker counts.
			jm.crosslinkBytes.Add(int64(fres.CrosslinkBytes))
		}
		if !st.traceOn {
			if jm != nil {
				jm.span(stageAccount, int64(time.Since(spanStart)))
			}
			continue
		}
		st.trace = append(st.trace, TraceRecord{
			Group:        gi,
			Frame:        frameIdx,
			TimeS:        ts,
			Lat:          frame.Origin.Lat,
			Lon:          frame.Origin.Lon,
			Targets:      len(idx),
			Detected:     len(fres.Detections),
			Clusters:     len(fres.Clusters),
			Captures:     fres.Schedule.NumCaptures(),
			Covered:      len(fres.Schedule.CoveredIDs()),
			SchedMS:      float64(fres.SchedWall.Microseconds()) / 1000,
			Deadline:     computeS+fres.SchedWall.Seconds() <= cadence,
			SchedNodes:   fres.Schedule.SolveStats.Nodes,
			SchedIters:   fres.Schedule.SolveStats.Iters,
			SchedGap:     fres.Schedule.SolveStats.Gap,
			ClusterNodes: fres.ClusterStats.Nodes,
			ClusterIters: fres.ClusterStats.Iters,
		})
		if jm != nil {
			jm.span(stageAccount, int64(time.Since(spanStart)))
		}
	}
	return nil
}

func highResSwath(grp constellation.Group, leader *constellation.Satellite) float64 {
	if len(grp.Followers) > 0 {
		return grp.Followers[0].HighRes.SwathM
	}
	return leader.HighRes.SwathM
}

// executeSchedule scores captures: a truth target counts as captured when
// its true position at the capture time lies inside the captured
// footprint. Moving targets may drift out between detection and capture --
// exactly the §4.6 lookahead effect.
func (st *runState) executeSchedule(frame geo.TangentFrame, tSched float64, fres *core.Result, grp constellation.Group, leader *constellation.Satellite, mix bool) {
	swath := highResSwath(grp, leader)
	for fi, seq := range fres.Schedule.Captures {
		// Slew energy depends on the executing satellite's own altitude:
		// the leader itself in the mix variant, follower fi otherwise
		// (groups may mix altitudes).
		exec := leader
		if !mix && fi < len(grp.Followers) {
			exec = grp.Followers[fi]
		}
		altM := exec.Prop.AltitudeM()
		var prevAim geo.Point2
		prevT := 0.0
		first := true
		for _, c := range seq {
			absT := tSched + c.Time
			fp := geo.NewRectCentered(c.Aim, swath, swath)
			// Re-query around the aim point at capture time: targets may
			// have moved into or out of the footprint. The candidate
			// scratch is free here: the frame's filtered idx/pts live in
			// their own buffers.
			cands := st.candidatesNear(frame.ToGeodetic(c.Aim), frameRadius(swath, swath), absT)
			for _, ci := range cands {
				tgt := &st.index.Set().Targets[ci]
				if !tgt.ActiveAt(absT) {
					continue
				}
				if fp.Contains(frame.ToLocal(tgt.PosAt(absT))) {
					st.captured[ci] = true
					if st.cfg.RecaptureDedup {
						st.capCells[capCellKey(tgt.PosAt(absT))] = true
					}
				}
			}
			st.res.Captures++
			st.folB.Capture(1)
			if !first {
				// Approximate the commanded rotation by the aim-point
				// angular separation at capture times.
				ang := adacs.PointingAngleDeg(
					geo.Point2{X: prevAim.X, Y: prevAim.Y - 50e3}, prevAim,
					geo.Point2{X: c.Aim.X, Y: c.Aim.Y - 50e3}, c.Aim,
					altM)
				st.folB.Slew(ang, c.Time-prevT)
			}
			first = false
			prevAim, prevT = c.Aim, c.Time
		}
	}
}

// validateAgainstPipeline reconstructs the scheduling problem from the
// pipeline output and re-checks constraints C1-C3.
func validateAgainstPipeline(fres *core.Result, fols []sched.Follower, env sched.Env) error {
	var targets []sched.Target
	if len(fres.Clusters) > 0 {
		for i, c := range fres.Clusters {
			val := 0.0
			for _, m := range c.Members {
				val += fres.Detections[m].Confidence
			}
			targets = append(targets, sched.Target{ID: i, Pos: c.Center(), Value: val})
		}
	} else {
		for i, d := range fres.Detections {
			targets = append(targets, sched.Target{ID: i, Pos: d.Pos, Value: d.Confidence})
		}
	}
	prob := &sched.Problem{Env: env, Targets: targets, Followers: fols}
	return sched.ValidateSchedule(prob, &fres.Schedule)
}

// frameSeed derives a deterministic per-frame RNG seed.
func frameSeed(seed int64, group, frame int) int64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(group)*0xBF58476D1CE4E5B9 + uint64(frame)*0x94D049BB133111EB
	h ^= h >> 31
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// finalizeEnergy converts accumulated totals into per-orbit averages.
func (st *runState) finalizeEnergy() {
	period := 94 * 60.0
	orbits := st.cfg.DurationS / period
	if orbits <= 0 {
		orbits = 1
	}
	scale := func(b *energy.Budget, n float64) *energy.Budget {
		if n <= 0 {
			n = 1
		}
		out := energy.NewBudget(b.Params)
		out.CameraJ = b.CameraJ / orbits / n
		out.ADACSJ = b.ADACSJ/orbits/n + b.Params.ADACSIdleW*period
		out.ComputeJ = b.ComputeJ / orbits / n
		out.TXJ = b.TXJ / orbits / n
		out.CrosslinkJ = b.CrosslinkJ / orbits / n
		return out
	}
	nLeaders := float64(len(st.cons.Groups))
	nFollowers := 0.0
	for _, g := range st.cons.Groups {
		nFollowers += float64(len(g.Followers))
		if g.Leader.Role == constellation.RoleMono && !g.Leader.HasLowRes() {
			// High-Res-Only strip satellites book capture energy to the
			// follower-role budget (they point-and-shoot, never detect).
			nFollowers++
		}
	}
	st.res.LeaderBudget = scale(st.leaderB, nLeaders)
	st.res.FollowerBudget = scale(st.folB, nFollowers)
	// Image-producing satellites downlink the captured imagery
	// (6 min/orbit contact): followers, and high-res strip monos.
	if nFollowers > 0 {
		st.res.FollowerBudget.Downlink(6 * 60)
	}
}
