// Package sim is the orbital-edge-computing simulator that drives the
// evaluation: the equivalent of the cote simulator the paper's prototype
// uses (§5.1). It propagates a constellation over a target world for a
// configurable duration, runs the EagleEye leader pipeline on every
// low-resolution frame (detection, clustering, actuation-aware
// scheduling), executes follower schedules with full actuation and
// off-nadir constraints, and accounts coverage, runtime, communication and
// energy -- everything the paper's figures report.
//
// Baselines share the same machinery: Low-Res-Only and High-Res-Only
// constellations reduce to nadir strip coverage; the mix-camera variant
// reuses the leader pipeline with the satellite scheduling itself after
// its own compute delay (Fig. 9/13).
//
// Long-horizon runs are first-class: Runner exposes the same simulation
// as a windowed stepper with versioned binary snapshots (Snapshot /
// RestoreRunner), Config.Events injects mid-run faults at frame
// boundaries, and per-frame accumulation is O(1) in the duration (the
// per-image target distribution is a fixed-bucket ImageTargetHist, not a
// slice).
package sim

import (
	"io"
	"math"
	"math/rand"
	"time"

	"eagleeye/internal/adacs"
	"eagleeye/internal/camera"
	"eagleeye/internal/comms"
	"eagleeye/internal/constellation"
	"eagleeye/internal/core"
	"eagleeye/internal/dataset"
	"eagleeye/internal/detect"
	"eagleeye/internal/energy"
	"eagleeye/internal/geo"
	"eagleeye/internal/obs"
	"eagleeye/internal/sched"
)

// DefaultEpoch anchors all simulations; fixing it keeps every experiment
// reproducible.
var DefaultEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// warmAggressive selects the aggressive warm-start mode (install the warm
// candidate as the root incumbent and stop as soon as a bound proves it
// optimal) for the default schedulers. It is off: the early exit accepts
// the candidate within the solver's feasibility tolerance, which is wider
// than the scheduler objective's slot-time tie-break (see sched.edgeCost),
// so an aggressive run can return a candidate that an exhaustive search
// would re-time -- breaking the warm == cold result identity that
// TestWarmStartResultIdentity pins. The conservative mode (pruning floor,
// crash-basis seeding, cross-frame basis reuse) gets the measured solver
// savings without that risk, because every mechanism it uses still runs
// phase-2 simplex to the unique optimum.
const warmAggressive = false

// Config describes one simulation run.
type Config struct {
	// Constellation is the organization under test.
	Constellation constellation.Config
	// App is the target workload.
	App *dataset.Set
	// Scheduler schedules followers; nil means the ILP scheduler with
	// per-group temporal-coherence state (see DisableWarmStart).
	Scheduler sched.Scheduler
	// DisableWarmStart turns off the cross-frame warm-start pipeline of
	// the default schedulers: per-leader solver state, previous-schedule
	// projection, LP basis reuse, and incremental model construction. The
	// escape hatch exists for A/B measurement and as a safety valve; it
	// only applies when Scheduler is nil.
	DisableWarmStart bool
	// Detector is the leader's ML model; zero means YoloN.
	Detector detect.Model
	// Tiling is the frame decomposition; zero means PaperTiling.
	Tiling detect.Tiling
	// NoClustering disables target clustering (Fig. 14c ablation).
	NoClustering bool
	// ClusterGreedy forces the greedy cover (clustering ablation).
	ClusterGreedy bool
	// RecallOverride in (0,1] overrides detector recall (Fig. 15).
	RecallOverride float64
	// DurationS is the simulated span; 0 means 24 h.
	DurationS float64
	// Seed drives all stochastic components.
	Seed int64
	// SlewRateDegS overrides the ADACS rate; 0 means the paper's 3 deg/s.
	SlewRateDegS float64
	// ComputeDelayS overrides the modeled leader compute latency
	// (mix-camera sensitivity, Fig. 13); 0 means model the tiling latency.
	ComputeDelayS float64
	// ValidateSchedules re-checks every schedule against C1-C3 (slower;
	// used by tests).
	ValidateSchedules bool
	// ShardTargets, when positive, shards every leader frame spatially:
	// the footprint is tiled into along-track x cross-track cells of
	// about ShardTargets targets each (subject to a 2x-swath geometric
	// floor; see core.PlanShards) and the detect/cluster/sched pipeline
	// runs per shard, in parallel across Workers goroutines inside the
	// frame, with a deterministic ordered merge. Frames at or below
	// ShardTargets targets run on a single shard. This is a
	// result-shaping knob (per-shard detector RNG streams, per-shard
	// covers, cross-shard slew stitch), part of the scenario digest a
	// snapshot is checked against -- unlike Workers, which never changes
	// results. 0 (the default) disables sharding entirely and keeps
	// results byte-identical to previous releases.
	ShardTargets int
	// RecaptureDedup enables the §4.7 recapture extension: each leader
	// deprioritizes detections at ground positions its own group has
	// already captured at high resolution, freeing follower time for new
	// targets. The registry is per group -- sharing it across groups would
	// require inter-group communication the constellation does not have.
	RecaptureDedup bool
	// Events schedules mid-run faults (satellite failures, leader
	// re-election); see Event. They fire at frame boundaries, are
	// validated against the built constellation, and are part of the
	// scenario identity a snapshot is checked against.
	Events []Event
	// Trace, when non-nil, receives one JSON line per processed leader
	// frame (see TraceRecord). Records are emitted in group order, frames
	// in time order within each group, regardless of Workers.
	Trace io.Writer
	// Metrics, when non-nil, receives run metrics: event counters,
	// per-stage wall-time breakdowns, solver activity, and progress
	// gauges (see internal/obs and the README metrics table). Handles
	// are resolved once before the first frame; a nil registry leaves
	// the frame loop byte-identical to the uninstrumented simulator.
	// Integer event counters are deterministic across Workers; timing
	// and solver-limit series are machine-dependent. The registry feeds
	// the default ILP scheduler's solver counters; a custom Scheduler
	// must accept its own mip.Options.Metrics to be counted.
	Metrics *obs.Registry
	// Flight, when non-nil, records per-frame span trees into the flight
	// recorder: a bounded ring of recent frames, top-K retention by
	// duration, and anomaly-triggered pinning (solver fallback,
	// warm-start reject, dual-repair failure, refactorization alarm,
	// deadline miss, fault event). Like Metrics, the handle is resolved
	// once per job before the first frame and a nil recorder leaves the
	// frame loop byte-identical to the unrecorded simulator. Only frames
	// that reach the detect/schedule pipeline are recorded; empty frames
	// are skipped, and fault events pin synthetic records of their own.
	Flight *obs.FlightRecorder
	// Workers bounds the concurrent goroutines executing per-group
	// (leader-follower, mix-camera) or per-satellite (strip-coverage)
	// jobs. 0 means runtime.GOMAXPROCS(0); 1 runs sequentially. Every
	// job works against private accumulators and a deterministic merge
	// folds them in group order, so the Result and trace are identical
	// for any worker count at a fixed seed (timing-derived fields --
	// scheduler wall clock and deadline misses -- excepted). A custom
	// Scheduler must be safe for concurrent use when Workers != 1.
	Workers int
}

// Result aggregates one run.
type Result struct {
	Kind string // constellation organization
	App  string

	TotalTargets    int
	HighResCaptured int // distinct targets inside captured high-res images
	LowResSeen      int // distinct targets inside leader low-res frames

	Frames            int
	FramesWithTargets int
	Detections        int
	Clusters          int
	Captures          int

	// TargetsPerImage holds the distribution of per-nonempty-frame truth
	// target counts (Fig. 12b's CDF) as a fixed-bucket histogram, so
	// week-long runs accumulate O(1) result state instead of a per-frame
	// slice.
	TargetsPerImage ImageTargetHist

	SchedSolves    int
	SchedWallTotal time.Duration
	SchedWallMax   time.Duration
	MissedDeadline int // frames whose compute+scheduling exceeded the cadence

	// Solver cost aggregates: branch-and-bound nodes and simplex
	// iterations summed over all scheduling and clustering ILP solves,
	// and the wall time spent inside the LP pivot loop. They make solver
	// load visible without a profiler; per-frame values are in the trace.
	SchedNodes       int
	SchedIters       int
	SchedPivotWall   time.Duration
	ClusterNodes     int
	ClusterIters     int
	ClusterPivotWall time.Duration

	// RecaptureSuppressed counts detections deprioritized by the §4.7
	// recapture extension.
	RecaptureSuppressed int

	// Fault-event accounting (Config.Events): events applied so far,
	// satellites lost to them, and leader re-elections performed.
	EventsApplied     int
	SatsFailed        int
	LeaderReelections int

	// CrosslinkBytes is the total schedule traffic leaders sent (wire
	// encoding, §5.3 bound enforced per message).
	CrosslinkBytes float64
	// DownlinkableFraction is the share of captured images the followers'
	// per-orbit ground contact can actually return to Earth.
	DownlinkableFraction float64

	LeaderBudget   *energy.Budget // per-orbit average, leader/mono role
	FollowerBudget *energy.Budget // per-orbit average across followers
}

// CoveragePct returns the headline metric: the percentage of targets
// captured at high resolution (for Low-Res-Only, the percentage seen at
// low resolution -- the paper plots it as the physical upper bound, noting
// it does not deliver high-resolution data).
func (r *Result) CoveragePct() float64 {
	if r.TotalTargets == 0 {
		return 0
	}
	n := r.HighResCaptured
	if r.Kind == constellation.LowResOnly.String() {
		n = r.LowResSeen
	}
	return 100 * float64(n) / float64(r.TotalTargets)
}

// LowResSeenPct returns the fraction of targets seen in low-resolution.
func (r *Result) LowResSeenPct() float64 {
	if r.TotalTargets == 0 {
		return 0
	}
	return 100 * float64(r.LowResSeen) / float64(r.TotalTargets)
}

// Run executes the simulation in one shot: a Runner advanced straight to
// the configured duration. Windowed advancement, snapshots and restore
// are on the Runner itself.
func Run(cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := r.Advance(r.cfg.DurationS); err != nil {
		return nil, err
	}
	return r.Result()
}

// runState carries one job's private simulation state. Every group (or
// strip satellite) gets its own instance, so jobs run concurrently
// without synchronization; mergeInto folds them back deterministically.
type runState struct {
	cfg      Config
	cons     *constellation.Constellation
	res      *Result
	index    *dataset.TimedIndex // shared; safe for concurrent readers
	captured []bool
	seen     []bool
	leaderB  *energy.Budget
	folB     *energy.Budget
	// capCells is the recapture registry: ~2 km ground cells this group
	// already captured at high resolution (used when cfg.RecaptureDedup
	// is set).
	capCells map[int64]bool
	// trace buffers this job's frame records for the current window; the
	// Runner drains them in group order at every Advance boundary. traceOn
	// gates the staging entirely: most runs pass no Trace writer and
	// should not pay for record assembly (CoveredIDs in particular
	// allocates). traceEmitted counts records already drained to the sink
	// -- the trace cursor a snapshot preserves.
	trace        []TraceRecord
	traceOn      bool
	traceEmitted int64
	// met is this job's pre-resolved metric shard view; nil (the common
	// case) disables instrumentation at the cost of one branch per site.
	met *jobMetrics
	// fb is this job's flight-recorder arena (cfg.Flight.Builder()); nil
	// disables span recording the same way a nil met disables metrics.
	fb *obs.FrameBuilder

	// Frame-loop scratch, private to the job's goroutine and dead between
	// frames. The buffers grow to the run's high-water mark and are then
	// reused, which is what keeps the steady-state loop allocation-free;
	// nothing downstream retains them (detect copies positions, schedules
	// copy aim points).
	scCands []int32
	scIdx   []int32
	scPts   []geo.Point2
	scFols  []sched.Follower
	// rng is re-seeded per frame (frameSeed) instead of re-allocated; a
	// Seed on the shared source yields the same stream as a fresh
	// rand.New(rand.NewSource(seed)).
	rngSrc rand.Source
	rng    *rand.Rand
}

// newRunState allocates a private accumulator set for one job.
func newRunState(cfg Config, cons *constellation.Constellation, index *dataset.TimedIndex) *runState {
	src := rand.NewSource(0)
	return &runState{
		cfg:      cfg,
		cons:     cons,
		res:      &Result{},
		index:    index,
		captured: make([]bool, len(cfg.App.Targets)),
		seen:     make([]bool, len(cfg.App.Targets)),
		leaderB:  energy.NewBudget(energyParams(cfg)),
		folB:     energy.NewBudget(energyParams(cfg)),
		capCells: make(map[int64]bool),
		traceOn:  cfg.Trace != nil,
		rngSrc:   src,
		rng:      rand.New(src),
	}
}

// mergeInto folds this job's private accumulators into dst. Callers
// invoke it in job order; every reduction below is either
// order-insensitive (counters, bitmap unions, maxima) or explicitly
// ordered by that call sequence (budget additions), which is what makes
// parallel runs byte-identical to sequential ones.
func (st *runState) mergeInto(dst *runState) {
	r, p := dst.res, st.res
	r.Frames += p.Frames
	r.FramesWithTargets += p.FramesWithTargets
	r.Detections += p.Detections
	r.Clusters += p.Clusters
	r.Captures += p.Captures
	r.TargetsPerImage.Merge(&p.TargetsPerImage)
	r.SchedSolves += p.SchedSolves
	r.SchedWallTotal += p.SchedWallTotal
	if p.SchedWallMax > r.SchedWallMax {
		r.SchedWallMax = p.SchedWallMax
	}
	r.MissedDeadline += p.MissedDeadline
	r.SchedNodes += p.SchedNodes
	r.SchedIters += p.SchedIters
	r.SchedPivotWall += p.SchedPivotWall
	r.ClusterNodes += p.ClusterNodes
	r.ClusterIters += p.ClusterIters
	r.ClusterPivotWall += p.ClusterPivotWall
	r.RecaptureSuppressed += p.RecaptureSuppressed
	r.EventsApplied += p.EventsApplied
	r.SatsFailed += p.SatsFailed
	r.LeaderReelections += p.LeaderReelections
	r.CrosslinkBytes += p.CrosslinkBytes
	for i, c := range st.captured {
		if c {
			dst.captured[i] = true
		}
	}
	for i, s := range st.seen {
		if s {
			dst.seen[i] = true
		}
	}
	dst.leaderB.Add(st.leaderB)
	dst.folB.Add(st.folB)
}

// capCellKey quantizes a geodetic position into the recapture registry.
func capCellKey(p geo.LatLon) int64 {
	const cellDeg = 0.02 // ~2 km
	r := int64(math.Floor((p.Lat + 90) / cellDeg))
	c := int64(math.Floor((geo.WrapLonDeg(p.Lon) + 180) / cellDeg))
	return r*1000000 + c
}

func energyParams(cfg Config) energy.Params {
	p := energy.Paper3U()
	if cfg.SlewRateDegS > 0 {
		p.SlewRateDegS = cfg.SlewRateDegS
	}
	return p
}

func (st *runState) slewModel() adacs.SlewModel {
	m := adacs.PaperSlew()
	if st.cfg.SlewRateDegS > 0 {
		m.RateDegS = st.cfg.SlewRateDegS
	}
	return m
}

// frameRadius returns the candidate-query radius covering a w x h frame
// plus detection jitter and target-motion margin.
func frameRadius(w, h float64) float64 {
	return math.Hypot(w, h)/2 + 5e3
}

// candidatesNear refills the candidate scratch with index entries near p.
// An empty result lets the frame loop skip tangent-frame setup entirely.
func (st *runState) candidatesNear(p geo.LatLon, radiusM, ts float64) []int32 {
	st.scCands = st.index.NearInto(p, radiusM, ts, st.scCands[:0])
	return st.scCands
}

// filterInFrame reduces candidate indices to (targetIndex, local position)
// pairs for active targets inside the w x h footprint of f, refilling the
// idx/pts scratch. Candidates farther than frameRadius from the frame
// origin are rejected on great-circle distance before the tangent-frame
// projection: any point inside the rectangle lies within hypot(w,h)/2 of
// the center up to curvature error (~1e-4 relative at frame scale), far
// inside the 5 km margin, and ToLocal costs several times a distance.
func (st *runState) filterInFrame(cands []int32, f geo.TangentFrame, w, h float64, ts float64) ([]int32, []geo.Point2) {
	idx := st.scIdx[:0]
	pts := st.scPts[:0]
	maxD := frameRadius(w, h)
	targets := st.index.Set().Targets
	for _, ci := range cands {
		tgt := &targets[ci]
		if !tgt.ActiveAt(ts) {
			continue
		}
		pos := tgt.PosAt(ts)
		if geo.GreatCircleDistance(pos, f.Origin) > maxD {
			continue
		}
		lp := f.ToLocal(pos)
		if math.Abs(lp.X) <= w/2 && math.Abs(lp.Y) <= h/2 {
			idx = append(idx, ci)
			pts = append(pts, lp)
		}
	}
	st.scIdx, st.scPts = idx, pts
	return idx, pts
}

func highResSwath(grp constellation.Group, leader *constellation.Satellite) float64 {
	if len(grp.Followers) > 0 {
		return grp.Followers[0].HighRes.SwathM
	}
	return leader.HighRes.SwathM
}

// validateAgainstPipeline reconstructs the scheduling problem from the
// pipeline output and re-checks constraints C1-C3.
func validateAgainstPipeline(fres *core.Result, fols []sched.Follower, env sched.Env) error {
	var targets []sched.Target
	if len(fres.Clusters) > 0 {
		for i, c := range fres.Clusters {
			val := 0.0
			for _, m := range c.Members {
				val += fres.Detections[m].Confidence
			}
			targets = append(targets, sched.Target{ID: i, Pos: c.Center(), Value: val})
		}
	} else {
		for i, d := range fres.Detections {
			targets = append(targets, sched.Target{ID: i, Pos: d.Pos, Value: d.Confidence})
		}
	}
	prob := &sched.Problem{Env: env, Targets: targets, Followers: fols}
	return sched.ValidateSchedule(prob, &fres.Schedule)
}

// frameSeed derives a deterministic per-frame RNG seed.
func frameSeed(seed int64, group, frame int) int64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(group)*0xBF58476D1CE4E5B9 + uint64(frame)*0x94D049BB133111EB
	h ^= h >> 31
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// finalizeComms computes how much of the elapsed span's captured imagery
// the downlink can return: followers see a ground station ~6 min/orbit
// (§5.3), and each high-resolution image is ~33 MB.
func (st *runState) finalizeComms(elapsedS float64) {
	if st.res.Captures == 0 {
		st.res.DownlinkableFraction = 1
		return
	}
	nFollowers := 0
	for _, g := range st.cons.Groups {
		nFollowers += len(g.Followers)
		if len(g.Followers) == 0 {
			nFollowers++ // mix-camera: the satellite downlinks its own captures
		}
	}
	link := comms.PaperDownlink()
	orbits := elapsedS / (94 * 60)
	if orbits < 1 {
		orbits = 1
	}
	hr := camera.PaperHighRes()
	imgBytes := comms.ImageBytes(hr.FramePixels(), 3)
	capacityImages := link.CapacityPerOrbitBytes() / imgBytes * orbits * float64(nFollowers)
	frac := capacityImages / float64(st.res.Captures)
	if frac > 1 {
		frac = 1
	}
	st.res.DownlinkableFraction = frac
}

// finalizeEnergy converts accumulated totals into per-orbit averages over
// the elapsed span.
func (st *runState) finalizeEnergy(elapsedS float64) {
	period := 94 * 60.0
	orbits := elapsedS / period
	if orbits <= 0 {
		orbits = 1
	}
	scale := func(b *energy.Budget, n float64) *energy.Budget {
		if n <= 0 {
			n = 1
		}
		out := energy.NewBudget(b.Params)
		out.CameraJ = b.CameraJ / orbits / n
		out.ADACSJ = b.ADACSJ/orbits/n + b.Params.ADACSIdleW*period
		out.ComputeJ = b.ComputeJ / orbits / n
		out.TXJ = b.TXJ / orbits / n
		out.CrosslinkJ = b.CrosslinkJ / orbits / n
		return out
	}
	nLeaders := float64(len(st.cons.Groups))
	nFollowers := 0.0
	for _, g := range st.cons.Groups {
		nFollowers += float64(len(g.Followers))
		if g.Leader.Role == constellation.RoleMono && !g.Leader.HasLowRes() {
			// High-Res-Only strip satellites book capture energy to the
			// follower-role budget (they point-and-shoot, never detect).
			nFollowers++
		}
	}
	st.res.LeaderBudget = scale(st.leaderB, nLeaders)
	st.res.FollowerBudget = scale(st.folB, nFollowers)
	// Image-producing satellites downlink the captured imagery
	// (6 min/orbit contact): followers, and high-res strip monos.
	if nFollowers > 0 {
		st.res.FollowerBudget.Downlink(6 * 60)
	}
}
