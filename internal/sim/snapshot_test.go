package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"eagleeye/internal/constellation"
	"eagleeye/internal/dataset"
)

// snapWorld is the differential scenario shared by the checkpoint tests:
// two leader groups so Workers=4 has real parallelism, warm start left on
// (the default), recapture dedup on so the capCells ground-cell registry
// exercises its snapshot path.
func snapWorld() (*dataset.Set, Config) {
	w := smallWorld(1200, 80)
	return w, Config{
		Constellation:  constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
		App:            w,
		DurationS:      2 * 3600,
		Seed:           13,
		Workers:        4,
		RecaptureDedup: true,
	}
}

func mustRunner(t *testing.T, cfg Config) *Runner {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func advance(t *testing.T, r *Runner, untilS float64) {
	t.Helper()
	if err := r.Advance(untilS); err != nil {
		t.Fatal(err)
	}
}

func result(t *testing.T, r *Runner) *Result {
	t.Helper()
	res, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunnerWindowedMatchesOneShot pins the windowing guarantee: any
// sequence of Advance boundaries -- frame-aligned or not, including no-op
// and duplicate boundaries -- produces the same Result and trace stream as
// the one-shot Run.
func TestRunnerWindowedMatchesOneShot(t *testing.T) {
	_, cfg := snapWorld()
	var oneTr bytes.Buffer
	one := cfg
	one.Trace = &oneTr
	oneRes := run(t, one)

	var winTr bytes.Buffer
	winCfg := cfg
	winCfg.Trace = &winTr
	r := mustRunner(t, winCfg)
	// Odd boundaries on purpose: mid-frame cuts, a repeat, and an
	// overshoot past the duration (clamped).
	for _, b := range []float64{601.5, 1800, 1800, 3777, 3600 * 1.5, 1e9} {
		advance(t, r, b)
	}
	if !r.Done() {
		t.Fatalf("runner not done at %v / %v", r.Now(), r.Duration())
	}
	winRes := result(t, r)
	if na, nb := normalized(oneRes), normalized(winRes); !reflect.DeepEqual(na, nb) {
		t.Errorf("windowed result diverges from one-shot:\n%+v\nvs\n%+v", na, nb)
	}
	ta := decodeTrace(t, &oneTr)
	tb := decodeTrace(t, &winTr)
	if !reflect.DeepEqual(ta, tb) {
		t.Errorf("windowed trace diverges: %d vs %d records", len(ta), len(tb))
	}
}

// TestRunnerMidRunResultRepeatable pins that Result is a pure query: two
// calls at the same boundary agree exactly, and querying mid-run does not
// perturb the final answer.
func TestRunnerMidRunResultRepeatable(t *testing.T) {
	_, cfg := snapWorld()
	r := mustRunner(t, cfg)
	advance(t, r, 3600)
	a := result(t, r)
	b := result(t, r)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated mid-run Result diverges:\n%+v\nvs\n%+v", a, b)
	}
	advance(t, r, cfg.DurationS)
	fin := result(t, r)

	undisturbed := run(t, cfg)
	if na, nb := normalized(fin), normalized(undisturbed); !reflect.DeepEqual(na, nb) {
		t.Errorf("mid-run queries perturbed the final result:\n%+v\nvs\n%+v", na, nb)
	}
}

// TestSnapshotRoundTripDifferential is the acceptance differential: stop
// at a boundary, snapshot, restore into a fresh process-equivalent runner
// (Workers=4, warm start on), continue -- the Result and the concatenated
// trace must match an uninterrupted run exactly (modulo wall-clock
// fields). Boundaries cover early/mid/late cuts and a non-frame-aligned
// instant.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation in -short mode")
	}
	_, cfg := snapWorld()
	var refTr bytes.Buffer
	ref := cfg
	ref.Trace = &refTr
	refRes := run(t, ref)
	refRecs := decodeTrace(t, &refTr)

	for _, cutS := range []float64{600, 1807.25, 3600, 6321} {
		var pre, post bytes.Buffer
		first := cfg
		first.Trace = &pre
		r := mustRunner(t, first)
		advance(t, r, cutS)
		var snap bytes.Buffer
		if err := r.Snapshot(&snap); err != nil {
			t.Fatalf("cut %v: snapshot: %v", cutS, err)
		}
		r.Close() // the "process" dies here

		second := cfg
		second.Trace = &post
		rr, err := RestoreRunner(second, bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatalf("cut %v: restore: %v", cutS, err)
		}
		if rr.Now() != cutS {
			t.Fatalf("cut %v: restored at %v", cutS, rr.Now())
		}
		advance(t, rr, cfg.DurationS)
		res := result(t, rr)
		rr.Close()

		if na, nb := normalized(refRes), normalized(res); !reflect.DeepEqual(na, nb) {
			t.Errorf("cut %v: restored result diverges from uninterrupted:\n%+v\nvs\n%+v", cutS, na, nb)
		}
		joined := bytes.NewBufferString(pre.String() + post.String())
		recs := decodeTrace(t, joined)
		if !reflect.DeepEqual(refRecs, recs) {
			t.Errorf("cut %v: stitched trace diverges: %d vs %d records", cutS, len(refRecs), len(recs))
		}
	}
}

// TestSnapshotResnapshotByteIdentical: restoring and immediately
// re-snapshotting must reproduce the snapshot byte for byte -- the format
// is canonical (sorted cell keys, fixed field order), so equality is
// exact, not structural.
func TestSnapshotResnapshotByteIdentical(t *testing.T) {
	_, cfg := snapWorld()
	r := mustRunner(t, cfg)
	advance(t, r, 3600)
	var a bytes.Buffer
	if err := r.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	rr, err := RestoreRunner(cfg, bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	var b bytes.Buffer
	if err := rr.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("re-snapshot differs: %d vs %d bytes", a.Len(), b.Len())
	}
}

// TestSnapshotStripBaseline covers the strip-job snapshot path (the
// baselines have no groups, solver state or RNG, but do carry the
// duration-derived energy finalize).
func TestSnapshotStripBaseline(t *testing.T) {
	w := smallWorld(1000, 81)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.HighResOnly, Satellites: 3},
		App:           w, DurationS: 2 * 3600, Seed: 5, Workers: 2,
	}
	refRes := run(t, cfg)

	r := mustRunner(t, cfg)
	advance(t, r, 2500)
	var snap bytes.Buffer
	if err := r.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	r.Close()
	rr, err := RestoreRunner(cfg, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	advance(t, rr, cfg.DurationS)
	res := result(t, rr)
	if na, nb := normalized(refRes), normalized(res); !reflect.DeepEqual(na, nb) {
		t.Errorf("strip restore diverges:\n%+v\nvs\n%+v", na, nb)
	}
}

// TestSnapshotRestoreAcrossWorkerCounts: Workers is an execution knob,
// not scenario identity -- a snapshot from a sequential run restores into
// a parallel one (and vice versa) with identical results.
func TestSnapshotRestoreAcrossWorkerCounts(t *testing.T) {
	_, cfg := snapWorld()
	refRes := run(t, cfg)

	seq := cfg
	seq.Workers = 1
	r := mustRunner(t, seq)
	advance(t, r, 3600)
	var snap bytes.Buffer
	if err := r.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	r.Close()

	par := cfg
	par.Workers = 4
	rr, err := RestoreRunner(par, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	advance(t, rr, cfg.DurationS)
	res := result(t, rr)
	if na, nb := normalized(refRes), normalized(res); !reflect.DeepEqual(na, nb) {
		t.Errorf("cross-worker restore diverges:\n%+v\nvs\n%+v", na, nb)
	}
}

// TestSnapshotRejects pins the failure modes: junk, truncation, version
// skew, and -- most importantly -- a scenario digest mismatch, which is
// what stops a snapshot from silently resuming under different physics.
func TestSnapshotRejects(t *testing.T) {
	_, cfg := snapWorld()
	r := mustRunner(t, cfg)
	advance(t, r, 1800)
	var snap bytes.Buffer
	if err := r.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreRunner(cfg, strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := RestoreRunner(cfg, bytes.NewReader(snap.Bytes()[:snap.Len()/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}

	other := cfg
	other.Seed = cfg.Seed + 1
	if _, err := RestoreRunner(other, bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("digest mismatch (different seed) accepted")
	} else if !strings.Contains(err.Error(), "different scenario") {
		t.Errorf("digest mismatch error unclear: %v", err)
	}

	// Execution knobs must NOT change the digest.
	knobs := cfg
	knobs.Workers = 1
	knobs.DisableWarmStart = true
	if rr, err := RestoreRunner(knobs, bytes.NewReader(snap.Bytes())); err != nil {
		t.Errorf("execution-knob change refused: %v", err)
	} else {
		rr.Close()
	}

	bad := append([]byte(nil), snap.Bytes()...)
	bad[0] ^= 0xff
	if _, err := RestoreRunner(cfg, bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), snap.Bytes()...)
	bad[9] ^= 0xff // version low byte
	if _, err := RestoreRunner(cfg, bytes.NewReader(bad)); err == nil {
		t.Error("version skew accepted")
	}
}

// TestSnapshotOfFailedOrClosedRunner: poisoned and closed runners refuse
// to snapshot instead of persisting a half-advanced state.
func TestSnapshotOfFailedOrClosedRunner(t *testing.T) {
	_, cfg := snapWorld()
	r := mustRunner(t, cfg)
	r.Close()
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err == nil {
		t.Error("closed runner snapshotted")
	}
}
