package sim

import (
	"fmt"
	"io"
	"math"

	"eagleeye/internal/constellation"
	"eagleeye/internal/dataset"
	"eagleeye/internal/detect"
)

// Runner is the windowed form of the simulator: the same deterministic
// parallel machinery as Run, exposed as an advanceable object so callers
// can interleave simulation with snapshots, trace-sink swaps, and
// mid-horizon queries. Advancing to the full duration in one window is
// exactly Run; advancing in any sequence of windows produces the same
// Result and trace bytes, because jobs keep their steppers, solver
// warm-start state and accumulators live between windows and the ordered
// merge is repeated from scratch at every Result call.
//
// A Runner is not safe for concurrent use; one goroutine drives it.
type Runner struct {
	cfg    Config
	cons   *constellation.Constellation
	index  *dataset.TimedIndex
	sm     *simMetrics
	jobs   []simJob
	tw     *traceWriter
	nowS   float64
	digest uint64
	failed error
	closed bool
}

// simJob is one persistent unit of parallel work: a leader group or a
// strip satellite.
type simJob interface {
	state() *runState
	// run advances the job's frame loop to the window boundary.
	run(untilS float64) error
	// finalize books duration-derived accounting for the elapsed span
	// into the aggregate (called once per Result, in job order).
	finalize(agg *runState, elapsedS float64)
	// snapExtra / restoreExtra serialize the job's non-accumulator
	// cursors (frame count, event cursor); everything else is replayed.
	snapExtra(bw *binWriter)
	restoreExtra(br *binReader) error
	// verifyReplay checks the post-restore replay landed exactly on the
	// snapshot's frame cursor.
	verifyReplay() error
	close()
}

// NewRunner validates the configuration, builds the constellation and
// the per-job state, and positions the simulation at t=0. Close must be
// called when done (Run does; Session and server own long-lived runners).
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("sim: no app workload")
	}
	if cfg.DurationS == 0 {
		cfg.DurationS = 86400
	}
	if cfg.Detector.PerTileS == 0 {
		cfg.Detector = detect.YoloN()
	}
	if cfg.Tiling.FramePx == 0 {
		cfg.Tiling = detect.PaperTiling()
	}
	cons, err := constellation.Build(cfg.Constellation, DefaultEpoch)
	if err != nil {
		return nil, err
	}
	switch cons.Config.Kind {
	case constellation.LowResOnly, constellation.HighResOnly,
		constellation.LeaderFollower, constellation.MixCamera:
	default:
		return nil, fmt.Errorf("sim: unsupported kind %v", cons.Config.Kind)
	}
	perJob, err := validateEvents(cfg.Events, cons)
	if err != nil {
		return nil, err
	}

	var sm *simMetrics
	if cfg.Metrics != nil {
		sm = newSimMetrics(cfg.Metrics)
	}
	r := &Runner{
		cfg:  cfg,
		cons: cons,
		// The timed index is the only state shared between jobs; it is
		// safe for concurrent readers.
		index: dataset.NewTimedIndex(cfg.App, 2, 600),
		sm:    sm,
		tw:    newTraceWriter(cfg.Trace),
	}
	r.digest = configDigest(cfg, cons)

	newState := func(i int) *runState {
		st := newRunState(cfg, cons, r.index)
		if sm != nil {
			// The shard view is keyed by job index, not worker: totals
			// then sum identically however jobs land on workers.
			st.met = sm.job(i)
		}
		if cfg.Flight != nil {
			// One builder (span arena) per job: Start/Add run on the
			// job's goroutine, only the finished tree is offered under
			// the recorder's mutex.
			st.fb = cfg.Flight.Builder()
		}
		return st
	}
	switch cons.Config.Kind {
	case constellation.LowResOnly, constellation.HighResOnly:
		for si, sat := range cons.Sats {
			r.jobs = append(r.jobs, newStripJob(newState(si), si, sat, perJob[si]))
		}
	default:
		for gi := range cons.Groups {
			r.jobs = append(r.jobs, newGroupJob(newState(gi), gi, cons.Groups[gi], perJob[gi]))
		}
	}
	if sm != nil {
		sm.targetsTotal.Set(float64(len(cfg.App.Targets)))
	}
	return r, nil
}

// Now returns the simulated time the runner has advanced to.
func (r *Runner) Now() float64 { return r.nowS }

// Duration returns the configured total simulated span.
func (r *Runner) Duration() float64 { return r.cfg.DurationS }

// Done reports whether the runner has reached the configured duration.
func (r *Runner) Done() bool { return r.nowS >= r.cfg.DurationS }

// SetTrace swaps the trace sink at a window boundary. Frames processed
// from the next Advance on are staged and written to w; nil disables
// tracing. Records already written to a previous sink are not repeated.
func (r *Runner) SetTrace(w io.Writer) {
	r.tw = newTraceWriter(w)
	on := w != nil
	for _, j := range r.jobs {
		j.state().traceOn = on
	}
}

// workerCount resolves the effective pool size for this runner.
func (r *Runner) workerCount() int {
	return poolWorkers(r.cfg.Workers, len(r.jobs))
}

// Advance runs every job forward so all frames strictly before untilS
// are processed, then drains the staged trace records in job order.
// untilS is clamped to the configured duration; a boundary at or before
// the current position is a no-op. On a job error the simulation is
// poisoned (every later call returns the same error), but completed
// jobs' staged trace records -- and the failing job's prefix -- are
// still written, so an aborted long run keeps its trace.
func (r *Runner) Advance(untilS float64) error {
	if r.closed {
		return fmt.Errorf("sim: runner is closed")
	}
	if r.failed != nil {
		return r.failed
	}
	if math.IsNaN(untilS) {
		return fmt.Errorf("sim: advance to NaN")
	}
	if untilS > r.cfg.DurationS {
		untilS = r.cfg.DurationS
	}
	if untilS > r.nowS {
		errs := make([]error, len(r.jobs))
		runParallel(r.workerCount(), len(r.jobs), func(i int) {
			errs[i] = r.jobs[i].run(untilS)
		})
		r.nowS = untilS
		r.drainTraces()
		// First error in job order, not completion order, so parallel
		// runs report the same error as sequential ones.
		for _, err := range errs {
			if err != nil {
				r.failed = err
				return err
			}
		}
	}
	if err := r.tw.Err(); err != nil {
		err = fmt.Errorf("sim: trace: %w", err)
		r.failed = err
		return err
	}
	return nil
}

// drainTraces writes the jobs' staged records in job order, flushing at
// every frame-group boundary so a consumer (or a crash) mid-emission
// observes whole groups rather than a truncated 64 KiB tail.
func (r *Runner) drainTraces() {
	for _, j := range r.jobs {
		st := j.state()
		for _, rec := range st.trace {
			r.tw.emit(rec)
		}
		st.traceEmitted += int64(len(st.trace))
		st.trace = st.trace[:0]
		r.tw.flush()
	}
}

// Result aggregates the simulation up to the current position. It is
// repeatable -- the ordered merge runs from scratch against the live job
// accumulators -- and at the full duration it is byte-identical to what
// the one-shot Run returns.
func (r *Runner) Result() (*Result, error) {
	if r.failed != nil {
		return nil, r.failed
	}
	if r.closed {
		return nil, fmt.Errorf("sim: runner is closed")
	}
	res := &Result{
		Kind:         r.cons.Config.Kind.String(),
		App:          r.cfg.App.Name,
		TotalTargets: len(r.cfg.App.Targets),
	}
	// Deterministic merge: fold private accumulators in job order, so a
	// parallel run reduces exactly like the sequential one.
	agg := newRunState(r.cfg, r.cons, r.index)
	agg.res = res
	for _, j := range r.jobs {
		j.state().mergeInto(agg)
		j.finalize(agg, r.nowS)
	}
	for _, c := range agg.captured {
		if c {
			res.HighResCaptured++
		}
	}
	for _, s := range agg.seen {
		if s {
			res.LowResSeen++
		}
	}
	agg.finalizeEnergy(r.nowS)
	agg.finalizeComms(r.nowS)
	if r.sm != nil {
		if r.Done() {
			r.sm.progress.Set(1)
		}
		r.sm.targetsSeen.Set(float64(res.LowResSeen))
		r.sm.targetsCaptured.Set(float64(res.HighResCaptured))
	}
	return res, nil
}

// Close releases pooled solver state. It is idempotent; the runner is
// unusable afterwards.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, j := range r.jobs {
		j.close()
	}
}
