package sim

// ImageTargetHist is the streaming replacement for the old per-frame
// TargetsPerImage slice: a fixed-bucket histogram of truth target counts
// over non-empty leader frames (Fig. 12b's CDF). A week-long run emits
// hundreds of thousands of frames; the histogram holds them in constant
// memory while keeping counts below the overflow bucket exact, which
// covers every statistic the figures report (p50/p90/p99, the >19-target
// share) -- only the extreme tail collapses, and Max preserves its
// endpoint.
type ImageTargetHist struct {
	// Buckets[n] counts frames whose footprint held exactly n active
	// targets for n < imageHistOverflow; Buckets[imageHistOverflow]
	// collects every denser frame.
	Buckets [imageHistBuckets]int64
	// Max is the largest per-frame count observed, exact even when the
	// frame landed in the overflow bucket.
	Max int
}

const (
	imageHistBuckets  = 64
	imageHistOverflow = imageHistBuckets - 1
)

// Observe records one non-empty frame with n truth targets in view.
func (h *ImageTargetHist) Observe(n int) {
	if n < 0 {
		return
	}
	b := n
	if b > imageHistOverflow {
		b = imageHistOverflow
	}
	h.Buckets[b]++
	if n > h.Max {
		h.Max = n
	}
}

// Merge folds o into h (bucket-wise sums; Max is the maximum). Addition
// is commutative on int64 counts, so merge order does not matter.
func (h *ImageTargetHist) Merge(o *ImageTargetHist) {
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Count returns the number of frames observed.
func (h *ImageTargetHist) Count() int64 {
	var n int64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// Percentile returns the nearest-rank p-th percentile (p in (0,100]) of
// the per-frame target count. Ranks that land in the overflow bucket
// return Max, the only tail statistic the histogram retains exactly.
func (h *ImageTargetHist) Percentile(p float64) int {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(total))
	if float64(rank)*100 < p*float64(total) { // ceil
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < imageHistOverflow; i++ {
		cum += h.Buckets[i]
		if cum >= rank {
			return i
		}
	}
	return h.Max
}

// CountOver returns how many frames held strictly more than n targets;
// exact for n < imageHistOverflow (Fig. 12b reports the >19 share).
func (h *ImageTargetHist) CountOver(n int) int64 {
	if n < 0 {
		n = -1
	}
	if n >= imageHistOverflow {
		n = imageHistOverflow - 1
	}
	var c int64
	for i := n + 1; i < imageHistBuckets; i++ {
		c += h.Buckets[i]
	}
	return c
}
