package sim

import (
	"runtime"
	"sync"
)

// Parallel execution: constellation groups share no state by
// construction (§3's organization gives each leader its own followers
// and ground track), so the simulator runs one job per group (or per
// satellite for the strip baselines) on a bounded worker pool. Each job
// owns a private runState; the Runner merges them in job order, which
// keeps any worker count byte-identical to a sequential run at a fixed
// seed. The only shared structure is the dataset.TimedIndex, which is
// safe for concurrent readers.

// poolWorkers resolves a Workers setting against the job count: 0 means
// GOMAXPROCS, and there is no point spawning more workers than jobs.
func poolWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	return workers
}

// runParallel executes fn(0..n-1) on the given number of goroutines (<=1
// runs inline). It returns when every call has; error collection is the
// caller's, indexed so job order -- not completion order -- decides
// which error surfaces.
func runParallel(workers, n int, fn func(int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
