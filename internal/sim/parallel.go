package sim

import (
	"runtime"
	"sync"

	"eagleeye/internal/constellation"
	"eagleeye/internal/dataset"
)

// Parallel execution: constellation groups share no state by
// construction (§3's organization gives each leader its own followers
// and ground track), so the simulator runs one job per group (or per
// satellite for the strip baselines) on a bounded worker pool. Each job
// owns a private runState; Run merges them in job order afterwards,
// which keeps any worker count byte-identical to a sequential run at a
// fixed seed. The only shared structure is the dataset.TimedIndex, which
// is safe for concurrent readers.

// runJobs executes the jobs on cfg.Workers goroutines (0 means
// GOMAXPROCS) and returns the private states in job order. The
// first-failing job's error (in job order, not completion order) is
// returned so parallel runs report the same error as sequential ones.
// States are returned even on error: the caller salvages the staged
// trace records of completed (and partially completed) jobs so an
// aborted run still leaves a usable trace prefix.
func runJobs(cfg Config, cons *constellation.Constellation, index *dataset.TimedIndex, sm *simMetrics, jobs []func(*runState) error) ([]*runState, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	states := make([]*runState, len(jobs))
	errs := make([]error, len(jobs))
	runOne := func(i int) {
		st := newRunState(cfg, cons, index)
		if sm != nil {
			// The shard view is keyed by job index, not worker: totals
			// then sum identically however jobs land on workers.
			st.met = sm.job(i)
		}
		states[i] = st
		errs[i] = jobs[i](st)
	}
	if workers <= 1 {
		for i := range jobs {
			runOne(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runOne(i)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return states, err
		}
	}
	return states, nil
}
