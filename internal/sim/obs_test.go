package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"eagleeye/internal/constellation"
	"eagleeye/internal/obs"
)

// deterministicCounters is the metric set whose totals must be identical
// for any worker count: integer event counters fed from the same per-job
// accounting that makes the simulation itself worker-independent. Timing
// series, deadline misses and solver node/iteration counts are excluded
// -- they depend on wall clock and search limits, exactly like the
// fields sim_test.go's normalized() masks.
var deterministicCounters = []string{
	"eagleeye_frames_total",
	"eagleeye_frames_with_targets_total",
	"eagleeye_detections_total",
	"eagleeye_clusters_total",
	"eagleeye_captures_total",
	"eagleeye_sched_solves_total",
	"eagleeye_recapture_suppressed_total",
	"eagleeye_crosslink_bytes_total",
}

func TestMetricsMatchResult(t *testing.T) {
	w := polarWorld(1200, 7)
	reg := obs.NewRegistry()
	r := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           w, DurationS: 3 * 3600, Seed: 3,
		RecaptureDedup: true, Metrics: reg,
	})
	checks := []struct {
		name string
		want int64
	}{
		{"eagleeye_frames_total", int64(r.Frames)},
		{"eagleeye_frames_with_targets_total", int64(r.FramesWithTargets)},
		{"eagleeye_detections_total", int64(r.Detections)},
		{"eagleeye_clusters_total", int64(r.Clusters)},
		{"eagleeye_captures_total", int64(r.Captures)},
		{"eagleeye_sched_solves_total", int64(r.SchedSolves)},
		{"eagleeye_recapture_suppressed_total", int64(r.RecaptureSuppressed)},
		{"eagleeye_crosslink_bytes_total", int64(r.CrosslinkBytes)},
		{"eagleeye_missed_deadlines_total", int64(r.MissedDeadline)},
	}
	if r.Captures == 0 || r.Detections == 0 {
		t.Fatal("degenerate run: no activity to check")
	}
	for _, c := range checks {
		if got := reg.CounterValue(c.name); got != c.want {
			t.Errorf("%s = %d, Result says %d", c.name, got, c.want)
		}
	}
	if got := reg.GaugeValue("eagleeye_targets_captured"); got != float64(r.HighResCaptured) {
		t.Errorf("eagleeye_targets_captured = %v, Result says %d", got, r.HighResCaptured)
	}
	if got := reg.GaugeValue("eagleeye_sim_progress"); got != 1 {
		t.Errorf("eagleeye_sim_progress = %v at end of run", got)
	}
	// The solver stack must have been exercised and fed both consumers'
	// LP layers (exact values are limit-dependent, presence is not).
	for _, solver := range []string{"sched", "cluster"} {
		lbl := obs.Label{Key: "solver", Value: solver}
		if reg.CounterValue("eagleeye_mip_solves_total", lbl) == 0 {
			t.Errorf("no MIP solves recorded for %q", solver)
		}
		if reg.CounterValue("eagleeye_lp_iters_total", lbl) == 0 {
			t.Errorf("no LP iterations recorded for %q", solver)
		}
	}
	// Stage spans: every non-empty frame times detect/cluster/sched, so
	// the nanosecond totals must be populated.
	for _, stage := range []string{"detect", "cluster", "sched", "execute", "account", "ephemeris"} {
		lbl := obs.Label{Key: "stage", Value: stage}
		if reg.CounterValue("eagleeye_stage_nanoseconds_total", lbl) == 0 {
			t.Errorf("stage %q recorded no wall time", stage)
		}
	}
}

func TestMetricsWorkerDeterminism(t *testing.T) {
	w := polarWorld(1500, 11)
	runWith := func(workers int) *obs.Registry {
		reg := obs.NewRegistry()
		run(t, Config{
			Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
			App:           w, DurationS: 3 * 3600, Seed: 9,
			Workers: workers, Metrics: reg,
		})
		return reg
	}
	r1 := runWith(1)
	r4 := runWith(4)
	for _, name := range deterministicCounters {
		v1, v4 := r1.CounterValue(name), r4.CounterValue(name)
		if v1 != v4 {
			t.Errorf("%s: Workers=1 total %d != Workers=4 total %d", name, v1, v4)
		}
		if v1 == 0 && name != "eagleeye_recapture_suppressed_total" {
			t.Errorf("%s: zero on an active run", name)
		}
	}
}

func TestMetricsStripBaseline(t *testing.T) {
	w := polarWorld(600, 13)
	reg := obs.NewRegistry()
	r := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.HighResOnly, Satellites: 4},
		App:           w, DurationS: 2 * 3600, Seed: 2, Metrics: reg,
	})
	if got := reg.CounterValue("eagleeye_frames_total"); got != int64(r.Frames) {
		t.Errorf("strip frames counter %d, Result says %d", got, r.Frames)
	}
	if got := reg.CounterValue("eagleeye_frames_with_targets_total"); got != int64(r.FramesWithTargets) {
		t.Errorf("strip frames-with-targets counter %d, Result says %d", got, r.FramesWithTargets)
	}
}

// TestTraceMetricsConsistency cross-checks the two observability
// channels: the sum of per-frame capture/detection counts in the trace
// must equal the corresponding counters, frame for frame.
func TestTraceMetricsConsistency(t *testing.T) {
	w := polarWorld(1000, 17)
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 4,
		Trace: &buf, Metrics: reg,
	})
	var captures, detections, clusters, nonEmpty int64
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec TraceRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		captures += int64(rec.Captures)
		detections += int64(rec.Detected)
		clusters += int64(rec.Clusters)
		nonEmpty++
	}
	if nonEmpty == 0 {
		t.Fatal("trace is empty")
	}
	if got := reg.CounterValue("eagleeye_captures_total"); got != captures {
		t.Errorf("captures_total = %d, trace sums to %d", got, captures)
	}
	if got := reg.CounterValue("eagleeye_detections_total"); got != detections {
		t.Errorf("detections_total = %d, trace sums to %d", got, detections)
	}
	if got := reg.CounterValue("eagleeye_clusters_total"); got != clusters {
		t.Errorf("clusters_total = %d, trace sums to %d", got, clusters)
	}
	if got := reg.CounterValue("eagleeye_sched_solves_total"); got != nonEmpty {
		t.Errorf("sched_solves_total = %d, trace has %d records", got, nonEmpty)
	}
}

// TestMetricsDoNotPerturbSimulation guards the enabled path's
// correctness (not just the disabled path's cost): instrumentation must
// not change what the simulator computes.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	w := polarWorld(800, 19)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 2 * 3600, Seed: 6,
	}
	bare := run(t, cfg)
	cfg.Metrics = obs.NewRegistry()
	instrumented := run(t, cfg)
	if bare.HighResCaptured != instrumented.HighResCaptured ||
		bare.Captures != instrumented.Captures ||
		bare.Detections != instrumented.Detections ||
		bare.CrosslinkBytes != instrumented.CrosslinkBytes {
		t.Errorf("metrics changed the simulation: %+v vs %+v", bare, instrumented)
	}
}

// benchmarkRunMetrics is benchmarkRun with a live registry, for the
// enabled-mode overhead comparison against BenchmarkRunWorkers1.
func benchmarkRunMetrics(b *testing.B, workers int) {
	w := smallWorld(2000, 60)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
		App:           w, DurationS: 2 * 3600, Seed: 1, Workers: workers,
		Metrics: obs.NewRegistry(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunWorkers1Metrics(b *testing.B) { benchmarkRunMetrics(b, 1) }
func BenchmarkRunWorkers4Metrics(b *testing.B) { benchmarkRunMetrics(b, 4) }
