package sim

import (
	"fmt"
	"math"
	"sort"

	"eagleeye/internal/constellation"
)

// Mid-run fault events. Week-long horizons make satellite churn a
// first-class concern: the multistage-reconfiguration literature plans
// around it, and a durable service must keep statistics honest across a
// failure. Events are injected at frame boundaries -- the first frame
// whose timestamp is >= AtS -- so they are deterministic for any worker
// count and reproduce exactly across checkpoint/restore (the restore
// replay walks the same boundaries).

// EventKind selects what fails.
type EventKind uint8

const (
	// EventFollowerFail removes one follower from its group: it stops
	// executing schedules and stops booking capture/slew energy. In the
	// strip baselines (where there are no groups) any fail event retires
	// the addressed satellite. A leader-follower group whose followers
	// have all failed degrades to low-res seen accounting: the leader
	// keeps imaging and computing, but there is no payload left to task,
	// so the detect/schedule pipeline is skipped.
	EventFollowerFail EventKind = iota + 1
	// EventLeaderFail fails the group's current leader. The first
	// surviving follower is re-elected: it leaves the follower set,
	// restarts the leader ground track from its own ephemeris at the
	// event boundary, and runs detection with the group's low-res camera
	// parameters (the bus carries a spare low-res payload; all leaders
	// are built identically, so the modeled camera is exact). A group
	// with no survivor -- or a mix-camera satellite, which has no spare
	// bus -- goes dark.
	EventLeaderFail
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventFollowerFail:
		return "follower-fail"
	case EventLeaderFail:
		return "leader-fail"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scheduled mid-run fault.
type Event struct {
	// AtS is the simulated time the fault occurs; it takes effect at the
	// first frame boundary at or after this instant.
	AtS float64
	// Kind selects the fault.
	Kind EventKind
	// Group addresses the leader group (leader-follower, mix-camera) or
	// the satellite index (strip baselines).
	Group int
	// Follower addresses the failing follower within the group
	// (EventFollowerFail on leader-follower constellations only).
	Follower int
}

// validateEvents checks the schedule against the built constellation and
// returns the events grouped per job in deterministic order (time, then
// configuration order within equal times).
func validateEvents(events []Event, cons *constellation.Constellation) ([][]Event, error) {
	nJobs := len(cons.Groups)
	strip := false
	switch cons.Config.Kind {
	case constellation.LowResOnly, constellation.HighResOnly:
		nJobs = len(cons.Sats)
		strip = true
	}
	perJob := make([][]Event, nJobs)
	for i, ev := range events {
		if math.IsNaN(ev.AtS) || math.IsInf(ev.AtS, 0) || ev.AtS < 0 {
			return nil, fmt.Errorf("sim: event %d: invalid time %v", i, ev.AtS)
		}
		if ev.Kind != EventFollowerFail && ev.Kind != EventLeaderFail {
			return nil, fmt.Errorf("sim: event %d: unknown kind %d", i, int(ev.Kind))
		}
		if ev.Group < 0 || ev.Group >= nJobs {
			return nil, fmt.Errorf("sim: event %d: group %d out of range [0,%d)", i, ev.Group, nJobs)
		}
		if !strip && ev.Kind == EventFollowerFail {
			nf := len(cons.Groups[ev.Group].Followers)
			if nf == 0 {
				return nil, fmt.Errorf("sim: event %d: follower-fail on group %d which has no followers (mix-camera has no follower to fail; use leader-fail)", i, ev.Group)
			}
			if ev.Follower < 0 || ev.Follower >= nf {
				return nil, fmt.Errorf("sim: event %d: follower %d out of range [0,%d)", i, ev.Follower, nf)
			}
		}
		perJob[ev.Group] = append(perJob[ev.Group], ev)
	}
	for _, evs := range perJob {
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].AtS < evs[b].AtS })
	}
	return perJob, nil
}
