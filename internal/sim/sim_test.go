package sim

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"eagleeye/internal/constellation"
	"eagleeye/internal/dataset"
	"eagleeye/internal/geo"
	"eagleeye/internal/obs"
	"eagleeye/internal/sched"
)

// smallWorld builds a compact deterministic target set so tests run fast:
// targets clustered in a handful of equatorial and mid-latitude spots the
// paper-orbit ground track crosses within a few hours.
func smallWorld(n int, seed int64) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	s := &dataset.Set{Name: "small"}
	centers := []geo.LatLon{
		{Lat: 0, Lon: 0}, {Lat: 20, Lon: 40}, {Lat: -30, Lon: 120},
		{Lat: 50, Lon: -80}, {Lat: -10, Lon: -60},
	}
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		s.Targets = append(s.Targets, dataset.Target{
			ID:    i,
			Pos:   geo.LatLon{Lat: c.Lat + rng.NormFloat64()*3, Lon: c.Lon + rng.NormFloat64()*3}.Normalize(),
			Value: 0.5 + 0.5*rng.Float64(),
		})
	}
	return s
}

// denseWorld concentrates n targets tightly (sigma ~40 km) on the same
// sites smallWorld uses, so single leader frames hold enough targets to
// cross the spatial-sharding crossover.
func denseWorld(n int, seed int64) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	s := &dataset.Set{Name: "dense"}
	centers := []geo.LatLon{
		{Lat: 0, Lon: 0}, {Lat: 20, Lon: 40}, {Lat: -30, Lon: 120},
		{Lat: 50, Lon: -80}, {Lat: -10, Lon: -60},
	}
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		s.Targets = append(s.Targets, dataset.Target{
			ID:    i,
			Pos:   geo.LatLon{Lat: c.Lat + rng.NormFloat64()*0.35, Lon: c.Lon + rng.NormFloat64()*0.35}.Normalize(),
			Value: 0.5 + 0.5*rng.Float64(),
		})
	}
	return s
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := Run(Config{App: smallWorld(10, 1)}); err == nil {
		t.Error("zero satellites accepted")
	}
}

func TestLowResSeesMoreThanHighRes(t *testing.T) {
	w := smallWorld(2000, 2)
	lo := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LowResOnly, Satellites: 2},
		App:           w, DurationS: 4 * 3600, Seed: 1,
	})
	hi := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.HighResOnly, Satellites: 2},
		App:           w, DurationS: 4 * 3600, Seed: 1,
	})
	if lo.CoveragePct() <= hi.CoveragePct() {
		t.Errorf("low-res %.2f%% not above high-res %.2f%%", lo.CoveragePct(), hi.CoveragePct())
	}
	// Swath ratio is 10: low-res should see roughly an order of magnitude
	// more (loose bounds; geometry and clustering add variance).
	if lo.CoveragePct() < 3*hi.CoveragePct() {
		t.Errorf("low-res %.2f%% not >> high-res %.2f%%", lo.CoveragePct(), hi.CoveragePct())
	}
	if hi.HighResCaptured != hi.LowResSeen {
		t.Error("high-res-only: captured should equal seen")
	}
}

func TestEagleEyeBeatsHighResOnly(t *testing.T) {
	// The paper's headline: same satellite count, more high-res coverage.
	w := smallWorld(2000, 3)
	ee := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           w, DurationS: 4 * 3600, Seed: 1, ValidateSchedules: true,
	})
	hi := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.HighResOnly, Satellites: 4},
		App:           w, DurationS: 4 * 3600, Seed: 1,
	})
	if ee.CoveragePct() <= hi.CoveragePct() {
		t.Errorf("EagleEye %.2f%% not above high-res-only %.2f%%", ee.CoveragePct(), hi.CoveragePct())
	}
	if ee.Captures == 0 || ee.Detections == 0 || ee.Clusters == 0 {
		t.Errorf("EagleEye pipeline idle: %+v", ee)
	}
	if ee.SchedSolves != ee.FramesWithTargets {
		t.Errorf("solves %d != non-empty frames %d", ee.SchedSolves, ee.FramesWithTargets)
	}
}

func TestEagleEyeBoundedByItsLeaders(t *testing.T) {
	// EagleEye cannot capture what its leaders never see.
	w := smallWorld(1500, 4)
	ee := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           w, DurationS: 4 * 3600, Seed: 1,
	})
	if ee.HighResCaptured > ee.LowResSeen {
		t.Errorf("captured %d > seen %d", ee.HighResCaptured, ee.LowResSeen)
	}
}

func TestDeterminism(t *testing.T) {
	w := smallWorld(800, 5)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 2 * 3600, Seed: 42,
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.HighResCaptured != b.HighResCaptured || a.Detections != b.Detections ||
		a.LowResSeen != b.LowResSeen || a.Captures != b.Captures {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

// normalized strips the timing-derived fields (scheduler wall clock and
// deadline misses vary with machine load) so results can be compared
// byte-for-byte across worker counts.
func normalized(r *Result) Result {
	c := *r
	c.SchedWallTotal = 0
	c.SchedWallMax = 0
	c.MissedDeadline = 0
	c.SchedPivotWall = 0
	c.ClusterPivotWall = 0
	// Node/iteration counts are deterministic except when a solve is cut
	// off by its wall-clock limit, which depends on machine load.
	c.SchedNodes = 0
	c.SchedIters = 0
	c.ClusterNodes = 0
	c.ClusterIters = 0
	return c
}

// decodeTrace parses a JSON trace and zeroes its timing fields.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []TraceRecord {
	t.Helper()
	var out []TraceRecord
	dec := json.NewDecoder(buf)
	for dec.More() {
		var rec TraceRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		rec.SchedMS = 0
		rec.Deadline = false
		rec.SchedNodes = 0
		rec.SchedIters = 0
		rec.SchedGap = 0
		rec.ClusterNodes = 0
		rec.ClusterIters = 0
		out = append(out, rec)
	}
	return out
}

func TestWorkersDeterministic(t *testing.T) {
	// The tentpole guarantee: Workers=N is byte-identical to Workers=1
	// (same Result, same trace stream) for a fixed seed, across every
	// organization and with the recapture extension on.
	cases := []struct {
		name string
		cfg  Config
	}{
		{"leader-follower-4-groups", Config{
			Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
			App:           smallWorld(1500, 50), DurationS: 2 * 3600, Seed: 7,
		}},
		{"mix-camera", Config{
			Constellation: constellation.Config{Kind: constellation.MixCamera, Satellites: 4},
			App:           smallWorld(1200, 51), DurationS: 2 * 3600, Seed: 7,
		}},
		{"high-res-only", Config{
			Constellation: constellation.Config{Kind: constellation.HighResOnly, Satellites: 4},
			App:           smallWorld(1200, 52), DurationS: 2 * 3600, Seed: 7,
		}},
		{"recapture-dedup", Config{
			Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
			App:           polarWorld(600, 53), DurationS: 4 * 3600, Seed: 7, RecaptureDedup: true,
		}},
		// Intra-frame sharding: a low crossover over a dense world, with
		// the recapture hook on so the concurrent PriorityScale path is
		// exercised. The Workers=4 run parallelizes both across groups and
		// across shards inside a frame.
		{"sharded", Config{
			Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
			App:           denseWorld(1500, 56), DurationS: 2 * 3600, Seed: 7,
			ShardTargets: 48, RecaptureDedup: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tr1, trN bytes.Buffer
			seq := tc.cfg
			seq.Workers = 1
			seq.Trace = &tr1
			par := tc.cfg
			par.Workers = 4
			par.Trace = &trN
			a := run(t, seq)
			b := run(t, par)
			if na, nb := normalized(a), normalized(b); !reflect.DeepEqual(na, nb) {
				t.Errorf("Workers=1 and Workers=4 diverge:\n%+v\nvs\n%+v", na, nb)
			}
			ta := decodeTrace(t, &tr1)
			tb := decodeTrace(t, &trN)
			if !reflect.DeepEqual(ta, tb) {
				t.Errorf("traces diverge: %d vs %d records", len(ta), len(tb))
			}
		})
	}
}

func TestShardedSimEngages(t *testing.T) {
	// ShardTargets must actually fan frames out (the determinism case
	// above would pass vacuously on 1-shard plans), every stitched
	// schedule must survive the C1-C3 re-check, and the shard series must
	// be live. The registry is read after the run; shard counters are
	// deterministic (the grid is a pure function of the scenario).
	reg := obs.NewRegistry()
	r := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8},
		App:           denseWorld(1500, 56), DurationS: 2 * 3600, Seed: 7,
		ShardTargets: 48, ValidateSchedules: true, Workers: 4, Metrics: reg,
	})
	if r.Captures == 0 || r.HighResCaptured == 0 {
		t.Fatalf("sharded run captured nothing: %+v", r)
	}
	shardFrames := reg.CounterValue("eagleeye_shard_frames_total")
	shardSolves := reg.CounterValue("eagleeye_shard_solves_total")
	if shardFrames == 0 {
		t.Fatal("no frame crossed the shard crossover; the world is not dense enough")
	}
	if shardSolves <= shardFrames {
		t.Errorf("shard solves %d not above sharded frames %d", shardSolves, shardFrames)
	}
	if imb := reg.GaugeValue("eagleeye_shard_imbalance_max"); imb < 1 {
		t.Errorf("max shard imbalance %v below 1", imb)
	}
}

func TestWorkersDefaultMatchesSequential(t *testing.T) {
	// Workers=0 (all CPUs) must agree with the sequential run too.
	w := smallWorld(1000, 54)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           w, DurationS: 2 * 3600, Seed: 3,
	}
	seq := cfg
	seq.Workers = 1
	par := cfg // Workers: 0
	a := run(t, seq)
	b := run(t, par)
	if na, nb := normalized(a), normalized(b); !reflect.DeepEqual(na, nb) {
		t.Errorf("Workers=0 diverges from Workers=1:\n%+v\nvs\n%+v", na, nb)
	}
}

func TestHighResOnlyEnergyAttribution(t *testing.T) {
	// High-Res-Only satellites point-and-shoot: capture energy books to
	// the follower-role budget, no ML compute anywhere, downlink on the
	// imagery producers.
	w := smallWorld(1000, 55)
	hi := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.HighResOnly, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	if hi.LeaderBudget == nil || hi.FollowerBudget == nil {
		t.Fatal("budgets missing")
	}
	if hi.FollowerBudget.CameraJ <= 0 {
		t.Error("high-res strip capture energy missing from follower budget")
	}
	if hi.FollowerBudget.ComputeJ != 0 {
		t.Error("high-res-only satellites run no detection; compute energy booked")
	}
	if hi.FollowerBudget.TXJ <= 0 {
		t.Error("high-res imagery downlink energy missing")
	}
	if hi.LeaderBudget.CameraJ != 0 || hi.LeaderBudget.ComputeJ != 0 {
		t.Errorf("no low-res role exists in a high-res-only run: %+v", hi.LeaderBudget)
	}

	// Low-Res-Only keeps booking to the leader/mono budget: continuous
	// detection compute plus captures.
	lo := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LowResOnly, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	if lo.LeaderBudget.CameraJ <= 0 || lo.LeaderBudget.ComputeJ <= 0 {
		t.Errorf("low-res strip energy missing: %+v", lo.LeaderBudget)
	}
	if lo.FollowerBudget.CameraJ != 0 {
		t.Error("low-res-only run booked capture energy to the follower budget")
	}
}

func TestMixCameraDegradesWithComputeDelay(t *testing.T) {
	// Fig. 13: longer compute leaves less pointing time; large delays give
	// ~zero coverage.
	w := smallWorld(1500, 6)
	var prev float64 = 101
	for _, delay := range []float64{1.4, 5.5, 11.8} {
		r := run(t, Config{
			Constellation: constellation.Config{Kind: constellation.MixCamera, Satellites: 2},
			App:           w, DurationS: 4 * 3600, Seed: 1, ComputeDelayS: delay,
		})
		if r.CoveragePct() > prev+1e-9 {
			t.Errorf("coverage %.2f%% at delay %v not below %.2f%%", r.CoveragePct(), delay, prev)
		}
		prev = r.CoveragePct()
	}
	if prev > 0.5 {
		t.Errorf("11.8 s delay coverage = %.2f%%, want ~0", prev)
	}
}

func TestLeaderFollowerToleratesComputeDelay(t *testing.T) {
	// Fig. 9/13: the leader-follower organization is insensitive to
	// compute latency (the follower trails the leader by more than the
	// compute distance).
	w := smallWorld(1500, 7)
	fast := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 4 * 3600, Seed: 1, ComputeDelayS: 1.4,
	})
	slow := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 4 * 3600, Seed: 1, ComputeDelayS: 11.8,
	})
	if fast.HighResCaptured == 0 {
		t.Fatal("no captures at all")
	}
	drop := 1 - float64(slow.HighResCaptured)/float64(fast.HighResCaptured)
	if drop > 0.25 {
		t.Errorf("leader-follower lost %.0f%% coverage to compute delay; should be tolerant", drop*100)
	}
}

func TestMoreSatellitesMoreCoverage(t *testing.T) {
	w := smallWorld(2000, 8)
	prev := -1.0
	for _, n := range []int{2, 4, 8} {
		r := run(t, Config{
			Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: n},
			App:           w, DurationS: 3 * 3600, Seed: 1,
		})
		if r.CoveragePct() < prev {
			t.Errorf("coverage decreased at n=%d: %.2f%% < %.2f%%", n, r.CoveragePct(), prev)
		}
		prev = r.CoveragePct()
	}
}

func TestGreedySchedulerRuns(t *testing.T) {
	w := smallWorld(1000, 9)
	ilp := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	greedy := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1, Scheduler: sched.Greedy{},
	})
	// Greedy must work and not beat the ILP by more than noise.
	if greedy.HighResCaptured == 0 {
		t.Error("greedy captured nothing")
	}
	if float64(greedy.HighResCaptured) > 1.1*float64(ilp.HighResCaptured)+2 {
		t.Errorf("greedy (%d) clearly beats ILP (%d)", greedy.HighResCaptured, ilp.HighResCaptured)
	}
}

func TestRecallOverrideReducesButNotProportionally(t *testing.T) {
	// Fig. 15: coverage degrades slower than recall because footprints
	// capture undetected neighbors.
	w := smallWorld(2000, 10)
	full := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1, RecallOverride: 1.0,
	})
	low := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1, RecallOverride: 0.2,
	})
	if full.HighResCaptured == 0 {
		t.Fatal("no captures")
	}
	ratio := float64(low.HighResCaptured) / float64(full.HighResCaptured)
	if ratio >= 1 {
		t.Errorf("recall 0.2 did not reduce coverage (ratio %.2f)", ratio)
	}
	if ratio < 0.2 {
		t.Errorf("coverage ratio %.2f fell below recall itself; clustering should soften the drop", ratio)
	}
}

func TestTargetsPerImageRecorded(t *testing.T) {
	w := smallWorld(2000, 11)
	r := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	if got := r.TargetsPerImage.Count(); got != int64(r.FramesWithTargets) {
		t.Errorf("per-image histogram count %d != non-empty frames %d", got, r.FramesWithTargets)
	}
	if r.TargetsPerImage.Buckets[0] != 0 {
		t.Error("histogram recorded empty frames")
	}
	if r.TargetsPerImage.Max <= 0 {
		t.Error("non-positive per-image maximum")
	}
	if p50 := r.TargetsPerImage.Percentile(50); p50 <= 0 || p50 > r.TargetsPerImage.Max {
		t.Errorf("p50 %d outside (0, max %d]", p50, r.TargetsPerImage.Max)
	}
}

func TestEnergyBudgetsPopulated(t *testing.T) {
	w := smallWorld(1000, 12)
	r := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	if r.LeaderBudget == nil || r.FollowerBudget == nil {
		t.Fatal("budgets missing")
	}
	if r.LeaderBudget.ComputeJ <= 0 {
		t.Error("leader compute energy should be positive")
	}
	if r.FollowerBudget.ComputeJ != 0 {
		t.Error("follower should not consume compute energy")
	}
	if r.LeaderBudget.TXJ != 0 {
		t.Error("leader should not downlink imagery")
	}
	if r.FollowerBudget.TXJ <= 0 {
		t.Error("follower downlink energy should be positive")
	}
}

func TestClusteringAblation(t *testing.T) {
	// Clustering must not reduce coverage and should reduce captures on
	// clustered targets.
	w := smallWorld(3000, 13)
	with := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	without := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1, NoClustering: true,
	})
	if with.HighResCaptured < without.HighResCaptured {
		t.Errorf("clustering reduced coverage: %d < %d", with.HighResCaptured, without.HighResCaptured)
	}
}

func TestMovingTargetsCanEscape(t *testing.T) {
	// Fast movers drift out of aimed footprints between detection and
	// capture (§4.6): coverage of a fast-moving world is below that of the
	// same world frozen.
	// 1200 m/s movers drift >10 km during the detection-to-capture window,
	// guaranteeing escapes; realistic aircraft speeds mostly stay inside
	// the footprint (which is why EagleEye works for airplane tracking).
	rng := rand.New(rand.NewSource(14))
	static := smallWorld(1200, 14)
	moving := &dataset.Set{Name: "moving", Moving: true}
	for _, tgt := range static.Targets {
		tgt.SpeedMS = 1200
		tgt.HeadingDeg = rng.Float64() * 360
		moving.Targets = append(moving.Targets, tgt)
	}
	rs := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           static, DurationS: 3 * 3600, Seed: 1,
	})
	rm := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           moving, DurationS: 3 * 3600, Seed: 1,
	})
	if rs.HighResCaptured == 0 {
		t.Fatal("static world uncaptured")
	}
	if rm.HighResCaptured >= rs.HighResCaptured {
		t.Errorf("fast movers (%d) not below static (%d)", rm.HighResCaptured, rs.HighResCaptured)
	}
}

func TestCoveragePctBounds(t *testing.T) {
	r := &Result{TotalTargets: 0}
	if r.CoveragePct() != 0 || r.LowResSeenPct() != 0 {
		t.Error("zero-target percentages should be 0")
	}
}

func TestCommsAccounting(t *testing.T) {
	w := smallWorld(1500, 40)
	r := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	if r.Captures > 0 && r.CrosslinkBytes <= 0 {
		t.Error("captures without crosslink traffic")
	}
	// §5.3: crosslink volume is negligible -- well under 1 MB per orbit.
	orbits := 3 * 3600 / (94 * 60.0)
	if perOrbit := r.CrosslinkBytes / orbits; perOrbit > 1e6 {
		t.Errorf("crosslink = %v bytes/orbit, want < 1 MB", perOrbit)
	}
	if r.DownlinkableFraction <= 0 || r.DownlinkableFraction > 1 {
		t.Errorf("downlinkable fraction = %v", r.DownlinkableFraction)
	}
}
