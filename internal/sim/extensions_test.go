package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"eagleeye/internal/constellation"
	"eagleeye/internal/dataset"
	"eagleeye/internal/geo"
)

// The §4.7 extensions: multi-plane orbit design and recapture
// deprioritization.

func TestMultiPlaneSpreadsGroundTracks(t *testing.T) {
	one, err := constellation.Build(constellation.Config{
		Kind: constellation.LeaderFollower, Satellites: 8, Planes: 1,
	}, DefaultEpoch)
	if err != nil {
		t.Fatal(err)
	}
	two, err := constellation.Build(constellation.Config{
		Kind: constellation.LeaderFollower, Satellites: 8, Planes: 2,
	}, DefaultEpoch)
	if err != nil {
		t.Fatal(err)
	}
	// With two planes, group 0 and group 1 leaders fly different planes:
	// their sub-points at equal times diverge from the single-plane case.
	onePts := make([]geo.LatLon, 4)
	twoPts := make([]geo.LatLon, 4)
	for g := 0; g < 4; g++ {
		onePts[g] = one.Groups[g].Leader.Prop.StateAtElapsed(1000).SubPoint
		twoPts[g] = two.Groups[g].Leader.Prop.StateAtElapsed(1000).SubPoint
	}
	same := 0
	for g := 0; g < 4; g++ {
		if geo.GreatCircleDistance(onePts[g], twoPts[g]) < 1e3 {
			same++
		}
	}
	if same == 4 {
		t.Error("two-plane constellation identical to single-plane")
	}
	// Planes must not exceed groups.
	if _, err := constellation.Build(constellation.Config{
		Kind: constellation.LeaderFollower, Satellites: 2, Planes: 3,
	}, DefaultEpoch); err == nil {
		t.Error("more planes than groups accepted")
	}
}

func TestMultiPlaneSimulates(t *testing.T) {
	w := smallWorld(1500, 21)
	r1 := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8, Planes: 1},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	r2 := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 8, Planes: 2},
		App:           w, DurationS: 3 * 3600, Seed: 1,
	})
	if r1.Frames != r2.Frames {
		t.Errorf("frame counts differ: %d vs %d", r1.Frames, r2.Frames)
	}
	if r2.HighResCaptured == 0 {
		t.Error("two-plane constellation captured nothing")
	}
}

func TestRecaptureSuppression(t *testing.T) {
	// Near-polar targets are revisited every orbit (ground tracks converge
	// toward the inclination limit), so a several-hour run re-detects
	// already-captured targets; with dedup enabled the leader suppresses
	// them.
	w := polarWorld(800, 22)
	base := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           w, DurationS: 6 * 3600, Seed: 1,
	})
	dedup := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 4},
		App:           w, DurationS: 6 * 3600, Seed: 1, RecaptureDedup: true,
	})
	if base.RecaptureSuppressed != 0 {
		t.Error("suppression counted without the extension")
	}
	if dedup.RecaptureSuppressed == 0 {
		t.Fatal("polar world saw no revisits; the registry is not working")
	}
	// Deduplication must not lose distinct-target coverage.
	if dedup.HighResCaptured < base.HighResCaptured-2 {
		t.Errorf("dedup lost coverage: %d vs %d", dedup.HighResCaptured, base.HighResCaptured)
	}
	// And it should spend fewer captures on duplicates.
	if dedup.Captures > base.Captures {
		t.Errorf("dedup increased capture count: %d vs %d", dedup.Captures, base.Captures)
	}
}

func TestRecaptureDeterministic(t *testing.T) {
	w := smallWorld(800, 23)
	cfg := Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 3 * 3600, Seed: 5, RecaptureDedup: true,
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.HighResCaptured != b.HighResCaptured || a.RecaptureSuppressed != b.RecaptureSuppressed {
		t.Error("recapture extension not deterministic")
	}
}

// polarWorld scatters static targets in the near-polar band where the
// paper orbit's ground tracks converge and revisit every orbit.
func polarWorld(n int, seed int64) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	s := &dataset.Set{Name: "polar"}
	for i := 0; i < n; i++ {
		s.Targets = append(s.Targets, dataset.Target{
			ID:    i,
			Pos:   geo.LatLon{Lat: 78 + rng.Float64()*4, Lon: rng.Float64()*360 - 180}.Normalize(),
			Value: 0.5 + 0.5*rng.Float64(),
		})
	}
	return s
}

func TestTraceEmitsRecords(t *testing.T) {
	w := smallWorld(1000, 30)
	var buf bytes.Buffer
	r := run(t, Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 2 * 3600, Seed: 1, Trace: &buf,
	})
	lines := 0
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec TraceRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		lines++
		if rec.Targets <= 0 {
			t.Error("trace for an empty frame")
		}
		if rec.Covered > rec.Captures {
			t.Errorf("covered %d > captures %d", rec.Covered, rec.Captures)
		}
	}
	if lines != r.FramesWithTargets {
		t.Errorf("trace lines %d != non-empty frames %d", lines, r.FramesWithTargets)
	}
}

func TestTraceWriteErrorSurfaces(t *testing.T) {
	w := smallWorld(500, 31)
	_, err := Run(Config{
		Constellation: constellation.Config{Kind: constellation.LeaderFollower, Satellites: 2},
		App:           w, DurationS: 2 * 3600, Seed: 1, Trace: failWriter{},
	})
	if err == nil {
		t.Error("trace write error not surfaced")
	}
}

// failWriter always errors.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("sink failure")
