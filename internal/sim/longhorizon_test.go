package sim

import (
	"runtime"
	"testing"

	"eagleeye/internal/constellation"
	"eagleeye/internal/obs"
)

// TestLongHorizonMemoryBounded is the week-long acceptance run: 168
// simulated hours, advanced through daily windows with a mid-week leader
// failure, while the live heap stays under a fixed ceiling. The result
// state is O(1) in the horizon -- the per-image distribution is a
// fixed-bucket histogram and every other accumulator is a scalar or a
// target-indexed bitset -- so the heap high-water mark is set by the
// scenario (dataset, index, solver arenas), not by the number of frames.
// A regression back to per-frame result state (the old TargetsPerImage
// slice, or unbounded trace staging) shows up as heap growth proportional
// to simulated time and breaks the ceiling.
func TestLongHorizonMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("week-long simulation in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates heap measurements")
	}
	const (
		horizonS = 168 * 3600
		windowS  = 24 * 3600
		// Generous versus the ~10 MiB a healthy run needs, fatal for
		// anything that accumulates per-frame state over ~87k frames.
		heapCeiling = 64 << 20
	)
	// The flight recorder rides along for the whole week: its retention is
	// bounded (ring + top-K + pinned FIFO with arena reuse), so it must
	// fit under the same ceiling, and the hour-60 fault event must still
	// be retrievable from the dump ~50k frames later.
	flight := obs.NewFlightRecorder(obs.FlightConfig{})
	cfg := Config{
		Constellation: constellation.Config{
			Kind: constellation.LeaderFollower, Satellites: 8, FollowersPerGroup: 3,
		},
		App:       smallWorld(1500, 95),
		DurationS: horizonS,
		Seed:      1,
		Events: []Event{
			// Mid-week churn: one group loses a follower, the other its
			// leader (absorbed by re-election).
			{AtS: 60 * 3600, Kind: EventFollowerFail, Group: 0, Follower: 1},
			{AtS: 84 * 3600, Kind: EventLeaderFail, Group: 1},
		},
		Flight: flight,
	}
	r := mustRunner(t, cfg)
	var ms runtime.MemStats
	for day := 1; day <= 7; day++ {
		advance(t, r, float64(day)*windowS)
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > heapCeiling {
			t.Fatalf("day %d: live heap %d MiB exceeds %d MiB ceiling",
				day, ms.HeapAlloc>>20, heapCeiling>>20)
		}
	}
	if !r.Done() {
		t.Fatalf("runner not done at %v / %v", r.Now(), r.Duration())
	}
	res := result(t, r)
	if res.Frames < 50000 {
		t.Errorf("suspiciously short week: %d frames", res.Frames)
	}
	if res.EventsApplied != 2 || res.SatsFailed != 2 || res.LeaderReelections != 1 {
		t.Errorf("fault accounting: applied %d failed %d reelected %d, want 2/2/1",
			res.EventsApplied, res.SatsFailed, res.LeaderReelections)
	}
	// The streaming histogram must account for every non-empty frame.
	if got := res.TargetsPerImage.Count(); got != int64(res.FramesWithTargets) {
		t.Errorf("histogram count %d != non-empty frames %d", got, res.FramesWithTargets)
	}
	if res.Captures == 0 || res.HighResCaptured == 0 {
		t.Errorf("week-long run captured nothing: %+v", res)
	}

	// Flight recorder: both fault events were pinned, and the hour-60
	// follower failure is still retrievable at end of week -- first-per-
	// kind retention must survive the tens of thousands of frames since.
	d := flight.Snapshot()
	if got := d.Anomalies["fault-event"]; got != 2 {
		t.Errorf("flight anomalies[fault-event] = %d, want 2", got)
	}
	hour60 := false
	for _, f := range d.Pinned {
		for _, k := range f.Anomalies {
			if k == "fault-event" && f.TimeS == 60*3600 {
				hour60 = true
			}
		}
	}
	if !hour60 {
		t.Errorf("hour-60 fault event not retrievable from flight dump after %d frames (pinned=%d dropped=%d)",
			d.Frames, len(d.Pinned), d.PinnedDropped)
	}
}
