package sim

import (
	"bufio"
	"encoding/json"
	"io"
)

// Tracing: when Config.Trace is set, the simulator emits one JSON line per
// processed leader frame -- what was in view, what the detector found, how
// it was clustered, what the schedule did, and how long scheduling took.
// Traces make individual scheduling decisions inspectable (the ASPLOS
// artifact-evaluation style "show me one frame" question) and feed
// external plotting without rerunning simulations.

// TraceRecord is one frame's trace line.
type TraceRecord struct {
	Group    int     `json:"group"`
	Frame    int     `json:"frame"`
	TimeS    float64 `json:"t"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Targets  int     `json:"targets"`
	Detected int     `json:"detected"`
	Clusters int     `json:"clusters,omitempty"`
	Captures int     `json:"captures"`
	Covered  int     `json:"covered"` // distinct targets scheduled
	SchedMS  float64 `json:"sched_ms"`
	Deadline bool    `json:"deadline_met"`
	// Solver cost of the frame's two ILPs. Like SchedMS/Deadline, the
	// counts can vary across runs when a solve is truncated by its wall
	// time limit, so determinism checks must mask them.
	SchedNodes   int     `json:"sched_nodes,omitempty"`
	SchedIters   int     `json:"sched_iters,omitempty"`
	SchedGap     float64 `json:"sched_gap,omitempty"`
	ClusterNodes int     `json:"cluster_nodes,omitempty"`
	ClusterIters int     `json:"cluster_iters,omitempty"`
}

// traceWriter serializes records to the configured writer through a
// buffer, so a long run emitting hundreds of thousands of lines issues
// large writes instead of one syscall per frame. The buffer is flushed
// every traceFlushEvery records and once more in Err, so an abandoned or
// killed run loses at most the last flush interval of its trace instead
// of the entire 64 KiB tail, while steady-state emission still batches
// dozens of records per syscall.
type traceWriter struct {
	buf     *bufio.Writer
	enc     *json.Encoder
	pending int // records since the last explicit flush
	err     error
}

// traceFlushEvery bounds how many records an abnormal exit can lose.
// At ~150 bytes per record a flush interval is still a few large writes
// per 64 KiB buffer, not one syscall per frame.
const traceFlushEvery = 128

func newTraceWriter(w io.Writer) *traceWriter {
	if w == nil {
		return nil
	}
	buf := bufio.NewWriterSize(w, 1<<16)
	return &traceWriter{buf: buf, enc: json.NewEncoder(buf)}
}

// emit writes one record, remembering the first error (the simulation is
// not aborted for trace I/O trouble; Err is surfaced at the end).
func (tw *traceWriter) emit(rec TraceRecord) {
	if tw == nil || tw.err != nil {
		return
	}
	tw.err = tw.enc.Encode(rec)
	tw.pending++
	if tw.pending >= traceFlushEvery && tw.err == nil {
		tw.err = tw.buf.Flush()
		tw.pending = 0
	}
}

// flush drains the buffer immediately (frame-group boundaries, error
// paths) without waiting for the periodic interval.
func (tw *traceWriter) flush() {
	if tw == nil || tw.err != nil {
		return
	}
	tw.err = tw.buf.Flush()
	tw.pending = 0
}

// Err flushes the buffer and returns the first trace write error, if
// any. It must be called after the last emit.
func (tw *traceWriter) Err() error {
	if tw == nil {
		return nil
	}
	if ferr := tw.buf.Flush(); tw.err == nil {
		tw.err = ferr
	}
	return tw.err
}
