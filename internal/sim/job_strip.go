package sim

import (
	"eagleeye/internal/constellation"
	"eagleeye/internal/geo"
	"eagleeye/internal/orbit"
)

// stripJob handles one satellite of the homogeneous baselines: it
// continuously images its nadir strip; a target is covered when it falls
// inside the swath. Consecutive frames tile the ground track, so the loop
// walks the track in long steps with a swath-wide, step-long footprint.
// Like groupJob it is persistent and windowed; a fault event (either
// kind -- there is no group structure to degrade) retires the satellite
// at the frame boundary and freezes its energy accounting there.
type stripJob struct {
	st      *runState
	si      int
	sat     *constellation.Satellite
	highRes bool
	swath   float64
	stepS   float64
	stepLen float64
	qr      float64
	stp     *orbit.Stepper

	events     []Event
	evCursor   int
	evReplayTo int

	dark     bool
	darkAtS  float64
	frameIdx int
	ts       float64
	skipTo   int
}

func newStripJob(st *runState, si int, sat *constellation.Satellite, events []Event) *stripJob {
	swath := sat.LowRes.SwathM
	highRes := false
	if !sat.HasLowRes() {
		swath = sat.HighRes.SwathM
		highRes = true
	}
	stepS := 50e3 / sat.Prop.GroundSpeedMS() // 50 km along-track steps
	stepLen := sat.Prop.GroundSpeedMS() * stepS
	return &stripJob{
		st: st, si: si, sat: sat,
		highRes: highRes,
		swath:   swath,
		stepS:   stepS,
		stepLen: stepLen,
		qr:      frameRadius(swath, stepLen),
		stp:     sat.Prop.NewStepper(0, stepS),
		events:  events,
	}
}

func (j *stripJob) state() *runState { return j.st }
func (j *stripJob) close()           {}

func (j *stripJob) applyEvent(ev Event) {
	if j.dark {
		// Same-boundary duplicates: an already-retired satellite cannot
		// fail again, so consume the event without counting it.
		j.evCursor++
		return
	}
	st := j.st
	count := j.evCursor >= j.evReplayTo
	j.dark = true
	j.darkAtS = j.ts
	if count {
		st.res.SatsFailed++
		st.res.EventsApplied++
		if jm := st.met; jm != nil {
			switch ev.Kind {
			case EventFollowerFail:
				jm.eventsFollowerFail.Inc()
			case EventLeaderFail:
				jm.eventsLeaderFail.Inc()
			}
		}
	}
	j.evCursor++
}

func (j *stripJob) run(untilS float64) error {
	st := j.st
	jm := st.met
	for !j.dark && j.ts < untilS {
		ts := j.ts
		for j.evCursor < len(j.events) && j.events[j.evCursor].AtS <= ts {
			j.applyEvent(j.events[j.evCursor])
		}
		if j.dark {
			return nil
		}
		replay := j.frameIdx < j.skipTo
		if j.frameIdx > 0 {
			j.stp.Advance()
		}
		j.frameIdx++
		j.ts = ts + j.stepS
		if replay {
			continue
		}
		st.res.Frames++
		if jm != nil {
			jm.frames.Inc()
		}
		// Empty-frame fast path: most ocean/desert steps see no
		// candidates, so probe the index around the cheap sub-point
		// before computing the full state and tangent frame.
		cands := st.candidatesNear(j.stp.SubPoint(), j.qr, ts)
		if len(cands) == 0 {
			continue
		}
		s := j.stp.State()
		f := geo.TangentFrame{Origin: s.SubPoint, BearingDeg: s.HeadingDeg}
		idx, _ := st.filterInFrame(cands, f, j.swath, j.stepLen, ts)
		if len(idx) == 0 {
			continue
		}
		st.res.FramesWithTargets++
		if jm != nil {
			jm.framesWithTargets.Inc()
		}
		for _, ci := range idx {
			st.seen[ci] = true
			if j.highRes {
				st.captured[ci] = true
			}
		}
	}
	return nil
}

// finalize books the strip satellite's analytic imaging energy for the
// elapsed span directly into the aggregate (pro-rated to the failure
// boundary if the satellite went dark): continuous imaging along the
// track. High-res strip satellites capture only -- they run no ML
// detection -- and book to the follower-role budget; low-res satellites
// detect on every frame and book to the leader/mono budget. Booking at
// aggregation time (instead of mutating job state) keeps Result
// repeatable mid-run; at full duration the sums are bit-identical to
// booking per job, because budget merges add job totals in the same
// order.
func (j *stripJob) finalize(agg *runState, elapsedS float64) {
	aliveS := elapsedS
	if j.dark && j.darkAtS < aliveS {
		aliveS = j.darkAtS
	}
	frames := aliveS / (j.swath / j.sat.Prop.GroundSpeedMS())
	if j.highRes {
		agg.folB.Capture(int(frames))
	} else {
		agg.leaderB.Capture(int(frames))
		agg.leaderB.Compute(frames * j.st.cfg.Tiling.FrameTimeS(j.st.cfg.Detector))
	}
}
