// Package adacs models the attitude determination and control system of an
// EagleEye satellite: the slew-rate law MaxAng, the Eq. 1 actuation-time
// solve (minimum time to repoint from one ground target to the next while
// the satellite flies on), and the Eq. 2 off-nadir time-window solve (the
// interval during which a ground target can be imaged within the maximum
// off-nadir angle).
//
// All frame-local geometry follows the paper's convention: positions are in
// a ground tangent plane with Y along the flight direction; the satellite's
// sub-point moves along +Y at the ground speed; pointing to a ground point P
// from altitude h corresponds to an off-nadir angle atan(|P - N|/h), where N
// is the current sub-point.
package adacs

import (
	"fmt"
	"math"

	"eagleeye/internal/geo"
)

// SlewModel is the paper's ADACS actuation model:
// MaxAng(t) = RateDegS * (t - OverheadS), clamped at zero. The overhead
// aggregates pointing acceleration/deceleration (the paper adds 0.67 s per
// point action for a 3 deg/s wheel accelerating at 9 deg/s^2).
type SlewModel struct {
	RateDegS  float64 // peak body slew rate, degrees per second
	OverheadS float64 // per-maneuver accel/decel overhead, seconds
}

// PaperSlew returns the paper's default ADACS: 3 deg/s with 0.67 s overhead.
func PaperSlew() SlewModel { return SlewModel{RateDegS: 3, OverheadS: 0.67} }

// HighEndSlew returns the paper's high-end reaction wheel: 10 deg/s.
// The same 9 deg/s^2 acceleration gives a ~1.1 s overhead..
func HighEndSlew() SlewModel { return SlewModel{RateDegS: 10, OverheadS: 1.11} }

// Validate reports whether the model is physically plausible.
func (m SlewModel) Validate() error {
	if m.RateDegS <= 0 {
		return fmt.Errorf("adacs: slew rate %v must be positive", m.RateDegS)
	}
	if m.OverheadS < 0 {
		return fmt.Errorf("adacs: overhead %v must be non-negative", m.OverheadS)
	}
	return nil
}

// MaxAngDeg returns the maximum angle in degrees the satellite can rotate in
// dt seconds: MaxAng(t) = rate * (t - overhead), never negative.
func (m SlewModel) MaxAngDeg(dtS float64) float64 {
	eff := dtS - m.OverheadS
	if eff <= 0 {
		return 0
	}
	return m.RateDegS * eff
}

// MinTimeS returns the minimum time in seconds needed to rotate by angleDeg:
// the inverse of MaxAngDeg. Zero-angle maneuvers still pay the overhead if
// the satellite must settle; the paper models a capture at the same pointing
// as free, so MinTimeS(0) = 0.
func (m SlewModel) MinTimeS(angleDeg float64) float64 {
	if angleDeg <= 0 {
		return 0
	}
	return angleDeg/m.RateDegS + m.OverheadS
}

// Pointing describes where a satellite's sensor boresight intersects the
// ground, in frame-local coordinates.
type Pointing struct {
	Ground geo.Point2 // boresight ground intercept, meters
}

// OffNadirDeg returns the off-nadir angle in degrees when the satellite's
// sub-point is at subPt, the boresight ground intercept at target, and the
// satellite flies at altM meters: atan(|target - subPt| / alt). This is the
// paper's OffNadir(sloc, sp) in the locally-flat approximation.
func OffNadirDeg(subPt, target geo.Point2, altM float64) float64 {
	if altM <= 0 {
		return math.Inf(1)
	}
	return geo.Rad2Deg(math.Atan2(target.Dist(subPt), altM))
}

// PointingAngleDeg returns the body rotation angle in degrees between
// pointing at ground points p1 and p2 from the sub-point positions sub1 and
// sub2 (the satellite moves between captures), at altitude altM. The paper's
// Eq. 1 approximates this as the angular separation of the two lines of
// sight |P1-N1|/alt vs |P2-N2|/alt; we compute the true 3D angle between the
// two boresight vectors, which reduces to the paper's form for small angles.
func PointingAngleDeg(sub1, p1, sub2, p2 geo.Point2, altM float64) float64 {
	v1 := geo.Vec3{X: p1.X - sub1.X, Y: p1.Y - sub1.Y, Z: -altM}
	v2 := geo.Vec3{X: p2.X - sub2.X, Y: p2.Y - sub2.Y, Z: -altM}
	return geo.Rad2Deg(v1.AngleBetween(v2))
}

// ActuationTimeS solves the paper's Eq. 1: the minimum time dt >= 0 such
// that the satellite, which points at ground point p1 at time t1 with its
// sub-point at sub1 and advances along +Y at groundSpeed m/s, can point at
// ground point p2 at time t1+dt:
//
//	angle(p1 viewed from sub(t1), p2 viewed from sub(t1+dt)) <= MaxAng(dt).
//
// The left side varies with dt because the satellite keeps moving, so the
// equation is solved numerically by bisection on dt (the right side grows
// linearly at rate >= 0 while the left side changes at most at the angular
// rate of the satellite's own motion, so a root exists and is unique for
// practical geometries).
func ActuationTimeS(m SlewModel, sub1, p1, p2 geo.Point2, groundSpeedMS, altM float64) float64 {
	need := func(dt float64) float64 {
		sub2 := geo.Point2{X: sub1.X, Y: sub1.Y + groundSpeedMS*dt}
		return PointingAngleDeg(sub1, p1, sub2, p2, altM)
	}
	// If already pointing at the target, no actuation is needed.
	if need(0) < 1e-9 {
		return 0
	}
	// Find an upper bound where MaxAng(dt) >= need(dt).
	lo, hi := 0.0, m.OverheadS+need(0)/m.RateDegS
	for i := 0; i < 60 && m.MaxAngDeg(hi) < need(hi); i++ {
		hi *= 2
		if hi > 1e4 {
			return math.Inf(1) // unreachable within any practical horizon
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if m.MaxAngDeg(mid) >= need(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// TimeWindow solves the paper's Eq. 2: the interval of times [t0, t1]
// (seconds relative to "now") during which a satellite whose sub-point is
// currently at sub and advances along +Y at groundSpeed m/s can image the
// ground point p within the maximum off-nadir angle maxOffNadirDeg from
// altitude altM. ok is false when the target is never within the cone
// (|cross-track| alone exceeds the reach).
//
// Geometry: at time t the sub-point is N(t) = sub + (0, v t); the constraint
// |p - N(t)| <= alt * tan(maxOffNadir) is a quadratic in t.
func TimeWindow(sub, p geo.Point2, groundSpeedMS, altM, maxOffNadirDeg float64) (t0, t1 float64, ok bool) {
	if groundSpeedMS <= 0 || altM <= 0 {
		return 0, 0, false
	}
	reach := altM * math.Tan(geo.Deg2Rad(maxOffNadirDeg))
	dx := p.X - sub.X
	dy := p.Y - sub.Y
	disc := reach*reach - dx*dx
	if disc < 0 {
		return 0, 0, false // cross-track offset alone exceeds the cone
	}
	half := math.Sqrt(disc)
	t0 = (dy - half) / groundSpeedMS
	t1 = (dy + half) / groundSpeedMS
	return t0, t1, true
}

// WindowLengthS returns the duration of the imaging window for a target at
// cross-track offset xtM: 2*sqrt(reach^2 - xt^2)/v, or 0 if out of reach.
// A nadir target at the paper's parameters (475 km, 11 deg, 7.3 km/s) has a
// ~25 s window; the paper's Fig. 6 shows a 15 s window at moderate offsets.
func WindowLengthS(xtM, groundSpeedMS, altM, maxOffNadirDeg float64) float64 {
	reach := altM * math.Tan(geo.Deg2Rad(maxOffNadirDeg))
	disc := reach*reach - xtM*xtM
	if disc < 0 || groundSpeedMS <= 0 {
		return 0
	}
	return 2 * math.Sqrt(disc) / groundSpeedMS
}
