package adacs

import (
	"math"
	"testing"
	"testing/quick"

	"eagleeye/internal/geo"
)

const (
	altM    = 475e3
	vGround = 7300.0
)

func TestSlewValidate(t *testing.T) {
	if err := PaperSlew().Validate(); err != nil {
		t.Errorf("paper slew invalid: %v", err)
	}
	if err := (SlewModel{RateDegS: 0}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (SlewModel{RateDegS: 3, OverheadS: -1}).Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestMaxAngMatchesPaperFormula(t *testing.T) {
	// Paper: MaxAng(t) = 3 * (t - 0.67) deg/s.
	m := PaperSlew()
	if got := m.MaxAngDeg(1.67); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("MaxAng(1.67) = %v, want 3", got)
	}
	if got := m.MaxAngDeg(0.5); got != 0 {
		t.Errorf("MaxAng below overhead = %v, want 0", got)
	}
	if got := m.MaxAngDeg(10.67); math.Abs(got-30) > 1e-9 {
		t.Errorf("MaxAng(10.67) = %v, want 30", got)
	}
}

func TestMinTimeInverseOfMaxAng(t *testing.T) {
	f := func(angleSeed uint16) bool {
		m := PaperSlew()
		angle := float64(angleSeed%9000)/100 + 0.01 // (0, 90]
		dt := m.MinTimeS(angle)
		return math.Abs(m.MaxAngDeg(dt)-angle) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if PaperSlew().MinTimeS(0) != 0 {
		t.Error("MinTimeS(0) should be free")
	}
}

func TestOffNadir(t *testing.T) {
	sub := pt(0, 0)
	if got := OffNadirDeg(sub, sub, altM); got != 0 {
		t.Errorf("nadir angle = %v", got)
	}
	// A target exactly one altitude away horizontally is 45 deg off-nadir.
	if got := OffNadirDeg(sub, pt(altM, 0), altM); math.Abs(got-45) > 1e-9 {
		t.Errorf("45-deg case = %v", got)
	}
	if got := OffNadirDeg(sub, pt(1, 1), 0); !math.IsInf(got, 1) {
		t.Errorf("zero altitude = %v, want +Inf", got)
	}
	// Paper's 11-deg max off-nadir at 475 km reaches ~92 km from nadir.
	reach := altM * math.Tan(geo.Deg2Rad(11))
	if reach < 85e3 || reach > 100e3 {
		t.Errorf("11-deg reach = %v m", reach)
	}
	if got := OffNadirDeg(sub, pt(reach, 0), altM); math.Abs(got-11) > 1e-6 {
		t.Errorf("reach angle = %v, want 11", got)
	}
}

func TestPointingAngle(t *testing.T) {
	sub := pt(0, 0)
	// Same boresight: zero angle.
	if got := PointingAngleDeg(sub, pt(5e3, 5e3), sub, pt(5e3, 5e3), altM); got > 1e-9 {
		t.Errorf("identical pointing angle = %v", got)
	}
	// Symmetric +-x targets: angle = 2*atan(x/alt).
	x := 50e3
	want := 2 * geo.Rad2Deg(math.Atan2(x, altM))
	got := PointingAngleDeg(sub, pt(-x, 0), sub, pt(x, 0), altM)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("symmetric angle = %v, want %v", got, want)
	}
}

func TestActuationTimeZeroForSameTarget(t *testing.T) {
	m := PaperSlew()
	sub := pt(0, 0)
	p := pt(10e3, 20e3)
	// Pointing at p, then "repointing" at p while stationary would be 0; but
	// the satellite moves, so the angle changes slightly - require small.
	dt := ActuationTimeS(m, sub, p, p, 0, altM) // stationary: truly zero
	if dt != 0 {
		t.Errorf("stationary same-target dt = %v", dt)
	}
}

func TestActuationTimeMonotoneInSeparation(t *testing.T) {
	m := PaperSlew()
	sub := pt(0, 0)
	p1 := pt(0, 0)
	prev := -1.0
	for _, x := range []float64{5e3, 20e3, 50e3, 90e3} {
		dt := ActuationTimeS(m, sub, p1, pt(x, 0), vGround, altM)
		if dt <= prev {
			t.Errorf("actuation time not increasing: %v after %v (x=%v)", dt, prev, x)
		}
		prev = dt
	}
}

func TestActuationTimeSatisfiesConstraint(t *testing.T) {
	// Property: the returned dt satisfies Eq. 1 with near-equality.
	m := PaperSlew()
	f := func(x1s, y1s, x2s, y2s uint32) bool {
		p1 := pt(float64(x1s%90000)-45000, float64(y1s%60000))
		p2 := pt(float64(x2s%90000)-45000, float64(y2s%60000))
		sub := pt(0, -10e3)
		dt := ActuationTimeS(m, sub, p1, p2, vGround, altM)
		if dt == 0 {
			return p1.Dist(p2) < 1 // only free when effectively same boresight
		}
		sub2 := pt(sub.X, sub.Y+vGround*dt)
		need := PointingAngleDeg(sub, p1, sub2, p2, altM)
		// Feasible and tight to within bisection tolerance.
		return m.MaxAngDeg(dt) >= need-1e-6 && m.MaxAngDeg(dt) <= need+0.05*need+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestActuationTimePaperScale(t *testing.T) {
	// Repointing across a 10 km high-res swath-width at 3 deg/s should take
	// roughly a second-or-two: angle ~ 2*atan(5km/475km) ~ 1.2 deg.
	m := PaperSlew()
	sub := pt(0, 0)
	dt := ActuationTimeS(m, sub, pt(-5e3, 30e3), pt(5e3, 30e3), vGround, altM)
	if dt < 0.67 || dt > 3 {
		t.Errorf("cross-swath repoint dt = %v s", dt)
	}
}

func TestTimeWindowNadirTarget(t *testing.T) {
	sub := pt(0, 0)
	target := pt(0, 50e3) // dead ahead on track
	t0, t1, ok := TimeWindow(sub, target, vGround, altM, 11)
	if !ok {
		t.Fatal("window not found for on-track target")
	}
	// The window must bracket the overflight time 50e3/vGround.
	tc := 50e3 / vGround
	if t0 >= tc || t1 <= tc {
		t.Errorf("window [%v, %v] does not bracket %v", t0, t1, tc)
	}
	// Symmetric around the crossing.
	if math.Abs((tc-t0)-(t1-tc)) > 1e-6 {
		t.Errorf("window asymmetric: %v vs %v", tc-t0, t1-tc)
	}
	// Paper-scale: full window ~ 2*92km/7.3km/s ~ 25 s.
	if w := t1 - t0; w < 20 || w > 30 {
		t.Errorf("window length = %v s", w)
	}
}

func TestTimeWindowOutOfReach(t *testing.T) {
	sub := pt(0, 0)
	// Cross-track 100 km > 92 km reach at 11 deg: never imageable.
	if _, _, ok := TimeWindow(sub, pt(100e3, 0), vGround, altM, 11); ok {
		t.Error("out-of-reach target got a window")
	}
	if _, _, ok := TimeWindow(sub, pt(0, 0), 0, altM, 11); ok {
		t.Error("zero ground speed got a window")
	}
	if _, _, ok := TimeWindow(sub, pt(0, 0), vGround, 0, 11); ok {
		t.Error("zero altitude got a window")
	}
}

func TestTimeWindowShrinksWithCrossTrack(t *testing.T) {
	prev := math.Inf(1)
	for _, xt := range []float64{0, 30e3, 60e3, 90e3} {
		w := WindowLengthS(xt, vGround, altM, 11)
		if w >= prev {
			t.Errorf("window at xt=%v is %v, not smaller than %v", xt, w, prev)
		}
		prev = w
	}
	if w := WindowLengthS(95e3, vGround, altM, 11); w != 0 {
		t.Errorf("beyond-reach window = %v", w)
	}
}

func TestTimeWindowConsistentWithOffNadir(t *testing.T) {
	// Property: at both window edges the off-nadir angle equals the max.
	f := func(xs, ys uint32) bool {
		p := pt(float64(xs%80000)-40000, float64(ys%200000)-100000)
		sub := pt(0, 0)
		t0, t1, ok := TimeWindow(sub, p, vGround, altM, 11)
		if !ok {
			return math.Abs(p.X) > altM*math.Tan(geo.Deg2Rad(11))-1
		}
		for _, tt := range []float64{t0, t1} {
			n := pt(0, vGround*tt)
			if math.Abs(OffNadirDeg(n, p, altM)-11) > 1e-6 {
				return false
			}
		}
		// Midpoint is strictly inside the cone.
		mid := pt(0, vGround*(t0+t1)/2)
		return OffNadirDeg(mid, p, altM) <= 11+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHighEndSlewFaster(t *testing.T) {
	sub := pt(0, 0)
	p1, p2 := pt(-40e3, 20e3), pt(40e3, 60e3)
	slow := ActuationTimeS(PaperSlew(), sub, p1, p2, vGround, altM)
	fast := ActuationTimeS(HighEndSlew(), sub, p1, p2, vGround, altM)
	if fast >= slow {
		t.Errorf("10 deg/s (%v s) not faster than 3 deg/s (%v s)", fast, slow)
	}
}

// pt is shorthand for constructing frame-local points in tests.
func pt(x, y float64) geo.Point2 { return geo.Point2{X: x, Y: y} }
