package adacs

import (
	"fmt"
	"math"

	"eagleeye/internal/geo"
)

// Attitude kinematics. The scheduling layer reasons about pointing as
// angles between boresight vectors (Eq. 1); the ADACS that executes a
// schedule slews the spacecraft body, which is an attitude trajectory.
// Quaternions represent attitudes; SlewTrajectory samples the great-arc
// rotation between two boresights under the MaxAng rate law, which is what
// an attitude-control loop would track and what the energy model's slew
// accounting integrates over.

// Quaternion is a unit quaternion (W scalar part) representing a rotation.
type Quaternion struct {
	W, X, Y, Z float64
}

// IdentityQuaternion returns the no-rotation attitude.
func IdentityQuaternion() Quaternion { return Quaternion{W: 1} }

// QuaternionFromAxisAngle builds the rotation of angleRad around axis.
func QuaternionFromAxisAngle(axis geo.Vec3, angleRad float64) Quaternion {
	u := axis.Unit()
	s, c := math.Sincos(angleRad / 2)
	return Quaternion{W: c, X: u.X * s, Y: u.Y * s, Z: u.Z * s}
}

// Mul composes rotations: (q.Mul(r)) applies r first, then q.
func (q Quaternion) Mul(r Quaternion) Quaternion {
	return Quaternion{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the inverse rotation (for unit quaternions).
func (q Quaternion) Conj() Quaternion { return Quaternion{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quaternion) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns the unit quaternion in the same direction.
func (q Quaternion) Normalize() Quaternion {
	n := q.Norm()
	if n == 0 {
		return IdentityQuaternion()
	}
	return Quaternion{W: q.W / n, X: q.X / n, Y: q.Y / n, Z: q.Z / n}
}

// Rotate applies the rotation to a vector.
func (q Quaternion) Rotate(v geo.Vec3) geo.Vec3 {
	p := Quaternion{X: v.X, Y: v.Y, Z: v.Z}
	r := q.Mul(p).Mul(q.Conj())
	return geo.Vec3{X: r.X, Y: r.Y, Z: r.Z}
}

// AngleTo returns the rotation angle in radians between two attitudes.
func (q Quaternion) AngleTo(r Quaternion) float64 {
	d := q.Conj().Mul(r).Normalize()
	w := math.Abs(d.W)
	if w > 1 {
		w = 1
	}
	return 2 * math.Acos(w)
}

// BetweenVectors returns the minimal rotation taking unit direction a to b.
func BetweenVectors(a, b geo.Vec3) Quaternion {
	ua, ub := a.Unit(), b.Unit()
	d := ua.Dot(ub)
	if d > 1-1e-12 {
		return IdentityQuaternion()
	}
	if d < -1+1e-12 {
		// Antipodal: rotate pi around any axis orthogonal to a.
		ortho := ua.Cross(geo.Vec3{X: 1})
		if ortho.Norm() < 1e-9 {
			ortho = ua.Cross(geo.Vec3{Y: 1})
		}
		return QuaternionFromAxisAngle(ortho, math.Pi)
	}
	axis := ua.Cross(ub)
	return QuaternionFromAxisAngle(axis, math.Acos(d))
}

// Slerp interpolates between attitudes (t in [0,1]).
func Slerp(a, b Quaternion, t float64) Quaternion {
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	dot := a.W*b.W + a.X*b.X + a.Y*b.Y + a.Z*b.Z
	if dot < 0 { // take the short arc
		b = Quaternion{W: -b.W, X: -b.X, Y: -b.Y, Z: -b.Z}
		dot = -dot
	}
	if dot > 1-1e-9 {
		// Nearly identical: linear interpolation avoids division by ~0.
		return Quaternion{
			W: a.W + t*(b.W-a.W), X: a.X + t*(b.X-a.X),
			Y: a.Y + t*(b.Y-a.Y), Z: a.Z + t*(b.Z-a.Z),
		}.Normalize()
	}
	theta := math.Acos(dot)
	sa := math.Sin((1 - t) * theta)
	sb := math.Sin(t * theta)
	st := math.Sin(theta)
	return Quaternion{
		W: (sa*a.W + sb*b.W) / st, X: (sa*a.X + sb*b.X) / st,
		Y: (sa*a.Y + sb*b.Y) / st, Z: (sa*a.Z + sb*b.Z) / st,
	}.Normalize()
}

// AttitudeSample is one point of a slew trajectory.
type AttitudeSample struct {
	TimeS    float64
	Attitude Quaternion
}

// SlewTrajectory samples the attitude path from pointing along fromDir to
// pointing along toDir under the slew model: an overhead-long settle at
// the start (accel/decel aggregated, as in MaxAng), then constant-rate
// rotation along the great arc. stepS must be positive.
func SlewTrajectory(m SlewModel, fromDir, toDir geo.Vec3, stepS float64) ([]AttitudeSample, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if stepS <= 0 {
		return nil, fmt.Errorf("adacs: step %v must be positive", stepS)
	}
	start := IdentityQuaternion()
	end := BetweenVectors(fromDir, toDir)
	totalDeg := geo.Rad2Deg(start.AngleTo(end))
	dur := m.MinTimeS(totalDeg)
	out := []AttitudeSample{{TimeS: 0, Attitude: start}}
	for t := stepS; t < dur; t += stepS {
		// Progress under the rate law: nothing moves during the overhead,
		// then the arc is traversed at the constant rate.
		moved := m.MaxAngDeg(t)
		frac := 0.0
		if totalDeg > 0 {
			frac = math.Min(1, moved/totalDeg)
		}
		out = append(out, AttitudeSample{TimeS: t, Attitude: Slerp(start, end, frac)})
	}
	out = append(out, AttitudeSample{TimeS: dur, Attitude: end})
	return out, nil
}
