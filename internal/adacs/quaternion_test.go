package adacs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eagleeye/internal/geo"
)

func vecAlmost(a, b geo.Vec3, tol float64) bool {
	return a.Sub(b).Norm() <= tol
}

func TestQuaternionIdentity(t *testing.T) {
	q := IdentityQuaternion()
	v := geo.Vec3{X: 1, Y: 2, Z: 3}
	if !vecAlmost(q.Rotate(v), v, 1e-12) {
		t.Error("identity rotated a vector")
	}
	if q.Norm() != 1 {
		t.Error("identity not unit")
	}
}

func TestAxisAngleRotation(t *testing.T) {
	// 90 degrees around Z takes X to Y.
	q := QuaternionFromAxisAngle(geo.Vec3{Z: 1}, math.Pi/2)
	got := q.Rotate(geo.Vec3{X: 1})
	if !vecAlmost(got, geo.Vec3{Y: 1}, 1e-12) {
		t.Errorf("rotated X = %+v, want Y", got)
	}
}

func TestMulComposition(t *testing.T) {
	// Two 90-degree Z rotations = one 180-degree rotation.
	q := QuaternionFromAxisAngle(geo.Vec3{Z: 1}, math.Pi/2)
	qq := q.Mul(q)
	got := qq.Rotate(geo.Vec3{X: 1})
	if !vecAlmost(got, geo.Vec3{X: -1}, 1e-12) {
		t.Errorf("double rotation = %+v", got)
	}
}

func TestConjInverts(t *testing.T) {
	f := func(x, y, z int8, angleSeed uint16) bool {
		axis := geo.Vec3{X: float64(x), Y: float64(y), Z: float64(z)}
		if axis.Norm() == 0 {
			return true
		}
		q := QuaternionFromAxisAngle(axis, float64(angleSeed%628)/100)
		v := geo.Vec3{X: 1, Y: -2, Z: 0.5}
		back := q.Conj().Rotate(q.Rotate(v))
		return vecAlmost(back, v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotationPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		q := QuaternionFromAxisAngle(geo.Vec3{
			X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64(),
		}, rng.Float64()*2*math.Pi)
		v := geo.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		if math.Abs(q.Rotate(v).Norm()-v.Norm()) > 1e-9 {
			t.Fatal("rotation changed vector length")
		}
	}
}

func TestBetweenVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := geo.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Unit()
		b := geo.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Unit()
		if a.Norm() == 0 || b.Norm() == 0 {
			continue
		}
		q := BetweenVectors(a, b)
		if !vecAlmost(q.Rotate(a), b, 1e-9) {
			t.Fatalf("BetweenVectors failed: %+v -> %+v, got %+v", a, b, q.Rotate(a))
		}
	}
	// Degenerate cases.
	x := geo.Vec3{X: 1}
	if !vecAlmost(BetweenVectors(x, x).Rotate(x), x, 1e-12) {
		t.Error("same-vector rotation wrong")
	}
	anti := BetweenVectors(x, geo.Vec3{X: -1})
	if !vecAlmost(anti.Rotate(x), geo.Vec3{X: -1}, 1e-9) {
		t.Error("antipodal rotation wrong")
	}
}

func TestAngleTo(t *testing.T) {
	a := IdentityQuaternion()
	b := QuaternionFromAxisAngle(geo.Vec3{Z: 1}, 0.7)
	if got := a.AngleTo(b); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("angle = %v, want 0.7", got)
	}
	if got := a.AngleTo(a); got > 1e-7 {
		t.Errorf("self angle = %v", got)
	}
}

func TestSlerpEndpointsAndMonotone(t *testing.T) {
	a := IdentityQuaternion()
	b := QuaternionFromAxisAngle(geo.Vec3{Y: 1}, 1.2)
	if Slerp(a, b, 0) != a {
		t.Error("t=0 not a")
	}
	if Slerp(a, b, 1) != b {
		t.Error("t=1 not b")
	}
	prev := -1.0
	for _, tt := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		ang := a.AngleTo(Slerp(a, b, tt))
		if ang <= prev {
			t.Errorf("slerp angle not increasing at t=%v", tt)
		}
		// Slerp traverses at constant angular rate: angle = t * total.
		if math.Abs(ang-tt*1.2) > 1e-9 {
			t.Errorf("slerp angle at t=%v is %v, want %v", tt, ang, tt*1.2)
		}
		prev = ang
	}
	// Near-identical attitudes take the linear path without NaNs.
	c := QuaternionFromAxisAngle(geo.Vec3{Y: 1}, 1e-12)
	mid := Slerp(a, c, 0.5)
	if math.IsNaN(mid.W) {
		t.Error("slerp NaN on near-identical attitudes")
	}
}

func TestSlewTrajectory(t *testing.T) {
	m := PaperSlew()
	from := geo.Vec3{Z: -1}                             // nadir
	to := geo.Vec3{X: math.Sin(0.2), Z: -math.Cos(0.2)} // ~11.5 deg off-nadir
	traj, err := SlewTrajectory(m, from, to, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) < 3 {
		t.Fatalf("trajectory has %d samples", len(traj))
	}
	// Starts at identity, ends pointing at the target.
	if traj[0].TimeS != 0 {
		t.Error("trajectory does not start at 0")
	}
	last := traj[len(traj)-1]
	if !vecAlmost(last.Attitude.Rotate(from), to, 1e-9) {
		t.Errorf("final attitude points at %+v", last.Attitude.Rotate(from))
	}
	// Total duration matches MinTimeS of the total angle.
	totalDeg := geo.Rad2Deg(from.AngleBetween(to))
	if math.Abs(last.TimeS-m.MinTimeS(totalDeg)) > 1e-9 {
		t.Errorf("duration = %v, want %v", last.TimeS, m.MinTimeS(totalDeg))
	}
	// Nothing moves during the accel/decel overhead.
	for _, s := range traj {
		if s.TimeS < m.OverheadS-1e-9 {
			if IdentityQuaternion().AngleTo(s.Attitude) > 1e-9 {
				t.Error("moved during overhead")
			}
		}
	}
	// Monotone progress after the overhead.
	prev := -1.0
	for _, s := range traj {
		ang := IdentityQuaternion().AngleTo(s.Attitude)
		if ang < prev-1e-9 {
			t.Error("trajectory not monotone")
		}
		prev = ang
	}
}

func TestSlewTrajectoryErrors(t *testing.T) {
	if _, err := SlewTrajectory(SlewModel{}, geo.Vec3{Z: 1}, geo.Vec3{X: 1}, 0.5); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := SlewTrajectory(PaperSlew(), geo.Vec3{Z: 1}, geo.Vec3{X: 1}, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestNormalizeZero(t *testing.T) {
	if (Quaternion{}).Normalize() != IdentityQuaternion() {
		t.Error("zero quaternion should normalize to identity")
	}
}
