package constellation

import (
	"math"
	"testing"
	"time"

	"eagleeye/internal/geo"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestBuildLowResOnly(t *testing.T) {
	c, err := Build(Config{Kind: LowResOnly, Satellites: 4}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sats) != 4 || len(c.Groups) != 4 {
		t.Fatalf("sats=%d groups=%d", len(c.Sats), len(c.Groups))
	}
	for _, s := range c.Sats {
		if s.Role != RoleMono || !s.HasLowRes() || s.HasHighRes() {
			t.Errorf("bad satellite %+v", s)
		}
	}
}

func TestBuildHighResOnly(t *testing.T) {
	c, err := Build(Config{Kind: HighResOnly, Satellites: 3}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sats {
		if !s.HasHighRes() || s.HasLowRes() {
			t.Errorf("bad satellite %+v", s)
		}
	}
}

func TestBuildLeaderFollower(t *testing.T) {
	c, err := Build(Config{Kind: LeaderFollower, Satellites: 8, FollowersPerGroup: 1}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(c.Groups))
	}
	for _, g := range c.Groups {
		if g.Leader == nil || g.Leader.Role != RoleLeader || !g.Leader.HasLowRes() {
			t.Error("bad leader")
		}
		if len(g.Followers) != 1 || g.Followers[0].Role != RoleFollower || !g.Followers[0].HasHighRes() {
			t.Error("bad followers")
		}
	}
}

func TestBuildMultiFollower(t *testing.T) {
	c, err := Build(Config{Kind: LeaderFollower, Satellites: 8, FollowersPerGroup: 3}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(c.Groups))
	}
	if len(c.Groups[0].Followers) != 3 {
		t.Fatalf("followers = %d, want 3", len(c.Groups[0].Followers))
	}
}

func TestFollowerTrailsLeaderBy100km(t *testing.T) {
	c, err := Build(Config{Kind: LeaderFollower, Satellites: 2}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Groups[0]
	ls := g.Leader.Prop.StateAtElapsed(1000)
	fs := g.Followers[0].Prop.StateAtElapsed(1000)
	d := geo.GreatCircleDistance(ls.SubPoint, fs.SubPoint)
	if math.Abs(d-100e3) > 3e3 {
		t.Errorf("separation = %v m, want ~100 km", d)
	}
	// The follower must be behind: it reaches the leader's position later.
	behind := geo.AlongTrackDistance(fs.SubPoint, ls.SubPoint, ls.HeadingDeg)
	if behind > -90e3 {
		t.Errorf("follower along-track offset = %v, want ~-100 km", behind)
	}
}

func TestMultiFollowerSpacing(t *testing.T) {
	c, err := Build(Config{Kind: LeaderFollower, Satellites: 4, FollowersPerGroup: 3}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Groups[0]
	ls := g.Leader.Prop.StateAtElapsed(0)
	for i, f := range g.Followers {
		fs := f.Prop.StateAtElapsed(0)
		want := 100e3 * float64(i+1)
		if d := geo.GreatCircleDistance(ls.SubPoint, fs.SubPoint); math.Abs(d-want) > 4e3 {
			t.Errorf("follower %d at %v m, want %v", i, d, want)
		}
	}
}

func TestGroupsEvenlySpaced(t *testing.T) {
	c, err := Build(Config{Kind: LeaderFollower, Satellites: 8}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	// 4 groups: leaders separated by a quarter orbit (~10500 km arc).
	l0 := c.Groups[0].Leader.Prop.StateAtElapsed(0)
	l1 := c.Groups[1].Leader.Prop.StateAtElapsed(0)
	d := geo.GreatCircleDistance(l0.SubPoint, l1.SubPoint)
	quarter := math.Pi / 2 * geo.EarthMeanRadius
	if math.Abs(d-quarter) > 300e3 {
		t.Errorf("group spacing = %v, want ~%v", d, quarter)
	}
}

func TestMixCamera(t *testing.T) {
	c, err := Build(Config{Kind: MixCamera, Satellites: 2}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sats {
		if !s.HasLowRes() || !s.HasHighRes() || s.Role != RoleMix {
			t.Errorf("bad mix satellite %+v", s)
		}
	}
	if len(c.Groups) != 2 {
		t.Errorf("groups = %d", len(c.Groups))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{Kind: LowResOnly, Satellites: 0}, epoch); err == nil {
		t.Error("zero satellites accepted")
	}
	if _, err := Build(Config{Kind: LeaderFollower, Satellites: 5, FollowersPerGroup: 1}, epoch); err == nil {
		t.Error("indivisible group size accepted")
	}
	if _, err := Build(Config{Kind: Kind(9), Satellites: 2}, epoch); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestStrings(t *testing.T) {
	for _, k := range []Kind{LowResOnly, HighResOnly, LeaderFollower, MixCamera, Kind(9)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	for _, r := range []Role{RoleMono, RoleLeader, RoleFollower, RoleMix, Role(9)} {
		if r.String() == "" {
			t.Error("empty role string")
		}
	}
}

func TestGroupSize(t *testing.T) {
	if (Config{Kind: LeaderFollower, FollowersPerGroup: 3}).GroupSize() != 4 {
		t.Error("group size wrong")
	}
	if (Config{Kind: LeaderFollower}).GroupSize() != 2 {
		t.Error("default group size wrong")
	}
	if (Config{Kind: LowResOnly}).GroupSize() != 1 {
		t.Error("mono group size wrong")
	}
}
