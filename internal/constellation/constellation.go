// Package constellation implements EagleEye's constellation organizations
// (§3.1, Fig. 5): homogeneous Low-Res-Only and High-Res-Only baselines,
// the mixed-resolution leader-follower design, and the mix-camera variant
// that mounts both cameras on one satellite. A configuration expands into
// concrete satellites with orbit propagators, cameras and group structure;
// groups are evenly phased within the single orbital plane of §5.3 and
// followers trail their leader at the low-resolution swath width (100 km).
package constellation

import (
	"fmt"
	"math"
	"time"

	"eagleeye/internal/camera"
	"eagleeye/internal/geo"
	"eagleeye/internal/orbit"
	"eagleeye/internal/tle"
)

// Kind selects one of the paper's constellation organizations.
type Kind int8

// Constellation organizations (Fig. 5).
const (
	// LowResOnly: every satellite carries the wide-swath low-res camera.
	LowResOnly Kind = iota
	// HighResOnly: every satellite carries the narrow-swath high-res camera.
	HighResOnly
	// LeaderFollower: groups of one low-res leader plus FollowersPerGroup
	// high-res followers (EagleEye).
	LeaderFollower
	// MixCamera: each satellite carries both cameras (Fig. 5e).
	MixCamera
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LowResOnly:
		return "low-res-only"
	case HighResOnly:
		return "high-res-only"
	case LeaderFollower:
		return "leader-follower"
	case MixCamera:
		return "mix-camera"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Role identifies a satellite's function within its group.
type Role int8

// Satellite roles.
const (
	RoleMono     Role = iota // homogeneous baselines
	RoleLeader               // low-res detection + scheduling
	RoleFollower             // high-res pointed capture
	RoleMix                  // both cameras on one bus
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleMono:
		return "mono"
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	case RoleMix:
		return "mix"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Config describes a constellation to build.
type Config struct {
	Kind Kind
	// Satellites is the total satellite count (all kinds).
	Satellites int
	// FollowersPerGroup applies to LeaderFollower; 0 means 1.
	FollowersPerGroup int
	// SeparationM is the along-track leader-to-first-follower distance;
	// additional followers trail at the same spacing. 0 means 100 km.
	SeparationM float64
	// Orbit is the shared orbital plane; zero value means the paper orbit
	// at the given epoch.
	Orbit tle.OrbitSpec
	// Planes distributes groups across this many orbital planes with
	// evenly spaced ascending nodes (0 or 1 keeps the paper's single
	// plane). Spreading planes reduces ground-track overlap as the
	// constellation grows -- the orbit-design extension of §4.7.
	Planes int
	// LowRes/HighRes override the paper cameras when non-zero.
	LowRes, HighRes camera.Model
}

func (c Config) withDefaults(epoch time.Time) Config {
	if c.FollowersPerGroup == 0 {
		c.FollowersPerGroup = 1
	}
	if c.SeparationM == 0 {
		c.SeparationM = 100e3
	}
	if c.Orbit.AltitudeM == 0 {
		c.Orbit = tle.PaperOrbit(epoch)
	}
	if c.LowRes.SwathM == 0 {
		c.LowRes = camera.PaperLowRes()
	}
	if c.HighRes.SwathM == 0 {
		c.HighRes = camera.PaperHighRes()
	}
	return c
}

// GroupSize returns satellites per group for the configuration.
func (c Config) GroupSize() int {
	if c.Kind == LeaderFollower {
		f := c.FollowersPerGroup
		if f == 0 {
			f = 1
		}
		return 1 + f
	}
	return 1
}

// Satellite is one deployed spacecraft.
type Satellite struct {
	Name  string
	Role  Role
	Group int // group index
	// Trail is the position within the group: 0 = leader/mono, 1..F the
	// followers in trailing order.
	Trail   int
	Prop    *orbit.Propagator
	LowRes  camera.Model // zero-value if not carried
	HighRes camera.Model // zero-value if not carried
}

// HasLowRes reports whether the satellite carries the wide-swath camera.
func (s *Satellite) HasLowRes() bool { return s.LowRes.SwathM > 0 }

// HasHighRes reports whether the satellite carries the narrow-swath camera.
func (s *Satellite) HasHighRes() bool { return s.HighRes.SwathM > 0 }

// Group is a leader plus its followers (or a single satellite for the
// other organizations).
type Group struct {
	Leader    *Satellite
	Followers []*Satellite
}

// Constellation is the expanded configuration.
type Constellation struct {
	Config Config
	Sats   []*Satellite
	Groups []Group
}

// Build expands the configuration into satellites and groups at the epoch.
func Build(c Config, epoch time.Time) (*Constellation, error) {
	c = c.withDefaults(epoch)
	if c.Satellites <= 0 {
		return nil, fmt.Errorf("constellation: satellite count %d must be positive", c.Satellites)
	}
	gs := c.GroupSize()
	if c.Kind == LeaderFollower && c.Satellites%gs != 0 {
		return nil, fmt.Errorf("constellation: %d satellites not divisible into groups of %d (1 leader + %d followers)",
			c.Satellites, gs, c.FollowersPerGroup)
	}
	nGroups := c.Satellites / gs
	if nGroups == 0 {
		return nil, fmt.Errorf("constellation: %d satellites cannot form a group of %d", c.Satellites, gs)
	}
	planes := c.Planes
	if planes <= 0 {
		planes = 1
	}
	if planes > nGroups {
		return nil, fmt.Errorf("constellation: %d planes for %d groups", planes, nGroups)
	}
	// Ground arc per degree of orbital phase.
	degPerM := 360 / (2 * math.Pi * geo.EarthMeanRadius)

	out := &Constellation{Config: c}
	for g := 0; g < nGroups; g++ {
		// Round-robin groups over planes; nodes spread across 180 degrees
		// of right ascension (mirrored geometry repeats beyond that).
		orbitSpec := c.Orbit
		orbitSpec.RAANDeg = math.Mod(c.Orbit.RAANDeg+float64(g%planes)*180/float64(planes), 360)
		groupsInPlane := nGroups / planes
		if g%planes < nGroups%planes {
			groupsInPlane++
		}
		idxInPlane := g / planes
		var grp Group
		for k := 0; k < gs; k++ {
			phase := -float64(k) * c.SeparationM * degPerM // trail behind the leader
			el, err := orbitSpec.Generate(idxInPlane, groupsInPlane, phase, fmt.Sprintf("EE-%d-%d", g, k))
			if err != nil {
				return nil, err
			}
			prop, err := orbit.FromTLE(el)
			if err != nil {
				return nil, err
			}
			sat := &Satellite{
				Name:  el.Name,
				Group: g,
				Trail: k,
				Prop:  prop,
			}
			switch c.Kind {
			case LowResOnly:
				sat.Role = RoleMono
				sat.LowRes = c.LowRes
			case HighResOnly:
				sat.Role = RoleMono
				sat.HighRes = c.HighRes
			case MixCamera:
				sat.Role = RoleMix
				sat.LowRes = c.LowRes
				sat.HighRes = c.HighRes
			case LeaderFollower:
				if k == 0 {
					sat.Role = RoleLeader
					sat.LowRes = c.LowRes
				} else {
					sat.Role = RoleFollower
					sat.HighRes = c.HighRes
				}
			default:
				return nil, fmt.Errorf("constellation: unknown kind %v", c.Kind)
			}
			out.Sats = append(out.Sats, sat)
			if k == 0 {
				grp.Leader = sat
			} else {
				grp.Followers = append(grp.Followers, sat)
			}
		}
		out.Groups = append(out.Groups, grp)
	}
	return out, nil
}
