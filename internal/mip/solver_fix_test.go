package mip

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/lp"
)

// TestRootIterLimitReportsLimit pins the status fix: when every node LP is
// abandoned at the simplex iteration limit -- including the root -- the
// search proved nothing, and the old code's "drained heap means infeasible"
// default misreported a perfectly feasible model.
func TestRootIterLimitReportsLimit(t *testing.T) {
	p := NewBinary(2)
	p.C[0], p.C[1] = 1, 1
	p.AddRow([]float64{1, 1}, lp.LE, 1.5)
	sol, err := SolveOpts(p, Options{MaxLPIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusLimit {
		t.Errorf("status = %v, want %v (root LP iteration-limited, nothing proven)", sol.Status, StatusLimit)
	}
	// The same model with room to iterate is optimal, confirming the limit
	// status above was about the budget and not the model.
	full, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != StatusOptimal || math.Abs(full.Objective-1) > 1e-6 {
		t.Errorf("unrestricted solve: %v obj %v, want optimal 1", full.Status, full.Objective)
	}
}

// TestGapBoundsOptimumOnEarlyStop pins the gap fix: on an early stop,
// incumbent + Gap must still be a valid upper bound for the true optimum,
// with the bound recomputed from the open nodes rather than frozen at the
// root relaxation.
func TestGapBoundsOptimumOnEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	earlyStops := 0
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(3)
		p := NewBinary(n)
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*40 + 1)
		}
		row := make([]float64, n)
		total := 0.0
		for j := range row {
			row[j] = math.Round(rng.Float64()*20 + 1)
			total += row[j]
		}
		p.AddRow(row, lp.LE, math.Round(total*0.4))

		truth, found := bruteForceBinary(p)
		if !found {
			continue
		}
		sol, err := SolveOpts(p, Options{MaxNodes: 2 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusFeasible {
			continue // proved optimal (or found nothing) inside the node budget
		}
		earlyStops++
		if sol.Gap < 0 {
			t.Fatalf("trial %d: negative gap %v", trial, sol.Gap)
		}
		if sol.Objective+sol.Gap < truth-1e-6 {
			t.Fatalf("trial %d: incumbent %v + gap %v excludes true optimum %v",
				trial, sol.Objective, sol.Gap, truth)
		}
		// The recomputed bound can only be as good as or better than the
		// root relaxation the old code reported.
		root, err := lp.Solve(&p.Problem)
		if err != nil {
			t.Fatal(err)
		}
		if root.Status == lp.StatusOptimal && sol.Objective+sol.Gap > root.Objective+1e-6 {
			t.Fatalf("trial %d: stop bound %v looser than root relaxation %v",
				trial, sol.Objective+sol.Gap, root.Objective)
		}
	}
	if earlyStops == 0 {
		t.Fatal("no trial stopped early with an incumbent; the test exercised nothing")
	}
}

// TestRoundedIncumbentVerified pins the rounding fix: a point integral
// within IntTol can round onto the wrong side of a tight, large-coefficient
// row. The solver must reject the rounded point and keep the LP-feasible
// one instead of installing an infeasible incumbent.
func TestRoundedIncumbentVerified(t *testing.T) {
	p := NewBinary(2)
	p.C[0], p.C[1] = 1, 1
	// At the LP vertex x = (1, 0.9999); rounding x2 to 1 overshoots the
	// row by 10, far beyond any feasibility tolerance.
	p.AddRow([]float64{1e5, 1e5}, lp.LE, 199990)
	sol, err := SolveOpts(p, Options{IntTol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	lhs := 1e5*sol.X[0] + 1e5*sol.X[1]
	if lhs > 199990+0.5 {
		t.Errorf("incumbent violates its row: %v > 199990 (rounding was not verified)", lhs)
	}
	if math.Abs(sol.Objective-1.9999) > 1e-6 {
		t.Errorf("objective = %v, want 1.9999 (the unrounded LP point)", sol.Objective)
	}
	recomputed := sol.X[0]*p.C[0] + sol.X[1]*p.C[1]
	if math.Abs(sol.Objective-recomputed) > 1e-9 {
		t.Errorf("objective %v does not match its own point %v", sol.Objective, recomputed)
	}
}

// TestSolverStatsPopulated checks the observability plumbing: a nontrivial
// solve reports its node count and simplex iterations.
func TestSolverStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	p := NewBinary(n)
	row := make([]float64, n)
	for j := 0; j < n; j++ {
		p.C[j] = math.Round(rng.Float64()*30 + 1)
		row[j] = math.Round(rng.Float64()*15 + 1)
	}
	p.AddRow(row, lp.LE, 40)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Nodes < 1 || sol.Iters < 1 {
		t.Errorf("stats not populated: nodes %d iters %d", sol.Nodes, sol.Iters)
	}
	if sol.Iters < sol.Nodes {
		t.Errorf("iters %d < nodes %d: every solved node costs at least one iteration", sol.Iters, sol.Nodes)
	}
}
