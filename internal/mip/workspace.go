package mip

import (
	"math"
	"time"

	"eagleeye/internal/lp"
	"eagleeye/internal/obs"
)

// Workspace owns the branch-and-bound working state -- the base bounds, the
// node heap, the branch-bound arena, and the underlying LP workspace -- so
// repeated solves of similarly shaped problems (the scheduler solves one
// small MIP per simulation frame) reuse one set of allocations instead of
// rebuilding the tableau arena every call. The zero value is ready to use.
//
// A Workspace is not safe for concurrent use. Solution.X is a fresh copy
// and stays valid across later solves on the same workspace.
type Workspace struct {
	lpws      lp.Workspace
	baseLower []float64
	baseUpper []float64
	heap      nodeHeap
	// bounds is the arena behind the branch nodes' bound vectors. Chunks
	// are carved monotonically during one solve; a chunk abandoned by
	// growth stays referenced by the live nodes that were carved from it,
	// and every node is dead by the time the offset resets at the next
	// solve.
	bounds    []float64
	boundsOff int
}

// InvalidateBasis discards the LP workspace's saved starting basis, making
// a pooled or handed-off workspace behave exactly like a fresh one.
func (w *Workspace) InvalidateBasis() { w.lpws.InvalidateBasis() }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// cloneBranch copies src into the bounds arena and applies the branch: a
// raised lower bound (isLower) or a lowered upper bound.
func (w *Workspace) cloneBranch(src []float64, j int, v float64, isLower bool) []float64 {
	n := len(src)
	if len(w.bounds)-w.boundsOff < n {
		sz := 256 * n
		if sz < 4096 {
			sz = 4096
		}
		w.bounds = make([]float64, sz)
		w.boundsOff = 0
	}
	dst := w.bounds[w.boundsOff : w.boundsOff+n : w.boundsOff+n]
	w.boundsOff += n
	copy(dst, src)
	if isLower {
		if v > dst[j] {
			dst[j] = v
		}
	} else if v < dst[j] {
		dst[j] = v
	}
	return dst
}

// SolveOpts optimizes the MIP by LP-based branch and bound with best-first
// node selection and most-fractional branching, reusing the workspace
// arenas across calls.
func (w *Workspace) SolveOpts(p *Problem, opts Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.withDefaults()
	n := len(p.C)

	w.baseLower = growF(w.baseLower, n)
	w.baseUpper = growF(w.baseUpper, n)
	for j := 0; j < n; j++ {
		w.baseLower[j] = lower(&p.Problem, j)
		w.baseUpper[j] = upper(&p.Problem, j)
	}
	w.boundsOff = 0

	deadline := time.Now().Add(opts.TimeLimit)
	heap := &w.heap
	heap.ns = heap.ns[:0]
	heap.push(node{lower: w.baseLower, upper: w.baseUpper, bound: math.Inf(1)})

	var (
		incumbent    []float64
		incumbentVal = math.Inf(-1)
		nodes        int
		stopped      bool
		anyOptimal   bool // some node LP solved to optimality
		sawLimit     bool // some node LP was abandoned (iter limit / numerics)
		stopBound    = math.Inf(-1)
		iters        int
		pivotWall    time.Duration

		warmOK     bool
		warmVal    = math.Inf(-1)
		warmFloor  = math.Inf(-1) // pruning floor: slightly below warmVal
		warmPruned int
		warmEarly  bool
	)
	if opts.WarmStart != nil {
		var v float64
		if v, warmOK = verifyWarm(p, opts.WarmStart, opts.IntTol); warmOK {
			warmVal = v
			// The floor sits a feasibility tolerance below the candidate's
			// value: nodes pruned by it provably cannot hold a solution the
			// cold search would prefer, so default-mode warm solves return
			// the same result as cold ones.
			warmFloor = v - feasTol*(1+math.Abs(v))
			if opts.WarmAggressive {
				incumbent = make([]float64, n)
				copy(incumbent, opts.WarmStart)
				incumbentVal = v
			}
		}
	}

	// One LP workspace serves every node: the tableau arena is built once
	// and re-solved with mutated bounds, so the per-node m x total
	// allocation of the old path disappears. p was validated above, so the
	// workspace's validation-free solve is safe. Solution.X aliases the
	// workspace and is copied before being kept (roundIntegers copies).
	ws := &w.lpws
	if opts.Metrics != nil {
		ws.Obs = opts.Metrics.LP
	} else {
		ws.Obs = nil
	}
	ws.ReuseBasis = opts.ReuseBasis
	basisReuses0 := ws.BasisReuses
	refactor0 := ws.Refactorizations
	repair0 := ws.RepairFails
	if warmOK && opts.ReuseBasis {
		// Crash the root relaxation's basis at the warm candidate's vertex:
		// when no saved basis fits the root's tableau shape (the common case
		// across simulation frames, whose models rarely repeat shapes), the
		// LP starts phase 2 from the candidate instead of running phase 1
		// from the all-slack corner. One-shot: children reuse the root's
		// saved basis through the ordinary path.
		ws.SeedPoint(opts.WarmStart)
	}
	work := lp.Problem{C: p.C, A: p.A, B: p.B, Senses: p.Senses,
		RowPtr: p.RowPtr, ColIdx: p.ColIdx, Vals: p.Vals}
	for heap.len() > 0 {
		if nodes >= opts.MaxNodes || time.Now().After(deadline) {
			stopped = true
			break
		}
		nd := heap.pop()
		// Plunge: follow one branch chain depth-first until it is pruned or
		// integral, pushing siblings onto the heap. Diving finds an
		// incumbent quickly so the best-first phase can prune aggressively.
		for plunge := true; plunge; {
			plunge = false
			cut := incumbentVal
			if warmFloor > cut {
				cut = warmFloor
			}
			if nd.bound <= cut+1e-9 {
				if cut > incumbentVal {
					warmPruned++ // the warm floor, not an incumbent, cut it
				}
				break // cannot improve
			}
			if nodes >= opts.MaxNodes || time.Now().After(deadline) {
				stopped = true
				// This node's bound stays valid for the gap computation even
				// though we never solved it.
				if nd.bound > stopBound {
					stopBound = nd.bound
				}
				break
			}
			nodes++
			work.Lower = nd.lower
			work.Upper = nd.upper
			start := time.Now()
			sol := ws.SolveMaxIters(&work, opts.MaxLPIters)
			pivotWall += time.Since(start)
			iters += sol.Iters
			switch sol.Status {
			case lp.StatusUnbounded:
				if nodes == 1 {
					out := Solution{Status: StatusUnbounded, Nodes: nodes, Iters: iters, PivotWall: pivotWall,
						WarmAttempted: opts.WarmStart != nil, WarmAccepted: warmOK,
						BasisReuses:      ws.BasisReuses - basisReuses0,
						Refactorizations: ws.Refactorizations - refactor0,
						RepairFails:      ws.RepairFails - repair0}
					recordSolve(opts.Metrics, &out)
					return out, nil
				}
				// An unbounded child of a bounded relaxation should not
				// occur; treat as a numeric failure of this node.
				sawLimit = true
				continue
			case lp.StatusIterLimit:
				sawLimit = true
				continue
			case lp.StatusInfeasible:
				continue
			}
			anyOptimal = true
			if opts.WarmAggressive && warmOK &&
				sol.Objective <= warmVal+feasTol*(1+math.Abs(warmVal)) {
				// This node's LP bound proves the warm candidate optimal
				// within tolerance: nothing below it can beat the installed
				// incumbent, so the whole subtree collapses. At the root
				// this ends the search after a single LP.
				warmEarly = true
				break
			}
			{
				cut := incumbentVal
				if warmFloor > cut {
					cut = warmFloor
				}
				if sol.Objective <= cut+1e-9 {
					if cut > incumbentVal {
						warmPruned++
					}
					break
				}
			}
			// Find the most fractional integer variable.
			branch := -1
			worst := opts.IntTol
			for j := 0; j < n; j++ {
				if p.Integer == nil || !p.Integer[j] {
					continue
				}
				f := sol.X[j] - math.Floor(sol.X[j])
				dist := math.Min(f, 1-f)
				if dist > worst {
					worst = dist
					branch = j
				}
			}
			if branch < 0 {
				// Integral within tolerance: candidate incumbent. Rounding
				// the near-integer components can push a tightly satisfied
				// row past its RHS, so the candidate is re-verified against
				// the constraints before it is installed.
				if cand, val := integralIncumbent(p, sol.X); val > incumbentVal {
					incumbentVal = val
					incumbent = cand
				}
				break
			}
			v := sol.X[branch]
			down := node{
				lower: nd.lower, // shared: only upper changes
				upper: w.cloneBranch(nd.upper, branch, math.Floor(v), false),
				bound: sol.Objective,
				depth: nd.depth + 1,
			}
			up := node{
				lower: w.cloneBranch(nd.lower, branch, math.Ceil(v), true),
				upper: nd.upper,
				bound: sol.Objective,
				depth: nd.depth + 1,
			}
			downOK := down.upper[branch] >= nd.lower[branch]-1e-12
			upOK := up.lower[branch] <= nd.upper[branch]+1e-12
			// Dive toward the nearer integer. (Diving toward the warm
			// incumbent's value instead was measured and rejected: on the
			// benchmark workload it steered the plunge away from the
			// LP-guided child and cost an extra node and ~45% more pivots
			// on the densest frame.)
			frac := v - math.Floor(v)
			diveDown := frac < 0.5
			switch {
			case downOK && upOK:
				if diveDown {
					nd = down
					heap.push(up)
				} else {
					nd = up
					heap.push(down)
				}
				plunge = true
			case downOK:
				nd = down
				plunge = true
			case upOK:
				nd = up
				plunge = true
			}
		}
	}

	out := Solution{Nodes: nodes, Iters: iters, PivotWall: pivotWall,
		WarmAttempted: opts.WarmStart != nil, WarmAccepted: warmOK,
		WarmPruned: warmPruned, WarmEarlyExit: warmEarly,
		BasisReuses:      ws.BasisReuses - basisReuses0,
		Refactorizations: ws.Refactorizations - refactor0,
		RepairFails:      ws.RepairFails - repair0}
	switch {
	case incumbent != nil && !stopped:
		out.Status = StatusOptimal
		out.X = incumbent
		out.Objective = incumbentVal
	case incumbent != nil:
		out.Status = StatusFeasible
		out.X = incumbent
		out.Objective = incumbentVal
		// The proven upper bound at the moment the search stopped is the
		// max over the incumbent, the node in hand when the stop hit, and
		// every node still open on the heap -- not the root relaxation,
		// which goes stale as soon as the first branch tightens it.
		bound := math.Max(incumbentVal, stopBound)
		for i := range heap.ns {
			if b := heap.ns[i].bound; b > bound {
				bound = b
			}
		}
		out.Gap = bound - incumbentVal
	case stopped:
		out.Status = StatusLimit
	case anyOptimal:
		// LP relaxations solved but no integral point was found anywhere
		// in the fully-explored tree: the integer problem is infeasible.
		out.Status = StatusInfeasible
	case sawLimit:
		// No node ever solved to optimality and at least one was abandoned
		// at the simplex iteration limit: the search is inconclusive, not
		// proof of infeasibility.
		out.Status = StatusLimit
	default:
		out.Status = StatusInfeasible
	}
	recordSolve(opts.Metrics, &out)
	return out, nil
}

// recordSolve feeds one finished search's totals into m. It is a plain
// function (not a closure over the solve locals) so instrumented solves
// add no allocation to the per-frame path.
func recordSolve(m *obs.SolverMetrics, s *Solution) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	m.Nodes.Add(int64(s.Nodes))
	m.Iters.Add(int64(s.Iters))
	m.PivotNS.Add(int64(s.PivotWall))
	if s.Status == StatusFeasible || s.Status == StatusLimit {
		m.Truncated.Inc()
	}
	if s.WarmAttempted {
		m.WarmAttempts.Inc()
		if s.WarmAccepted {
			m.WarmAccepted.Inc()
		} else {
			m.WarmRejected.Inc()
		}
	}
	if s.WarmPruned > 0 {
		m.WarmPruned.Add(int64(s.WarmPruned))
	}
	if s.WarmEarlyExit {
		m.WarmEarlyExits.Inc()
	}
	if s.BasisReuses > 0 {
		m.BasisReuses.Add(int64(s.BasisReuses))
	}
}
