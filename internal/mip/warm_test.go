package mip

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/lp"
)

// randomBinary builds a small random binary MIP with integer data (so
// brute-force feasibility agrees with the solver's tolerance checks).
func randomBinary(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(6)
	m := 1 + rng.Intn(5)
	p := NewBinary(n)
	for j := 0; j < n; j++ {
		p.C[j] = math.Round(rng.Float64()*20 - 6)
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = math.Round(rng.Float64()*8 - 3)
		}
		p.AddRow(row, lp.LE, math.Round(rng.Float64()*10))
	}
	return p
}

// TestWarmStartBadCandidatesRejected verifies that candidates violating
// bounds, integrality, or a constraint row are rejected -- and that the
// solve still returns the cold optimum.
func TestWarmStartBadCandidatesRejected(t *testing.T) {
	p := NewBinary(3)
	p.C = []float64{3, 2, 1}
	p.AddRow([]float64{1, 1, 1}, lp.LE, 2)
	cold, err := SolveOpts(p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	bad := [][]float64{
		{1, 1, 1},   // violates the row
		{0.5, 0, 0}, // fractional
		{2, 0, 0},   // out of bounds
		{1, 0},      // wrong length
	}
	for i, cand := range bad {
		sol, err := SolveOpts(p, Options{WarmStart: cand})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.WarmAttempted {
			t.Errorf("case %d: warm attempt not recorded", i)
		}
		if sol.WarmAccepted {
			t.Errorf("case %d: invalid candidate %v accepted", i, cand)
		}
		if sol.Status != StatusOptimal || math.Abs(sol.Objective-cold.Objective) > 1e-9 {
			t.Errorf("case %d: rejected candidate changed the result: %v vs %v", i, sol.Objective, cold.Objective)
		}
	}
}

// TestWarmStartFloorKeepsColdResult solves random binary MIPs cold, then
// re-solves warm-started with the cold optimum as the candidate. The
// default (floor) mode must return exactly the cold objective, and the
// candidate must be accepted.
func TestWarmStartFloorKeepsColdResult(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 60; k++ {
		p := randomBinary(rng)
		cold, err := SolveOpts(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != StatusOptimal {
			continue
		}
		cand := make([]float64, len(cold.X))
		for j, v := range cold.X {
			cand[j] = math.Round(v)
		}
		warm, err := SolveOpts(p, Options{WarmStart: cand})
		if err != nil {
			t.Fatal(err)
		}
		if !warm.WarmAccepted {
			t.Fatalf("case %d: optimal candidate rejected", k)
		}
		if warm.Status != StatusOptimal || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
			t.Fatalf("case %d: warm objective %v, cold %v", k, warm.Objective, cold.Objective)
		}
	}
}

// TestWarmAggressiveReturnsOptimal verifies the aggressive mode: with the
// true optimum installed as incumbent, the solve must still report the
// optimal objective, and on instances whose root bound meets the candidate
// it must exit early.
func TestWarmAggressiveReturnsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sawEarly := false
	for k := 0; k < 60; k++ {
		p := randomBinary(rng)
		cold, err := SolveOpts(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != StatusOptimal {
			continue
		}
		cand := make([]float64, len(cold.X))
		for j, v := range cold.X {
			cand[j] = math.Round(v)
		}
		warm, err := SolveOpts(p, Options{WarmStart: cand, WarmAggressive: true})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != StatusOptimal && warm.Status != StatusFeasible {
			t.Fatalf("case %d: aggressive warm status %v", k, warm.Status)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
			t.Fatalf("case %d: aggressive warm objective %v, cold %v", k, warm.Objective, cold.Objective)
		}
		if warm.WarmEarlyExit {
			sawEarly = true
			if warm.Nodes > cold.Nodes {
				t.Fatalf("case %d: early exit used more nodes (%d) than cold (%d)", k, warm.Nodes, cold.Nodes)
			}
		}
	}
	if !sawEarly {
		t.Error("aggressive mode never exited early across 60 instances")
	}
}

// TestReuseBasisSameResults re-solves the same workspace with ReuseBasis
// across a sequence of bound-perturbed problems (a branch-and-bound-like
// stream) and checks every solve against a cold workspace.
func TestReuseBasisSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 30; k++ {
		p := randomBinary(rng)
		var warmWS, coldWS Workspace
		for step := 0; step < 4; step++ {
			if step > 0 {
				// Fix a random variable, as branching would.
				j := rng.Intn(len(p.C))
				v := float64(rng.Intn(2))
				p.Lower[j] = v
				p.Upper[j] = v
			}
			warm, err := warmWS.SolveOpts(p, Options{ReuseBasis: true})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := coldWS.SolveOpts(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("case %d step %d: status warm %v cold %v", k, step, warm.Status, cold.Status)
			}
			if warm.Status == StatusOptimal && math.Abs(warm.Objective-cold.Objective) > 1e-9 {
				t.Fatalf("case %d step %d: objective warm %v cold %v", k, step, warm.Objective, cold.Objective)
			}
		}
	}
}

// TestWarmSeedReducesRootWork verifies the crash-basis path end to end: a
// warm candidate plus ReuseBasis must not change the optimum, and on an
// instance with an integral relaxation it should cut the LP iteration
// count of the root solve.
func TestWarmSeedReducesRootWork(t *testing.T) {
	// Assignment-like problem with an integral LP relaxation: four disjoint
	// pairs, pick one per pair, plus a budget row coupling the pairs. Large
	// enough that crashing the optimal vertex saves phase-2 pivots.
	p := NewBinary(8)
	p.C = []float64{5, 3, 4, 2, 6, 1, 7, 2}
	p.AddRow([]float64{1, 1, 0, 0, 0, 0, 0, 0}, lp.LE, 1)
	p.AddRow([]float64{0, 0, 1, 1, 0, 0, 0, 0}, lp.LE, 1)
	p.AddRow([]float64{0, 0, 0, 0, 1, 1, 0, 0}, lp.LE, 1)
	p.AddRow([]float64{0, 0, 0, 0, 0, 0, 1, 1}, lp.LE, 1)
	p.AddRow([]float64{1, 0, 1, 0, 1, 0, 1, 0}, lp.LE, 3)
	cold, err := SolveOpts(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	warm, err := ws.SolveOpts(p, Options{WarmStart: []float64{0, 1, 1, 0, 1, 0, 1, 0}, ReuseBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("seeded solve wrong: %v vs %v", warm.Objective, cold.Objective)
	}
	if warm.BasisReuses == 0 {
		t.Error("crash-basis seed never installed")
	}
	if warm.Iters >= cold.Iters {
		t.Errorf("seeded root used %d iters, cold %d; expected fewer", warm.Iters, cold.Iters)
	}
}
