// Package mip implements a branch-and-bound mixed-integer programming
// solver on top of the internal/lp simplex. Together they replace the
// Google OR-Tools dependency of the paper's prototype (§5.1) for EagleEye's
// two ILPs: target clustering (set cover) and actuation-aware follower
// scheduling (a time-expanded flow). Both formulations have tight LP
// relaxations, so branch and bound usually proves optimality in a handful
// of nodes.
package mip

import (
	"errors"
	"fmt"
	"math"
	"time"

	"eagleeye/internal/lp"
)

// Problem is a mixed-integer program: the embedded LP plus a set of
// variables constrained to take integer values.
type Problem struct {
	lp.Problem
	// Integer[j] marks variable j as integral. Nil means all-continuous.
	Integer []bool
}

// NewBinary returns a Problem shell with n binary variables (integer,
// bounds [0,1]).
func NewBinary(n int) *Problem {
	p := &Problem{}
	p.C = make([]float64, n)
	p.Lower = make([]float64, n)
	p.Upper = make([]float64, n)
	p.Integer = make([]bool, n)
	for j := 0; j < n; j++ {
		p.Upper[j] = 1
		p.Integer[j] = true
	}
	return p
}

// AddRow appends a constraint row. The coefficient slice is used directly.
func (p *Problem) AddRow(coef []float64, sense lp.Sense, rhs float64) {
	p.A = append(p.A, coef)
	p.Senses = append(p.Senses, sense)
	p.B = append(p.B, rhs)
}

// AddSparseRow appends a constraint given as index/value pairs.
func (p *Problem) AddSparseRow(idx []int, val []float64, sense lp.Sense, rhs float64) {
	row := make([]float64, len(p.C))
	for k, j := range idx {
		row[j] += val[k]
	}
	p.AddRow(row, sense, rhs)
}

// Validate extends lp validation with integer-marker checks.
func (p *Problem) Validate() error {
	if err := p.Problem.Validate(); err != nil {
		return err
	}
	if p.Integer != nil && len(p.Integer) != len(p.C) {
		return fmt.Errorf("mip: integer markers length %d, want %d", len(p.Integer), len(p.C))
	}
	return nil
}

// Status mirrors lp.Status with an extra timeout outcome.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	// StatusFeasible means the search stopped early (time or node limit)
	// with an incumbent but no optimality proof.
	StatusFeasible
	// StatusLimit means the search stopped early with no incumbent.
	StatusLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusFeasible:
		return "feasible"
	case StatusLimit:
		return "limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a MIP solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int           // branch-and-bound nodes explored
	Gap       float64       // best bound minus incumbent on early stop
	Iters     int           // total simplex iterations across all nodes
	PivotWall time.Duration // wall time spent inside LP solves
}

// feasTol is the absolute-plus-relative feasibility tolerance used when
// verifying rounded incumbents against the constraint rows.
const feasTol = 1e-6

// Options tunes the search. The zero value means defaults.
type Options struct {
	// TimeLimit bounds wall-clock search time; 0 means 10 s.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes; 0 means 200000.
	MaxNodes int
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// MaxLPIters bounds the simplex iterations of each node relaxation;
	// 0 means the lp package default.
	MaxLPIters int
}

func (o Options) withDefaults() Options {
	if o.TimeLimit == 0 {
		o.TimeLimit = 10 * time.Second
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.MaxLPIters == 0 {
		o.MaxLPIters = 200000
	}
	return o
}

// node is a branch-and-bound subproblem: bound overrides plus its parent's
// LP bound used as the best-first priority.
type node struct {
	lower, upper []float64
	bound        float64 // parent LP objective: an upper bound for this node
	depth        int
}

// Solve optimizes the MIP with default options.
func Solve(p *Problem) (Solution, error) { return SolveOpts(p, Options{}) }

// SolveOpts optimizes the MIP by LP-based branch and bound with best-first
// node selection and most-fractional branching.
func SolveOpts(p *Problem, opts Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.withDefaults()
	n := len(p.C)

	baseLower := make([]float64, n)
	baseUpper := make([]float64, n)
	for j := 0; j < n; j++ {
		baseLower[j] = lower(&p.Problem, j)
		baseUpper[j] = upper(&p.Problem, j)
	}

	deadline := time.Now().Add(opts.TimeLimit)
	heap := &nodeHeap{}
	heap.push(node{lower: baseLower, upper: baseUpper, bound: math.Inf(1)})

	var (
		incumbent    []float64
		incumbentVal = math.Inf(-1)
		nodes        int
		stopped      bool
		anyOptimal   bool // some node LP solved to optimality
		sawLimit     bool // some node LP was abandoned (iter limit / numerics)
		stopBound    = math.Inf(-1)
		iters        int
		pivotWall    time.Duration
		ws           lp.Workspace
	)

	// One workspace serves every node: the tableau arena is built once and
	// re-solved with mutated bounds, so the per-node m x total allocation
	// of the old path disappears. p was validated above, so the workspace's
	// validation-free solve is safe. Solution.X aliases the workspace and is
	// copied before being kept (roundIntegers copies).
	work := lp.Problem{C: p.C, A: p.A, B: p.B, Senses: p.Senses}
	for heap.len() > 0 {
		if nodes >= opts.MaxNodes || time.Now().After(deadline) {
			stopped = true
			break
		}
		nd := heap.pop()
		// Plunge: follow one branch chain depth-first until it is pruned or
		// integral, pushing siblings onto the heap. Diving finds an
		// incumbent quickly so the best-first phase can prune aggressively.
		for plunge := true; plunge; {
			plunge = false
			if nd.bound <= incumbentVal+1e-9 {
				break // cannot improve
			}
			if nodes >= opts.MaxNodes || time.Now().After(deadline) {
				stopped = true
				// This node's bound stays valid for the gap computation even
				// though we never solved it.
				if nd.bound > stopBound {
					stopBound = nd.bound
				}
				break
			}
			nodes++
			work.Lower = nd.lower
			work.Upper = nd.upper
			start := time.Now()
			sol := ws.SolveMaxIters(&work, opts.MaxLPIters)
			pivotWall += time.Since(start)
			iters += sol.Iters
			switch sol.Status {
			case lp.StatusUnbounded:
				if nodes == 1 {
					return Solution{Status: StatusUnbounded, Nodes: nodes, Iters: iters, PivotWall: pivotWall}, nil
				}
				// An unbounded child of a bounded relaxation should not
				// occur; treat as a numeric failure of this node.
				sawLimit = true
				continue
			case lp.StatusIterLimit:
				sawLimit = true
				continue
			case lp.StatusInfeasible:
				continue
			}
			anyOptimal = true
			if sol.Objective <= incumbentVal+1e-9 {
				break
			}
			// Find the most fractional integer variable.
			branch := -1
			worst := opts.IntTol
			for j := 0; j < n; j++ {
				if p.Integer == nil || !p.Integer[j] {
					continue
				}
				f := sol.X[j] - math.Floor(sol.X[j])
				dist := math.Min(f, 1-f)
				if dist > worst {
					worst = dist
					branch = j
				}
			}
			if branch < 0 {
				// Integral within tolerance: candidate incumbent. Rounding
				// the near-integer components can push a tightly satisfied
				// row past its RHS, so the candidate is re-verified against
				// the constraints before it is installed.
				if cand, val := integralIncumbent(p, sol.X); val > incumbentVal {
					incumbentVal = val
					incumbent = cand
				}
				break
			}
			v := sol.X[branch]
			down := node{
				lower: nd.lower, // shared: only upper changes
				upper: cloneWith(nd.upper, branch, math.Floor(v), false),
				bound: sol.Objective,
				depth: nd.depth + 1,
			}
			up := node{
				lower: cloneWith(nd.lower, branch, math.Ceil(v), true),
				upper: nd.upper,
				bound: sol.Objective,
				depth: nd.depth + 1,
			}
			downOK := down.upper[branch] >= nd.lower[branch]-1e-12
			upOK := up.lower[branch] <= nd.upper[branch]+1e-12
			// Dive toward the nearer integer; push the sibling.
			frac := v - math.Floor(v)
			diveDown := frac < 0.5
			switch {
			case downOK && upOK:
				if diveDown {
					nd = down
					heap.push(up)
				} else {
					nd = up
					heap.push(down)
				}
				plunge = true
			case downOK:
				nd = down
				plunge = true
			case upOK:
				nd = up
				plunge = true
			}
		}
	}

	out := Solution{Nodes: nodes, Iters: iters, PivotWall: pivotWall}
	switch {
	case incumbent != nil && !stopped:
		out.Status = StatusOptimal
		out.X = incumbent
		out.Objective = incumbentVal
	case incumbent != nil:
		out.Status = StatusFeasible
		out.X = incumbent
		out.Objective = incumbentVal
		// The proven upper bound at the moment the search stopped is the
		// max over the incumbent, the node in hand when the stop hit, and
		// every node still open on the heap -- not the root relaxation,
		// which goes stale as soon as the first branch tightens it.
		bound := math.Max(incumbentVal, stopBound)
		for i := range heap.ns {
			if b := heap.ns[i].bound; b > bound {
				bound = b
			}
		}
		out.Gap = bound - incumbentVal
	case stopped:
		out.Status = StatusLimit
	case anyOptimal:
		// LP relaxations solved but no integral point was found anywhere
		// in the fully-explored tree: the integer problem is infeasible.
		out.Status = StatusInfeasible
	case sawLimit:
		// No node ever solved to optimality and at least one was abandoned
		// at the simplex iteration limit: the search is inconclusive, not
		// proof of infeasibility.
		out.Status = StatusLimit
	default:
		out.Status = StatusInfeasible
	}
	return out, nil
}

func lower(p *lp.Problem, j int) float64 {
	if p.Lower == nil {
		return 0
	}
	return p.Lower[j]
}

func upper(p *lp.Problem, j int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[j]
}

func cloneWith(src []float64, j int, v float64, isLower bool) []float64 {
	dst := make([]float64, len(src))
	copy(dst, src)
	if isLower {
		if v > dst[j] {
			dst[j] = v
		}
	} else if v < dst[j] {
		dst[j] = v
	}
	return dst
}

// integralIncumbent turns a near-integral LP point into an incumbent: it
// rounds the integer components, verifies the rounded point still satisfies
// every constraint row, and falls back to the raw (LP-feasible) point when
// rounding broke feasibility. The returned slice is a fresh copy -- x may
// alias solver-internal storage -- and the returned value is the objective
// recomputed at the returned point.
func integralIncumbent(p *Problem, x []float64) ([]float64, float64) {
	cand := make([]float64, len(x))
	copy(cand, x)
	for j := range cand {
		if p.Integer != nil && p.Integer[j] {
			cand[j] = math.Round(cand[j])
		}
	}
	if !feasiblePoint(&p.Problem, cand) {
		copy(cand, x)
	}
	val := 0.0
	for j, c := range p.C {
		val += c * cand[j]
	}
	return cand, val
}

// feasiblePoint reports whether x satisfies every constraint row of p
// within an absolute-plus-relative tolerance. Variable bounds are not
// re-checked: rounding moves a point by at most the integrality tolerance,
// which cannot escape the (integral) branch bounds.
func feasiblePoint(p *lp.Problem, x []float64) bool {
	for i, row := range p.A {
		dot := 0.0
		for j, a := range row {
			dot += a * x[j]
		}
		tol := feasTol * (1 + math.Abs(p.B[i]))
		switch p.Senses[i] {
		case lp.LE:
			if dot > p.B[i]+tol {
				return false
			}
		case lp.GE:
			if dot < p.B[i]-tol {
				return false
			}
		case lp.EQ:
			if math.Abs(dot-p.B[i]) > tol {
				return false
			}
		}
	}
	return true
}

// nodeHeap is a max-heap on node.bound (best-first), breaking ties by depth
// (deeper first, to find incumbents quickly).
type nodeHeap struct{ ns []node }

func (h *nodeHeap) len() int { return len(h.ns) }

func (h *nodeHeap) less(i, j int) bool {
	if h.ns[i].bound != h.ns[j].bound {
		return h.ns[i].bound > h.ns[j].bound
	}
	return h.ns[i].depth > h.ns[j].depth
}

func (h *nodeHeap) push(n node) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ns[i], h.ns[parent] = h.ns[parent], h.ns[i]
		i = parent
	}
}

func (h *nodeHeap) pop() node {
	top := h.ns[0]
	last := len(h.ns) - 1
	h.ns[0] = h.ns[last]
	h.ns = h.ns[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ns) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.ns) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ns[i], h.ns[smallest] = h.ns[smallest], h.ns[i]
		i = smallest
	}
	return top
}

// ErrNoSolution is returned by convenience helpers when a solve ends
// without a usable solution.
var ErrNoSolution = errors.New("mip: no solution")

// Values extracts a rounded []int from a binary solution, for callers that
// index decisions by position.
func (s Solution) Values() ([]int, error) {
	if s.X == nil {
		return nil, ErrNoSolution
	}
	out := make([]int, len(s.X))
	for j, v := range s.X {
		out[j] = int(math.Round(v))
	}
	return out, nil
}
