// Package mip implements a branch-and-bound mixed-integer programming
// solver on top of the internal/lp simplex. Together they replace the
// Google OR-Tools dependency of the paper's prototype (§5.1) for EagleEye's
// two ILPs: target clustering (set cover) and actuation-aware follower
// scheduling (a time-expanded flow). Both formulations have tight LP
// relaxations, so branch and bound usually proves optimality in a handful
// of nodes.
package mip

import (
	"errors"
	"fmt"
	"math"
	"time"

	"eagleeye/internal/lp"
	"eagleeye/internal/obs"
)

// Problem is a mixed-integer program: the embedded LP plus a set of
// variables constrained to take integer values.
type Problem struct {
	lp.Problem
	// Integer[j] marks variable j as integral. Nil means all-continuous.
	Integer []bool
}

// NewBinary returns a Problem shell with n binary variables (integer,
// bounds [0,1]).
func NewBinary(n int) *Problem {
	p := &Problem{}
	p.C = make([]float64, n)
	p.Lower = make([]float64, n)
	p.Upper = make([]float64, n)
	p.Integer = make([]bool, n)
	for j := 0; j < n; j++ {
		p.Upper[j] = 1
		p.Integer[j] = true
	}
	return p
}

// AddRow appends a constraint row. The coefficient slice is used directly.
func (p *Problem) AddRow(coef []float64, sense lp.Sense, rhs float64) {
	p.A = append(p.A, coef)
	p.Senses = append(p.Senses, sense)
	p.B = append(p.B, rhs)
}

// AddSparseRow appends a constraint given as index/value pairs.
func (p *Problem) AddSparseRow(idx []int, val []float64, sense lp.Sense, rhs float64) {
	row := make([]float64, len(p.C))
	for k, j := range idx {
		row[j] += val[k]
	}
	p.AddRow(row, sense, rhs)
}

// Validate extends lp validation with integer-marker checks.
func (p *Problem) Validate() error {
	if err := p.Problem.Validate(); err != nil {
		return err
	}
	if p.Integer != nil && len(p.Integer) != len(p.C) {
		return fmt.Errorf("mip: integer markers length %d, want %d", len(p.Integer), len(p.C))
	}
	return nil
}

// Status mirrors lp.Status with an extra timeout outcome.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	// StatusFeasible means the search stopped early (time or node limit)
	// with an incumbent but no optimality proof.
	StatusFeasible
	// StatusLimit means the search stopped early with no incumbent.
	StatusLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusFeasible:
		return "feasible"
	case StatusLimit:
		return "limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a MIP solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int           // branch-and-bound nodes explored
	Gap       float64       // best bound minus incumbent on early stop
	Iters     int           // total simplex iterations across all nodes
	PivotWall time.Duration // wall time spent inside LP solves

	// Warm-start accounting (see Options.WarmStart).
	WarmAttempted bool // a candidate was offered
	WarmAccepted  bool // the candidate verified feasible
	WarmPruned    int  // nodes cut by the warm floor, not by an incumbent
	WarmEarlyExit bool // a node LP bound proved the warm candidate optimal
	BasisReuses   int  // LP solves that skipped phase 1 via basis reuse

	// Anomaly signals for the flight recorder, as per-solve deltas of the
	// workspace's cumulative counters.
	Refactorizations int // sparse-core mid-solve refactorizations
	RepairFails      int // dual-repair attempts that went cold
}

// feasTol is the absolute-plus-relative feasibility tolerance used when
// verifying rounded incumbents against the constraint rows.
const feasTol = 1e-6

// Options tunes the search. The zero value means defaults.
type Options struct {
	// TimeLimit bounds wall-clock search time; 0 means 10 s.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes; 0 means 200000.
	MaxNodes int
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// MaxLPIters bounds the simplex iterations of each node relaxation;
	// 0 means the lp package default.
	MaxLPIters int
	// Metrics, when non-nil, receives per-solve counter updates (solves,
	// nodes, iterations, truncations, pivot wall time) and forwards its LP
	// set to the underlying simplex workspace. Recording happens once per
	// branch-and-bound search, never inside the node loop.
	Metrics *obs.SolverMetrics

	// WarmStart, when non-nil, offers a candidate solution from a previous
	// closely related solve (the previous frame's schedule, or a greedy
	// seed). The candidate is verified against bounds, integrality and
	// every constraint row before use; a failed verification is counted
	// and the solve proceeds cold. A verified candidate's value becomes a
	// pruning floor: open nodes whose LP bound cannot beat it are cut
	// before their relaxation is solved. In this default mode the
	// candidate is never returned and never installed as the incumbent,
	// so the search result is identical to a cold solve (absent node/time
	// truncation) -- warm starting only removes work.
	WarmStart []float64
	// WarmAggressive additionally installs the verified candidate as the
	// root incumbent (so truncated searches can return it), exits as soon
	// as a node's LP bound proves the candidate optimal within tolerance,
	// and dives toward the incumbent's values when branching. This saves
	// the most work but may return a different optimum among ties than a
	// cold solve would find.
	WarmAggressive bool
	// ReuseBasis forwards to lp.Workspace.ReuseBasis: LP relaxations
	// re-install the previous optimal basis when still primal-feasible,
	// skipping simplex phase 1. Leave off for workspaces whose solve
	// sequence is nondeterministic.
	ReuseBasis bool
}

func (o Options) withDefaults() Options {
	if o.TimeLimit == 0 {
		o.TimeLimit = 10 * time.Second
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.MaxLPIters == 0 {
		o.MaxLPIters = 200000
	}
	return o
}

// node is a branch-and-bound subproblem: bound overrides plus its parent's
// LP bound used as the best-first priority.
type node struct {
	lower, upper []float64
	bound        float64 // parent LP objective: an upper bound for this node
	depth        int
}

// Solve optimizes the MIP with default options.
func Solve(p *Problem) (Solution, error) { return SolveOpts(p, Options{}) }

// SolveOpts optimizes the MIP with a throwaway Workspace. Callers that
// solve many similarly shaped problems should hold a Workspace and use its
// SolveOpts method, which reuses the search and tableau arenas.
func SolveOpts(p *Problem, opts Options) (Solution, error) {
	var w Workspace
	return w.SolveOpts(p, opts)
}

func lower(p *lp.Problem, j int) float64 {
	if p.Lower == nil {
		return 0
	}
	return p.Lower[j]
}

func upper(p *lp.Problem, j int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[j]
}

// integralIncumbent turns a near-integral LP point into an incumbent: it
// rounds the integer components, verifies the rounded point still satisfies
// every constraint row, and falls back to the raw (LP-feasible) point when
// rounding broke feasibility. The returned slice is a fresh copy -- x may
// alias solver-internal storage -- and the returned value is the objective
// recomputed at the returned point.
func integralIncumbent(p *Problem, x []float64) ([]float64, float64) {
	cand := make([]float64, len(x))
	copy(cand, x)
	for j := range cand {
		if p.Integer != nil && p.Integer[j] {
			cand[j] = math.Round(cand[j])
		}
	}
	if !feasiblePoint(&p.Problem, cand) {
		copy(cand, x)
	}
	val := 0.0
	for j, c := range p.C {
		val += c * cand[j]
	}
	return cand, val
}

// verifyWarm checks a warm-start candidate against the problem: length,
// variable bounds, integrality of the integer-marked components, and every
// constraint row. It returns the candidate's objective value and whether
// it is usable. Verification is one pass over the rows -- about the cost
// of a single simplex pricing sweep -- so offering a stale candidate is
// cheap even when it gets rejected.
func verifyWarm(p *Problem, x []float64, intTol float64) (float64, bool) {
	if len(x) != len(p.C) {
		return 0, false
	}
	for j, v := range x {
		if v < lower(&p.Problem, j)-feasTol || v > upper(&p.Problem, j)+feasTol {
			return 0, false
		}
		if p.Integer != nil && p.Integer[j] && math.Abs(v-math.Round(v)) > intTol {
			return 0, false
		}
	}
	if !feasiblePoint(&p.Problem, x) {
		return 0, false
	}
	val := 0.0
	for j, c := range p.C {
		val += c * x[j]
	}
	return val, true
}

// feasiblePoint reports whether x satisfies every constraint row of p
// within an absolute-plus-relative tolerance. Variable bounds are not
// re-checked: rounding moves a point by at most the integrality tolerance,
// which cannot escape the (integral) branch bounds.
func feasiblePoint(p *lp.Problem, x []float64) bool {
	for i := range p.B {
		dot := 0.0
		if p.RowPtr != nil {
			for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
				dot += p.Vals[k] * x[p.ColIdx[k]]
			}
		} else {
			for j, a := range p.A[i] {
				dot += a * x[j]
			}
		}
		tol := feasTol * (1 + math.Abs(p.B[i]))
		switch p.Senses[i] {
		case lp.LE:
			if dot > p.B[i]+tol {
				return false
			}
		case lp.GE:
			if dot < p.B[i]-tol {
				return false
			}
		case lp.EQ:
			if math.Abs(dot-p.B[i]) > tol {
				return false
			}
		}
	}
	return true
}

// nodeHeap is a max-heap on node.bound (best-first), breaking ties by depth
// (deeper first, to find incumbents quickly).
type nodeHeap struct{ ns []node }

func (h *nodeHeap) len() int { return len(h.ns) }

func (h *nodeHeap) less(i, j int) bool {
	if h.ns[i].bound != h.ns[j].bound {
		return h.ns[i].bound > h.ns[j].bound
	}
	return h.ns[i].depth > h.ns[j].depth
}

func (h *nodeHeap) push(n node) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ns[i], h.ns[parent] = h.ns[parent], h.ns[i]
		i = parent
	}
}

func (h *nodeHeap) pop() node {
	top := h.ns[0]
	last := len(h.ns) - 1
	h.ns[0] = h.ns[last]
	h.ns = h.ns[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ns) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.ns) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ns[i], h.ns[smallest] = h.ns[smallest], h.ns[i]
		i = smallest
	}
	return top
}

// ErrNoSolution is returned by convenience helpers when a solve ends
// without a usable solution.
var ErrNoSolution = errors.New("mip: no solution")

// Values extracts a rounded []int from a binary solution, for callers that
// index decisions by position.
func (s Solution) Values() ([]int, error) {
	if s.X == nil {
		return nil, ErrNoSolution
	}
	out := make([]int, len(s.X))
	for j, v := range s.X {
		out[j] = int(math.Round(v))
	}
	return out, nil
}
