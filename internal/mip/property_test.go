package mip

import (
	"math"
	"math/rand"
	"testing"

	"eagleeye/internal/lp"
)

// TestMIPNeverExceedsLPRelaxation: integer restrictions can only lower a
// maximization optimum relative to the LP relaxation.
func TestMIPNeverExceedsLPRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(7)
		p := NewBinary(n)
		for j := 0; j < n; j++ {
			p.C[j] = rng.Float64()*10 - 2
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 3
			}
			p.AddRow(row, lp.LE, rng.Float64()*float64(n))
		}
		relax := p.Problem // copy of the embedded LP
		lpSol, err := lp.Solve(&relax)
		if err != nil {
			t.Fatal(err)
		}
		mipSol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if lpSol.Status != lp.StatusOptimal {
			continue
		}
		if mipSol.Status == StatusOptimal && mipSol.Objective > lpSol.Objective+1e-6 {
			t.Fatalf("trial %d: MIP %v exceeds LP relaxation %v",
				trial, mipSol.Objective, lpSol.Objective)
		}
	}
}

// TestMIPSolutionIntegral: every integer-marked variable in an optimal
// solution is integral and within bounds, and all rows hold.
func TestMIPSolutionIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		p := NewBinary(n)
		for j := 0; j < n; j++ {
			p.C[j] = rng.Float64() * 5
		}
		row := make([]float64, n)
		for j := range row {
			row[j] = 1 + rng.Float64()*2
		}
		p.AddRow(row, lp.LE, float64(n))
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		lhs := 0.0
		for j, v := range sol.X {
			if math.Abs(v-math.Round(v)) > 1e-9 {
				t.Fatalf("trial %d: x[%d]=%v not integral", trial, j, v)
			}
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("trial %d: x[%d]=%v out of [0,1]", trial, j, v)
			}
			lhs += row[j] * v
		}
		if lhs > float64(n)+1e-6 {
			t.Fatalf("trial %d: constraint violated", trial)
		}
	}
}

// TestMonotoneInRHS: loosening a <= RHS can only improve the optimum.
func TestMonotoneInRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		// Derive both problems from one parameter set.
		seed := rng.Int63()
		mk := func(budget float64) *Problem {
			r := rand.New(rand.NewSource(seed))
			p := NewBinary(n)
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				p.C[j] = 1 + r.Float64()*4
				row[j] = 1 + r.Float64()*4
			}
			p.AddRow(row, lp.LE, budget)
			return p
		}
		tight, err := Solve(mk(3))
		if err != nil {
			t.Fatal(err)
		}
		loose, err := Solve(mk(6))
		if err != nil {
			t.Fatal(err)
		}
		if tight.Status == StatusOptimal && loose.Status == StatusOptimal &&
			loose.Objective < tight.Objective-1e-6 {
			t.Fatalf("trial %d: loosening hurt: %v < %v", trial, loose.Objective, tight.Objective)
		}
	}
}
